package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestChiMergeFindsBoundary(t *testing.T) {
	// Labels flip exactly at x = 0: ChiMerge should place a cut near 0.
	rng := rand.New(rand.NewSource(3))
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()*2 - 1
		if xs[i] > 0 {
			ys[i] = 1
		}
	}
	cuts := ChiMerge(xs, ys, 4, 3.84)
	if len(cuts) == 0 {
		t.Fatal("ChiMerge produced no cuts")
	}
	closest := math.Inf(1)
	for _, c := range cuts {
		if d := math.Abs(c); d < closest {
			closest = d
		}
	}
	if closest > 0.05 {
		t.Errorf("nearest cut to the true boundary is %v away, want < 0.05", closest)
	}
}

func TestChiMergeRespectsMaxBins(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 1000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.NormFloat64()
		ys[i] = float64(rng.Intn(2))
	}
	for _, maxBins := range []int{2, 4, 8} {
		cuts := ChiMerge(xs, ys, maxBins, 1e9) // huge threshold forces merging to maxBins or fewer
		if len(cuts)+1 > maxBins {
			t.Errorf("maxBins=%d produced %d bins", maxBins, len(cuts)+1)
		}
	}
}

func TestChiMergeAscendingCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 500
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64() * 10
		if xs[i] > 3 && xs[i] < 7 {
			ys[i] = 1
		}
	}
	cuts := ChiMerge(xs, ys, 6, 3.84)
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly ascending: %v", cuts)
		}
	}
}

func TestChiMergeEmptyAndNaN(t *testing.T) {
	if got := ChiMerge(nil, nil, 4, 3.84); got != nil {
		t.Errorf("ChiMerge(nil) = %v, want nil", got)
	}
	xs := []float64{math.NaN(), math.NaN()}
	ys := []float64{0, 1}
	if got := ChiMerge(xs, ys, 4, 3.84); len(got) != 0 {
		t.Errorf("ChiMerge(all NaN) = %v, want empty", got)
	}
}
