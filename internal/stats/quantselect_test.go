package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sortedQuantiles is the pre-optimisation reference implementation: full
// sort plus nearest-rank indexing. The selection-based Quantiles must agree
// exactly on every input.
func sortedQuantiles(xs []float64, q int) []float64 {
	if q < 2 {
		return nil
	}
	clean := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return nil
	}
	sort.Float64s(clean)
	cuts := make([]float64, 0, q-1)
	for k := 1; k < q; k++ {
		idx := k * len(clean) / q
		if idx >= len(clean) {
			idx = len(clean) - 1
		}
		cuts = append(cuts, clean[idx])
	}
	out := cuts[:0]
	for i, c := range cuts {
		if i == 0 || c != cuts[i-1] {
			out = append(out, c)
		}
	}
	return out
}

func TestQuantilesMatchesSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gens := map[string]func(n int) []float64{
		"uniform": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
			return xs
		},
		"duplicates": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(rng.Intn(5))
			}
			return xs
		},
		"sorted": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i)
			}
			return xs
		},
		"reversed": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(n - i)
			}
			return xs
		},
		"with-nans": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				if rng.Intn(4) == 0 {
					xs[i] = math.NaN()
				} else {
					xs[i] = rng.Float64() * 100
				}
			}
			return xs
		},
		"constant": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 3.25
			}
			return xs
		},
	}
	var scratch QuantileScratch
	for name, gen := range gens {
		for _, n := range []int{0, 1, 2, 5, 23, 100, 1000, 4096} {
			for _, q := range []int{2, 10, 64} {
				xs := gen(n)
				want := sortedQuantiles(xs, q)
				got := scratch.Quantiles(append([]float64(nil), xs...), q)
				if len(got) != len(want) {
					t.Fatalf("%s n=%d q=%d: %d cuts, want %d", name, n, q, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s n=%d q=%d: cut[%d]=%v want %v", name, n, q, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestSearchCutsMatchesSortSearch(t *testing.T) {
	cuts := []float64{-3, -1, 0, 0.5, 2, 2, 7}
	for _, v := range []float64{-10, -3, -2, -1, -0.5, 0, 0.25, 0.5, 1, 2, 3, 7, 8} {
		want := sort.SearchFloat64s(cuts, v)
		if got := SearchCuts(cuts, v); got != want {
			t.Fatalf("SearchCuts(%v) = %d, want %d", v, got, want)
		}
	}
	if got := SearchCuts(nil, 1); got != 0 {
		t.Fatalf("SearchCuts(nil) = %d, want 0", got)
	}
}

func TestIVScratchMatchesAssignmentPath(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var s IVScratch
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(500)
		feature := make([]float64, n)
		labels := make([]float64, n)
		for i := range feature {
			feature[i] = rng.NormFloat64()
			if rng.Intn(7) == 0 {
				feature[i] = math.NaN()
			}
			if rng.Float64() < 0.3+0.2*math.Tanh(feature[i]) {
				labels[i] = 1
			}
		}
		assign, nb := EqualFrequencyBins(feature, 10)
		want := ivFromAssignment(assign, nb, labels)
		got := s.InformationValue(feature, labels, 10)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: IVScratch %v != assignment path %v", trial, got, want)
		}
		wassign, wnb := EqualWidthBins(feature, 10)
		wwant := ivFromAssignment(wassign, wnb, labels)
		wgot := s.InformationValueWidth(feature, labels, 10)
		if math.Abs(wgot-wwant) > 1e-12 {
			t.Fatalf("trial %d: width IVScratch %v != assignment path %v", trial, wgot, wwant)
		}
	}
}

func TestSelectRanksPlacesOrderStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(n + 1))
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		nRanks := 1 + rng.Intn(9)
		seen := map[int]bool{}
		ranks := []int{}
		for len(ranks) < nRanks {
			r := rng.Intn(n)
			if !seen[r] {
				seen[r] = true
				ranks = append(ranks, r)
			}
		}
		sort.Ints(ranks)
		selectRanks(xs, ranks)
		for _, r := range ranks {
			if xs[r] != sorted[r] {
				t.Fatalf("trial %d: rank %d has %v, want %v", trial, r, xs[r], sorted[r])
			}
		}
	}
}
