package stats

import "math"

// CutIndexer accelerates repeated SearchCuts lookups against one fixed cut
// array. A uniform bucket table over [cuts[0], cuts[last]] maps a value to a
// starting bin with one multiply; a short local scan then lands on the exact
// SearchCuts answer. Exactness never depends on float rounding in the bucket
// mapping — the scan corrects the starting point in either direction — so
// Find(v) == SearchCuts(cuts, v) for every non-NaN v. Skewed cut layouts
// that would make the scan long (many cuts per bucket) fall back to binary
// search at Reset time.
//
// The zero value is ready for Reset. Not safe for concurrent use; hot paths
// keep one per worker next to their other scratch.
type CutIndexer struct {
	cuts    []float64
	lo      float64
	invStep float64
	table   []int32
}

// maxBucketCuts bounds the local scan: when any bucket would cover more
// cuts than this, the table buys little and Find falls back to SearchCuts.
const maxBucketCuts = 16

// Reset prepares the indexer for a new cut array, reusing the table buffer.
// The cuts slice is retained and must stay ascending and unmodified until
// the next Reset.
func (ix *CutIndexer) Reset(cuts []float64) {
	ix.cuts = cuts
	ix.table = ix.table[:0]
	if len(cuts) < 4 {
		return // binary search over a handful of cuts is already cheap
	}
	lo, hi := cuts[0], cuts[len(cuts)-1]
	span := hi - lo
	if !(span > 0) || math.IsInf(span, 0) {
		return
	}
	k := 4 * len(cuts)
	invStep := float64(k) / span
	if math.IsInf(invStep, 0) {
		return
	}
	if cap(ix.table) < k {
		ix.table = make([]int32, k)
	} else {
		ix.table = ix.table[:k]
	}
	step := span / float64(k)
	prev := int32(0)
	widest := int32(0)
	for t := range ix.table {
		j := int32(SearchCuts(cuts, lo+float64(t)*step))
		ix.table[t] = j
		if t > 0 && j-prev > widest {
			widest = j - prev
		}
		prev = j
	}
	if widest > maxBucketCuts {
		ix.table = ix.table[:0] // clustered cuts: scans would be long
		return
	}
	ix.lo = lo
	ix.invStep = invStep
}

// Find returns SearchCuts(cuts, v) for the cut array given to Reset.
// v must not be NaN (call sites filter NaN before binning).
func (ix *CutIndexer) Find(v float64) int {
	cuts := ix.cuts
	if len(ix.table) == 0 {
		return SearchCuts(cuts, v)
	}
	if v <= ix.lo {
		return 0
	}
	t := int((v - ix.lo) * ix.invStep)
	if t >= len(ix.table) {
		t = len(ix.table) - 1
	} else if t < 0 {
		t = 0
	}
	j := int(ix.table[t])
	for j < len(cuts) && cuts[j] < v {
		j++
	}
	for j > 0 && cuts[j-1] >= v {
		j--
	}
	return j
}
