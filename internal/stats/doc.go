// Package stats implements the statistical primitives SAFE depends on:
// relevance criteria, partition scores, discretisation, correlation, and
// the divergences of the feature-stability protocol.
//
// # Relevance criteria (Algorithm 3's filter, per task)
//
//   - InformationValue / IVScratch — binary IV with equal-frequency binning
//     (Eq. 6), Laplace-smoothed.
//   - CritScratch.MulticlassIV — the K-class generalisation: mean
//     one-vs-rest IV from per-class binned label counts; reduces to the
//     binary IV at K=2.
//   - CritScratch.CorrelationRatio — the regression criterion η²
//     (one-way ANOVA between-group share of variance) over binned targets.
//
// # Partition scores (Algorithm 2's combination ranking, per task)
//
//   - GainRatio / InformationGain — binary information gain ratio.
//   - GainRatioClasses — the K-class entropy gain ratio.
//   - VarGainRatio — the regression variance-reduction ratio (η² over
//     cells divided by split entropy).
//
// Every criterion has a count- or moment-space entry point
// (IVFromCounts, MulticlassIVFromCounts, CorrelationRatioFromMoments,
// GainRatioFromCounts, GainRatioFromClassCounts, VarGainRatioFromMoments)
// operating on exactly the statistics the mergeable sketches of the
// sharded fit engine accumulate — per-partition statistics summed and
// folded through these functions reproduce the single-pass value, which is
// what keeps the sharded selection feature-for-feature identical to the
// in-memory one.
//
// The package also provides Pearson correlation (Algorithm 4, Eq. 7),
// equal-frequency/equal-width binning and multi-rank quantile selection
// (QuantileScratch, CutIndexer), ChiMerge discretisation, and the KL/JS
// divergences of Eqs. 14-15. Scratch types (IVScratch, CritScratch,
// QuantileScratch) amortise working buffers across column sweeps; each
// instance is single-goroutine, hot paths keep one per worker.
package stats
