package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestCutIndexerMatchesSearchCuts fuzzes Find against SearchCuts over cut
// layouts that exercise the table path, the short-cuts fallback, duplicate
// cuts, and the clustered-cuts fallback.
func TestCutIndexerMatchesSearchCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layouts := [][]float64{
		{0.5},                                // too short for a table
		{0, 1, 2},                            // still short
		{0, 1, 2, 3, 4, 5},                   // uniform
		{0, 0, 1, 1, 2, 2},                   // duplicates
		{-3, -1, 0, 0.1, 0.2, 0.3, 10, 1000}, // skewed
	}
	uniform := make([]float64, 255)
	for i := range uniform {
		uniform[i] = float64(i) * 0.37
	}
	layouts = append(layouts, uniform)
	clustered := make([]float64, 64)
	for i := range clustered {
		clustered[i] = 1e-9 * float64(i) // all cuts inside one bucket + outlier
	}
	clustered = append(clustered, 1e12)
	layouts = append(layouts, clustered)

	var ix CutIndexer
	for li, cuts := range layouts {
		ix.Reset(cuts)
		probe := func(v float64) {
			if got, want := ix.Find(v), SearchCuts(cuts, v); got != want {
				t.Fatalf("layout %d: Find(%v) = %d, SearchCuts = %d", li, v, got, want)
			}
		}
		for _, v := range cuts { // exact cut values: the (.., cut] boundary
			probe(v)
			probe(math.Nextafter(v, math.Inf(-1)))
			probe(math.Nextafter(v, math.Inf(1)))
		}
		lo, hi := cuts[0], cuts[len(cuts)-1]
		probe(lo - 1)
		probe(hi + 1)
		probe(math.Inf(-1))
		probe(math.Inf(1))
		for i := 0; i < 2000; i++ {
			probe(lo + (hi-lo)*(rng.Float64()*1.2-0.1))
		}
	}
}

func TestCutIndexerDegenerateSpans(t *testing.T) {
	var ix CutIndexer
	for _, cuts := range [][]float64{
		nil,
		{},
		{1, 1, 1, 1, 1},                      // zero span
		{math.Inf(-1), 0, 1, 2, math.Inf(1)}, // infinite span
		{0, 1, 2, math.MaxFloat64},           // invStep underflows to 0 span scale
	} {
		ix.Reset(cuts)
		for _, v := range []float64{-1, 0, 0.5, 1, 3, 1e300} {
			if got, want := ix.Find(v), SearchCuts(cuts, v); got != want {
				t.Fatalf("cuts %v: Find(%v) = %d, SearchCuts = %d", cuts, v, got, want)
			}
		}
	}
}

func BenchmarkCutIndexerFind(b *testing.B) {
	cuts := make([]float64, 255)
	for i := range cuts {
		cuts[i] = float64(i)
	}
	var ix CutIndexer
	ix.Reset(cuts)
	vals := make([]float64, 1024)
	rng := rand.New(rand.NewSource(3))
	for i := range vals {
		vals[i] = rng.Float64() * 260
	}
	b.Run("indexer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.Find(vals[i&1023])
		}
	})
	b.Run("binary-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SearchCuts(cuts, vals[i&1023])
		}
	})
}
