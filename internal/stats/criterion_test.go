package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestMulticlassIVMatchesBinaryAtK2: the mean one-vs-rest IV over two
// classes is the binary IV (the two one-vs-rest terms are the same quantity
// with pos/neg swapped), so the K=2 multiclass criterion agrees with the
// binary path.
func TestMulticlassIVMatchesBinaryAtK2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	feature := make([]float64, n)
	labels := make([]float64, n)
	for i := range feature {
		feature[i] = rng.NormFloat64()
		p := 1 / (1 + math.Exp(-feature[i]))
		if rng.Float64() < p {
			labels[i] = 1
		}
	}
	// Sprinkle NaNs: both criteria must exclude the same rows.
	for i := 0; i < n; i += 97 {
		feature[i] = math.NaN()
	}
	var iv IVScratch
	var crit CritScratch
	want := iv.InformationValue(feature, labels, 10)
	got := crit.MulticlassIV(feature, labels, 2, 10)
	if want <= 0 {
		t.Fatalf("binary IV %g, want positive on signal data", want)
	}
	if math.Abs(got-want) > 1e-12*math.Max(1, want) {
		t.Fatalf("K=2 multiclass IV %g != binary IV %g", got, want)
	}
}

// TestGainRatioClassesMatchesBinaryAtK2: the K-class gain ratio over 2
// classes agrees with the binary gain ratio.
func TestGainRatioClassesMatchesBinaryAtK2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 2000
	labels := make([]float64, n)
	parts := make([]int, n)
	for i := range labels {
		parts[i] = rng.Intn(6)
		if rng.Float64() < 0.2+0.1*float64(parts[i]) {
			labels[i] = 1
		}
	}
	want := GainRatio(labels, parts, 6)
	got := GainRatioClasses(labels, parts, 6, 2)
	if want <= 0 {
		t.Fatalf("binary gain ratio %g, want positive", want)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("K=2 class gain ratio %g != binary %g", got, want)
	}
}

func TestMulticlassIVDiscriminates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4000
	signal := make([]float64, n)
	noise := make([]float64, n)
	labels := make([]float64, n)
	for i := range signal {
		cls := rng.Intn(3)
		labels[i] = float64(cls)
		signal[i] = float64(cls) + 0.3*rng.NormFloat64()
		noise[i] = rng.NormFloat64()
	}
	var s CritScratch
	ivSig := s.MulticlassIV(signal, labels, 3, 10)
	ivNoise := s.MulticlassIV(noise, labels, 3, 10)
	if ivSig < 10*ivNoise || ivSig < 0.5 {
		t.Fatalf("multiclass IV fails to discriminate: signal %g noise %g", ivSig, ivNoise)
	}
}

func TestCorrelationRatioProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 4000
	feature := make([]float64, n)
	exact := make([]float64, n) // target fully determined by the bin
	noisy := make([]float64, n)
	constant := make([]float64, n)
	for i := range feature {
		feature[i] = rng.NormFloat64()
		exact[i] = math.Floor(feature[i])
		noisy[i] = feature[i] + 0.5*rng.NormFloat64()
		constant[i] = 3.25
	}
	var s CritScratch
	if eta := s.CorrelationRatio(feature, constant, 10); eta != 0 {
		t.Fatalf("constant target: η² = %g, want 0", eta)
	}
	etaExact := s.CorrelationRatio(feature, exact, 64)
	if etaExact < 0.9 {
		t.Fatalf("near-deterministic relation: η² = %g, want >= 0.9", etaExact)
	}
	etaNoisy := s.CorrelationRatio(feature, noisy, 10)
	if etaNoisy <= 0.3 || etaNoisy >= etaExact {
		t.Fatalf("noisy relation: η² = %g (exact %g)", etaNoisy, etaExact)
	}
	indep := make([]float64, n)
	for i := range indep {
		indep[i] = rng.NormFloat64()
	}
	if eta := s.CorrelationRatio(feature, indep, 10); eta > 0.05 {
		t.Fatalf("independent target: η² = %g, want near 0", eta)
	}
	// Constant feature: a single bin carries no information.
	if eta := s.CorrelationRatio(constant, noisy, 10); eta != 0 {
		t.Fatalf("constant feature: η² = %g, want 0", eta)
	}
}

// TestCriterionMergeAdditivity: counts and moments accumulated per partition
// and summed reproduce the single-pass criterion — the property the sharded
// engine's merges rely on.
func TestCriterionMergeAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cells, k := 8, 3
	full := make([]float64, cells*k)
	partA := make([]float64, cells*k)
	partB := make([]float64, cells*k)
	for i := range full {
		a, b := float64(rng.Intn(50)), float64(rng.Intn(50))
		partA[i], partB[i] = a, b
		full[i] = a + b
	}
	merged := make([]float64, cells*k)
	for i := range merged {
		merged[i] = partA[i] + partB[i]
	}
	if got, want := GainRatioFromClassCounts(merged, cells, k), GainRatioFromClassCounts(full, cells, k); got != want {
		t.Fatalf("class-count merge changed the gain ratio: %g vs %g", got, want)
	}

	cnt := []float64{10, 20, 30}
	sum := []float64{1.5, -2.25, 4.75}
	sumsq := []float64{12.5, 8.25, 20.125}
	halfCnt := []float64{5, 10, 15}
	halfSum := []float64{0.75, -1.125, 2.375}
	halfSq := []float64{6.25, 4.125, 10.0625}
	mergedCnt := make([]float64, 3)
	mergedSum := make([]float64, 3)
	mergedSq := make([]float64, 3)
	for i := 0; i < 3; i++ {
		mergedCnt[i] = halfCnt[i] + halfCnt[i]
		mergedSum[i] = halfSum[i] + halfSum[i]
		mergedSq[i] = halfSq[i] + halfSq[i]
	}
	if got, want := CorrelationRatioFromMoments(mergedCnt, mergedSum, mergedSq), CorrelationRatioFromMoments(cnt, sum, sumsq); got != want {
		t.Fatalf("moment merge changed η²: %g vs %g", got, want)
	}
}

func TestVarGainRatioDegenerate(t *testing.T) {
	// One-cell partitions and empty input score 0.
	if got := VarGainRatio([]float64{1, 2, 3}, []int{0, 0, 0}, 1); got != 0 {
		t.Fatalf("degenerate partition: %g, want 0", got)
	}
	if got := VarGainRatio(nil, nil, 4); got != 0 {
		t.Fatalf("empty input: %g, want 0", got)
	}
	// Constant target: no variance to explain.
	if got := VarGainRatio([]float64{2, 2, 2, 2}, []int{0, 1, 0, 1}, 2); got != 0 {
		t.Fatalf("constant target: %g, want 0", got)
	}
	// A partition that separates two target levels perfectly scores high.
	target := []float64{0, 0, 0, 10, 10, 10}
	parts := []int{0, 0, 0, 1, 1, 1}
	if got := VarGainRatio(target, parts, 2); got < 1.0 {
		t.Fatalf("perfect split: %g, want >= 1/ln2", got)
	}
}
