package stats

import (
	"math"
)

// Thresholds from the paper's rules of thumb (Tables I and II).
const (
	// IVUseless .. IVExtremeStrong delimit the Information Value predictive
	// power bands of Table I.
	IVUseless       = 0.02
	IVWeak          = 0.1
	IVMedium        = 0.3
	IVStrong        = 0.5
	DefaultIVCutoff = 0.1 // α in Algorithm 3

	// Pearson correlation bands of Table II.
	PearsonVeryWeak      = 0.2
	PearsonWeak          = 0.4
	PearsonModerate      = 0.6
	PearsonStrong        = 0.8
	DefaultPearsonCutoff = 0.8 // θ in Algorithm 4
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// BinaryEntropy returns the Shannon entropy (nats) of a binary label vector.
func BinaryEntropy(labels []float64) float64 {
	n := len(labels)
	if n == 0 {
		return 0
	}
	pos := 0
	for _, y := range labels {
		if y > 0.5 {
			pos++
		}
	}
	return entropyFromCounts(pos, n-pos)
}

func entropyFromCounts(pos, neg int) float64 {
	n := pos + neg
	if n == 0 || pos == 0 || neg == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	q := 1 - p
	return -p*math.Log(p) - q*math.Log(q)
}

// PartitionEntropy computes the label entropy conditioned on a partition:
// sum over parts of |part|/n * H(part). parts maps each row to a part id in
// [0, numParts); rows with part id < 0 are ignored.
func PartitionEntropy(labels []float64, parts []int, numParts int) float64 {
	if numParts <= 0 {
		return BinaryEntropy(labels)
	}
	pos := make([]int, numParts)
	tot := make([]int, numParts)
	n := 0
	for i, p := range parts {
		if p < 0 || p >= numParts {
			continue
		}
		tot[p]++
		n++
		if labels[i] > 0.5 {
			pos[p]++
		}
	}
	if n == 0 {
		return 0
	}
	h := 0.0
	for p := 0; p < numParts; p++ {
		if tot[p] == 0 {
			continue
		}
		h += float64(tot[p]) / float64(n) * entropyFromCounts(pos[p], tot[p]-pos[p])
	}
	return h
}

// SplitEntropy is the intrinsic information of the partition itself
// (denominator of the gain ratio): -sum |part|/n log |part|/n.
func SplitEntropy(parts []int, numParts int) float64 {
	if numParts <= 0 {
		return 0
	}
	tot := make([]int, numParts)
	n := 0
	for _, p := range parts {
		if p < 0 || p >= numParts {
			continue
		}
		tot[p]++
		n++
	}
	if n == 0 {
		return 0
	}
	h := 0.0
	for p := 0; p < numParts; p++ {
		if tot[p] == 0 {
			continue
		}
		f := float64(tot[p]) / float64(n)
		h -= f * math.Log(f)
	}
	return h
}

// GainRatio computes the information gain ratio of a partition of rows with
// binary labels: (H(Y) - H(Y|partition)) / SplitEntropy(partition). Rows
// with part id < 0 (missing values) are excluded from both terms. It
// returns 0 when the split entropy is 0 (a degenerate one-part split).
func GainRatio(labels []float64, parts []int, numParts int) float64 {
	split := SplitEntropy(parts, numParts)
	if split <= 0 {
		return 0
	}
	base, cond := baseAndConditionalEntropy(labels, parts, numParts)
	gain := base - cond
	if gain < 0 {
		gain = 0
	}
	return gain / split
}

// InformationGain computes H(Y) - H(Y|partition) over the rows with a valid
// part id.
func InformationGain(labels []float64, parts []int, numParts int) float64 {
	base, cond := baseAndConditionalEntropy(labels, parts, numParts)
	g := base - cond
	if g < 0 {
		return 0
	}
	return g
}

// baseAndConditionalEntropy computes H(Y) and H(Y|partition) over the rows
// whose part id is valid, so both terms see the same population.
func baseAndConditionalEntropy(labels []float64, parts []int, numParts int) (base, cond float64) {
	pos := make([]int, numParts)
	tot := make([]int, numParts)
	n, allPos := 0, 0
	for i, p := range parts {
		if p < 0 || p >= numParts {
			continue
		}
		tot[p]++
		n++
		if labels[i] > 0.5 {
			pos[p]++
			allPos++
		}
	}
	if n == 0 {
		return 0, 0
	}
	base = entropyFromCounts(allPos, n-allPos)
	for p := 0; p < numParts; p++ {
		if tot[p] == 0 {
			continue
		}
		cond += float64(tot[p]) / float64(n) * entropyFromCounts(pos[p], tot[p]-pos[p])
	}
	return base, cond
}

// Pearson returns the Pearson correlation coefficient of x and y (Eq. 7).
// It returns 0 when either vector is constant.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Quantiles returns the q-quantile cut points of xs (q-1 interior points)
// using the nearest-rank method. NaNs are skipped. The cut values are the
// same a sorted copy would yield, but computed by multi-rank selection in
// expected O(n log q). Hot paths should use QuantileScratch to amortise the
// working buffers.
func Quantiles(xs []float64, q int) []float64 {
	var s QuantileScratch
	cuts := s.Quantiles(xs, q)
	if cuts == nil {
		return nil
	}
	return append([]float64(nil), cuts...)
}

// Digitize maps each value to its bin index given ascending cut points:
// bin b holds values in (cuts[b-1], cuts[b]]; values above the last cut go
// to bin len(cuts). NaNs map to -1.
func Digitize(xs []float64, cuts []float64) []int {
	out := make([]int, len(xs))
	for i, v := range xs {
		if math.IsNaN(v) {
			out[i] = -1
			continue
		}
		// SearchCuts returns the first index with cuts[j] >= v, which puts
		// v == cuts[j] into bin j: the (.., cuts[j]] convention.
		out[i] = SearchCuts(cuts, v)
	}
	return out
}

// EqualFrequencyBins assigns each value of xs to one of (at most) bins bins
// with roughly equal populations, returning the assignment and the actual
// number of bins produced (fewer when xs has few distinct values).
func EqualFrequencyBins(xs []float64, bins int) ([]int, int) {
	cuts := Quantiles(xs, bins)
	assign := Digitize(xs, cuts)
	return assign, len(cuts) + 1
}

// EqualWidthBins assigns values to bins of equal width across [min,max].
func EqualWidthBins(xs []float64, bins int) ([]int, int) {
	if bins < 1 {
		bins = 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]int, len(xs))
	if !(hi > lo) {
		for i, v := range xs {
			if math.IsNaN(v) {
				out[i] = -1
			}
		}
		return out, 1
	}
	w := (hi - lo) / float64(bins)
	for i, v := range xs {
		if math.IsNaN(v) {
			out[i] = -1
			continue
		}
		b := int((v - lo) / w)
		if b >= bins {
			b = bins - 1
		}
		out[i] = b
	}
	return out, bins
}

// InformationValue computes the IV of a feature against binary labels
// (Eq. 6) using equal-frequency binning into at most bins bins. Counts are
// Laplace-smoothed by 0.5 to keep the WoE finite on empty cells. Hot paths
// computing IVs for many columns should use IVScratch.
func InformationValue(feature, labels []float64, bins int) float64 {
	var s IVScratch
	return s.InformationValue(feature, labels, bins)
}

// InformationValueWidth is InformationValue with equal-width binning; used
// by the binning ablation.
func InformationValueWidth(feature, labels []float64, bins int) float64 {
	var s IVScratch
	return s.InformationValueWidth(feature, labels, bins)
}

// IVScratch computes Information Values with reusable buffers: one instance
// amortises the quantile working copy and the bin-count arrays across an
// entire column sweep. The zero value is ready to use; not safe for
// concurrent use (hot paths keep one per worker).
type IVScratch struct {
	q        QuantileScratch
	ix       CutIndexer
	pos, neg []float64
}

// InformationValue is InformationValue with buffer reuse.
func (s *IVScratch) InformationValue(feature, labels []float64, bins int) float64 {
	cuts := s.q.Quantiles(feature, bins)
	numBins := len(cuts) + 1
	if numBins <= 1 {
		return 0
	}
	s.ix.Reset(cuts)
	pos, neg := s.counts(numBins)
	var np, nn float64
	for i, v := range feature {
		if math.IsNaN(v) {
			continue
		}
		b := s.ix.Find(v)
		if labels[i] > 0.5 {
			pos[b]++
			np++
		} else {
			neg[b]++
			nn++
		}
	}
	return ivFromCounts(pos, neg, np, nn)
}

// InformationValueWidth is InformationValueWidth with buffer reuse.
func (s *IVScratch) InformationValueWidth(feature, labels []float64, bins int) float64 {
	if bins < 1 {
		bins = 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range feature {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !(hi > lo) {
		return 0
	}
	w := (hi - lo) / float64(bins)
	pos, neg := s.counts(bins)
	var np, nn float64
	for i, v := range feature {
		if math.IsNaN(v) {
			continue
		}
		b := int((v - lo) / w)
		if b >= bins {
			b = bins - 1
		}
		if labels[i] > 0.5 {
			pos[b]++
			np++
		} else {
			neg[b]++
			nn++
		}
	}
	return ivFromCounts(pos, neg, np, nn)
}

// counts returns zeroed pos/neg count slices of the given length.
func (s *IVScratch) counts(n int) (pos, neg []float64) {
	if cap(s.pos) < n {
		s.pos = make([]float64, n)
		s.neg = make([]float64, n)
	}
	pos, neg = s.pos[:n], s.neg[:n]
	for i := range pos {
		pos[i] = 0
		neg[i] = 0
	}
	return pos, neg
}

// IVFromCounts folds per-bin positive/negative label counts into the
// Information Value, with the same 0.5 Laplace smoothing as
// InformationValue. np and nn are the total positive/negative counts across
// the bins. It is the count-space entry point the mergeable sketches of the
// sharded fit engine use: counts accumulated per partition and summed give
// exactly the IV a single pass over the concatenated rows yields.
func IVFromCounts(pos, neg []float64, np, nn float64) float64 {
	return ivFromCounts(pos, neg, np, nn)
}

// GainRatioFromCounts computes the information gain ratio of a partition
// given per-cell positive/negative label counts: the count-space equivalent
// of GainRatio(labels, parts, numParts) over rows with valid part ids. Cell
// counts are integers, so per-partition counts merged by addition reproduce
// the single-pass value bit-for-bit.
func GainRatioFromCounts(pos, tot []int) float64 {
	n, allPos := 0, 0
	for p := range tot {
		n += tot[p]
		allPos += pos[p]
	}
	if n == 0 {
		return 0
	}
	// Split entropy (the denominator), accumulated in cell order exactly as
	// SplitEntropy does.
	split := 0.0
	for p := range tot {
		if tot[p] == 0 {
			continue
		}
		f := float64(tot[p]) / float64(n)
		split -= f * math.Log(f)
	}
	if split <= 0 {
		return 0
	}
	base := entropyFromCounts(allPos, n-allPos)
	cond := 0.0
	for p := range tot {
		if tot[p] == 0 {
			continue
		}
		cond += float64(tot[p]) / float64(n) * entropyFromCounts(pos[p], tot[p]-pos[p])
	}
	gain := base - cond
	if gain < 0 {
		gain = 0
	}
	return gain / split
}

// ivFromCounts folds per-bin positive/negative counts into the IV, with the
// same 0.5 Laplace smoothing as ivFromAssignment.
func ivFromCounts(pos, neg []float64, np, nn float64) float64 {
	if np == 0 || nn == 0 {
		return 0
	}
	numBins := float64(len(pos))
	iv := 0.0
	for b := range pos {
		if pos[b]+neg[b] == 0 {
			continue
		}
		dp := (pos[b] + 0.5) / (np + 0.5*numBins)
		dn := (neg[b] + 0.5) / (nn + 0.5*numBins)
		iv += (dp - dn) * math.Log(dp/dn)
	}
	return iv
}

func ivFromAssignment(assign []int, numBins int, labels []float64) float64 {
	if numBins <= 1 {
		return 0
	}
	pos := make([]float64, numBins)
	neg := make([]float64, numBins)
	var np, nn float64
	for i, b := range assign {
		if b < 0 {
			continue
		}
		if labels[i] > 0.5 {
			pos[b]++
			np++
		} else {
			neg[b]++
			nn++
		}
	}
	if np == 0 || nn == 0 {
		return 0
	}
	iv := 0.0
	for b := 0; b < numBins; b++ {
		if pos[b]+neg[b] == 0 {
			continue
		}
		dp := (pos[b] + 0.5) / (np + 0.5*float64(numBins))
		dn := (neg[b] + 0.5) / (nn + 0.5*float64(numBins))
		iv += (dp - dn) * math.Log(dp/dn)
	}
	return iv
}

// IVBand classifies an IV per Table I of the paper.
func IVBand(iv float64) string {
	switch {
	case iv < IVUseless:
		return "useless"
	case iv < IVWeak:
		return "weak"
	case iv < IVMedium:
		return "medium"
	case iv < IVStrong:
		return "strong"
	default:
		return "extremely strong"
	}
}

// PearsonBand classifies an absolute correlation per Table II.
func PearsonBand(r float64) string {
	a := math.Abs(r)
	switch {
	case a < PearsonVeryWeak:
		return "very weak or none"
	case a < PearsonWeak:
		return "weak"
	case a < PearsonModerate:
		return "moderate"
	case a < PearsonStrong:
		return "strong"
	default:
		return "extremely strong"
	}
}

// KLD computes the Kullback-Leibler divergence sum_i p_i ln(p_i/q_i)
// (Eq. 15). Terms with p_i == 0 contribute 0; q_i == 0 with p_i > 0 yields
// +Inf, matching the mathematical definition.
func KLD(p, q []float64) float64 {
	d := 0.0
	for i := range p {
		if p[i] <= 0 {
			continue
		}
		if i >= len(q) || q[i] <= 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log(p[i]/q[i])
	}
	return d
}

// JSD computes the Jensen-Shannon divergence (Eq. 14) between two
// distributions padded to a common length.
func JSD(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	pp := padTo(p, n)
	qq := padTo(q, n)
	m := make([]float64, n)
	for i := 0; i < n; i++ {
		m[i] = 0.5 * (pp[i] + qq[i])
	}
	return 0.5 * (KLD(pp, m) + KLD(qq, m))
}

func padTo(p []float64, n int) []float64 {
	if len(p) == n {
		return p
	}
	out := make([]float64, n)
	copy(out, p)
	return out
}

// Normalize scales xs so it sums to 1; all-zero input is returned unchanged.
func Normalize(xs []float64) []float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		return xs
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / s
	}
	return out
}
