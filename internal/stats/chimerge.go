package stats

import (
	"math"
	"sort"
)

// ChiMerge discretises a feature against binary labels using the classic
// bottom-up chi-squared interval merging algorithm. It starts from one
// interval per distinct value (capped at maxInitial to bound cost) and
// repeatedly merges the adjacent pair with the lowest chi-squared statistic
// until at most maxBins intervals remain or every adjacent pair exceeds the
// chi-squared threshold. It returns the interior cut points (ascending),
// usable with Digitize.
//
// The paper lists ChiMerge among the discretisation operators of O1.
func ChiMerge(feature, labels []float64, maxBins int, threshold float64) []float64 {
	if maxBins < 2 {
		maxBins = 2
	}
	type interval struct {
		upper    float64 // inclusive upper bound
		pos, neg float64
	}

	// Build initial intervals from (capped) distinct values.
	idx := make([]int, 0, len(feature))
	for i, v := range feature {
		if !math.IsNaN(v) {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil
	}
	sort.Slice(idx, func(a, b int) bool { return feature[idx[a]] < feature[idx[b]] })

	const maxInitial = 256
	// Pre-quantise to at most maxInitial starting intervals via quantiles.
	cuts := Quantiles(feature, maxInitial)
	assign := Digitize(feature, cuts)
	nb := len(cuts) + 1
	ivs := make([]interval, 0, nb)
	counts := make([][2]float64, nb)
	uppers := make([]float64, nb)
	for i := range uppers {
		uppers[i] = math.Inf(-1)
	}
	for i, b := range assign {
		if b < 0 {
			continue
		}
		if labels[i] > 0.5 {
			counts[b][0]++
		} else {
			counts[b][1]++
		}
		if feature[i] > uppers[b] {
			uppers[b] = feature[i]
		}
	}
	for b := 0; b < nb; b++ {
		if counts[b][0]+counts[b][1] == 0 {
			continue
		}
		ivs = append(ivs, interval{upper: uppers[b], pos: counts[b][0], neg: counts[b][1]})
	}

	chi2 := func(a, b interval) float64 {
		// 2x2 chi-squared with expected counts from the merged interval.
		rowA := a.pos + a.neg
		rowB := b.pos + b.neg
		colP := a.pos + b.pos
		colN := a.neg + b.neg
		total := rowA + rowB
		if total == 0 || colP == 0 || colN == 0 || rowA == 0 || rowB == 0 {
			return 0
		}
		x := 0.0
		obs := [2][2]float64{{a.pos, a.neg}, {b.pos, b.neg}}
		rows := [2]float64{rowA, rowB}
		cols := [2]float64{colP, colN}
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				e := rows[r] * cols[c] / total
				if e == 0 {
					continue
				}
				d := obs[r][c] - e
				x += d * d / e
			}
		}
		return x
	}

	for len(ivs) > maxBins {
		best := -1
		bestChi := math.Inf(1)
		for i := 0; i+1 < len(ivs); i++ {
			x := chi2(ivs[i], ivs[i+1])
			if x < bestChi {
				bestChi = x
				best = i
			}
		}
		if best < 0 {
			break
		}
		if len(ivs) <= maxBins && bestChi > threshold {
			break
		}
		ivs[best].pos += ivs[best+1].pos
		ivs[best].neg += ivs[best+1].neg
		ivs[best].upper = ivs[best+1].upper
		ivs = append(ivs[:best+1], ivs[best+2:]...)
	}
	// Continue merging below the threshold even once under maxBins.
	for len(ivs) > 2 {
		best := -1
		bestChi := math.Inf(1)
		for i := 0; i+1 < len(ivs); i++ {
			x := chi2(ivs[i], ivs[i+1])
			if x < bestChi {
				bestChi = x
				best = i
			}
		}
		if best < 0 || bestChi > threshold {
			break
		}
		ivs[best].pos += ivs[best+1].pos
		ivs[best].neg += ivs[best+1].neg
		ivs[best].upper = ivs[best+1].upper
		ivs = append(ivs[:best+1], ivs[best+2:]...)
	}

	out := make([]float64, 0, len(ivs)-1)
	for i := 0; i+1 < len(ivs); i++ {
		out = append(out, ivs[i].upper)
	}
	return out
}
