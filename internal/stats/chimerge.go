package stats

import "math"

// ChiMerge discretises a feature against binary labels using the classic
// bottom-up chi-squared interval merging algorithm. It starts from one
// interval per distinct value (capped at maxInitial to bound cost) and
// repeatedly merges the adjacent pair with the lowest chi-squared statistic
// until at most maxBins intervals remain or every adjacent pair exceeds the
// chi-squared threshold. It returns the interior cut points (ascending),
// usable with Digitize.
//
// The paper lists ChiMerge among the discretisation operators of O1.
func ChiMerge(feature, labels []float64, maxBins int, threshold float64) []float64 {
	// Build initial intervals from (capped) distinct values.
	any := false
	for _, v := range feature {
		if !math.IsNaN(v) {
			any = true
			break
		}
	}
	if !any {
		return nil
	}

	const maxInitial = 256
	// Pre-quantise to at most maxInitial starting intervals via quantiles.
	cuts := Quantiles(feature, maxInitial)
	assign := Digitize(feature, cuts)
	nb := len(cuts) + 1
	pos := make([]float64, nb)
	neg := make([]float64, nb)
	uppers := make([]float64, nb)
	for i := range uppers {
		uppers[i] = math.Inf(-1)
	}
	for i, b := range assign {
		if b < 0 {
			continue
		}
		if labels[i] > 0.5 {
			pos[b]++
		} else {
			neg[b]++
		}
		if feature[i] > uppers[b] {
			uppers[b] = feature[i]
		}
	}
	return ChiMergeCounts(uppers, pos, neg, maxBins, threshold)
}

// ChiMergeCounts is ChiMerge's count-space core: it consumes per-interval
// positive/negative label counts plus each interval's inclusive upper bound
// and runs the same bottom-up chi-squared merging. Intervals with zero
// population are dropped up front. It is the entry point for mergeable
// binned label histograms (sharded fits), whose counts arrive pre-binned
// with cut points as upper bounds.
func ChiMergeCounts(uppers []float64, pos, neg []float64, maxBins int, threshold float64) []float64 {
	if maxBins < 2 {
		maxBins = 2
	}
	type interval struct {
		upper    float64
		pos, neg float64
	}
	ivs := make([]interval, 0, len(uppers))
	for b := range uppers {
		if pos[b]+neg[b] == 0 {
			continue
		}
		ivs = append(ivs, interval{upper: uppers[b], pos: pos[b], neg: neg[b]})
	}
	if len(ivs) == 0 {
		return nil
	}

	chi2 := func(a, b interval) float64 {
		// 2x2 chi-squared with expected counts from the merged interval.
		rowA := a.pos + a.neg
		rowB := b.pos + b.neg
		colP := a.pos + b.pos
		colN := a.neg + b.neg
		total := rowA + rowB
		if total == 0 || colP == 0 || colN == 0 || rowA == 0 || rowB == 0 {
			return 0
		}
		x := 0.0
		obs := [2][2]float64{{a.pos, a.neg}, {b.pos, b.neg}}
		rows := [2]float64{rowA, rowB}
		cols := [2]float64{colP, colN}
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				e := rows[r] * cols[c] / total
				if e == 0 {
					continue
				}
				d := obs[r][c] - e
				x += d * d / e
			}
		}
		return x
	}

	for len(ivs) > maxBins {
		best := -1
		bestChi := math.Inf(1)
		for i := 0; i+1 < len(ivs); i++ {
			x := chi2(ivs[i], ivs[i+1])
			if x < bestChi {
				bestChi = x
				best = i
			}
		}
		if best < 0 {
			break
		}
		if len(ivs) <= maxBins && bestChi > threshold {
			break
		}
		ivs[best].pos += ivs[best+1].pos
		ivs[best].neg += ivs[best+1].neg
		ivs[best].upper = ivs[best+1].upper
		ivs = append(ivs[:best+1], ivs[best+2:]...)
	}
	// Continue merging below the threshold even once under maxBins.
	for len(ivs) > 2 {
		best := -1
		bestChi := math.Inf(1)
		for i := 0; i+1 < len(ivs); i++ {
			x := chi2(ivs[i], ivs[i+1])
			if x < bestChi {
				bestChi = x
				best = i
			}
		}
		if best < 0 || bestChi > threshold {
			break
		}
		ivs[best].pos += ivs[best+1].pos
		ivs[best].neg += ivs[best+1].neg
		ivs[best].upper = ivs[best+1].upper
		ivs = append(ivs[:best+1], ivs[best+2:]...)
	}

	out := make([]float64, 0, len(ivs)-1)
	for i := 0; i+1 < len(ivs); i++ {
		out = append(out, ivs[i].upper)
	}
	return out
}
