package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Variance(xs); !almostEqual(got, 1.25, 1e-12) {
		t.Errorf("Variance = %v, want 1.25", got)
	}
	if got := Std(xs); !almostEqual(got, math.Sqrt(1.25), 1e-12) {
		t.Errorf("Std = %v, want sqrt(1.25)", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if got := BinaryEntropy([]float64{0, 0, 1, 1}); !almostEqual(got, math.Ln2, 1e-12) {
		t.Errorf("balanced entropy = %v, want ln 2", got)
	}
	if got := BinaryEntropy([]float64{1, 1, 1}); got != 0 {
		t.Errorf("pure entropy = %v, want 0", got)
	}
	if got := BinaryEntropy(nil); got != 0 {
		t.Errorf("empty entropy = %v, want 0", got)
	}
}

func TestPartitionEntropyPerfectSplit(t *testing.T) {
	labels := []float64{0, 0, 1, 1}
	parts := []int{0, 0, 1, 1}
	if got := PartitionEntropy(labels, parts, 2); got != 0 {
		t.Errorf("perfect split conditional entropy = %v, want 0", got)
	}
	// Uninformative partition keeps full entropy.
	parts = []int{0, 1, 0, 1}
	if got := PartitionEntropy(labels, parts, 2); !almostEqual(got, math.Ln2, 1e-12) {
		t.Errorf("uninformative split = %v, want ln 2", got)
	}
}

func TestGainRatio(t *testing.T) {
	labels := []float64{0, 0, 1, 1}
	perfect := []int{0, 0, 1, 1}
	// gain = ln2, split entropy = ln2 -> ratio 1.
	if got := GainRatio(labels, perfect, 2); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect gain ratio = %v, want 1", got)
	}
	useless := []int{0, 1, 0, 1}
	if got := GainRatio(labels, useless, 2); got != 0 {
		t.Errorf("useless gain ratio = %v, want 0", got)
	}
	onePart := []int{0, 0, 0, 0}
	if got := GainRatio(labels, onePart, 1); got != 0 {
		t.Errorf("degenerate gain ratio = %v, want 0", got)
	}
}

func TestGainRatioIgnoresNegativeParts(t *testing.T) {
	labels := []float64{0, 1, 0, 1}
	parts := []int{-1, 0, -1, 1}
	// Only rows 1 and 3 count; both positive, single-label -> gain 0.
	if got := GainRatio(labels, parts, 2); got != 0 {
		t.Errorf("gain ratio with masked rows = %v, want 0", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson(x,2x) = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson(x,-2x) = %v, want -1", got)
	}
	konst := []float64{3, 3, 3, 3, 3}
	if got := Pearson(x, konst); got != 0 {
		t.Errorf("Pearson with constant = %v, want 0", got)
	}
	if got := Pearson(x, []float64{1}); got != 0 {
		t.Errorf("Pearson length mismatch = %v, want 0", got)
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearsonSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		return almostEqual(Pearson(x, y), Pearson(y, x), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantiles(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	cuts := Quantiles(xs, 4)
	if len(cuts) != 3 {
		t.Fatalf("got %d cuts, want 3", len(cuts))
	}
	want := []float64{25, 50, 75}
	for i, c := range cuts {
		if c != want[i] {
			t.Errorf("cut[%d] = %v, want %v", i, c, want[i])
		}
	}
	if got := Quantiles(nil, 4); got != nil {
		t.Errorf("Quantiles(nil) = %v, want nil", got)
	}
	if got := Quantiles(xs, 1); got != nil {
		t.Errorf("Quantiles(q=1) = %v, want nil", got)
	}
}

func TestQuantilesDedup(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 1, 1, 1, 2}
	cuts := Quantiles(xs, 4)
	for i := 1; i < len(cuts); i++ {
		if cuts[i] == cuts[i-1] {
			t.Fatalf("duplicate cut %v", cuts[i])
		}
	}
}

func TestDigitize(t *testing.T) {
	cuts := []float64{10, 20}
	xs := []float64{5, 10, 15, 20, 25, math.NaN()}
	got := Digitize(xs, cuts)
	want := []int{0, 0, 1, 1, 2, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Digitize[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEqualFrequencyBinsBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	assign, nb := EqualFrequencyBins(xs, 10)
	if nb != 10 {
		t.Fatalf("got %d bins, want 10", nb)
	}
	counts := make([]int, nb)
	for _, b := range assign {
		counts[b]++
	}
	for b, c := range counts {
		if c < 50 || c > 200 {
			t.Errorf("bin %d holds %d rows; want roughly 100", b, c)
		}
	}
}

func TestEqualWidthBins(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	assign, nb := EqualWidthBins(xs, 5)
	if nb != 5 {
		t.Fatalf("got %d bins, want 5", nb)
	}
	if assign[0] != 0 || assign[len(assign)-1] != 4 {
		t.Errorf("extremes map to %d and %d, want 0 and 4", assign[0], assign[len(assign)-1])
	}
	// Constant column degenerates to one bin.
	konst := []float64{2, 2, 2}
	_, nb = EqualWidthBins(konst, 5)
	if nb != 1 {
		t.Errorf("constant column bins = %d, want 1", nb)
	}
}

func TestInformationValueSeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 2000
	strong := make([]float64, n)
	noise := make([]float64, n)
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		labels[i] = float64(i % 2)
		strong[i] = labels[i]*2 + rng.NormFloat64()*0.3
		noise[i] = rng.NormFloat64()
	}
	ivStrong := InformationValue(strong, labels, 10)
	ivNoise := InformationValue(noise, labels, 10)
	if ivStrong <= IVMedium {
		t.Errorf("strong feature IV = %v, want > %v", ivStrong, IVMedium)
	}
	if ivNoise >= IVWeak {
		t.Errorf("noise feature IV = %v, want < %v", ivNoise, IVWeak)
	}
	if ivStrong <= ivNoise {
		t.Errorf("IV ordering violated: strong %v <= noise %v", ivStrong, ivNoise)
	}
}

func TestInformationValueSingleClass(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := InformationValue(xs, []float64{1, 1, 1, 1}, 4); got != 0 {
		t.Errorf("IV with one class = %v, want 0", got)
	}
}

func TestInformationValueNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = float64(rng.Intn(2))
		}
		return InformationValue(xs, ys, 10) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIVBands(t *testing.T) {
	cases := []struct {
		iv   float64
		want string
	}{
		{0.01, "useless"},
		{0.05, "weak"},
		{0.2, "medium"},
		{0.4, "strong"},
		{0.9, "extremely strong"},
	}
	for _, c := range cases {
		if got := IVBand(c.iv); got != c.want {
			t.Errorf("IVBand(%v) = %q, want %q", c.iv, got, c.want)
		}
	}
}

func TestPearsonBands(t *testing.T) {
	cases := []struct {
		r    float64
		want string
	}{
		{0.1, "very weak or none"},
		{-0.3, "weak"},
		{0.5, "moderate"},
		{-0.7, "strong"},
		{0.95, "extremely strong"},
	}
	for _, c := range cases {
		if got := PearsonBand(c.r); got != c.want {
			t.Errorf("PearsonBand(%v) = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestKLD(t *testing.T) {
	p := []float64{0.5, 0.5}
	if got := KLD(p, p); !almostEqual(got, 0, 1e-12) {
		t.Errorf("KLD(p,p) = %v, want 0", got)
	}
	q := []float64{0.9, 0.1}
	if got := KLD(p, q); got <= 0 {
		t.Errorf("KLD(p,q) = %v, want > 0", got)
	}
	// p has mass where q has none -> +Inf.
	if got := KLD([]float64{1}, []float64{0}); !math.IsInf(got, 1) {
		t.Errorf("KLD with q=0 support = %v, want +Inf", got)
	}
}

func TestJSDProperties(t *testing.T) {
	p := []float64{0.7, 0.3}
	q := []float64{0.2, 0.8}
	d1 := JSD(p, q)
	d2 := JSD(q, p)
	if !almostEqual(d1, d2, 1e-12) {
		t.Errorf("JSD not symmetric: %v vs %v", d1, d2)
	}
	if d1 <= 0 {
		t.Errorf("JSD of distinct distributions = %v, want > 0", d1)
	}
	if got := JSD(p, p); !almostEqual(got, 0, 1e-12) {
		t.Errorf("JSD(p,p) = %v, want 0", got)
	}
	// Bounded by ln 2.
	if d := JSD([]float64{1, 0}, []float64{0, 1}); d > math.Ln2+1e-9 {
		t.Errorf("JSD = %v exceeds ln 2", d)
	}
}

func TestJSDDifferentLengths(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.25, 0.25, 0.25}
	d := JSD(p, q)
	if math.IsInf(d, 0) || math.IsNaN(d) || d < 0 {
		t.Errorf("JSD with padding = %v, want finite non-negative", d)
	}
}

func TestNormalize(t *testing.T) {
	xs := Normalize([]float64{1, 3})
	if !almostEqual(xs[0], 0.25, 1e-12) || !almostEqual(xs[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v", xs)
	}
	zero := []float64{0, 0}
	if got := Normalize(zero); got[0] != 0 || got[1] != 0 {
		t.Errorf("Normalize all-zero = %v, want unchanged", got)
	}
}

func TestSplitEntropy(t *testing.T) {
	parts := []int{0, 1, 0, 1}
	if got := SplitEntropy(parts, 2); !almostEqual(got, math.Ln2, 1e-12) {
		t.Errorf("SplitEntropy = %v, want ln 2", got)
	}
	if got := SplitEntropy([]int{0, 0}, 1); got != 0 {
		t.Errorf("one-part SplitEntropy = %v, want 0", got)
	}
}
