package stats

import (
	"math"
	"sort"
)

// This file implements multi-rank selection: partially sorting a slice so
// that a handful of order statistics land at their final positions, in
// expected O(n log q) instead of the O(n log n) a full sort costs. It is the
// engine behind Quantiles and therefore behind every equal-frequency IV
// computation and GBDT binner build — the former profile leader of Fit.

// selectRanks partially sorts xs in place so that xs[r] holds the r-th
// smallest element for every r in ranks. ranks must be sorted ascending,
// in-range and deduplicated. xs must not contain NaN.
func selectRanks(xs []float64, ranks []int) {
	if len(ranks) == 0 || len(xs) == 0 {
		return
	}
	// Depth limit: introsort-style safety net against adversarial pivot
	// behaviour; beyond it the remaining range is fully sorted.
	limit := 2 * intLog2(len(xs))
	selectRanksRange(xs, 0, len(xs), ranks, limit)
}

func intLog2(n int) int {
	l := 0
	for n > 1 {
		l++
		n >>= 1
	}
	return l
}

// selectRanksRange places every rank in [lo,hi). Iterative on the larger
// side, recursive on the smaller, so stack depth stays O(log n).
func selectRanksRange(xs []float64, lo, hi int, ranks []int, limit int) {
	for len(ranks) > 0 && hi-lo > 1 {
		if hi-lo <= 24 || limit <= 0 {
			insertionSortFloats(xs[lo:hi])
			return
		}
		limit--
		a, b := partition3(xs, lo, hi)
		// Ranks inside [a,b) already sit on the pivot run; split the rest.
		cut1 := sort.SearchInts(ranks, a)
		cut2 := sort.SearchInts(ranks, b)
		left, right := ranks[:cut1], ranks[cut2:]
		// Recurse into the smaller side, iterate on the larger.
		if a-lo <= hi-b {
			selectRanksRange(xs, lo, a, left, limit)
			lo, ranks = b, right
		} else {
			selectRanksRange(xs, b, hi, right, limit)
			hi, ranks = a, left
		}
	}
}

// partition3 performs a three-way (Dutch national flag) partition of
// xs[lo:hi) around a median-of-three pivot, returning [a,b) such that
// xs[lo:a] < pivot, xs[a:b] == pivot and xs[b:hi] > pivot. The equal run
// keeps duplicate-heavy columns (constant features, discretised values) from
// degrading selection to quadratic time.
func partition3(xs []float64, lo, hi int) (int, int) {
	mid := lo + (hi-lo)/2
	// Median of three: order xs[lo], xs[mid], xs[hi-1].
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi-1] < xs[mid] {
		xs[hi-1], xs[mid] = xs[mid], xs[hi-1]
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
	}
	pivot := xs[mid]

	a, i, b := lo, lo, hi
	for i < b {
		switch {
		case xs[i] < pivot:
			xs[i], xs[a] = xs[a], xs[i]
			a++
			i++
		case xs[i] > pivot:
			b--
			xs[i], xs[b] = xs[b], xs[i]
		default:
			i++
		}
	}
	return a, b
}

func insertionSortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// SearchCuts returns the first index j with cuts[j] >= v — the bin index
// under the (cuts[j-1], cuts[j]] convention shared by Digitize and the GBDT
// binner. It is a manual binary search: the closure-free inner loop is ~3×
// faster than sort.SearchFloat64s on the Fit hot path, where it runs once
// per (row, candidate feature).
func SearchCuts(cuts []float64, v float64) int {
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cuts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// QuantileScratch reuses working buffers across Quantiles computations so a
// caller binning hundreds of columns allocates O(1) instead of O(columns).
// The zero value is ready to use. Not safe for concurrent use; hot paths
// keep one per worker.
type QuantileScratch struct {
	buf     []float64
	ranks   []int
	cuts    []float64
	vals    []float64
	buckets []int32
	gather  []float64
	slot    []int16
	local   []int
	pos     []int
}

// numBuckets sizes the counting pass of the bucketed rank finder. 1024
// buckets over 10-64 requested quantiles keeps expected per-bucket refine
// sets tiny while the count array still fits in L1.
const numBuckets = 1024

// Quantiles is Quantiles with buffer reuse: the returned slice aliases the
// scratch and is only valid until the next call.
func (s *QuantileScratch) Quantiles(xs []float64, q int) []float64 {
	if q < 2 {
		return nil
	}
	// Pass 1: count non-NaN values and find the finite range.
	n := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		if v != v { // NaN
			continue
		}
		n++
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if n == 0 {
		return nil
	}
	// Nearest-rank indices, deduplicated and clamped exactly as the sorted
	// implementation did.
	s.ranks = s.ranks[:0]
	for k := 1; k < q; k++ {
		idx := k * n / q
		if idx >= n {
			idx = n - 1
		}
		if m := len(s.ranks); m == 0 || s.ranks[m-1] != idx {
			s.ranks = append(s.ranks, idx)
		}
	}

	values, ok := s.rankValuesBucketed(xs, s.ranks, lo, hi)
	if !ok {
		values = s.rankValuesSelect(xs, s.ranks)
	}
	s.cuts = s.cuts[:0]
	for _, c := range values {
		if m := len(s.cuts); m == 0 || c != s.cuts[m-1] {
			s.cuts = append(s.cuts, c)
		}
	}
	return s.cuts
}

// rankValuesBucketed finds the requested order statistics with a counting
// pass over equal-width buckets followed by exact selection inside only the
// buckets a rank lands in. It reads xs twice and writes almost nothing, so
// it is ~3× faster than in-place quickselect on the IV hot path. Returns
// ok=false when the value range is unusable (non-finite or zero-width) and
// the caller must fall back to rankValuesSelect.
func (s *QuantileScratch) rankValuesBucketed(xs []float64, ranks []int, lo, hi float64) ([]float64, bool) {
	if len(ranks) == 0 {
		return nil, false
	}
	width := hi - lo
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) || math.IsInf(width, 0) {
		return nil, false
	}
	if width <= 0 {
		// Constant column: every order statistic is lo.
		out := s.valuesOut(len(ranks))
		for i := range out {
			out[i] = lo
		}
		return out, true
	}
	if cap(s.buckets) < numBuckets {
		s.buckets = make([]int32, numBuckets)
	}
	counts := s.buckets[:numBuckets]
	for i := range counts {
		counts[i] = 0
	}
	scale := float64(numBuckets) / width
	// Pass 2: bucket counts.
	for _, v := range xs {
		if v != v {
			continue
		}
		b := int((v - lo) * scale)
		if b >= numBuckets {
			b = numBuckets - 1
		}
		counts[b]++
	}
	// Locate the bucket each rank falls into and rewrite the rank as an
	// offset local to its bucket. Ranks are ascending, so one cumulative
	// scan serves all of them. bucketSlot maps bucket -> need index (-1 for
	// buckets no rank needs); segStart gives each needed bucket a segment
	// of the shared gather buffer.
	type need struct {
		bucket int
		first  int // index into ranks of the first rank in this bucket
		count  int // how many ranks land in this bucket
		start  int // segment start in the gather buffer
		size   int // bucket population
	}
	if cap(s.slot) < numBuckets {
		s.slot = make([]int16, numBuckets)
	}
	slot := s.slot[:numBuckets]
	for i := range slot {
		slot[i] = -1
	}
	if cap(s.local) < len(ranks) {
		s.local = make([]int, len(ranks))
	}
	localRanks := s.local[:len(ranks)]
	var needs []need
	cum, ri, total := 0, 0, 0
	for b := 0; b < numBuckets && ri < len(ranks); b++ {
		c := int(counts[b])
		if c == 0 {
			continue
		}
		first := ri
		for ri < len(ranks) && ranks[ri] < cum+c {
			localRanks[ri] = ranks[ri] - cum
			ri++
		}
		if ri > first {
			slot[b] = int16(len(needs))
			needs = append(needs, need{bucket: b, first: first, count: ri - first, start: total, size: c})
			total += c
		}
		cum += c
	}
	// Pass 3: gather the members of every needed bucket in one sweep.
	if cap(s.gather) < total {
		s.gather = make([]float64, total)
	}
	gather := s.gather[:total]
	if cap(s.pos) < len(needs) {
		s.pos = make([]int, len(needs))
	}
	pos := s.pos[:len(needs)]
	for i, nd := range needs {
		pos[i] = nd.start
	}
	for _, v := range xs {
		if v != v {
			continue
		}
		b := int((v - lo) * scale)
		if b >= numBuckets {
			b = numBuckets - 1
		}
		if sl := slot[b]; sl >= 0 {
			gather[pos[sl]] = v
			pos[sl]++
		}
	}
	// Exact selection inside each needed bucket (typically ~n/numBuckets
	// values each).
	out := s.valuesOut(len(ranks))
	for _, nd := range needs {
		seg := gather[nd.start : nd.start+nd.size]
		local := localRanks[nd.first : nd.first+nd.count]
		selectRanks(seg, local)
		for i := 0; i < nd.count; i++ {
			out[nd.first+i] = seg[local[i]]
		}
	}
	return out, true
}

// rankValuesSelect is the fallback: copy the non-NaN values and run
// multi-rank quickselect in place.
func (s *QuantileScratch) rankValuesSelect(xs []float64, ranks []int) []float64 {
	if cap(s.buf) < len(xs) {
		s.buf = make([]float64, 0, len(xs))
	}
	clean := s.buf[:0]
	for _, v := range xs {
		if v == v { // !IsNaN without the call
			clean = append(clean, v)
		}
	}
	s.buf = clean
	selectRanks(clean, ranks)
	out := s.valuesOut(len(ranks))
	for i, r := range ranks {
		out[i] = clean[r]
	}
	return out
}

// valuesOut returns a scratch-backed result slice for rank values.
func (s *QuantileScratch) valuesOut(n int) []float64 {
	if cap(s.vals) < n {
		s.vals = make([]float64, n)
	}
	return s.vals[:n]
}
