package stats

import "math"

// This file generalises the binary Information Value / gain-ratio criteria
// to the other task families of core.Task:
//
//   - multiclass: a one-vs-rest Information Value averaged over classes,
//     computed from per-class binned label counts (reduces to the binary IV
//     at K=2 up to floating-point symmetry), and an entropy gain ratio over
//     K-class cell counts;
//   - regression: the correlation ratio η² (one-way ANOVA between-group
//     share of variance) over binned targets, and a variance-reduction gain
//     ratio over cell moments.
//
// Every criterion has a count-/moment-space entry point operating on the
// exact statistics the mergeable sketches of the sharded engine accumulate,
// so the in-memory and sharded fit paths score candidates through the same
// arithmetic.

// MulticlassIVFromCounts folds class-major binned label counts
// (counts[c][b] = rows of class c in bin b) into the multiclass Information
// Value: the mean over classes of the one-vs-rest binary IV, with the same
// 0.5 Laplace smoothing as IVFromCounts. Degenerate classes (empty, or
// covering every row) contribute 0, matching the binary convention. At K=2
// the result equals the binary IV up to floating-point rounding (the two
// one-vs-rest IVs are the same quantity with pos/neg swapped).
func MulticlassIVFromCounts(counts [][]float64) float64 {
	k := len(counts)
	if k == 0 || len(counts[0]) <= 1 {
		return 0
	}
	nb := len(counts[0])
	totals := make([]float64, k)
	binTotal := make([]float64, nb)
	var n float64
	for c := range counts {
		for b, v := range counts[c] {
			totals[c] += v
			binTotal[b] += v
		}
		n += totals[c]
	}
	// One-vs-rest counts come from the per-bin totals (exact: counts are
	// integer-valued), keeping the sweep O(K·B) rather than O(K²·B).
	neg := make([]float64, nb)
	var sum float64
	for c := 0; c < k; c++ {
		if totals[c] == 0 || totals[c] == n {
			continue
		}
		for b := 0; b < nb; b++ {
			neg[b] = binTotal[b] - counts[c][b]
		}
		sum += ivFromCounts(counts[c], neg, totals[c], n-totals[c])
	}
	return sum / float64(k)
}

// CorrelationRatioFromMoments folds per-bin target moments (count, sum, sum
// of squares) into the correlation ratio η² = SS_between / SS_total of a
// one-way ANOVA over the bins: 0 for no relation (or a constant target), 1
// when the bin determines the target exactly. The moments are plain sums, so
// per-partition moments added together reproduce the single-pass value.
func CorrelationRatioFromMoments(cnt, sum, sumsq []float64) float64 {
	var n, grand, total float64
	for b := range cnt {
		n += cnt[b]
		grand += sum[b]
		total += sumsq[b]
	}
	if n == 0 {
		return 0
	}
	sst := total - grand*grand/n
	if sst <= 0 {
		return 0
	}
	var ssb float64
	for b := range cnt {
		if cnt[b] > 0 {
			ssb += sum[b] * sum[b] / cnt[b]
		}
	}
	eta := (ssb - grand*grand/n) / sst
	if eta < 0 {
		return 0
	}
	if eta > 1 {
		return 1
	}
	return eta
}

// entropyK returns the Shannon entropy (nats) of class counts summing to n.
func entropyK(counts []float64, n float64) float64 {
	if n <= 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := c / n
		h -= p * math.Log(p)
	}
	return h
}

// GainRatioFromClassCounts computes the information gain ratio of a
// partition over K-class labels from flattened cell-major class counts:
// counts[cell*k+class] rows of that class in that cell. It is the K-class
// generalisation of GainRatioFromCounts and the count-space equivalent of
// GainRatioClasses; cell counts are integers, so per-partition counts merged
// by addition reproduce the single-pass value bit-for-bit.
func GainRatioFromClassCounts(counts []float64, cells, k int) float64 {
	tot := make([]float64, cells)
	classTot := make([]float64, k)
	var n float64
	for p := 0; p < cells; p++ {
		for c := 0; c < k; c++ {
			v := counts[p*k+c]
			tot[p] += v
			classTot[c] += v
		}
		n += tot[p]
	}
	if n == 0 {
		return 0
	}
	split := 0.0
	for p := 0; p < cells; p++ {
		if tot[p] == 0 {
			continue
		}
		f := tot[p] / n
		split -= f * math.Log(f)
	}
	if split <= 0 {
		return 0
	}
	base := entropyK(classTot, n)
	cond := 0.0
	for p := 0; p < cells; p++ {
		if tot[p] == 0 {
			continue
		}
		cond += tot[p] / n * entropyK(counts[p*k:(p+1)*k], tot[p])
	}
	gain := base - cond
	if gain < 0 {
		gain = 0
	}
	return gain / split
}

// GainRatioClasses computes the information gain ratio of a partition of
// rows with K-class labels (class indices 0..k-1): the multiclass analogue
// of GainRatio. Rows with part id < 0 or an out-of-range class are excluded.
func GainRatioClasses(labels []float64, parts []int, numParts, k int) float64 {
	counts := make([]float64, numParts*k)
	for i, p := range parts {
		if p < 0 || p >= numParts {
			continue
		}
		c := int(labels[i])
		if c < 0 || c >= k {
			continue
		}
		counts[p*k+c]++
	}
	return GainRatioFromClassCounts(counts, numParts, k)
}

// VarGainRatioFromMoments computes the variance-reduction gain ratio of a
// partition from per-cell target moments: the correlation ratio η² over the
// cells (the regression analogue of information gain, likewise in [0,1])
// divided by the partition's split entropy — so multi-way splits pay the
// same intrinsic-information penalty as in the classification gain ratio.
func VarGainRatioFromMoments(cnt, sum, sumsq []float64) float64 {
	var n float64
	for _, c := range cnt {
		n += c
	}
	if n == 0 {
		return 0
	}
	split := 0.0
	for _, c := range cnt {
		if c == 0 {
			continue
		}
		f := c / n
		split -= f * math.Log(f)
	}
	if split <= 0 {
		return 0
	}
	return CorrelationRatioFromMoments(cnt, sum, sumsq) / split
}

// VarGainRatio computes the variance-reduction gain ratio of a partition of
// rows against a continuous target: the count-space arithmetic of
// VarGainRatioFromMoments over per-cell moments accumulated in row order.
// Rows with part id < 0 are excluded.
func VarGainRatio(target []float64, parts []int, numParts int) float64 {
	cnt := make([]float64, numParts)
	sum := make([]float64, numParts)
	sumsq := make([]float64, numParts)
	for i, p := range parts {
		if p < 0 || p >= numParts {
			continue
		}
		y := target[i]
		cnt[p]++
		sum[p] += y
		sumsq[p] += y * y
	}
	return VarGainRatioFromMoments(cnt, sum, sumsq)
}

// CritScratch computes task-aware relevance criteria with reusable buffers,
// the multiclass/regression counterpart of IVScratch: one instance amortises
// the quantile working copy and the count/moment arrays across a column
// sweep. The zero value is ready to use; not safe for concurrent use.
type CritScratch struct {
	q      QuantileScratch
	ix     CutIndexer
	counts [][]float64 // class-major class counts
	flat   []float64   // backing storage for counts
	cnt    []float64
	sum    []float64
	sumsq  []float64
}

// MulticlassIV computes the multiclass Information Value of a feature
// against class-index labels (0..k-1) using equal-frequency binning into at
// most bins bins — the same cuts InformationValue uses, so the binary and
// multiclass criteria see identical partitions. NaN feature values and
// out-of-range classes are excluded.
func (s *CritScratch) MulticlassIV(feature, labels []float64, k, bins int) float64 {
	cuts := s.q.Quantiles(feature, bins)
	numBins := len(cuts) + 1
	if numBins <= 1 || k < 2 {
		return 0
	}
	s.ix.Reset(cuts)
	counts := s.classCounts(k, numBins)
	for i, v := range feature {
		if math.IsNaN(v) {
			continue
		}
		c := int(labels[i])
		if c < 0 || c >= k {
			continue
		}
		counts[c][s.ix.Find(v)]++
	}
	return MulticlassIVFromCounts(counts)
}

// CorrelationRatio computes η² of a continuous target against a feature
// binned equal-frequency into at most bins bins. NaN feature values are
// excluded; the target is assumed finite (validated at fit entry).
func (s *CritScratch) CorrelationRatio(feature, target []float64, bins int) float64 {
	cuts := s.q.Quantiles(feature, bins)
	numBins := len(cuts) + 1
	if numBins <= 1 {
		return 0
	}
	s.ix.Reset(cuts)
	cnt, sum, sumsq := s.moments(numBins)
	for i, v := range feature {
		if math.IsNaN(v) {
			continue
		}
		b := s.ix.Find(v)
		y := target[i]
		cnt[b]++
		sum[b] += y
		sumsq[b] += y * y
	}
	return CorrelationRatioFromMoments(cnt, sum, sumsq)
}

// classCounts returns a zeroed class-major count matrix from the scratch.
func (s *CritScratch) classCounts(k, bins int) [][]float64 {
	if cap(s.flat) < k*bins {
		s.flat = make([]float64, k*bins)
	}
	flat := s.flat[:k*bins]
	for i := range flat {
		flat[i] = 0
	}
	if cap(s.counts) < k {
		s.counts = make([][]float64, k)
	}
	counts := s.counts[:k]
	for c := 0; c < k; c++ {
		counts[c] = flat[c*bins : (c+1)*bins]
	}
	return counts
}

// moments returns zeroed per-bin moment slices from the scratch.
func (s *CritScratch) moments(bins int) (cnt, sum, sumsq []float64) {
	if cap(s.cnt) < bins {
		s.cnt = make([]float64, bins)
		s.sum = make([]float64, bins)
		s.sumsq = make([]float64, bins)
	}
	cnt, sum, sumsq = s.cnt[:bins], s.sum[:bins], s.sumsq[:bins]
	for i := range cnt {
		cnt[i] = 0
		sum[i] = 0
		sumsq[i] = 0
	}
	return cnt, sum, sumsq
}
