package sketch

import "math"

// Moments is a mergeable count/mean/M2 accumulator over the non-NaN values
// of a column (Welford update, Chan et al. pairwise merge). Rows holds the
// total observations including NaNs, so a merged Moments knows the full
// column length.
type Moments struct {
	Rows int64   // all observations, NaN included
	N    int64   // non-NaN observations
	Mean float64 // running mean of the non-NaN values
	M2   float64 // sum of squared deviations from the mean
	NaNs int64   // NaN observations
}

// Add observes one value.
func (m *Moments) Add(v float64) {
	m.Rows++
	if math.IsNaN(v) {
		m.NaNs++
		return
	}
	m.N++
	d := v - m.Mean
	m.Mean += d / float64(m.N)
	m.M2 += d * (v - m.Mean)
}

// AddAll observes a column of values. The accumulation is the exact
// per-value Add sequence with the fields held in locals — same float
// operations in the same order, without the per-value store/reload.
func (m *Moments) AddAll(vs []float64) {
	rows, n, nans := m.Rows, m.N, m.NaNs
	mean, m2 := m.Mean, m.M2
	for _, v := range vs {
		rows++
		if math.IsNaN(v) {
			nans++
			continue
		}
		n++
		d := v - mean
		mean += d / float64(n)
		m2 += d * (v - mean)
	}
	m.Rows, m.N, m.NaNs, m.Mean, m.M2 = rows, n, nans, mean, m2
}

// Merge folds another accumulator into m (Chan et al. parallel update).
func (m *Moments) Merge(o *Moments) {
	if o == nil || o.Rows == 0 {
		return
	}
	m.Rows += o.Rows
	m.NaNs += o.NaNs
	if o.N == 0 {
		return
	}
	if m.N == 0 {
		m.N, m.Mean, m.M2 = o.N, o.Mean, o.M2
		return
	}
	n1, n2 := float64(m.N), float64(o.N)
	d := o.Mean - m.Mean
	n := n1 + n2
	m.Mean += d * n2 / n
	m.M2 += o.M2 + d*d*n1*n2/n
	m.N += o.N
}

// Variance returns the population variance of the non-NaN values (0 when
// fewer than one value).
func (m *Moments) Variance() float64 {
	if m.N == 0 {
		return 0
	}
	return m.M2 / float64(m.N)
}

// Std returns the population standard deviation.
func (m *Moments) Std() float64 { return math.Sqrt(m.Variance()) }
