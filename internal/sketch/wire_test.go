package sketch

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randomQuantile builds a sketch over n random values (some NaN) so levels,
// errors and extrema are all populated.
func randomQuantile(rng *rand.Rand, size, n int) *Quantile {
	q := NewQuantile(size)
	for i := 0; i < n; i++ {
		if rng.Intn(17) == 0 {
			q.Add(math.NaN())
			continue
		}
		q.Add(rng.NormFloat64() * 10)
	}
	return q
}

func TestQuantileWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 50, 1000, 5000} {
		q := randomQuantile(rng, 64, n)
		dec, rest, err := DecodeQuantile(AppendQuantile(nil, q))
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if len(rest) != 0 {
			t.Fatalf("n=%d: %d unconsumed bytes", n, len(rest))
		}
		if dec.count != q.count || dec.nan != q.nan || dec.size != q.size {
			t.Fatalf("n=%d: counts differ: %+v vs %+v", n, dec, q)
		}
		if dec.min != q.min && !(math.IsInf(dec.min, 1) && math.IsInf(q.min, 1)) {
			t.Fatalf("n=%d: min %v vs %v", n, dec.min, q.min)
		}
		if !reflect.DeepEqual(dec.levels, q.levels) && !(len(dec.levels) == 0 && levelsEmpty(q.levels)) {
			t.Fatalf("n=%d: levels differ", n)
		}
		// The contract that matters downstream: merging the decoded partial
		// is bit-identical to merging the original.
		a, b := NewQuantile(64), NewQuantile(64)
		a.AddAll([]float64{3, 1, 4, 1, 5})
		b.AddAll([]float64{3, 1, 4, 1, 5})
		a.Merge(q)
		b.Merge(dec)
		ca, cb := a.Cuts(10), b.Cuts(10)
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("n=%d: merged cuts differ: %v vs %v", n, ca, cb)
		}
		if a.ErrorBound() != b.ErrorBound() {
			t.Fatalf("n=%d: error bounds differ", n)
		}
	}
}

func levelsEmpty(levels [][]wpoint) bool {
	for _, l := range levels {
		if len(l) > 0 {
			return false
		}
	}
	return true
}

func TestMomentsWireRoundTrip(t *testing.T) {
	m := &Moments{}
	m.AddAll([]float64{1, 2, math.NaN(), 4, 8, -3})
	dec, rest, err := DecodeMoments(AppendMoments(nil, m))
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (rest %d)", err, len(rest))
	}
	if *dec != *m {
		t.Fatalf("round trip changed moments: %+v vs %+v", dec, m)
	}
}

func TestLabelHistWireRoundTrip(t *testing.T) {
	h := NewLabelHist([]float64{-1, 0, 1})
	h.AddCol(
		[]float64{-2, -1, 0.5, 3, math.NaN(), 0},
		[]float64{1, 0, 1, 1, 1, 0},
	)
	dec, rest, err := DecodeLabelHist(AppendLabelHist(nil, h))
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (rest %d)", err, len(rest))
	}
	if !reflect.DeepEqual(dec.pos, h.pos) || !reflect.DeepEqual(dec.neg, h.neg) ||
		dec.nanPos != h.nanPos || dec.nanNeg != h.nanNeg {
		t.Fatalf("round trip changed counts")
	}
	if err := h.Merge(dec); err != nil {
		t.Fatalf("merge decoded: %v", err)
	}
}

func TestClassHistWireRoundTrip(t *testing.T) {
	h := NewClassHist([]float64{0, 2}, 3)
	h.AddCol(
		[]float64{-1, 1, 3, math.NaN(), 2},
		[]float64{0, 1, 2, 1, 0},
	)
	dec, rest, err := DecodeClassHist(AppendClassHist(nil, h))
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (rest %d)", err, len(rest))
	}
	if !reflect.DeepEqual(dec.flat, h.flat) || !reflect.DeepEqual(dec.nan, h.nan) {
		t.Fatalf("round trip changed counts")
	}
	if err := h.Merge(dec); err != nil {
		t.Fatalf("merge decoded: %v", err)
	}
}

func TestMomentHistWireRoundTrip(t *testing.T) {
	h := NewMomentHist([]float64{0, 1})
	h.AddCol([]float64{-1, 0.5, 2, math.NaN()}, []float64{1, 2, 3, 4})
	dec, rest, err := DecodeMomentHist(AppendMomentHist(nil, h))
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (rest %d)", err, len(rest))
	}
	if !reflect.DeepEqual(dec.cnt, h.cnt) || !reflect.DeepEqual(dec.sum, h.sum) ||
		!reflect.DeepEqual(dec.sumsq, h.sumsq) || dec.nanN != h.nanN {
		t.Fatalf("round trip changed moments")
	}
}

func TestGramWireRoundTrip(t *testing.T) {
	g := NewGram(3)
	g.AddChunk([][]float64{
		{1, 2, math.NaN(), 4},
		{2, 1, 3, 0},
		{0, math.NaN(), 1, 2},
	})
	dec, rest, err := DecodeGram(AppendGram(nil, g))
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (rest %d)", err, len(rest))
	}
	if dec.k != g.k || dec.rows != g.rows ||
		!reflect.DeepEqual(dec.sxy, g.sxy) || !reflect.DeepEqual(dec.sx, g.sx) ||
		!reflect.DeepEqual(dec.sy, g.sy) || !reflect.DeepEqual(dec.cnt, g.cnt) {
		t.Fatalf("round trip changed gram")
	}
}

// TestRefinerGatherWireRoundTrip checks the distributed gather path end to
// end: a shadow rebuilt from transported brackets, accumulated remotely,
// serialized, decoded and merged must yield the same exact values as the
// local shadow fold.
func TestRefinerGatherWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	col := make([]float64, 4000)
	for i := range col {
		col[i] = math.Round(rng.NormFloat64() * 100)
	}
	q := NewQuantile(32)
	q.AddAll(col)
	ranks := CutRanks(q.Count(), 10)
	local := NewRefiner(q, ranks)
	remoteMaster := NewRefiner(q, ranks)

	rks, lo, hi, resolved := local.Brackets()
	for _, chunk := range [][]float64{col[:1500], col[1500:]} {
		lsh := local.Shadow()
		lsh.AddChunk(chunk)
		local.Merge(lsh)

		rsh := NewShadowRefiner(rks, lo, hi, resolved)
		rsh.AddChunk(chunk)
		dec, rest, err := DecodeRefinerGather(AppendRefinerGather(nil, rsh))
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode gather: %v (rest %d)", err, len(rest))
		}
		remoteMaster.Merge(dec)
	}
	for _, rk := range ranks {
		if lv, rv := local.Value(rk), remoteMaster.Value(rk); lv != rv {
			t.Fatalf("rank %d: local %v, remote %v", rk, lv, rv)
		}
	}
}

func TestDecodeAnyDispatch(t *testing.T) {
	m := &Moments{}
	m.Add(3)
	v, _, err := DecodeAny(AppendMoments(nil, m))
	if err != nil {
		t.Fatalf("DecodeAny: %v", err)
	}
	if _, ok := v.(*Moments); !ok {
		t.Fatalf("DecodeAny returned %T", v)
	}
	if _, _, err := DecodeAny([]byte{250}); err == nil {
		t.Fatal("unknown tag decoded")
	}
	var de *DecodeError
	if _, _, err := DecodeAny(nil); !errors.As(err, &de) {
		t.Fatalf("empty input error %T, want *DecodeError", err)
	}
}

// TestDecodeCorruptedTyped pins the failure mode for structurally corrupted
// frames: a typed *DecodeError, never a panic and never silent success when
// an invariant is broken.
func TestDecodeCorruptedTyped(t *testing.T) {
	q := randomQuantile(rand.New(rand.NewSource(5)), 32, 500)
	enc := AppendQuantile(nil, q)
	corruptions := map[string][]byte{
		"empty":     {},
		"truncated": enc[:len(enc)/2],
		"wrong tag": append([]byte{wireGram}, enc[1:]...),
	}
	// Flip the count so level weights no longer sum to it.
	bad := append([]byte(nil), enc...)
	bad[5] ^= 0xff
	corruptions["count flip"] = bad

	for name, b := range corruptions {
		_, _, err := DecodeQuantile(b)
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("%s: error %v (%T), want *DecodeError", name, err, err)
		}
	}
}
