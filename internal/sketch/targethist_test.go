package sketch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func targetData(n int, seed int64) (vals, classes, targets []float64) {
	rng := rand.New(rand.NewSource(seed))
	vals = make([]float64, n)
	classes = make([]float64, n)
	targets = make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
		classes[i] = float64(rng.Intn(3))
		targets[i] = 2*vals[i] + rng.NormFloat64()
	}
	for i := 0; i < n; i += 41 {
		vals[i] = math.NaN()
	}
	return vals, classes, targets
}

// TestClassHistMatchesScratch: a ClassHist over the same cuts reproduces
// the in-memory CritScratch criterion exactly, merged in any partition
// order.
func TestClassHistMatchesScratch(t *testing.T) {
	vals, classes, _ := targetData(3000, 1)
	cuts := stats.Quantiles(vals, 10)

	var s stats.CritScratch
	want := s.MulticlassIV(vals, classes, 3, 10)

	whole := NewClassHist(cuts, 3)
	whole.AddCol(vals, classes)
	if got := whole.Criterion(); got != want {
		t.Fatalf("single-pass ClassHist: %g, scratch %g", got, want)
	}

	// Three partitions merged in both orders.
	for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}} {
		parts := make([]*ClassHist, 3)
		bounds := []int{0, 1000, 2100, 3000}
		for p := 0; p < 3; p++ {
			parts[p] = NewClassHist(cuts, 3)
			parts[p].AddCol(vals[bounds[p]:bounds[p+1]], classes[bounds[p]:bounds[p+1]])
		}
		merged := NewClassHist(cuts, 3)
		for _, p := range order {
			if err := merged.MergeHist(parts[p]); err != nil {
				t.Fatal(err)
			}
		}
		if got := merged.Criterion(); got != want {
			t.Fatalf("merge order %v: %g, scratch %g", order, got, want)
		}
	}
}

// TestMomentHistMatchesScratch: a MomentHist accumulated in row order
// reproduces the in-memory correlation ratio bit-for-bit; partition merges
// reproduce it exactly when the partials preserve row order.
func TestMomentHistMatchesScratch(t *testing.T) {
	vals, _, targets := targetData(3000, 2)
	cuts := stats.Quantiles(vals, 10)

	var s stats.CritScratch
	want := s.CorrelationRatio(vals, targets, 10)
	if want <= 0.5 {
		t.Fatalf("test data carries no signal: η² = %g", want)
	}

	whole := NewMomentHist(cuts)
	whole.AddCol(vals, targets)
	if got := whole.Criterion(); got != want {
		t.Fatalf("single-pass MomentHist: %g, scratch %g", got, want)
	}

	merged := NewMomentHist(cuts)
	bounds := []int{0, 700, 1600, 3000}
	for p := 0; p < 3; p++ {
		part := NewMomentHist(cuts)
		part.AddCol(vals[bounds[p]:bounds[p+1]], targets[bounds[p]:bounds[p+1]])
		if err := merged.MergeHist(part); err != nil {
			t.Fatal(err)
		}
	}
	if got := merged.Criterion(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("merged MomentHist: %g, scratch %g", got, want)
	}
}

// TestClassHistAbsentClass: a partition that never sees one class merges
// cleanly (zero counts) and the merged criterion equals the single pass.
func TestClassHistAbsentClass(t *testing.T) {
	vals, classes, _ := targetData(2000, 3)
	// Class 2 only occurs in the first half.
	for i := 1000; i < 2000; i++ {
		if classes[i] == 2 {
			classes[i] = float64(i % 2)
		}
	}
	cuts := stats.Quantiles(vals, 10)
	whole := NewClassHist(cuts, 3)
	whole.AddCol(vals, classes)

	merged := NewClassHist(cuts, 3)
	for _, b := range [][2]int{{0, 1000}, {1000, 2000}} {
		part := NewClassHist(cuts, 3)
		part.AddCol(vals[b[0]:b[1]], classes[b[0]:b[1]])
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := merged.Criterion(), whole.Criterion(); got != want {
		t.Fatalf("absent-class merge: %g vs %g", got, want)
	}
}

func TestTargetHistMergeErrors(t *testing.T) {
	cuts := []float64{0, 1}
	other := []float64{0, 2}
	if err := NewClassHist(cuts, 3).MergeHist(NewClassHist(other, 3)); err == nil {
		t.Error("ClassHist merged different cuts")
	}
	if err := NewClassHist(cuts, 3).MergeHist(NewClassHist(cuts, 4)); err == nil {
		t.Error("ClassHist merged different class counts")
	}
	if err := NewMomentHist(cuts).MergeHist(NewMomentHist(other)); err == nil {
		t.Error("MomentHist merged different cuts")
	}
	if err := NewMomentHist(cuts).MergeHist(NewClassHist(cuts, 2)); err == nil {
		t.Error("MomentHist merged a ClassHist")
	}
	if err := NewLabelHist(cuts).MergeHist(NewMomentHist(cuts)); err == nil {
		t.Error("LabelHist merged a MomentHist")
	}
}
