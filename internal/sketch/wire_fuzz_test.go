package sketch

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// wireSeedFrames builds one valid encoding per wire family, the seed corpus
// FuzzSketchDecode mutates from.
func wireSeedFrames() map[string][]byte {
	rng := rand.New(rand.NewSource(7))
	q := NewQuantile(16)
	for i := 0; i < 400; i++ {
		q.Add(rng.NormFloat64())
	}
	q.Add(math.NaN())

	m := &Moments{}
	m.AddAll([]float64{1, 2, math.NaN(), -4, 9})

	lh := NewLabelHist([]float64{-0.5, 0, 0.5})
	lh.AddCol([]float64{-1, 0, 1, math.NaN()}, []float64{1, 0, 1, 0})

	ch := NewClassHist([]float64{0, 1}, 3)
	ch.AddCol([]float64{-1, 0.5, 2, math.NaN()}, []float64{0, 1, 2, 1})

	mh := NewMomentHist([]float64{0})
	mh.AddCol([]float64{-1, 1, math.NaN()}, []float64{2, 3, 4})

	g := NewGram(3)
	g.AddChunk([][]float64{{1, 2}, {3, math.NaN()}, {5, 6}})

	rf := NewRefiner(q, CutRanks(q.Count(), 5))
	sh := rf.Shadow()
	sh.AddChunk([]float64{0.1, -0.3, 2.5})

	return map[string][]byte{
		"quantile":   AppendQuantile(nil, q),
		"moments":    AppendMoments(nil, m),
		"labelhist":  AppendLabelHist(nil, lh),
		"classhist":  AppendClassHist(nil, ch),
		"momenthist": AppendMomentHist(nil, mh),
		"gram":       AppendGram(nil, g),
		"refgather":  AppendRefinerGather(nil, sh),
	}
}

// FuzzSketchDecode feeds arbitrary bytes to the wire decoders. The contract
// under fuzz: a corrupted frame either decodes to a structurally valid value
// (which must then survive being queried and merged) or fails with a typed
// *DecodeError — never a panic, never an unbounded allocation. Corpus seeds
// live in testdata/fuzz/FuzzSketchDecode (regenerate with
// SKETCH_WRITE_CORPUS=1 go test ./internal/sketch -run TestWriteSketchDecodeSeedCorpus).
func FuzzSketchDecode(f *testing.F) {
	for _, frame := range wireSeedFrames() {
		f.Add(frame)
		if len(frame) > 8 {
			trunc := frame[:len(frame)/2]
			f.Add(append([]byte(nil), trunc...))
			flip := append([]byte(nil), frame...)
			flip[len(flip)/3] ^= 0x40
			f.Add(flip)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, _, err := DecodeAny(data)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("decode error %v (%T), want *DecodeError", err, err)
			}
			return
		}
		// A frame that decodes must behave: queries and merges may produce
		// garbage statistics from garbage counts, but never a panic.
		switch s := v.(type) {
		case *Quantile:
			s.Cuts(10)
			s.RankValue(0)
			fresh := NewQuantile(s.Size())
			fresh.Add(1)
			fresh.Merge(s)
			fresh.Cuts(4)
		case *Moments:
			acc := &Moments{}
			acc.Add(2)
			acc.Merge(s)
			acc.Variance()
		case *LabelHist:
			s.Criterion()
			if err := s.Merge(s.Shadow()); err != nil {
				t.Fatalf("merge own shadow: %v", err)
			}
		case *ClassHist:
			s.Criterion()
			if err := s.Merge(s.Shadow()); err != nil {
				t.Fatalf("merge own shadow: %v", err)
			}
		case *MomentHist:
			s.Criterion()
		case *Gram:
			fresh := NewGram(s.K())
			fresh.Merge(s)
			if s.K() >= 2 {
				s.Dot(0, 1, 0, 1, 0, 1)
			}
		case *Refiner:
			master := NewShadowRefiner(
				make([]int64, len(s.ranks)),
				make([]float64, len(s.ranks)),
				make([]float64, len(s.ranks)),
				make([]bool, len(s.ranks)))
			master.Merge(s)
		default:
			t.Fatalf("unexpected decode type %T", v)
		}
	})
}

// TestWriteSketchDecodeSeedCorpus regenerates the checked-in seed corpus for
// FuzzSketchDecode when SKETCH_WRITE_CORPUS=1 is set; otherwise it verifies
// the corpus files exist and are valid frames, so corpus rot fails the build.
func TestWriteSketchDecodeSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSketchDecode")
	frames := wireSeedFrames()
	if os.Getenv("SKETCH_WRITE_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, frame := range frames {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(frame)))
			if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for name := range frames {
		p := filepath.Join(dir, "seed-"+name)
		body, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("missing seed corpus %s (regenerate with SKETCH_WRITE_CORPUS=1): %v", p, err)
		}
		var quoted string
		if _, err := fmt.Sscanf(string(body), "go test fuzz v1\n[]byte(%q)\n", &quoted); err != nil {
			t.Fatalf("seed corpus %s not in go fuzz v1 format: %v", p, err)
		}
		if _, _, err := DecodeAny([]byte(quoted)); err != nil {
			t.Fatalf("seed corpus %s no longer decodes: %v", p, err)
		}
	}
}
