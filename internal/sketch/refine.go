package sketch

import (
	"math"
	"sort"
)

// Refiner turns a merged (approximate) Quantile sketch into exact order
// statistics with one more streaming pass over the data. The sketch brackets
// every requested rank r inside a value interval [lo, hi] guaranteed to
// contain the true rank-r value (brackets span ±2·ErrorBound ranks); the
// refinement pass then gathers only the values that fall inside a bracket —
// O(targets · ErrorBound) values in total, independent of n — plus an exact
// count of values below each bracket. Value() afterwards returns exact
// nearest-rank order statistics, bit-identical to sorting the full column.
//
// Brackets that collapse to a single value (duplicate-heavy regions,
// constant columns) resolve without gathering, so heavy duplication cannot
// inflate the gather buffers; strictly-interior values per target are
// bounded by the bracket's rank span. AddChunk is one-pass streaming and
// Merge combines refiners built over disjoint partitions, keeping the whole
// construction mergeable.
type Refiner struct {
	ranks    []int64 // requested target ranks, ascending, deduplicated
	lo, hi   []float64
	resolved []bool // bracket collapsed: value known without gathering

	lowDelta []int64     // per-target prefix deltas for the below-bracket count
	loEq     []int64     // gathered: count of values == lo
	hiEq     []int64     // gathered: count of values == hi
	mid      [][]float64 // gathered: values strictly inside the bracket

	finalized bool
	lowCount  []int64
}

// NewRefiner brackets the given target ranks (ascending, in [0, Count))
// using the sketch's current summary. A lossless sketch resolves every
// target immediately — NeedsPass reports whether a gather pass is required.
func NewRefiner(q *Quantile, ranks []int64) *Refiner {
	r := &Refiner{
		ranks:    append([]int64(nil), ranks...),
		lo:       make([]float64, len(ranks)),
		hi:       make([]float64, len(ranks)),
		resolved: make([]bool, len(ranks)),
		lowDelta: make([]int64, len(ranks)+1),
		loEq:     make([]int64, len(ranks)),
		hiEq:     make([]int64, len(ranks)),
		mid:      make([][]float64, len(ranks)),
	}
	e := 2 * q.ErrorBound()
	pts := q.merged()
	for t, rank := range r.ranks {
		r.lo[t] = valueAtRank(pts, rank-e)
		r.hi[t] = valueAtRank(pts, rank+e)
		if r.lo[t] == r.hi[t] {
			// The bracket pinches to one value, which must be the answer.
			r.resolved[t] = true
		}
	}
	return r
}

// valueAtRank walks a merged weighted list to the value covering the given
// rank (clamped).
func valueAtRank(pts []wpoint, rank int64) float64 {
	if len(pts) == 0 {
		return math.NaN()
	}
	if rank < 0 {
		rank = 0
	}
	var cum int64
	for _, p := range pts {
		cum += p.w
		if rank < cum {
			return p.v
		}
	}
	return pts[len(pts)-1].v
}

// NeedsPass reports whether any target still needs gathered values.
func (r *Refiner) NeedsPass() bool {
	for t := range r.resolved {
		if !r.resolved[t] {
			return true
		}
	}
	return false
}

// AddChunk streams one chunk of the column (NaNs skipped, as everywhere).
func (r *Refiner) AddChunk(vals []float64) {
	nt := len(r.ranks)
	if nt == 0 {
		return
	}
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		// Targets with lo > v form a suffix; record one delta at its start.
		idx := sort.Search(nt, func(t int) bool { return r.lo[t] > v })
		r.lowDelta[idx]++
		// Gather into the run of brackets containing v.
		t := sort.Search(nt, func(t int) bool { return r.hi[t] >= v })
		for ; t < nt && r.lo[t] <= v; t++ {
			if r.resolved[t] {
				continue
			}
			switch {
			case v == r.lo[t]:
				r.loEq[t]++
			case v == r.hi[t]:
				r.hiEq[t]++
			default:
				r.mid[t] = append(r.mid[t], v)
			}
		}
	}
}

// Merge folds a refiner built over another partition (with identical
// targets and brackets) into r.
func (r *Refiner) Merge(o *Refiner) {
	for t := range r.ranks {
		r.lowDelta[t] += o.lowDelta[t]
		r.loEq[t] += o.loEq[t]
		r.hiEq[t] += o.hiEq[t]
		r.mid[t] = append(r.mid[t], o.mid[t]...)
	}
	r.lowDelta[len(r.ranks)] += o.lowDelta[len(o.ranks)]
}

func (r *Refiner) finalize() {
	if r.finalized {
		return
	}
	r.finalized = true
	r.lowCount = make([]int64, len(r.ranks))
	var cum int64
	for t := range r.ranks {
		cum += r.lowDelta[t]
		r.lowCount[t] = cum
	}
	for t := range r.mid {
		sort.Float64s(r.mid[t])
	}
}

// Value returns the exact value at the target rank (which must be one of
// the ranks given to NewRefiner, after the gather pass completed).
func (r *Refiner) Value(rank int64) float64 {
	t := sort.Search(len(r.ranks), func(i int) bool { return r.ranks[i] >= rank })
	if t == len(r.ranks) || r.ranks[t] != rank {
		return math.NaN()
	}
	if r.resolved[t] {
		return r.lo[t]
	}
	r.finalize()
	local := rank - r.lowCount[t]
	switch {
	case local < r.loEq[t]:
		return r.lo[t]
	case local < r.loEq[t]+int64(len(r.mid[t])):
		return r.mid[t][local-r.loEq[t]]
	case local < r.loEq[t]+int64(len(r.mid[t]))+r.hiEq[t]:
		return r.hi[t]
	default:
		// Out of the gathered range: the bracket guarantee was violated,
		// which cannot happen for a correctly merged sketch; fall back to
		// the nearest bracket edge rather than panicking.
		if local < 0 {
			return r.lo[t]
		}
		return r.hi[t]
	}
}

// CutRanks returns the 0-based nearest-rank targets of a bins-quantile
// split over n values — the ranks stats.Quantiles reads — deduplicated.
func CutRanks(n int64, bins int) []int64 {
	if bins < 2 || n <= 0 {
		return nil
	}
	out := make([]int64, 0, bins-1)
	for k := 1; k < bins; k++ {
		idx := int64(k) * n / int64(bins)
		if idx >= n {
			idx = n - 1
		}
		if m := len(out); m == 0 || out[m-1] != idx {
			out = append(out, idx)
		}
	}
	return out
}

// ExactCuts reproduces stats.Quantiles(column, bins) exactly from a sketch
// plus its completed refiner (refiner may be nil when the sketch is
// lossless): rank targets and value deduplication match bit-for-bit.
func ExactCuts(q *Quantile, r *Refiner, bins int) []float64 {
	if r == nil {
		return q.Cuts(bins)
	}
	ranks := CutRanks(q.Count(), bins)
	out := make([]float64, 0, len(ranks))
	for _, rank := range ranks {
		v := r.Value(rank)
		if m := len(out); m == 0 || out[m-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// ExactBinnerCuts is ExactCuts with the trailing cut >= max dropped,
// mirroring Quantile.BinnerCuts and the in-memory GBDT binner.
func ExactBinnerCuts(q *Quantile, r *Refiner, maxBins int) []float64 {
	cuts := ExactCuts(q, r, maxBins)
	if len(cuts) == 0 {
		return nil
	}
	if cuts[len(cuts)-1] >= q.Max() {
		cuts = cuts[:len(cuts)-1]
	}
	return cuts
}
