package sketch

import (
	"math"
	"sort"
)

// Refiner turns a merged (approximate) Quantile sketch into exact order
// statistics with one more streaming pass over the data. The sketch brackets
// every requested rank r inside a value interval [lo, hi] guaranteed to
// contain the true rank-r value (brackets span ±2·ErrorBound ranks); the
// refinement pass then gathers only the values that fall inside a bracket —
// O(targets · ErrorBound) values in total, independent of n — plus an exact
// count of values below each bracket. Value() afterwards returns exact
// nearest-rank order statistics, bit-identical to sorting the full column.
//
// Brackets that collapse to a single value (duplicate-heavy regions,
// constant columns) resolve without gathering, so heavy duplication cannot
// inflate the gather buffers; strictly-interior values per target are
// bounded by the bracket's rank span. AddChunk is one-pass streaming and
// Merge combines refiners built over disjoint partitions, keeping the whole
// construction mergeable.
type Refiner struct {
	ranks    []int64 // requested target ranks, ascending, deduplicated
	lo, hi   []float64
	resolved []bool // bracket collapsed: value known without gathering

	lowDelta []int64     // per-target prefix deltas for the below-bracket count
	loEq     []int64     // gathered: count of values == lo
	hiEq     []int64     // gathered: count of values == hi
	mid      [][]float64 // gathered: values strictly inside the bracket

	finalized bool
	lowCount  []int64
	below     []int // AddSorted scratch: per-target below-bracket counts

	idx *edgeIndex // shared bucket table over lo (nil: binary search)
}

// edgeIndex is a uniform bucket table over a refiner's ascending lo edges,
// the CutIndexer trick specialised to AddChunk's upper-bound search: find(v)
// returns the number of edges <= v with one multiply and a short corrective
// scan, exact for every finite v regardless of rounding in the bucket
// mapping. Built once per refiner and shared read-only by its shadows.
type edgeIndex struct {
	lo      []float64
	base    float64
	invStep float64
	table   []int32
}

// newEdgeIndex builds the table, or returns nil when the layout defeats it
// (too few edges, non-finite or zero span, or a bucket spanning so many
// edges the corrective scan would approach binary-search cost).
func newEdgeIndex(lo []float64) *edgeIndex {
	nt := len(lo)
	if nt < 4 {
		return nil
	}
	span := lo[nt-1] - lo[0]
	if !(span > 0) || math.IsInf(span, 0) {
		return nil
	}
	k := 4 * nt
	invStep := float64(k) / span
	if math.IsInf(invStep, 0) {
		return nil
	}
	e := &edgeIndex{lo: lo, base: lo[0], invStep: invStep, table: make([]int32, k)}
	step := span / float64(k)
	prev, widest := int32(0), int32(0)
	for t := range e.table {
		v := lo[0] + float64(t)*step
		// Upper bound: first index with lo[j] > v.
		a, b := 0, nt
		for a < b {
			m := int(uint(a+b) >> 1)
			if lo[m] > v {
				b = m
			} else {
				a = m + 1
			}
		}
		j := int32(a)
		e.table[t] = j
		if t > 0 && j-prev > widest {
			widest = j - prev
		}
		prev = j
	}
	if widest > maxEdgeBucketScan {
		return nil
	}
	return e
}

// maxEdgeBucketScan bounds the corrective scan per lookup, mirroring
// stats.CutIndexer's fallback for clustered layouts.
const maxEdgeBucketScan = 16

// find returns the number of edges <= v (the lowDelta bucket AddChunk's
// inlined binary search computes). v must not be NaN.
func (e *edgeIndex) find(v float64) int {
	lo := e.lo
	if v < e.base {
		return 0
	}
	t := int((v - e.base) * e.invStep)
	if t >= len(e.table) {
		t = len(e.table) - 1
	} else if t < 0 {
		t = 0
	}
	j := int(e.table[t])
	for j < len(lo) && lo[j] <= v {
		j++
	}
	for j > 0 && lo[j-1] > v {
		j--
	}
	return j
}

// NewRefiner brackets the given target ranks (ascending, in [0, Count))
// using the sketch's current summary. A lossless sketch resolves every
// target immediately — NeedsPass reports whether a gather pass is required.
func NewRefiner(q *Quantile, ranks []int64) *Refiner {
	r := &Refiner{
		ranks:    append([]int64(nil), ranks...),
		lo:       make([]float64, len(ranks)),
		hi:       make([]float64, len(ranks)),
		resolved: make([]bool, len(ranks)),
		lowDelta: make([]int64, len(ranks)+1),
		loEq:     make([]int64, len(ranks)),
		hiEq:     make([]int64, len(ranks)),
		mid:      make([][]float64, len(ranks)),
	}
	e := 2 * q.ErrorBound()
	pts := q.merged()
	// Both bracket edges are values at ascending ranks, so each fills in one
	// cumulative walk of the merged list instead of one walk per target.
	fillValuesAtRanks(pts, r.ranks, -e, r.lo)
	fillValuesAtRanks(pts, r.ranks, +e, r.hi)
	for t := range r.ranks {
		if r.lo[t] == r.hi[t] {
			// The bracket pinches to one value, which must be the answer.
			r.resolved[t] = true
		}
	}
	r.idx = newEdgeIndex(r.lo)
	return r
}

// fillValuesAtRanks sets dst[t] to the value covering rank ranks[t]+off
// (clamped) in the merged weighted list — valueAtRank for every target in a
// single walk, valid because ranks is ascending.
func fillValuesAtRanks(pts []wpoint, ranks []int64, off int64, dst []float64) {
	if len(pts) == 0 {
		for t := range dst {
			dst[t] = math.NaN()
		}
		return
	}
	pi := 0
	cum := pts[0].w
	for t, rk := range ranks {
		rank := rk + off
		if rank < 0 {
			rank = 0
		}
		for pi < len(pts) && rank >= cum {
			pi++
			if pi < len(pts) {
				cum += pts[pi].w
			}
		}
		if pi < len(pts) {
			dst[t] = pts[pi].v
		} else {
			dst[t] = pts[len(pts)-1].v
		}
	}
}

// Shadow returns a refiner sharing r's targets and brackets (read-only) with
// fresh accumulators, so partitions can gather concurrently and fold back in
// order with r.Merge. A shadow must not outlive r.
func (r *Refiner) Shadow() *Refiner {
	return &Refiner{
		ranks:    r.ranks,
		lo:       r.lo,
		hi:       r.hi,
		resolved: r.resolved,
		lowDelta: make([]int64, len(r.ranks)+1),
		loEq:     make([]int64, len(r.ranks)),
		hiEq:     make([]int64, len(r.ranks)),
		mid:      make([][]float64, len(r.ranks)),
		idx:      r.idx,
	}
}

// NeedsPass reports whether any target still needs gathered values.
func (r *Refiner) NeedsPass() bool {
	for t := range r.resolved {
		if !r.resolved[t] {
			return true
		}
	}
	return false
}

// AddChunk streams one chunk of the column (NaNs skipped, as everywhere).
func (r *Refiner) AddChunk(vals []float64) {
	nt := len(r.ranks)
	if nt == 0 {
		return
	}
	lo, hi := r.lo, r.hi
	idx := r.idx
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		// Targets with lo > v form a suffix; record one delta at its start.
		// The shared bucket table answers the upper-bound search in O(1) for
		// the overwhelmingly common outside-every-bracket case; skewed edge
		// layouts fall back to the inlined binary search (closure-based
		// sort.Search showed up in profiles).
		var a int
		if idx != nil {
			a = idx.find(v)
		} else {
			var b int
			a, b = 0, nt
			for a < b {
				m := int(uint(a+b) >> 1)
				if lo[m] > v {
					b = m
				} else {
					a = m + 1
				}
			}
		}
		r.lowDelta[a]++
		// Brackets containing v are the run [t, a): lo ascending limits it
		// to t < a, hi ascending starts it at the first hi >= v. Most values
		// fall outside every bracket — one compare against hi[a-1] rejects
		// them without the second binary search.
		if a == 0 || hi[a-1] < v {
			continue
		}
		t, y := 0, a
		for t < y {
			m := int(uint(t+y) >> 1)
			if hi[m] >= v {
				y = m
			} else {
				t = m + 1
			}
		}
		for ; t < a && lo[t] <= v; t++ {
			if r.resolved[t] {
				continue
			}
			switch {
			case v == r.lo[t]:
				r.loEq[t]++
			case v == r.hi[t]:
				r.hiEq[t]++
			default:
				r.mid[t] = append(r.mid[t], v)
			}
		}
	}
}

// AddSorted ingests one chunk of the column as an ascending NaN-free run
// (the shape SortNonNaN produces) — the same accumulation as AddChunk but
// by binary searches over the values: O(targets · log n) plus wholesale
// copies of the in-bracket runs, instead of per-value searches.
func (r *Refiner) AddSorted(sorted []float64) {
	nt := len(r.ranks)
	n := len(sorted)
	if nt == 0 || n == 0 {
		return
	}
	if cap(r.below) < nt {
		r.below = make([]int, nt)
	}
	below := r.below[:nt]
	// below[t] = #values < lo[t]; lo ascending lets each search resume
	// where the previous one ended.
	prev := 0
	for t, edge := range r.lo {
		a, b := prev, n
		for a < b {
			m := int(uint(a+b) >> 1)
			if sorted[m] < edge {
				a = m + 1
			} else {
				b = m
			}
		}
		below[t] = a
		prev = a
	}
	// A value v lands in lowDelta bucket a when a edges satisfy lo <= v,
	// i.e. values in [lo[a-1], lo[a]) — consecutive differences of below.
	r.lowDelta[0] += int64(below[0])
	for t := 1; t < nt; t++ {
		r.lowDelta[t] += int64(below[t] - below[t-1])
	}
	r.lowDelta[nt] += int64(n - below[nt-1])
	for t := 0; t < nt; t++ {
		if r.resolved[t] {
			continue
		}
		lo, hi := r.lo[t], r.hi[t]
		if below[t] >= n || sorted[n-1] < lo {
			continue
		}
		// The bracket [lo, hi] covers the contiguous run starting at
		// below[t]; split it into ==lo, strictly-inside, and ==hi spans.
		a, b := below[t], n
		for a < b { // first value > lo
			m := int(uint(a+b) >> 1)
			if sorted[m] <= lo {
				a = m + 1
			} else {
				b = m
			}
		}
		loEnd := a
		a, b = loEnd, n
		for a < b { // first value >= hi
			m := int(uint(a+b) >> 1)
			if sorted[m] < hi {
				a = m + 1
			} else {
				b = m
			}
		}
		midEnd := a
		a, b = midEnd, n
		for a < b { // first value > hi
			m := int(uint(a+b) >> 1)
			if sorted[m] <= hi {
				a = m + 1
			} else {
				b = m
			}
		}
		r.loEq[t] += int64(loEnd - below[t])
		r.mid[t] = append(r.mid[t], sorted[loEnd:midEnd]...)
		r.hiEq[t] += int64(a - midEnd)
	}
}

// SkipBucket reports whether a block of the column whose non-NaN values all
// lie in [min, max] provably contributes nothing to any gather bracket, and
// if so which single lowDelta bucket all of those values count into. The
// conditions mirror AddChunk's accumulation exactly: every value must land
// in the same bucket a (no lo edge inside (min, max]), and the run must
// avoid every bracket (a == 0 means max < lo[0]; otherwise min > hi[a-1],
// which with hi ascending clears all brackets t < a). When ok, the block's
// entire effect on the refiner is AddOutside(bucket, nonNaNCount) — the
// stat-only fold the sharded engine applies for skipped blocks.
func (r *Refiner) SkipBucket(min, max float64) (bucket int, ok bool) {
	if math.IsNaN(min) || math.IsNaN(max) {
		return 0, false
	}
	nt := len(r.ranks)
	if nt == 0 {
		return 0, true
	}
	// a = #{t : lo[t] <= max}, b = #{t : lo[t] <= min}; one bucket iff a == b.
	a := sort.SearchFloat64s(r.lo, max)
	for a < nt && r.lo[a] == max {
		a++
	}
	b := sort.SearchFloat64s(r.lo, min)
	for b < nt && r.lo[b] == min {
		b++
	}
	if a != b {
		return 0, false
	}
	if a == 0 {
		return 0, true // max < lo[0]: below every bracket
	}
	if min > r.hi[a-1] {
		return a, true // above every bracket the bucket could touch
	}
	return 0, false
}

// AddOutside folds n values known (from block stats, via SkipBucket) to land
// in the given lowDelta bucket without entering any bracket. It is the exact
// contribution AddChunk would have accumulated for those values, so a pass
// over the surviving blocks plus AddOutside for the skipped ones yields
// bit-identical order statistics to a full pass.
func (r *Refiner) AddOutside(bucket int, n int64) {
	r.lowDelta[bucket] += n
}

// Merge folds a refiner built over another partition (with identical
// targets and brackets) into r.
func (r *Refiner) Merge(o *Refiner) {
	for t := range r.ranks {
		r.lowDelta[t] += o.lowDelta[t]
		r.loEq[t] += o.loEq[t]
		r.hiEq[t] += o.hiEq[t]
		r.mid[t] = append(r.mid[t], o.mid[t]...)
	}
	r.lowDelta[len(r.ranks)] += o.lowDelta[len(o.ranks)]
}

func (r *Refiner) finalize() {
	if r.finalized {
		return
	}
	r.finalized = true
	r.lowCount = make([]int64, len(r.ranks))
	var cum int64
	for t := range r.ranks {
		cum += r.lowDelta[t]
		r.lowCount[t] = cum
	}
	for t := range r.mid {
		sort.Float64s(r.mid[t])
	}
}

// Value returns the exact value at the target rank (which must be one of
// the ranks given to NewRefiner, after the gather pass completed).
func (r *Refiner) Value(rank int64) float64 {
	t := sort.Search(len(r.ranks), func(i int) bool { return r.ranks[i] >= rank })
	if t == len(r.ranks) || r.ranks[t] != rank {
		return math.NaN()
	}
	if r.resolved[t] {
		return r.lo[t]
	}
	r.finalize()
	local := rank - r.lowCount[t]
	switch {
	case local < r.loEq[t]:
		return r.lo[t]
	case local < r.loEq[t]+int64(len(r.mid[t])):
		return r.mid[t][local-r.loEq[t]]
	case local < r.loEq[t]+int64(len(r.mid[t]))+r.hiEq[t]:
		return r.hi[t]
	default:
		// Out of the gathered range: the bracket guarantee was violated,
		// which cannot happen for a correctly merged sketch; fall back to
		// the nearest bracket edge rather than panicking.
		if local < 0 {
			return r.lo[t]
		}
		return r.hi[t]
	}
}

// CutRanks returns the 0-based nearest-rank targets of a bins-quantile
// split over n values — the ranks stats.Quantiles reads — deduplicated.
func CutRanks(n int64, bins int) []int64 {
	if bins < 2 || n <= 0 {
		return nil
	}
	out := make([]int64, 0, bins-1)
	for k := 1; k < bins; k++ {
		idx := int64(k) * n / int64(bins)
		if idx >= n {
			idx = n - 1
		}
		if m := len(out); m == 0 || out[m-1] != idx {
			out = append(out, idx)
		}
	}
	return out
}

// ExactCuts reproduces stats.Quantiles(column, bins) exactly from a sketch
// plus its completed refiner (refiner may be nil when the sketch is
// lossless): rank targets and value deduplication match bit-for-bit.
func ExactCuts(q *Quantile, r *Refiner, bins int) []float64 {
	if r == nil {
		return q.Cuts(bins)
	}
	ranks := CutRanks(q.Count(), bins)
	out := make([]float64, 0, len(ranks))
	for _, rank := range ranks {
		v := r.Value(rank)
		if m := len(out); m == 0 || out[m-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// ExactBinnerCuts is ExactCuts with the trailing cut >= max dropped,
// mirroring Quantile.BinnerCuts and the in-memory GBDT binner.
func ExactBinnerCuts(q *Quantile, r *Refiner, maxBins int) []float64 {
	cuts := ExactCuts(q, r, maxBins)
	if len(cuts) == 0 {
		return nil
	}
	if cuts[len(cuts)-1] >= q.Max() {
		cuts = cuts[:len(cuts)-1]
	}
	return cuts
}
