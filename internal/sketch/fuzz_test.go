package sketch

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// fuzzFloats decodes the fuzzer's byte string into float64 values (8 bytes
// each, little endian), capped so a pathological input cannot stall a run.
// Every bit pattern is admitted: NaNs, infinities, subnormals, and both
// zero signs all reach the sketch exactly as frame columns would.
func fuzzFloats(data []byte) []float64 {
	n := len(data) / 8
	if n > 512 {
		n = 512
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return vs
}

// rankDist returns how far rank r falls outside the span of ranks value v
// occupies in the sorted (NaN-free) reference column — 0 when v is a valid
// nearest-rank answer for r.
func rankDist(sorted []float64, v float64, r int64) int64 {
	lo := int64(sort.SearchFloat64s(sorted, v)) // #values < v (v non-NaN)
	hi := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > v }))
	if r < lo {
		return lo - r
	}
	if r >= hi {
		return r - hi + 1
	}
	return 0
}

// checkQuantile asserts one sketch's exact metadata and that every tested
// rank query lands within the sketch's own tracked error bound of the true
// nearest-rank value — the bracket guarantee the refinement pass builds on.
func checkQuantile(t *testing.T, tag string, q *Quantile, sorted []float64, nan int) {
	t.Helper()
	if q.Count() != int64(len(sorted)) {
		t.Fatalf("%s: Count = %d, want %d", tag, q.Count(), len(sorted))
	}
	if q.NaNCount() != int64(nan) {
		t.Fatalf("%s: NaNCount = %d, want %d", tag, q.NaNCount(), nan)
	}
	if len(sorted) == 0 {
		return
	}
	if min := sorted[0]; q.Min() != min {
		t.Fatalf("%s: Min = %v, want %v", tag, q.Min(), min)
	}
	if max := sorted[len(sorted)-1]; q.Max() != max {
		t.Fatalf("%s: Max = %v, want %v", tag, q.Max(), max)
	}
	bound := q.ErrorBound()
	if bound < 0 {
		t.Fatalf("%s: negative ErrorBound %d", tag, bound)
	}
	n := int64(len(sorted))
	for _, r := range []int64{0, n / 4, n / 2, 3 * n / 4, n - 1} {
		v := q.RankValue(r)
		if math.IsNaN(v) {
			t.Fatalf("%s: RankValue(%d) = NaN over %d values", tag, r, n)
		}
		if d := rankDist(sorted, v, r); d > bound {
			t.Fatalf("%s: RankValue(%d) = %v is %d ranks off (tracked bound %d)",
				tag, r, v, d, bound)
		}
	}
}

// FuzzQuantileMergeOrderInvariance drives the quantile sketch through every
// ingestion path the engines use — streamed Add, bulk AddAll, and the sharded
// SortNonNaN + AddSortedScratch pipeline — and through partition merges in
// opposite orders, asserting that each result preserves the exact metadata
// (count, NaN count, min, max) and honours its tracked rank-error bound.
// It also pins SortNonNaN against sort.Float64s on the same data.
func FuzzQuantileMergeOrderInvariance(f *testing.F) {
	f.Add([]byte("quantile sketches keep exact counts!!"), uint16(8), uint8(3))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf8, 0x7f, 1, 2, 3, 4, 5, 6, 7, 8}, uint16(2), uint8(2))
	f.Add([]byte{}, uint16(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, sz uint16, pn uint8) {
		vs := fuzzFloats(data)
		size := 2 + int(sz%510)
		parts := 1 + int(pn%4)

		sorted := make([]float64, 0, len(vs))
		for _, v := range vs {
			if !math.IsNaN(v) {
				sorted = append(sorted, v)
			}
		}
		nan := len(vs) - len(sorted)
		sort.Float64s(sorted)

		// The radix sort must agree with the comparison sort exactly.
		var srt SortScratch
		radix, radixNaN := SortNonNaN(vs, &srt)
		if radixNaN != nan || len(radix) != len(sorted) {
			t.Fatalf("SortNonNaN: %d values %d NaNs, want %d values %d NaNs",
				len(radix), radixNaN, len(sorted), nan)
		}
		for i, v := range radix {
			if v != sorted[i] && !(v == 0 && sorted[i] == 0) {
				t.Fatalf("SortNonNaN[%d] = %v, want %v", i, v, sorted[i])
			}
		}

		// Per-value streaming vs bulk load.
		qAdd := NewQuantile(size)
		for _, v := range vs {
			qAdd.Add(v)
		}
		checkQuantile(t, "Add", qAdd, sorted, nan)
		qBulk := NewQuantile(size)
		qBulk.AddAll(vs)
		checkQuantile(t, "AddAll", qBulk, sorted, nan)

		// Partition partials via the sharded pass's sorted path, merged
		// forward and backward: merge order may change the summary's
		// structure but never the metadata or the error-bound guarantee.
		chunks := splitParts(vs, parts)
		partials := make([]*Quantile, len(chunks))
		for i, c := range chunks {
			cs, cn := SortNonNaN(c, &srt)
			partials[i] = NewQuantile(size)
			partials[i].AddSortedScratch(cs, cn, &srt)
		}
		fwd := NewQuantile(size)
		for _, p := range partials {
			fwd.Merge(p)
		}
		checkQuantile(t, "merge-forward", fwd, sorted, nan)
		rev := NewQuantile(size)
		for i := len(partials) - 1; i >= 0; i-- {
			rev.Merge(partials[i])
		}
		checkQuantile(t, "merge-reverse", rev, sorted, nan)
		if fwd.Count() != rev.Count() || fwd.NaNCount() != rev.NaNCount() ||
			fwd.Min() != rev.Min() || fwd.Max() != rev.Max() {
			if !(len(sorted) == 0 && fwd.Count() == rev.Count()) {
				t.Fatalf("merge order changed metadata: fwd(%d,%d,%v,%v) rev(%d,%d,%v,%v)",
					fwd.Count(), fwd.NaNCount(), fwd.Min(), fwd.Max(),
					rev.Count(), rev.NaNCount(), rev.Min(), rev.Max())
			}
		}

		// Reset + reuse must behave like a fresh sketch (the arena contract).
		fwd.Reset()
		fwd.AddAll(vs)
		checkQuantile(t, "reset-reuse", fwd, sorted, nan)
	})
}

// FuzzHistMerge drives the mergeable criterion histograms the sharded
// selection stage folds across partitions: ClassHist counts must merge
// exactly (they are integral), and MomentHist's partition-parallel
// BinIDs+AddBinned replay must be bit-identical to the sequential pass,
// with Merge agreeing up to float regrouping.
func FuzzHistMerge(f *testing.F) {
	f.Add([]byte("histogram counts merge exactly, always"), uint8(5), uint8(3), uint8(2))
	f.Add([]byte{0x80, 0, 0, 0, 0, 0, 0xf0, 0x7f, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(1), uint8(2), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, nc, kk, pn uint8) {
		vals := fuzzFloats(data)
		k := 2 + int(kk%5)
		parts := 1 + int(pn%4)

		// Cut points: distinct finite values drawn from the data itself,
		// ascending — the shape ExactCuts produces.
		uniq := map[float64]bool{}
		cuts := make([]float64, 0, int(nc%16))
		for _, v := range vals {
			if len(cuts) == cap(cuts) {
				break
			}
			if math.IsNaN(v) || math.IsInf(v, 0) || uniq[v] {
				continue
			}
			uniq[v] = true
			cuts = append(cuts, v)
		}
		sort.Float64s(cuts)

		// Labels: class indices for ClassHist, reused as continuous targets
		// for MomentHist. Derived from the same bytes, offset by one.
		labels := make([]float64, len(vals))
		for i := range labels {
			b := byte(0)
			if i+1 < len(data) {
				b = data[i+1]
			}
			labels[i] = float64(int(b) % (k + 1)) // includes out-of-range k
		}

		// ClassHist: sequential pass vs per-partition shadows merged in
		// reverse order — integral counts make the fold exact.
		seq := NewClassHist(cuts, k)
		seq.AddCol(vals, labels)
		merged := NewClassHist(cuts, k)
		var shadows []*ClassHist
		lo := 0
		for _, c := range splitParts(vals, parts) {
			sh := merged.Shadow()
			sh.AddCol(c, labels[lo:lo+len(c)])
			shadows = append(shadows, sh)
			lo += len(c)
		}
		for i := len(shadows) - 1; i >= 0; i-- {
			if err := merged.Merge(shadows[i]); err != nil {
				t.Fatalf("ClassHist.Merge: %v", err)
			}
		}
		for i := range seq.flat {
			if merged.flat[i] != seq.flat[i] {
				t.Fatalf("ClassHist count[%d] = %v merged, %v sequential", i, merged.flat[i], seq.flat[i])
			}
		}
		for c := range seq.nan {
			if merged.nan[c] != seq.nan[c] {
				t.Fatalf("ClassHist nan[%d] = %v merged, %v sequential", c, merged.nan[c], seq.nan[c])
			}
		}
		if mc, sc := merged.Criterion(), seq.Criterion(); mc != sc && !(math.IsNaN(mc) && math.IsNaN(sc)) {
			t.Fatalf("ClassHist criterion %v merged, %v sequential", mc, sc)
		}

		// MomentHist: the partition-parallel replay (BinIDs concurrently,
		// AddBinned folded in partition order) must reproduce the sequential
		// pass bit for bit — this is the sharded regression pass's exactness
		// contract.
		mseq := NewMomentHist(cuts)
		mseq.AddCol(vals, labels)
		mrep := NewMomentHist(cuts)
		lo = 0
		for _, c := range splitParts(vals, parts) {
			ids := make([]int32, len(c))
			mrep.BinIDs(c, ids)
			mrep.AddBinned(ids, labels[lo:lo+len(c)])
			lo += len(c)
		}
		for b := range mseq.cnt {
			if mrep.cnt[b] != mseq.cnt[b] {
				t.Fatalf("MomentHist cnt[%d] = %v replayed, %v sequential", b, mrep.cnt[b], mseq.cnt[b])
			}
			if math.Float64bits(mrep.sum[b]) != math.Float64bits(mseq.sum[b]) {
				t.Fatalf("MomentHist sum[%d] = %x replayed, %x sequential",
					b, math.Float64bits(mrep.sum[b]), math.Float64bits(mseq.sum[b]))
			}
			if math.Float64bits(mrep.sumsq[b]) != math.Float64bits(mseq.sumsq[b]) {
				t.Fatalf("MomentHist sumsq[%d] = %x replayed, %x sequential",
					b, math.Float64bits(mrep.sumsq[b]), math.Float64bits(mseq.sumsq[b]))
			}
		}
		if mrep.nanN != mseq.nanN {
			t.Fatalf("MomentHist nan = %v replayed, %v sequential", mrep.nanN, mseq.nanN)
		}

		// MomentHist.Merge regroups float sums, so counts stay exact and
		// sums agree to a relative tolerance.
		mmrg := NewMomentHist(cuts)
		lo = 0
		for _, c := range splitParts(vals, parts) {
			mp := NewMomentHist(cuts)
			mp.AddCol(c, labels[lo:lo+len(c)])
			lo += len(c)
			if err := mmrg.Merge(mp); err != nil {
				t.Fatalf("MomentHist.Merge: %v", err)
			}
		}
		for b := range mseq.cnt {
			if mmrg.cnt[b] != mseq.cnt[b] {
				t.Fatalf("MomentHist merged cnt[%d] = %v, want %v", b, mmrg.cnt[b], mseq.cnt[b])
			}
			if !closeEnough(mmrg.sum[b], mseq.sum[b]) {
				t.Fatalf("MomentHist merged sum[%d] = %v, want %v", b, mmrg.sum[b], mseq.sum[b])
			}
			if !closeEnough(mmrg.sumsq[b], mseq.sumsq[b]) {
				t.Fatalf("MomentHist merged sumsq[%d] = %v, want %v", b, mmrg.sumsq[b], mseq.sumsq[b])
			}
		}
	})
}

// closeEnough compares float sums that may have been regrouped: exact for
// specials, relative 1e-9 otherwise.
func closeEnough(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}
