package sketch

import (
	"math"
	"sort"
)

// SortScratch is reusable scratch for SortNonNaN — one float buffer for the
// filtered values and two uint64 ping-pong buffers for the radix passes —
// plus the weighted-point dedup buffer Quantile.AddSortedScratch walks
// before copying the compacted run out. A zero SortScratch is ready to use;
// buffers grow to the largest input seen.
type SortScratch struct {
	f    []float64
	a, b []uint64
	pts  []wpoint
}

// radixMinN is the input length below which comparison sorting wins.
const radixMinN = 256

// SortNonNaN copies vs's non-NaN values into the scratch, sorts them
// ascending, and returns the sorted slice together with the stripped NaN
// count. Large inputs take an LSD radix sort over the order-preserving
// integer mapping of float64 — several times faster than comparison
// sorting at summary-build block sizes — and the resulting order equals
// sort.Float64s on the same NaN-free data. The returned slice aliases the
// scratch and is valid until the next call.
func SortNonNaN(vs []float64, s *SortScratch) ([]float64, int) {
	const sign = uint64(1) << 63
	if cap(s.a) < len(vs) {
		s.a = make([]uint64, 0, len(vs))
	}
	// Filter NaNs and apply the order-preserving mapping in one walk:
	// negative floats reverse (complement), non-negative floats shift above
	// them (set the sign bit). Note -0.0 orders just below +0.0; both
	// compare equal everywhere they are used.
	conv := s.a[:0]
	for _, v := range vs {
		if math.IsNaN(v) {
			continue
		}
		u := math.Float64bits(v)
		if u&sign != 0 {
			u = ^u
		} else {
			u |= sign
		}
		conv = append(conv, u)
	}
	s.a = conv
	nan := len(vs) - len(conv)
	n := len(conv)
	if cap(s.f) < n {
		s.f = make([]float64, n)
	}
	out := s.f[:n]
	if n < radixMinN {
		i := 0
		for _, v := range vs {
			if !math.IsNaN(v) {
				out[i] = v
				i++
			}
		}
		sort.Float64s(out)
		return out, nan
	}

	if cap(s.b) < n {
		s.b = make([]uint64, n)
	}
	a, b := conv, s.b[:n]
	// Eight byte-wide digits: the 1KB per-pass histograms stay resident in
	// L1 through the scatter, which measured faster here than fewer, wider
	// passes with larger tables. All histograms build in one pre-pass, split
	// into two interleaved sets: float exponent bytes are heavily skewed
	// (most values share one top byte), and a single counter array would
	// serialize those increments on a store-forward dependency chain.
	var hist, hist2 [8][256]int32
	for i := 0; i+1 < n; i += 2 {
		u, u2 := a[i], a[i+1]
		hist[0][u&0xff]++
		hist[1][(u>>8)&0xff]++
		hist[2][(u>>16)&0xff]++
		hist[3][(u>>24)&0xff]++
		hist[4][(u>>32)&0xff]++
		hist[5][(u>>40)&0xff]++
		hist[6][(u>>48)&0xff]++
		hist[7][(u>>56)&0xff]++
		hist2[0][u2&0xff]++
		hist2[1][(u2>>8)&0xff]++
		hist2[2][(u2>>16)&0xff]++
		hist2[3][(u2>>24)&0xff]++
		hist2[4][(u2>>32)&0xff]++
		hist2[5][(u2>>40)&0xff]++
		hist2[6][(u2>>48)&0xff]++
		hist2[7][(u2>>56)&0xff]++
	}
	if n%2 != 0 {
		u := a[n-1]
		hist[0][u&0xff]++
		hist[1][(u>>8)&0xff]++
		hist[2][(u>>16)&0xff]++
		hist[3][(u>>24)&0xff]++
		hist[4][(u>>32)&0xff]++
		hist[5][(u>>40)&0xff]++
		hist[6][(u>>48)&0xff]++
		hist[7][(u>>56)&0xff]++
	}
	for pass := 0; pass < 8; pass++ {
		h := &hist[pass]
		shift := uint(pass * 8)
		// Fold the split histograms and find the dominant byte while
		// prefix-summing.
		dom, domCount := 0, int32(0)
		var sum int32
		for i := range h {
			c := h[i] + hist2[pass][i]
			if c > domCount {
				dom, domCount = i, c
			}
			h[i] = sum
			sum += c
		}
		// A pass whose byte is constant across the input is a no-op.
		if domCount == int32(n) {
			continue
		}
		if domCount*4 >= int32(n)*3 {
			// Skewed pass (exponent bytes): keep the dominant byte's output
			// cursor in a register so its stores don't chain through memory,
			// and let the branch predict the common case.
			ud := uint64(dom)
			pd := h[dom]
			for _, u := range a {
				byt := (u >> shift) & 0xff
				if byt == ud {
					b[pd] = u
					pd++
					continue
				}
				b[h[byt]] = u
				h[byt]++
			}
		} else {
			for _, u := range a {
				byt := (u >> shift) & 0xff
				b[h[byt]] = u
				h[byt]++
			}
		}
		a, b = b, a
	}
	for i, u := range a {
		if u&sign != 0 {
			u &^= sign
		} else {
			u = ^u
		}
		out[i] = math.Float64frombits(u)
	}
	return out, nan
}
