package sketch

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// CriterionHist is the mergeable binned relevance accumulator behind the
// sharded selection stage's task-aware criterion: per-partition histograms
// accumulate (value, label) observations over fixed cut points, merge
// exactly, and fold into the same count-/moment-space criterion the
// in-memory fit computes. Implementations: LabelHist (binary Information
// Value), ClassHist (multiclass IV), MomentHist (regression correlation
// ratio η²).
type CriterionHist interface {
	// AddCol observes a column of feature values against parallel labels
	// (class indices or regression targets, per implementation).
	AddCol(vals, labels []float64)
	// MergeHist folds another histogram of the same concrete type and cut
	// points into the receiver.
	MergeHist(o CriterionHist) error
	// Criterion returns the accumulated relevance score.
	Criterion() float64
}

// ClassHist is LabelHist generalised to K classes: bin b of class c counts
// the rows of class c whose value falls in (cuts[b-1], cuts[b]]. NaN values
// (and out-of-range class labels) are counted separately and excluded from
// bins. Counts are integers stored in float64, so Merge is exact and exactly
// order-invariant.
type ClassHist struct {
	cuts   []float64
	k      int
	counts [][]float64 // class-major: counts[c][b]
	flat   []float64
	nan    []float64 // per-class NaN count
	ix     stats.CutIndexer
	slab   []int32 // AddColCls scratch: class-major integer counts
}

// NewClassHist creates a K-class histogram over ascending cut points
// (len(cuts)+1 bins; nil cuts yield a single bin). The cuts slice is
// retained and must not be modified.
func NewClassHist(cuts []float64, k int) *ClassHist {
	nb := len(cuts) + 1
	h := &ClassHist{
		cuts: cuts,
		k:    k,
		flat: make([]float64, k*nb),
		nan:  make([]float64, k),
	}
	h.counts = make([][]float64, k)
	for c := 0; c < k; c++ {
		h.counts[c] = h.flat[c*nb : (c+1)*nb]
	}
	h.ix.Reset(cuts)
	return h
}

// Shadow returns a histogram sharing h's cut points and bucket index
// (read-only) with fresh counts, so partitions can accumulate concurrently
// and fold back with Merge — counts are integral, so the fold is exact. A
// shadow must not outlive h.
func (h *ClassHist) Shadow() *ClassHist {
	nb := len(h.cuts) + 1
	sh := &ClassHist{
		cuts: h.cuts,
		k:    h.k,
		flat: make([]float64, h.k*nb),
		nan:  make([]float64, h.k),
	}
	sh.counts = make([][]float64, h.k)
	for c := 0; c < h.k; c++ {
		sh.counts[c] = sh.flat[c*nb : (c+1)*nb]
	}
	sh.ix = h.ix
	return sh
}

// Add observes one (value, class-index) observation.
func (h *ClassHist) Add(v, label float64) {
	c := int(label)
	if c < 0 || c >= h.k {
		return
	}
	if math.IsNaN(v) {
		h.nan[c]++
		return
	}
	h.counts[c][h.ix.Find(v)]++
}

// AddCol observes a column of values against parallel class labels.
func (h *ClassHist) AddCol(vals, labels []float64) {
	for i, v := range vals {
		h.Add(v, labels[i])
	}
}

// AddColCls is AddCol with the labels pre-converted to class indices
// (cls[i] = int32(labels[i]), or -1 when out of [0,k)). The float→int
// conversion and range check are per-label work that the hot candidate
// pass would otherwise repeat for every generated column; precomputing
// them once per chunk leaves only the bin lookup and an integer
// increment per value. The folded counts are identical to AddCol's.
func (h *ClassHist) AddColCls(vals []float64, cls []int32) {
	nb := len(h.cuts) + 1
	if cap(h.slab) < h.k*nb {
		h.slab = make([]int32, h.k*nb)
	}
	slab := h.slab[:h.k*nb]
	for i := range slab {
		slab[i] = 0
	}
	for i, v := range vals {
		c := cls[i]
		if c < 0 {
			continue
		}
		if math.IsNaN(v) {
			h.nan[c]++
			continue
		}
		slab[int(c)*nb+h.ix.Find(v)]++
	}
	for i, n := range slab {
		h.flat[i] += float64(n)
	}
}

// Merge folds another histogram into h. Cut points and class counts must be
// identical.
func (h *ClassHist) Merge(o *ClassHist) error {
	if o.k != h.k {
		return fmt.Errorf("sketch: merge class hists with %d vs %d classes", o.k, h.k)
	}
	if len(o.cuts) != len(h.cuts) {
		return fmt.Errorf("sketch: merge class hists with %d vs %d cuts", len(o.cuts), len(h.cuts))
	}
	for i := range h.cuts {
		if h.cuts[i] != o.cuts[i] {
			return fmt.Errorf("sketch: merge class hists with different cut %d", i)
		}
	}
	for i := range h.flat {
		h.flat[i] += o.flat[i]
	}
	for c := range h.nan {
		h.nan[c] += o.nan[c]
	}
	return nil
}

// MergeHist implements CriterionHist.
func (h *ClassHist) MergeHist(o CriterionHist) error {
	oh, ok := o.(*ClassHist)
	if !ok {
		return fmt.Errorf("sketch: merge %T into *ClassHist", o)
	}
	return h.Merge(oh)
}

// Criterion returns the multiclass Information Value of the binned feature,
// reproducing stats.CritScratch.MulticlassIV exactly given the same cuts.
func (h *ClassHist) Criterion() float64 {
	if len(h.cuts) == 0 {
		return 0
	}
	return stats.MulticlassIVFromCounts(h.counts)
}

// MomentHist accumulates per-bin moments (count, Σy, Σy²) of a continuous
// target over fixed cut points — the regression counterpart of LabelHist.
// NaN feature values are counted separately and excluded from bins. Moments
// are plain sums, so per-partition histograms added together reproduce a
// single pass that visits the same rows in the same order.
type MomentHist struct {
	cuts  []float64
	cnt   []float64
	sum   []float64
	sumsq []float64
	nanN  float64
	ix    stats.CutIndexer
}

// NewMomentHist creates a moment histogram over ascending cut points
// (len(cuts)+1 bins). The cuts slice is retained and must not be modified.
func NewMomentHist(cuts []float64) *MomentHist {
	nb := len(cuts) + 1
	h := &MomentHist{
		cuts:  cuts,
		cnt:   make([]float64, nb),
		sum:   make([]float64, nb),
		sumsq: make([]float64, nb),
	}
	h.ix.Reset(cuts)
	return h
}

// Add observes one (value, target) observation.
func (h *MomentHist) Add(v, y float64) {
	if math.IsNaN(v) {
		h.nanN++
		return
	}
	b := h.ix.Find(v)
	h.cnt[b]++
	h.sum[b] += y
	h.sumsq[b] += y * y
}

// AddCol observes a column of values against parallel targets.
func (h *MomentHist) AddCol(vals, targets []float64) {
	for i, v := range vals {
		h.Add(v, targets[i])
	}
}

// BinIDs fills dst (len(vals)) with each value's bin index, -1 for NaN,
// without touching the accumulators. It only reads the cut index, so
// concurrent BinIDs calls on one histogram are safe — this is how partitions
// bin in parallel while AddBinned keeps the float sums in row order.
func (h *MomentHist) BinIDs(vals []float64, dst []int32) {
	for i, v := range vals {
		if math.IsNaN(v) {
			dst[i] = -1
			continue
		}
		dst[i] = int32(h.ix.Find(v))
	}
}

// AddBinned replays precomputed bin ids against parallel targets in row
// order — the exact float additions AddCol(vals, targets) would perform, so
// a partition-parallel binning pass folded through AddBinned in partition
// order stays bit-identical to a single sequential pass. (Merging per-
// partition MomentHists instead would regroup the sums and change the
// lowest-order float bits.)
func (h *MomentHist) AddBinned(ids []int32, targets []float64) {
	for i, b := range ids {
		if b < 0 {
			h.nanN++
			continue
		}
		y := targets[i]
		h.cnt[b]++
		h.sum[b] += y
		h.sumsq[b] += y * y
	}
}

// Merge folds another histogram into h. The cut arrays must be identical.
func (h *MomentHist) Merge(o *MomentHist) error {
	if len(o.cuts) != len(h.cuts) {
		return fmt.Errorf("sketch: merge moment hists with %d vs %d cuts", len(o.cuts), len(h.cuts))
	}
	for i := range h.cuts {
		if h.cuts[i] != o.cuts[i] {
			return fmt.Errorf("sketch: merge moment hists with different cut %d", i)
		}
	}
	for b := range h.cnt {
		h.cnt[b] += o.cnt[b]
		h.sum[b] += o.sum[b]
		h.sumsq[b] += o.sumsq[b]
	}
	h.nanN += o.nanN
	return nil
}

// MergeHist implements CriterionHist.
func (h *MomentHist) MergeHist(o CriterionHist) error {
	oh, ok := o.(*MomentHist)
	if !ok {
		return fmt.Errorf("sketch: merge %T into *MomentHist", o)
	}
	return h.Merge(oh)
}

// Criterion returns the correlation ratio η² of the binned target,
// reproducing stats.CritScratch.CorrelationRatio exactly given the same
// cuts and row order.
func (h *MomentHist) Criterion() float64 {
	if len(h.cuts) == 0 {
		return 0
	}
	return stats.CorrelationRatioFromMoments(h.cnt, h.sum, h.sumsq)
}
