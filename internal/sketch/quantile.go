package sketch

import (
	"math"
	"sort"
)

// DefaultSize is the default per-level summary size of a Quantile sketch.
// Larger sizes buy tighter rank bounds linearly at linearly more memory; a
// partition of at most DefaultSize rows is summarised losslessly.
const DefaultSize = 8192

// wpoint is one weighted coreset point: a representative value standing in
// for w original values at adjacent ranks.
type wpoint struct {
	v float64
	w int64
}

// Quantile is a deterministic mergeable quantile summary. Values stream in
// through Add (or AddAll); partitions summarised independently combine with
// Merge. Count, Min, Max and NaNCount are exact; rank queries (RankValue,
// Cuts) are exact while the data fits one level and carry a tracked
// worst-case rank error (ErrorBound) beyond that.
//
// Internally the sketch is an LSM over weighted coresets: incoming values
// buffer until size is reached, flush as a lossless level-0 summary, and
// equal-level summaries merge like a binary counter. Merging two levels
// concatenates their sorted point lists exactly; only when the result
// exceeds size is it compacted to at most size points, each new point
// absorbing a run of at most W = ceil(weight/size) original values — the
// single source of rank error, accumulated per summary in errs. No step is
// randomised.
type Quantile struct {
	size     int
	count    int64 // non-NaN values observed
	nan      int64
	min, max float64
	buf      []float64
	levels   [][]wpoint
	errs     []int64
}

// NewQuantile creates a quantile sketch with the given per-level summary
// size; size <= 0 selects DefaultSize.
func NewQuantile(size int) *Quantile {
	if size <= 0 {
		size = DefaultSize
	}
	return &Quantile{size: size, min: math.Inf(1), max: math.Inf(-1)}
}

// Add observes one value. NaNs are counted separately and never contribute
// to ranks, matching stats.Quantiles' NaN handling.
func (q *Quantile) Add(v float64) {
	if math.IsNaN(v) {
		q.nan++
		return
	}
	q.count++
	if v < q.min {
		q.min = v
	}
	if v > q.max {
		q.max = v
	}
	if q.buf == nil {
		q.buf = make([]float64, 0, q.size)
	}
	q.buf = append(q.buf, v)
	if len(q.buf) >= q.size {
		q.flush()
	}
}

// AddAll observes a column of values.
func (q *Quantile) AddAll(vs []float64) {
	for _, v := range vs {
		q.Add(v)
	}
}

// Count returns the exact number of non-NaN values observed.
func (q *Quantile) Count() int64 { return q.count }

// NaNCount returns the exact number of NaNs observed.
func (q *Quantile) NaNCount() int64 { return q.nan }

// Min returns the exact minimum (+Inf when empty).
func (q *Quantile) Min() float64 { return q.min }

// Max returns the exact maximum (-Inf when empty).
func (q *Quantile) Max() float64 { return q.max }

// ErrorBound returns the current worst-case rank error of a query, in ranks
// (not a fraction). Zero means the summary is lossless.
func (q *Quantile) ErrorBound() int64 {
	var e int64
	for _, le := range q.errs {
		e += le
	}
	return e
}

// Merge folds another sketch into q. Both sketches should be built with the
// same size (the merged summary is compacted to q's). o is normalised (its
// buffer flushed) but keeps its logical content and remains usable.
func (q *Quantile) Merge(o *Quantile) {
	if o == nil {
		return
	}
	o.flush()
	q.flush()
	q.count += o.count
	q.nan += o.nan
	if o.min < q.min {
		q.min = o.min
	}
	if o.max > q.max {
		q.max = o.max
	}
	for level, pts := range o.levels {
		if len(pts) == 0 {
			continue
		}
		q.push(level, append([]wpoint(nil), pts...), o.errs[level])
	}
}

// flush turns the pending buffer into a lossless level-0 summary.
func (q *Quantile) flush() {
	if len(q.buf) == 0 {
		return
	}
	sort.Float64s(q.buf)
	pts := make([]wpoint, 0, len(q.buf))
	for _, v := range q.buf {
		if n := len(pts); n > 0 && pts[n-1].v == v {
			pts[n-1].w++
			continue
		}
		pts = append(pts, wpoint{v: v, w: 1})
	}
	q.buf = q.buf[:0]
	q.push(0, pts, 0)
}

// push installs a summary at the given level, carrying binary-counter style
// into higher levels: an occupied slot merges, compacts when oversized, and
// the result moves one level up.
func (q *Quantile) push(level int, pts []wpoint, err int64) {
	for {
		for len(q.levels) <= level {
			q.levels = append(q.levels, nil)
			q.errs = append(q.errs, 0)
		}
		if len(q.levels[level]) == 0 {
			q.levels[level] = pts
			q.errs[level] = err
			return
		}
		pts, err = mergePoints(q.levels[level], pts), q.errs[level]+err
		q.levels[level] = nil
		q.errs[level] = 0
		if len(pts) > q.size {
			var addErr int64
			pts, addErr = compactPoints(pts, q.size)
			err += addErr
		}
		level++
	}
}

// mergePoints merge-joins two sorted weighted point lists exactly, summing
// weights of equal values.
func mergePoints(a, b []wpoint) []wpoint {
	out := make([]wpoint, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var p wpoint
		switch {
		case i == len(a):
			p = b[j]
			j++
		case j == len(b):
			p = a[i]
			i++
		case a[i].v <= b[j].v:
			p = a[i]
			i++
		default:
			p = b[j]
			j++
		}
		if n := len(out); n > 0 && out[n-1].v == p.v {
			out[n-1].w += p.w
			continue
		}
		out = append(out, p)
	}
	return out
}

// compactPoints reduces a sorted weighted list to at most size points by
// absorbing runs of at most W = ceil(weight/size) values into their weighted
// median point. Every surviving rank estimate moves by less than W, the
// returned error bound.
func compactPoints(pts []wpoint, size int) ([]wpoint, int64) {
	var total int64
	for _, p := range pts {
		total += p.w
	}
	w := (total + int64(size) - 1) / int64(size)
	if w < 1 {
		w = 1
	}
	out := make([]wpoint, 0, size+1)
	i := 0
	for i < len(pts) {
		// Absorb a run of up to w weight starting at i.
		var runW int64
		j := i
		for j < len(pts) {
			if runW > 0 && runW+pts[j].w > w {
				break
			}
			runW += pts[j].w
			j++
		}
		// Representative: the point containing the run's weighted median.
		var cum int64
		rep := i
		for k := i; k < j; k++ {
			cum += pts[k].w
			if 2*cum >= runW {
				rep = k
				break
			}
		}
		out = append(out, wpoint{v: pts[rep].v, w: runW})
		i = j
	}
	return out, w
}

// merged returns the sketch's full summary as one sorted weighted list,
// including pending buffered values, without mutating the sketch.
func (q *Quantile) merged() []wpoint {
	var all []wpoint
	for _, pts := range q.levels {
		if len(pts) == 0 {
			continue
		}
		if all == nil {
			all = pts
			continue
		}
		all = mergePoints(all, pts)
	}
	if len(q.buf) > 0 {
		tmp := append([]float64(nil), q.buf...)
		sort.Float64s(tmp)
		pts := make([]wpoint, 0, len(tmp))
		for _, v := range tmp {
			if n := len(pts); n > 0 && pts[n-1].v == v {
				pts[n-1].w++
				continue
			}
			pts = append(pts, wpoint{v: v, w: 1})
		}
		if all == nil {
			all = pts
		} else {
			all = mergePoints(all, pts)
		}
	}
	return all
}

// RankValue returns the value at the given 0-based rank (nearest-rank
// definition over the non-NaN values), within ErrorBound ranks. Ranks are
// clamped to [0, Count-1]. NaN is returned for an empty sketch.
func (q *Quantile) RankValue(rank int64) float64 {
	if q.count == 0 {
		return math.NaN()
	}
	if rank < 0 {
		rank = 0
	}
	if rank >= q.count {
		rank = q.count - 1
	}
	pts := q.merged()
	var cum int64
	for _, p := range pts {
		cum += p.w
		if rank < cum {
			return p.v
		}
	}
	return pts[len(pts)-1].v
}

// Cuts returns the k interior cut points of a k+1-quantile split — the same
// nearest-rank cut values stats.Quantiles(xs, bins) yields (0-based ranks
// i*n/bins for i in 1..bins-1, deduplicated by rank then by value), within
// ErrorBound ranks. It returns nil when the sketch is empty or bins < 2.
func (q *Quantile) Cuts(bins int) []float64 {
	if bins < 2 || q.count == 0 {
		return nil
	}
	n := q.count
	ranks := make([]int64, 0, bins-1)
	for k := 1; k < bins; k++ {
		idx := int64(k) * n / int64(bins)
		if idx >= n {
			idx = n - 1
		}
		if m := len(ranks); m == 0 || ranks[m-1] != idx {
			ranks = append(ranks, idx)
		}
	}
	pts := q.merged()
	out := make([]float64, 0, len(ranks))
	var cum int64
	pi := 0
	for _, r := range ranks {
		for pi < len(pts) && r >= cum+pts[pi].w {
			cum += pts[pi].w
			pi++
		}
		v := pts[len(pts)-1].v
		if pi < len(pts) {
			v = pts[pi].v
		}
		if m := len(out); m == 0 || out[m-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// BinnerCuts returns GBDT binner cut points: Cuts(maxBins) with a trailing
// cut equal to the exact maximum dropped (it would create an empty bin),
// mirroring the in-memory binner's quantileCuts.
func (q *Quantile) BinnerCuts(maxBins int) []float64 {
	cuts := q.Cuts(maxBins)
	if len(cuts) == 0 {
		return nil
	}
	if cuts[len(cuts)-1] >= q.max {
		cuts = cuts[:len(cuts)-1]
	}
	return cuts
}
