package sketch

import (
	"math"
	"sort"
)

// DefaultSize is the default per-level summary size of a Quantile sketch.
// Larger sizes buy tighter rank bounds linearly at linearly more memory; a
// partition of at most DefaultSize rows is summarised losslessly.
const DefaultSize = 8192

// wpoint is one weighted coreset point: a representative value standing in
// for w original values at adjacent ranks.
type wpoint struct {
	v float64
	w int64
}

// Quantile is a deterministic mergeable quantile summary. Values stream in
// through Add (or AddAll); partitions summarised independently combine with
// Merge. Count, Min, Max and NaNCount are exact; rank queries (RankValue,
// Cuts) are exact while the data fits one level and carry a tracked
// worst-case rank error (ErrorBound) beyond that.
//
// Internally the sketch is an LSM over weighted coresets: incoming values
// buffer until size is reached, flush as a lossless level-0 summary, and
// equal-level summaries merge like a binary counter. Merging two levels
// concatenates their sorted point lists exactly; only when the result
// exceeds size is it compacted to at most size points, each new point
// absorbing a run of at most W = ceil(weight/size) original values — the
// single source of rank error, accumulated per summary in errs. No step is
// randomised.
//
// Retired point-slice backings recycle through an internal free list and the
// full merged summary is memoised between mutations, so a sketch that is
// queried repeatedly (or Reset and refilled through an Arena) allocates only
// during warm-up. None of the reuse changes any computed summary: the
// arithmetic is identical to a freshly allocated sketch.
type Quantile struct {
	size     int
	count    int64 // non-NaN values observed
	nan      int64
	min, max float64
	buf      []float64
	levels   [][]wpoint
	errs     []int64

	free [][]wpoint // retired level backings, reused by mergeInto/flush
	bulk []float64  // AddAll bulk-load sort scratch

	mcache      []wpoint // memoised merged(); may alias a level slice
	mcacheOwned bool     // mcache backing is scratch (not a level alias)
	mvalid      bool
}

// maxFree bounds the retained free-list backings per sketch.
const maxFree = 8

// NewQuantile creates a quantile sketch with the given per-level summary
// size; size <= 0 selects DefaultSize.
func NewQuantile(size int) *Quantile {
	if size <= 0 {
		size = DefaultSize
	}
	return &Quantile{size: size, min: math.Inf(1), max: math.Inf(-1)}
}

// Size returns the per-level summary size the sketch was built with.
func (q *Quantile) Size() int { return q.size }

// Reset clears the sketch for reuse with the same size, keeping its internal
// buffers so a recycled sketch allocates nothing in steady state. A reset
// sketch behaves exactly like a fresh NewQuantile(Size()).
func (q *Quantile) Reset() {
	q.count, q.nan = 0, 0
	q.min, q.max = math.Inf(1), math.Inf(-1)
	q.buf = q.buf[:0]
	q.dirty()
	for i := range q.levels {
		q.putFree(q.levels[i])
		q.levels[i] = nil
		q.errs[i] = 0
	}
	q.levels = q.levels[:0]
	q.errs = q.errs[:0]
}

// TrimScratch releases the sketch's reusable scratch — retired free-list
// backings, the bulk-load buffer, and the memoised merged summary — keeping
// the logical content intact. Call it on a sketch that has finished its
// merge phase: hundreds of candidate sketches each holding cascade scratch
// is what dominated the sharded fit's resident heap, and queries after a
// trim simply rebuild what they need.
func (q *Quantile) TrimScratch() {
	q.mcache, q.mcacheOwned, q.mvalid = nil, false, false
	q.free = nil
	q.bulk = nil
}

// dirty invalidates the memoised merged summary, retiring an owned backing.
func (q *Quantile) dirty() {
	if q.mcache == nil {
		return
	}
	if q.mcacheOwned {
		q.putFree(q.mcache)
	}
	q.mcache, q.mcacheOwned, q.mvalid = nil, false, false
}

// takeFree returns a zero-length point slice with capacity at least n,
// reusing the best-fitting retired backing when one fits.
func (q *Quantile) takeFree(n int) []wpoint {
	best := -1
	for i, s := range q.free {
		if cap(s) >= n && (best < 0 || cap(s) < cap(q.free[best])) {
			best = i
		}
	}
	if best >= 0 {
		s := q.free[best]
		last := len(q.free) - 1
		q.free[best] = q.free[last]
		q.free[last] = nil
		q.free = q.free[:last]
		return s[:0]
	}
	return make([]wpoint, 0, n)
}

// putFree retires a point-slice backing for reuse. A full list evicts its
// smallest backing — the merge cascade reuses the large ones, and keeping
// only early small retirees was measurably re-allocating the big buffers.
func (q *Quantile) putFree(s []wpoint) {
	if cap(s) == 0 {
		return
	}
	if len(q.free) < maxFree {
		q.free = append(q.free, s[:0])
		return
	}
	small := 0
	for i := 1; i < len(q.free); i++ {
		if cap(q.free[i]) < cap(q.free[small]) {
			small = i
		}
	}
	if cap(s) > cap(q.free[small]) {
		q.free[small] = s[:0]
	}
}

// Add observes one value. NaNs are counted separately and never contribute
// to ranks, matching stats.Quantiles' NaN handling.
func (q *Quantile) Add(v float64) {
	if math.IsNaN(v) {
		q.nan++
		return
	}
	q.dirty()
	q.count++
	if v < q.min {
		q.min = v
	}
	if v > q.max {
		q.max = v
	}
	if q.buf == nil {
		q.buf = make([]float64, 0, q.size)
	}
	q.buf = append(q.buf, v)
	if len(q.buf) >= q.size {
		q.flush()
	}
}

// bulkMin is the AddAll input length above which the bulk load path runs.
const bulkMin = 512

// AddAll observes a column of values. Large inputs take a bulk path — sort
// once, build the weighted summary run directly, compact once — instead of
// streaming through the flush buffer. The resulting summary satisfies the
// same invariants and (being a single lossless run compacted at most once)
// a rank-error bound at least as tight as the streamed equivalent.
func (q *Quantile) AddAll(vs []float64) {
	if len(vs) < bulkMin {
		for _, v := range vs {
			q.Add(v)
		}
		return
	}
	if cap(q.bulk) < len(vs) {
		q.bulk = make([]float64, 0, len(vs))
	}
	b := q.bulk[:0]
	nan := 0
	for _, v := range vs {
		if math.IsNaN(v) {
			nan++
			continue
		}
		b = append(b, v)
	}
	q.bulk = b
	sort.Float64s(b)
	q.AddSorted(b, nan)
}

// AddSorted observes a pre-sorted ascending NaN-free run of values plus the
// NaN count stripped from it (the shape SortNonNaN produces), building the
// summary run directly: dedup in one linear walk, at most one compaction,
// one push. The fast path of the sharded engine's sketch passes.
func (q *Quantile) AddSorted(sorted []float64, nan int) {
	q.addSorted(sorted, nan, nil)
}

// AddSortedScratch is AddSorted with the dedup walk run in caller-owned
// scratch: only the final summary run — at most size+1 points after the
// compaction — is copied into sketch-owned memory. Recycled partials
// therefore retain compact backings instead of chunk-length ones, which is
// what keeps a pool of hundreds of candidate partials cheap to hold.
func (q *Quantile) AddSortedScratch(sorted []float64, nan int, s *SortScratch) {
	q.addSorted(sorted, nan, s)
}

func (q *Quantile) addSorted(sorted []float64, nan int, s *SortScratch) {
	q.nan += int64(nan)
	if len(sorted) == 0 {
		return
	}
	q.flush() // pending buffered values become their own summary first
	q.dirty()
	q.count += int64(len(sorted))
	if sorted[0] < q.min {
		q.min = sorted[0]
	}
	if sorted[len(sorted)-1] > q.max {
		q.max = sorted[len(sorted)-1]
	}
	var pts []wpoint
	if s != nil {
		if cap(s.pts) < len(sorted) {
			s.pts = make([]wpoint, 0, len(sorted))
		}
		pts = s.pts[:0]
	} else {
		pts = q.takeFree(len(sorted))
	}
	for _, v := range sorted {
		if n := len(pts); n > 0 && pts[n-1].v == v {
			pts[n-1].w++
			continue
		}
		pts = append(pts, wpoint{v: v, w: 1})
	}
	if s != nil {
		s.pts = pts // retain the grown scratch for the next call
	}
	var err int64
	if len(pts) > q.size {
		pts, err = compactPoints(pts, q.size)
	}
	if s != nil {
		own := q.takeFree(len(pts))
		pts = append(own, pts...)
	}
	q.push(0, pts, err)
}

// Count returns the exact number of non-NaN values observed.
func (q *Quantile) Count() int64 { return q.count }

// NaNCount returns the exact number of NaNs observed.
func (q *Quantile) NaNCount() int64 { return q.nan }

// Min returns the exact minimum (+Inf when empty).
func (q *Quantile) Min() float64 { return q.min }

// Max returns the exact maximum (-Inf when empty).
func (q *Quantile) Max() float64 { return q.max }

// ErrorBound returns the current worst-case rank error of a query, in ranks
// (not a fraction). Zero means the summary is lossless.
func (q *Quantile) ErrorBound() int64 {
	var e int64
	for _, le := range q.errs {
		e += le
	}
	return e
}

// Merge folds another sketch into q. Both sketches should be built with the
// same size (the merged summary is compacted to q's). o is normalised (its
// buffer flushed) but keeps its logical content and remains usable.
func (q *Quantile) Merge(o *Quantile) {
	if o == nil {
		return
	}
	o.flush()
	q.flush()
	q.dirty()
	q.count += o.count
	q.nan += o.nan
	if o.min < q.min {
		q.min = o.min
	}
	if o.max > q.max {
		q.max = o.max
	}
	for level, pts := range o.levels {
		if len(pts) == 0 {
			continue
		}
		cp := q.takeFree(len(pts))
		cp = cp[:len(pts)]
		copy(cp, pts)
		q.push(level, cp, o.errs[level])
	}
}

// flush turns the pending buffer into a lossless level-0 summary.
func (q *Quantile) flush() {
	if len(q.buf) == 0 {
		return
	}
	q.dirty()
	sort.Float64s(q.buf)
	pts := q.takeFree(len(q.buf))
	for _, v := range q.buf {
		if n := len(pts); n > 0 && pts[n-1].v == v {
			pts[n-1].w++
			continue
		}
		pts = append(pts, wpoint{v: v, w: 1})
	}
	q.buf = q.buf[:0]
	q.push(0, pts, 0)
}

// push installs a summary at the given level, carrying binary-counter style
// into higher levels: an occupied slot merges, compacts when oversized, and
// the result moves one level up.
func (q *Quantile) push(level int, pts []wpoint, err int64) {
	for {
		for len(q.levels) <= level {
			q.levels = append(q.levels, nil)
			q.errs = append(q.errs, 0)
		}
		if len(q.levels[level]) == 0 {
			q.levels[level] = pts
			q.errs[level] = err
			return
		}
		old := q.levels[level]
		merged := q.mergeInto(old, pts)
		err += q.errs[level]
		q.levels[level] = nil
		q.errs[level] = 0
		q.putFree(old)
		q.putFree(pts)
		pts = merged
		if len(pts) > q.size {
			var addErr int64
			pts, addErr = compactPoints(pts, q.size)
			err += addErr
		}
		level++
	}
}

// mergeInto merge-joins two sorted weighted point lists exactly into a
// free-list backing, summing weights of equal values. The result never
// aliases a or b.
func (q *Quantile) mergeInto(a, b []wpoint) []wpoint {
	out := q.takeFree(len(a) + len(b))
	return mergePointsInto(out, a, b)
}

// mergePointsInto appends the exact merge of a and b to out, which must be
// empty and alias neither input.
func mergePointsInto(out, a, b []wpoint) []wpoint {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var p wpoint
		switch {
		case i == len(a):
			p = b[j]
			j++
		case j == len(b):
			p = a[i]
			i++
		case a[i].v <= b[j].v:
			p = a[i]
			i++
		default:
			p = b[j]
			j++
		}
		if n := len(out); n > 0 && out[n-1].v == p.v {
			out[n-1].w += p.w
			continue
		}
		out = append(out, p)
	}
	return out
}

// compactPoints reduces a sorted weighted list to at most size points by
// absorbing runs of at most W = ceil(weight/size) values into their weighted
// median point. Every surviving rank estimate moves by less than W, the
// returned error bound. Compaction is in place: the output reuses pts'
// backing (safe because the write index never passes the read index).
func compactPoints(pts []wpoint, size int) ([]wpoint, int64) {
	var total int64
	for _, p := range pts {
		total += p.w
	}
	w := (total + int64(size) - 1) / int64(size)
	if w < 1 {
		w = 1
	}
	out := pts[:0]
	i := 0
	for i < len(pts) {
		// Absorb a run of up to w weight starting at i.
		var runW int64
		j := i
		for j < len(pts) {
			if runW > 0 && runW+pts[j].w > w {
				break
			}
			runW += pts[j].w
			j++
		}
		// Representative: the point containing the run's weighted median.
		var cum int64
		rep := i
		for k := i; k < j; k++ {
			cum += pts[k].w
			if 2*cum >= runW {
				rep = k
				break
			}
		}
		out = append(out, wpoint{v: pts[rep].v, w: runW})
		i = j
	}
	return out, w
}

// merged returns the sketch's full summary as one sorted weighted list,
// including pending buffered values, without mutating the sketch's logical
// content. The result is memoised until the next mutation and must not be
// retained across one.
func (q *Quantile) merged() []wpoint {
	if q.mvalid {
		return q.mcache
	}
	var all []wpoint
	owned := false
	for _, pts := range q.levels {
		if len(pts) == 0 {
			continue
		}
		if all == nil {
			all = pts
			continue
		}
		m := q.mergeInto(all, pts)
		if owned {
			q.putFree(all)
		}
		all, owned = m, true
	}
	if len(q.buf) > 0 {
		tmp := append([]float64(nil), q.buf...)
		sort.Float64s(tmp)
		pts := q.takeFree(len(tmp))
		for _, v := range tmp {
			if n := len(pts); n > 0 && pts[n-1].v == v {
				pts[n-1].w++
				continue
			}
			pts = append(pts, wpoint{v: v, w: 1})
		}
		if all == nil {
			all, owned = pts, true
		} else {
			m := q.mergeInto(all, pts)
			if owned {
				q.putFree(all)
			}
			q.putFree(pts)
			all, owned = m, true
		}
	}
	q.mcache, q.mcacheOwned, q.mvalid = all, owned, true
	return all
}

// RankValue returns the value at the given 0-based rank (nearest-rank
// definition over the non-NaN values), within ErrorBound ranks. Ranks are
// clamped to [0, Count-1]. NaN is returned for an empty sketch.
func (q *Quantile) RankValue(rank int64) float64 {
	if q.count == 0 {
		return math.NaN()
	}
	if rank < 0 {
		rank = 0
	}
	if rank >= q.count {
		rank = q.count - 1
	}
	pts := q.merged()
	var cum int64
	for _, p := range pts {
		cum += p.w
		if rank < cum {
			return p.v
		}
	}
	return pts[len(pts)-1].v
}

// Cuts returns the k interior cut points of a k+1-quantile split — the same
// nearest-rank cut values stats.Quantiles(xs, bins) yields (0-based ranks
// i*n/bins for i in 1..bins-1, deduplicated by rank then by value), within
// ErrorBound ranks. It returns nil when the sketch is empty or bins < 2.
func (q *Quantile) Cuts(bins int) []float64 {
	if bins < 2 || q.count == 0 {
		return nil
	}
	n := q.count
	ranks := make([]int64, 0, bins-1)
	for k := 1; k < bins; k++ {
		idx := int64(k) * n / int64(bins)
		if idx >= n {
			idx = n - 1
		}
		if m := len(ranks); m == 0 || ranks[m-1] != idx {
			ranks = append(ranks, idx)
		}
	}
	pts := q.merged()
	out := make([]float64, 0, len(ranks))
	var cum int64
	pi := 0
	for _, r := range ranks {
		for pi < len(pts) && r >= cum+pts[pi].w {
			cum += pts[pi].w
			pi++
		}
		v := pts[len(pts)-1].v
		if pi < len(pts) {
			v = pts[pi].v
		}
		if m := len(out); m == 0 || out[m-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// BinnerCuts returns GBDT binner cut points: Cuts(maxBins) with a trailing
// cut equal to the exact maximum dropped (it would create an empty bin),
// mirroring the in-memory binner's quantileCuts.
func (q *Quantile) BinnerCuts(maxBins int) []float64 {
	cuts := q.Cuts(maxBins)
	if len(cuts) == 0 {
		return nil
	}
	if cuts[len(cuts)-1] >= q.max {
		cuts = cuts[:len(cuts)-1]
	}
	return cuts
}
