package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestArenaRecycling pins the arena's reuse contract for every pooled kind:
// a returned object comes back on the next take of a compatible size, and
// everything handed out is logically fresh (sketches reset, accumulators
// zeroed) so reuse can never change a computed statistic.
func TestArenaRecycling(t *testing.T) {
	a := NewArena()

	// Quantile: pooled per size; handed back reset.
	q := a.Quantile(128)
	q.AddAll([]float64{3, 1, 2, math.NaN()})
	a.PutQuantile(q)
	q2 := a.Quantile(128)
	if q2 != q {
		t.Error("quantile of the pooled size not reused")
	}
	if q2.Count() != 0 || q2.NaNCount() != 0 {
		t.Errorf("pooled quantile not reset: count=%d nan=%d", q2.Count(), q2.NaNCount())
	}
	if a.Quantile(256) == q2 {
		t.Error("quantile reused across sizes")
	}
	if got := a.Quantile(0).Size(); got != DefaultSize {
		t.Errorf("Quantile(0) size = %d, want DefaultSize", got)
	}
	a.PutQuantile(nil) // no-op, must not panic

	// Floats / Int32s: first-fit by capacity, contents unspecified except
	// Int32sZeroed.
	f := a.Floats(100)
	if len(f) != 100 {
		t.Fatalf("Floats length %d", len(f))
	}
	a.PutFloats(f)
	f2 := a.Floats(50)
	if &f2[0] != &f[0] {
		t.Error("float slice not reused for a smaller request")
	}
	a.PutFloats(nil) // cap 0: dropped, must not panic

	is := a.Int32s(80)
	for i := range is {
		is[i] = 7
	}
	a.PutInt32s(is)
	iz := a.Int32sZeroed(80)
	if &iz[0] != &is[0] {
		t.Error("int32 slice not reused")
	}
	for i, v := range iz {
		if v != 0 {
			t.Fatalf("Int32sZeroed[%d] = %d", i, v)
		}
	}
	a.PutInt32s(nil)

	// Gram: pooled per column count, zeroed on return.
	g := a.Gram(3)
	g.AddChunk([][]float64{{1, 2}, {3, 4}, {5, 6}})
	a.PutGram(g)
	g2 := a.Gram(3)
	if g2 != g {
		t.Error("gram of the pooled width not reused")
	}
	if g2.Rows() != 0 {
		t.Errorf("pooled gram not reset: rows=%d", g2.Rows())
	}
	if a.Gram(4) == g2 {
		t.Error("gram reused across widths")
	}
	a.PutGram(nil)
}

// TestArenaPoolBounds: the pools drop returns beyond their caps instead of
// growing without bound.
func TestArenaPoolBounds(t *testing.T) {
	a := NewArena()
	for i := 0; i < maxArenaQuants+10; i++ {
		a.PutQuantile(NewQuantile(64))
	}
	if n := len(a.quants[64]); n != maxArenaQuants {
		t.Errorf("quantile pool grew to %d, cap is %d", n, maxArenaQuants)
	}
	for i := 0; i < maxArenaSlices+10; i++ {
		a.PutFloats(make([]float64, 4))
		a.PutInt32s(make([]int32, 4))
		a.PutGram(NewGram(2))
	}
	if len(a.floats) != maxArenaSlices || len(a.int32s) != maxArenaSlices || len(a.grams) != maxArenaSlices {
		t.Errorf("slice pools grew past the cap: %d/%d/%d", len(a.floats), len(a.int32s), len(a.grams))
	}
}

// TestSortNonNaNMatchesSortFloat64s drives the radix path (length above
// radixMinN) over adversarial float distributions — mixed signs, infinities,
// zeros of both signs, heavy exponent skew, duplicates — and pins element-
// wise equality with sort.Float64s plus the exact NaN count.
func TestSortNonNaNMatchesSortFloat64s(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	gen := map[string]func(i int) float64{
		"uniform01":  func(int) float64 { return rng.Float64() },
		"mixedSigns": func(int) float64 { return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(13)-6)) },
		"skewedDup":  func(int) float64 { return float64(rng.Intn(4)) },
		"specials": func(i int) float64 {
			switch i % 7 {
			case 0:
				return math.NaN()
			case 1:
				return math.Inf(1)
			case 2:
				return math.Inf(-1)
			case 3:
				return math.Copysign(0, -1)
			case 4:
				return 0
			default:
				return rng.NormFloat64()
			}
		},
	}
	var s SortScratch
	for name, g := range gen {
		// Cover the comparison path (< radixMinN), the boundary, and sizes
		// needing all eight radix passes to cooperate.
		for _, n := range []int{0, 1, radixMinN - 1, radixMinN, 1000, 4096} {
			vs := make([]float64, n)
			nans := 0
			for i := range vs {
				vs[i] = g(i)
				if math.IsNaN(vs[i]) {
					nans++
				}
			}
			want := make([]float64, 0, n)
			for _, v := range vs {
				if !math.IsNaN(v) {
					want = append(want, v)
				}
			}
			sort.Float64s(want)

			got, gotNaN := SortNonNaN(vs, &s)
			if gotNaN != nans {
				t.Fatalf("%s n=%d: nan count %d, want %d", name, n, gotNaN, nans)
			}
			if len(got) != len(want) {
				t.Fatalf("%s n=%d: %d values, want %d", name, n, len(got), len(want))
			}
			for i := range want {
				gv, wv := got[i], want[i]
				// -0.0 and +0.0 compare equal but order differently between
				// the radix mapping and sort.Float64s; both orders are valid.
				if gv != wv && !(gv == 0 && wv == 0) {
					t.Fatalf("%s n=%d: position %d got %v want %v", name, n, i, gv, wv)
				}
			}
		}
	}
}

// TestQuantileTrimScratch: trimming drops the retained merge-phase scratch
// (free lists, bulk buffer, memoised merged summary) but never the logical
// content — ranks, counts and cuts answer identically after a trim, and the
// sketch keeps accepting values.
func TestQuantileTrimScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := NewQuantile(256)
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	q.AddAll(vals[:15000])

	before := make([]float64, 0, 9)
	for _, frac := range []int64{0, 1, 2, 3, 4} {
		before = append(before, q.RankValue(frac*q.Count()/5))
	}
	q.TrimScratch()
	for i, frac := range []int64{0, 1, 2, 3, 4} {
		if got := q.RankValue(frac * q.Count() / 5); got != before[i] {
			t.Fatalf("rank %d/5 changed across TrimScratch: %v -> %v", frac, before[i], got)
		}
	}
	// Still usable: counts keep folding and bounds stay sane.
	q.AddAll(vals[15000:])
	if q.Count() != 20000 {
		t.Fatalf("count after trim+add: %d", q.Count())
	}
	if q.ErrorBound() < 0 {
		t.Fatal("negative error bound")
	}
}

// TestRefinerAddSortedMatchesAddChunk: the sorted-gather fast path must
// accumulate exactly what the per-value streaming path does, including
// through partition shadows merged back in order.
func TestRefinerAddSortedMatchesAddChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 30000
	vals := make([]float64, n)
	for i := range vals {
		// Coarse quantisation forces duplicate-heavy brackets too.
		vals[i] = math.Round(rng.NormFloat64()*100) / 10
	}
	q := NewQuantile(128) // lossy at this n: brackets stay open
	q.AddAll(vals)
	ranks := CutRanks(q.Count(), 10)

	chunked := NewRefiner(q, ranks)
	if !chunked.NeedsPass() {
		t.Fatal("sketch unexpectedly lossless; shrink the size")
	}
	sorted := NewRefiner(q, ranks)

	var s SortScratch
	for lo := 0; lo < n; lo += 7000 { // uneven chunking
		hi := lo + 7000
		if hi > n {
			hi = n
		}
		chunked.AddChunk(vals[lo:hi])

		sh := sorted.Shadow()
		sv, _ := SortNonNaN(vals[lo:hi], &s)
		sh.AddSorted(sv)
		sorted.Merge(sh)
	}
	for _, rk := range ranks {
		if a, b := chunked.Value(rk), sorted.Value(rk); a != b {
			t.Fatalf("rank %d: AddChunk %v vs AddSorted %v", rk, a, b)
		}
	}
}
