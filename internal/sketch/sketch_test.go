package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stats"
)

// ---------- helpers ----------

func randomColumn(n int, seed int64, nanFrac float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		switch {
		case rng.Float64() < nanFrac:
			out[i] = math.NaN()
		case rng.Float64() < 0.3:
			out[i] = rng.NormFloat64() * 100 // heavy spread
		default:
			out[i] = rng.Float64()
		}
	}
	return out
}

func splitParts(xs []float64, parts int) [][]float64 {
	out := make([][]float64, 0, parts)
	per := (len(xs) + parts - 1) / parts
	for lo := 0; lo < len(xs); lo += per {
		hi := lo + per
		if hi > len(xs) {
			hi = len(xs)
		}
		out = append(out, xs[lo:hi])
	}
	return out
}

// trueRankRange returns [lo,hi): the rank interval the value v occupies in
// the sorted non-NaN values of xs. ok is false when v never occurs.
func trueRankRange(sorted []float64, v float64) (int, int, bool) {
	lo := sort.SearchFloat64s(sorted, v)
	hi := lo
	for hi < len(sorted) && sorted[hi] == v {
		hi++
	}
	return lo, hi, hi > lo
}

func sortedClean(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

// ---------- Quantile ----------

func TestQuantileLosslessBelowSize(t *testing.T) {
	xs := randomColumn(5000, 1, 0.02)
	q := NewQuantile(8192)
	q.AddAll(xs)
	if q.ErrorBound() != 0 {
		t.Fatalf("sketch over %d < size values should be lossless, bound=%d", len(xs), q.ErrorBound())
	}
	clean := sortedClean(xs)
	if q.Count() != int64(len(clean)) {
		t.Fatalf("count: got %d want %d", q.Count(), len(clean))
	}
	for _, bins := range []int{2, 10, 64} {
		want := stats.Quantiles(xs, bins)
		got := q.Cuts(bins)
		if len(got) != len(want) {
			t.Fatalf("bins=%d: got %d cuts, want %d", bins, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("bins=%d cut %d: got %v want %v", bins, i, got[i], want[i])
			}
		}
	}
	for _, r := range []int64{0, 7, int64(len(clean) / 2), int64(len(clean) - 1)} {
		if got := q.RankValue(r); got != clean[r] {
			t.Fatalf("rank %d: got %v want %v", r, got, clean[r])
		}
	}
}

func TestQuantileExactStatsMatch(t *testing.T) {
	// Min/Max/Count/NaNCount are exact regardless of compaction.
	xs := randomColumn(120000, 2, 0.01)
	q := NewQuantile(1024)
	q.AddAll(xs)
	clean := sortedClean(xs)
	if q.Count() != int64(len(clean)) {
		t.Fatalf("count: got %d want %d", q.Count(), len(clean))
	}
	if q.NaNCount() != int64(len(xs)-len(clean)) {
		t.Fatalf("nan count: got %d want %d", q.NaNCount(), len(xs)-len(clean))
	}
	if q.Min() != clean[0] || q.Max() != clean[len(clean)-1] {
		t.Fatalf("min/max: got %v/%v want %v/%v", q.Min(), q.Max(), clean[0], clean[len(clean)-1])
	}
}

func TestQuantileErrorBoundHolds(t *testing.T) {
	for _, size := range []int{256, 1024, 8192} {
		xs := randomColumn(100000, 3, 0)
		q := NewQuantile(size)
		q.AddAll(xs)
		clean := sortedClean(xs)
		n := int64(len(clean))
		bound := q.ErrorBound()
		if bound <= 0 && size < len(xs) {
			t.Fatalf("size=%d: expected nonzero error bound", size)
		}
		for _, bins := range []int{10, 64} {
			cuts := q.Cuts(bins)
			targets := make([]int64, 0, bins-1)
			for k := 1; k < bins; k++ {
				targets = append(targets, int64(k)*n/int64(bins))
			}
			ci := 0
			for _, r := range targets {
				if ci >= len(cuts) {
					break
				}
				v := q.RankValue(r)
				lo, hi, ok := trueRankRange(clean, v)
				if !ok {
					t.Fatalf("size=%d: returned value %v not in data", size, v)
				}
				if int64(hi) <= r-bound || int64(lo) >= r+bound+1 {
					t.Fatalf("size=%d bins=%d: rank %d estimate %v has true rank [%d,%d), outside ±%d",
						size, bins, r, v, lo, hi, bound)
				}
				ci++
			}
		}
	}
}

func TestQuantileMergeOrderInvariantWithinBound(t *testing.T) {
	xs := randomColumn(60000, 4, 0.01)
	parts := splitParts(xs, 7)
	build := func(order []int) *Quantile {
		q := NewQuantile(1024)
		for _, p := range order {
			s := NewQuantile(1024)
			s.AddAll(parts[p])
			q.Merge(s)
		}
		return q
	}
	orders := [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1, 0},
		{3, 0, 6, 1, 5, 2, 4},
	}
	clean := sortedClean(xs)
	n := int64(len(clean))
	var sketches []*Quantile
	for _, o := range orders {
		sketches = append(sketches, build(o))
	}
	for i, q := range sketches {
		// Exact statistics must be bit-identical across merge orders.
		if q.Count() != sketches[0].Count() || q.NaNCount() != sketches[0].NaNCount() ||
			q.Min() != sketches[0].Min() || q.Max() != sketches[0].Max() {
			t.Fatalf("order %d: exact stats differ across merge orders", i)
		}
		// Rank estimates stay within the tracked bound of the true ranks.
		bound := q.ErrorBound()
		for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			r := int64(frac * float64(n))
			v := q.RankValue(r)
			lo, hi, ok := trueRankRange(clean, v)
			if !ok {
				t.Fatalf("order %d: estimate %v not a data value", i, v)
			}
			if int64(hi) <= r-bound || int64(lo) >= r+bound+1 {
				t.Fatalf("order %d: rank %d estimate %v true rank [%d,%d) outside ±%d",
					i, r, v, lo, hi, bound)
			}
		}
	}
}

func TestQuantileConstantColumn(t *testing.T) {
	q := NewQuantile(64)
	for i := 0; i < 1000; i++ {
		q.Add(7.5)
	}
	cuts := q.Cuts(10)
	if len(cuts) != 1 || cuts[0] != 7.5 {
		t.Fatalf("constant column cuts: got %v want [7.5]", cuts)
	}
	if got := q.BinnerCuts(64); len(got) != 0 {
		t.Fatalf("constant column binner cuts: got %v want empty", got)
	}
}

func TestQuantileEmptyAndAllNaN(t *testing.T) {
	q := NewQuantile(0)
	if got := q.Cuts(10); got != nil {
		t.Fatalf("empty sketch cuts: got %v", got)
	}
	q.Add(math.NaN())
	if q.Count() != 0 || q.NaNCount() != 1 {
		t.Fatalf("NaN handling: count=%d nan=%d", q.Count(), q.NaNCount())
	}
	if got := q.Cuts(10); got != nil {
		t.Fatalf("all-NaN sketch cuts: got %v", got)
	}
	if !math.IsNaN(q.RankValue(0)) {
		t.Fatalf("all-NaN RankValue should be NaN")
	}
}

// ---------- LabelHist ----------

func TestLabelHistMergeExactAndIVMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 20000
	xs := randomColumn(n, 6, 0.02)
	labels := make([]float64, n)
	for i := range labels {
		if rng.Float64() < 0.3+0.2*math.Tanh(xs[i]) {
			labels[i] = 1
		}
	}
	// Cuts from the exact quantiles, exactly as stats.InformationValue bins.
	cuts := stats.Quantiles(xs, 10)

	single := NewLabelHist(cuts)
	single.AddCol(xs, labels)

	parts := splitParts(xs, 5)
	lparts := splitParts(labels, 5)
	for _, order := range [][]int{{0, 1, 2, 3, 4}, {4, 2, 0, 3, 1}} {
		merged := NewLabelHist(cuts)
		for _, p := range order {
			h := NewLabelHist(cuts)
			h.AddCol(parts[p], lparts[p])
			if err := merged.Merge(h); err != nil {
				t.Fatal(err)
			}
		}
		mp, mn := merged.Counts()
		sp, sn := single.Counts()
		for b := range sp {
			if mp[b] != sp[b] || mn[b] != sn[b] {
				t.Fatalf("order %v bin %d: merged counts (%v,%v) != single (%v,%v)",
					order, b, mp[b], mn[b], sp[b], sn[b])
			}
		}
		want := stats.InformationValue(xs, labels, 10)
		if got := merged.IV(); got != want {
			t.Fatalf("order %v: IV %v != exact %v", order, got, want)
		}
	}
}

func TestLabelHistShardedIVWithinSketchTolerance(t *testing.T) {
	// End-to-end sharded IV: cuts from a merged quantile sketch, counts from
	// merged label histograms, compared against the exact single-pass IV.
	rng := rand.New(rand.NewSource(7))
	n := 50000
	xs := randomColumn(n, 8, 0.01)
	labels := make([]float64, n)
	for i := range labels {
		if rng.Float64() < 0.3+0.2*math.Tanh(xs[i]/2) {
			labels[i] = 1
		}
	}
	parts := splitParts(xs, 6)
	lparts := splitParts(labels, 6)

	qs := NewQuantile(2048)
	for _, p := range parts {
		s := NewQuantile(2048)
		s.AddAll(p)
		qs.Merge(s)
	}
	cuts := qs.Cuts(10)
	merged := NewLabelHist(cuts)
	for i, p := range parts {
		h := NewLabelHist(cuts)
		h.AddCol(p, lparts[i])
		if err := merged.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	got := merged.IV()
	want := stats.InformationValue(xs, labels, 10)
	// The only difference is cut placement, off by at most ErrorBound ranks
	// per cut; for 10 equal-frequency bins over n rows the IV moves by a
	// vanishing amount. 2% absolute is a loose ceiling for this workload.
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("sharded IV %v vs exact %v differ beyond tolerance (bound %d ranks of %d)",
			got, want, qs.ErrorBound(), n)
	}
}

func TestLabelHistChiMergeCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 5000
	xs := make([]float64, n)
	labels := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		if xs[i] > 5 && rng.Float64() < 0.8 {
			labels[i] = 1
		}
	}
	cuts := stats.Quantiles(xs, 64)
	h := NewLabelHist(cuts)
	h.AddCol(xs, labels)
	merged := h.ChiMergeCuts(4, 4.6, 10)
	if len(merged) == 0 || len(merged) > 3 {
		t.Fatalf("chi-merge cuts: got %v", merged)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i] <= merged[i-1] {
			t.Fatalf("chi-merge cuts not ascending: %v", merged)
		}
	}
	// The label flip at 5 should dominate the learned split.
	found := false
	for _, c := range merged {
		if c > 4 && c < 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("chi-merge missed the label boundary near 5: %v", merged)
	}
}

// ---------- Moments ----------

func TestMomentsMergeMatchesSinglePass(t *testing.T) {
	xs := randomColumn(30000, 10, 0.03)
	var single Moments
	single.AddAll(xs)

	parts := splitParts(xs, 8)
	for _, order := range [][]int{{0, 1, 2, 3, 4, 5, 6, 7}, {7, 3, 5, 1, 6, 0, 2, 4}} {
		var merged Moments
		for _, p := range order {
			var m Moments
			m.AddAll(parts[p])
			merged.Merge(&m)
		}
		if merged.N != single.N || merged.Rows != single.Rows || merged.NaNs != single.NaNs {
			t.Fatalf("order %v: exact counts differ", order)
		}
		if relDiff(merged.Mean, single.Mean) > 1e-9 {
			t.Fatalf("order %v: mean %v vs %v", order, merged.Mean, single.Mean)
		}
		if relDiff(merged.Variance(), single.Variance()) > 1e-9 {
			t.Fatalf("order %v: variance %v vs %v", order, merged.Variance(), single.Variance())
		}
	}
	// Against the stats package on the NaN-free values.
	clean := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if relDiff(single.Mean, stats.Mean(clean)) > 1e-9 {
		t.Fatalf("mean vs stats.Mean: %v vs %v", single.Mean, stats.Mean(clean))
	}
	if relDiff(single.Variance(), stats.Variance(clean)) > 1e-9 {
		t.Fatalf("variance vs stats.Variance: %v vs %v", single.Variance(), stats.Variance(clean))
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return d
	}
	return d / scale
}

// ---------- Gram ----------

// refStandardize mirrors core's standardizeCol: (x-mean)/std over non-NaN
// values, NaNs mapped to 0, nil for constant columns.
func refStandardize(col []float64) []float64 {
	var sum float64
	n := 0
	for _, v := range col {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return nil
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range col {
		if !math.IsNaN(v) {
			d := v - mean
			ss += d * d
		}
	}
	std := math.Sqrt(ss / float64(n))
	if std < 1e-12 {
		return nil
	}
	out := make([]float64, len(col))
	for i, v := range col {
		if math.IsNaN(v) {
			out[i] = 0
			continue
		}
		out[i] = (v - mean) / std
	}
	return out
}

func TestGramDotMatchesStandardisedDot(t *testing.T) {
	k, n := 6, 8000
	cols := make([][]float64, k)
	for j := range cols {
		nan := 0.0
		if j%2 == 1 {
			nan = 0.05
		}
		cols[j] = randomColumn(n, int64(20+j), nan)
	}
	// Correlate column 3 with column 0.
	for i := range cols[3] {
		if !math.IsNaN(cols[0][i]) && !math.IsNaN(cols[3][i]) {
			cols[3][i] = cols[0][i]*2 + 0.01*cols[3][i]
		}
	}

	chunkCols := func(lo, hi int) [][]float64 {
		out := make([][]float64, k)
		for j := range out {
			out[j] = cols[j][lo:hi]
		}
		return out
	}
	g1 := NewGram(k)
	g1.AddChunk(chunkCols(0, n))

	// Chunked + merged in a different grouping.
	g2 := NewGram(k)
	for lo := 0; lo < n; lo += 1713 {
		hi := lo + 1713
		if hi > n {
			hi = n
		}
		part := NewGram(k)
		part.AddChunk(chunkCols(lo, hi))
		g2.Merge(part)
	}

	var moms []Moments
	for j := range cols {
		var m Moments
		m.AddAll(cols[j])
		moms = append(moms, m)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			si, sj := refStandardize(cols[i]), refStandardize(cols[j])
			if si == nil || sj == nil {
				continue
			}
			var want float64
			for r := 0; r < n; r++ {
				want += si[r] * sj[r]
			}
			got1 := g1.Dot(i, j, moms[i].Mean, moms[i].Std(), moms[j].Mean, moms[j].Std())
			got2 := g2.Dot(i, j, moms[i].Mean, moms[i].Std(), moms[j].Mean, moms[j].Std())
			if math.Abs(got1-want) > 1e-6*float64(n) {
				t.Fatalf("pair (%d,%d): single-chunk dot %v vs reference %v", i, j, got1, want)
			}
			if math.Abs(got2-got1) > 1e-6*float64(n) {
				t.Fatalf("pair (%d,%d): merged dot %v vs single-chunk %v", i, j, got2, got1)
			}
		}
	}
	// The engineered correlation must read as such.
	dot := g1.Dot(0, 3, moms[0].Mean, moms[0].Std(), moms[3].Mean, moms[3].Std())
	if dot/float64(g1.Rows()) < 0.9 {
		t.Fatalf("engineered correlation lost: normalised dot %v", dot/float64(g1.Rows()))
	}
}
