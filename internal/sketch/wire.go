package sketch

import (
	"fmt"
	"math"
)

// Wire serialization for the mergeable sketch families, used by the
// distributed fit protocol (internal/dist): a worker encodes per-partition
// partials, the coordinator decodes and merges them in partition order.
//
// The encoding is a stable little-endian byte layout with a one-byte family
// tag. Decoders never panic on corrupted input: every length is bounds-
// checked against the remaining buffer and every structural invariant is
// verified, returning a typed *DecodeError. Round-tripping preserves the
// sketch state bit-for-bit — float64 fields travel as raw IEEE-754 bits —
// so merging a decoded partial is arithmetically identical to merging the
// original, which is what keeps a distributed fit's selections bit-identical
// to the single-process engine's.

// Wire family tags. Values are part of the format and must never be reused.
const (
	wireQuantile   byte = 1
	wireMoments    byte = 2
	wireLabelHist  byte = 3
	wireClassHist  byte = 4
	wireMomentHist byte = 5
	wireGram       byte = 6
	wireRefGather  byte = 7
)

// Decode sanity bounds: corrupted lengths fail fast instead of allocating.
const (
	maxWireSketchSize = 1 << 26
	maxWireLevels     = 64
	maxWireClasses    = 1 << 16
	maxWireGramK      = 1 << 16
)

// DecodeError is the typed failure every sketch wire decoder returns on
// malformed input. Corrupted frames must decode to one of these — never a
// panic — which FuzzSketchDecode enforces.
type DecodeError struct {
	Family string // which decoder rejected the input
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("sketch: decode %s: %s", e.Family, e.Reason)
}

func decErr(family, format string, args ...any) error {
	return &DecodeError{Family: family, Reason: fmt.Sprintf(format, args...)}
}

// --- primitive little-endian append/read helpers ---

func appendU8(b []byte, v byte) []byte { return append(b, v) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendI64(b []byte, v int64) []byte   { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func readU8(b []byte) (byte, []byte, bool) {
	if len(b) < 1 {
		return 0, b, false
	}
	return b[0], b[1:], true
}

func readU32(b []byte) (uint32, []byte, bool) {
	if len(b) < 4 {
		return 0, b, false
	}
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return v, b[4:], true
}

func readU64(b []byte) (uint64, []byte, bool) {
	if len(b) < 8 {
		return 0, b, false
	}
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	return v, b[8:], true
}

func readI64(b []byte) (int64, []byte, bool) {
	v, rest, ok := readU64(b)
	return int64(v), rest, ok
}

func readF64(b []byte) (float64, []byte, bool) {
	v, rest, ok := readU64(b)
	return math.Float64frombits(v), rest, ok
}

// appendF64s writes a u32 length followed by the raw bits of each value.
func appendF64s(b []byte, vs []float64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}

// readF64s reads a u32-length-prefixed float64 slice, bounds-checked.
func readF64s(b []byte, family string) ([]float64, []byte, error) {
	n, b, ok := readU32(b)
	if !ok {
		return nil, b, decErr(family, "truncated slice length")
	}
	if uint64(n)*8 > uint64(len(b)) {
		return nil, b, decErr(family, "slice length %d exceeds remaining %d bytes", n, len(b))
	}
	out := make([]float64, n)
	for i := range out {
		out[i], b, _ = readF64(b)
	}
	return out, b, nil
}

func appendI64s(b []byte, vs []int64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendI64(b, v)
	}
	return b
}

func readI64s(b []byte, family string) ([]int64, []byte, error) {
	n, b, ok := readU32(b)
	if !ok {
		return nil, b, decErr(family, "truncated slice length")
	}
	if uint64(n)*8 > uint64(len(b)) {
		return nil, b, decErr(family, "slice length %d exceeds remaining %d bytes", n, len(b))
	}
	out := make([]int64, n)
	for i := range out {
		out[i], b, _ = readI64(b)
	}
	return out, b, nil
}

// readTag consumes and verifies the family tag byte.
func readTag(b []byte, want byte, family string) ([]byte, error) {
	tag, b, ok := readU8(b)
	if !ok {
		return b, decErr(family, "empty input")
	}
	if tag != want {
		return b, decErr(family, "family tag %d, want %d", tag, want)
	}
	return b, nil
}

// validCuts rejects cut arrays no histogram constructor produces: cuts are
// always non-NaN and ascending (equal neighbours tolerated for safety).
func validCuts(cuts []float64, family string) error {
	for i, c := range cuts {
		if math.IsNaN(c) {
			return decErr(family, "NaN cut %d", i)
		}
		if i > 0 && c < cuts[i-1] {
			return decErr(family, "cuts not ascending at %d", i)
		}
	}
	return nil
}

// --- Quantile ---

// AppendQuantile serializes q (normalising its pending buffer first, exactly
// as Merge does) and returns the extended buffer. The encoded levels and
// per-level error bounds reproduce q's summary exactly, so Merge on the
// decoded sketch performs the same point-list pushes as Merge on q.
func AppendQuantile(b []byte, q *Quantile) []byte {
	q.flush()
	b = appendU8(b, wireQuantile)
	b = appendU32(b, uint32(q.size))
	b = appendI64(b, q.count)
	b = appendI64(b, q.nan)
	b = appendF64(b, q.min)
	b = appendF64(b, q.max)
	b = appendU32(b, uint32(len(q.levels)))
	for level, pts := range q.levels {
		b = appendU32(b, uint32(len(pts)))
		b = appendI64(b, q.errs[level])
		for _, p := range pts {
			b = appendF64(b, p.v)
			b = appendI64(b, p.w)
		}
	}
	return b
}

// DecodeQuantile decodes a sketch serialized by AppendQuantile, returning the
// sketch and the unconsumed remainder of the buffer.
func DecodeQuantile(b []byte) (*Quantile, []byte, error) {
	const fam = "quantile"
	b, err := readTag(b, wireQuantile, fam)
	if err != nil {
		return nil, b, err
	}
	size, b, ok := readU32(b)
	if !ok || size == 0 || size > maxWireSketchSize {
		return nil, b, decErr(fam, "bad size %d", size)
	}
	q := NewQuantile(int(size))
	if q.count, b, ok = readI64(b); !ok || q.count < 0 {
		return nil, b, decErr(fam, "bad count")
	}
	if q.nan, b, ok = readI64(b); !ok || q.nan < 0 {
		return nil, b, decErr(fam, "bad nan count")
	}
	if q.min, b, ok = readF64(b); !ok {
		return nil, b, decErr(fam, "truncated min")
	}
	if q.max, b, ok = readF64(b); !ok {
		return nil, b, decErr(fam, "truncated max")
	}
	if math.IsNaN(q.min) || math.IsNaN(q.max) {
		return nil, b, decErr(fam, "NaN extremum")
	}
	nlevels, b, ok := readU32(b)
	if !ok || nlevels > maxWireLevels {
		return nil, b, decErr(fam, "bad level count %d", nlevels)
	}
	var total int64
	q.levels = make([][]wpoint, nlevels)
	q.errs = make([]int64, nlevels)
	for level := range q.levels {
		npts, rest, ok := readU32(b)
		b = rest
		if !ok {
			return nil, b, decErr(fam, "truncated level %d", level)
		}
		if q.errs[level], b, ok = readI64(b); !ok || q.errs[level] < 0 {
			return nil, b, decErr(fam, "bad level %d error", level)
		}
		if uint64(npts)*16 > uint64(len(b)) {
			return nil, b, decErr(fam, "level %d point count %d exceeds input", level, npts)
		}
		if npts == 0 {
			continue // an emptied level slot is nil, matching push's bookkeeping
		}
		pts := make([]wpoint, npts)
		for i := range pts {
			pts[i].v, b, _ = readF64(b)
			pts[i].w, b, _ = readI64(b)
			if math.IsNaN(pts[i].v) || pts[i].w <= 0 {
				return nil, b, decErr(fam, "level %d point %d invalid", level, i)
			}
			if i > 0 && pts[i].v < pts[i-1].v {
				return nil, b, decErr(fam, "level %d points not sorted at %d", level, i)
			}
			total += pts[i].w
		}
		q.levels[level] = pts
	}
	if total != q.count {
		return nil, b, decErr(fam, "level weights sum to %d, count says %d", total, q.count)
	}
	return q, b, nil
}

// --- Moments ---

// AppendMoments serializes m and returns the extended buffer.
func AppendMoments(b []byte, m *Moments) []byte {
	b = appendU8(b, wireMoments)
	b = appendI64(b, m.Rows)
	b = appendI64(b, m.N)
	b = appendF64(b, m.Mean)
	b = appendF64(b, m.M2)
	b = appendI64(b, m.NaNs)
	return b
}

// DecodeMoments decodes an accumulator serialized by AppendMoments.
func DecodeMoments(b []byte) (*Moments, []byte, error) {
	const fam = "moments"
	b, err := readTag(b, wireMoments, fam)
	if err != nil {
		return nil, b, err
	}
	m := &Moments{}
	var ok bool
	if m.Rows, b, ok = readI64(b); !ok || m.Rows < 0 {
		return nil, b, decErr(fam, "bad rows")
	}
	if m.N, b, ok = readI64(b); !ok || m.N < 0 {
		return nil, b, decErr(fam, "bad n")
	}
	if m.Mean, b, ok = readF64(b); !ok {
		return nil, b, decErr(fam, "truncated mean")
	}
	if m.M2, b, ok = readF64(b); !ok {
		return nil, b, decErr(fam, "truncated m2")
	}
	if m.NaNs, b, ok = readI64(b); !ok || m.NaNs < 0 {
		return nil, b, decErr(fam, "bad nan count")
	}
	if m.N+m.NaNs > m.Rows {
		return nil, b, decErr(fam, "n %d + nans %d exceed rows %d", m.N, m.NaNs, m.Rows)
	}
	return m, b, nil
}

// --- LabelHist ---

// AppendLabelHist serializes h (cuts included, so the receiver can verify
// the partial was accumulated over the cut points it expects).
func AppendLabelHist(b []byte, h *LabelHist) []byte {
	b = appendU8(b, wireLabelHist)
	b = appendF64s(b, h.cuts)
	b = appendF64s(b, h.pos)
	b = appendF64s(b, h.neg)
	b = appendF64(b, h.nanPos)
	b = appendF64(b, h.nanNeg)
	return b
}

// DecodeLabelHist decodes a histogram serialized by AppendLabelHist.
func DecodeLabelHist(b []byte) (*LabelHist, []byte, error) {
	const fam = "labelhist"
	b, err := readTag(b, wireLabelHist, fam)
	if err != nil {
		return nil, b, err
	}
	cuts, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	if err := validCuts(cuts, fam); err != nil {
		return nil, b, err
	}
	pos, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	neg, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	if len(pos) != len(cuts)+1 || len(neg) != len(cuts)+1 {
		return nil, b, decErr(fam, "%d cuts with %d/%d bins", len(cuts), len(pos), len(neg))
	}
	h := NewLabelHist(cuts)
	copy(h.pos, pos)
	copy(h.neg, neg)
	var ok bool
	if h.nanPos, b, ok = readF64(b); !ok {
		return nil, b, decErr(fam, "truncated nanPos")
	}
	if h.nanNeg, b, ok = readF64(b); !ok {
		return nil, b, decErr(fam, "truncated nanNeg")
	}
	return h, b, nil
}

// --- ClassHist ---

// AppendClassHist serializes h.
func AppendClassHist(b []byte, h *ClassHist) []byte {
	b = appendU8(b, wireClassHist)
	b = appendU32(b, uint32(h.k))
	b = appendF64s(b, h.cuts)
	b = appendF64s(b, h.flat)
	b = appendF64s(b, h.nan)
	return b
}

// DecodeClassHist decodes a histogram serialized by AppendClassHist.
func DecodeClassHist(b []byte) (*ClassHist, []byte, error) {
	const fam = "classhist"
	b, err := readTag(b, wireClassHist, fam)
	if err != nil {
		return nil, b, err
	}
	k, b, ok := readU32(b)
	if !ok || k == 0 || k > maxWireClasses {
		return nil, b, decErr(fam, "bad class count %d", k)
	}
	cuts, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	if err := validCuts(cuts, fam); err != nil {
		return nil, b, err
	}
	flat, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	nan, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	nb := len(cuts) + 1
	if len(flat) != int(k)*nb || len(nan) != int(k) {
		return nil, b, decErr(fam, "k=%d nb=%d with %d counts, %d nans", k, nb, len(flat), len(nan))
	}
	h := NewClassHist(cuts, int(k))
	copy(h.flat, flat)
	copy(h.nan, nan)
	return h, b, nil
}

// --- MomentHist ---

// AppendMomentHist serializes h. Note the distributed fit never merges
// MomentHist partials (float sums are order-sensitive — the regression
// passes ship bin ids instead); the codec exists for completeness and for
// callers that accept the regrouping.
func AppendMomentHist(b []byte, h *MomentHist) []byte {
	b = appendU8(b, wireMomentHist)
	b = appendF64s(b, h.cuts)
	b = appendF64s(b, h.cnt)
	b = appendF64s(b, h.sum)
	b = appendF64s(b, h.sumsq)
	b = appendF64(b, h.nanN)
	return b
}

// DecodeMomentHist decodes a histogram serialized by AppendMomentHist.
func DecodeMomentHist(b []byte) (*MomentHist, []byte, error) {
	const fam = "momenthist"
	b, err := readTag(b, wireMomentHist, fam)
	if err != nil {
		return nil, b, err
	}
	cuts, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	if err := validCuts(cuts, fam); err != nil {
		return nil, b, err
	}
	cnt, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	sum, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	sumsq, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	nb := len(cuts) + 1
	if len(cnt) != nb || len(sum) != nb || len(sumsq) != nb {
		return nil, b, decErr(fam, "%d cuts with %d/%d/%d bins", len(cuts), len(cnt), len(sum), len(sumsq))
	}
	h := NewMomentHist(cuts)
	copy(h.cnt, cnt)
	copy(h.sum, sum)
	copy(h.sumsq, sumsq)
	var ok bool
	if h.nanN, b, ok = readF64(b); !ok {
		return nil, b, decErr(fam, "truncated nanN")
	}
	return h, b, nil
}

// --- Gram ---

// AppendGram serializes g.
func AppendGram(b []byte, g *Gram) []byte {
	b = appendU8(b, wireGram)
	b = appendU32(b, uint32(g.k))
	b = appendI64(b, g.rows)
	b = appendF64s(b, g.sxy)
	b = appendF64s(b, g.sx)
	b = appendF64s(b, g.sy)
	b = appendI64s(b, g.cnt)
	return b
}

// DecodeGram decodes an accumulator serialized by AppendGram.
func DecodeGram(b []byte) (*Gram, []byte, error) {
	const fam = "gram"
	b, err := readTag(b, wireGram, fam)
	if err != nil {
		return nil, b, err
	}
	k, b, ok := readU32(b)
	if !ok || k > maxWireGramK {
		return nil, b, decErr(fam, "bad width %d", k)
	}
	rows, b, ok := readI64(b)
	if !ok || rows < 0 {
		return nil, b, decErr(fam, "bad row count")
	}
	sxy, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	sx, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	sy, b, err := readF64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	cnt, b, err := readI64s(b, fam)
	if err != nil {
		return nil, b, err
	}
	pairs := int(k) * (int(k) - 1) / 2
	if len(sxy) != pairs || len(sx) != pairs || len(sy) != pairs || len(cnt) != pairs {
		return nil, b, decErr(fam, "width %d wants %d pairs, got %d/%d/%d/%d",
			k, pairs, len(sxy), len(sx), len(sy), len(cnt))
	}
	g := NewGram(int(k))
	g.rows = rows
	copy(g.sxy, sxy)
	copy(g.sx, sx)
	copy(g.sy, sy)
	copy(g.cnt, cnt)
	return g, b, nil
}

// --- Refiner gather partials ---

// Brackets exposes a refiner's target ranks and bracket arrays (not copies)
// so a coordinator can ship them to workers, which rebuild an equivalent
// gatherer with NewShadowRefiner.
func (r *Refiner) Brackets() (ranks []int64, lo, hi []float64, resolved []bool) {
	return r.ranks, r.lo, r.hi, r.resolved
}

// NewShadowRefiner builds a gather-only refiner from transported brackets —
// the remote equivalent of Refiner.Shadow. AddChunk/AddSorted accumulate
// exactly as a local shadow would (the bucket index is rebuilt from the same
// lo edges, and its answers are defined identically to the binary search),
// so partials folded with Merge in partition order reproduce the local fold
// bit-for-bit. The slices are retained; they must not be modified.
func NewShadowRefiner(ranks []int64, lo, hi []float64, resolved []bool) *Refiner {
	r := &Refiner{
		ranks:    ranks,
		lo:       lo,
		hi:       hi,
		resolved: resolved,
		lowDelta: make([]int64, len(ranks)+1),
		loEq:     make([]int64, len(ranks)),
		hiEq:     make([]int64, len(ranks)),
		mid:      make([][]float64, len(ranks)),
	}
	r.idx = newEdgeIndex(r.lo)
	return r
}

// AppendRefinerGather serializes a refiner's gather accumulators (not its
// brackets): the per-partition partial a worker sends back.
func AppendRefinerGather(b []byte, r *Refiner) []byte {
	b = appendU8(b, wireRefGather)
	b = appendU32(b, uint32(len(r.ranks)))
	for t := 0; t <= len(r.ranks); t++ {
		b = appendI64(b, r.lowDelta[t])
	}
	for t := range r.ranks {
		b = appendI64(b, r.loEq[t])
		b = appendI64(b, r.hiEq[t])
		b = appendF64s(b, r.mid[t])
	}
	return b
}

// DecodeRefinerGather decodes a partial serialized by AppendRefinerGather
// into a refiner suitable only as a Merge argument (its brackets are empty;
// only the accumulators and target count carry over).
func DecodeRefinerGather(b []byte) (*Refiner, []byte, error) {
	const fam = "refgather"
	b, err := readTag(b, wireRefGather, fam)
	if err != nil {
		return nil, b, err
	}
	nt, b, ok := readU32(b)
	if !ok || nt > maxWireSketchSize {
		return nil, b, decErr(fam, "bad target count %d", nt)
	}
	if uint64(nt+1)*8 > uint64(len(b)) {
		return nil, b, decErr(fam, "target count %d exceeds input", nt)
	}
	r := &Refiner{
		ranks:    make([]int64, nt),
		lo:       make([]float64, nt),
		hi:       make([]float64, nt),
		resolved: make([]bool, nt),
		lowDelta: make([]int64, nt+1),
		loEq:     make([]int64, nt),
		hiEq:     make([]int64, nt),
		mid:      make([][]float64, nt),
	}
	for t := 0; t <= int(nt); t++ {
		if r.lowDelta[t], b, ok = readI64(b); !ok || r.lowDelta[t] < 0 {
			return nil, b, decErr(fam, "bad lowDelta %d", t)
		}
	}
	for t := 0; t < int(nt); t++ {
		if r.loEq[t], b, ok = readI64(b); !ok || r.loEq[t] < 0 {
			return nil, b, decErr(fam, "bad loEq %d", t)
		}
		if r.hiEq[t], b, ok = readI64(b); !ok || r.hiEq[t] < 0 {
			return nil, b, decErr(fam, "bad hiEq %d", t)
		}
		if r.mid[t], b, err = readF64s(b, fam); err != nil {
			return nil, b, err
		}
	}
	return r, b, nil
}

// MergeWire merges a decoded gather partial into r, validating the target
// count first — a merge from the wire must not trust the peer's shape (a
// bare Merge indexes the argument's accumulators by r's target count).
func (r *Refiner) MergeWire(o *Refiner) error {
	if len(o.ranks) != len(r.ranks) {
		return decErr("refgather", "gather partial covers %d targets, want %d", len(o.ranks), len(r.ranks))
	}
	r.Merge(o)
	return nil
}

// DecodeAny dispatches on the family tag — the single entry point
// FuzzSketchDecode drives, and a convenient way for protocol code to decode
// a self-describing sketch payload.
func DecodeAny(b []byte) (any, []byte, error) {
	if len(b) == 0 {
		return nil, b, decErr("any", "empty input")
	}
	switch b[0] {
	case wireQuantile:
		return DecodeQuantile(b)
	case wireMoments:
		return DecodeMoments(b)
	case wireLabelHist:
		return DecodeLabelHist(b)
	case wireClassHist:
		return DecodeClassHist(b)
	case wireMomentHist:
		return DecodeMomentHist(b)
	case wireGram:
		return DecodeGram(b)
	case wireRefGather:
		return DecodeRefinerGather(b)
	default:
		return nil, b, decErr("any", "unknown family tag %d", b[0])
	}
}
