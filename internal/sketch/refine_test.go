package sketch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// refTestColumn builds columns that stress the refiner: continuous spread,
// heavy duplicate runs, and NaNs.
func refTestColumn(n int, seed int64, kind string) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		switch kind {
		case "duplicates":
			out[i] = math.Floor(rng.Float64() * 12) // 12 distinct values
		case "constant":
			out[i] = 3.25
		case "nan":
			if rng.Float64() < 0.1 {
				out[i] = math.NaN()
			} else {
				out[i] = rng.NormFloat64()
			}
		default:
			out[i] = rng.NormFloat64() * 50
		}
	}
	return out
}

// TestRefinerExactCuts: a lossy sketch plus one refinement pass reproduces
// stats.Quantiles bit-for-bit, for every column shape.
func TestRefinerExactCuts(t *testing.T) {
	for _, kind := range []string{"normal", "duplicates", "constant", "nan"} {
		xs := refTestColumn(60000, 11, kind)
		parts := splitParts(xs, 5)
		q := NewQuantile(512) // deliberately lossy: forces real refinement
		for _, p := range parts {
			s := NewQuantile(512)
			s.AddAll(p)
			q.Merge(s)
		}
		for _, bins := range []int{10, 64} {
			ranks := CutRanks(q.Count(), bins)
			ref := NewRefiner(q, ranks)
			if ref.NeedsPass() {
				for _, p := range parts {
					ref.AddChunk(p)
				}
			}
			got := ExactCuts(q, ref, bins)
			want := stats.Quantiles(xs, bins)
			if len(got) != len(want) {
				t.Fatalf("%s bins=%d: %d cuts vs %d (sketch bound %d)",
					kind, bins, len(got), len(want), q.ErrorBound())
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s bins=%d cut %d: got %v want %v", kind, bins, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRefinerMergeMatchesSequential: per-partition refiners merged give the
// same exact values as one refiner over all chunks.
func TestRefinerMergeMatchesSequential(t *testing.T) {
	xs := refTestColumn(30000, 13, "normal")
	parts := splitParts(xs, 4)
	q := NewQuantile(256)
	for _, p := range parts {
		s := NewQuantile(256)
		s.AddAll(p)
		q.Merge(s)
	}
	ranks := CutRanks(q.Count(), 32)

	seq := NewRefiner(q, ranks)
	for _, p := range parts {
		seq.AddChunk(p)
	}
	merged := NewRefiner(q, ranks)
	for i := len(parts) - 1; i >= 0; i-- { // merge in reverse partition order
		part := NewRefiner(q, ranks)
		part.AddChunk(parts[i])
		merged.Merge(part)
	}
	for _, r := range ranks {
		if seq.Value(r) != merged.Value(r) {
			t.Fatalf("rank %d: sequential %v vs merged %v", r, seq.Value(r), merged.Value(r))
		}
	}
}

// TestRefinerLosslessSkipsPass: a lossless sketch resolves every bracket
// without gathering.
func TestRefinerLosslessSkipsPass(t *testing.T) {
	xs := refTestColumn(4000, 17, "normal")
	q := NewQuantile(8192)
	q.AddAll(xs)
	if q.ErrorBound() != 0 {
		t.Fatal("expected lossless sketch")
	}
	ref := NewRefiner(q, CutRanks(q.Count(), 64))
	if ref.NeedsPass() {
		t.Fatal("lossless sketch should resolve every bracket immediately")
	}
	want := stats.Quantiles(xs, 64)
	got := ExactCuts(q, ref, 64)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cut %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestExactBinnerCutsDropsTrailingMax(t *testing.T) {
	xs := refTestColumn(10000, 19, "duplicates")
	q := NewQuantile(128)
	q.AddAll(xs)
	ref := NewRefiner(q, CutRanks(q.Count(), 64))
	if ref.NeedsPass() {
		ref.AddChunk(xs)
	}
	cuts := ExactBinnerCuts(q, ref, 64)
	for _, c := range cuts {
		if c >= q.Max() {
			t.Fatalf("binner cut %v not below max %v", c, q.Max())
		}
	}
}

func TestCutRanks(t *testing.T) {
	ranks := CutRanks(100, 10)
	want := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90}
	if len(ranks) != len(want) {
		t.Fatalf("got %v want %v", ranks, want)
	}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("got %v want %v", ranks, want)
		}
	}
	if CutRanks(0, 10) != nil || CutRanks(100, 1) != nil {
		t.Fatal("degenerate inputs should yield nil")
	}
	// Tiny n dedups collapsing ranks.
	if got := CutRanks(3, 10); len(got) >= 9 {
		t.Fatalf("expected deduplicated ranks for n=3, got %v", got)
	}
}
