package sketch

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// LabelHist is a mergeable binned label-count histogram over fixed cut
// points: bin b counts the positive and negative labels of rows whose value
// falls in (cuts[b-1], cuts[b]] — the convention stats.Digitize and the GBDT
// binner share. NaN values are counted separately and excluded from bins,
// matching stats.InformationValue. Counts are integers stored in float64, so
// Merge is exact and exactly order-invariant.
type LabelHist struct {
	cuts     []float64
	pos, neg []float64 // len(cuts)+1 bins
	nanPos   float64
	nanNeg   float64
	ix       stats.CutIndexer
	slab     []int32 // AddColBits scratch: interleaved neg/pos counts
}

// NewLabelHist creates a histogram over the given ascending cut points
// (len(cuts)+1 bins; nil cuts yield a single bin). The cuts slice is
// retained and must not be modified.
func NewLabelHist(cuts []float64) *LabelHist {
	h := &LabelHist{
		cuts: cuts,
		pos:  make([]float64, len(cuts)+1),
		neg:  make([]float64, len(cuts)+1),
	}
	h.ix.Reset(cuts)
	return h
}

// Cuts returns the histogram's cut points (not a copy).
func (h *LabelHist) Cuts() []float64 { return h.cuts }

// Shadow returns a histogram sharing h's cut points and bucket index
// (read-only) with fresh counts, so partitions can accumulate concurrently
// and fold back with Merge — counts are integral, so the fold is exact. A
// shadow must not outlive h.
func (h *LabelHist) Shadow() *LabelHist {
	sh := &LabelHist{
		cuts: h.cuts,
		pos:  make([]float64, len(h.pos)),
		neg:  make([]float64, len(h.neg)),
	}
	sh.ix = h.ix
	return sh
}

// Add observes one (value, binary label) observation.
func (h *LabelHist) Add(v, label float64) {
	if math.IsNaN(v) {
		if label > 0.5 {
			h.nanPos++
		} else {
			h.nanNeg++
		}
		return
	}
	b := h.ix.Find(v)
	if label > 0.5 {
		h.pos[b]++
	} else {
		h.neg[b]++
	}
}

// AddCol observes a column of values against parallel labels.
func (h *LabelHist) AddCol(vals, labels []float64) {
	for i, v := range vals {
		h.Add(v, labels[i])
	}
}

// AddColBits is AddCol with the labels pre-thresholded to 0/1 bits (bit =
// 1 iff label > 0.5). Random binary labels make Add's label branch
// mispredict on every other row, so the hot pass precomputes the bits once
// and this path accumulates into an interleaved count slab with no
// label-dependent branch. The counts folded into pos/neg are identical to
// AddCol's — integer arithmetic, exactly order-invariant.
func (h *LabelHist) AddColBits(vals []float64, bits []uint8) {
	nb := len(h.pos)
	if cap(h.slab) < 2*nb {
		h.slab = make([]int32, 2*nb)
	}
	slab := h.slab[:2*nb]
	for i := range slab {
		slab[i] = 0
	}
	var nanPos, nanNeg int32
	for i, v := range vals {
		if math.IsNaN(v) {
			bit := int32(bits[i])
			nanPos += bit
			nanNeg += 1 - bit
			continue
		}
		b := h.ix.Find(v)
		slab[2*b+int(bits[i])]++
	}
	for b := 0; b < nb; b++ {
		h.neg[b] += float64(slab[2*b])
		h.pos[b] += float64(slab[2*b+1])
	}
	h.nanPos += float64(nanPos)
	h.nanNeg += float64(nanNeg)
}

// Merge folds another histogram into h. The cut arrays must be identical.
func (h *LabelHist) Merge(o *LabelHist) error {
	if len(o.cuts) != len(h.cuts) {
		return fmt.Errorf("sketch: merge label hists with %d vs %d cuts", len(o.cuts), len(h.cuts))
	}
	for i := range h.cuts {
		if h.cuts[i] != o.cuts[i] {
			return fmt.Errorf("sketch: merge label hists with different cut %d", i)
		}
	}
	for b := range h.pos {
		h.pos[b] += o.pos[b]
		h.neg[b] += o.neg[b]
	}
	h.nanPos += o.nanPos
	h.nanNeg += o.nanNeg
	return nil
}

// Counts returns the per-bin positive and negative counts (not copies).
func (h *LabelHist) Counts() (pos, neg []float64) { return h.pos, h.neg }

// MergeHist implements CriterionHist.
func (h *LabelHist) MergeHist(o CriterionHist) error {
	oh, ok := o.(*LabelHist)
	if !ok {
		return fmt.Errorf("sketch: merge %T into *LabelHist", o)
	}
	return h.Merge(oh)
}

// Criterion implements CriterionHist: the binary Information Value.
func (h *LabelHist) Criterion() float64 { return h.IV() }

// IV returns the Information Value of the binned feature, reproducing
// stats.InformationValue's Laplace smoothing exactly given the same cuts: a
// histogram with no cuts (a single bin, e.g. an all-NaN column) scores 0.
func (h *LabelHist) IV() float64 {
	if len(h.cuts) == 0 {
		return 0
	}
	var np, nn float64
	for b := range h.pos {
		np += h.pos[b]
		nn += h.neg[b]
	}
	return stats.IVFromCounts(h.pos, h.neg, np, nn)
}

// ChiMergeCuts runs bottom-up chi-squared interval merging over the
// histogram's bins (the sharded counterpart of stats.ChiMerge, which needs
// the raw column): adjacent bins merge while the pair's chi-squared
// statistic is lowest, down to at most maxBins intervals, then further while
// below threshold. max is the exact column maximum (the last interval's
// upper bound). It returns interior cut points usable with stats.Digitize.
func (h *LabelHist) ChiMergeCuts(maxBins int, threshold, max float64) []float64 {
	uppers := make([]float64, len(h.pos))
	for b := range uppers {
		if b < len(h.cuts) {
			uppers[b] = h.cuts[b]
		} else {
			uppers[b] = max
		}
	}
	return stats.ChiMergeCounts(uppers, h.pos, h.neg, maxBins, threshold)
}
