// Package sketch provides the mergeable statistics summaries the sharded
// out-of-core fit engine (internal/shard) is built on. Each sketch is built
// independently per data partition and merged by the coordinator; Merge is
// associative and — within the documented error bounds — order-invariant, so
// a fit over partitions that never coexist in memory reaches the same
// decisions as a single-frame fit.
//
// The four sketches and their guarantees:
//
//   - Quantile: a deterministic weighted-coreset quantile summary (in the
//     GK/KLL family). Count, Min, Max and NaNCount are exact and exactly
//     order-invariant. Rank queries carry a tracked worst-case rank error
//     (ErrorBound); with the default size S and P partition pushes the bound
//     is O(P·n_chunk/S) ranks, i.e. a vanishing fraction of n for chunk
//     sizes near S. A partition whose row count is at most S summarises
//     losslessly, so few-partition merges are near-exact.
//   - LabelHist: per-bin positive/negative label counts over fixed cut
//     points. Counts are integers, so Merge is exact and exactly
//     order-invariant; IV reproduces stats.InformationValue's Laplace
//     smoothing bit-for-bit given the same cuts. The counts are also the
//     contingency-table input chi-merge discretisation consumes.
//   - Moments: count/mean/M2 accumulator (Welford update, Chan et al.
//     pairwise merge). Merge is order-invariant up to floating-point
//     rounding, which the property tests bound at a relative 1e-9.
//   - Gram: pairwise co-moment accumulator over a column set, restricted to
//     jointly non-NaN rows. Sums are plain additions, so Merge is
//     order-invariant up to floating-point rounding. Dot reproduces the
//     standardised dot product core's Pearson dedup computes.
//
// None of the sketches use randomisation: identical input partitions in the
// same merge order produce identical bytes, which keeps the sharded fit
// deterministic and its tests stable.
package sketch
