package sketch

import (
	"math"
	"sort"
	"testing"
)

// blockStats computes what a columnar store records per block.
func blockStats(vals []float64) (mn, mx float64, nonNaN int64) {
	mn, mx = math.NaN(), math.NaN()
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		if nonNaN == 0 || v < mn {
			mn = v
		}
		if nonNaN == 0 || v > mx {
			mx = v
		}
		nonNaN++
	}
	return mn, mx, nonNaN
}

// TestRefinerSkipBucketEquivalence pins the block-skipping contract: for
// any block whose min/max SkipBucket accepts, folding the block in as a
// single AddOutside count yields bit-identical refined values to streaming
// the block through AddSorted. Sorted data makes block ranges tight, so a
// real fraction of blocks must skip for the test to mean anything.
func TestRefinerSkipBucketEquivalence(t *testing.T) {
	for _, kind := range []string{"normal", "duplicates", "nan"} {
		xs := refTestColumn(50000, 19, kind)
		// Cluster: sort ascending (NaNs at the end) so most blocks span a
		// narrow value range — the layout block skipping is designed for.
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		const blockRows = 500
		var blocks [][]float64
		for off := 0; off < len(sorted); off += blockRows {
			end := off + blockRows
			if end > len(sorted) {
				end = len(sorted)
			}
			blocks = append(blocks, sorted[off:end])
		}

		q := NewQuantile(512) // lossy: brackets stay open, refinement is real
		q.AddAll(sorted)
		ranks := CutRanks(q.Count(), 16)

		full := NewRefiner(q, ranks)
		for _, b := range blocks {
			full.AddChunk(b)
		}

		skipping := NewRefiner(q, ranks)
		skipped := 0
		var srt SortScratch
		for _, b := range blocks {
			mn, mx, nonNaN := blockStats(b)
			if nonNaN == 0 {
				skipped++ // all-NaN block contributes nothing
				continue
			}
			if bucket, ok := skipping.SkipBucket(mn, mx); ok {
				skipping.AddOutside(bucket, nonNaN)
				skipped++
				continue
			}
			s, _ := SortNonNaN(b, &srt)
			skipping.AddSorted(s)
		}
		// Duplicate-heavy data can legitimately refuse everything (the few
		// distinct values sit on bracket edges); the smooth distribution
		// must skip a real fraction or the test exercises nothing.
		if kind == "normal" && skipped < len(blocks)/2 {
			t.Fatalf("%s: only %d/%d blocks skippable", kind, skipped, len(blocks))
		}
		t.Logf("%s: skipped %d/%d blocks", kind, skipped, len(blocks))

		for _, r := range ranks {
			if math.Float64bits(full.Value(r)) != math.Float64bits(skipping.Value(r)) {
				t.Fatalf("%s rank %d: full %v vs skipping %v", kind, r, full.Value(r), skipping.Value(r))
			}
		}
	}
}

// TestSkipBucketRefusals pins the guard rails: NaN stats, a range touching
// a bracket, and a range spanning bracket boundaries must all refuse.
func TestSkipBucketRefusals(t *testing.T) {
	xs := refTestColumn(20000, 7, "normal")
	q := NewQuantile(256)
	q.AddAll(xs)
	ranks := CutRanks(q.Count(), 16)
	r := NewRefiner(q, ranks)
	if !r.NeedsPass() {
		t.Skip("sketch resolved losslessly; refusal paths unreachable")
	}

	if _, ok := r.SkipBucket(math.NaN(), math.NaN()); ok {
		t.Fatal("NaN stats accepted")
	}
	// A block spanning the full data range overlaps every bracket.
	mn, mx, _ := blockStats(xs)
	if _, ok := r.SkipBucket(mn, mx); ok {
		t.Fatal("full-range block accepted")
	}
	// A block sitting exactly on an open bracket's lo must refuse: values
	// equal to lo are part of the gather.
	for i, res := range r.resolved {
		if !res {
			if _, ok := r.SkipBucket(r.lo[i], r.lo[i]); ok {
				t.Fatalf("block pinned to open bracket lo %v accepted", r.lo[i])
			}
			break
		}
	}
}
