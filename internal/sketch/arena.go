package sketch

import "sync"

// Arena recycles the transient objects the sharded fit's streaming passes
// churn through: per-partition quantile sketch partials, float/int scratch
// columns, and Gram partials. Everything handed out is logically fresh —
// sketches are Reset, accumulators zeroed, overwrite-only buffers handed
// out as-is — so reuse never changes any computed statistic; it only
// removes the allocation churn that dominated the sharded engine's profile
// (partial sketches alone were ~80% of allocs).
//
// An Arena is safe for concurrent use: partition workers take objects while
// the ordered fold returns them from a different goroutine. Operations are
// O(free-list length) under one mutex, which is uncontended next to the
// per-chunk work they bracket.
type Arena struct {
	mu     sync.Mutex
	quants map[int][]*Quantile
	floats [][]float64
	int32s [][]int32
	grams  []*Gram
}

// maxArenaSlices bounds each retained slice pool.
const maxArenaSlices = 64

// maxArenaQuants bounds the retained quantile pool per size. The candidate
// sketch pass holds one partial per candidate transform simultaneously —
// hundreds for wide inputs — so this is far above maxArenaSlices: a pooled
// partial retains only compacted backings (see AddSortedScratch), and
// letting the pool cover the whole candidate set is what makes the pass
// allocation-free in steady state.
const maxArenaQuants = 1024

// NewArena creates an empty arena.
func NewArena() *Arena {
	return &Arena{quants: make(map[int][]*Quantile)}
}

// Quantile returns a fresh (reset) sketch of the given per-level size.
func (a *Arena) Quantile(size int) *Quantile {
	if size <= 0 {
		size = DefaultSize
	}
	a.mu.Lock()
	pool := a.quants[size]
	if n := len(pool); n > 0 {
		q := pool[n-1]
		pool[n-1] = nil
		a.quants[size] = pool[:n-1]
		a.mu.Unlock()
		return q
	}
	a.mu.Unlock()
	return NewQuantile(size)
}

// PutQuantile resets a sketch and returns it to the pool.
func (a *Arena) PutQuantile(q *Quantile) {
	if q == nil {
		return
	}
	q.Reset()
	a.mu.Lock()
	if len(a.quants[q.size]) < maxArenaQuants {
		a.quants[q.size] = append(a.quants[q.size], q)
	}
	a.mu.Unlock()
}

// Floats returns a []float64 of length n with unspecified contents — for
// buffers the caller fully overwrites (transform outputs). Zeroing the big
// per-chunk scratch columns showed up as measurable memclr time.
func (a *Arena) Floats(n int) []float64 {
	a.mu.Lock()
	for i, s := range a.floats {
		if cap(s) >= n {
			last := len(a.floats) - 1
			a.floats[i] = a.floats[last]
			a.floats[last] = nil
			a.floats = a.floats[:last]
			a.mu.Unlock()
			return s[:n]
		}
	}
	a.mu.Unlock()
	return make([]float64, n)
}

// PutFloats returns a slice taken with Floats.
func (a *Arena) PutFloats(s []float64) {
	if cap(s) == 0 {
		return
	}
	a.mu.Lock()
	if len(a.floats) < maxArenaSlices {
		a.floats = append(a.floats, s[:0])
	}
	a.mu.Unlock()
}

// Int32s returns a []int32 of length n with unspecified contents — for id
// slabs the caller fully overwrites. Use Int32sZeroed for counters.
func (a *Arena) Int32s(n int) []int32 {
	a.mu.Lock()
	for i, s := range a.int32s {
		if cap(s) >= n {
			last := len(a.int32s) - 1
			a.int32s[i] = a.int32s[last]
			a.int32s[last] = nil
			a.int32s = a.int32s[:last]
			a.mu.Unlock()
			return s[:n]
		}
	}
	a.mu.Unlock()
	return make([]int32, n)
}

// Int32sZeroed returns a zeroed []int32 of length n — for accumulators.
func (a *Arena) Int32sZeroed(n int) []int32 {
	s := a.Int32s(n)
	for j := range s {
		s[j] = 0
	}
	return s
}

// PutInt32s returns a slice taken with Int32s.
func (a *Arena) PutInt32s(s []int32) {
	if cap(s) == 0 {
		return
	}
	a.mu.Lock()
	if len(a.int32s) < maxArenaSlices {
		a.int32s = append(a.int32s, s[:0])
	}
	a.mu.Unlock()
}

// Gram returns a zeroed co-moment accumulator over k columns.
func (a *Arena) Gram(k int) *Gram {
	a.mu.Lock()
	for i, g := range a.grams {
		if g.k == k {
			last := len(a.grams) - 1
			a.grams[i] = a.grams[last]
			a.grams[last] = nil
			a.grams = a.grams[:last]
			a.mu.Unlock()
			return g
		}
	}
	a.mu.Unlock()
	return NewGram(k)
}

// PutGram zeroes an accumulator and returns it to the pool.
func (a *Arena) PutGram(g *Gram) {
	if g == nil {
		return
	}
	g.Reset()
	a.mu.Lock()
	if len(a.grams) < maxArenaSlices {
		a.grams = append(a.grams, g)
	}
	a.mu.Unlock()
}
