package sketch

import "math"

// Gram is a mergeable pairwise co-moment accumulator over a fixed set of k
// columns, tracking for every unordered pair (i < j) the sums the Pearson
// redundancy filter needs, restricted to rows where both values are non-NaN:
//
//	sxy = Σ xᵢyᵢ,  sx = Σ xᵢ,  sy = Σ yᵢ,  cnt = #rows (both valid)
//
// Sums are plain additions, so Merge is associative and order-invariant up
// to floating-point rounding. Dot then reproduces the standardised dot
// product core's pearsonDedup computes lazily from full columns: with NaNs
// standardised to 0 (the mean), only jointly valid rows contribute.
type Gram struct {
	k    int
	rows int64
	sxy  []float64
	sx   []float64
	sy   []float64
	cnt  []int64
}

// NewGram creates an accumulator over k columns.
func NewGram(k int) *Gram {
	pairs := k * (k - 1) / 2
	return &Gram{
		k:   k,
		sxy: make([]float64, pairs),
		sx:  make([]float64, pairs),
		sy:  make([]float64, pairs),
		cnt: make([]int64, pairs),
	}
}

// pairIndex flattens (i < j) into the lower-triangle order (1,0), (2,0),
// (2,1), (3,0), ...
func (g *Gram) pairIndex(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return j*(j-1)/2 + i
}

// K returns the number of columns the accumulator tracks.
func (g *Gram) K() int { return g.k }

// Reset zeroes the accumulator for reuse over the same k columns.
func (g *Gram) Reset() {
	g.rows = 0
	for p := range g.sxy {
		g.sxy[p] = 0
		g.sx[p] = 0
		g.sy[p] = 0
		g.cnt[p] = 0
	}
}

// Rows returns the total rows observed.
func (g *Gram) Rows() int64 { return g.rows }

// ChunkPrep holds per-column chunk preparation (sums and NaN presence)
// shared by every pair-range of one chunk.
type ChunkPrep struct {
	Sums   []float64
	HasNaN []bool
}

// PrepChunk computes the per-column sums and NaN flags of a chunk once, for
// use with AddPrepared across parallel pair-ranges.
func PrepChunk(cols [][]float64) ChunkPrep {
	p := ChunkPrep{Sums: make([]float64, len(cols)), HasNaN: make([]bool, len(cols))}
	for j, c := range cols {
		var s float64
		for _, v := range c {
			if math.IsNaN(v) {
				p.HasNaN[j] = true
				continue
			}
			s += v
		}
		p.Sums[j] = s
	}
	return p
}

// AddChunk accumulates one row-chunk: cols must hold exactly k equal-length
// columns. Columns without NaNs in the chunk take a fast dot-product path.
func (g *Gram) AddChunk(cols [][]float64) {
	if len(cols) != g.k {
		panic("sketch: gram chunk column count mismatch")
	}
	if g.k == 0 {
		return
	}
	g.AddRows(len(cols[0]))
	g.AddPrepared(cols, PrepChunk(cols), 1, g.k)
}

// AddPrepared accumulates the pairs (i, j) for j in [jlo, jhi) against all
// i < j — the unit of work a caller parallelising over pair rows uses. Every
// pair belongs to exactly one j-row, so disjoint ranges touch disjoint
// state. The caller must add each chunk's row count once via AddRows.
func (g *Gram) AddPrepared(cols [][]float64, prep ChunkPrep, jlo, jhi int) {
	if g.k == 0 || jhi <= jlo {
		return
	}
	n := len(cols[0])
	for j := jlo; j < jhi; j++ {
		if j == 0 {
			continue
		}
		g.addColumnPairs(cols, prep.Sums, prep.HasNaN, j, n)
	}
}

// AddRows records a chunk's row count (used with AddPrepared, where no
// single range should count the chunk).
func (g *Gram) AddRows(n int) { g.rows += int64(n) }

func (g *Gram) addColumnPairs(cols [][]float64, sums []float64, hasNaN []bool, j, n int) {
	y := cols[j]
	base := j * (j - 1) / 2
	for i := 0; i < j; i++ {
		x := cols[i]
		p := base + i
		if !hasNaN[i] && !hasNaN[j] {
			var dot float64
			for r := 0; r < n; r++ {
				dot += x[r] * y[r]
			}
			g.sxy[p] += dot
			g.sx[p] += sums[i]
			g.sy[p] += sums[j]
			g.cnt[p] += int64(n)
			continue
		}
		var dot, sx, sy float64
		var cnt int64
		for r := 0; r < n; r++ {
			xv, yv := x[r], y[r]
			if math.IsNaN(xv) || math.IsNaN(yv) {
				continue
			}
			dot += xv * yv
			sx += xv
			sy += yv
			cnt++
		}
		g.sxy[p] += dot
		g.sx[p] += sx
		g.sy[p] += sy
		g.cnt[p] += cnt
	}
}

// Merge folds another accumulator (over the same k columns) into g.
func (g *Gram) Merge(o *Gram) {
	if o.k != g.k {
		panic("sketch: merge grams of different widths")
	}
	g.rows += o.rows
	for p := range g.sxy {
		g.sxy[p] += o.sxy[p]
		g.sx[p] += o.sx[p]
		g.sy[p] += o.sy[p]
		g.cnt[p] += o.cnt[p]
	}
}

// Dot returns the dot product of the standardised columns i and j given
// their marginal means and standard deviations (from Moments over the same
// data): Σ over jointly valid rows of (xᵢ−μᵢ)(xⱼ−μⱼ)/(σᵢσⱼ). The caller
// compares |Dot| against θ·Rows exactly as core's pearsonDedup does.
func (g *Gram) Dot(i, j int, meanI, stdI, meanJ, stdJ float64) float64 {
	if stdI == 0 || stdJ == 0 {
		return 0
	}
	p := g.pairIndex(i, j)
	if i > j {
		// sx belongs to the lower index, sy to the higher; the formula is
		// symmetric so only the pairing of mean-to-sum matters.
		meanI, meanJ = meanJ, meanI
		stdI, stdJ = stdJ, stdI
	}
	num := g.sxy[p] - meanJ*g.sx[p] - meanI*g.sy[p] + float64(g.cnt[p])*meanI*meanJ
	return num / (stdI * stdJ)
}
