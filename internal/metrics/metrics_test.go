package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAUCPerfect(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []float64{0, 0, 1, 1}
	if got := AUC(scores, labels); got != 1 {
		t.Errorf("perfect AUC = %v, want 1", got)
	}
}

func TestAUCInverted(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []float64{0, 0, 1, 1}
	if got := AUC(scores, labels); got != 0 {
		t.Errorf("inverted AUC = %v, want 0", got)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 via midranks.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []float64{0, 1, 0, 1}
	if got := AUC(scores, labels); got != 0.5 {
		t.Errorf("all-tied AUC = %v, want 0.5", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if got := AUC([]float64{0.3, 0.7}, []float64{1, 1}); got != 0.5 {
		t.Errorf("single-class AUC = %v, want 0.5", got)
	}
	if got := AUC(nil, nil); got != 0.5 {
		t.Errorf("empty AUC = %v, want 0.5", got)
	}
	if got := AUC([]float64{0.5}, []float64{1, 0}); got != 0.5 {
		t.Errorf("length-mismatch AUC = %v, want 0.5", got)
	}
}

func TestAUCRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		scores := make([]float64, n)
		labels := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = float64(rng.Intn(2))
		}
		a := AUC(scores, labels)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAUCComplementProperty(t *testing.T) {
	// AUC(s, y) + AUC(-s, y) == 1 for tie-free scores.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		scores := make([]float64, n)
		labels := make([]float64, n)
		pos := 0
		for i := range scores {
			scores[i] = rng.NormFloat64() // continuous, ties have measure zero
			labels[i] = float64(rng.Intn(2))
			if labels[i] == 1 {
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true
		}
		neg := make([]float64, n)
		for i := range scores {
			neg[i] = -scores[i]
		}
		return math.Abs(AUC(scores, labels)+AUC(neg, labels)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAUCMonotoneInvariantProperty(t *testing.T) {
	// AUC is invariant under strictly increasing transforms of scores.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		scores := make([]float64, n)
		labels := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = float64(rng.Intn(2))
		}
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(s) // strictly increasing
		}
		return math.Abs(AUC(scores, labels)-AUC(transformed, labels)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.6, 0.4}
	labels := []float64{1, 0, 0, 1}
	if got := Accuracy(scores, labels); got != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", got)
	}
	if got := Accuracy(nil, nil); got != 0 {
		t.Errorf("empty Accuracy = %v, want 0", got)
	}
}

func TestLogLoss(t *testing.T) {
	// Perfect confident predictions give near-zero loss.
	if got := LogLoss([]float64{1, 0}, []float64{1, 0}); got > 1e-10 {
		t.Errorf("perfect LogLoss = %v, want ~0", got)
	}
	// Uniform predictions give ln 2.
	if got := LogLoss([]float64{0.5, 0.5}, []float64{1, 0}); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("uniform LogLoss = %v, want ln 2", got)
	}
	// Confidently wrong is heavily penalised but finite (clipping).
	got := LogLoss([]float64{0}, []float64{1})
	if math.IsInf(got, 0) || got < 10 {
		t.Errorf("wrong LogLoss = %v, want large finite", got)
	}
}
