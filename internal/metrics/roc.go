package metrics

import "sort"

// ROCPoint is one operating point of a ROC curve.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // true-positive rate (recall)
	FPR       float64 // false-positive rate
}

// ROC computes the ROC curve at every distinct score threshold, descending.
// The first point is (inf, 0, 0)-like at the highest threshold; the last
// approaches (1,1). Degenerate inputs return nil.
func ROC(scores, labels []float64) []ROCPoint {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var pos, neg float64
	for _, y := range labels {
		if y > 0.5 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil
	}

	var out []ROCPoint
	var tp, fp float64
	for i := 0; i < n; {
		thr := scores[idx[i]]
		for i < n && scores[idx[i]] == thr {
			if labels[idx[i]] > 0.5 {
				tp++
			} else {
				fp++
			}
			i++
		}
		out = append(out, ROCPoint{Threshold: thr, TPR: tp / pos, FPR: fp / neg})
	}
	return out
}

// KS returns the Kolmogorov-Smirnov statistic max|TPR - FPR| — the standard
// discrimination metric in financial risk modelling (the paper's domain).
func KS(scores, labels []float64) float64 {
	best := 0.0
	for _, p := range ROC(scores, labels) {
		d := p.TPR - p.FPR
		if d < 0 {
			d = -d
		}
		if d > best {
			best = d
		}
	}
	return best
}

// PRAUC computes the area under the precision-recall curve by the
// trapezoidal rule over distinct thresholds. For heavily imbalanced fraud
// data this is often more informative than ROC AUC. Returns the positive
// rate (the random baseline) when either class is absent.
func PRAUC(scores, labels []float64) float64 {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var pos float64
	for _, y := range labels {
		if y > 0.5 {
			pos++
		}
	}
	if pos == 0 || pos == float64(n) {
		return pos / float64(n)
	}

	var tp, fp, area, prevRecall float64
	prevPrecision := 1.0
	for i := 0; i < n; {
		thr := scores[idx[i]]
		for i < n && scores[idx[i]] == thr {
			if labels[idx[i]] > 0.5 {
				tp++
			} else {
				fp++
			}
			i++
		}
		recall := tp / pos
		precision := tp / (tp + fp)
		area += (recall - prevRecall) * (precision + prevPrecision) / 2
		prevRecall = recall
		prevPrecision = precision
	}
	return area
}
