package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []float64{1, 1, 0, 0}
	pts := ROC(scores, labels)
	if len(pts) == 0 {
		t.Fatal("no ROC points")
	}
	// Somewhere on the curve TPR=1 with FPR=0.
	found := false
	for _, p := range pts {
		if p.TPR == 1 && p.FPR == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("perfect classifier curve misses (0,1): %+v", pts)
	}
	last := pts[len(pts)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Errorf("curve does not end at (1,1): %+v", last)
	}
}

func TestROCMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	scores := make([]float64, n)
	labels := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = float64(rng.Intn(2))
	}
	pts := ROC(scores, labels)
	for i := 1; i < len(pts); i++ {
		if pts[i].TPR < pts[i-1].TPR || pts[i].FPR < pts[i-1].FPR {
			t.Fatalf("ROC not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
		if pts[i].Threshold >= pts[i-1].Threshold {
			t.Fatalf("thresholds not descending at %d", i)
		}
	}
}

func TestROCDegenerate(t *testing.T) {
	if pts := ROC([]float64{0.5}, []float64{1}); pts != nil {
		t.Errorf("single-class ROC = %+v, want nil", pts)
	}
	if pts := ROC(nil, nil); pts != nil {
		t.Errorf("empty ROC = %+v, want nil", pts)
	}
}

func TestKSPerfectAndRandom(t *testing.T) {
	perfect := KS([]float64{0.9, 0.8, 0.2, 0.1}, []float64{1, 1, 0, 0})
	if perfect != 1 {
		t.Errorf("perfect KS = %v, want 1", perfect)
	}
	// All-tied scores: TPR always equals FPR -> KS 0.
	tied := KS([]float64{0.5, 0.5, 0.5, 0.5}, []float64{1, 0, 1, 0})
	if tied != 0 {
		t.Errorf("tied KS = %v, want 0", tied)
	}
}

func TestKSBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(100)
		scores := make([]float64, n)
		labels := make([]float64, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = float64(rng.Intn(2))
		}
		ks := KS(scores, labels)
		return ks >= 0 && ks <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPRAUCPerfect(t *testing.T) {
	got := PRAUC([]float64{0.9, 0.8, 0.2, 0.1}, []float64{1, 1, 0, 0})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect PR-AUC = %v, want 1", got)
	}
}

func TestPRAUCRandomBaseline(t *testing.T) {
	// For random scores PR-AUC approaches the positive rate.
	rng := rand.New(rand.NewSource(2))
	n := 20000
	scores := make([]float64, n)
	labels := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
		if rng.Float64() < 0.1 {
			labels[i] = 1
		}
	}
	got := PRAUC(scores, labels)
	if got < 0.05 || got > 0.2 {
		t.Errorf("random PR-AUC = %v, want near the 0.1 positive rate", got)
	}
}

func TestPRAUCImbalanceSensitivity(t *testing.T) {
	// A mediocre classifier on imbalanced data: PR-AUC must sit strictly
	// between the random baseline and 1.
	rng := rand.New(rand.NewSource(3))
	n := 5000
	scores := make([]float64, n)
	labels := make([]float64, n)
	for i := range scores {
		if rng.Float64() < 0.05 {
			labels[i] = 1
			scores[i] = rng.Float64()*0.6 + 0.4
		} else {
			scores[i] = rng.Float64() * 0.8
		}
	}
	pr := PRAUC(scores, labels)
	if pr <= 0.06 || pr >= 0.999 {
		t.Errorf("PR-AUC = %v, want strictly informative", pr)
	}
}

func TestPRAUCDegenerate(t *testing.T) {
	if got := PRAUC([]float64{0.5, 0.6}, []float64{1, 1}); got != 1 {
		t.Errorf("all-positive PR-AUC = %v, want 1", got)
	}
	if got := PRAUC([]float64{0.5, 0.6}, []float64{0, 0}); got != 0 {
		t.Errorf("all-negative PR-AUC = %v, want 0", got)
	}
	if got := PRAUC(nil, nil); got != 0 {
		t.Errorf("empty PR-AUC = %v, want 0", got)
	}
}

func TestKSVsAUCConsistencyProperty(t *testing.T) {
	// A classifier with AUC 0.5 on tie-free scores should have small KS;
	// perfect AUC implies KS 1. Weaker invariant: KS <= 2*AUC for AUC>=0.5
	// (sanity relation, always true since KS<=1 and AUC>=0.5).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		scores := make([]float64, n)
		labels := make([]float64, n)
		hasPos, hasNeg := false, false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = float64(rng.Intn(2))
			if labels[i] == 1 {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		auc := AUC(scores, labels)
		folded := math.Abs(auc-0.5) + 0.5
		return KS(scores, labels) <= 2*folded
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
