// Package metrics implements the evaluation metrics used in the paper's
// experiments: AUC (the headline metric of Tables III and VIII), accuracy
// and log-loss.
package metrics

import (
	"math"
	"sort"
)

// AUC computes the area under the ROC curve from predicted scores and binary
// labels, using the rank statistic (Mann-Whitney U) with midrank handling of
// ties. It returns 0.5 when either class is absent.
func AUC(scores, labels []float64) float64 {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return 0.5
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	var pos, neg float64
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j+1) / 2 // average 1-based rank of the tie group
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		i = j
	}
	sumPos := 0.0
	for i := 0; i < n; i++ {
		if labels[i] > 0.5 {
			pos++
			sumPos += ranks[i]
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return (sumPos - pos*(pos+1)/2) / (pos * neg)
}

// Accuracy returns the fraction of predictions on the correct side of 0.5.
func Accuracy(scores, labels []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	ok := 0
	for i, s := range scores {
		pred := 0.0
		if s >= 0.5 {
			pred = 1
		}
		if (pred > 0.5) == (labels[i] > 0.5) {
			ok++
		}
	}
	return float64(ok) / float64(len(scores))
}

// ClassAccuracy returns the exact-match accuracy of predicted class indices
// against class-index labels (both rounded to the nearest integer), the
// multiclass counterpart of Accuracy.
func ClassAccuracy(pred, labels []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	ok := 0
	for i, p := range pred {
		if math.Round(p) == math.Round(labels[i]) {
			ok++
		}
	}
	return float64(ok) / float64(len(pred))
}

// RMSE returns the root mean squared error of predictions against a
// continuous target.
func RMSE(pred, target []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		d := p - target[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// LogLoss returns the mean negative log-likelihood of the predictions,
// clipping probabilities to [eps, 1-eps].
func LogLoss(scores, labels []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	const eps = 1e-12
	s := 0.0
	for i, p := range scores {
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		if labels[i] > 0.5 {
			s -= math.Log(p)
		} else {
			s -= math.Log(1 - p)
		}
	}
	return s / float64(len(scores))
}
