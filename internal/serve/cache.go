package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/frame"
)

// cached is one materialised result: the engineered features (and model
// score, when computed) for a raw row. The raw row is kept so a 64-bit hash
// collision degrades to a miss instead of serving another entity's features.
type cached struct {
	key      uint64
	row      []float64
	features []float64
	score    float64
	hasScore bool
}

// FeatureCache is an LRU cache of engineered feature vectors keyed by
// pipeline identity and raw-row hash. Risk-scoring traffic is heavily
// skewed — the same entity is scored many times in a burst — so caching the
// transform output skips the whole Ψ evaluation for repeated rows.
type FeatureCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[uint64]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewFeatureCache returns an LRU cache holding up to capacity rows.
// Capacity <= 0 returns nil, which every method treats as a disabled cache.
func NewFeatureCache(capacity int) *FeatureCache {
	if capacity <= 0 {
		return nil
	}
	return &FeatureCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[uint64]*list.Element, capacity),
	}
}

// cacheKey derives the cache key for a raw row scored by entry e. The
// pipeline name and version prefix the hash so the same row scored by two
// versions occupies two slots; each string is length-suffixed so distinct
// (name, version) pairs never chain to the same byte sequence.
func cacheKey(e *Entry, row []float64) uint64 {
	h := frame.HashString(frame.HashSeed(), e.Name)
	h = frame.HashUint64(h, uint64(len(e.Name)))
	h = frame.HashString(h, e.Version)
	h = frame.HashUint64(h, uint64(len(e.Version)))
	return frame.HashFloats(h, row)
}

// Get returns the cached result for (key, row), verifying the stored row to
// rule out hash collisions. The returned cached value and its slices must be
// treated as immutable.
func (c *FeatureCache) Get(key uint64, row []float64) (*cached, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	var ent *cached
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		// Read the value while still holding the lock: Put may replace
		// el.Value concurrently.
		ent = el.Value.(*cached)
	}
	c.mu.Unlock()
	if ent == nil {
		c.misses.Add(1)
		return nil, false
	}
	if !frame.RowsEqual(ent.row, row) {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return ent, true
}

// Put stores a result, copying both slices: row so callers may reuse their
// buffers, features so a cached entry does not pin the whole batch's backing
// array (TransformBatch returns rows as views into one flat allocation).
func (c *FeatureCache) Put(key uint64, row, features []float64, score *float64) {
	if c == nil {
		return
	}
	ent := &cached{
		key:      key,
		row:      append([]float64(nil), row...),
		features: append([]float64(nil), features...),
	}
	if score != nil {
		ent.score, ent.hasScore = *score, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = ent
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(ent)
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cached).key)
	}
}

// CacheStats is the cache section of the /stats response.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
}

// Stats returns current hit/miss counters and occupancy.
func (c *FeatureCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	size := c.ll.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Size:     size,
		Capacity: c.capacity,
	}
}
