// Package serve is the online serving layer of the SAFE reproduction — the
// deployment story of Section IV-E3 at production shape. SAFE engineers
// features offline; this package applies the saved artefacts to live
// risk-scoring traffic.
//
// The pieces compose as follows:
//
//   - Registry holds multiple named, versioned fitted pipelines (each an
//     immutable Entry pairing a core.Pipeline with an optional gbdt.Model).
//     The active version of each name is an atomic pointer, so Activate
//     hot-swaps a version under load without dropping or blocking requests.
//     LoadDir populates the registry from a model directory
//     (dir/<name>/<version>/pipeline.json [+ model.json]).
//
//   - Server exposes the registry over HTTP. POST /transform and
//     POST /predict are batched: the whole request batch is evaluated in one
//     columnar pass via core.Pipeline.TransformBatch, amortising per-row
//     dispatch. POST /score keeps the original single-row contract.
//     Predictions follow the pipeline's task (core.Task): scalar scores for
//     binary probabilities and regression values, plus per-row
//     class-probability vectors for multiclass pipelines; registration
//     rejects task/model mismatches so a version's shape is fixed.
//     GET /pipelines, /schema, /stats and /healthz cover introspection and
//     operations; POST /admin/activate hot-swaps versions remotely.
//
//   - FeatureCache is an LRU of engineered feature vectors keyed by a
//     frame.HashString/HashFloats chain over the pipeline identity and the
//     raw row, so repeatedly-scored entities skip Ψ entirely. Hash
//     collisions are verified against the stored row and degrade to misses.
//
//   - Metrics tracks request/row/error counters and a sliding window of
//     latencies, surfaced as quantiles on GET /stats.
//
// cmd/safe-serve wires this package to the command line; docs/serving.md
// documents the HTTP API.
package serve
