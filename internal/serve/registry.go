package serve

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/gbdt"
)

// Entry is one immutable registered artefact: a fitted pipeline Ψ under a
// (name, version) key, with an optional downstream GBDT model trained on Ψ's
// output. Entries are never mutated after registration, so readers obtained
// via Get can use them lock-free for the lifetime of a request.
type Entry struct {
	Name     string
	Version  string
	Pipeline *core.Pipeline
	Model    *gbdt.Model
}

// group holds every version of one named pipeline. The active version is an
// atomic pointer so the request hot path never takes the write lock: Activate
// swaps the pointer and in-flight requests keep the entry they already
// resolved — a hot swap drops no requests.
type group struct {
	active atomic.Pointer[Entry]

	mu       sync.Mutex
	versions map[string]*Entry
	order    []string // registration order, for stable listings
}

// Registry is a concurrent store of named, versioned pipelines. It supports
// multiple models served side by side (e.g. a champion and a challenger),
// explicit version pinning per request, and atomic activation of a new
// version under load.
type Registry struct {
	mu     sync.RWMutex
	groups map[string]*group
	names  []string // registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{groups: make(map[string]*group)}
}

// validateEntry checks the pipeline/model pairing that every registration
// path must satisfy.
func validateEntry(name, version string, p *core.Pipeline, m *gbdt.Model) error {
	if name == "" || version == "" {
		return fmt.Errorf("serve: pipeline name and version must be non-empty")
	}
	if p == nil {
		return fmt.Errorf("serve: nil pipeline for %s@%s", name, version)
	}
	if m == nil {
		return nil
	}
	if m.NumFeat != p.NumFeatures() {
		return fmt.Errorf("serve: %s@%s: model expects %d features, pipeline emits %d",
			name, version, m.NumFeat, p.NumFeatures())
	}
	// The model's objective must fit the pipeline's task, or /predict would
	// emit the wrong prediction shape. A binary pipeline accepts Logistic
	// and Squared models (raw-score scoring predates the task field).
	switch p.Task.Kind {
	case core.TaskMulticlass:
		if m.Config.Objective != gbdt.Softmax || m.Config.NumClass != p.Task.Classes {
			return fmt.Errorf("serve: %s@%s: %s pipeline needs a softmax model with %d classes",
				name, version, p.Task, p.Task.Classes)
		}
	case core.TaskRegression:
		if m.Config.Objective != gbdt.Squared {
			return fmt.Errorf("serve: %s@%s: %s pipeline needs a squared-error model", name, version, p.Task)
		}
	default:
		if m.Config.Objective == gbdt.Softmax {
			return fmt.Errorf("serve: %s@%s: softmax model attached to a %s pipeline", name, version, p.Task)
		}
	}
	return nil
}

// Register adds a pipeline version. The first version registered under a
// name becomes active; later versions are servable by explicit version pin
// until Activate promotes them. Registering a (name, version) pair twice is
// an error — versions are immutable, publish a new version instead.
func (r *Registry) Register(name, version string, p *core.Pipeline, m *gbdt.Model) error {
	if err := validateEntry(name, version, p, m); err != nil {
		return err
	}
	e := &Entry{Name: name, Version: version, Pipeline: p, Model: m}

	r.mu.Lock()
	g, ok := r.groups[name]
	if !ok {
		g = &group{versions: make(map[string]*Entry)}
		r.groups[name] = g
		r.names = append(r.names, name)
	}
	r.mu.Unlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.versions[version]; dup {
		return fmt.Errorf("serve: %s@%s already registered", name, version)
	}
	g.versions[version] = e
	g.order = append(g.order, version)
	if g.active.Load() == nil {
		g.active.Store(e)
	}
	return nil
}

// Activate atomically promotes an already-registered version to active for
// its name. Requests that resolved the previous entry finish on it; new
// requests see the promoted version — no request observes a half-swapped
// state and none fail during the swap.
func (r *Registry) Activate(name, version string) error {
	g, resolved, err := r.group(name)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.versions[version]
	if !ok {
		return fmt.Errorf("serve: unknown version %s@%s", resolved, version)
	}
	g.active.Store(e)
	return nil
}

// group resolves a name to its version group, also returning the resolved
// name so callers can report it when the caller-supplied name was empty.
func (r *Registry) group(name string) (*group, string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.names) == 1 {
			return r.groups[r.names[0]], r.names[0], nil
		}
		return nil, "", fmt.Errorf("serve: pipeline name required (%d pipelines registered)", len(r.names))
	}
	g, ok := r.groups[name]
	if !ok {
		return nil, "", fmt.Errorf("serve: unknown pipeline %q", name)
	}
	return g, name, nil
}

// Get resolves a servable entry. An empty name is allowed when exactly one
// pipeline is registered; an empty version resolves the active one. The hot
// path for the common case (active version) is a read-lock map hit plus one
// atomic load.
func (r *Registry) Get(name, version string) (*Entry, error) {
	g, resolved, err := r.group(name)
	if err != nil {
		return nil, err
	}
	if version == "" {
		if e := g.active.Load(); e != nil {
			return e, nil
		}
		return nil, fmt.Errorf("serve: pipeline %q has no active version", resolved)
	}
	g.mu.Lock()
	e, ok := g.versions[version]
	g.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown version %s@%s", resolved, version)
	}
	return e, nil
}

// Names returns the registered pipeline names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// PipelineInfo describes one registered pipeline for the /pipelines listing.
type PipelineInfo struct {
	Name     string   `json:"name"`
	Versions []string `json:"versions"`
	Active   string   `json:"active"`
	Task     string   `json:"task,omitempty"`
	Inputs   int      `json:"inputs"`
	Outputs  int      `json:"outputs"`
	HasModel bool     `json:"has_model"`
}

// Snapshot returns a consistent listing of every pipeline and its versions.
func (r *Registry) Snapshot() []PipelineInfo {
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	groups := make([]*group, len(names))
	for i, n := range names {
		groups[i] = r.groups[n]
	}
	r.mu.RUnlock()

	out := make([]PipelineInfo, 0, len(names))
	for i, g := range groups {
		g.mu.Lock()
		info := PipelineInfo{Name: names[i], Versions: append([]string(nil), g.order...)}
		g.mu.Unlock()
		if e := g.active.Load(); e != nil {
			info.Active = e.Version
			info.Task = e.Pipeline.Task.String()
			info.Inputs = len(e.Pipeline.OriginalNames)
			info.Outputs = e.Pipeline.NumFeatures()
			info.HasModel = e.Model != nil
		}
		out = append(out, info)
	}
	return out
}

// LoadDir populates the registry from a model directory with the layout
//
//	dir/<name>/<version>/pipeline.json   (required)
//	dir/<name>/<version>/model.json      (optional GBDT model)
//
// Versions are registered in lexical order and the lexically greatest
// version of each name is activated, so `v1 < v2 < v10` directories should
// use zero-padded or date-stamped versions. Returns the number of entries
// registered.
func (r *Registry) LoadDir(dir string) (int, error) {
	return r.LoadDirContext(context.Background(), dir)
}

// LoadDirContext is LoadDir with cooperative cancellation: the warm load
// checks ctx before each version, so a shutdown signal during a large
// model-directory load aborts promptly with ctx.Err() instead of parsing
// every remaining artefact first. Entries already registered stay
// registered (the returned count says how many).
func (r *Registry) LoadDirContext(ctx context.Context, dir string) (int, error) {
	names, err := sortedSubdirs(dir)
	if err != nil {
		return 0, fmt.Errorf("serve: load dir: %w", err)
	}
	loaded := 0
	for _, name := range names {
		versions, err := sortedSubdirs(filepath.Join(dir, name))
		if err != nil {
			return loaded, fmt.Errorf("serve: load dir: %w", err)
		}
		if len(versions) == 0 {
			continue
		}
		for _, version := range versions {
			if err := ctx.Err(); err != nil {
				return loaded, err
			}
			vdir := filepath.Join(dir, name, version)
			p, err := core.LoadPipelineFile(filepath.Join(vdir, "pipeline.json"))
			if err != nil {
				return loaded, fmt.Errorf("serve: load %s@%s: %w", name, version, err)
			}
			var m *gbdt.Model
			modelPath := filepath.Join(vdir, "model.json")
			switch _, err := os.Stat(modelPath); {
			case err == nil:
				if m, err = gbdt.LoadFile(modelPath); err != nil {
					return loaded, fmt.Errorf("serve: load %s@%s: %w", name, version, err)
				}
			case !errors.Is(err, fs.ErrNotExist):
				// A present-but-unreadable model must fail at load time, not
				// surface later as a model-less version rejecting /predict.
				return loaded, fmt.Errorf("serve: load %s@%s: %w", name, version, err)
			}
			if err := r.Register(name, version, p, m); err != nil {
				return loaded, err
			}
			loaded++
		}
		if err := r.Activate(name, versions[len(versions)-1]); err != nil {
			return loaded, err
		}
	}
	return loaded, nil
}

func sortedSubdirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
