package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gbdt"
)

// taskArtifacts fits a small task-aware pipeline + downstream model.
func taskArtifacts(t *testing.T, task core.Task, target datagen.TargetKind, classes int) (*core.Pipeline, *gbdt.Model, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "serve-task-test", Train: 1200, Test: 200, Dim: 6,
		Interactions: 2, SignalScale: 2.5, Seed: 17,
		Target: target, Classes: classes,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Task = task
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.Transform(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([][]float64, tr.NumCols())
	for j := range cols {
		cols[j] = tr.Columns[j].Values
	}
	mcfg := gbdt.DefaultConfig()
	mcfg.NumTrees = 10
	task.ApplyObjective(&mcfg)
	m, err := gbdt.Train(cols, tr.Label, tr.Names(), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, m, ds
}

// TestPredictMulticlassProbs: /predict on a multiclass pipeline returns one
// probability vector per row plus the argmax class as the scalar score —
// with and without the feature cache on the hit path.
func TestPredictMulticlassProbs(t *testing.T) {
	p, m, ds := taskArtifacts(t, core.MulticlassTask(3), datagen.TargetMulticlass, 3)
	reg := NewRegistry()
	if err := reg.Register("mc", "v1", p, m); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(reg, Options{CacheSize: 64}))
	defer srv.Close()

	rows := make([][]float64, 8)
	for i := range rows {
		rows[i] = ds.Test.Row(i, nil)
	}
	for pass := 0; pass < 2; pass++ { // second pass hits the feature cache
		var out BatchResponse
		resp := postJSON(t, srv.URL+"/predict", BatchRequest{Rows: rows})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pass %d: status %d", pass, resp.StatusCode)
		}
		decode(t, resp, &out)
		if len(out.Scores) != len(rows) || len(out.Probs) != len(rows) {
			t.Fatalf("pass %d: %d scores, %d probs for %d rows", pass, len(out.Scores), len(out.Probs), len(rows))
		}
		for i, probs := range out.Probs {
			if len(probs) != 3 {
				t.Fatalf("row %d: %d probabilities", i, len(probs))
			}
			sum, best := 0.0, 0
			for c, pr := range probs {
				sum += pr
				if pr > probs[best] {
					best = c
				}
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("row %d: probabilities sum to %g", i, sum)
			}
			if out.Scores[i] != float64(best) {
				t.Fatalf("row %d: score %g is not the argmax class %d", i, out.Scores[i], best)
			}
		}
	}

	// Single-row /score carries the vector too.
	var sc ScoreResponse
	resp := postJSON(t, srv.URL+"/score", ScoreRequest{Row: rows[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/score status %d", resp.StatusCode)
	}
	decode(t, resp, &sc)
	if len(sc.Probs) != 3 || sc.Score == nil {
		t.Fatalf("/score: probs %v score %v", sc.Probs, sc.Score)
	}

	// Schema reports the task.
	var schema struct {
		Task string `json:"task"`
	}
	sresp, err := http.Get(srv.URL + "/schema?pipeline=mc")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, sresp, &schema)
	if schema.Task != "multiclass:3" {
		t.Fatalf("schema task %q", schema.Task)
	}
}

// TestPredictRegressionScalar: /predict on a regression pipeline returns raw
// scalar predictions and no probability vectors.
func TestPredictRegressionScalar(t *testing.T) {
	p, m, ds := taskArtifacts(t, core.RegressionTask(), datagen.TargetRegression, 0)
	reg := NewRegistry()
	if err := reg.Register("reg", "v1", p, m); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(reg, Options{}))
	defer srv.Close()

	rows := [][]float64{ds.Test.Row(0, nil), ds.Test.Row(1, nil)}
	var out BatchResponse
	resp := postJSON(t, srv.URL+"/predict", BatchRequest{Rows: rows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	decode(t, resp, &out)
	if len(out.Scores) != 2 || out.Probs != nil {
		t.Fatalf("scores %v probs %v", out.Scores, out.Probs)
	}
	// Raw regression output is not clamped to [0,1]; verify it matches the
	// model directly.
	feats, err := p.TransformBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if want := m.PredictRow(feats[i]); out.Scores[i] != want {
			t.Fatalf("row %d: score %g, model says %g", i, out.Scores[i], want)
		}
	}
}

// TestLoadDirTaskRoundTrip: tasks survive the model-directory round trip
// through pipeline.json + model.json.
func TestLoadDirTaskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, m, _ := taskArtifacts(t, core.MulticlassTask(3), datagen.TargetMulticlass, 3)
	vdir := filepath.Join(dir, "mc", "v1")
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.SaveFile(filepath.Join(vdir, "pipeline.json")); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveFile(filepath.Join(vdir, "model.json")); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	n, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d entries", n)
	}
	e, err := reg.Get("mc", "")
	if err != nil {
		t.Fatal(err)
	}
	if e.Pipeline.Task != core.MulticlassTask(3) {
		t.Fatalf("loaded task %v", e.Pipeline.Task)
	}
	if e.Model.NumGroups() != 3 {
		t.Fatalf("loaded model groups %d", e.Model.NumGroups())
	}
	infos := reg.Snapshot()
	if len(infos) != 1 || infos[0].Task != "multiclass:3" {
		t.Fatalf("snapshot task: %+v", infos)
	}
}

// TestRegisterTaskModelMismatch: task/model pairings that would emit the
// wrong prediction shape are rejected at registration time.
func TestRegisterTaskModelMismatch(t *testing.T) {
	pMC, mMC, _ := taskArtifacts(t, core.MulticlassTask(3), datagen.TargetMulticlass, 3)
	pReg, mReg, _ := taskArtifacts(t, core.RegressionTask(), datagen.TargetRegression, 0)

	reg := NewRegistry()
	if err := reg.Register("x", "v1", pMC, mReg); err == nil {
		t.Error("multiclass pipeline accepted a squared-error model")
	}
	if err := reg.Register("x", "v1", pReg, mMC); err == nil {
		t.Error("regression pipeline accepted a softmax model")
	}
	binary := &core.Pipeline{OriginalNames: pMC.OriginalNames, Nodes: pMC.Nodes, Output: pMC.Output}
	if err := reg.Register("x", "v1", binary, mMC); err == nil {
		t.Error("binary pipeline accepted a softmax model")
	}
	// Matching pairs register fine.
	if err := reg.Register("mc", "v1", pMC, mMC); err != nil {
		t.Errorf("matching multiclass pair rejected: %v", err)
	}
	if err := reg.Register("reg", "v1", pReg, mReg); err != nil {
		t.Errorf("matching regression pair rejected: %v", err)
	}
}
