package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRegistryConcurrentSwap hammers Get/Activate/Snapshot/Register from
// many goroutines. Run with -race; the invariant is that every Get returns
// a fully-formed entry of the expected pipeline.
func TestRegistryConcurrentSwap(t *testing.T) {
	f := artifacts(t)
	reg := NewRegistry()
	if err := reg.Register("risk", "v1", f.p1, f.m1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("risk", "v2", f.p2, f.m2); err != nil {
		t.Fatal(err)
	}

	const iters = 500
	var wg sync.WaitGroup
	var failures atomic.Uint64

	// Readers resolving the active version.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				e, err := reg.Get("risk", "")
				if err != nil || e == nil || e.Pipeline == nil || e.Model == nil {
					failures.Add(1)
					continue
				}
				if e.Model.NumFeat != e.Pipeline.NumFeatures() {
					failures.Add(1) // torn entry: model paired with wrong pipeline
				}
			}
		}()
	}
	// Swapper flipping the active version.
	wg.Add(1)
	go func() {
		defer wg.Done()
		versions := []string{"v1", "v2"}
		for i := 0; i < iters; i++ {
			if err := reg.Activate("risk", versions[i%2]); err != nil {
				failures.Add(1)
			}
		}
	}()
	// Writer registering new names while readers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			name := fmt.Sprintf("side-%d", i)
			if err := reg.Register(name, "v1", f.p1, nil); err != nil {
				failures.Add(1)
			}
		}
	}()
	// Listing concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			for _, info := range reg.Snapshot() {
				if info.Name == "" {
					failures.Add(1)
				}
			}
		}
	}()
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failures under concurrent swap", n)
	}
	if got := len(reg.Names()); got != 51 {
		t.Errorf("registry holds %d names, want 51", got)
	}
}

// TestHotSwapUnderLoad drives batched /predict traffic from several clients
// while the active version is flipped continuously. No request may fail, and
// every response must be internally consistent with the version it reports.
func TestHotSwapUnderLoad(t *testing.T) {
	f := artifacts(t)
	s, srv := newTestServer(t, Options{CacheSize: 256})

	widths := map[string]int{"v1": f.p1.NumFeatures(), "v2": f.p2.NumFeatures()}
	const clients = 6
	const perClient = 40
	rows := testRows(f, 8)

	var clientsWG, swapWG sync.WaitGroup
	var failed atomic.Uint64
	stop := make(chan struct{})

	// Continuous hot-swapping in the background until the clients finish.
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		versions := []string{"v2", "v1"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Registry().Activate("risk", versions[i%2]); err != nil {
				failed.Add(1)
			}
		}
	}()

	for c := 0; c < clients; c++ {
		clientsWG.Add(1)
		go func() {
			defer clientsWG.Done()
			for i := 0; i < perClient; i++ {
				resp := postJSON(t, srv.URL+"/predict", BatchRequest{Rows: rows, ReturnFeatures: true})
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
					resp.Body.Close()
					continue
				}
				var out BatchResponse
				decode(t, resp, &out)
				// The response must be wholly from one version: width of
				// every feature row matches the reported version.
				want, ok := widths[out.Version]
				if !ok || len(out.Scores) != len(rows) {
					failed.Add(1)
					continue
				}
				for _, feats := range out.Features {
					if len(feats) != want {
						failed.Add(1)
						break
					}
				}
			}
		}()
	}

	clientsWG.Wait()
	close(stop)
	swapWG.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d failed or inconsistent requests during hot swap", n)
	}
}

// TestSwapKeepsInFlightEntry pins the semantics Activate promises: an entry
// resolved before a swap stays fully usable afterwards.
func TestSwapKeepsInFlightEntry(t *testing.T) {
	f := artifacts(t)
	reg := NewRegistry()
	if err := reg.Register("risk", "v1", f.p1, f.m1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("risk", "v2", f.p2, f.m2); err != nil {
		t.Fatal(err)
	}
	e, err := reg.Get("risk", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Activate("risk", "v2"); err != nil {
		t.Fatal(err)
	}
	// The old entry still transforms and scores.
	row := f.ds.Test.Row(0, nil)
	feats, err := e.Pipeline.TransformRow(row)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != f.p1.NumFeatures() {
		t.Errorf("in-flight entry width %d, want %d", len(feats), f.p1.NumFeatures())
	}
	_ = e.Model.PredictRow(feats)

	now, err := reg.Get("risk", "")
	if err != nil {
		t.Fatal(err)
	}
	if now.Version != "v2" {
		t.Errorf("active after swap = %s, want v2", now.Version)
	}
}

func BenchmarkRegistryGet(b *testing.B) {
	f := artifactsBench(b)
	reg := NewRegistry()
	if err := reg.Register("risk", "v1", f.p1, f.m1); err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := reg.Get("risk", ""); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// artifactsBench adapts the shared fixture for benchmarks.
func artifactsBench(b *testing.B) fixture {
	b.Helper()
	buildFixture()
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}
