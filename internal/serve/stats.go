package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow is how many recent request latencies are retained for
// quantile estimation. A power of two keeps the ring index cheap.
const latencyWindow = 2048

// Metrics aggregates request counters and a sliding window of latencies.
// Counters are lock-free atomics; the latency ring takes a short mutex per
// request, which is negligible next to a pipeline transform.
type Metrics struct {
	start    time.Time
	requests atomic.Uint64
	errors   atomic.Uint64
	rows     atomic.Uint64

	mu    sync.Mutex
	ring  [latencyWindow]time.Duration
	count uint64 // total observations; ring holds the last min(count, window)
}

// NewMetrics returns a metrics collector with the clock started.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// Observe records one finished request: its wall latency, how many rows it
// served, and whether it failed. Failed requests count toward errors only —
// their rows were not served and their latency is not representative.
func (m *Metrics) Observe(d time.Duration, rows int, failed bool) {
	m.requests.Add(1)
	if failed {
		m.errors.Add(1)
		return
	}
	if rows > 0 {
		m.rows.Add(uint64(rows))
	}
	m.mu.Lock()
	m.ring[m.count%latencyWindow] = d
	m.count++
	m.mu.Unlock()
}

// LatencyStats summarises the recent latency distribution in microseconds.
type LatencyStats struct {
	P50us   float64 `json:"p50_us"`
	P90us   float64 `json:"p90_us"`
	P99us   float64 `json:"p99_us"`
	Samples int     `json:"samples"`
}

// Latency computes quantiles over the retained window of successful
// requests.
func (m *Metrics) Latency() LatencyStats {
	m.mu.Lock()
	n := int(m.count)
	if n > latencyWindow {
		n = latencyWindow
	}
	buf := make([]time.Duration, n)
	copy(buf, m.ring[:n])
	m.mu.Unlock()
	if n == 0 {
		return LatencyStats{}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	q := func(p float64) float64 {
		i := int(p * float64(n-1))
		return float64(buf[i]) / float64(time.Microsecond)
	}
	return LatencyStats{P50us: q(0.50), P90us: q(0.90), P99us: q(0.99), Samples: n}
}

// StatsResponse is the JSON body of GET /stats.
type StatsResponse struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Requests      uint64         `json:"requests"`
	Errors        uint64         `json:"errors"`
	Rows          uint64         `json:"rows"`
	Latency       LatencyStats   `json:"latency"`
	Cache         CacheStats     `json:"cache"`
	Pipelines     []PipelineInfo `json:"pipelines"`
}

// snapshot assembles the full stats payload.
func (m *Metrics) snapshot(cache *FeatureCache, reg *Registry) StatsResponse {
	return StatsResponse{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      m.requests.Load(),
		Errors:        m.errors.Load(),
		Rows:          m.rows.Load(),
		Latency:       m.Latency(),
		Cache:         cache.Stats(),
		Pipelines:     reg.Snapshot(),
	}
}
