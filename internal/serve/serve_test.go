package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gbdt"
)

// fixture is the shared fitted artefact set: two versions of one pipeline
// (v2 emits one fewer output column, so responses are distinguishable), a
// GBDT model per version, and the dataset. Fitting is expensive, so it runs
// once per test binary.
type fixture struct {
	p1, p2 *core.Pipeline
	m1, m2 *gbdt.Model
	ds     *datagen.Dataset
}

var (
	fixOnce sync.Once
	fix     fixture
	fixErr  error
)

func buildFixture() {
	fixOnce.Do(func() {
		ds, err := datagen.Generate(datagen.Spec{
			Name: "serve-test", Train: 2000, Test: 400, Dim: 8,
			Interactions: 3, SignalScale: 2.5, Seed: 61,
		})
		if err != nil {
			fixErr = err
			return
		}
		eng, err := core.New(core.DefaultConfig())
		if err != nil {
			fixErr = err
			return
		}
		p1, _, err := eng.Fit(ds.Train)
		if err != nil {
			fixErr = err
			return
		}
		if p1.NumFeatures() < 2 {
			fixErr = fmt.Errorf("fixture pipeline too narrow: %d outputs", p1.NumFeatures())
			return
		}
		p2 := &core.Pipeline{
			OriginalNames: p1.OriginalNames,
			Nodes:         p1.Nodes,
			Output:        p1.Output[:p1.NumFeatures()-1],
		}
		trainModel := func(p *core.Pipeline) (*gbdt.Model, error) {
			tr, err := p.Transform(ds.Train)
			if err != nil {
				return nil, err
			}
			cols := make([][]float64, tr.NumCols())
			for j := range cols {
				cols[j] = tr.Columns[j].Values
			}
			cfg := gbdt.DefaultConfig()
			cfg.NumTrees = 20
			return gbdt.Train(cols, tr.Label, tr.Names(), cfg)
		}
		m1, err := trainModel(p1)
		if err != nil {
			fixErr = err
			return
		}
		m2, err := trainModel(p2)
		if err != nil {
			fixErr = err
			return
		}
		fix = fixture{p1: p1, p2: p2, m1: m1, m2: m2, ds: ds}
	})
}

func artifacts(t *testing.T) fixture {
	t.Helper()
	buildFixture()
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

// newTestServer registers both versions under name "risk" (v1 active) and
// returns the server plus an httptest wrapper.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	f := artifacts(t)
	reg := NewRegistry()
	if err := reg.Register("risk", "v1", f.p1, f.m1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("risk", "v2", f.p2, f.m2); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, opts)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode(t *testing.T, resp *http.Response, out interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func testRows(f fixture, n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = f.ds.Test.Row(i%f.ds.Test.NumRows(), nil)
	}
	return rows
}

func TestBatchTransformMatchesRowAtATime(t *testing.T) {
	f := artifacts(t)
	_, srv := newTestServer(t, Options{})

	rows := testRows(f, 32)
	resp := postJSON(t, srv.URL+"/transform", BatchRequest{Rows: rows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out BatchResponse
	decode(t, resp, &out)
	if out.Pipeline != "risk" || out.Version != "v1" {
		t.Errorf("resolved %s@%s, want risk@v1", out.Pipeline, out.Version)
	}
	if len(out.Features) != len(rows) {
		t.Fatalf("got %d feature rows, want %d", len(out.Features), len(rows))
	}
	for i, row := range rows {
		want, err := f.p1.TransformRow(row)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Float64bits(out.Features[i][j]) != math.Float64bits(want[j]) {
				t.Fatalf("row %d feature %d: batched %v != row-at-a-time %v",
					i, j, out.Features[i][j], want[j])
			}
		}
	}
}

func TestBatchPredict(t *testing.T) {
	f := artifacts(t)
	_, srv := newTestServer(t, Options{})

	rows := testRows(f, 16)
	resp := postJSON(t, srv.URL+"/predict", BatchRequest{Rows: rows, ReturnFeatures: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out BatchResponse
	decode(t, resp, &out)
	if len(out.Scores) != len(rows) || len(out.Features) != len(rows) {
		t.Fatalf("got %d scores / %d features, want %d", len(out.Scores), len(out.Features), len(rows))
	}
	for i, row := range rows {
		feats, err := f.p1.TransformRow(row)
		if err != nil {
			t.Fatal(err)
		}
		want := f.m1.PredictRow(feats)
		if out.Scores[i] != want {
			t.Fatalf("row %d: score %v, want %v", i, out.Scores[i], want)
		}
		if out.Scores[i] < 0 || out.Scores[i] > 1 {
			t.Fatalf("row %d: score %v not a probability", i, out.Scores[i])
		}
	}
}

func TestVersionPinAndHotSwap(t *testing.T) {
	f := artifacts(t)
	_, srv := newTestServer(t, Options{})
	rows := testRows(f, 4)

	width := func(req BatchRequest) (string, int) {
		resp := postJSON(t, srv.URL+"/transform", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out BatchResponse
		decode(t, resp, &out)
		return out.Version, len(out.Features[0])
	}

	if v, w := width(BatchRequest{Rows: rows}); v != "v1" || w != f.p1.NumFeatures() {
		t.Errorf("default resolved %s width %d, want v1 width %d", v, w, f.p1.NumFeatures())
	}
	if v, w := width(BatchRequest{Rows: rows, Version: "v2"}); v != "v2" || w != f.p2.NumFeatures() {
		t.Errorf("pinned v2 resolved %s width %d, want v2 width %d", v, w, f.p2.NumFeatures())
	}

	// Hot-swap via the admin endpoint, then the default must move to v2
	// while an explicit v1 pin still works.
	resp := postJSON(t, srv.URL+"/admin/activate", map[string]string{"pipeline": "risk", "version": "v2"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("activate status %d", resp.StatusCode)
	}
	if v, _ := width(BatchRequest{Rows: rows}); v != "v2" {
		t.Errorf("after activate, default resolved %s, want v2", v)
	}
	if v, _ := width(BatchRequest{Rows: rows, Version: "v1"}); v != "v1" {
		t.Errorf("after activate, pinned v1 resolved %s", v)
	}
}

func TestBatchErrorPaths(t *testing.T) {
	f := artifacts(t)
	_, srv := newTestServer(t, Options{MaxBatch: 8})
	rows := testRows(f, 2)

	cases := []struct {
		name string
		path string
		body interface{}
		want int
	}{
		{"unknown pipeline", "/transform", BatchRequest{Pipeline: "nope", Rows: rows}, http.StatusNotFound},
		{"unknown version", "/transform", BatchRequest{Version: "v99", Rows: rows}, http.StatusNotFound},
		{"empty rows", "/transform", BatchRequest{}, http.StatusBadRequest},
		{"oversized batch", "/transform", BatchRequest{Rows: testRows(f, 9)}, http.StatusRequestEntityTooLarge},
		{"ragged row", "/transform", BatchRequest{Rows: [][]float64{{1}}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, srv.URL+c.path, c.body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}

	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/transform", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// Oversized body is rejected before the row array is materialised.
	reg0 := NewRegistry()
	if err := reg0.Register("risk", "v1", f.p1, nil); err != nil {
		t.Fatal(err)
	}
	small := httptest.NewServer(NewServer(reg0, Options{MaxBodyBytes: 256}))
	defer small.Close()
	resp = postJSON(t, small.URL+"/transform", BatchRequest{Rows: testRows(f, 8)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// /predict against a model-less version.
	reg := NewRegistry()
	if err := reg.Register("bare", "v1", f.p1, nil); err != nil {
		t.Fatal(err)
	}
	bare := httptest.NewServer(NewServer(reg, Options{}))
	defer bare.Close()
	resp = postJSON(t, bare.URL+"/predict", BatchRequest{Rows: rows})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("predict without model: status %d, want 400", resp.StatusCode)
	}
}

func TestScoreBackCompat(t *testing.T) {
	f := artifacts(t)
	_, srv := newTestServer(t, Options{})
	row := f.ds.Test.Row(0, nil)

	resp := postJSON(t, srv.URL+"/score", ScoreRequest{Row: row})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out ScoreResponse
	decode(t, resp, &out)
	if len(out.Features) != f.p1.NumFeatures() {
		t.Errorf("got %d features, want %d", len(out.Features), f.p1.NumFeatures())
	}
	if out.Score == nil || *out.Score < 0 || *out.Score > 1 {
		t.Errorf("score = %v, want probability", out.Score)
	}

	// Named-values form must agree with the dense form.
	values := map[string]float64{}
	for i, name := range f.p1.OriginalNames {
		values[name] = row[i]
	}
	resp = postJSON(t, srv.URL+"/score", ScoreRequest{Values: values})
	var out2 ScoreResponse
	decode(t, resp, &out2)
	for i := range out.Features {
		if out.Features[i] != out2.Features[i] {
			t.Fatalf("feature %d: dense %v != named %v", i, out.Features[i], out2.Features[i])
		}
	}

	// Error paths preserved from the v1 service.
	for i, body := range []interface{}{
		ScoreRequest{},                                    // neither row nor values
		ScoreRequest{Row: []float64{1}},                   // wrong width
		ScoreRequest{Values: map[string]float64{"x0": 1}}, // incomplete values
	} {
		resp := postJSON(t, srv.URL+"/score", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
}

func TestFeatureCache(t *testing.T) {
	f := artifacts(t)
	s, srv := newTestServer(t, Options{CacheSize: 128})
	rows := testRows(f, 8)

	var first, second BatchResponse
	resp := postJSON(t, srv.URL+"/predict", BatchRequest{Rows: rows, ReturnFeatures: true})
	decode(t, resp, &first)
	resp = postJSON(t, srv.URL+"/predict", BatchRequest{Rows: rows, ReturnFeatures: true})
	decode(t, resp, &second)

	for i := range rows {
		if first.Scores[i] != second.Scores[i] {
			t.Fatalf("row %d: cached score %v != fresh %v", i, second.Scores[i], first.Scores[i])
		}
		for j := range first.Features[i] {
			if math.Float64bits(first.Features[i][j]) != math.Float64bits(second.Features[i][j]) {
				t.Fatalf("row %d feature %d: cache changed the result", i, j)
			}
		}
	}
	st := s.cache.Stats()
	if st.Hits < uint64(len(rows)) {
		t.Errorf("cache hits = %d, want >= %d", st.Hits, len(rows))
	}
	if st.Size == 0 || st.Capacity != 128 {
		t.Errorf("cache stats = %+v", st)
	}

	// The same raw row through a pinned different version must not reuse the
	// other version's entry: v2 emits a different width.
	resp = postJSON(t, srv.URL+"/transform", BatchRequest{Version: "v2", Rows: rows[:1]})
	var v2out BatchResponse
	decode(t, resp, &v2out)
	if len(v2out.Features[0]) != f.p2.NumFeatures() {
		t.Errorf("v2 via cache path returned width %d, want %d",
			len(v2out.Features[0]), f.p2.NumFeatures())
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewFeatureCache(2)
	e := &Entry{Name: "n", Version: "v"}
	rows := [][]float64{{1}, {2}, {3}}
	for _, r := range rows {
		c.Put(cacheKey(e, r), r, []float64{r[0] * 10}, nil)
	}
	st := c.Stats()
	if st.Size != 2 {
		t.Errorf("size %d after eviction, want 2", st.Size)
	}
	// Oldest entry evicted, newest present.
	if _, ok := c.Get(cacheKey(e, rows[0]), rows[0]); ok {
		t.Error("evicted entry still served")
	}
	if _, ok := c.Get(cacheKey(e, rows[2]), rows[2]); !ok {
		t.Error("fresh entry missing")
	}
	// Nil cache (disabled) is safe to use.
	var nilCache *FeatureCache
	nilCache.Put(1, rows[0], nil, nil)
	if _, ok := nilCache.Get(1, rows[0]); ok {
		t.Error("nil cache returned a hit")
	}
}

// TestCacheKeyIdentitySeparation pins the length-suffixing: (name, version)
// pairs whose concatenations coincide must not share a key.
func TestCacheKeyIdentitySeparation(t *testing.T) {
	row := []float64{1, 2, 3}
	a := cacheKey(&Entry{Name: "risk@eu", Version: "v1"}, row)
	b := cacheKey(&Entry{Name: "risk", Version: "eu@v1"}, row)
	if a == b {
		t.Error("ambiguous name/version split produced the same cache key")
	}
	c := cacheKey(&Entry{Name: "risk@eu", Version: "v1"}, row)
	if a != c {
		t.Error("cache key not deterministic")
	}
}

// TestCacheConcurrentGetPut exercises simultaneous hits, misses and
// replacements on one key; run with -race.
func TestCacheConcurrentGetPut(t *testing.T) {
	c := NewFeatureCache(64)
	e := &Entry{Name: "n", Version: "v"}
	row := []float64{1, 2}
	key := cacheKey(e, row)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			score := float64(g)
			for i := 0; i < 500; i++ {
				c.Put(key, row, []float64{3, 4}, &score)
				if ent, ok := c.Get(key, row); ok && len(ent.features) != 2 {
					t.Error("torn cache entry")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestIntrospectionEndpoints(t *testing.T) {
	f := artifacts(t)
	_, srv := newTestServer(t, Options{})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/schema?version=v2")
	if err != nil {
		t.Fatal(err)
	}
	var schema schemaResponse
	decode(t, resp, &schema)
	if schema.Version != "v2" || len(schema.Inputs) != len(f.p2.OriginalNames) ||
		len(schema.Outputs) != f.p2.NumFeatures() || !schema.HasModel {
		t.Errorf("schema = %+v", schema)
	}

	resp, err = http.Get(srv.URL + "/pipelines")
	if err != nil {
		t.Fatal(err)
	}
	var infos []PipelineInfo
	decode(t, resp, &infos)
	if len(infos) != 1 || infos[0].Name != "risk" || len(infos[0].Versions) != 2 ||
		infos[0].Active != "v1" || !infos[0].HasModel {
		t.Errorf("pipelines = %+v", infos)
	}

	// Traffic, then stats must reflect it.
	rows := testRows(f, 5)
	postJSON(t, srv.URL+"/predict", BatchRequest{Rows: rows}).Body.Close()
	postJSON(t, srv.URL+"/transform", BatchRequest{Pipeline: "nope", Rows: rows}).Body.Close()

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	decode(t, resp, &stats)
	if stats.Requests < 2 || stats.Errors < 1 || stats.Rows < 5 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Latency.Samples == 0 || stats.Latency.P99us < stats.Latency.P50us {
		t.Errorf("latency = %+v", stats.Latency)
	}

	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route status %d, want 404", resp.StatusCode)
	}
}

func TestRegistryValidation(t *testing.T) {
	f := artifacts(t)
	reg := NewRegistry()
	if err := reg.Register("", "v1", f.p1, nil); err == nil {
		t.Error("accepted empty name")
	}
	if err := reg.Register("x", "v1", nil, nil); err == nil {
		t.Error("accepted nil pipeline")
	}
	if err := reg.Register("x", "v1", f.p1, f.m2); err == nil {
		t.Error("accepted model/pipeline width mismatch")
	}
	if err := reg.Register("x", "v1", f.p1, f.m1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("x", "v1", f.p1, f.m1); err == nil {
		t.Error("accepted duplicate (name, version)")
	}
	if err := reg.Activate("x", "v9"); err == nil {
		t.Error("activated unknown version")
	}
	if err := reg.Activate("y", "v1"); err == nil {
		t.Error("activated unknown pipeline")
	}
	if _, err := reg.Get("", ""); err != nil {
		t.Errorf("single-pipeline default lookup failed: %v", err)
	}
	if err := reg.Register("second", "v1", f.p1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("", ""); err == nil {
		t.Error("ambiguous default lookup succeeded with two pipelines")
	}
}

func TestLoadDir(t *testing.T) {
	f := artifacts(t)
	dir := t.TempDir()
	write := func(name, version string, p *core.Pipeline, m *gbdt.Model) {
		t.Helper()
		vdir := filepath.Join(dir, name, version)
		if err := os.MkdirAll(vdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := p.SaveFile(filepath.Join(vdir, "pipeline.json")); err != nil {
			t.Fatal(err)
		}
		if m != nil {
			if err := m.SaveFile(filepath.Join(vdir, "model.json")); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("risk", "v1", f.p1, f.m1)
	write("risk", "v2", f.p2, f.m2)
	write("plain", "v1", f.p1, nil)

	reg := NewRegistry()
	n, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("loaded %d entries, want 3", n)
	}
	// Lexically greatest version is active.
	e, err := reg.Get("risk", "")
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != "v2" || e.Model == nil {
		t.Errorf("active risk = %s (model %v), want v2 with model", e.Version, e.Model != nil)
	}
	e, err = reg.Get("plain", "")
	if err != nil {
		t.Fatal(err)
	}
	if e.Model != nil {
		t.Error("plain pipeline unexpectedly has a model")
	}
	// A loaded pipeline must still score correctly.
	row := f.ds.Test.Row(0, nil)
	got, err := e.Pipeline.TransformRow(row)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := f.p1.TransformRow(row)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("feature %d: loaded %v != original %v", i, got[i], want[i])
		}
	}

	if _, err := reg.LoadDir(filepath.Join(dir, "does-not-exist")); err == nil {
		t.Error("LoadDir accepted a missing directory")
	}
}
