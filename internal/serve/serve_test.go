package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gbdt"
)

func fitArtifacts(t *testing.T) (*core.Pipeline, *gbdt.Model, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "serve-test", Train: 2000, Test: 400, Dim: 8,
		Interactions: 3, SignalScale: 2.5, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := eng.Fit(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	trNew, err := p.Transform(ds.Train)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([][]float64, trNew.NumCols())
	for j := range cols {
		cols[j] = trNew.Columns[j].Values
	}
	cfg := gbdt.DefaultConfig()
	cfg.NumTrees = 20
	model, err := gbdt.Train(cols, trNew.Label, trNew.Names(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, model, ds
}

func postScore(t *testing.T, srv *httptest.Server, body interface{}) (*http.Response, ScoreResponse) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/score", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ScoreResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestScoreDenseRow(t *testing.T) {
	p, model, ds := fitArtifacts(t)
	h, err := NewHandler(p, model)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	row := ds.Test.Row(0, nil)
	resp, out := postScore(t, srv, ScoreRequest{Row: row})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Features) != p.NumFeatures() {
		t.Errorf("got %d features, want %d", len(out.Features), p.NumFeatures())
	}
	if out.Score == nil || *out.Score < 0 || *out.Score > 1 {
		t.Errorf("score = %v, want probability", out.Score)
	}
	// Agreement with direct evaluation.
	want, err := p.TransformRow(row)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out.Features[i] != want[i] {
			t.Fatalf("feature %d: %v vs %v", i, out.Features[i], want[i])
		}
	}
}

func TestScoreNamedValues(t *testing.T) {
	p, _, ds := fitArtifacts(t)
	h, err := NewHandler(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	row := ds.Test.Row(1, nil)
	values := map[string]float64{}
	for i, name := range p.OriginalNames {
		values[name] = row[i]
	}
	resp, out := postScore(t, srv, ScoreRequest{Values: values})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Score != nil {
		t.Error("score present without a model")
	}
	want, _ := p.TransformRow(row)
	for i := range want {
		if out.Features[i] != want[i] {
			t.Fatalf("feature %d mismatch", i)
		}
	}
}

func TestScoreBadRequests(t *testing.T) {
	p, _, _ := fitArtifacts(t)
	h, _ := NewHandler(p, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	cases := []interface{}{
		ScoreRequest{},                                    // neither row nor values
		ScoreRequest{Row: []float64{1}},                   // wrong width
		ScoreRequest{Values: map[string]float64{"x0": 1}}, // incomplete values
	}
	for i, c := range cases {
		resp, _ := postScore(t, srv, c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/score", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

func TestSchemaAndHealth(t *testing.T) {
	p, model, _ := fitArtifacts(t)
	h, _ := NewHandler(p, model)
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var schema struct {
		Inputs   []string `json:"inputs"`
		Outputs  []string `json:"outputs"`
		HasModel bool     `json:"has_model"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&schema); err != nil {
		t.Fatal(err)
	}
	if len(schema.Inputs) != len(p.OriginalNames) || len(schema.Outputs) != p.NumFeatures() {
		t.Errorf("schema = %+v", schema)
	}
	if !schema.HasModel {
		t.Error("schema missing model flag")
	}
}

func TestUnknownRoute(t *testing.T) {
	p, _, _ := fitArtifacts(t)
	h, _ := NewHandler(p, nil)
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

func TestHandlerValidation(t *testing.T) {
	p, model, _ := fitArtifacts(t)
	if _, err := NewHandler(nil, nil); err == nil {
		t.Error("accepted nil pipeline")
	}
	// Width mismatch between model and pipeline.
	bad := &core.Pipeline{OriginalNames: p.OriginalNames, Output: p.Output[:1]}
	if _, err := NewHandler(bad, model); err == nil {
		t.Error("accepted model/pipeline width mismatch")
	}
}

func TestSwapHotReload(t *testing.T) {
	p, model, ds := fitArtifacts(t)
	h, _ := NewHandler(p, model)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Swap to a transform-only handler.
	if err := h.Swap(p, nil); err != nil {
		t.Fatal(err)
	}
	row := ds.Test.Row(2, nil)
	resp, out := postScore(t, srv, ScoreRequest{Row: row})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after swap", resp.StatusCode)
	}
	if out.Score != nil {
		t.Error("score still present after swapping the model out")
	}
	if err := h.Swap(nil, nil); err == nil {
		t.Error("Swap accepted nil pipeline")
	}
}
