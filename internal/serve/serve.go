package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/gbdt"
)

// DefaultMaxBatch caps how many rows a single /transform or /predict request
// may carry when Options.MaxBatch is unset.
const DefaultMaxBatch = 4096

// DefaultMaxBodyBytes bounds a request body when Options.MaxBodyBytes is
// unset. The row-count limit alone cannot protect memory — the body is
// decoded before rows can be counted — so the byte cap is enforced first.
const DefaultMaxBodyBytes = 32 << 20

// Options configures a Server.
type Options struct {
	// MaxBatch is the largest accepted rows-per-request; <= 0 means
	// DefaultMaxBatch. Oversized batches are rejected with 413.
	MaxBatch int
	// MaxBodyBytes is the largest accepted request body; <= 0 means
	// DefaultMaxBodyBytes. Oversized bodies are rejected with 413.
	MaxBodyBytes int64
	// CacheSize is the feature-cache capacity in rows; <= 0 disables the
	// cache.
	CacheSize int
}

// Server is the HTTP serving layer: it exposes every pipeline in a Registry
// through batched transform/predict endpoints, with an optional feature
// cache and request metrics.
type Server struct {
	registry *Registry
	cache    *FeatureCache
	metrics  *Metrics
	maxBatch int
	maxBody  int64
}

// NewServer builds a server over the given registry.
func NewServer(reg *Registry, opts Options) *Server {
	maxBatch := opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	return &Server{
		registry: reg,
		cache:    NewFeatureCache(opts.CacheSize),
		metrics:  NewMetrics(),
		maxBatch: maxBatch,
		maxBody:  maxBody,
	}
}

// decodeBody decodes a JSON request body under the byte cap, writing the
// error response itself on failure: 413 for an oversized body, 400 for
// malformed JSON. Returns the written status and whether decoding succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) (int, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.maxBody)), false
		}
		return writeError(w, http.StatusBadRequest, "bad request: "+err.Error()), false
	}
	return http.StatusOK, true
}

// Registry returns the server's registry, for in-process administration
// (registering or activating versions while serving).
func (s *Server) Registry() *Registry { return s.registry }

// BatchRequest is the JSON body of POST /transform and POST /predict. Rows
// are dense and ordered as the pipeline's input schema (GET /schema).
type BatchRequest struct {
	// Pipeline selects the registered pipeline by name; optional when
	// exactly one pipeline is registered.
	Pipeline string `json:"pipeline,omitempty"`
	// Version pins a specific version; empty means the active one.
	Version string `json:"version,omitempty"`
	// Rows is the request batch, each row ordered as the input schema.
	Rows [][]float64 `json:"rows"`
	// ReturnFeatures asks /predict to include the engineered features in
	// the response alongside the scores.
	ReturnFeatures bool `json:"return_features,omitempty"`
}

// BatchResponse is the JSON body returned by /transform and /predict. The
// shape of a prediction follows the pipeline's task: Scores always carries
// one scalar per row (the positive-class probability for binary models, the
// raw prediction for regression, the argmax class index for multiclass),
// and Probs additionally carries the per-row class-probability vector for
// multiclass models.
type BatchResponse struct {
	Pipeline string      `json:"pipeline"`
	Version  string      `json:"version"`
	Names    []string    `json:"names,omitempty"`
	Features [][]float64 `json:"features,omitempty"`
	Scores   []float64   `json:"scores,omitempty"`
	Probs    [][]float64 `json:"probs,omitempty"`
}

// ScoreRequest is the JSON body of POST /score (single-row endpoint):
// either a dense row ordered as the input schema, or a name->value map.
type ScoreRequest struct {
	Pipeline string             `json:"pipeline,omitempty"`
	Version  string             `json:"version,omitempty"`
	Row      []float64          `json:"row,omitempty"`
	Values   map[string]float64 `json:"values,omitempty"`
}

// ScoreResponse is the JSON body returned by /score. Probs is set for
// multiclass models only (Score then carries the argmax class index).
type ScoreResponse struct {
	Features []float64 `json:"features"`
	Names    []string  `json:"names,omitempty"`
	Score    *float64  `json:"score,omitempty"`
	Probs    []float64 `json:"probs,omitempty"`
}

// activateRequest is the JSON body of POST /admin/activate.
type activateRequest struct {
	Pipeline string `json:"pipeline"`
	Version  string `json:"version"`
}

// ServeHTTP routes:
//
//	POST /transform       batched feature engineering
//	POST /predict         batched feature engineering + model scoring
//	POST /score           single row (back-compatible with the v1 service)
//	POST /admin/activate  hot-swap the active version of a pipeline
//	GET  /pipelines       registry listing
//	GET  /schema          input/output schema of one pipeline
//	GET  /stats           request counters, latency quantiles, cache stats
//	GET  /healthz         liveness
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case r.URL.Path == "/stats" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cache, s.registry))
	case r.URL.Path == "/pipelines" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, s.registry.Snapshot())
	case r.URL.Path == "/schema" && r.Method == http.MethodGet:
		s.handleSchema(w, r)
	case r.URL.Path == "/transform" && r.Method == http.MethodPost:
		s.handleBatch(w, r, false)
	case r.URL.Path == "/predict" && r.Method == http.MethodPost:
		s.handleBatch(w, r, true)
	case r.URL.Path == "/score" && r.Method == http.MethodPost:
		s.handleScore(w, r)
	case r.URL.Path == "/admin/activate" && r.Method == http.MethodPost:
		s.handleActivate(w, r)
	default:
		writeError(w, http.StatusNotFound, "not found")
	}
}

type schemaResponse struct {
	Pipeline string   `json:"pipeline"`
	Version  string   `json:"version"`
	Task     string   `json:"task"`
	Inputs   []string `json:"inputs"`
	Outputs  []string `json:"outputs"`
	HasModel bool     `json:"has_model"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	e, err := s.registry.Get(q.Get("pipeline"), q.Get("version"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, schemaResponse{
		Pipeline: e.Name,
		Version:  e.Version,
		Task:     e.Pipeline.Task.String(),
		Inputs:   e.Pipeline.OriginalNames,
		Outputs:  e.Pipeline.Output,
		HasModel: e.Model != nil,
	})
}

func (s *Server) handleActivate(w http.ResponseWriter, r *http.Request) {
	var req activateRequest
	if _, ok := s.decodeBody(w, r, &req); !ok {
		return
	}
	if err := s.registry.Activate(req.Pipeline, req.Version); err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"pipeline": req.Pipeline, "active": req.Version,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, predict bool) {
	start := time.Now()
	nRows, status := s.serveBatch(w, r, predict)
	s.metrics.Observe(time.Since(start), nRows, status >= 400)
}

// serveBatch decodes, validates and executes one batched request, returning
// the row count and response status for metrics.
func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request, predict bool) (int, int) {
	var req BatchRequest
	if status, ok := s.decodeBody(w, r, &req); !ok {
		return 0, status
	}
	if len(req.Rows) == 0 {
		return 0, writeError(w, http.StatusBadRequest, `bad request: "rows" must be a non-empty array`)
	}
	if len(req.Rows) > s.maxBatch {
		return 0, writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d rows exceeds limit %d", len(req.Rows), s.maxBatch))
	}
	e, err := s.registry.Get(req.Pipeline, req.Version)
	if err != nil {
		return 0, writeError(w, http.StatusNotFound, err.Error())
	}
	if predict && e.Model == nil {
		return 0, writeError(w, http.StatusBadRequest,
			fmt.Sprintf("pipeline %s@%s has no model attached; use /transform", e.Name, e.Version))
	}
	width := len(e.Pipeline.OriginalNames)
	for i, row := range req.Rows {
		if len(row) != width {
			return 0, writeError(w, http.StatusBadRequest,
				fmt.Sprintf("bad request: row %d has %d values, want %d", i, len(row), width))
		}
	}

	features, scores, probs, err := s.runBatch(e, req.Rows, predict)
	if err != nil {
		return 0, writeError(w, http.StatusBadRequest, err.Error())
	}
	resp := BatchResponse{Pipeline: e.Name, Version: e.Version}
	if predict {
		resp.Scores = scores
		resp.Probs = probs
		if req.ReturnFeatures {
			resp.Names, resp.Features = e.Pipeline.Output, features
		}
	} else {
		resp.Names, resp.Features = e.Pipeline.Output, features
	}
	writeJSON(w, http.StatusOK, resp)
	return len(req.Rows), http.StatusOK
}

// runBatch evaluates rows through e, consulting the feature cache per row
// and transforming only the misses in one columnar pass. For multiclass
// models probs carries the per-row class-probability vectors and the scalar
// score is the argmax class index; probs is nil otherwise.
func (s *Server) runBatch(e *Entry, rows [][]float64, predict bool) ([][]float64, []float64, [][]float64, error) {
	n := len(rows)
	features := make([][]float64, n)
	var scores []float64
	var probs [][]float64
	multi := predict && e.Model.NumGroups() > 1
	if predict {
		scores = make([]float64, n)
		if multi {
			probs = make([][]float64, n)
		}
	}
	// score fills scores[i] (and probs[i]) from features[i], returning a
	// cacheable scalar (nil for multiclass: the cache stores one scalar per
	// row, so vector predictions are recomputed from cached features).
	score := func(i int) *float64 {
		if multi {
			v := e.Model.PredictRowVector(features[i])
			probs[i] = v
			scores[i] = float64(gbdt.Argmax(v))
			return nil
		}
		scores[i] = e.Model.PredictRow(features[i])
		return &scores[i]
	}

	var keys []uint64
	missIdx := make([]int, 0, n)
	if s.cache != nil {
		keys = make([]uint64, n)
		for i, row := range rows {
			keys[i] = cacheKey(e, row)
			ent, ok := s.cache.Get(keys[i], row)
			if !ok {
				missIdx = append(missIdx, i)
				continue
			}
			features[i] = ent.features
			if predict {
				if ent.hasScore && !multi {
					scores[i] = ent.score
				} else if sc := score(i); sc != nil {
					s.cache.Put(keys[i], row, ent.features, sc)
				}
			}
		}
	} else {
		for i := range rows {
			missIdx = append(missIdx, i)
		}
	}

	if len(missIdx) > 0 {
		missRows := make([][]float64, len(missIdx))
		for k, i := range missIdx {
			missRows[k] = rows[i]
		}
		out, err := e.Pipeline.TransformBatch(missRows)
		if err != nil {
			return nil, nil, nil, err
		}
		for k, i := range missIdx {
			features[i] = out[k]
			var sc *float64
			if predict {
				sc = score(i)
			}
			if s.cache != nil {
				s.cache.Put(keys[i], rows[i], out[k], sc)
			}
		}
	}
	return features, scores, probs, nil
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	status := s.serveScore(w, r)
	s.metrics.Observe(time.Since(start), 1, status >= 400)
}

func (s *Server) serveScore(w http.ResponseWriter, r *http.Request) int {
	var req ScoreRequest
	if status, ok := s.decodeBody(w, r, &req); !ok {
		return status
	}
	e, err := s.registry.Get(req.Pipeline, req.Version)
	if err != nil {
		return writeError(w, http.StatusNotFound, err.Error())
	}
	row := req.Row
	if row == nil {
		if req.Values == nil {
			return writeError(w, http.StatusBadRequest, `bad request: provide "row" or "values"`)
		}
		row = make([]float64, len(e.Pipeline.OriginalNames))
		for i, name := range e.Pipeline.OriginalNames {
			v, ok := req.Values[name]
			if !ok {
				return writeError(w, http.StatusBadRequest,
					fmt.Sprintf("bad request: missing value for %q", name))
			}
			row[i] = v
		}
	}
	if len(row) != len(e.Pipeline.OriginalNames) {
		return writeError(w, http.StatusBadRequest,
			fmt.Sprintf("bad request: got %d values, want %d", len(row), len(e.Pipeline.OriginalNames)))
	}
	features, scores, probs, err := s.runBatch(e, [][]float64{row}, e.Model != nil)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "bad request: "+err.Error())
	}
	resp := ScoreResponse{Features: features[0], Names: e.Pipeline.Output}
	if e.Model != nil {
		resp.Score = &scores[0]
		if probs != nil {
			resp.Probs = probs[0]
		}
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK
}

// errorResponse is the JSON error body used by every endpoint.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) int {
	writeJSON(w, status, errorResponse{Error: msg})
	return status
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do.
		_ = err
	}
}
