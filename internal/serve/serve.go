// Package serve implements the real-time inference service of
// Section IV-E3: an HTTP handler that loads a saved pipeline Ψ (and
// optionally a saved GBDT model trained on Ψ's output) and scores raw
// feature rows per request. It lives in internal/ so both cmd/safe-serve
// and the tests exercise the exact same handler.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/gbdt"
)

// ScoreRequest is the JSON request body: either a dense row ordered as the
// pipeline's OriginalNames, or a name->value map.
type ScoreRequest struct {
	Row    []float64          `json:"row,omitempty"`
	Values map[string]float64 `json:"values,omitempty"`
}

// ScoreResponse is the JSON response: the engineered feature vector, the
// feature names, and — when a model is attached — the model score.
type ScoreResponse struct {
	Features []float64 `json:"features"`
	Names    []string  `json:"names,omitempty"`
	Score    *float64  `json:"score,omitempty"`
}

// Handler scores rows through a pipeline and optional model.
type Handler struct {
	mu       sync.RWMutex
	pipeline *core.Pipeline
	model    *gbdt.Model
}

// NewHandler builds a handler for the given pipeline; model may be nil
// (transform-only service).
func NewHandler(p *core.Pipeline, model *gbdt.Model) (*Handler, error) {
	if p == nil {
		return nil, fmt.Errorf("serve: nil pipeline")
	}
	if model != nil && model.NumFeat != p.NumFeatures() {
		return nil, fmt.Errorf("serve: model expects %d features, pipeline emits %d",
			model.NumFeat, p.NumFeatures())
	}
	return &Handler{pipeline: p, model: model}, nil
}

// Swap atomically replaces the pipeline and model (hot reload).
func (h *Handler) Swap(p *core.Pipeline, model *gbdt.Model) error {
	if p == nil {
		return fmt.Errorf("serve: nil pipeline")
	}
	if model != nil && model.NumFeat != p.NumFeatures() {
		return fmt.Errorf("serve: model expects %d features, pipeline emits %d",
			model.NumFeat, p.NumFeatures())
	}
	h.mu.Lock()
	h.pipeline, h.model = p, model
	h.mu.Unlock()
	return nil
}

// ServeHTTP implements three routes:
//
//	POST /score   {"row":[...]} or {"values":{"x0":1,...}} -> features (+score)
//	GET  /schema  -> pipeline input/output schema
//	GET  /healthz -> 200 ok
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case r.URL.Path == "/schema" && r.Method == http.MethodGet:
		h.handleSchema(w)
	case r.URL.Path == "/score" && r.Method == http.MethodPost:
		h.handleScore(w, r)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

type schemaResponse struct {
	Inputs   []string `json:"inputs"`
	Outputs  []string `json:"outputs"`
	HasModel bool     `json:"has_model"`
}

func (h *Handler) handleSchema(w http.ResponseWriter) {
	h.mu.RLock()
	resp := schemaResponse{
		Inputs:   h.pipeline.OriginalNames,
		Outputs:  h.pipeline.Output,
		HasModel: h.model != nil,
	}
	h.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleScore(w http.ResponseWriter, r *http.Request) {
	var req ScoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	h.mu.RLock()
	p, model := h.pipeline, h.model
	h.mu.RUnlock()

	row := req.Row
	if row == nil {
		if req.Values == nil {
			http.Error(w, `bad request: provide "row" or "values"`, http.StatusBadRequest)
			return
		}
		row = make([]float64, len(p.OriginalNames))
		for i, name := range p.OriginalNames {
			v, ok := req.Values[name]
			if !ok {
				http.Error(w, fmt.Sprintf("bad request: missing value for %q", name), http.StatusBadRequest)
				return
			}
			row[i] = v
		}
	}
	features, err := p.TransformRow(row)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp := ScoreResponse{Features: features, Names: p.Output}
	if model != nil {
		s := model.PredictRow(features)
		resp.Score = &s
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do.
		_ = err
	}
}
