package mlp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func circles(n int, seed int64) ([][]float64, []float64) {
	// Inner circle positive, outer ring negative: requires a non-linear
	// boundary.
	rng := rand.New(rand.NewSource(seed))
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		angle := rng.Float64() * 2 * math.Pi
		r := 0.5
		if i%2 == 0 {
			r = 2.0
		} else {
			labels[i] = 1
		}
		r += rng.NormFloat64() * 0.2
		cols[0][i] = r * math.Cos(angle)
		cols[1][i] = r * math.Sin(angle)
	}
	return cols, labels
}

func TestValidation(t *testing.T) {
	if _, err := Train(nil, []float64{1}, DefaultConfig()); err == nil {
		t.Error("accepted no features")
	}
	if _, err := Train([][]float64{{1}}, nil, DefaultConfig()); err == nil {
		t.Error("accepted no labels")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []float64{0, 1}, DefaultConfig()); err == nil {
		t.Error("accepted ragged columns")
	}
}

func TestLearnsNonLinearBoundary(t *testing.T) {
	cols, labels := circles(2000, 1)
	cfg := DefaultConfig()
	cfg.Epochs = 60
	m, err := Train(cols, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testCols, testLabels := circles(500, 42)
	if auc := metrics.AUC(m.Predict(testCols), testLabels); auc < 0.95 {
		t.Errorf("MLP AUC on circles = %v, want >= 0.95 (linear models cannot exceed ~0.5 here)", auc)
	}
}

func TestOutputsProbabilities(t *testing.T) {
	cols, labels := circles(300, 2)
	m, err := Train(cols, labels, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Predict(cols) {
		if p <= 0 || p >= 1 || math.IsNaN(p) {
			t.Fatalf("prediction %v outside (0,1)", p)
		}
	}
}

func TestPredictRowMatchesBatch(t *testing.T) {
	cols, labels := circles(300, 3)
	m, err := Train(cols, labels, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	batch := m.Predict(cols)
	row := make([]float64, 2)
	for i := 0; i < 10; i++ {
		row[0], row[1] = cols[0][i], cols[1][i]
		if got := m.PredictRow(row); math.Abs(got-batch[i]) > 1e-12 {
			t.Fatalf("row %d mismatch: %v vs %v", i, got, batch[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	cols, labels := circles(300, 4)
	cfg := DefaultConfig()
	cfg.Seed = 9
	m1, err := Train(cols, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(cols, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1 := m1.Predict(cols)
	p2 := m2.Predict(cols)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed diverged at row %d", i)
		}
	}
}

func TestNaNInputs(t *testing.T) {
	cols, labels := circles(300, 5)
	cols[0][0] = math.NaN()
	m, err := Train(cols, labels, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p := m.PredictRow([]float64{math.NaN(), 0.3}); math.IsNaN(p) {
		t.Error("NaN input produced NaN prediction")
	}
}
