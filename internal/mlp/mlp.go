// Package mlp implements the Multi-Layered Perceptron evaluator of
// Table III: one ReLU hidden layer, a sigmoid output unit, binary
// cross-entropy loss, and mini-batch SGD with momentum on standardised
// inputs.
package mlp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config holds MLP hyper-parameters.
type Config struct {
	Hidden       int
	Epochs       int
	LearningRate float64
	Momentum     float64
	BatchSize    int
	L2           float64
	Seed         int64
}

// DefaultConfig mirrors sklearn's MLPClassifier scale at this repository's
// dataset sizes (100 hidden units is overkill for synthetic benchmarks; 32
// keeps runtimes sane without changing relative results).
func DefaultConfig() Config {
	return Config{Hidden: 32, Epochs: 30, LearningRate: 0.05, Momentum: 0.9, BatchSize: 64, L2: 1e-4}
}

// Model is a trained MLP.
type Model struct {
	w1   [][]float64 // hidden x input
	b1   []float64
	w2   []float64 // output weights over hidden
	b2   float64
	mean []float64
	std  []float64
}

// Train fits the network on column-major data with {0,1} labels.
func Train(cols [][]float64, labels []float64, cfg Config) (*Model, error) {
	m := len(cols)
	if m == 0 {
		return nil, errors.New("mlp: no features")
	}
	n := len(labels)
	if n == 0 {
		return nil, errors.New("mlp: no rows")
	}
	for j := range cols {
		if len(cols[j]) != n {
			return nil, fmt.Errorf("mlp: column %d has %d rows, want %d", j, len(cols[j]), n)
		}
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}

	mod := &Model{
		w1:   make([][]float64, cfg.Hidden),
		b1:   make([]float64, cfg.Hidden),
		w2:   make([]float64, cfg.Hidden),
		mean: make([]float64, m),
		std:  make([]float64, m),
	}
	for j := 0; j < m; j++ {
		var sum float64
		cnt := 0
		for _, v := range cols[j] {
			if !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		if cnt == 0 {
			mod.std[j] = 1
			continue
		}
		mean := sum / float64(cnt)
		var ss float64
		for _, v := range cols[j] {
			if !math.IsNaN(v) {
				d := v - mean
				ss += d * d
			}
		}
		std := math.Sqrt(ss / float64(cnt))
		if std < 1e-12 {
			std = 1
		}
		mod.mean[j], mod.std[j] = mean, std
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	scale := math.Sqrt(2 / float64(m))
	for h := 0; h < cfg.Hidden; h++ {
		mod.w1[h] = make([]float64, m)
		for j := 0; j < m; j++ {
			mod.w1[h][j] = rng.NormFloat64() * scale
		}
		mod.w2[h] = rng.NormFloat64() * math.Sqrt(2/float64(cfg.Hidden))
	}

	// Standardised row-major copy.
	x := make([][]float64, n)
	for i := 0; i < n; i++ {
		x[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			v := cols[j][i]
			if math.IsNaN(v) {
				x[i][j] = 0
			} else {
				x[i][j] = (v - mod.mean[j]) / mod.std[j]
			}
		}
	}

	// Momentum buffers.
	vw1 := make([][]float64, cfg.Hidden)
	for h := range vw1 {
		vw1[h] = make([]float64, m)
	}
	vb1 := make([]float64, cfg.Hidden)
	vw2 := make([]float64, cfg.Hidden)
	vb2 := 0.0

	hid := make([]float64, cfg.Hidden)
	gw1 := make([][]float64, cfg.Hidden)
	for h := range gw1 {
		gw1[h] = make([]float64, m)
	}
	gb1 := make([]float64, cfg.Hidden)
	gw2 := make([]float64, cfg.Hidden)

	order := rng.Perm(n)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + 0.05*float64(epoch))
		for i := len(order) - 1; i > 0; i-- {
			k := rng.Intn(i + 1)
			order[i], order[k] = order[k], order[i]
		}
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			for h := 0; h < cfg.Hidden; h++ {
				for j := 0; j < m; j++ {
					gw1[h][j] = 0
				}
				gb1[h] = 0
				gw2[h] = 0
			}
			gb2 := 0.0
			for _, i := range order[start:end] {
				// Forward.
				for h := 0; h < cfg.Hidden; h++ {
					z := mod.b1[h]
					w := mod.w1[h]
					for j, v := range x[i] {
						z += w[j] * v
					}
					if z < 0 {
						z = 0
					}
					hid[h] = z
				}
				z2 := mod.b2
				for h := 0; h < cfg.Hidden; h++ {
					z2 += mod.w2[h] * hid[h]
				}
				p := 1 / (1 + math.Exp(-z2))
				// Backward.
				dOut := p - labels[i]
				gb2 += dOut
				for h := 0; h < cfg.Hidden; h++ {
					gw2[h] += dOut * hid[h]
					if hid[h] > 0 {
						dh := dOut * mod.w2[h]
						gb1[h] += dh
						gw := gw1[h]
						for j, v := range x[i] {
							gw[j] += dh * v
						}
					}
				}
			}
			k := float64(end - start)
			for h := 0; h < cfg.Hidden; h++ {
				vw2[h] = cfg.Momentum*vw2[h] - lr*(gw2[h]/k+cfg.L2*mod.w2[h])
				mod.w2[h] += vw2[h]
				vb1[h] = cfg.Momentum*vb1[h] - lr*gb1[h]/k
				mod.b1[h] += vb1[h]
				for j := 0; j < m; j++ {
					vw1[h][j] = cfg.Momentum*vw1[h][j] - lr*(gw1[h][j]/k+cfg.L2*mod.w1[h][j])
					mod.w1[h][j] += vw1[h][j]
				}
			}
			vb2 = cfg.Momentum*vb2 - lr*gb2/k
			mod.b2 += vb2
		}
	}
	return mod, nil
}

// PredictRow returns the positive-class probability for one raw row.
func (mod *Model) PredictRow(row []float64) float64 {
	z2 := mod.b2
	for h := range mod.w1 {
		z := mod.b1[h]
		w := mod.w1[h]
		for j, v := range row {
			if math.IsNaN(v) {
				continue
			}
			z += w[j] * (v - mod.mean[j]) / mod.std[j]
		}
		if z > 0 {
			z2 += mod.w2[h] * z
		}
	}
	return 1 / (1 + math.Exp(-z2))
}

// Predict scores column-major data.
func (mod *Model) Predict(cols [][]float64) []float64 {
	if len(cols) == 0 {
		return nil
	}
	n := len(cols[0])
	out := make([]float64, n)
	row := make([]float64, len(cols))
	for i := 0; i < n; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		out[i] = mod.PredictRow(row)
	}
	return out
}
