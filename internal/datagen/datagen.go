// Package datagen is the data substrate of this reproduction. The paper
// evaluates on 12 OpenML benchmarks (Table IV) and three private Ant
// Financial fraud datasets (Table VII); neither is available offline, so
// this package generates synthetic datasets with the same shapes
// (#train/#valid/#test/#dim) and — crucially — *planted pairwise feature
// interactions*: the label depends on products, ratios, sums and
// differences of feature pairs in addition to a few single informative
// features, with the remaining columns pure noise. An automatic feature
// engineering method that discovers the right pairs (what SAFE's path
// mining is designed to do) genuinely improves downstream AUC, so the
// relative ordering of methods in Tables III/V/VI/VIII is preserved even
// though absolute AUC values differ from the paper's.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/frame"
)

// InteractionKind enumerates the planted pairwise effects.
type InteractionKind int

// Planted interaction shapes. Product and Ratio are exactly recoverable by
// the paper's {×, ÷} operators; Sum and Diff by {+, −}; XorSign is a
// non-multiplicative interaction recoverable by × through its sign.
const (
	Product InteractionKind = iota
	Ratio
	Sum
	Diff
	XorSign
	numInteractionKinds
)

// TargetKind selects the label type a Spec generates. The planted signal
// (informative singles + pairwise interactions) is shared across kinds; only
// the final label construction differs, so the same feature-engineering
// ground truth underlies every task family.
type TargetKind int

const (
	// TargetBinary draws {0,1} labels from a sigmoid of the planted signal
	// (the default, matching the paper's setting).
	TargetBinary TargetKind = iota
	// TargetMulticlass draws class indices in [0, Classes) from a softmax
	// over per-class affine transforms of the planted signal, so the class
	// depends on the same interactions the binary label does.
	TargetMulticlass
	// TargetRegression emits the noisy planted signal itself as a
	// continuous target.
	TargetRegression
)

// Spec describes one synthetic dataset.
type Spec struct {
	Name  string
	Train int
	Valid int
	Test  int
	Dim   int

	// Target selects the label type (default TargetBinary); Classes is the
	// class count for TargetMulticlass (default 3).
	Target  TargetKind
	Classes int

	// Informative is the number of features with a direct (single-feature)
	// effect on the label.
	Informative int
	// Interactions is the number of planted feature pairs whose combination
	// (but not the individual features) carries signal.
	Interactions int
	// SignalScale multiplies the logit; larger values mean cleaner labels.
	SignalScale float64
	// PosRate is the target positive-class rate (class imbalance); 0 means
	// balanced.
	PosRate float64
	// Seed drives generation.
	Seed int64
}

// Interaction records one planted pair for ground-truth checks in tests and
// the assumption experiment.
type Interaction struct {
	A, B   int
	Kind   InteractionKind
	Weight float64
}

// Dataset is a generated train/valid/test triple plus generation ground
// truth.
type Dataset struct {
	Name         string
	Train        *frame.Frame
	Valid        *frame.Frame
	Test         *frame.Frame
	Informative  []int // indices of single-effect features
	Interactions []Interaction
}

// Generate builds the dataset described by the spec. Feature distributions
// are mixed (normal / uniform / log-normal) to exercise binning and
// normalisation paths.
func Generate(spec Spec) (*Dataset, error) {
	if spec.Train <= 0 || spec.Test <= 0 {
		return nil, fmt.Errorf("datagen: %s: train and test sizes must be positive", spec.Name)
	}
	if spec.Dim < 2 {
		return nil, fmt.Errorf("datagen: %s: need at least 2 features", spec.Name)
	}
	if spec.Informative <= 0 {
		// Cap the absolute number of informative singles: real wide
		// datasets (e.g. gina's 970 pixel features) are mostly noise, and
		// the IV filter's effectiveness — hence the paper's cost profile —
		// depends on that sparsity.
		spec.Informative = clampInt(spec.Dim/10, 1, 16)
	}
	if spec.Informative > spec.Dim {
		spec.Informative = spec.Dim
	}
	if spec.Interactions <= 0 {
		spec.Interactions = clampInt(spec.Dim/8, 2, 20)
	}
	if spec.SignalScale <= 0 {
		spec.SignalScale = 2.0
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := spec.Train + spec.Valid + spec.Test

	// Draw features column-major with per-column distribution.
	cols := make([][]float64, spec.Dim)
	for j := range cols {
		cols[j] = make([]float64, n)
		switch j % 3 {
		case 0: // standard normal
			for i := range cols[j] {
				cols[j][i] = rng.NormFloat64()
			}
		case 1: // uniform [-1, 1]
			for i := range cols[j] {
				cols[j][i] = rng.Float64()*2 - 1
			}
		default: // log-normal, centred
			for i := range cols[j] {
				cols[j][i] = math.Exp(0.5*rng.NormFloat64()) - 1.2
			}
		}
	}

	// Pick informative singles and interaction pairs.
	perm := rng.Perm(spec.Dim)
	informative := append([]int(nil), perm[:spec.Informative]...)
	sort.Ints(informative)

	inters := make([]Interaction, 0, spec.Interactions)
	for k := 0; k < spec.Interactions; k++ {
		a := perm[rng.Intn(len(perm))]
		b := perm[rng.Intn(len(perm))]
		for b == a {
			b = perm[rng.Intn(len(perm))]
		}
		inters = append(inters, Interaction{
			A:      a,
			B:      b,
			Kind:   InteractionKind(rng.Intn(int(numInteractionKinds))),
			Weight: 0.8 + rng.Float64()*1.2,
		})
	}

	// Build the logit.
	logit := make([]float64, n)
	for _, j := range informative {
		w := 0.4 + rng.Float64()*0.6
		if rng.Intn(2) == 0 {
			w = -w
		}
		std := colStd(cols[j])
		for i := range logit {
			logit[i] += w * cols[j][i] / std
		}
	}
	term := make([]float64, n)
	for _, it := range inters {
		a, b := cols[it.A], cols[it.B]
		for i := range term {
			term[i] = interact(it.Kind, a[i], b[i])
		}
		standardize(term)
		w := it.Weight
		if rng.Intn(2) == 0 {
			w = -w
		}
		// Real-world features carry marginal signal alongside their
		// interaction effect (a transaction amount predicts fraud a little
		// by itself and a lot relative to the account's average). A small
		// direct-effect leak on each constituent reproduces that; without
		// it, the IV filter — a marginal-dependence test, in the paper as
		// here — would discard the constituents outright.
		leak := 0.3 * w
		sa, sb := colStd(a), colStd(b)
		for i := range logit {
			logit[i] += w*term[i] + leak*(a[i]/sa+b[i]/sb)/2
		}
	}
	standardize(logit)
	for i := range logit {
		logit[i] = logit[i]*spec.SignalScale + 0.3*rng.NormFloat64()
	}

	labels := makeLabels(spec, logit, rng)

	full := &frame.Frame{Label: labels}
	for j := range cols {
		full.AddColumn(fmt.Sprintf("x%d", j), cols[j])
	}
	full.Shuffle(rand.New(rand.NewSource(spec.Seed + 1)))

	tr, va, te, err := full.Split(spec.Train, spec.Valid)
	if err != nil {
		return nil, fmt.Errorf("datagen: %s: %w", spec.Name, err)
	}
	return &Dataset{
		Name:         spec.Name,
		Train:        tr,
		Valid:        va,
		Test:         te,
		Informative:  informative,
		Interactions: inters,
	}, nil
}

// makeLabels turns the noisy planted signal into labels per the spec's
// target kind.
func makeLabels(spec Spec, logit []float64, rng *rand.Rand) []float64 {
	n := len(logit)
	labels := make([]float64, n)
	switch spec.Target {
	case TargetRegression:
		copy(labels, logit)

	case TargetMulticlass:
		k := spec.Classes
		if k < 2 {
			k = 3
		}
		// Per-class affine transforms of the signal: slopes spread over
		// [-1.5, 1.5] so each class dominates a different signal band, plus
		// small random offsets so no class starts empty.
		slope := make([]float64, k)
		offset := make([]float64, k)
		for c := 0; c < k; c++ {
			slope[c] = -1.5 + 3*float64(c)/float64(k-1)
			offset[c] = 0.5 * rng.NormFloat64()
		}
		prob := make([]float64, k)
		for i, z := range logit {
			mx := math.Inf(-1)
			for c := 0; c < k; c++ {
				prob[c] = slope[c]*z + offset[c]
				if prob[c] > mx {
					mx = prob[c]
				}
			}
			var sum float64
			for c := 0; c < k; c++ {
				prob[c] = math.Exp(prob[c] - mx)
				sum += prob[c]
			}
			u := rng.Float64() * sum
			cls := k - 1
			for c := 0; c < k; c++ {
				u -= prob[c]
				if u < 0 {
					cls = c
					break
				}
			}
			labels[i] = float64(cls)
		}

	default: // TargetBinary
		// Intercept to hit PosRate (balanced default 0.5).
		target := spec.PosRate
		if target <= 0 || target >= 1 {
			target = 0.5
		}
		intercept := findIntercept(logit, target)
		for i := range labels {
			p := 1 / (1 + math.Exp(-(logit[i] + intercept)))
			if rng.Float64() < p {
				labels[i] = 1
			}
		}
	}
	return labels
}

func interact(kind InteractionKind, a, b float64) float64 {
	switch kind {
	case Ratio:
		den := b
		if math.Abs(den) < 0.1 {
			den = math.Copysign(0.1, den)
			if den == 0 {
				den = 0.1
			}
		}
		v := a / den
		// Squash extreme ratios so a handful of rows cannot dominate.
		return math.Tanh(v / 3)
	case Sum:
		return a + b
	case Diff:
		return math.Abs(a - b)
	case XorSign:
		if (a > 0) != (b > 0) {
			return 1
		}
		return -1
	default: // Product
		return a * b
	}
}

func standardize(xs []float64) {
	m := 0.0
	for _, v := range xs {
		m += v
	}
	m /= float64(len(xs))
	ss := 0.0
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(xs)))
	if std < 1e-12 {
		std = 1
	}
	for i := range xs {
		xs[i] = (xs[i] - m) / std
	}
}

func colStd(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		m += v
	}
	m /= float64(len(xs))
	ss := 0.0
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	s := math.Sqrt(ss / float64(len(xs)))
	if s < 1e-12 {
		return 1
	}
	return s
}

// findIntercept binary-searches the intercept c so that the mean of
// sigmoid(logit + c) equals the target rate.
func findIntercept(logit []float64, target float64) float64 {
	lo, hi := -20.0, 20.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		mean := 0.0
		for _, z := range logit {
			mean += 1 / (1 + math.Exp(-(z + mid)))
		}
		mean /= float64(len(logit))
		if mean < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
