package datagen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInteractKinds(t *testing.T) {
	cases := []struct {
		kind InteractionKind
		a, b float64
		want float64
	}{
		{Product, 3, 4, 12},
		{Sum, 3, 4, 7},
		{Diff, 3, 7, 4},
		{Diff, 7, 3, 4},
		{XorSign, 1, -1, 1},
		{XorSign, 1, 1, -1},
		{XorSign, -2, -3, -1},
	}
	for _, c := range cases {
		if got := interact(c.kind, c.a, c.b); got != c.want {
			t.Errorf("interact(%v, %v, %v) = %v, want %v", c.kind, c.a, c.b, got, c.want)
		}
	}
}

func TestInteractRatioBounded(t *testing.T) {
	// Ratio is tanh-squashed, so it must stay in [-1, 1] even for tiny
	// denominators (including exactly zero).
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		v := interact(Ratio, a, b)
		return v >= -1 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if v := interact(Ratio, 5, 0); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("ratio with zero denominator = %v", v)
	}
}

func TestStandardizeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*5 + 3
		}
		standardize(xs)
		mean := 0.0
		for _, v := range xs {
			mean += v
		}
		mean /= float64(n)
		ss := 0.0
		for _, v := range xs {
			d := v - mean
			ss += d * d
		}
		std := math.Sqrt(ss / float64(n))
		return math.Abs(mean) < 1e-9 && math.Abs(std-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	// Constant input survives (std guard).
	konst := []float64{2, 2, 2}
	standardize(konst)
	for _, v := range konst {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("standardize(constant) produced %v", v)
		}
	}
}

func TestFindIntercept(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	logit := make([]float64, 5000)
	for i := range logit {
		logit[i] = rng.NormFloat64() * 2
	}
	for _, target := range []float64{0.02, 0.3, 0.5, 0.9} {
		c := findIntercept(logit, target)
		mean := 0.0
		for _, z := range logit {
			mean += 1 / (1 + math.Exp(-(z + c)))
		}
		mean /= float64(len(logit))
		if math.Abs(mean-target) > 0.002 {
			t.Errorf("target %v: achieved %v", target, mean)
		}
	}
}

func TestMarginalLeakMakesConstituentsDetectable(t *testing.T) {
	// After the marginal-leak change, interaction constituents must carry
	// nonzero marginal signal (so the IV filter keeps them, as with real
	// data).
	ds, err := Generate(Spec{
		Name: "leak", Train: 8000, Test: 1000, Dim: 10,
		Informative: 1, Interactions: 2, SignalScale: 3, Seed: 44,
	})
	if err != nil {
		t.Fatal(err)
	}
	// At least one constituent of some interaction should have visible
	// label correlation.
	found := false
	for _, it := range ds.Interactions {
		for _, j := range []int{it.A, it.B} {
			col := ds.Train.Columns[j].Values
			// crude point-biserial check
			var mPos, mNeg, nPos, nNeg float64
			for i, v := range col {
				if ds.Train.Label[i] > 0.5 {
					mPos += v
					nPos++
				} else {
					mNeg += v
					nNeg++
				}
			}
			if nPos > 0 && nNeg > 0 && math.Abs(mPos/nPos-mNeg/nNeg) > 0.05 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no interaction constituent carries marginal signal")
	}
}
