package datagen

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
)

func TestGenerateShapes(t *testing.T) {
	ds, err := Generate(Spec{Name: "t", Train: 500, Valid: 100, Test: 200, Dim: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Train.NumRows() != 500 || ds.Valid.NumRows() != 100 || ds.Test.NumRows() != 200 {
		t.Errorf("rows = %d/%d/%d", ds.Train.NumRows(), ds.Valid.NumRows(), ds.Test.NumRows())
	}
	if ds.Train.NumCols() != 12 || ds.Test.NumCols() != 12 {
		t.Errorf("cols = %d/%d, want 12", ds.Train.NumCols(), ds.Test.NumCols())
	}
	if err := ds.Train.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Train: 0, Test: 10, Dim: 5}); err == nil {
		t.Error("accepted zero train rows")
	}
	if _, err := Generate(Spec{Train: 10, Test: 10, Dim: 1}); err == nil {
		t.Error("accepted dim 1")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(Spec{Name: "t", Train: 100, Test: 50, Dim: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Spec{Name: "t", Train: 100, Test: 50, Dim: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 6; j++ {
		for i := 0; i < 100; i++ {
			if a.Train.Columns[j].Values[i] != b.Train.Columns[j].Values[i] {
				t.Fatalf("same seed diverged at (%d,%d)", i, j)
			}
		}
	}
	c, err := Generate(Spec{Name: "t", Train: 100, Test: 50, Dim: 6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 100 && same; i++ {
		if a.Train.Columns[0].Values[i] != c.Train.Columns[0].Values[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestPosRateRespected(t *testing.T) {
	ds, err := Generate(Spec{Name: "t", Train: 20000, Test: 1000, Dim: 10, PosRate: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rate := ds.Train.PositiveRate()
	if rate < 0.01 || rate > 0.04 {
		t.Errorf("positive rate = %v, want ~0.02", rate)
	}
}

func TestBalancedByDefault(t *testing.T) {
	ds, err := Generate(Spec{Name: "t", Train: 10000, Test: 1000, Dim: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rate := ds.Train.PositiveRate()
	if rate < 0.42 || rate > 0.58 {
		t.Errorf("positive rate = %v, want ~0.5", rate)
	}
}

func TestPlantedInteractionCarriesSignal(t *testing.T) {
	// The defining property of the substrate: the planted interaction value
	// must predict the label better than either constituent alone.
	ds, err := Generate(Spec{
		Name: "t", Train: 8000, Test: 1000, Dim: 8,
		Informative: 1, Interactions: 3, SignalScale: 3, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range ds.Interactions {
		a := ds.Train.Columns[it.A].Values
		b := ds.Train.Columns[it.B].Values
		term := make([]float64, len(a))
		for i := range term {
			term[i] = interact(it.Kind, a[i], b[i])
		}
		aucTerm := metrics.AUC(term, ds.Train.Label)
		aucA := metrics.AUC(a, ds.Train.Label)
		aucB := metrics.AUC(b, ds.Train.Label)
		// AUC is direction-sensitive; fold around 0.5.
		fold := func(x float64) float64 { return math.Abs(x - 0.5) }
		if fold(aucTerm) > fold(aucA)+0.03 && fold(aucTerm) > fold(aucB)+0.03 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no planted interaction is more predictive than its constituents")
	}
}

func TestInformativeFeaturesHaveIV(t *testing.T) {
	ds, err := Generate(Spec{
		Name: "t", Train: 6000, Test: 500, Dim: 20,
		Informative: 3, Interactions: 2, SignalScale: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, j := range ds.Informative {
		iv := stats.InformationValue(ds.Train.Columns[j].Values, ds.Train.Label, 10)
		if iv > best {
			best = iv
		}
	}
	if best < stats.IVUseless {
		t.Errorf("max informative-feature IV = %v, want >= %v", best, stats.IVUseless)
	}
}

func TestBenchmarkSpecsMatchTableIV(t *testing.T) {
	specs := BenchmarkSpecs(1)
	if len(specs) != 12 {
		t.Fatalf("got %d specs, want 12", len(specs))
	}
	want := map[string][4]int{
		"valley":   {900, 0, 312, 100},
		"banknote": {1000, 0, 372, 4},
		"gina":     {2800, 0, 668, 970},
		"spambase": {3800, 0, 801, 57},
		"phoneme":  {4500, 0, 904, 5},
		"wind":     {5000, 0, 1574, 14},
		"ailerons": {9000, 2000, 2750, 40},
		"eeg-eye":  {10000, 2000, 2980, 14},
		"magic":    {13000, 3000, 3020, 10},
		"nomao":    {22000, 6000, 6000, 118},
		"bank":     {35211, 4000, 6000, 51},
		"vehicle":  {60000, 18528, 20000, 100},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected spec %q", s.Name)
			continue
		}
		if s.Train != w[0] || s.Valid != w[1] || s.Test != w[2] || s.Dim != w[3] {
			t.Errorf("%s = %d/%d/%d/%d, want %v", s.Name, s.Train, s.Valid, s.Test, s.Dim, w)
		}
	}
}

func TestBenchmarkSpecScaling(t *testing.T) {
	specs := BenchmarkSpecs(0.1)
	for _, s := range specs {
		if s.Train < 200 {
			t.Errorf("%s scaled train = %d, below floor", s.Name, s.Train)
		}
	}
	if _, err := BenchmarkSpec("magic", 1); err != nil {
		t.Error(err)
	}
	if _, err := BenchmarkSpec("nope", 1); err == nil {
		t.Error("unknown benchmark resolved")
	}
}

func TestBusinessSpecsImbalanced(t *testing.T) {
	specs := BusinessSpecs(0.005)
	if len(specs) != 3 {
		t.Fatalf("got %d business specs, want 3", len(specs))
	}
	dims := map[string]int{"Data1": 81, "Data2": 44, "Data3": 73}
	for _, s := range specs {
		if s.PosRate != 0.02 {
			t.Errorf("%s PosRate = %v, want 0.02", s.Name, s.PosRate)
		}
		if dims[s.Name] != s.Dim {
			t.Errorf("%s Dim = %d, want %d", s.Name, s.Dim, dims[s.Name])
		}
	}
}

func TestFraudSpecGenerates(t *testing.T) {
	ds, err := Generate(FraudSpec())
	if err != nil {
		t.Fatal(err)
	}
	rate := ds.Train.PositiveRate()
	if rate < 0.005 || rate > 0.06 {
		t.Errorf("fraud rate = %v, want ~0.02", rate)
	}
}
