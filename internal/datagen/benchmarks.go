package datagen

import "fmt"

// BenchmarkSpecs returns the 12 dataset specs of Table IV with the paper's
// exact #train/#valid/#test/#dim shapes. scale in (0,1] shrinks the row
// counts proportionally (floored at 200 training rows) so the full table can
// be regenerated quickly during development; scale=1 reproduces the paper's
// sizes.
func BenchmarkSpecs(scale float64) []Spec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	base := []Spec{
		{Name: "valley", Train: 900, Valid: 0, Test: 312, Dim: 100, Seed: 101},
		{Name: "banknote", Train: 1000, Valid: 0, Test: 372, Dim: 4, Seed: 102},
		{Name: "gina", Train: 2800, Valid: 0, Test: 668, Dim: 970, Seed: 103},
		{Name: "spambase", Train: 3800, Valid: 0, Test: 801, Dim: 57, Seed: 104},
		{Name: "phoneme", Train: 4500, Valid: 0, Test: 904, Dim: 5, Seed: 105},
		{Name: "wind", Train: 5000, Valid: 0, Test: 1574, Dim: 14, Seed: 106},
		{Name: "ailerons", Train: 9000, Valid: 2000, Test: 2750, Dim: 40, Seed: 107},
		{Name: "eeg-eye", Train: 10000, Valid: 2000, Test: 2980, Dim: 14, Seed: 108},
		{Name: "magic", Train: 13000, Valid: 3000, Test: 3020, Dim: 10, Seed: 109},
		{Name: "nomao", Train: 22000, Valid: 6000, Test: 6000, Dim: 118, Seed: 110},
		{Name: "bank", Train: 35211, Valid: 4000, Test: 6000, Dim: 51, Seed: 111},
		{Name: "vehicle", Train: 60000, Valid: 18528, Test: 20000, Dim: 100, Seed: 112},
	}
	for i := range base {
		base[i].Train = scaleRows(base[i].Train, scale, 200)
		base[i].Valid = scaleRows(base[i].Valid, scale, 0)
		base[i].Test = scaleRows(base[i].Test, scale, 100)
	}
	return base
}

// BenchmarkSpec returns the named Table IV spec, or an error.
func BenchmarkSpec(name string, scale float64) (Spec, error) {
	for _, s := range BenchmarkSpecs(scale) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datagen: unknown benchmark %q", name)
}

// BusinessSpecs returns the three fraud-detection dataset specs of
// Table VII. The paper's originals hold 2.5M-8M training rows of private
// Ant Financial data; the substitution keeps the exact dimensionality and
// heavy class imbalance (fraud ≈ 2%) and scales the row counts by scale
// (default 0.01 gives 25k-80k training rows). Setting scale=1 reproduces
// the paper's full sizes if you have the time and memory.
func BusinessSpecs(scale float64) []Spec {
	if scale <= 0 || scale > 1 {
		scale = 0.01
	}
	base := []Spec{
		{Name: "Data1", Train: 2502617, Valid: 625655, Test: 625655, Dim: 81, PosRate: 0.02, Seed: 201},
		{Name: "Data2", Train: 7282428, Valid: 1820607, Test: 1820607, Dim: 44, PosRate: 0.02, Seed: 202},
		{Name: "Data3", Train: 8000000, Valid: 2000000, Test: 2000000, Dim: 73, PosRate: 0.02, Seed: 203},
	}
	for i := range base {
		base[i].Train = scaleRows(base[i].Train, scale, 2000)
		base[i].Valid = scaleRows(base[i].Valid, scale, 500)
		base[i].Test = scaleRows(base[i].Test, scale, 500)
	}
	return base
}

// FraudSpec returns a mid-sized imbalanced fraud-detection dataset used by
// the examples: transaction-like features with ratio/product interactions
// (e.g. amount vs historical average) and a 2% fraud rate.
func FraudSpec() Spec {
	return Spec{
		Name:         "fraud",
		Train:        20000,
		Valid:        4000,
		Test:         4000,
		Dim:          30,
		Informative:  4,
		Interactions: 6,
		SignalScale:  2.5,
		PosRate:      0.02,
		Seed:         777,
	}
}

func scaleRows(n int, scale float64, floor int) int {
	if n == 0 {
		return 0
	}
	s := int(float64(n) * scale)
	if s < floor {
		s = floor
	}
	if s > n {
		s = n
	}
	return s
}
