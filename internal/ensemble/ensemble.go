// Package ensemble implements the tree-ensemble evaluators of Table III:
// RandomForest, ExtraTrees and AdaBoost (SAMME.R on shallow trees). Each
// exposes Fit / Predict over column-major data plus feature importances
// (random-forest importance is the scoring device of Fig. 3).
package ensemble

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/tree"
)

// ForestConfig configures RandomForest and ExtraTrees.
type ForestConfig struct {
	NumTrees    int
	MaxDepth    int
	MaxFeatures int // candidate features per split; <=0 means sqrt(M)
	MinLeaf     int
	Bootstrap   bool // sample rows with replacement per tree
	ExtraTrees  bool // random thresholds instead of exact scan
	Seed        int64
	Parallel    bool
}

// DefaultForestConfig mirrors scikit-learn's RandomForestClassifier defaults
// scaled for this repository's benchmark sizes.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{
		NumTrees:  50,
		MaxDepth:  12,
		MinLeaf:   1,
		Bootstrap: true,
		Parallel:  true,
	}
}

// Forest is a trained bagged ensemble.
type Forest struct {
	Trees   []*tree.Tree
	NumFeat int
	cfg     ForestConfig
}

// TrainForest fits a random forest (or ExtraTrees when cfg.ExtraTrees) on
// column-major data with binary labels.
func TrainForest(cols [][]float64, labels []float64, cfg ForestConfig) (*Forest, error) {
	if cfg.NumTrees <= 0 {
		return nil, errors.New("ensemble: NumTrees must be positive")
	}
	m := len(cols)
	if m == 0 {
		return nil, errors.New("ensemble: no features")
	}
	n := len(labels)
	if n == 0 {
		return nil, errors.New("ensemble: no rows")
	}
	maxFeat := cfg.MaxFeatures
	if maxFeat <= 0 {
		maxFeat = int(math.Sqrt(float64(m)))
		if maxFeat < 1 {
			maxFeat = 1
		}
	}

	f := &Forest{Trees: make([]*tree.Tree, cfg.NumTrees), NumFeat: m, cfg: cfg}
	seeds := make([]int64, cfg.NumTrees)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	buildOne := func(t int) error {
		treeRng := rand.New(rand.NewSource(seeds[t]))
		tCols := cols
		tLabels := labels
		if cfg.Bootstrap {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = treeRng.Intn(n)
			}
			tCols = make([][]float64, m)
			for j := 0; j < m; j++ {
				c := make([]float64, n)
				src := cols[j]
				for i, r := range idx {
					c[i] = src[r]
				}
				tCols[j] = c
			}
			tLabels = make([]float64, n)
			for i, r := range idx {
				tLabels[i] = labels[r]
			}
		}
		tc := tree.Config{
			MaxDepth:       cfg.MaxDepth,
			MinSamplesLeaf: cfg.MinLeaf,
			MaxFeatures:    maxFeat,
			RandomSplits:   cfg.ExtraTrees,
			Criterion:      tree.Gini,
			Seed:           seeds[t],
		}
		tr, err := tree.Train(tCols, tLabels, nil, tc)
		if err != nil {
			return err
		}
		f.Trees[t] = tr
		return nil
	}

	if !cfg.Parallel {
		for t := 0; t < cfg.NumTrees; t++ {
			if err := buildOne(t); err != nil {
				return nil, err
			}
		}
		return f, nil
	}

	workers := runtime.NumCPU()
	if workers > cfg.NumTrees {
		workers = cfg.NumTrees
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for t := w; t < cfg.NumTrees; t += workers {
				if err := buildOne(t); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ensemble: %w", err)
		}
	}
	return f, nil
}

// PredictRow averages member-tree probabilities for one row.
func (f *Forest) PredictRow(row []float64) float64 {
	s := 0.0
	for _, t := range f.Trees {
		s += t.PredictRow(row)
	}
	return s / float64(len(f.Trees))
}

// Predict scores column-major data.
func (f *Forest) Predict(cols [][]float64) []float64 {
	if len(cols) == 0 {
		return nil
	}
	n := len(cols[0])
	out := make([]float64, n)
	row := make([]float64, len(cols))
	for i := 0; i < n; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		out[i] = f.PredictRow(row)
	}
	return out
}

// FeatureImportance averages normalised per-tree gain importances — the
// random-forest feature importance used to score features in Fig. 3.
func (f *Forest) FeatureImportance() []float64 {
	imp := make([]float64, f.NumFeat)
	for _, t := range f.Trees {
		ti := t.FeatureImportance()
		for j := range imp {
			imp[j] += ti[j]
		}
	}
	for j := range imp {
		imp[j] /= float64(len(f.Trees))
	}
	return imp
}

// AdaBoostConfig configures the AdaBoost (SAMME.R) classifier.
type AdaBoostConfig struct {
	NumRounds int
	MaxDepth  int // base-learner depth (stumps by default)
	Seed      int64
}

// DefaultAdaBoostConfig mirrors sklearn's AdaBoostClassifier defaults
// (50 depth-1 stumps).
func DefaultAdaBoostConfig() AdaBoostConfig {
	return AdaBoostConfig{NumRounds: 50, MaxDepth: 1}
}

// AdaBoost is a trained SAMME.R boosted-stump classifier.
type AdaBoost struct {
	Trees   []*tree.Tree
	NumFeat int
}

// TrainAdaBoost fits AdaBoost with the real-valued SAMME.R update: each round
// trains a weighted tree, then reweights rows by exp(-y * 0.5 ln(p/(1-p))).
func TrainAdaBoost(cols [][]float64, labels []float64, cfg AdaBoostConfig) (*AdaBoost, error) {
	if cfg.NumRounds <= 0 {
		return nil, errors.New("ensemble: NumRounds must be positive")
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 1
	}
	n := len(labels)
	if n == 0 {
		return nil, errors.New("ensemble: no rows")
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	ab := &AdaBoost{NumFeat: len(cols)}
	const eps = 1e-7
	for r := 0; r < cfg.NumRounds; r++ {
		tc := tree.Config{
			MaxDepth:  cfg.MaxDepth,
			Criterion: tree.Gini,
			Seed:      cfg.Seed + int64(r),
		}
		tr, err := tree.Train(cols, labels, w, tc)
		if err != nil {
			return nil, err
		}
		ab.Trees = append(ab.Trees, tr)

		// Reweight: h = 0.5 ln(p/(1-p)); w *= exp(-y* h), y* in {-1,+1}.
		sum := 0.0
		row := make([]float64, len(cols))
		for i := 0; i < n; i++ {
			for j := range cols {
				row[j] = cols[j][i]
			}
			p := tr.PredictRow(row)
			if p < eps {
				p = eps
			}
			if p > 1-eps {
				p = 1 - eps
			}
			h := 0.5 * math.Log(p/(1-p))
			ystar := -1.0
			if labels[i] > 0.5 {
				ystar = 1
			}
			w[i] *= math.Exp(-ystar * h)
			sum += w[i]
		}
		if sum <= 0 {
			break
		}
		for i := range w {
			w[i] /= sum
		}
	}
	return ab, nil
}

// PredictRow returns the positive-class probability via the summed SAMME.R
// half-log-odds passed through a sigmoid.
func (ab *AdaBoost) PredictRow(row []float64) float64 {
	const eps = 1e-7
	s := 0.0
	for _, t := range ab.Trees {
		p := t.PredictRow(row)
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		s += 0.5 * math.Log(p/(1-p))
	}
	return 1 / (1 + math.Exp(-2*s/float64(len(ab.Trees))))
}

// Predict scores column-major data.
func (ab *AdaBoost) Predict(cols [][]float64) []float64 {
	if len(cols) == 0 {
		return nil
	}
	n := len(cols[0])
	out := make([]float64, n)
	row := make([]float64, len(cols))
	for i := 0; i < n; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		out[i] = ab.PredictRow(row)
	}
	return out
}
