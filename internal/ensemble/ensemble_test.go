package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func blobs(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	cols := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		labels[i] = float64(rng.Intn(2))
		shift := labels[i]*2 - 1
		cols[0][i] = rng.NormFloat64() + shift
		cols[1][i] = rng.NormFloat64() - shift
		cols[2][i] = rng.NormFloat64() // noise
	}
	return cols, labels
}

func TestForestValidation(t *testing.T) {
	cols, labels := blobs(50, 1)
	if _, err := TrainForest(cols, labels, ForestConfig{NumTrees: 0}); err == nil {
		t.Error("accepted zero trees")
	}
	if _, err := TrainForest(nil, labels, DefaultForestConfig()); err == nil {
		t.Error("accepted no features")
	}
	if _, err := TrainForest(cols, nil, DefaultForestConfig()); err == nil {
		t.Error("accepted no rows")
	}
}

func TestRandomForestLearns(t *testing.T) {
	cols, labels := blobs(1500, 2)
	f, err := TrainForest(cols, labels, DefaultForestConfig())
	if err != nil {
		t.Fatal(err)
	}
	testCols, testLabels := blobs(500, 77)
	if auc := metrics.AUC(f.Predict(testCols), testLabels); auc < 0.85 {
		t.Errorf("forest test AUC = %v, want >= 0.85", auc)
	}
}

func TestExtraTreesLearns(t *testing.T) {
	cols, labels := blobs(1500, 3)
	cfg := DefaultForestConfig()
	cfg.ExtraTrees = true
	cfg.Bootstrap = false
	f, err := TrainForest(cols, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testCols, testLabels := blobs(500, 78)
	if auc := metrics.AUC(f.Predict(testCols), testLabels); auc < 0.82 {
		t.Errorf("extra-trees test AUC = %v, want >= 0.82", auc)
	}
}

func TestForestImportanceFavoursSignal(t *testing.T) {
	cols, labels := blobs(1500, 4)
	cfg := DefaultForestConfig()
	cfg.MaxFeatures = 3 // consider all features at each split for a clean signal
	f, err := TrainForest(cols, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance()
	if imp[2] > imp[0] || imp[2] > imp[1] {
		t.Errorf("noise importance %v exceeds signal (%v, %v)", imp[2], imp[0], imp[1])
	}
	sum := imp[0] + imp[1] + imp[2]
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("importances sum to %v, want ~1", sum)
	}
}

func TestForestDeterminism(t *testing.T) {
	cols, labels := blobs(400, 5)
	cfg := DefaultForestConfig()
	cfg.NumTrees = 10
	cfg.Seed = 3
	f1, err := TrainForest(cols, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := TrainForest(cols, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1 := f1.Predict(cols)
	p2 := f2.Predict(cols)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("parallel forest not deterministic at row %d: %v vs %v", i, p1[i], p2[i])
		}
	}
}

func TestForestSerialMatchesParallel(t *testing.T) {
	cols, labels := blobs(400, 6)
	cfg := DefaultForestConfig()
	cfg.NumTrees = 8
	cfg.Seed = 4
	cfg.Parallel = true
	fp, err := TrainForest(cols, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = false
	fs, err := TrainForest(cols, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pp := fp.Predict(cols)
	ps := fs.Predict(cols)
	for i := range pp {
		if pp[i] != ps[i] {
			t.Fatalf("parallel/serial mismatch at row %d: %v vs %v", i, pp[i], ps[i])
		}
	}
}

func TestAdaBoostValidation(t *testing.T) {
	cols, labels := blobs(50, 7)
	if _, err := TrainAdaBoost(cols, labels, AdaBoostConfig{NumRounds: 0}); err == nil {
		t.Error("accepted zero rounds")
	}
	if _, err := TrainAdaBoost(cols, nil, DefaultAdaBoostConfig()); err == nil {
		t.Error("accepted no rows")
	}
}

func TestAdaBoostLearns(t *testing.T) {
	cols, labels := blobs(1500, 8)
	ab, err := TrainAdaBoost(cols, labels, DefaultAdaBoostConfig())
	if err != nil {
		t.Fatal(err)
	}
	testCols, testLabels := blobs(500, 79)
	if auc := metrics.AUC(ab.Predict(testCols), testLabels); auc < 0.85 {
		t.Errorf("AdaBoost test AUC = %v, want >= 0.85", auc)
	}
}

func TestAdaBoostOutputsProbabilities(t *testing.T) {
	cols, labels := blobs(300, 9)
	ab, err := TrainAdaBoost(cols, labels, DefaultAdaBoostConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ab.Predict(cols) {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("prediction %v outside [0,1]", p)
		}
	}
}

func TestAdaBoostBeatsSingleStump(t *testing.T) {
	// On a diagonal boundary a single stump is weak; boosting should improve.
	rng := rand.New(rand.NewSource(10))
	n := 2000
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		cols[0][i] = rng.NormFloat64()
		cols[1][i] = rng.NormFloat64()
		if cols[0][i]+cols[1][i] > 0 {
			labels[i] = 1
		}
	}
	one, err := TrainAdaBoost(cols, labels, AdaBoostConfig{NumRounds: 1, MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	fifty, err := TrainAdaBoost(cols, labels, AdaBoostConfig{NumRounds: 50, MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	auc1 := metrics.AUC(one.Predict(cols), labels)
	auc50 := metrics.AUC(fifty.Predict(cols), labels)
	if auc50 <= auc1 {
		t.Errorf("boosting did not improve: 1 round %v vs 50 rounds %v", auc1, auc50)
	}
}
