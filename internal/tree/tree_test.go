package tree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func thresholdData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		cols[0][i] = rng.Float64() * 10
		cols[1][i] = rng.NormFloat64()
		if cols[0][i] > 5 {
			labels[i] = 1
		}
	}
	return cols, labels
}

func TestValidation(t *testing.T) {
	cols, labels := thresholdData(20, 1)
	if _, err := Train(nil, labels, nil, Config{}); err == nil {
		t.Error("accepted no features")
	}
	if _, err := Train(cols, nil, nil, Config{}); err == nil {
		t.Error("accepted no rows")
	}
	if _, err := Train(cols, labels, []float64{1}, Config{}); err == nil {
		t.Error("accepted weight length mismatch")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{0}, nil, Config{}); err == nil {
		t.Error("accepted ragged columns")
	}
}

func TestLearnsThreshold(t *testing.T) {
	cols, labels := thresholdData(1000, 2)
	tr, err := Train(cols, labels, nil, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	auc := metrics.AUC(tr.Predict(cols), labels)
	if auc < 0.99 {
		t.Errorf("AUC on a simple threshold = %v, want >= 0.99", auc)
	}
	// The root split should be on feature 0 near 5.
	root := tr.Nodes[0]
	if root.Feature != 0 {
		t.Errorf("root split feature = %d, want 0", root.Feature)
	}
	if math.Abs(root.Threshold-5) > 0.5 {
		t.Errorf("root threshold = %v, want near 5", root.Threshold)
	}
}

func TestEntropyCriterion(t *testing.T) {
	cols, labels := thresholdData(500, 3)
	tr, err := Train(cols, labels, nil, Config{MaxDepth: 3, Criterion: Entropy})
	if err != nil {
		t.Fatal(err)
	}
	if auc := metrics.AUC(tr.Predict(cols), labels); auc < 0.99 {
		t.Errorf("entropy-criterion AUC = %v, want >= 0.99", auc)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	cols, labels := thresholdData(500, 4)
	tr, err := Train(cols, labels, nil, Config{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Depth-1 tree has at most 3 nodes.
	if len(tr.Nodes) > 3 {
		t.Errorf("depth-1 tree has %d nodes", len(tr.Nodes))
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	cols, labels := thresholdData(100, 5)
	tr, err := Train(cols, labels, nil, Config{MaxDepth: 10, MinSamplesLeaf: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Nodes {
		if tr.Nodes[i].IsLeaf() && tr.Nodes[i].Count < 30 {
			t.Errorf("leaf with %d rows violates MinSamplesLeaf=30", tr.Nodes[i].Count)
		}
	}
}

func TestWeightedTraining(t *testing.T) {
	// Rows with zero weight must not influence the tree: give weight only
	// to rows where x1 determines the label, zero elsewhere.
	rng := rand.New(rand.NewSource(6))
	n := 600
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	labels := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		cols[0][i] = rng.NormFloat64()
		cols[1][i] = rng.NormFloat64()
		if i < n/2 {
			// Weighted half: label follows x1.
			weights[i] = 1
			if cols[1][i] > 0 {
				labels[i] = 1
			}
		} else {
			// Unweighted half: label follows x0 (a decoy).
			weights[i] = 0
			if cols[0][i] > 0 {
				labels[i] = 1
			}
		}
	}
	tr, err := Train(cols, labels, weights, Config{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes[0].Feature != 1 {
		t.Errorf("root split on feature %d; weighted rows dictate feature 1", tr.Nodes[0].Feature)
	}
}

func TestExtraTreesRandomSplits(t *testing.T) {
	cols, labels := thresholdData(800, 7)
	tr, err := Train(cols, labels, nil, Config{MaxDepth: 6, RandomSplits: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if auc := metrics.AUC(tr.Predict(cols), labels); auc < 0.9 {
		t.Errorf("ExtraTrees-mode AUC = %v, want >= 0.9", auc)
	}
}

func TestFeatureImportanceNormalised(t *testing.T) {
	cols, labels := thresholdData(500, 8)
	tr, err := Train(cols, labels, nil, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance()
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Errorf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v, want 1", sum)
	}
	if imp[0] < imp[1] {
		t.Errorf("signal feature importance %v below noise %v", imp[0], imp[1])
	}
}

func TestSplitFeatures(t *testing.T) {
	cols, labels := thresholdData(500, 9)
	tr, err := Train(cols, labels, nil, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	feats := tr.SplitFeatures()
	if len(feats) == 0 {
		t.Fatal("no split features")
	}
	if feats[0] != 0 {
		t.Errorf("first split feature = %d, want 0", feats[0])
	}
}

func TestPureNodeStops(t *testing.T) {
	cols := [][]float64{{1, 2, 3, 4}}
	labels := []float64{1, 1, 1, 1}
	tr, err := Train(cols, labels, nil, Config{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 {
		t.Errorf("pure data grew %d nodes, want 1", len(tr.Nodes))
	}
	if p := tr.PredictRow([]float64{2}); p != 1 {
		t.Errorf("pure leaf prob = %v, want 1", p)
	}
}

func TestNaNRowsGoLeft(t *testing.T) {
	cols, labels := thresholdData(300, 10)
	tr, err := Train(cols, labels, nil, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := tr.PredictRow([]float64{math.NaN(), math.NaN()})
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Errorf("NaN prediction = %v, want a probability", p)
	}
}
