// Package tree implements a CART-style decision tree for binary
// classification. It is the building block for the DT, RF, ET and AdaBoost
// evaluators of Table III and for the FCTree baseline. Splits are found with
// an exact greedy scan over sorted feature values; impurity is Gini or
// entropy. Trees support per-row sample weights (required by AdaBoost) and
// randomised split candidates (required by ExtraTrees).
package tree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Criterion selects the impurity measure.
type Criterion int

const (
	// Gini impurity: 2 p (1-p).
	Gini Criterion = iota
	// Entropy impurity: -p ln p - (1-p) ln (1-p).
	Entropy
)

// Config holds tree hyper-parameters. Zero values get sensible defaults via
// normalise.
type Config struct {
	MaxDepth        int       // <=0 means unlimited (capped at 64)
	MinSamplesSplit int       // minimum rows to consider a split (default 2)
	MinSamplesLeaf  int       // minimum rows per leaf (default 1)
	Criterion       Criterion // impurity measure
	MaxFeatures     int       // candidate features per split; <=0 means all
	RandomSplits    bool      // ExtraTrees mode: one random threshold per feature
	Seed            int64
}

func (c Config) normalise() Config {
	if c.MaxDepth <= 0 || c.MaxDepth > 64 {
		c.MaxDepth = 64
	}
	if c.MinSamplesSplit < 2 {
		c.MinSamplesSplit = 2
	}
	if c.MinSamplesLeaf < 1 {
		c.MinSamplesLeaf = 1
	}
	return c
}

// Node of the flat tree array; leaves have Feature == -1.
type Node struct {
	Feature   int
	Threshold float64 // left when value <= Threshold
	Left      int
	Right     int
	Prob      float64 // leaf: weighted positive-class probability
	Gain      float64 // impurity decrease of the split (weighted)
	Count     int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Feature < 0 }

// Tree is a trained decision tree.
type Tree struct {
	Nodes   []Node
	NumFeat int
	cfg     Config
}

// Train fits a tree on column-major data with binary labels. weights may be
// nil (uniform). The data is not retained.
func Train(cols [][]float64, labels []float64, weights []float64, cfg Config) (*Tree, error) {
	cfg = cfg.normalise()
	m := len(cols)
	if m == 0 {
		return nil, errors.New("tree: no features")
	}
	n := len(labels)
	if n == 0 {
		return nil, errors.New("tree: no rows")
	}
	for j := range cols {
		if len(cols[j]) != n {
			return nil, fmt.Errorf("tree: column %d has %d rows, want %d", j, len(cols[j]), n)
		}
	}
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
	} else if len(weights) != n {
		return nil, fmt.Errorf("tree: %d weights for %d rows", len(weights), n)
	}

	t := &Tree{NumFeat: m, cfg: cfg}
	b := &builder{
		cols:    cols,
		labels:  labels,
		weights: weights,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	t.Nodes = append(t.Nodes, Node{Feature: -1, Count: n})
	b.grow(t, 0, rows, 0)
	return t, nil
}

type builder struct {
	cols    [][]float64
	labels  []float64
	weights []float64
	cfg     Config
	rng     *rand.Rand
}

func (b *builder) impurity(posW, totW float64) float64 {
	if totW <= 0 {
		return 0
	}
	p := posW / totW
	switch b.cfg.Criterion {
	case Entropy:
		if p <= 0 || p >= 1 {
			return 0
		}
		return -p*math.Log(p) - (1-p)*math.Log(1-p)
	default:
		return 2 * p * (1 - p)
	}
}

type split struct {
	feature   int
	threshold float64
	gain      float64
}

func (b *builder) grow(t *Tree, nodeIdx int, rows []int, depth int) {
	var posW, totW float64
	for _, r := range rows {
		w := b.weights[r]
		totW += w
		if b.labels[r] > 0.5 {
			posW += w
		}
	}
	prob := 0.5
	if totW > 0 {
		prob = posW / totW
	}

	if depth >= b.cfg.MaxDepth || len(rows) < b.cfg.MinSamplesSplit || posW == 0 || posW == totW {
		t.Nodes[nodeIdx].Prob = prob
		return
	}

	best := b.findSplit(rows, posW, totW)
	if best.feature < 0 {
		t.Nodes[nodeIdx].Prob = prob
		return
	}

	col := b.cols[best.feature]
	var left, right []int
	for _, r := range rows {
		v := col[r]
		if math.IsNaN(v) || v <= best.threshold {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < b.cfg.MinSamplesLeaf || len(right) < b.cfg.MinSamplesLeaf {
		t.Nodes[nodeIdx].Prob = prob
		return
	}

	li := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{Feature: -1, Count: len(left)})
	ri := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{Feature: -1, Count: len(right)})
	nd := &t.Nodes[nodeIdx]
	nd.Feature = best.feature
	nd.Threshold = best.threshold
	nd.Gain = best.gain
	nd.Left = li
	nd.Right = ri

	b.grow(t, li, left, depth+1)
	b.grow(t, ri, right, depth+1)
}

func (b *builder) candidateFeatures() []int {
	m := len(b.cols)
	k := b.cfg.MaxFeatures
	if k <= 0 || k >= m {
		out := make([]int, m)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := b.rng.Perm(m)
	return perm[:k]
}

func (b *builder) findSplit(rows []int, posW, totW float64) split {
	parentImp := b.impurity(posW, totW)
	best := split{feature: -1}
	bestGain := 1e-12

	type pair struct {
		v, y, w float64
	}
	buf := make([]pair, len(rows))

	for _, j := range b.candidateFeatures() {
		col := b.cols[j]
		if b.cfg.RandomSplits {
			// ExtraTrees: a single uniform-random threshold in [min,max).
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, r := range rows {
				v := col[r]
				if math.IsNaN(v) {
					continue
				}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if !(hi > lo) {
				continue
			}
			thr := lo + b.rng.Float64()*(hi-lo)
			var lp, lt float64
			ln, rn := 0, 0
			for _, r := range rows {
				v := col[r]
				w := b.weights[r]
				if math.IsNaN(v) || v <= thr {
					lt += w
					ln++
					if b.labels[r] > 0.5 {
						lp += w
					}
				} else {
					rn++
				}
			}
			if ln < b.cfg.MinSamplesLeaf || rn < b.cfg.MinSamplesLeaf {
				continue
			}
			rp := posW - lp
			rt := totW - lt
			gain := parentImp - (lt/totW)*b.impurity(lp, lt) - (rt/totW)*b.impurity(rp, rt)
			if gain > bestGain {
				bestGain = gain
				best = split{feature: j, threshold: thr, gain: gain * totW}
			}
			continue
		}

		// Exact scan over sorted values.
		k := 0
		for _, r := range rows {
			v := col[r]
			if math.IsNaN(v) {
				continue
			}
			buf[k] = pair{v: v, y: b.labels[r], w: b.weights[r]}
			k++
		}
		if k < 2 {
			continue
		}
		part := buf[:k]
		sort.Slice(part, func(a, c int) bool { return part[a].v < part[c].v })

		var lp, lt float64
		for i := 0; i+1 < k; i++ {
			lt += part[i].w
			if part[i].y > 0.5 {
				lp += part[i].w
			}
			if part[i].v == part[i+1].v {
				continue
			}
			if i+1 < b.cfg.MinSamplesLeaf || k-i-1 < b.cfg.MinSamplesLeaf {
				continue
			}
			rp := posW - lp
			rt := totW - lt
			gain := parentImp - (lt/totW)*b.impurity(lp, lt) - (rt/totW)*b.impurity(rp, rt)
			if gain > bestGain {
				bestGain = gain
				best = split{feature: j, threshold: part[i].v, gain: gain * totW}
			}
		}
	}
	return best
}

// PredictRow returns the positive-class probability for one row.
func (t *Tree) PredictRow(row []float64) float64 {
	i := 0
	for {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			return n.Prob
		}
		v := row[n.Feature]
		if math.IsNaN(v) || v <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Predict scores column-major data.
func (t *Tree) Predict(cols [][]float64) []float64 {
	if len(cols) == 0 {
		return nil
	}
	n := len(cols[0])
	out := make([]float64, n)
	row := make([]float64, len(cols))
	for i := 0; i < n; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		out[i] = t.PredictRow(row)
	}
	return out
}

// FeatureImportance returns total split gain per feature, normalised to sum
// to 1 when any split exists.
func (t *Tree) FeatureImportance() []float64 {
	imp := make([]float64, t.NumFeat)
	total := 0.0
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			continue
		}
		imp[n.Feature] += n.Gain
		total += n.Gain
	}
	if total > 0 {
		for j := range imp {
			imp[j] /= total
		}
	}
	return imp
}

// SplitFeatures returns the distinct features used anywhere in the tree, in
// first-use (breadth) order of the node array.
func (t *Tree) SplitFeatures() []int {
	seen := make(map[int]bool)
	var out []int
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.IsLeaf() || seen[n.Feature] {
			continue
		}
		seen[n.Feature] = true
		out = append(out, n.Feature)
	}
	return out
}
