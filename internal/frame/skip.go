package frame

// ColStats summarises one column of one chunk for stat-based pass planning:
// row and NaN counts plus the min/max over the chunk's non-NaN values. Known
// reports whether Min/Max are trustworthy bounds — sources set it false for
// columns whose stats are unavailable or not defined over the values the
// chunk serves (then only the counts may be used). For an all-NaN (or empty)
// chunk column Min/Max are NaN and Known may still be true: the counts alone
// fully describe such a block.
type ColStats struct {
	Rows     int
	NaNs     int
	Min, Max float64
	Known    bool
}

// SkippableSource is a ChunkSource that knows its chunk boundaries up front
// and carries per-chunk column statistics, so a multi-pass consumer can plan
// partial passes: chunks proven irrelevant by their stats are skipped — not
// read, not decoded — on the next pass. The colstore readers implement it
// (block stats come straight from the file footer); FrameChunks does not,
// in-memory passes being too cheap to plan.
//
// ChunkStats(i) describes chunk i's feature columns in Names() order; a nil
// result means no stats are available for that chunk (it can then never be
// skipped). SetSkip installs the pass plan: chunks at true indices are
// omitted from subsequent passes, with surviving chunks keeping their full-
// pass Index and Start. SetSkip(nil) restores full passes. SetSkip must not
// be called while a pass is in flight.
type SkippableSource interface {
	ChunkSource
	NumChunks() int
	ChunkStats(i int) []ColStats
	SetSkip(skip []bool)
}
