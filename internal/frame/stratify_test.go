package frame

import (
	"math"
	"math/rand"
	"testing"
)

func imbalanced(n int, rate float64, seed int64) *Frame {
	rng := rand.New(rand.NewSource(seed))
	f := NewWithShape(n, 3)
	for j := 0; j < 3; j++ {
		for i := 0; i < n; i++ {
			f.Columns[j].Values[i] = rng.NormFloat64()
		}
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < rate {
			f.Label[i] = 1
		}
	}
	return f
}

func TestStratifiedSplitPreservesRate(t *testing.T) {
	f := imbalanced(10000, 0.02, 1)
	rng := rand.New(rand.NewSource(2))
	tr, va, te, err := f.StratifiedSplit(0.6, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := f.PositiveRate()
	for name, part := range map[string]*Frame{"train": tr, "valid": va, "test": te} {
		got := part.PositiveRate()
		if math.Abs(got-base) > 0.01 {
			t.Errorf("%s positive rate %v deviates from %v", name, got, base)
		}
	}
	if tr.NumRows()+va.NumRows()+te.NumRows() != f.NumRows() {
		t.Errorf("split sizes do not sum: %d+%d+%d != %d",
			tr.NumRows(), va.NumRows(), te.NumRows(), f.NumRows())
	}
}

func TestStratifiedSplitNoValid(t *testing.T) {
	f := imbalanced(1000, 0.1, 3)
	rng := rand.New(rand.NewSource(4))
	tr, va, te, err := f.StratifiedSplit(0.8, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if va.NumRows() != 0 {
		t.Errorf("valid rows = %d, want 0", va.NumRows())
	}
	if tr.NumRows() == 0 || te.NumRows() == 0 {
		t.Error("empty train or test")
	}
}

func TestStratifiedSplitValidation(t *testing.T) {
	f := imbalanced(100, 0.1, 5)
	rng := rand.New(rand.NewSource(6))
	if _, _, _, err := f.StratifiedSplit(0.9, 0.2, rng); err == nil {
		t.Error("accepted fractions summing over 1")
	}
	if _, _, _, err := f.StratifiedSplit(0, 0.2, rng); err == nil {
		t.Error("accepted zero train fraction")
	}
	unlabelled := &Frame{Columns: f.Columns}
	if _, _, _, err := unlabelled.StratifiedSplit(0.6, 0.2, rng); err == nil {
		t.Error("accepted unlabelled frame")
	}
}

func TestStratifiedSplitTinyPositives(t *testing.T) {
	// With only 5 positives, every split must still be constructible.
	f := imbalanced(1000, 0.005, 7)
	rng := rand.New(rand.NewSource(8))
	tr, _, te, err := f.StratifiedSplit(0.7, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Positives should mostly land in train (floor effects allowed).
	if tr.PositiveRate() == 0 && te.PositiveRate() == 0 {
		t.Error("all positives lost in splitting")
	}
}

func TestDownsampleNegatives(t *testing.T) {
	f := imbalanced(10000, 0.02, 9)
	rng := rand.New(rand.NewSource(10))
	ds, err := f.DownsampleNegatives(5, rng)
	if err != nil {
		t.Fatal(err)
	}
	var pos, neg int
	for _, y := range ds.Label {
		if y > 0.5 {
			pos++
		} else {
			neg++
		}
	}
	var origPos int
	for _, y := range f.Label {
		if y > 0.5 {
			origPos++
		}
	}
	if pos != origPos {
		t.Errorf("positives lost: %d -> %d", origPos, pos)
	}
	if neg != 5*pos {
		t.Errorf("negatives = %d, want %d", neg, 5*pos)
	}
}

func TestDownsampleNegativesKeepAll(t *testing.T) {
	f := imbalanced(500, 0.4, 11)
	rng := rand.New(rand.NewSource(12))
	ds, err := f.DownsampleNegatives(0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != f.NumRows() {
		t.Errorf("ratio<=0 should keep all rows: %d vs %d", ds.NumRows(), f.NumRows())
	}
	// Ratio larger than available negatives also keeps all.
	ds2, err := f.DownsampleNegatives(100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.NumRows() != f.NumRows() {
		t.Errorf("oversized ratio should keep all rows: %d vs %d", ds2.NumRows(), f.NumRows())
	}
}

func TestDownsampleRequiresLabels(t *testing.T) {
	f := &Frame{Columns: []Column{{Name: "a", Values: []float64{1}}}}
	if _, err := f.DownsampleNegatives(2, rand.New(rand.NewSource(1))); err == nil {
		t.Error("accepted unlabelled frame")
	}
}
