package frame

import (
	"io"
	"sync"
)

// StableSource marks a ChunkSource whose chunk value slices stay valid
// across Next and Reset calls — only the Chunk struct and its Cols header
// slice may be reused. FrameChunks is stable (its chunks are views of a
// resident frame); CSVChunks is not (it reuses column buffers). Prefetch
// skips copying values for stable sources.
type StableSource interface {
	StableChunks() bool
}

// Prefetch wraps a ChunkSource with a bounded background reader: while the
// consumer processes one chunk, the next depth chunks are already being read
// and decoded. Each chunk Next returns is an independent lease — valid until
// Recycle, regardless of later Next or Reset calls — which also makes
// Prefetch the substrate for partition-parallel consumers that hold several
// chunks in flight at once (the sharded fit's worker pool).
//
// For unstable sources values are copied into recycled lease buffers; for
// StableSource sources only the chunk header is copied. Reset restarts the
// stream; Close stops the background reader and must be called when done
// (Reset and Close both return only after the reader goroutine has exited,
// so Prefetch never leaks goroutines). Errors from the wrapped source,
// including io.EOF, are delivered in stream order through Next and stick
// until the following Reset.
//
// Next, Recycle, Reset and Close may be called from different goroutines
// but not concurrently with each other, except Recycle, which is safe to
// call concurrently with everything (workers return leases while the
// coordinator reads ahead).
type Prefetch struct {
	src    ChunkSource
	depth  int
	stable bool

	ch     chan prefetched
	quit   chan struct{}
	wg     sync.WaitGroup
	sticky error

	free chan *Chunk
}

type prefetched struct {
	c   *Chunk
	err error
}

// NewPrefetch wraps src with a read-ahead of depth chunks (minimum 1) and a
// lease pool sized for leases chunks concurrently held by the consumer.
// The reader starts on the first Next or Reset.
func NewPrefetch(src ChunkSource, depth, leases int) *Prefetch {
	if depth < 1 {
		depth = 1
	}
	if leases < 1 {
		leases = 1
	}
	stable := false
	if ss, ok := src.(StableSource); ok {
		stable = ss.StableChunks()
	}
	return &Prefetch{
		src:    src,
		depth:  depth,
		stable: stable,
		free:   make(chan *Chunk, depth+leases+2),
	}
}

// Names implements ChunkSource.
func (p *Prefetch) Names() []string { return p.src.Names() }

// NumCols implements ChunkSource.
func (p *Prefetch) NumCols() int { return p.src.NumCols() }

// Reset implements ChunkSource: it stops the current reader, rewinds the
// wrapped source and starts reading ahead again.
func (p *Prefetch) Reset() error {
	p.stop()
	if err := p.src.Reset(); err != nil {
		p.sticky = err
		return err
	}
	p.start()
	return nil
}

// Next implements ChunkSource. The returned chunk stays valid until it is
// passed to Recycle.
func (p *Prefetch) Next() (*Chunk, error) {
	if p.sticky != nil {
		return nil, p.sticky
	}
	if p.ch == nil {
		if err := p.Reset(); err != nil {
			return nil, err
		}
	}
	pf := <-p.ch
	if pf.err != nil {
		p.sticky = pf.err
		return nil, pf.err
	}
	return pf.c, nil
}

// Recycle returns a chunk obtained from Next to the lease pool. Chunks that
// are never recycled are simply collected by the GC; recycling is what keeps
// steady-state reads allocation-free. Safe for concurrent use.
func (p *Prefetch) Recycle(c *Chunk) {
	if c == nil {
		return
	}
	select {
	case p.free <- c:
	default:
	}
}

// Close stops the background reader and waits for it to exit. The wrapped
// source is not closed. Close is idempotent, and the Prefetch can be
// restarted afterwards with Reset.
func (p *Prefetch) Close() error {
	p.stop()
	return nil
}

func (p *Prefetch) start() {
	p.sticky = nil
	p.ch = make(chan prefetched, p.depth)
	p.quit = make(chan struct{})
	p.wg.Add(1)
	go p.read(p.ch, p.quit)
}

// stop shuts down the reader (if running) and drains undelivered chunks
// back into the lease pool.
func (p *Prefetch) stop() {
	if p.quit == nil {
		return
	}
	close(p.quit)
	p.wg.Wait()
	for {
		select {
		case pf := <-p.ch:
			p.Recycle(pf.c)
		default:
			p.ch, p.quit = nil, nil
			return
		}
	}
}

// read is the background reader: it pulls chunks from the wrapped source,
// leases them, and sends them (or the terminal error) down ch until the
// stream ends or quit closes.
func (p *Prefetch) read(ch chan prefetched, quit chan struct{}) {
	defer p.wg.Done()
	for {
		select {
		case <-quit:
			return
		default:
		}
		c, err := p.src.Next()
		out := prefetched{err: err}
		if err == nil {
			out = prefetched{c: p.lease(c)}
		}
		select {
		case ch <- out:
			if err != nil {
				return // io.EOF or a read error ends the pass
			}
		case <-quit:
			p.Recycle(out.c)
			return
		}
	}
}

// lease turns a source-owned chunk into an independently valid one, reusing
// a recycled lease when available.
func (p *Prefetch) lease(c *Chunk) *Chunk {
	var l *Chunk
	select {
	case l = <-p.free:
	default:
		l = &Chunk{}
	}
	l.Index, l.Start = c.Index, c.Start
	if cap(l.Cols) < len(c.Cols) {
		l.Cols = make([][]float64, len(c.Cols))
	} else {
		l.Cols = l.Cols[:len(c.Cols)]
	}
	if p.stable {
		// Values are stable; only the header slices need copying. A lease
		// never switches modes, so l's slots hold no copy buffers to keep.
		copy(l.Cols, c.Cols)
		l.Label = c.Label
		return l
	}
	for j, col := range c.Cols {
		l.Cols[j] = append(l.Cols[j][:0], col...)
	}
	if c.Label != nil {
		l.Label = append(l.Label[:0], c.Label...)
	} else {
		l.Label = nil
	}
	return l
}

var _ ChunkSource = (*Prefetch)(nil)
var _ io.Closer = (*Prefetch)(nil)
