package frame

import (
	"errors"
	"fmt"
	"io"
)

// Chunk is one row-range of a chunked dataset: a columnar block of feature
// values plus the matching label slice. Chunks arrive in row order; Start is
// the global index of the chunk's first row.
type Chunk struct {
	Index int // 0-based chunk (partition) ordinal
	Start int // global row index of the first row
	Cols  [][]float64
	Label []float64
}

// NumRows returns the chunk's row count.
func (c *Chunk) NumRows() int {
	if len(c.Cols) == 0 {
		return len(c.Label)
	}
	return len(c.Cols[0])
}

// ChunkSource yields a labelled dataset as an ordered sequence of row
// chunks, re-iterable from the top via Reset. It is the substrate of the
// out-of-core fit path: sources larger than memory stream from disk chunk by
// chunk, and the shard coordinator makes repeated passes without ever
// holding more than one chunk of raw values per pass.
//
// A Chunk returned by Next is only valid until the following Next or Reset
// call — implementations may reuse buffers. Next returns io.EOF after the
// last chunk.
type ChunkSource interface {
	// Names returns the feature column names, available before iteration.
	Names() []string
	// NumCols returns the feature column count.
	NumCols() int
	// Reset rewinds the source for another full pass.
	Reset() error
	// Next returns the next chunk, or io.EOF when the pass is complete.
	Next() (*Chunk, error)
}

// FrameChunks adapts an in-memory frame to the ChunkSource interface,
// yielding zero-copy views of chunkRows rows each. It is how the sharded
// fit engine runs over data that does fit in memory (benchmarks, equality
// tests, callers that want partition parallelism without files).
type FrameChunks struct {
	f         *Frame
	chunkRows int
	pos       int
	idx       int
	chunk     Chunk
}

// NewFrameChunks wraps a frame as a chunk source; chunkRows <= 0 yields one
// chunk holding the whole frame.
func NewFrameChunks(f *Frame, chunkRows int) *FrameChunks {
	if chunkRows <= 0 {
		chunkRows = f.NumRows()
		if chunkRows == 0 {
			chunkRows = 1
		}
	}
	return &FrameChunks{f: f, chunkRows: chunkRows, chunk: Chunk{Cols: make([][]float64, f.NumCols())}}
}

// Names implements ChunkSource.
func (s *FrameChunks) Names() []string { return s.f.Names() }

// NumCols implements ChunkSource.
func (s *FrameChunks) NumCols() int { return s.f.NumCols() }

// Reset implements ChunkSource.
func (s *FrameChunks) Reset() error {
	s.pos, s.idx = 0, 0
	return nil
}

// Next implements ChunkSource, returning column views (no copies).
func (s *FrameChunks) Next() (*Chunk, error) {
	n := s.f.NumRows()
	if s.pos >= n {
		return nil, io.EOF
	}
	hi := s.pos + s.chunkRows
	if hi > n {
		hi = n
	}
	c := &s.chunk
	c.Index = s.idx
	c.Start = s.pos
	for j := range s.f.Columns {
		c.Cols[j] = s.f.Columns[j].Values[s.pos:hi]
	}
	if s.f.Label != nil {
		c.Label = s.f.Label[s.pos:hi]
	} else {
		c.Label = nil
	}
	s.pos = hi
	s.idx++
	return c, nil
}

// StableChunks implements StableSource: chunk values are views of the
// resident frame and stay valid across Next and Reset (only the Chunk
// struct and its Cols header slice are reused).
func (s *FrameChunks) StableChunks() bool { return true }

// NumChunks returns how many chunks a full pass yields.
func (s *FrameChunks) NumChunks() int {
	n := s.f.NumRows()
	if n == 0 {
		return 0
	}
	return (n + s.chunkRows - 1) / s.chunkRows
}

// ReadAll drains a chunk source into one in-memory frame (copying), mostly
// for tests and small inputs. The source is Reset first.
func ReadAll(src ChunkSource) (*Frame, error) {
	if err := src.Reset(); err != nil {
		return nil, err
	}
	names := src.Names()
	f := &Frame{Columns: make([]Column, len(names))}
	for j, name := range names {
		f.Columns[j] = Column{Name: name}
	}
	sawLabel := false
	for {
		c, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(c.Cols) != len(names) {
			return nil, fmt.Errorf("frame: chunk %d has %d columns, want %d", c.Index, len(c.Cols), len(names))
		}
		for j := range c.Cols {
			f.Columns[j].Values = append(f.Columns[j].Values, c.Cols[j]...)
		}
		if c.Label != nil {
			sawLabel = true
			f.Label = append(f.Label, c.Label...)
		}
	}
	if sawLabel && len(f.Label) != f.NumRows() {
		return nil, fmt.Errorf("frame: chunked label covers %d of %d rows", len(f.Label), f.NumRows())
	}
	return f, f.Validate()
}
