package frame

import "math"

// FNV-1a parameters (64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashSeed returns the FNV-1a initial state, for use with HashFloats /
// HashString when chaining several values into one hash.
func HashSeed() uint64 { return fnvOffset64 }

// hashFloat64 folds one value's bit pattern into the running FNV-1a hash.
func hashFloat64(h uint64, v float64) uint64 {
	bits := math.Float64bits(v)
	for s := 0; s < 64; s += 8 {
		h ^= (bits >> s) & 0xff
		h *= fnvPrime64
	}
	return h
}

// HashFloats folds the bit patterns of vals into the running FNV-1a hash h.
// NaNs hash by their bit pattern, so two rows that are bitwise identical —
// including missing values — hash identically.
func HashFloats(h uint64, vals []float64) uint64 {
	for _, v := range vals {
		h = hashFloat64(h, v)
	}
	return h
}

// HashString folds s into the running FNV-1a hash h. When chaining several
// variable-length strings, follow each with HashUint64 of its length so
// distinct splits of the same bytes cannot collide.
func HashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// HashUint64 folds v into the running FNV-1a hash h. Its main use is
// length-prefixing chained variable-length values.
func HashUint64(h, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (v >> s) & 0xff
		h *= fnvPrime64
	}
	return h
}

// HashRow hashes one dense row: a general-purpose row identity for
// deduplication and cache keying. Identical raw rows always collide and the
// 64-bit space makes accidental collisions negligible, but callers that
// cannot tolerate them should still compare rows on hit (RowsEqual). The
// serving feature cache builds its keys from the same primitives, prefixed
// with the pipeline identity (see internal/serve).
func HashRow(row []float64) uint64 { return HashFloats(fnvOffset64, row) }

// RowHash hashes row i of the frame without materialising it; it equals
// HashRow of the materialised row.
func (f *Frame) RowHash(i int) uint64 {
	h := uint64(fnvOffset64)
	for j := range f.Columns {
		h = hashFloat64(h, f.Columns[j].Values[i])
	}
	return h
}

// RowsEqual reports whether two rows are bitwise identical, treating NaN as
// equal to NaN. It is the collision check paired with HashRow.
func RowsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
