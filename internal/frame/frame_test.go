package frame

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func sample() *Frame {
	return &Frame{
		Columns: []Column{
			{Name: "a", Values: []float64{1, 2, 3, 4}},
			{Name: "b", Values: []float64{10, 20, 30, 40}},
		},
		Label: []float64{0, 1, 0, 1},
	}
}

func TestShapeAndValidate(t *testing.T) {
	f := sample()
	if f.NumRows() != 4 || f.NumCols() != 2 {
		t.Fatalf("shape = (%d,%d), want (4,2)", f.NumRows(), f.NumCols())
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	f.Columns[1].Values = f.Columns[1].Values[:3]
	if err := f.Validate(); err == nil {
		t.Error("Validate accepted ragged columns")
	}
}

func TestValidateDuplicateNames(t *testing.T) {
	f := &Frame{Columns: []Column{
		{Name: "a", Values: []float64{1}},
		{Name: "a", Values: []float64{2}},
	}}
	if err := f.Validate(); err == nil {
		t.Error("Validate accepted duplicate column names")
	}
}

func TestValidateEmptyName(t *testing.T) {
	f := &Frame{Columns: []Column{{Name: "", Values: []float64{1}}}}
	if err := f.Validate(); err == nil {
		t.Error("Validate accepted empty column name")
	}
}

func TestColAccess(t *testing.T) {
	f := sample()
	if v, ok := f.ColByName("b"); !ok || v[2] != 30 {
		t.Errorf("ColByName(b) = %v, %v", v, ok)
	}
	if _, ok := f.ColByName("zzz"); ok {
		t.Error("ColByName(zzz) found a column")
	}
	if f.ColIndex("a") != 0 || f.ColIndex("zzz") != -1 {
		t.Error("ColIndex wrong")
	}
	row := f.Row(1, nil)
	if row[0] != 2 || row[1] != 20 {
		t.Errorf("Row(1) = %v", row)
	}
}

func TestMatrix(t *testing.T) {
	f := sample()
	m := f.Matrix()
	if len(m) != 4 || m[3][1] != 40 {
		t.Errorf("Matrix = %v", m)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := sample()
	c := f.Clone()
	c.Columns[0].Values[0] = 999
	c.Label[0] = 999
	if f.Columns[0].Values[0] == 999 || f.Label[0] == 999 {
		t.Error("Clone shares storage with the original")
	}
}

func TestSelect(t *testing.T) {
	f := sample()
	s, err := f.Select([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCols() != 1 || s.Columns[0].Name != "b" {
		t.Errorf("Select = %v", s.Names())
	}
	if _, err := f.Select([]string{"nope"}); err == nil {
		t.Error("Select accepted unknown column")
	}
}

func TestSubset(t *testing.T) {
	f := sample()
	s := f.Subset([]int{3, 0})
	if s.NumRows() != 2 || s.Columns[0].Values[0] != 4 || s.Label[0] != 1 {
		t.Errorf("Subset wrong: %+v", s)
	}
}

func TestSplit(t *testing.T) {
	f := sample()
	a, b, c, err := f.Split(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 2 || b.NumRows() != 1 || c.NumRows() != 1 {
		t.Errorf("split sizes = %d,%d,%d", a.NumRows(), b.NumRows(), c.NumRows())
	}
	if _, _, _, err := f.Split(3, 3); err == nil {
		t.Error("Split accepted oversize partition")
	}
}

func TestShuffleDeterministicAndAligned(t *testing.T) {
	f := sample()
	// Track (a, label) pairing: a=1,3 have label 0; a=2,4 have label 1.
	f.Shuffle(rand.New(rand.NewSource(42)))
	for i := 0; i < f.NumRows(); i++ {
		a := f.Columns[0].Values[i]
		want := 0.0
		if a == 2 || a == 4 {
			want = 1
		}
		if f.Label[i] != want {
			t.Fatalf("row %d: label misaligned after shuffle (a=%v label=%v)", i, a, f.Label[i])
		}
	}
}

func TestPositiveRate(t *testing.T) {
	f := sample()
	if got := f.PositiveRate(); got != 0.5 {
		t.Errorf("PositiveRate = %v, want 0.5", got)
	}
	empty := &Frame{}
	if got := empty.PositiveRate(); got != 0 {
		t.Errorf("empty PositiveRate = %v, want 0", got)
	}
}

func TestStats(t *testing.T) {
	f := &Frame{Columns: []Column{{Name: "a", Values: []float64{1, 2, 3, math.NaN()}}}}
	st := f.Stats(0)
	if st.Min != 1 || st.Max != 3 || st.NaNCount != 1 {
		t.Errorf("Stats = %+v", st)
	}
	if math.Abs(st.Mean-2) > 1e-12 {
		t.Errorf("Mean = %v, want 2", st.Mean)
	}
}

func TestSortedUnique(t *testing.T) {
	f := &Frame{Columns: []Column{{Name: "a", Values: []float64{3, 1, 2, 2, math.NaN(), 1}}}}
	got := f.SortedUnique(0)
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("SortedUnique = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SortedUnique[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAppend(t *testing.T) {
	f := sample()
	g := sample()
	if err := f.Append(g); err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 8 || len(f.Label) != 8 {
		t.Errorf("after append rows = %d labels = %d", f.NumRows(), len(f.Label))
	}
	bad := &Frame{Columns: []Column{{Name: "x", Values: []float64{1}}}}
	if err := f.Append(bad); err == nil {
		t.Error("Append accepted mismatched columns")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := sample()
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadCSV(&buf, "label")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != f.NumRows() || g.NumCols() != f.NumCols() {
		t.Fatalf("round-trip shape = (%d,%d)", g.NumRows(), g.NumCols())
	}
	for j := range f.Columns {
		for i := range f.Columns[j].Values {
			if g.Columns[j].Values[i] != f.Columns[j].Values[i] {
				t.Fatalf("round-trip cell (%d,%d) = %v, want %v",
					i, j, g.Columns[j].Values[i], f.Columns[j].Values[i])
			}
		}
	}
	for i := range f.Label {
		if g.Label[i] != f.Label[i] {
			t.Fatalf("round-trip label %d = %v, want %v", i, g.Label[i], f.Label[i])
		}
	}
}

func TestReadCSVNoLabel(t *testing.T) {
	in := "a,b\n1,2\n3,4\n"
	f, err := ReadCSV(strings.NewReader(in), "")
	if err != nil {
		t.Fatal(err)
	}
	if f.Label != nil {
		t.Error("unlabelled read produced a label")
	}
	if f.NumRows() != 2 || f.NumCols() != 2 {
		t.Errorf("shape = (%d,%d)", f.NumRows(), f.NumCols())
	}
}

func TestReadCSVNonNumericBecomesNaN(t *testing.T) {
	in := "a,y\nfoo,1\n2,0\n"
	f, err := ReadCSV(strings.NewReader(in), "y")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(f.Columns[0].Values[0]) {
		t.Errorf("non-numeric cell = %v, want NaN", f.Columns[0].Values[0])
	}
	if f.Columns[0].Values[1] != 2 {
		t.Errorf("numeric cell = %v, want 2", f.Columns[0].Values[1])
	}
}

func TestReadCSVMissingLabelColumn(t *testing.T) {
	in := "a,b\n1,2\n"
	if _, err := ReadCSV(strings.NewReader(in), "zzz"); err == nil {
		t.Error("ReadCSV accepted a missing label column")
	}
}

func TestNewWithShape(t *testing.T) {
	f := NewWithShape(3, 2)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 3 || f.NumCols() != 2 {
		t.Errorf("shape = (%d,%d)", f.NumRows(), f.NumCols())
	}
	if f.Columns[1].Name != "x1" {
		t.Errorf("column name = %q, want x1", f.Columns[1].Name)
	}
}
