package frame

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testFrame(rows, cols int, seed int64) *Frame {
	rng := rand.New(rand.NewSource(seed))
	f := NewWithShape(rows, cols)
	for j := range f.Columns {
		for i := range f.Columns[j].Values {
			f.Columns[j].Values[i] = rng.NormFloat64()
		}
	}
	for i := range f.Label {
		if rng.Float64() < 0.4 {
			f.Label[i] = 1
		}
	}
	return f
}

func TestFrameChunksRoundTrip(t *testing.T) {
	f := testFrame(1001, 3, 1)
	src := NewFrameChunks(f, 100)
	if got := src.NumChunks(); got != 11 {
		t.Fatalf("NumChunks: got %d want 11", got)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := ReadAll(src)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != f.NumRows() || got.NumCols() != f.NumCols() {
			t.Fatalf("pass %d: shape %dx%d want %dx%d", pass, got.NumRows(), got.NumCols(), f.NumRows(), f.NumCols())
		}
		for j := range f.Columns {
			for i, v := range f.Columns[j].Values {
				if got.Columns[j].Values[i] != v {
					t.Fatalf("pass %d: col %d row %d mismatch", pass, j, i)
				}
			}
		}
		for i, y := range f.Label {
			if got.Label[i] != y {
				t.Fatalf("pass %d: label %d mismatch", pass, i)
			}
		}
	}
}

func TestFrameChunksIndices(t *testing.T) {
	f := testFrame(250, 2, 2)
	src := NewFrameChunks(f, 100)
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	wantStarts := []int{0, 100, 200}
	wantRows := []int{100, 100, 50}
	for k := 0; ; k++ {
		c, err := src.Next()
		if errors.Is(err, io.EOF) {
			if k != 3 {
				t.Fatalf("got %d chunks, want 3", k)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if c.Index != k || c.Start != wantStarts[k] || c.NumRows() != wantRows[k] {
			t.Fatalf("chunk %d: index=%d start=%d rows=%d", k, c.Index, c.Start, c.NumRows())
		}
	}
}

func TestCSVChunksMatchesReadCSV(t *testing.T) {
	f := testFrame(777, 4, 3)
	f.Columns[2].Values[13] = math.NaN() // exercise missing values
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := f.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}

	src, err := OpenCSVChunks(path, "label", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if got := src.NumCols(); got != 4 {
		t.Fatalf("NumCols: got %d want 4", got)
	}
	for pass := 0; pass < 2; pass++ { // Reset must allow a second full pass
		got, err := ReadAll(src)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		want, err := ReadCSVFile(path, "label")
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
			t.Fatalf("pass %d: shape mismatch", pass)
		}
		for j := range want.Columns {
			for i := range want.Columns[j].Values {
				a, b := got.Columns[j].Values[i], want.Columns[j].Values[i]
				if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("pass %d: col %d row %d: %v vs %v", pass, j, i, a, b)
				}
			}
		}
		for i := range want.Label {
			if got.Label[i] != want.Label[i] {
				t.Fatalf("pass %d: label %d mismatch", pass, i)
			}
		}
	}
}

func TestCSVChunksNoLabel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenCSVChunks(path, "", 10)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	c, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if c.Label != nil {
		t.Fatalf("unlabelled source yielded labels")
	}
	if c.NumRows() != 2 || c.Cols[1][1] != 4 {
		t.Fatalf("bad chunk content: %+v", c)
	}
}

func TestCSVRaggedRowPositionedError(t *testing.T) {
	in := "a,b,label\n1,2,0\n3,4\n5,6,1\n"
	_, err := ReadCSV(strings.NewReader(in), "label")
	if err == nil {
		t.Fatal("ragged row accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 3") {
		t.Errorf("error lacks the failing line number: %q", msg)
	}
	if !strings.Contains(msg, "2 fields, want 3") {
		t.Errorf("error lacks observed/expected field counts: %q", msg)
	}
}

func TestCSVMalformedQuotePositionedError(t *testing.T) {
	in := "a,b\n1,2\n\"unterminated,3\n4,5\n"
	_, err := ReadCSV(strings.NewReader(in), "")
	if err == nil {
		t.Fatal("malformed quoting accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "starting at line 3") || !strings.Contains(msg, "column") {
		t.Errorf("error lacks line/column position: %q", msg)
	}
}

func TestCSVChunksRaggedRowError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,2\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenCSVChunks(path, "", 10)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	_, err = src.Next()
	if err == nil {
		t.Fatal("ragged row accepted by chunked reader")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("chunked reader error lacks line number: %q", err.Error())
	}
}

func TestReadAllFromCSVLargerThanChunk(t *testing.T) {
	// A file spanning many chunks reassembles losslessly.
	f := testFrame(5000, 3, 9)
	path := filepath.Join(t.TempDir(), "big.csv")
	if err := f.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	src, err := OpenCSVChunks(path, "label", 128)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 5000 {
		t.Fatalf("rows: got %d want 5000", got.NumRows())
	}
}
