package frame

import (
	"fmt"
	"math/rand"
)

// StratifiedSplit partitions a labelled frame into train/valid/test with the
// given fractions (testFrac = 1 - trainFrac - validFrac), preserving the
// positive rate in each split — essential for heavily imbalanced data such
// as the paper's 2%-fraud business datasets, where a plain random split of
// a small validation set can end up with no positives at all. Rows are
// shuffled with the given RNG; validFrac may be 0.
func (f *Frame) StratifiedSplit(trainFrac, validFrac float64, rng *rand.Rand) (*Frame, *Frame, *Frame, error) {
	if f.Label == nil {
		return nil, nil, nil, fmt.Errorf("frame: stratified split needs labels")
	}
	if trainFrac <= 0 || validFrac < 0 || trainFrac+validFrac >= 1 {
		return nil, nil, nil, fmt.Errorf("frame: invalid split fractions %g/%g", trainFrac, validFrac)
	}
	var pos, neg []int
	for i, y := range f.Label {
		if y > 0.5 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	shuffle := func(xs []int) {
		for i := len(xs) - 1; i > 0; i-- {
			k := rng.Intn(i + 1)
			xs[i], xs[k] = xs[k], xs[i]
		}
	}
	shuffle(pos)
	shuffle(neg)

	var trainIdx, validIdx, testIdx []int
	carve := func(xs []int) {
		nTrain := int(float64(len(xs)) * trainFrac)
		nValid := int(float64(len(xs)) * validFrac)
		trainIdx = append(trainIdx, xs[:nTrain]...)
		validIdx = append(validIdx, xs[nTrain:nTrain+nValid]...)
		testIdx = append(testIdx, xs[nTrain+nValid:]...)
	}
	carve(pos)
	carve(neg)

	// Shuffle within each split so class blocks do not survive.
	shuffle(trainIdx)
	shuffle(validIdx)
	shuffle(testIdx)

	return f.Subset(trainIdx), f.Subset(validIdx), f.Subset(testIdx), nil
}

// DownsampleNegatives returns a frame keeping all positive rows and a
// negatives-per-positive ratio of the negatives (chosen at random) — a
// standard cost-control device when training on extremely large imbalanced
// business datasets. ratio <= 0 keeps all negatives.
func (f *Frame) DownsampleNegatives(ratio float64, rng *rand.Rand) (*Frame, error) {
	if f.Label == nil {
		return nil, fmt.Errorf("frame: downsampling needs labels")
	}
	if ratio <= 0 {
		return f.Clone(), nil
	}
	var pos, neg []int
	for i, y := range f.Label {
		if y > 0.5 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	want := int(float64(len(pos)) * ratio)
	if want >= len(neg) {
		return f.Clone(), nil
	}
	for i := len(neg) - 1; i > 0; i-- {
		k := rng.Intn(i + 1)
		neg[i], neg[k] = neg[k], neg[i]
	}
	keep := append(append([]int(nil), pos...), neg[:want]...)
	for i := len(keep) - 1; i > 0; i-- {
		k := rng.Intn(i + 1)
		keep[i], keep[k] = keep[k], keep[i]
	}
	return f.Subset(keep), nil
}
