// Package frame provides the columnar dataset substrate used throughout the
// SAFE reproduction. A Frame is a set of named float64 columns plus an
// optional binary label column. It is deliberately minimal: SAFE and every
// classifier in this repository consume dense numeric matrices, so the frame
// stores columns contiguously and exposes cheap column-level views.
package frame

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Column is a single named feature column. Values are dense float64; NaN
// marks a missing value.
type Column struct {
	Name   string
	Values []float64
}

// Frame is a columnar dataset: len(Columns) features over NumRows rows, plus
// an optional Label vector (binary targets in {0,1}). All columns must have
// equal length.
type Frame struct {
	Columns []Column
	Label   []float64
}

// New creates an empty frame with capacity for the given number of columns.
func New(numCols int) *Frame {
	return &Frame{Columns: make([]Column, 0, numCols)}
}

// NewWithShape creates a frame with cols zero-filled columns of rows rows,
// named x0..x{cols-1}, and a zero label vector.
func NewWithShape(rows, cols int) *Frame {
	f := &Frame{
		Columns: make([]Column, cols),
		Label:   make([]float64, rows),
	}
	for j := range f.Columns {
		f.Columns[j] = Column{Name: fmt.Sprintf("x%d", j), Values: make([]float64, rows)}
	}
	return f
}

// NumRows returns the number of rows in the frame.
func (f *Frame) NumRows() int {
	if len(f.Columns) == 0 {
		return len(f.Label)
	}
	return len(f.Columns[0].Values)
}

// NumCols returns the number of feature columns.
func (f *Frame) NumCols() int { return len(f.Columns) }

// Validate checks the structural invariants: all columns equal length and,
// if a label is present, the label length matches.
func (f *Frame) Validate() error {
	n := f.NumRows()
	for i := range f.Columns {
		if len(f.Columns[i].Values) != n {
			return fmt.Errorf("frame: column %q has %d rows, want %d",
				f.Columns[i].Name, len(f.Columns[i].Values), n)
		}
		if f.Columns[i].Name == "" {
			return fmt.Errorf("frame: column %d has empty name", i)
		}
	}
	if f.Label != nil && len(f.Label) != n {
		return fmt.Errorf("frame: label has %d rows, want %d", len(f.Label), n)
	}
	seen := make(map[string]bool, len(f.Columns))
	for i := range f.Columns {
		if seen[f.Columns[i].Name] {
			return fmt.Errorf("frame: duplicate column name %q", f.Columns[i].Name)
		}
		seen[f.Columns[i].Name] = true
	}
	return nil
}

// AddColumn appends a column. The caller must keep lengths consistent; use
// Validate to check.
func (f *Frame) AddColumn(name string, values []float64) {
	f.Columns = append(f.Columns, Column{Name: name, Values: values})
}

// Col returns the values of column j. It panics if j is out of range, as
// does any slice access.
func (f *Frame) Col(j int) []float64 { return f.Columns[j].Values }

// ColByName returns the column values for the given name, or nil and false
// when absent.
func (f *Frame) ColByName(name string) ([]float64, bool) {
	for i := range f.Columns {
		if f.Columns[i].Name == name {
			return f.Columns[i].Values, true
		}
	}
	return nil, false
}

// ColIndex returns the index of the named column, or -1.
func (f *Frame) ColIndex(name string) int {
	for i := range f.Columns {
		if f.Columns[i].Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (f *Frame) Names() []string {
	out := make([]string, len(f.Columns))
	for i := range f.Columns {
		out[i] = f.Columns[i].Name
	}
	return out
}

// Row copies row i into dst (allocated when nil) and returns it.
func (f *Frame) Row(i int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(f.Columns))
	}
	for j := range f.Columns {
		dst[j] = f.Columns[j].Values[i]
	}
	return dst
}

// Matrix materialises the frame as a row-major [][]float64. Classifiers that
// are row-oriented (kNN, MLP, linear models) use this once up front.
func (f *Frame) Matrix() [][]float64 {
	n, m := f.NumRows(), f.NumCols()
	flat := make([]float64, n*m)
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = flat[i*m : (i+1)*m]
	}
	for j := 0; j < m; j++ {
		col := f.Columns[j].Values
		for i := 0; i < n; i++ {
			rows[i][j] = col[i]
		}
	}
	return rows
}

// Clone deep-copies the frame.
func (f *Frame) Clone() *Frame {
	out := &Frame{Columns: make([]Column, len(f.Columns))}
	for i := range f.Columns {
		vals := make([]float64, len(f.Columns[i].Values))
		copy(vals, f.Columns[i].Values)
		out.Columns[i] = Column{Name: f.Columns[i].Name, Values: vals}
	}
	if f.Label != nil {
		out.Label = make([]float64, len(f.Label))
		copy(out.Label, f.Label)
	}
	return out
}

// Select returns a new frame containing only the named columns, in the given
// order, sharing the underlying value slices (no copy). The label is shared.
func (f *Frame) Select(names []string) (*Frame, error) {
	out := &Frame{Columns: make([]Column, 0, len(names)), Label: f.Label}
	for _, name := range names {
		idx := f.ColIndex(name)
		if idx < 0 {
			return nil, fmt.Errorf("frame: select: no column %q", name)
		}
		out.Columns = append(out.Columns, f.Columns[idx])
	}
	return out, nil
}

// SelectIndices returns a new frame with the columns at the given indices,
// sharing storage.
func (f *Frame) SelectIndices(idx []int) *Frame {
	out := &Frame{Columns: make([]Column, 0, len(idx)), Label: f.Label}
	for _, j := range idx {
		out.Columns = append(out.Columns, f.Columns[j])
	}
	return out
}

// Subset returns a new frame containing only the given rows (copied).
func (f *Frame) Subset(rows []int) *Frame {
	out := &Frame{Columns: make([]Column, len(f.Columns))}
	for j := range f.Columns {
		vals := make([]float64, len(rows))
		src := f.Columns[j].Values
		for i, r := range rows {
			vals[i] = src[r]
		}
		out.Columns[j] = Column{Name: f.Columns[j].Name, Values: vals}
	}
	if f.Label != nil {
		out.Label = make([]float64, len(rows))
		for i, r := range rows {
			out.Label[i] = f.Label[r]
		}
	}
	return out
}

// Split partitions the frame into three frames of n1, n2 and the remaining
// rows, in order. It is used to carve train/valid/test out of a generated
// dataset. n2 may be zero.
func (f *Frame) Split(n1, n2 int) (*Frame, *Frame, *Frame, error) {
	n := f.NumRows()
	if n1 < 0 || n2 < 0 || n1+n2 > n {
		return nil, nil, nil, fmt.Errorf("frame: split sizes %d+%d exceed %d rows", n1, n2, n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	a := f.Subset(idx[:n1])
	b := f.Subset(idx[n1 : n1+n2])
	c := f.Subset(idx[n1+n2:])
	return a, b, c, nil
}

// Shuffle permutes rows in place using the given RNG.
func (f *Frame) Shuffle(rng *rand.Rand) {
	n := f.NumRows()
	for i := n - 1; i > 0; i-- {
		k := rng.Intn(i + 1)
		for j := range f.Columns {
			v := f.Columns[j].Values
			v[i], v[k] = v[k], v[i]
		}
		if f.Label != nil {
			f.Label[i], f.Label[k] = f.Label[k], f.Label[i]
		}
	}
}

// PositiveRate returns the fraction of rows with label 1.
func (f *Frame) PositiveRate() float64 {
	if len(f.Label) == 0 {
		return 0
	}
	pos := 0.0
	for _, y := range f.Label {
		if y > 0.5 {
			pos++
		}
	}
	return pos / float64(len(f.Label))
}

// ColumnStats holds summary statistics of a column.
type ColumnStats struct {
	Min, Max, Mean, Std float64
	NaNCount            int
}

// Stats computes summary statistics for column j, ignoring NaNs.
func (f *Frame) Stats(j int) ColumnStats {
	vals := f.Columns[j].Values
	st := ColumnStats{Min: math.Inf(1), Max: math.Inf(-1)}
	n := 0
	sum := 0.0
	for _, v := range vals {
		if math.IsNaN(v) {
			st.NaNCount++
			continue
		}
		n++
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	if n == 0 {
		return ColumnStats{Min: math.NaN(), Max: math.NaN(), Mean: math.NaN(), Std: math.NaN(), NaNCount: st.NaNCount}
	}
	st.Mean = sum / float64(n)
	ss := 0.0
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		d := v - st.Mean
		ss += d * d
	}
	st.Std = math.Sqrt(ss / float64(n))
	return st
}

// SortedUnique returns the sorted distinct non-NaN values of column j. It is
// used by discretisation operators and tests.
func (f *Frame) SortedUnique(j int) []float64 {
	vals := f.Columns[j].Values
	tmp := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) {
			tmp = append(tmp, v)
		}
	}
	sort.Float64s(tmp)
	out := tmp[:0]
	for i, v := range tmp {
		if i == 0 || v != tmp[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Append concatenates other's rows onto f. Column sets must match by name
// and order.
func (f *Frame) Append(other *Frame) error {
	if f.NumCols() != other.NumCols() {
		return fmt.Errorf("frame: append: column count mismatch %d vs %d", f.NumCols(), other.NumCols())
	}
	for j := range f.Columns {
		if f.Columns[j].Name != other.Columns[j].Name {
			return fmt.Errorf("frame: append: column %d name mismatch %q vs %q",
				j, f.Columns[j].Name, other.Columns[j].Name)
		}
		f.Columns[j].Values = append(f.Columns[j].Values, other.Columns[j].Values...)
	}
	if f.Label != nil && other.Label != nil {
		f.Label = append(f.Label, other.Label...)
	}
	return nil
}
