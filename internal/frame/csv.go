package frame

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// csvScanner is the one streaming CSV decode path ReadCSV and CSVChunks
// share: it reads the header, locates the label column, and parses records
// one at a time with position-aware errors. Memory use is O(1) in the file
// size — rows are handed to the caller as they decode.
type csvScanner struct {
	cr       *csv.Reader
	names    []string // feature names, label column excluded
	labelIdx int      // index of the label column in the raw record, -1 for none
}

func newCSVScanner(r io.Reader, labelCol string) (*csvScanner, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("frame: read csv header: %w", err)
	}
	labelIdx := -1
	names := make([]string, 0, len(header))
	for i, name := range header {
		if labelCol != "" && name == labelCol {
			labelIdx = i
			continue
		}
		names = append(names, name)
	}
	if labelCol != "" && labelIdx < 0 {
		return nil, fmt.Errorf("frame: label column %q not in header", labelCol)
	}
	return &csvScanner{cr: cr, names: names, labelIdx: labelIdx}, nil
}

// positionedError rewrites a csv decode error with its file position
// (encoding/csv tracks physical lines, so quoted multi-line fields report
// correctly) and, for ragged rows, the observed/expected field counts.
func (s *csvScanner) positionedError(err error, rec []string) error {
	var pe *csv.ParseError
	if errors.As(err, &pe) {
		if errors.Is(pe.Err, csv.ErrFieldCount) {
			want := len(s.names)
			if s.labelIdx >= 0 {
				want++
			}
			return fmt.Errorf("frame: csv: line %d: row has %d fields, want %d",
				pe.Line, len(rec), want)
		}
		if pe.StartLine != 0 && pe.StartLine != pe.Line {
			return fmt.Errorf("frame: csv: line %d, column %d (record starting at line %d): %w",
				pe.Line, pe.Column, pe.StartLine, pe.Err)
		}
		return fmt.Errorf("frame: csv: line %d, column %d: %w", pe.Line, pe.Column, pe.Err)
	}
	return fmt.Errorf("frame: csv: %w", err)
}

// readRow decodes the next record into feat (len(s.names)) and the label.
// Non-numeric cells parse to NaN (missing). ok is false at end of input.
func (s *csvScanner) readRow(feat []float64) (label float64, ok bool, err error) {
	rec, err := s.cr.Read()
	if err == io.EOF {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, s.positionedError(err, rec)
	}
	fi := 0
	for i, cell := range rec {
		v, perr := strconv.ParseFloat(cell, 64)
		if perr != nil {
			v = math.NaN()
		}
		if i == s.labelIdx {
			label = v
			continue
		}
		feat[fi] = v
		fi++
	}
	return label, true, nil
}

// ReadCSV parses a CSV stream with a header row into a Frame, decoding row
// by row (memory beyond the resulting frame is O(1)). labelCol names the
// label column; pass "" for an unlabelled frame. Non-numeric cells parse to
// NaN (missing); ragged or malformed rows fail with their line (and, where
// known, column) position.
func ReadCSV(r io.Reader, labelCol string) (*Frame, error) {
	sc, err := newCSVScanner(r, labelCol)
	if err != nil {
		return nil, err
	}
	f := &Frame{Columns: make([]Column, len(sc.names))}
	for i, name := range sc.names {
		f.Columns[i] = Column{Name: name}
	}
	if sc.labelIdx >= 0 {
		f.Label = []float64{}
	}
	feat := make([]float64, len(sc.names))
	for {
		label, ok, err := sc.readRow(feat)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for j, v := range feat {
			f.Columns[j].Values = append(f.Columns[j].Values, v)
		}
		if sc.labelIdx >= 0 {
			f.Label = append(f.Label, label)
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadCSVFile opens and parses a CSV file. See ReadCSV.
func ReadCSVFile(path, labelCol string) (*Frame, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("frame: %w", err)
	}
	defer fh.Close()
	return ReadCSV(fh, labelCol)
}

// DefaultChunkRows is the chunk size CSVChunks uses when none is given.
const DefaultChunkRows = 8192

// CSVChunks streams a CSV file as a ChunkSource: rows decode in chunks of
// chunkRows, so files far larger than memory can be fitted out-of-core. The
// file reopens on Reset, making the source re-iterable for multi-pass
// algorithms. Column buffers are reused across chunks — a Chunk is only
// valid until the next Next or Reset call.
type CSVChunks struct {
	path      string
	labelCol  string
	chunkRows int

	fh    *os.File
	sc    *csvScanner
	names []string
	idx   int
	start int
	cols  [][]float64
	label []float64
	feat  []float64
}

// OpenCSVChunks opens a CSV file as a chunked source. labelCol may be "";
// chunkRows <= 0 selects DefaultChunkRows. The header is read eagerly so
// Names is available immediately; Close releases the file handle.
func OpenCSVChunks(path, labelCol string, chunkRows int) (*CSVChunks, error) {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	s := &CSVChunks{path: path, labelCol: labelCol, chunkRows: chunkRows}
	if err := s.Reset(); err != nil {
		return nil, err
	}
	s.names = append([]string(nil), s.sc.names...)
	return s, nil
}

// Names implements ChunkSource.
func (s *CSVChunks) Names() []string { return s.names }

// NumCols implements ChunkSource.
func (s *CSVChunks) NumCols() int { return len(s.names) }

// ChunkRows returns the configured rows per chunk.
func (s *CSVChunks) ChunkRows() int { return s.chunkRows }

// Reset implements ChunkSource: the file is reopened and the header
// re-validated, so a new pass starts at the first data row.
func (s *CSVChunks) Reset() error {
	if s.fh != nil {
		s.fh.Close()
		s.fh = nil
	}
	fh, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("frame: %w", err)
	}
	sc, err := newCSVScanner(fh, s.labelCol)
	if err != nil {
		fh.Close()
		return err
	}
	if s.names != nil {
		if len(sc.names) != len(s.names) {
			fh.Close()
			return fmt.Errorf("frame: csv %s: header changed between passes (%d vs %d columns)",
				s.path, len(sc.names), len(s.names))
		}
		for i := range s.names {
			if sc.names[i] != s.names[i] {
				fh.Close()
				return fmt.Errorf("frame: csv %s: header changed between passes (column %d is %q, was %q)",
					s.path, i, sc.names[i], s.names[i])
			}
		}
	}
	s.fh, s.sc = fh, sc
	s.idx, s.start = 0, 0
	if s.cols == nil {
		s.cols = make([][]float64, len(sc.names))
		for j := range s.cols {
			s.cols[j] = make([]float64, 0, s.chunkRows)
		}
		s.feat = make([]float64, len(sc.names))
		if sc.labelIdx >= 0 {
			s.label = make([]float64, 0, s.chunkRows)
		}
	}
	return nil
}

// Next implements ChunkSource, decoding up to chunkRows rows into reused
// buffers. It returns io.EOF after the last chunk and closes the file.
func (s *CSVChunks) Next() (*Chunk, error) {
	if s.sc == nil {
		return nil, io.EOF
	}
	for j := range s.cols {
		s.cols[j] = s.cols[j][:0]
	}
	hasLabel := s.sc.labelIdx >= 0
	if hasLabel {
		s.label = s.label[:0]
	}
	rows := 0
	for rows < s.chunkRows {
		label, ok, err := s.sc.readRow(s.feat)
		if err != nil {
			return nil, err
		}
		if !ok {
			s.Close()
			break
		}
		for j, v := range s.feat {
			s.cols[j] = append(s.cols[j], v)
		}
		if hasLabel {
			s.label = append(s.label, label)
		}
		rows++
	}
	if rows == 0 {
		return nil, io.EOF
	}
	c := &Chunk{Index: s.idx, Start: s.start, Cols: s.cols}
	if hasLabel {
		c.Label = s.label
	}
	s.idx++
	s.start += rows
	return c, nil
}

// Close releases the underlying file; Reset reopens it.
func (s *CSVChunks) Close() error {
	s.sc = nil
	if s.fh == nil {
		return nil
	}
	err := s.fh.Close()
	s.fh = nil
	return err
}

// WriteCSV writes the frame (and its label as a final "label" column when
// present) as CSV with a header row.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := f.Names()
	if f.Label != nil {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("frame: write csv header: %w", err)
	}
	n := f.NumRows()
	rec := make([]string, len(header))
	for i := 0; i < n; i++ {
		for j := range f.Columns {
			rec[j] = strconv.FormatFloat(f.Columns[j].Values[i], 'g', -1, 64)
		}
		if f.Label != nil {
			rec[len(rec)-1] = strconv.FormatFloat(f.Label[i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("frame: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the frame to a file. See WriteCSV.
func (f *Frame) WriteCSVFile(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("frame: %w", err)
	}
	defer fh.Close()
	if err := f.WriteCSV(fh); err != nil {
		return err
	}
	return fh.Sync()
}
