package frame

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// ReadCSV parses a CSV stream with a header row into a Frame. labelCol names
// the label column; pass "" for an unlabelled frame. Non-numeric cells parse
// to NaN (missing).
func ReadCSV(r io.Reader, labelCol string) (*Frame, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("frame: read csv header: %w", err)
	}
	names := make([]string, len(header))
	copy(names, header)

	labelIdx := -1
	if labelCol != "" {
		for i, name := range names {
			if name == labelCol {
				labelIdx = i
				break
			}
		}
		if labelIdx < 0 {
			return nil, fmt.Errorf("frame: label column %q not in header", labelCol)
		}
	}

	f := &Frame{}
	for i, name := range names {
		if i == labelIdx {
			continue
		}
		f.Columns = append(f.Columns, Column{Name: name})
	}
	if labelIdx >= 0 {
		f.Label = []float64{}
	}

	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("frame: read csv line %d: %w", line, err)
		}
		line++
		if len(rec) != len(names) {
			return nil, fmt.Errorf("frame: csv line %d has %d fields, want %d", line, len(rec), len(names))
		}
		ci := 0
		for i, cell := range rec {
			v, perr := strconv.ParseFloat(cell, 64)
			if perr != nil {
				v = math.NaN()
			}
			if i == labelIdx {
				f.Label = append(f.Label, v)
				continue
			}
			f.Columns[ci].Values = append(f.Columns[ci].Values, v)
			ci++
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadCSVFile opens and parses a CSV file. See ReadCSV.
func ReadCSVFile(path, labelCol string) (*Frame, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("frame: %w", err)
	}
	defer fh.Close()
	return ReadCSV(fh, labelCol)
}

// WriteCSV writes the frame (and its label as a final "label" column when
// present) as CSV with a header row.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := f.Names()
	if f.Label != nil {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("frame: write csv header: %w", err)
	}
	n := f.NumRows()
	rec := make([]string, len(header))
	for i := 0; i < n; i++ {
		for j := range f.Columns {
			rec[j] = strconv.FormatFloat(f.Columns[j].Values[i], 'g', -1, 64)
		}
		if f.Label != nil {
			rec[len(rec)-1] = strconv.FormatFloat(f.Label[i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("frame: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the frame to a file. See WriteCSV.
func (f *Frame) WriteCSVFile(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("frame: %w", err)
	}
	defer fh.Close()
	if err := f.WriteCSV(fh); err != nil {
		return err
	}
	return fh.Sync()
}
