// Fault-injected extension of the prefetcher contract suite: the same
// invariants the clean contract pins (in-order delivery, sticky errors,
// lease independence, no goroutine leaks) must hold when the wrapped
// source fails or stalls mid-stream. Lives in an external test package
// because the injectors (internal/chaos) import frame.
package frame_test

import (
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/frame"
)

// pfTestFrame builds a small deterministic frame.
func pfTestFrame(rows, cols int) *frame.Frame {
	f := frame.NewWithShape(rows, cols)
	for j := range f.Columns {
		for i := range f.Columns[j].Values {
			f.Columns[j].Values[i] = float64(i*cols + j)
		}
	}
	for i := range f.Label {
		f.Label[i] = float64(i % 2)
	}
	return f
}

// pfLeakCheck asserts the goroutine count returns to its baseline.
func pfLeakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestChaosPrefetchStickyErrorAcrossReset pins error delivery through the
// prefetcher over a failing source: the injected error arrives in stream
// order, sticks across repeated Next calls, and each Reset re-arms the
// stream — the prefetcher never retries on its own (one fault attempt per
// pass), and once the fault's attempt budget is spent a full pass
// completes.
func TestChaosPrefetchStickyErrorAcrossReset(t *testing.T) {
	defer pfLeakCheck(t)()
	src := chaos.Wrap(frame.NewFrameChunks(pfTestFrame(40, 3), 10),
		&chaos.Plan{Faults: []chaos.Fault{{Chunk: 2, Kind: chaos.Transient, Times: 2}}})
	pf := frame.NewPrefetch(src, 2, 2)
	defer pf.Close()

	// stickyError asserts the stream is failed with the injected error and
	// stays failed — one error object, repeated — until the next Reset.
	stickyError := func(pass int) {
		t.Helper()
		var first error
		for attempt := 0; attempt < 3; attempt++ {
			_, err := pf.Next()
			if !errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("pass %d attempt %d: got %v, want the injected error (sticky)", pass, attempt, err)
			}
			if attempt == 0 {
				first = err
			} else if err != first {
				t.Fatalf("pass %d: sticky error changed between Next calls", pass)
			}
		}
	}

	// Pass 0: chunks 0 and 1 deliver, then the fault at lifetime ordinal 2
	// fires (attempt 1 of 2) and the error sticks.
	if err := pf.Reset(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		c, err := pf.Next()
		if err != nil {
			t.Fatalf("pass 0 chunk %d: %v", i, err)
		}
		if c.Index != i {
			t.Fatalf("pass 0: chunk %d delivered out of order (index %d)", i, c.Index)
		}
		pf.Recycle(c)
	}
	stickyError(0)

	// Pass 1: delivery never advanced past ordinal 2, so the re-armed
	// stream fails again immediately (attempt 2 of 2) — the prefetcher
	// itself never retried in between.
	if err := pf.Reset(); err != nil {
		t.Fatal(err)
	}
	stickyError(1)
	if src.Injected() != 2 {
		t.Fatalf("the prefetcher retried on its own: %d fault attempts across 2 passes", src.Injected())
	}

	// The fault budget is spent: the next pass runs to completion.
	if err := pf.Reset(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c, err := pf.Next()
		if err != nil {
			t.Fatalf("recovered pass chunk %d: %v", i, err)
		}
		pf.Recycle(c)
	}
	if _, err := pf.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("got %v, want io.EOF", err)
	}
}

// TestChaosPrefetchNoLeakOnMidStreamError pins teardown: when the source
// errors mid-stream, closing the prefetcher (with leases still
// outstanding) must wind down the reader goroutine completely.
func TestChaosPrefetchNoLeakOnMidStreamError(t *testing.T) {
	check := pfLeakCheck(t)
	src := chaos.Wrap(frame.NewFrameChunks(pfTestFrame(80, 3), 10),
		&chaos.Plan{Faults: []chaos.Fault{{Chunk: 4, Kind: chaos.Permanent}}})
	pf := frame.NewPrefetch(src, 3, 4)
	var held []*frame.Chunk
	for {
		c, err := pf.Next()
		if err != nil {
			if !errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("got %v, want the injected fault", err)
			}
			break
		}
		held = append(held, c) // keep every lease: Close must not need them back
	}
	if len(held) != 4 {
		t.Fatalf("delivered %d chunks before the fault, want 4", len(held))
	}
	pf.Close()
	check()
}

// TestChaosPrefetchDelayedDeliveryOrdering pins ordering under stalls: a
// source that sleeps at arbitrary chunks must still deliver every chunk in
// stream order through the read-ahead window, with EOF only after the
// last.
func TestChaosPrefetchDelayedDeliveryOrdering(t *testing.T) {
	defer pfLeakCheck(t)()
	src := chaos.Wrap(frame.NewFrameChunks(pfTestFrame(80, 3), 10), &chaos.Plan{Faults: []chaos.Fault{
		{Chunk: 1, Kind: chaos.Delay, Sleep: 30 * time.Millisecond},
		{Chunk: 5, Kind: chaos.Delay, Sleep: 15 * time.Millisecond},
	}})
	pf := frame.NewPrefetch(src, 3, 2)
	defer pf.Close()
	for i := 0; i < 8; i++ {
		c, err := pf.Next()
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if c.Index != i || c.Start != i*10 {
			t.Fatalf("chunk delivered out of order: index %d start %d, want %d/%d", c.Index, c.Start, i, i*10)
		}
		pf.Recycle(c)
	}
	if _, err := pf.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("got %v, want io.EOF after the last chunk", err)
	}
}

// TestChaosPrefetchLeaseIsolation pins the lease contract with the
// mutation guard underneath: the prefetcher copies unstable sources into
// lease buffers, so a consumer writing into its lease must never reach the
// source's memory.
func TestChaosPrefetchLeaseIsolation(t *testing.T) {
	defer pfLeakCheck(t)()
	// unstableSource hides FrameChunks' StableChunks marker, forcing the
	// prefetcher onto its copying path.
	g := chaos.Guard(&unstableSource{frame.NewFrameChunks(pfTestFrame(60, 3), 10)})
	pf := frame.NewPrefetch(g, 2, 2)
	for {
		c, err := pf.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for j := range c.Cols {
			for i := range c.Cols[j] {
				c.Cols[j][i] = -1 // scribble over the lease we own
			}
		}
		pf.Recycle(c)
	}
	pf.Close()
	if err := g.Err(); err != nil {
		t.Fatalf("consumer writes into leases reached source memory: %v", err)
	}
}

// unstableSource strips the StableChunks marker from a wrapped source.
type unstableSource struct {
	src frame.ChunkSource
}

func (u *unstableSource) Names() []string             { return u.src.Names() }
func (u *unstableSource) NumCols() int                { return u.src.NumCols() }
func (u *unstableSource) Reset() error                { return u.src.Reset() }
func (u *unstableSource) Next() (*frame.Chunk, error) { return u.src.Next() }
