package frame

// Transienter marks an error as transient: the operation that produced it
// may succeed if simply attempted again (a flaky read, a brief resource
// stall). Error types implement it to opt a failure into retry policies —
// the shard coordinator re-reads a chunk whose error is transient and
// aborts fast otherwise.
type Transienter interface {
	Transient() bool
}

// IsTransient reports whether any error in err's chain marks itself
// transient via the Transienter interface. It walks both single and
// multi-error Unwrap forms, like errors.As. Errors that do not implement
// Transienter are permanent: unknown failures must abort, not spin.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(Transienter); ok {
			return t.Transient()
		}
		switch x := err.(type) {
		case interface{ Unwrap() error }:
			err = x.Unwrap()
		case interface{ Unwrap() []error }:
			for _, e := range x.Unwrap() {
				if IsTransient(e) {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}
