package frame

import (
	"errors"
	"fmt"
	"testing"
)

type transientErr struct{ ok bool }

func (e *transientErr) Error() string   { return "flaky" }
func (e *transientErr) Transient() bool { return e.ok }

func TestIsTransient(t *testing.T) {
	base := &transientErr{ok: true}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("boom"), false},
		{"direct", base, true},
		{"direct-false", &transientErr{ok: false}, false},
		{"wrapped", fmt.Errorf("read: %w", base), true},
		{"double-wrapped", fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", base)), true},
		{"joined", errors.Join(errors.New("other"), base), true},
		{"joined-none", errors.Join(errors.New("a"), errors.New("b")), false},
		{"joined-nested", fmt.Errorf("ctx: %w", errors.Join(errors.New("a"), fmt.Errorf("b: %w", base))), true},
		{"classification-stops-at-marker", fmt.Errorf("w: %w", &transientErr{ok: false}), false},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("%s: IsTransient = %v, want %v", tc.name, got, tc.want)
		}
	}
}
