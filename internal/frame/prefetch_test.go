package frame

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"
)

// prefetchFrame builds a small labelled frame with distinct per-row values
// so delivery-order and copy bugs surface as value mismatches.
func prefetchFrame(rows, cols int) *Frame {
	f := NewWithShape(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			f.Columns[j].Values[i] = float64(j*rows + i)
		}
	}
	for i := 0; i < rows; i++ {
		f.Label[i] = float64(i % 2)
	}
	return f
}

// unstableChunks deliberately reuses one value buffer across Next calls —
// the worst-case ChunkSource contract (CSVChunks behaves this way) — and
// can be armed to fail at a given chunk ordinal.
type unstableChunks struct {
	src    *FrameChunks
	buf    [][]float64
	label  []float64
	calls  int
	failAt int   // fail on this 0-based Next ordinal; -1 disables
	err    error // the error to return at failAt
}

func newUnstableChunks(f *Frame, chunkRows int) *unstableChunks {
	return &unstableChunks{src: NewFrameChunks(f, chunkRows), failAt: -1}
}

func (u *unstableChunks) Names() []string { return u.src.Names() }
func (u *unstableChunks) NumCols() int    { return u.src.NumCols() }
func (u *unstableChunks) Reset() error    { u.calls = 0; return u.src.Reset() }

func (u *unstableChunks) Next() (*Chunk, error) {
	if u.failAt >= 0 && u.calls == u.failAt {
		return nil, u.err
	}
	u.calls++
	c, err := u.src.Next()
	if err != nil {
		return nil, err
	}
	// Copy into the shared buffer: the next Next call overwrites it.
	if u.buf == nil {
		u.buf = make([][]float64, len(c.Cols))
	}
	out := &Chunk{Index: c.Index, Start: c.Start, Cols: u.buf}
	for j, col := range c.Cols {
		u.buf[j] = append(u.buf[j][:0], col...)
	}
	u.label = append(u.label[:0], c.Label...)
	out.Label = u.label
	return out, nil
}

// drain reads the stream to EOF, checking indices arrive in order and every
// value matches the backing frame.
func drain(t *testing.T, p *Prefetch, f *Frame, recycle bool) int {
	t.Helper()
	want := 0
	for {
		c, err := p.Next()
		if errors.Is(err, io.EOF) {
			return want
		}
		if err != nil {
			t.Fatalf("chunk %d: %v", want, err)
		}
		if c.Index != want {
			t.Fatalf("chunk arrived out of order: got index %d want %d", c.Index, want)
		}
		for j, col := range c.Cols {
			for i, v := range col {
				if exp := f.Columns[j].Values[c.Start+i]; v != exp {
					t.Fatalf("chunk %d col %d row %d: got %v want %v", c.Index, j, i, v, exp)
				}
			}
		}
		for i, v := range c.Label {
			if exp := f.Label[c.Start+i]; v != exp {
				t.Fatalf("chunk %d label row %d: got %v want %v", c.Index, i, v, exp)
			}
		}
		if recycle {
			p.Recycle(c)
		}
		want++
	}
}

// TestPrefetchDeliveryOrder pins that read-ahead never reorders the stream:
// chunks arrive in partition index order with exact values, for both a
// stable (zero-copy) and an unstable (buffer-reusing) source, across
// repeated Reset passes and every read-ahead depth.
func TestPrefetchDeliveryOrder(t *testing.T) {
	f := prefetchFrame(100, 3)
	for _, depth := range []int{1, 2, 7, 100} {
		for _, stable := range []bool{true, false} {
			name := fmt.Sprintf("depth=%d/stable=%v", depth, stable)
			t.Run(name, func(t *testing.T) {
				var src ChunkSource = NewFrameChunks(f, 9) // 12 chunks
				if !stable {
					src = newUnstableChunks(f, 9)
				}
				p := NewPrefetch(src, depth, 2)
				defer p.Close()
				for pass := 0; pass < 3; pass++ {
					if pass > 0 {
						if err := p.Reset(); err != nil {
							t.Fatal(err)
						}
					}
					if got := drain(t, p, f, pass%2 == 0); got != 12 {
						t.Fatalf("pass %d delivered %d chunks, want 12", pass, got)
					}
					// The stream stays at EOF until the next Reset.
					if _, err := p.Next(); !errors.Is(err, io.EOF) {
						t.Fatalf("post-EOF Next: %v", err)
					}
				}
			})
		}
	}
}

// TestPrefetchHoldsLeasesAcrossNext pins the lease contract the parallel
// shard workers rely on: with an unstable source, a chunk stays valid after
// later Next and even Reset calls, until it is recycled.
func TestPrefetchHoldsLeasesAcrossNext(t *testing.T) {
	f := prefetchFrame(60, 2)
	p := NewPrefetch(newUnstableChunks(f, 10), 2, 6) // 6 chunks
	defer p.Close()

	var held []*Chunk
	for {
		c, err := p.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, c)
	}
	if err := p.Reset(); err != nil { // must not invalidate outstanding leases
		t.Fatal(err)
	}
	for _, c := range held {
		for j, col := range c.Cols {
			for i, v := range col {
				if exp := f.Columns[j].Values[c.Start+i]; v != exp {
					t.Fatalf("lease %d col %d row %d corrupted after Reset: got %v want %v", c.Index, j, i, v, exp)
				}
			}
		}
		p.Recycle(c)
	}
	if got := drain(t, p, f, true); got != 6 {
		t.Fatalf("post-Reset pass delivered %d chunks, want 6", got)
	}
}

// TestPrefetchLeaseRecycling pins that recycled leases are actually reused:
// after a warmup pass has populated the pool, further passes over an
// unstable source deliver chunks through the same lease structs instead of
// allocating fresh ones.
func TestPrefetchLeaseRecycling(t *testing.T) {
	f := prefetchFrame(40, 2)
	p := NewPrefetch(newUnstableChunks(f, 10), 1, 1) // 4 chunks per pass
	defer p.Close()
	seen := make(map[*Chunk]bool)
	for pass := 0; pass < 4; pass++ {
		for {
			c, err := p.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			seen[c] = true
			p.Recycle(c)
		}
		if err := p.Reset(); err != nil {
			t.Fatal(err)
		}
	}
	// 16 chunk deliveries; with recycling the distinct lease structs stay
	// bounded by the pool capacity (depth + leases + 2), not the delivery
	// count.
	if len(seen) > 4 {
		t.Fatalf("leases not recycled: %d distinct chunk structs across 16 deliveries", len(seen))
	}
}

// TestPrefetchStickyError pins error delivery: a mid-stream read error
// arrives in stream order (after the preceding good chunks), sticks across
// subsequent Next calls, and clears on Reset.
func TestPrefetchStickyError(t *testing.T) {
	f := prefetchFrame(50, 2)
	boom := errors.New("disk on fire")
	src := newUnstableChunks(f, 10) // 5 chunks
	src.failAt, src.err = 3, boom

	p := NewPrefetch(src, 2, 2)
	defer p.Close()
	for i := 0; i < 3; i++ {
		c, err := p.Next()
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		p.Recycle(c)
	}
	if _, err := p.Next(); !errors.Is(err, boom) {
		t.Fatalf("expected the read error, got %v", err)
	}
	// The error sticks: the consumer cannot accidentally read past it.
	for i := 0; i < 3; i++ {
		if _, err := p.Next(); !errors.Is(err, boom) {
			t.Fatalf("sticky error lost on retry %d: %v", i, err)
		}
	}
	// Reset clears the sticky error; with the fault removed the stream
	// completes.
	src.failAt = -1
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, p, f, true); got != 5 {
		t.Fatalf("post-Reset pass delivered %d chunks, want 5", got)
	}
}

// TestPrefetchResetErrorSticks: when the wrapped source fails to rewind,
// the Reset error is returned and sticks through Next.
func TestPrefetchResetErrorSticks(t *testing.T) {
	boom := errors.New("rewind failed")
	p := NewPrefetch(&failingReset{err: boom}, 1, 1)
	defer p.Close()
	if err := p.Reset(); !errors.Is(err, boom) {
		t.Fatalf("Reset: got %v want %v", err, boom)
	}
	if _, err := p.Next(); !errors.Is(err, boom) {
		t.Fatalf("Next after failed Reset: got %v want %v", err, boom)
	}
}

// failingReset is a ChunkSource whose Reset always errors.
type failingReset struct{ err error }

func (s *failingReset) Names() []string       { return []string{"x"} }
func (s *failingReset) NumCols() int          { return 1 }
func (s *failingReset) Reset() error          { return s.err }
func (s *failingReset) Next() (*Chunk, error) { return nil, io.EOF }

// goroutineLeakCheck snapshots the goroutine count and asserts the process
// returns to it before the test ends (same pattern as the top-level fit
// cancellation tests).
func goroutineLeakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestPrefetchCloseMidStream pins the shutdown path: closing (or resetting)
// with the reader mid-stream and the channel full must stop the background
// goroutine promptly, and Close must be idempotent and restartable.
func TestPrefetchCloseMidStream(t *testing.T) {
	f := prefetchFrame(200, 2)
	check := goroutineLeakCheck(t)
	p := NewPrefetch(NewFrameChunks(f, 10), 3, 2) // 20 chunks, read-ahead 3
	// Pull one chunk so the reader is certainly running and blocked on a
	// full channel, then abandon the stream.
	c, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	p.Recycle(c)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	check()

	// The prefetcher restarts cleanly after Close.
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, p, f, true); got != 20 {
		t.Fatalf("post-Close pass delivered %d chunks, want 20", got)
	}
	p.Close()
	check()
}
