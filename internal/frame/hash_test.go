package frame

import (
	"math"
	"testing"
)

func TestHashRowDeterministic(t *testing.T) {
	row := []float64{1, 2.5, -3, math.NaN(), 0}
	if HashRow(row) != HashRow(append([]float64(nil), row...)) {
		t.Error("identical rows hash differently")
	}
	other := []float64{1, 2.5, -3, math.NaN(), 1}
	if HashRow(row) == HashRow(other) {
		t.Error("distinct rows collided (1-element change)")
	}
}

func TestHashRowOrderSensitive(t *testing.T) {
	if HashRow([]float64{1, 2}) == HashRow([]float64{2, 1}) {
		t.Error("hash ignores element order")
	}
	if HashRow([]float64{0}) == HashRow([]float64{0, 0}) {
		t.Error("hash ignores length")
	}
}

func TestFrameRowHashMatchesHashRow(t *testing.T) {
	f := NewWithShape(3, 4)
	f.Col(1)[2] = 7.25
	f.Col(3)[0] = math.Inf(1)
	for i := 0; i < f.NumRows(); i++ {
		if got, want := f.RowHash(i), HashRow(f.Row(i, nil)); got != want {
			t.Errorf("row %d: RowHash %x != HashRow %x", i, got, want)
		}
	}
}

func TestHashStringChains(t *testing.T) {
	a := HashFloats(HashString(HashSeed(), "model-a"), []float64{1, 2})
	b := HashFloats(HashString(HashSeed(), "model-b"), []float64{1, 2})
	if a == b {
		t.Error("different string prefixes collided")
	}
}

func TestRowsEqual(t *testing.T) {
	a := []float64{1, math.NaN(), 3}
	b := []float64{1, math.NaN(), 3}
	if !RowsEqual(a, b) {
		t.Error("NaN-equal rows reported unequal")
	}
	if RowsEqual(a, []float64{1, math.NaN()}) {
		t.Error("length mismatch reported equal")
	}
	if RowsEqual(a, []float64{1, 2, 3}) {
		t.Error("value mismatch reported equal")
	}
}
