package shard

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/frame"
)

// clusteredFrame builds a dataset whose every column trends with the row
// index plus bounded deterministic jitter — the row-clustered layout block
// statistics pay off on: most row groups span a narrow slice of each
// column's range, so their min/max stay clear of the refinement brackets.
// Labels mix within every group (they follow the jitter, not the trend).
func clusteredFrame(rows, dim int, task string, classes int) *frame.Frame {
	f := frame.NewWithShape(rows, dim)
	state := uint64(2463534242)
	next := func() float64 { // xorshift in [0,1): deterministic, seedless
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1_000_003) / 1_000_003
	}
	jit := make([]float64, rows)
	for i := 0; i < rows; i++ {
		t := float64(i) / float64(rows)
		jit[i] = next()
		for j := 0; j < dim; j++ {
			// The jitter stays well under one block's trend increment, so
			// block value ranges are tight relative to the column's span.
			scale := float64(j + 1)
			f.Columns[j].Values[i] = (t*100 + jit[i]*0.03 + next()*0.01) * scale
		}
		switch task {
		case "binary":
			if jit[i] > 0.5 {
				f.Label[i] = 1
			}
		case "multiclass":
			f.Label[i] = math.Floor(jit[i] * float64(classes))
			if f.Label[i] >= float64(classes) {
				f.Label[i] = float64(classes - 1)
			}
		case "regression":
			f.Label[i] = f.Columns[0].Values[i]*0.5 + jit[i]*3
		}
	}
	return f
}

// TestShardedFitColstoreSkipsBlocks is the acceptance pin of block-stat
// pass skipping: fitting from a colstore file on row-clustered data must
// (a) skip a non-zero number of refinement blocks, and (b) still select
// exactly the features the in-memory engine selects, for every task
// family — skipping is an exact-arithmetic shortcut, not an approximation.
func TestShardedFitColstoreSkipsBlocks(t *testing.T) {
	cases := []struct {
		name    string
		task    core.Task
		kind    string
		classes int
	}{
		{"binary", core.BinaryTask(), "binary", 0},
		{"multiclass3", core.MulticlassTask(3), "multiclass", 3},
		{"regression", core.RegressionTask(), "regression", 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			train := clusteredFrame(20000, 6, tc.kind, tc.classes)
			path := filepath.Join(t.TempDir(), "train.col")
			if err := colstore.WriteFrame(path, train, colstore.WriterOptions{GroupRows: 100}); err != nil {
				t.Fatal(err)
			}

			cfg := core.DefaultConfig()
			cfg.Task = tc.task
			cfg.Seed = 1
			want := fitInMemory(t, train, cfg)

			for _, open := range []struct {
				name string
				fn   func() (colstore.Source, error)
			}{
				{"stream", func() (colstore.Source, error) { return colstore.Open(path) }},
				{"mmap", func() (colstore.Source, error) { return colstore.OpenSource(path) }},
			} {
				t.Run(open.name, func(t *testing.T) {
					src, err := open.fn()
					if err != nil {
						t.Fatal(err)
					}
					defer src.Close()
					// The sketch must stay lossy enough to need refinement
					// but tight enough that brackets don't blanket the data;
					// 100-row groups keep block spans under the bracket
					// spacing so statistics can prove blocks irrelevant.
					got, _, st, err := Fit(context.Background(), src, Config{Core: cfg, SketchSize: 2048})
					if err != nil {
						t.Fatal(err)
					}
					assertSameSelection(t, want, got)
					if st.BlocksSkipped == 0 {
						t.Fatal("no blocks skipped on row-clustered colstore data")
					}
					if st.RowsSkipped == 0 || st.RowsSkipped%100 != 0 {
						t.Fatalf("RowsSkipped = %d, want a positive multiple of the group size", st.RowsSkipped)
					}
					t.Logf("skipped %d blocks (%d rows)", st.BlocksSkipped, st.RowsSkipped)
				})
			}
		})
	}
}

// TestShardedFitColstoreMatchesCSV pins source equivalence: the same rows
// through a CSV chunk source and a colstore file select identical features
// — the container format must be invisible to the algorithm.
func TestShardedFitColstoreMatchesCSV(t *testing.T) {
	train := clusteredFrame(6000, 5, "binary", 0)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "train.csv")
	colPath := filepath.Join(dir, "train.col")
	if err := train.WriteCSVFile(csvPath); err != nil {
		t.Fatal(err)
	}
	if err := colstore.WriteFrame(colPath, train, colstore.WriterOptions{GroupRows: 1500}); err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Task = core.BinaryTask()
	cfg.Seed = 1

	csvSrc, err := frame.OpenCSVChunks(csvPath, "label", 1500)
	if err != nil {
		t.Fatal(err)
	}
	defer csvSrc.Close()
	fromCSV, _, _, err := Fit(context.Background(), csvSrc, Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}

	colSrc, err := colstore.OpenSource(colPath)
	if err != nil {
		t.Fatal(err)
	}
	defer colSrc.Close()
	fromCol, _, _, err := Fit(context.Background(), colSrc, Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSelection(t, fromCSV, fromCol)
}
