package shard

import (
	"repro/internal/frame"
	"repro/internal/sketch"
)

// openRef is one live column whose cut refiner still needs gathered values.
type openRef struct {
	ref *sketch.Refiner
	col int
}

// planRefineSkip plans a partial refinement pass from the source's per-block
// statistics, when it has any (frame.SkippableSource — the colstore
// readers). A chunk is skippable only when every open column's block proves,
// via Refiner.SkipBucket, that all its non-NaN values land in one
// below-bracket bucket and touch no gather bracket; the chunk's entire
// effect on each refiner is then the exact integer fold
// AddOutside(bucket, rows−NaNs), so the partial pass resolves the same
// order statistics bit-for-bit as a full one.
//
// When any chunk is skippable the plan is installed on the source (SetSkip)
// and accounted for (Stats.BlocksSkipped/RowsSkipped, f.passExpect for the
// pass row validation); the returned cleanup restores full passes and must
// run once the pass is done. done reports that every chunk was skippable —
// the refiners are fully resolved from statistics and no pass need run.
func (f *fitter) planRefineSkip(open []openRef) (cleanup func(), done bool) {
	ss, ok := f.base.(frame.SkippableSource)
	if !ok || f.n == 0 || len(open) == 0 {
		return nil, false
	}
	nch := ss.NumChunks()
	if nch <= 0 {
		return nil, false
	}
	type contrib struct {
		open   int
		bucket int
		n      int64
	}
	skip := make([]bool, nch)
	var contribs []contrib
	scratch := make([]contrib, 0, len(open))
	skipped, skippedRows := 0, 0
	for ci := 0; ci < nch; ci++ {
		st := ss.ChunkStats(ci)
		if len(st) == 0 {
			continue // no stats for this chunk: it must stream
		}
		scratch = scratch[:0]
		skippable := true
		for oi, o := range open {
			s := st[o.col]
			nn := int64(s.Rows - s.NaNs)
			if nn == 0 {
				continue // all missing: contributes nothing either way
			}
			if !s.Known {
				skippable = false
				break
			}
			bucket, ok := o.ref.SkipBucket(s.Min, s.Max)
			if !ok {
				skippable = false
				break
			}
			scratch = append(scratch, contrib{open: oi, bucket: bucket, n: nn})
		}
		if !skippable {
			continue
		}
		skip[ci] = true
		skipped++
		skippedRows += st[0].Rows
		contribs = append(contribs, scratch...)
	}
	if skipped == 0 {
		return nil, false
	}
	for _, c := range contribs {
		open[c.open].ref.AddOutside(c.bucket, c.n)
	}
	f.stats.BlocksSkipped += int64(skipped)
	f.stats.RowsSkipped += int64(skippedRows)
	if skipped == nch {
		// Nothing left to stream: the statistics alone resolved every open
		// bracket's below-count, and no bracket had gatherable values.
		return nil, true
	}
	ss.SetSkip(skip)
	f.passExpect = f.n - skippedRows
	return func() {
		// An aborted pass can leave the prefetcher's reader mid-stream on the
		// base source; stop it (restartable via Reset) before changing the
		// plan under it.
		if f.pf != nil {
			f.pf.Close()
		}
		ss.SetSkip(nil)
		f.passExpect = 0
	}, false
}
