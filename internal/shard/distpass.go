package shard

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/operators"
	"repro/internal/sketch"
)

// This file holds the coordinator side of distributed passes: each streaming
// pass of the fit has a dist variant that reifies the pass into a PassSpec,
// hands it to Config.Exec, and folds the returned Partials with exactly the
// accumulation the local fold closure performs. RunPass delivers partials in
// ascending partition order and never concurrently, so the merged statistics
// accumulate in the same sequence as the local engine — selection stays
// bit-identical across worker counts and transports.
//
// Every fold bounds-checks the partial's payload before indexing: a worker
// speaking the right protocol but computing the wrong shape aborts the fit
// with a typed error instead of corrupting statistics.

// runDistPass executes one reified pass through the executor, threading the
// pass ordinal, the live epoch, and the shared pass bookkeeping.
func (f *fitter) runDistPass(spec *PassSpec, fold func(*Partial) error) error {
	f.stats.Passes++
	spec.Pass = f.stats.Passes
	spec.Epoch = f.liveEpoch
	res, err := f.exec.RunPass(f.ctx, spec, fold)
	if err != nil {
		return err
	}
	f.stats.Retries += res.Retries
	return f.finishPass(res.Rows, res.Parts)
}

// syncLive pushes the current live set to the executor as a new epoch: the
// dependency-ordered node program (by operator registry name) plus the live
// feature names. A no-op for local fits.
func (f *fitter) syncLive() error {
	if f.exec == nil {
		return nil
	}
	nodes := f.neededNodes()
	specs := make([]NodeSpec, len(nodes))
	for i := range nodes {
		op, ok := operators.ApplierOp(nodes[i].Applier)
		if !ok {
			return fmt.Errorf("shard: node %q has a non-registry applier; cannot distribute", nodes[i].Name)
		}
		specs[i] = NodeSpec{Name: nodes[i].Name, Inputs: nodes[i].Inputs, Op: op}
	}
	live := make([]string, len(f.live))
	for i, lf := range f.live {
		live[i] = lf.name
	}
	f.liveEpoch++
	return f.exec.SetLive(f.ctx, f.liveEpoch, specs, live)
}

// genSpec reifies one generated candidate for worker-side recomputation.
func genSpec(en *candidate) (GenSpec, error) {
	op, ok := operators.ApplierOp(en.applier)
	if !ok {
		return GenSpec{}, fmt.Errorf("shard: candidate %q has a non-registry applier; cannot distribute", en.name)
	}
	return GenSpec{Op: op, Feats: en.feats}, nil
}

// checkPartial validates the invariants every partial must satisfy against
// the gathered label span.
func (f *fitter) checkPartial(p *Partial, kind PassKind) error {
	if p.Rows < 0 || p.Start < 0 {
		return fmt.Errorf("shard: pass %d partial %d has negative shape", kind, p.Chunk)
	}
	if f.n > 0 && p.Start+p.Rows > f.n {
		return fmt.Errorf("shard: pass %d partial %d spans rows [%d,%d) of %d", kind, p.Chunk, p.Start, p.Start+p.Rows, f.n)
	}
	return nil
}

// distPassBaseSketch is pass 1 over the executor: labels plus per-original
// quantile/moments partials, merged in partition order.
func (f *fitter) distPassBaseSketch() error {
	m := len(f.names)
	return f.runDistPass(&PassSpec{Kind: PassBaseSketch}, func(p *Partial) error {
		if len(p.Labels) != p.Rows {
			return fmt.Errorf("shard: base-sketch partial %d carries %d labels for %d rows", p.Chunk, len(p.Labels), p.Rows)
		}
		if len(p.Blobs) != 2*m {
			return fmt.Errorf("shard: base-sketch partial %d has %d sketches, want %d", p.Chunk, len(p.Blobs), 2*m)
		}
		f.labels = append(f.labels, p.Labels...)
		for j := 0; j < m; j++ {
			q, _, err := sketch.DecodeQuantile(p.Blobs[2*j])
			if err != nil {
				return fmt.Errorf("shard: base-sketch partial %d col %d: %w", p.Chunk, j, err)
			}
			f.live[j].sk.Merge(q)
			mom, _, err := sketch.DecodeMoments(p.Blobs[2*j+1])
			if err != nil {
				return fmt.Errorf("shard: base-sketch partial %d col %d moments: %w", p.Chunk, j, err)
			}
			f.live[j].mom.Merge(mom)
		}
		return nil
	})
}

// distPassLiveCodes fills the resident miner codes from worker-binned chunk
// codes. Codes land in disjoint row ranges, so placement alone (not fold
// order) determines the result, as in the local pass.
func (f *fitter) distPassLiveCodes(live []*liveFeat) error {
	spec := &PassSpec{Kind: PassCodes, LiveCuts: make([][]float64, len(live))}
	for i := range live {
		spec.LiveCuts[i] = live[i].minerCuts
	}
	return f.runDistPass(spec, func(p *Partial) error {
		if err := f.checkPartial(p, PassCodes); err != nil {
			return err
		}
		if len(p.Codes) != len(live) {
			return fmt.Errorf("shard: codes partial %d has %d columns, want %d", p.Chunk, len(p.Codes), len(live))
		}
		for i := range live {
			if len(p.Codes[i]) != p.Rows {
				return fmt.Errorf("shard: codes partial %d col %d has %d rows, want %d", p.Chunk, i, len(p.Codes[i]), p.Rows)
			}
			copy(live[i].codes[p.Start:p.Start+p.Rows], p.Codes[i])
		}
		return nil
	})
}

// comboSpecs reifies the mined combinations for a score pass.
func comboSpecs(combos []core.Combo) []ComboSpec {
	out := make([]ComboSpec, len(combos))
	for i := range combos {
		out[i] = ComboSpec{Features: combos[i].Features, Values: combos[i].Values}
	}
	return out
}

// distScoreBinary folds worker count slabs into the binary score
// accumulators; integer addition is order-invariant, but the partition-
// ordered fold keeps even the accumulation sequence identical.
func (f *fitter) distScoreBinary(combos []core.Combo, total int, pos, tot []int) error {
	spec := &PassSpec{Kind: PassScoreBinary, Combos: comboSpecs(combos)}
	return f.runDistPass(spec, func(p *Partial) error {
		if len(p.Ints) != 2*total {
			return fmt.Errorf("shard: score partial %d has %d counts, want %d", p.Chunk, len(p.Ints), 2*total)
		}
		for g := 0; g < total; g++ {
			pos[g] += int(p.Ints[g])
			tot[g] += int(p.Ints[total+g])
		}
		return nil
	})
}

// distScoreClasses folds worker K-class count slabs.
func (f *fitter) distScoreClasses(combos []core.Combo, k, total int, cnt []float64) error {
	spec := &PassSpec{Kind: PassScoreClasses, Classes: k, Combos: comboSpecs(combos)}
	return f.runDistPass(spec, func(p *Partial) error {
		if len(p.Ints) != total {
			return fmt.Errorf("shard: class-score partial %d has %d counts, want %d", p.Chunk, len(p.Ints), total)
		}
		for g := 0; g < total; g++ {
			cnt[g] += float64(p.Ints[g])
		}
		return nil
	})
}

// distScoreMoments folds worker cell-id slabs, replaying the coordinator's
// gathered targets in global row order — the float addition sequence of the
// in-memory scorer, independent of which worker computed the ids.
func (f *fitter) distScoreMoments(combos []core.Combo, nActive int, cnt, sum, sumsq [][]float64) error {
	spec := &PassSpec{Kind: PassScoreMomentIDs, Combos: comboSpecs(combos)}
	return f.runDistPass(spec, func(p *Partial) error {
		if err := f.checkPartial(p, PassScoreMomentIDs); err != nil {
			return err
		}
		if len(p.Ints) != nActive*p.Rows {
			return fmt.Errorf("shard: moment-score partial %d has %d ids, want %d", p.Chunk, len(p.Ints), nActive*p.Rows)
		}
		labels := f.labels[p.Start : p.Start+p.Rows]
		pos := 0
		for ci := range combos {
			if cnt[ci] == nil {
				continue
			}
			ids := p.Ints[pos : pos+p.Rows]
			pos += p.Rows
			ccnt, csum, csumsq := cnt[ci], sum[ci], sumsq[ci]
			nc := int32(len(ccnt))
			for r := 0; r < p.Rows; r++ {
				id := ids[r]
				if id < 0 || id >= nc {
					return fmt.Errorf("shard: moment-score partial %d cell id %d outside %d cells", p.Chunk, id, nc)
				}
				y := labels[r]
				ccnt[id]++
				csum[id] += y
				csumsq[id] += y * y
			}
		}
		return nil
	})
}

// distPassCandidateSketches merges worker quantile/moments partials of the
// round's generated candidates, in partition order.
func (f *fitter) distPassCandidateSketches(gen []*candidate) error {
	spec := &PassSpec{Kind: PassSketchGen, Gens: make([]GenSpec, len(gen))}
	for i, en := range gen {
		g, err := genSpec(en)
		if err != nil {
			return err
		}
		spec.Gens[i] = g
	}
	return f.runDistPass(spec, func(p *Partial) error {
		if len(p.Blobs) != 2*len(gen) {
			return fmt.Errorf("shard: gen-sketch partial %d has %d sketches, want %d", p.Chunk, len(p.Blobs), 2*len(gen))
		}
		for i, en := range gen {
			q, _, err := sketch.DecodeQuantile(p.Blobs[2*i])
			if err != nil {
				return fmt.Errorf("shard: gen-sketch partial %d cand %d: %w", p.Chunk, i, err)
			}
			en.sk.Merge(q)
			mom, _, err := sketch.DecodeMoments(p.Blobs[2*i+1])
			if err != nil {
				return fmt.Errorf("shard: gen-sketch partial %d cand %d moments: %w", p.Chunk, i, err)
			}
			en.mom.Merge(mom)
		}
		return nil
	})
}

// distRefine runs one gather pass over the executor for the open refiners;
// refs[i] receives the decoded gather of spec.Refines[i].
func (f *fitter) distRefine(spec *PassSpec, refs []*sketch.Refiner) error {
	for i, ref := range refs {
		ranks, lo, hi, resolved := ref.Brackets()
		spec.Refines[i].Ranks = ranks
		spec.Refines[i].Lo = lo
		spec.Refines[i].Hi = hi
		spec.Refines[i].Resolved = resolved
	}
	return f.runDistPass(spec, func(p *Partial) error {
		if len(p.Blobs) != len(refs) {
			return fmt.Errorf("shard: refine partial %d has %d gathers, want %d", p.Chunk, len(p.Blobs), len(refs))
		}
		for i, ref := range refs {
			sh, _, err := sketch.DecodeRefinerGather(p.Blobs[i])
			if err != nil {
				return fmt.Errorf("shard: refine partial %d target %d: %w", p.Chunk, i, err)
			}
			if err := ref.MergeWire(sh); err != nil {
				return fmt.Errorf("shard: refine partial %d target %d: %w", p.Chunk, i, err)
			}
		}
		return nil
	})
}

// distRefineLive is refineLive's gather pass over the executor: the open
// targets read raw source columns, so the spec addresses columns by schema
// index. Block-stat skip planning needs local source access and is a pure
// optimisation, so the distributed path always gathers the full pass.
func (f *fitter) distRefineLive(open []openRef) error {
	spec := &PassSpec{Kind: PassRefine, Refines: make([]RefineSpec, len(open))}
	refs := make([]*sketch.Refiner, len(open))
	for i, o := range open {
		spec.Refines[i] = RefineSpec{Col: o.col}
		refs[i] = o.ref
	}
	return f.distRefine(spec, refs)
}

// distRefineCandidates is refineCandidates' gather pass over the executor:
// generated columns are recomputed worker-side from their gen specs.
func (f *fitter) distRefineCandidates(open []*candidate) error {
	spec := &PassSpec{Kind: PassRefine, Refines: make([]RefineSpec, len(open))}
	refs := make([]*sketch.Refiner, len(open))
	for i, en := range open {
		g, err := genSpec(en)
		if err != nil {
			return err
		}
		spec.Refines[i] = RefineSpec{Col: -1, Gen: g}
		refs[i] = en.ref
	}
	return f.distRefine(spec, refs)
}

// entrySpecs reifies a candidate set for the histogram/Gram passes; cuts
// selects the per-entry bin edges to ship.
func entrySpecs(entries []*candidate, cuts func(*candidate) []float64) ([]EntrySpec, error) {
	out := make([]EntrySpec, len(entries))
	for i, en := range entries {
		if en.isBase {
			out[i] = EntrySpec{Base: en.baseIdx, Cuts: cuts(en)}
			continue
		}
		g, err := genSpec(en)
		if err != nil {
			return nil, err
		}
		out[i] = EntrySpec{Base: -1, Gen: g, Cuts: cuts(en)}
	}
	return out, nil
}

// distPassCandidateCounts accumulates every candidate's criterion histogram
// over the executor: count-valued families merge worker histogram partials
// in partition order; the regression moment family replays worker bin ids
// against the gathered targets in global row order.
func (f *fitter) distPassCandidateCounts(entries []*candidate) error {
	specs, err := entrySpecs(entries, func(en *candidate) []float64 { return en.ivCuts })
	if err != nil {
		return err
	}
	if f.cfg.Task.Kind == core.TaskRegression {
		spec := &PassSpec{Kind: PassHistIDs, Entries: specs}
		return f.runDistPass(spec, func(p *Partial) error {
			if err := f.checkPartial(p, PassHistIDs); err != nil {
				return err
			}
			if len(p.Ints) != len(entries)*p.Rows {
				return fmt.Errorf("shard: hist-id partial %d has %d ids, want %d", p.Chunk, len(p.Ints), len(entries)*p.Rows)
			}
			targets := f.labels[p.Start : p.Start+p.Rows]
			for i, en := range entries {
				en.hist.(*sketch.MomentHist).AddBinned(p.Ints[i*p.Rows:(i+1)*p.Rows], targets)
			}
			return nil
		})
	}
	spec := &PassSpec{Kind: PassHistCounts, Entries: specs}
	return f.runDistPass(spec, func(p *Partial) error {
		if len(p.Blobs) != len(entries) {
			return fmt.Errorf("shard: hist partial %d has %d histograms, want %d", p.Chunk, len(p.Blobs), len(entries))
		}
		for i, en := range entries {
			v, _, err := sketch.DecodeAny(p.Blobs[i])
			if err != nil {
				return fmt.Errorf("shard: hist partial %d cand %d: %w", p.Chunk, i, err)
			}
			sh, ok := v.(sketch.CriterionHist)
			if !ok {
				return fmt.Errorf("shard: hist partial %d cand %d decoded %T, want a criterion histogram", p.Chunk, i, v)
			}
			// MergeHist's cut-equality check doubles as an integrity check on
			// the worker's histogram.
			if err := en.hist.MergeHist(sh); err != nil {
				return fmt.Errorf("shard: hist partial %d cand %d: %w", p.Chunk, i, err)
			}
		}
		return nil
	})
}

// distPassGramAndCodes merges worker Gram partials in partition order and
// places the ranker codes workers binned for the survivors that need them.
func (f *fitter) distPassGramAndCodes(entries []*candidate, keptA []int, needCodes []bool) error {
	kept := make([]*candidate, len(keptA))
	for gi, idx := range keptA {
		kept[gi] = entries[idx]
	}
	specs, err := entrySpecs(kept, func(en *candidate) []float64 { return en.rgCuts })
	if err != nil {
		return err
	}
	for gi := range specs {
		specs[gi].NeedCodes = needCodes[gi]
	}
	spec := &PassSpec{Kind: PassGramCodes, Entries: specs}
	return f.runDistPass(spec, func(p *Partial) error {
		if err := f.checkPartial(p, PassGramCodes); err != nil {
			return err
		}
		if len(p.Blobs) != 1 {
			return fmt.Errorf("shard: gram partial %d has %d blobs, want 1", p.Chunk, len(p.Blobs))
		}
		if len(p.Codes) != len(kept) {
			return fmt.Errorf("shard: gram partial %d has %d code columns, want %d", p.Chunk, len(p.Codes), len(kept))
		}
		pg, _, err := sketch.DecodeGram(p.Blobs[0])
		if err != nil {
			return fmt.Errorf("shard: gram partial %d: %w", p.Chunk, err)
		}
		if pg.K() != len(kept) {
			return fmt.Errorf("shard: gram partial %d covers %d columns, want %d", p.Chunk, pg.K(), len(kept))
		}
		f.gram.Merge(pg)
		for gi, en := range kept {
			if !needCodes[gi] {
				continue
			}
			if len(p.Codes[gi]) != p.Rows {
				return fmt.Errorf("shard: gram partial %d codes %d has %d rows, want %d", p.Chunk, gi, len(p.Codes[gi]), p.Rows)
			}
			copy(en.codes[p.Start:p.Start+p.Rows], p.Codes[gi])
		}
		return nil
	})
}
