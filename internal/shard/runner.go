package shard

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/frame"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// passWorker is one worker's scratch for a streaming pass: a dependency-
// ordered evaluator over the current live set and a reusable cut indexer.
// The heavyweight recycling (sketch partials, scratch columns, Gram
// partials) lives in the fitter's shared arena, because deltas built by one
// worker are returned to the pool by whichever worker folds them.
type passWorker struct {
	ev  *evaluator
	ix  stats.CutIndexer
	srt sketch.SortScratch
}

// passDelta is one partition's deposited result awaiting its ordered fold.
type passDelta struct {
	fold func() error
	rows int
}

// runPass makes one full streaming pass over the source. compute runs once
// per chunk — concurrently on the worker pool when it has more than one
// worker — and returns a fold closure (nil when the chunk's effect is
// written in place, e.g. resident codes). Folds execute serially in
// partition index order regardless of completion order, so every merged
// statistic accumulates exactly as in the single-worker pass: the fit's
// selected features are bit-identical across worker counts.
//
// Contract for compute: it may read the chunk and write per-chunk or
// disjoint per-row state; the fold closure must not reference chunk memory
// (the chunk's lease is recycled before the fold can run). The context is
// checked before every chunk, and pass/row statistics are validated exactly
// as the sequential engine always did.
func (f *fitter) runPass(compute func(c *frame.Chunk, w *passWorker) (func() error, error)) error {
	if err := f.src.Reset(); err != nil {
		return err
	}
	f.stats.Passes++
	if f.pool.Workers() <= 1 {
		return f.runPassSeq(compute)
	}
	r := &passRun{f: f, compute: compute, pending: make(map[int]passDelta)}
	// Each pool slot runs one worker loop; the pool's caller participation
	// guarantees progress even when every helper is busy elsewhere.
	cerr := f.pool.ForChunksCtx(f.ctx, f.pool.Workers(), 1, func(lo, hi int) {
		for slot := lo; slot < hi; slot++ {
			r.worker(&passWorker{ev: f.newEvaluator()})
		}
	})
	if r.err != nil {
		return r.err
	}
	if cerr != nil {
		return cerr
	}
	return f.finishPass(r.rows, r.parts)
}

// runPassSeq is the single-worker pass loop: compute and fold inline, chunk
// by chunk, with no copies and no extra goroutines.
func (f *fitter) runPassSeq(compute func(c *frame.Chunk, w *passWorker) (func() error, error)) error {
	w := &passWorker{ev: f.newEvaluator()}
	rows, parts := 0, 0
	for {
		if err := f.ctx.Err(); err != nil {
			return err
		}
		c, err := f.src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return f.passReadError(err, parts)
		}
		if err := f.checkShape(c); err != nil {
			return err
		}
		nr := c.NumRows()
		fold, err := compute(c, w)
		f.recycle(c)
		if err != nil {
			return err
		}
		if fold != nil {
			if err := fold(); err != nil {
				return err
			}
		}
		rows += nr
		parts++
	}
	return f.finishPass(rows, parts)
}

// passRun coordinates one parallel pass: chunk handout order defines the
// partition sequence, and deposits drain the pending map in that sequence.
type passRun struct {
	f       *fitter
	compute func(c *frame.Chunk, w *passWorker) (func() error, error)

	mu       sync.Mutex
	nextSeq  int // next partition index to hand out
	nextFold int // next partition index to fold
	pending  map[int]passDelta
	rows     int
	parts    int
	eof      bool
	err      error
}

// fail records the first error and stops further handouts.
func (r *passRun) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.eof = true
	r.mu.Unlock()
}

// worker pulls chunks until the stream ends: read (serialized, which pins
// seq to source order), compute concurrently, then deposit and fold every
// consecutively available partition. Each worker holds at most one chunk
// lease and one undeposited delta, so pending stays bounded by the worker
// count with no extra back-pressure machinery.
func (r *passRun) worker(w *passWorker) {
	f := r.f
	for {
		r.mu.Lock()
		if r.err != nil || r.eof {
			r.mu.Unlock()
			return
		}
		if err := f.ctx.Err(); err != nil {
			r.mu.Unlock()
			r.fail(err)
			return
		}
		c, err := f.src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				r.eof = true
				r.mu.Unlock()
				return
			}
			chunk := r.nextSeq
			r.mu.Unlock()
			r.fail(f.passReadError(err, chunk))
			return
		}
		seq := r.nextSeq
		r.nextSeq++
		r.mu.Unlock()

		if err := f.checkShape(c); err != nil {
			f.recycle(c)
			r.fail(err)
			return
		}
		nr := c.NumRows()
		fold, err := r.compute(c, w)
		f.recycle(c)
		if err != nil {
			r.fail(err)
			return
		}

		r.mu.Lock()
		r.pending[seq] = passDelta{fold: fold, rows: nr}
		for r.err == nil {
			d, ok := r.pending[r.nextFold]
			if !ok {
				break
			}
			delete(r.pending, r.nextFold)
			r.nextFold++
			if d.fold != nil {
				if err := d.fold(); err != nil {
					r.err = err
					r.eof = true
					break
				}
			}
			r.rows += d.rows
			r.parts++
		}
		r.mu.Unlock()
	}
}

// checkShape validates one chunk against the source schema.
func (f *fitter) checkShape(c *frame.Chunk) error {
	if len(c.Cols) != len(f.names) {
		return fmt.Errorf("shard: chunk %d has %d columns, want %d", c.Index, len(c.Cols), len(f.names))
	}
	if c.Label != nil && len(c.Label) != c.NumRows() {
		return fmt.Errorf("shard: chunk %d label covers %d of %d rows", c.Index, len(c.Label), c.NumRows())
	}
	return nil
}

// finishPass folds one completed pass into the fit statistics, validating
// that the source yields a stable shape across passes. A planned partial
// pass (block-stat skipping) announces its expected row count through
// f.passExpect; any other shortfall is an unstable source.
func (f *fitter) finishPass(rows, parts int) error {
	f.stats.RowsStreamed += int64(rows)
	if f.n == 0 {
		f.n, f.stats.Rows, f.stats.Partitions = rows, rows, parts
		return nil
	}
	expect := f.n
	if f.passExpect > 0 {
		expect = f.passExpect
	}
	if rows != expect {
		return fmt.Errorf("shard: source yielded %d rows on a later pass, want %d (unstable source)", rows, expect)
	}
	return nil
}

// recycle returns a chunk lease to the prefetcher, when one is active.
func (f *fitter) recycle(c *frame.Chunk) {
	if f.pf != nil {
		f.pf.Recycle(c)
	}
}

// shadowHist returns a fresh concurrent-accumulation shadow of a criterion
// histogram for the integral-count families; the regression MomentHist
// returns nil (its float sums are order-sensitive, so the pass uses
// BinIDs/AddBinned instead of a mergeable shadow).
func shadowHist(h sketch.CriterionHist) sketch.CriterionHist {
	switch t := h.(type) {
	case *sketch.LabelHist:
		return t.Shadow()
	case *sketch.ClassHist:
		return t.Shadow()
	default:
		return nil
	}
}
