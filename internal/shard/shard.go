package shard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/gbdt"
	"repro/internal/operators"
	"repro/internal/parallel"
	"repro/internal/sketch"
)

// Config configures a sharded fit.
type Config struct {
	// Core is the SAFE configuration, shared with the in-memory path and
	// normalised through core.NormalizeConfig, so both engines run from
	// identical effective settings.
	Core core.Config
	// SketchSize is the per-level quantile summary size (sketch.DefaultSize
	// when <= 0). Larger sizes tighten the sketches' bracketing error
	// linearly at linearly more transient memory per sketched column,
	// shrinking the refinement pass's gather buffers.
	SketchSize int
	// ApproxCuts skips the exact cut-refinement pass and bins directly at
	// the sketches' approximate cut points. This trades the bit-exact
	// equivalence with the in-memory path for one fewer streaming pass per
	// stage; cut placement is then off by at most the sketches' rank error
	// bound (Stats.MaxQuantileRankError).
	ApproxCuts bool
	// Prefetch bounds the chunk read-ahead of every streaming pass: the next
	// Prefetch chunks are read and decoded in the background while the
	// current ones are processed and folded. 0 picks the default (2 when the
	// fit runs parallel workers, off for a single worker); < 0 disables
	// read-ahead. Parallel fits always route chunks through the prefetcher's
	// lease pool regardless, so each worker owns its chunk independently.
	Prefetch int
	// Retry bounds transient chunk-read retries (see RetryPolicy). The zero
	// value disables retrying: every read error aborts the fit immediately.
	// Retried reads re-run before the chunk is folded, so a recovered fit
	// selects features bit-identical to a fault-free run.
	Retry RetryPolicy
	// Exec, when set, runs every streaming pass through an external executor
	// (see Executor) instead of reading src locally: the coordinator reads
	// only the source schema, reifies each pass into a PassSpec, and folds
	// the returned partials in partition order — so selection stays
	// bit-identical to the local engine for any executor worker count.
	// Retry and Prefetch are ignored (fault handling moves below the
	// executor's fold); the caller owns the executor's lifecycle.
	Exec Executor
}

// DefaultConfig returns the paper's configuration with default sketches.
func DefaultConfig() Config { return Config{Core: core.DefaultConfig()} }

// Stats reports how a sharded fit consumed its source.
type Stats struct {
	// Rows is the dataset length; Partitions the chunks per pass.
	Rows       int
	Partitions int
	// Passes counts full streaming passes over the source.
	Passes int
	// RowsStreamed totals rows decoded across all passes.
	RowsStreamed int64
	// MaxQuantileRankError is the worst tracked rank-error bound across all
	// quantile sketches — the "within quantile-sketch tolerance" of the
	// fit's equivalence to the in-memory path, in ranks of Rows.
	MaxQuantileRankError int64
	// BlocksSkipped and RowsSkipped count source chunks (and their rows) the
	// refinement pass proved irrelevant from block statistics and never read
	// — non-zero only for frame.SkippableSource inputs (colstore files).
	// Skipped rows do not count into RowsStreamed.
	BlocksSkipped int64
	RowsSkipped   int64
	// Retries counts transient chunk-read errors absorbed by Config.Retry
	// across all passes; zero for a fault-free fit or a zero retry policy.
	Retries int64
}

// Fit learns the SAFE feature generation function Ψ from a labelled chunked
// source (Algorithm 1), never holding more than one chunk of raw values per
// pass plus the resident binned matrices. The selected features and
// formulas match core.Fit on the same rows up to quantile-sketch tolerance
// (see package doc); the returned report mirrors core's per-iteration
// stage sizes, including the per-stage wall-clock timings, and
// cfg.Core.Events receives the same FitEvent protocol the in-memory engine
// emits. ctx is checked before every source chunk and every boosting
// round: a cancelled or expired context aborts the multi-pass coordinator
// promptly with ctx.Err() and leaks no goroutines.
func Fit(ctx context.Context, src frame.ChunkSource, cfg Config) (*core.Pipeline, *core.Report, *Stats, error) {
	norm, err := core.NormalizeConfig(cfg.Core)
	if err != nil {
		return nil, nil, nil, err
	}
	ops, err := norm.Registry.GetAll(norm.Operators)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, op := range ops {
		if !operators.DataIndependent(op) {
			return nil, nil, nil, fmt.Errorf(
				"shard: operator %q fits parameters from data; the sharded engine supports data-independent operators only",
				op.Name())
		}
	}
	if norm.IVEqualWidth {
		return nil, nil, nil, errors.New("shard: IVEqualWidth is not supported by the sharded engine")
	}
	pool := parallel.Get(1)
	if norm.Parallel {
		pool = parallel.Get(norm.Workers)
	}
	f := &fitter{
		ctx:        ctx,
		cfg:        norm,
		sketchSize: cfg.SketchSize,
		approxCuts: cfg.ApproxCuts,
		src:        src,
		base:       src,
		pool:       pool,
		ops:        ops,
		arities:    core.DistinctArities(ops),
		arena:      sketch.NewArena(),
		exec:       cfg.Exec,
	}
	if f.exec == nil {
		// Transient-read retries wrap the raw source BELOW the prefetcher: a
		// retried read resolves inside one Next call, so it never becomes a
		// sticky stream error and the fold order is untouched. f.base stays the
		// raw source for SkippableSource pass planning.
		if cfg.Retry.enabled() {
			f.src = &retrySource{src: src, ctx: ctx, pol: cfg.Retry, retries: &f.stats.Retries}
		}
		// Parallel passes need the prefetcher's lease semantics (each worker owns
		// its chunk until folded); a single-worker fit uses it only when read-
		// ahead is requested, keeping the sequential path zero-copy by default.
		if depth := prefetchDepth(cfg.Prefetch, pool.Workers()); depth > 0 {
			pf := frame.NewPrefetch(f.src, depth, pool.Workers())
			defer pf.Close()
			f.pf = pf
			f.src = pf
		}
	}
	p, rep, err := f.fit()
	if err != nil {
		return nil, nil, nil, err
	}
	return p, rep, &f.stats, nil
}

// liveFeat is one feature of the working set: its identity plus the merged
// sketches and resident codes standing in for the raw column.
type liveFeat struct {
	name string
	node *core.FeatureNode // nil for originals
	sk   *sketch.Quantile
	ref  *sketch.Refiner // exact-cut refinement (nil in approx mode)
	mom  *sketch.Moments
	iv   float64

	minerCuts []float64 // cuts behind codes (Miner.MaxBins binner cuts)
	codes     []uint8   // resident binned column for GBDT training
}

// candidate is one entry of a round's candidate set X̂, ordered exactly as
// the in-memory stream orders them: the live (base) features first, then
// generated features in enumeration order.
type candidate struct {
	name    string
	isBase  bool
	baseIdx int               // index into live for base entries
	applier operators.Applier // generated entries
	feats   []int             // applier inputs, as live indices
	node    *core.FeatureNode // generated entries
	sk      *sketch.Quantile
	ref     *sketch.Refiner
	mom     *sketch.Moments
	hist    sketch.CriterionHist
	iv      float64
	ivCuts  []float64
	rgCuts  []float64 // ranker binner cuts
	codes   []uint8   // ranker codes (aliases live codes for base entries)
	kept    bool      // survived ranking into the next live set
}

type fitter struct {
	ctx        context.Context
	cfg        core.Config
	sketchSize int
	approxCuts bool
	src        frame.ChunkSource
	base       frame.ChunkSource // unwrapped source, for SkippableSource planning
	pf         *frame.Prefetch   // non-nil when chunks are leased (parallel/read-ahead)
	pool       *parallel.Pool
	ops        []operators.Operator
	arities    []int
	arena      *sketch.Arena // recycles pass-transient sketches and scratch

	names      []string
	labels     []float64
	labelBits  []uint8 // binary task: labels thresholded to 0/1 bits
	labelCls   []int32 // multiclass task: labels as class ids, -1 invalid
	n          int
	passExpect int // expected rows of the current (possibly partial) pass; 0 = full
	live       []*liveFeat
	nodes      []core.FeatureNode // all generated nodes, for pipeline assembly
	gram       *sketch.Gram       // transient: current round's pairwise co-moments

	exec      Executor // non-nil: passes run remotely (see distpass.go)
	liveEpoch int      // live-set epoch last pushed through exec.SetLive

	stats Stats
}

// prefetchDepth resolves the Config.Prefetch knob: explicit depth wins, 0 is
// auto (read-ahead 2 for parallel fits), negative disables read-ahead but a
// parallel fit still gets a depth-1 lease stream for chunk ownership.
func prefetchDepth(pref, workers int) int {
	switch {
	case pref > 0:
		return pref
	case pref == 0 && workers > 1:
		return 2
	case pref < 0 && workers > 1:
		return 1
	default:
		return 0
	}
}

// trackSketch folds a sketch's error bound into the fit statistics.
func (f *fitter) trackSketch(sk *sketch.Quantile) {
	if b := sk.ErrorBound(); b > f.stats.MaxQuantileRankError {
		f.stats.MaxQuantileRankError = b
	}
}

func (f *fitter) fit() (*core.Pipeline, *core.Report, error) {
	cfg := f.cfg
	f.names = f.src.Names()
	m := len(f.names)
	if m == 0 {
		return nil, nil, errors.New("shard: source has no feature columns")
	}
	seen := make(map[string]bool, m)
	for _, name := range f.names {
		if name == "" {
			return nil, nil, errors.New("shard: source has an empty column name")
		}
		if seen[name] {
			return nil, nil, fmt.Errorf("shard: duplicate column name %q", name)
		}
		seen[name] = true
	}
	// FitStart precedes the pre-iteration streaming passes, so a consumer
	// sees the fit open before the first (possibly long) pass over the
	// source; Rows on later events reflects cumulative source consumption.
	cfg.Emit(core.FitEvent{Kind: core.EventFitStart, Candidates: m})
	if f.exec != nil {
		if err := f.exec.Open(f.ctx, f.names, cfg.Task, f.sketchSize); err != nil {
			return nil, nil, err
		}
	}

	// Pass 1: labels plus per-feature quantile sketches and moments. Each
	// partition summarises independently (arena-recycled partials); the fold
	// merges partition summaries in partition order, exactly the sequence the
	// sequential engine accumulated in.
	f.live = make([]*liveFeat, m)
	for j, name := range f.names {
		f.live[j] = &liveFeat{name: name, sk: sketch.NewQuantile(f.sketchSize), mom: &sketch.Moments{}}
	}
	var err error
	if f.exec != nil {
		err = f.distPassBaseSketch()
	} else {
		err = f.passBaseSketchLocal(m)
	}
	if err != nil {
		return nil, nil, err
	}
	if f.n == 0 {
		return nil, nil, errors.New("shard: source has no rows")
	}
	if err := cfg.Task.ValidateLabels(f.labels); err != nil {
		return nil, nil, err
	}
	// Pre-encode the labels once for the count-valued passes: thresholding
	// (binary) and float→class conversion (multiclass) are per-row costs
	// those passes would otherwise repeat for every candidate column, and
	// random binary labels make the threshold branch mispredict constantly.
	switch cfg.Task.Kind {
	case core.TaskMulticlass:
		f.labelCls = make([]int32, len(f.labels))
		for i, y := range f.labels {
			if c := int(y); c >= 0 && c < cfg.Task.Classes {
				f.labelCls[i] = int32(c)
			} else {
				f.labelCls[i] = -1
			}
		}
	case core.TaskRegression:
	default:
		f.labelBits = make([]uint8, len(f.labels))
		for i, y := range f.labels {
			if y > 0.5 {
				f.labelBits[i] = 1
			}
		}
	}

	budget := cfg.MaxFeatures
	if budget <= 0 {
		budget = 2 * m
	}
	gamma := cfg.Gamma
	if gamma <= 0 {
		gamma = 2 * m
	}

	// Refine the live sketches' cut brackets to exact order statistics
	// (skipped in approx mode, and a no-op pass-wise when the sketches are
	// lossless), then build the resident miner codes for the original live
	// set.
	if err := f.refineLive(); err != nil {
		return nil, nil, err
	}
	for _, lf := range f.live {
		lf.minerCuts = sketch.ExactBinnerCuts(lf.sk, lf.ref, cfg.Miner.MaxBins)
		lf.codes = make([]uint8, f.n)
		f.trackSketch(lf.sk)
	}
	if err := f.syncLive(); err != nil {
		return nil, nil, err
	}
	if err := f.passLiveCodes(f.live); err != nil {
		return nil, nil, err
	}

	report := &core.Report{}
	start := time.Now()
	for round := 0; round < cfg.Iterations; round++ {
		if err := f.ctx.Err(); err != nil {
			return nil, nil, err
		}
		if cfg.TimeBudget > 0 && time.Since(start) > cfg.TimeBudget {
			break
		}
		iterStart := time.Now()
		ir := core.IterationReport{Round: round + 1}
		// The clock shares the streamed-rows counter forEachChunk maintains,
		// so event Rows reflect actual source consumption per stage.
		sc := core.NewStageClock(&cfg, &ir, &f.stats.RowsStreamed)
		cfg.Emit(core.FitEvent{
			Kind: core.EventIterationStart, Round: ir.Round,
			Candidates: len(f.live), Rows: f.stats.RowsStreamed,
		})

		// (1) Mine combination relations from the binned miner model.
		sc.Begin(core.StageMine, len(f.live))
		minerCfg := cfg.Miner
		minerCfg.Seed = cfg.Seed + int64(round)*131
		pb := &gbdt.Prebinned{Codes: make([][]uint8, len(f.live)), Cuts: make([][]float64, len(f.live))}
		liveNames := make([]string, len(f.live))
		for i, lf := range f.live {
			pb.Codes[i] = lf.codes
			pb.Cuts[i] = lf.minerCuts
			liveNames[i] = lf.name
		}
		model, err := gbdt.TrainBinnedCtx(f.ctx, pb, f.labels, liveNames, minerCfg)
		if err != nil {
			return nil, nil, core.WrapUnlessCancelled(f.ctx, err, "shard: miner")
		}
		combos := core.MineCombos(model, f.arities)
		ir.CombosMined = len(combos)
		ir.SearchSpaceAll = core.ExhaustiveCandidateCount(len(f.live), f.ops)
		sc.End(len(combos))

		// (2) Score combinations from merged contingency tables.
		sc.Begin(core.StageScore, len(combos))
		if err := f.scoreCombos(combos); err != nil {
			return nil, nil, err
		}
		combos = core.SortCombos(combos, gamma)
		ir.CombosKept = len(combos)
		if len(combos) > 0 {
			ir.BestGainRatio = combos[0].GainRatio
		}
		sc.End(len(combos))

		// (3) Enumerate candidates: base features first, then generated, in
		// the in-memory stream's order with the same formula dedup; then
		// sketch and refine the generated columns — the sharded equivalent
		// of materialising them.
		sc.Begin(core.StageGenerate, len(combos))
		entries, generated, err := f.enumerate(combos)
		if err != nil {
			return nil, nil, err
		}
		ir.Generated = generated
		ir.Candidates = len(entries)

		// (4)+(5) Sketch the generated candidates, refine their cuts to
		// exact order statistics, then bin and count labels for every
		// candidate; Information Values follow from the merged histograms.
		if err := f.passCandidateSketches(entries); err != nil {
			return nil, nil, err
		}
		if err := f.refineCandidates(entries); err != nil {
			return nil, nil, err
		}
		sc.End(len(entries))

		sc.Begin(core.StageIVFilter, len(entries))
		for _, en := range entries {
			en.ivCuts = sketch.ExactCuts(en.sk, en.ref, cfg.IVBins)
			if en.isBase && cfg.Ranker.MaxBins == cfg.Miner.MaxBins {
				en.rgCuts = f.live[en.baseIdx].minerCuts
				en.codes = f.live[en.baseIdx].codes
			} else {
				en.rgCuts = sketch.ExactBinnerCuts(en.sk, en.ref, cfg.Ranker.MaxBins)
			}
			f.trackSketch(en.sk)
		}
		if err := f.passCandidateCounts(entries); err != nil {
			return nil, nil, err
		}
		ivs := make([]float64, len(entries))
		for i, en := range entries {
			en.iv = en.hist.Criterion()
			ivs[i] = en.iv
		}

		keptA := core.IVFilter(ivs, cfg.IVThreshold, cfg.MinKeepIV)
		ir.AfterIV = len(keptA)
		sc.End(len(keptA))

		// (6) Redundancy removal from pairwise co-moments; the same pass
		// builds resident ranker codes for the surviving candidates.
		sc.Begin(core.StagePearson, len(keptA))
		keptB, err := f.pearsonDedup(entries, keptA, cfg.PearsonThreshold)
		if err != nil {
			return nil, nil, err
		}
		ir.AfterPearson = len(keptB)
		sc.End(len(keptB))

		// (7) Rank by binned-XGBoost gain, keep the budget.
		sc.Begin(core.StageRank, len(keptB))
		rankerCfg := cfg.Ranker
		rankerCfg.Seed = cfg.Seed + 7919 + int64(round)*131
		rpb := &gbdt.Prebinned{Codes: make([][]uint8, len(keptB)), Cuts: make([][]float64, len(keptB))}
		for i, idx := range keptB {
			rpb.Codes[i] = entries[idx].codes
			rpb.Cuts[i] = entries[idx].rgCuts
		}
		ranker, err := gbdt.TrainBinnedCtx(f.ctx, rpb, f.labels, nil, rankerCfg)
		if err != nil {
			return nil, nil, core.WrapUnlessCancelled(f.ctx, err, "shard: ranker")
		}
		ranked := core.OrderByGain(ranker.GainImportance(), ivs, keptB)
		if len(ranked) > budget {
			ranked = ranked[:budget]
		}
		ir.Selected = len(ranked)
		sc.End(len(ranked))

		// Record every generated node (pipeline pruning trims the unused
		// ones, as in the in-memory path) and carry the selection forward.
		for _, en := range entries {
			if !en.isBase {
				f.nodes = append(f.nodes, *en.node)
			}
		}
		next := make([]*liveFeat, 0, len(ranked))
		for _, idx := range ranked {
			en := entries[idx]
			en.kept = true
			lf := &liveFeat{
				name: en.name,
				sk:   en.sk,
				ref:  en.ref,
				mom:  en.mom,
				iv:   en.iv,
			}
			if en.isBase {
				lf.node = f.live[en.baseIdx].node
			} else {
				lf.node = en.node
			}
			// The selected candidates' ranker codes become the next round's
			// miner matrix when the bin counts agree; otherwise rebin.
			if cfg.Miner.MaxBins == cfg.Ranker.MaxBins {
				lf.minerCuts = en.rgCuts
				lf.codes = en.codes
			} else {
				lf.minerCuts = sketch.ExactBinnerCuts(en.sk, en.ref, cfg.Miner.MaxBins)
			}
			next = append(next, lf)
		}
		f.live = next
		if err := f.syncLive(); err != nil {
			return nil, nil, err
		}
		// Sketches of candidates that did not survive ranking recycle into
		// the arena — the next round's enumerate draws warm sketches instead
		// of allocating hundreds of fresh ones. Trim first: pooled sketches
		// should not pin their old cascade backings for the whole fit.
		for _, en := range entries {
			if !en.isBase && !en.kept {
				// Reset retires the levels into the free list; trim after so
				// the pooled sketch carries no backings at all.
				en.sk.Reset()
				en.sk.TrimScratch()
				f.arena.PutQuantile(en.sk)
			}
		}
		if cfg.Miner.MaxBins != cfg.Ranker.MaxBins && round+1 < cfg.Iterations {
			for _, lf := range f.live {
				lf.codes = make([]uint8, f.n)
			}
			if err := f.passLiveCodes(f.live); err != nil {
				return nil, nil, err
			}
		}

		ir.Elapsed = time.Since(iterStart)
		report.Iterations = append(report.Iterations, ir)
		cfg.Emit(core.FitEvent{
			Kind: core.EventIterationEnd, Round: ir.Round, Candidates: ir.Candidates,
			Survivors: ir.Selected, Rows: f.stats.RowsStreamed, Elapsed: ir.Elapsed,
		})
	}

	p := &core.Pipeline{OriginalNames: append([]string(nil), f.names...), Nodes: f.nodes, Task: cfg.Task}
	for _, lf := range f.live {
		p.Output = append(p.Output, lf.name)
	}
	p.Prune()
	report.Total = time.Since(start)
	cfg.Emit(core.FitEvent{
		Kind: core.EventFitEnd, Survivors: len(p.Output),
		Rows: f.stats.RowsStreamed, Elapsed: report.Total,
	})
	return p, report, nil
}

// passBaseSketchLocal is pass 1 on the local source: labels plus per-feature
// quantile sketches and moments. Each partition summarises independently
// (arena-recycled partials); the fold merges partition summaries in
// partition order, exactly the sequence the sequential engine accumulated
// in.
func (f *fitter) passBaseSketchLocal(m int) error {
	return f.runPass(func(c *frame.Chunk, w *passWorker) (func() error, error) {
		if c.Label == nil {
			return nil, errors.New("shard: source has no label column")
		}
		labels := append([]float64(nil), c.Label...)
		parts := make([]*sketch.Quantile, m)
		moms := make([]sketch.Moments, m)
		for j := 0; j < m; j++ {
			sorted, nan := sketch.SortNonNaN(c.Cols[j], &w.srt)
			part := f.arena.Quantile(f.sketchSize)
			part.AddSortedScratch(sorted, nan, &w.srt)
			parts[j] = part
			moms[j].AddAll(c.Cols[j])
		}
		return func() error {
			f.labels = append(f.labels, labels...)
			for j := 0; j < m; j++ {
				f.live[j].sk.Merge(parts[j])
				f.arena.PutQuantile(parts[j])
				f.live[j].mom.Merge(&moms[j])
			}
			return nil
		}, nil
	})
}

// enumerate builds the round's candidate entries: every live feature, then
// every operator application to the kept combinations (both argument orders
// for non-commutative binary operators), deduplicated by formula — the
// exact order and dedup of the in-memory candidate stream.
func (f *fitter) enumerate(combos []core.Combo) ([]*candidate, int, error) {
	existing := make(map[string]bool, 2*len(f.live))
	entries := make([]*candidate, 0, 2*len(f.live))
	for i, lf := range f.live {
		existing[lf.name] = true
		entries = append(entries, &candidate{
			name: lf.name, isBase: true, baseIdx: i, sk: lf.sk, ref: lf.ref, mom: lf.mom,
		})
	}
	generated := 0
	liveNames := make([]string, len(f.live))
	for i, lf := range f.live {
		liveNames[i] = lf.name
	}
	add := func(op operators.Operator, feats []int) error {
		in := make([][]float64, len(feats))
		names := make([]string, len(feats))
		for i, fi := range feats {
			names[i] = liveNames[fi]
		}
		applier, err := op.Fit(in)
		if err != nil {
			return fmt.Errorf("shard: generate %s: %w", op.Name(), err)
		}
		name := applier.Formula(names)
		if existing[name] {
			return nil
		}
		existing[name] = true
		generated++
		entries = append(entries, &candidate{
			name:    name,
			applier: applier,
			feats:   append([]int(nil), feats...),
			node:    &core.FeatureNode{Name: name, Inputs: names, Applier: applier},
			sk:      f.arena.Quantile(f.sketchSize),
			mom:     &sketch.Moments{},
		})
		return nil
	}
	for _, c := range combos {
		for _, op := range f.ops {
			if int(op.Arity()) != len(c.Features) {
				continue
			}
			if err := add(op, c.Features); err != nil {
				return nil, 0, err
			}
			if op.Arity() == operators.Binary && !operators.Commutative(op.Name()) {
				rev := []int{c.Features[1], c.Features[0]}
				if err := add(op, rev); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	return entries, generated, nil
}

// pearsonDedup replicates core's greedy Pearson filter from one Gram pass:
// candidates scan in descending-IV order and survive unless their
// standardised dot product with an already-kept candidate exceeds theta.
// The same pass materialises ranker codes for the IV survivors.
func (f *fitter) pearsonDedup(entries []*candidate, keptA []int, theta float64) ([]int, error) {
	if err := f.passGramAndCodes(entries, keptA); err != nil {
		return nil, err
	}
	g := f.gram
	f.gram = nil

	order := append([]int(nil), keptA...)
	ivs := make([]float64, len(entries))
	for i, en := range entries {
		ivs[i] = en.iv
	}
	sortByIVDesc(order, ivs)

	pos := make(map[int]int, len(keptA)) // entry index -> gram column
	for gi, idx := range keptA {
		pos[idx] = gi
	}
	isConst := func(en *candidate) bool {
		return en.mom.N == 0 || en.mom.Std() < 1e-12
	}
	limit := theta * float64(f.n)
	kept := make([]int, 0, len(order))
	for _, j := range order {
		en := entries[j]
		if isConst(en) {
			// Constant columns correlate with nothing by convention; the
			// ranker buries them, exactly as in-memory.
			kept = append(kept, j)
			continue
		}
		redundant := false
		for _, k := range kept {
			ek := entries[k]
			if isConst(ek) {
				continue
			}
			dot := g.Dot(pos[j], pos[k],
				en.mom.Mean, en.mom.Std(), ek.mom.Mean, ek.mom.Std())
			if dot < 0 {
				dot = -dot
			}
			if dot > limit {
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, j)
		}
	}
	sortInts(kept)
	return kept, nil
}
