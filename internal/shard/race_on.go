//go:build race

package shard

// raceEnabled reports whether the race detector is compiled in; the heavy
// 100k equality test skips under race (it runs in the plain test pass and
// the race build covers the same code on the 20k workload).
const raceEnabled = true
