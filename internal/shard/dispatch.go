package shard

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/operators"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// This file is the pass-execution seam the distributed fit dispatches
// through. The multi-pass coordinator loop in shard.go/passes.go stays the
// single source of truth for WHAT each streaming pass computes; when
// Config.Exec is set, each pass is reified into a serializable PassSpec,
// executed remotely chunk by chunk, and folded from Partial results in
// partition-index order — the same fold sequence the local engine runs, so
// selection stays bit-identical for any worker count or placement.
//
// WorkerState + ComputePartial are the worker half: given the schema, the
// current live set (synced by SetLive epochs) and a PassSpec, they compute
// one chunk's partial with the same kernels the local pass closures use —
// evaluator node replay, SortNonNaN sketch ingestion, pre-encoded label
// fast paths, and the regression bin-id protocol that keeps float sums in
// global row order at the coordinator.

// PassKind identifies which streaming pass a PassSpec describes.
type PassKind uint8

// The streaming pass kinds of one fit, in the order the fit first runs them.
const (
	PassBaseSketch     PassKind = 1  // labels + per-original quantile/moments partials
	PassCodes          PassKind = 2  // resident miner codes per live feature
	PassScoreBinary    PassKind = 3  // combo cells: pos/total counts
	PassScoreClasses   PassKind = 4  // combo cells: K-class counts
	PassScoreMomentIDs PassKind = 5  // combo cells: per-row cell ids (regression)
	PassSketchGen      PassKind = 6  // quantile/moments partials per generated candidate
	PassRefine         PassKind = 7  // exact-cut gather partials
	PassHistCounts     PassKind = 8  // criterion histogram partials (binary/multiclass)
	PassHistIDs        PassKind = 9  // criterion bin ids (regression)
	PassGramCodes      PassKind = 10 // pairwise co-moments + ranker codes
)

// NodeSpec is one generated feature's definition, serializable by name: the
// applier is reconstructed on the worker by resolving Op in the built-in
// operator registry (valid because the sharded engine only admits
// data-independent operators).
type NodeSpec struct {
	Name   string
	Inputs []string
	Op     string
}

// GenSpec is one not-yet-named candidate column: operator applied to live
// features (by live index).
type GenSpec struct {
	Op    string
	Feats []int
}

// ComboSpec is one mined combination to score: live feature indices plus the
// per-feature split-value sets (pre-thinning, exactly as MineCombos emits
// them — the worker rebuilds the identical ComboCells).
type ComboSpec struct {
	Features []int
	Values   [][]float64
}

// EntrySpec is one candidate of the histogram/Gram passes: a base entry
// reads live column Base; a generated entry recomputes Gen. Cuts are the
// pass's bin edges (criterion cuts or ranker cuts, per kind).
type EntrySpec struct {
	Base      int // live index, or -1 for generated entries
	Gen       GenSpec
	Cuts      []float64
	NeedCodes bool // PassGramCodes: materialise ranker codes for this entry
}

// RefineSpec is one open exact-cut refinement: the bracket arrays from the
// coordinator's Refiner plus the column to gather from — a raw source column
// (Col >= 0, the pre-generation live pass) or a generated candidate (Gen).
type RefineSpec struct {
	Col      int // source column index, or -1 for generated
	Gen      GenSpec
	Ranks    []int64
	Lo, Hi   []float64
	Resolved []bool
}

// PassSpec describes one streaming pass for remote execution. Exactly the
// fields its Kind needs are set.
type PassSpec struct {
	Pass    int // 1-based pass ordinal within the fit, for error positioning
	Kind    PassKind
	Epoch   int // live-set epoch this pass must run against
	Classes int // PassScoreClasses: K

	LiveCuts [][]float64  // PassCodes: miner cuts per live feature
	Combos   []ComboSpec  // PassScore*
	Gens     []GenSpec    // PassSketchGen
	Entries  []EntrySpec  // PassHistCounts, PassHistIDs, PassGramCodes
	Refines  []RefineSpec // PassRefine
}

// Partial is one chunk's computed contribution to a pass. The layout of
// Blobs/Ints/Codes depends on the pass kind:
//
//	BaseSketch:     Labels = chunk labels; Blobs[2j], Blobs[2j+1] = quantile,
//	                moments partial of source column j.
//	Codes:          Codes[i] = chunk codes of live feature i.
//	ScoreBinary:    Ints = pos counts then total counts (off-layout slab).
//	ScoreClasses:   Ints = K-class cell counts (off-layout slab).
//	ScoreMomentIDs: Ints = cell id per (active combo, row).
//	SketchGen:      Blobs[2i], Blobs[2i+1] = quantile, moments of Gens[i].
//	Refine:         Blobs[i] = gather partial of Refines[i].
//	HistCounts:     Blobs[i] = criterion histogram partial of Entries[i].
//	HistIDs:        Ints = bin id per (entry, row).
//	GramCodes:      Blobs[0] = Gram partial; Codes[i] = chunk ranker codes of
//	                Entries[i] when its NeedCodes is set (nil otherwise).
//
// All payloads are plain labels/bytes/int32s/codes, so the transport codec
// is kind-agnostic; the coordinator-side folds decode Blobs through the
// sketch wire codecs and validate counts before indexing.
type Partial struct {
	Chunk  int
	Start  int
	Rows   int
	Labels []float64
	Blobs  [][]byte
	Ints   []int32
	Codes  [][]uint8
}

// PassResult summarises one remotely executed pass.
type PassResult struct {
	Rows    int
	Parts   int
	Retries int64 // transient faults absorbed below the fold during the pass
}

// Executor runs streaming passes somewhere else — the seam between the fit
// coordinator and the distributed transport. RunPass must invoke fold with
// every partition's Partial exactly once, in ascending Chunk order, and must
// not call fold concurrently. Implementations retry transient faults and
// reassign partitions below the fold, so a recovered pass folds the same
// sequence a fault-free one would.
type Executor interface {
	// Open announces the fit's schema and constants. Called once, before any
	// pass.
	Open(ctx context.Context, names []string, task core.Task, sketchSize int) error
	// SetLive syncs the live feature set (and the node program deriving it)
	// ahead of passes that evaluate live columns. Epochs increase
	// monotonically; a PassSpec carries the epoch it expects.
	SetLive(ctx context.Context, epoch int, nodes []NodeSpec, live []string) error
	// RunPass executes one pass over every partition of the source.
	RunPass(ctx context.Context, spec *PassSpec, fold func(*Partial) error) (PassResult, error)
}

// WorkerState is the worker half of the seam: per-fit state a pass executor
// keeps between passes. It reuses the local engine's chunk kernels, so a
// partial computed here is value-identical to what the local pass closure
// would have produced for the same chunk.
type WorkerState struct {
	names      []string
	task       core.Task
	sketchSize int
	reg        *operators.Registry

	epoch int
	ev    *evaluator

	appliers map[string]operators.Applier
	ix       stats.CutIndexer
	srt      sketch.SortScratch
	arena    *sketch.Arena
	bits     []uint8
	cls      []int32
	buf      []float64
}

// NewWorkerState prepares worker-side fit state for the given schema.
func NewWorkerState(names []string, task core.Task, sketchSize int) *WorkerState {
	return &WorkerState{
		names:      names,
		task:       task,
		sketchSize: sketchSize,
		reg:        operators.NewRegistry(),
		appliers:   map[string]operators.Applier{},
		arena:      sketch.NewArena(),
		ev:         &evaluator{names: names, arena: sketch.NewArena()},
	}
}

// applier resolves (and caches) the stateless applier for an operator name.
func (ws *WorkerState) applier(op string, arity int) (operators.Applier, error) {
	if ap, ok := ws.appliers[op]; ok {
		return ap, nil
	}
	o, err := ws.reg.Get(op)
	if err != nil {
		return nil, fmt.Errorf("shard: worker operator %q: %w", op, err)
	}
	if !operators.DataIndependent(o) {
		return nil, fmt.Errorf("shard: worker operator %q is not data-independent", op)
	}
	if int(o.Arity()) != arity {
		return nil, fmt.Errorf("shard: worker operator %q wants arity %d, got %d", op, o.Arity(), arity)
	}
	ap, err := o.Fit(make([][]float64, arity))
	if err != nil {
		return nil, fmt.Errorf("shard: worker fit %q: %w", op, err)
	}
	ws.appliers[op] = ap
	return ap, nil
}

// SetLive installs a live-set epoch: the node program is rebuilt from the
// specs (appliers by registry name) and the evaluator retargeted.
func (ws *WorkerState) SetLive(epoch int, nodes []NodeSpec, live []string) error {
	prog := make([]core.FeatureNode, len(nodes))
	for i, nd := range nodes {
		ap, err := ws.applier(nd.Op, len(nd.Inputs))
		if err != nil {
			return err
		}
		prog[i] = core.FeatureNode{Name: nd.Name, Inputs: nd.Inputs, Applier: ap}
	}
	ws.ev = &evaluator{names: ws.names, nodes: prog, live: live, arena: ws.ev.arena}
	ws.epoch = epoch
	return nil
}

// Epoch returns the installed live-set epoch.
func (ws *WorkerState) Epoch() int { return ws.epoch }

// genCol computes one generated candidate column into dst (len rows),
// applying the same post-generation sanitisation as every engine.
func (ws *WorkerState) genCol(g GenSpec, cols [][]float64, dst []float64) error {
	ap, err := ws.applier(g.Op, len(g.Feats))
	if err != nil {
		return err
	}
	var in [3][]float64
	iv := in[:len(g.Feats)]
	for k, fi := range g.Feats {
		if fi < 0 || fi >= len(cols) {
			return fmt.Errorf("shard: generated input %d outside live set of %d", fi, len(cols))
		}
		iv[k] = cols[fi]
	}
	operators.TransformColumn(ap, iv, dst)
	core.Sanitize(dst)
	return nil
}

// labelBits returns the chunk's labels thresholded to 0/1 bits — the same
// pre-encoding the coordinator derives once from its gathered labels.
func (ws *WorkerState) labelBits(labels []float64) []uint8 {
	if cap(ws.bits) < len(labels) {
		ws.bits = make([]uint8, len(labels))
	}
	bits := ws.bits[:len(labels)]
	for i, y := range labels {
		if y > 0.5 {
			bits[i] = 1
		} else {
			bits[i] = 0
		}
	}
	return bits
}

// labelCls returns the chunk's labels as class ids (-1 when out of range).
func (ws *WorkerState) labelCls(labels []float64, k int) []int32 {
	if cap(ws.cls) < len(labels) {
		ws.cls = make([]int32, len(labels))
	}
	cls := ws.cls[:len(labels)]
	for i, y := range labels {
		if c := int(y); c >= 0 && c < k {
			cls[i] = int32(c)
		} else {
			cls[i] = -1
		}
	}
	return cls
}

// chunkBuf returns reusable scratch of the given length.
func (ws *WorkerState) chunkBuf(rows int) []float64 {
	if cap(ws.buf) < rows {
		ws.buf = make([]float64, rows)
	}
	return ws.buf[:rows]
}

// comboLayout rebuilds the cell grids and flat slab offsets of a score pass;
// mult is the per-cell width multiplier (1 for binary totals, K for class
// counts). Identical arithmetic on coordinator and worker keeps the slab
// layouts aligned.
func comboLayout(combos []ComboSpec, mult int) ([]*core.ComboCells, []int) {
	cells := make([]*core.ComboCells, len(combos))
	off := make([]int, len(combos)+1)
	for i := range combos {
		cells[i] = core.NewComboCells(&core.Combo{Features: combos[i].Features, Values: combos[i].Values})
		width := 0
		if nc := cells[i].NumCells(); nc > 1 {
			width = nc * mult
		}
		off[i+1] = off[i] + width
	}
	return cells, off
}

// ComputePartial computes one chunk's contribution to the given pass. The
// chunk must satisfy the fit schema; the caller streams its assigned chunks
// through here and ships the partials back for the ordered fold.
func (ws *WorkerState) ComputePartial(spec *PassSpec, c *frame.Chunk) (*Partial, error) {
	if len(c.Cols) != len(ws.names) {
		return nil, fmt.Errorf("shard: chunk %d has %d columns, want %d", c.Index, len(c.Cols), len(ws.names))
	}
	if spec.Epoch != ws.epoch {
		return nil, fmt.Errorf("shard: pass wants live epoch %d, worker has %d", spec.Epoch, ws.epoch)
	}
	p := &Partial{Chunk: c.Index, Start: c.Start, Rows: c.NumRows()}
	var err error
	switch spec.Kind {
	case PassBaseSketch:
		err = ws.computeBaseSketch(c, p)
	case PassCodes:
		err = ws.computeCodes(spec, c, p)
	case PassScoreBinary:
		err = ws.computeScoreBinary(spec, c, p)
	case PassScoreClasses:
		err = ws.computeScoreClasses(spec, c, p)
	case PassScoreMomentIDs:
		err = ws.computeScoreMomentIDs(spec, c, p)
	case PassSketchGen:
		err = ws.computeSketchGen(spec, c, p)
	case PassRefine:
		err = ws.computeRefine(spec, c, p)
	case PassHistCounts:
		err = ws.computeHistCounts(spec, c, p)
	case PassHistIDs:
		err = ws.computeHistIDs(spec, c, p)
	case PassGramCodes:
		err = ws.computeGramCodes(spec, c, p)
	default:
		err = fmt.Errorf("shard: unknown pass kind %d", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	return p, nil
}

func (ws *WorkerState) computeBaseSketch(c *frame.Chunk, p *Partial) error {
	if c.Label == nil {
		return fmt.Errorf("shard: source has no label column")
	}
	p.Labels = append([]float64(nil), c.Label...)
	m := len(ws.names)
	p.Blobs = make([][]byte, 2*m)
	for j := 0; j < m; j++ {
		sorted, nan := sketch.SortNonNaN(c.Cols[j], &ws.srt)
		part := ws.arena.Quantile(ws.sketchSize)
		part.AddSortedScratch(sorted, nan, &ws.srt)
		p.Blobs[2*j] = sketch.AppendQuantile(nil, part)
		ws.arena.PutQuantile(part)
		var mom sketch.Moments
		mom.AddAll(c.Cols[j])
		p.Blobs[2*j+1] = sketch.AppendMoments(nil, &mom)
	}
	return nil
}

func (ws *WorkerState) computeCodes(spec *PassSpec, c *frame.Chunk, p *Partial) error {
	if len(spec.LiveCuts) != len(ws.ev.live) {
		return fmt.Errorf("shard: codes pass has %d cut sets for %d live", len(spec.LiveCuts), len(ws.ev.live))
	}
	cols := ws.ev.liveCols(c)
	rows := c.NumRows()
	p.Codes = make([][]uint8, len(spec.LiveCuts))
	for i, cuts := range spec.LiveCuts {
		p.Codes[i] = make([]uint8, rows)
		fillCodes(p.Codes[i], cols[i], cuts, &ws.ix)
	}
	ws.ev.release()
	return nil
}

func (ws *WorkerState) computeScoreBinary(spec *PassSpec, c *frame.Chunk, p *Partial) error {
	cells, off := comboLayout(spec.Combos, 1)
	total := off[len(spec.Combos)]
	cols := ws.ev.liveCols(c)
	rows := c.NumRows()
	bits := ws.labelBits(c.Label)
	slab := make([]int32, 2*total)
	var vals [3]float64
	for ci := range spec.Combos {
		if off[ci+1] == off[ci] {
			continue
		}
		cc := cells[ci]
		feats := cc.Features()
		ppos := slab[off[ci]:off[ci+1]]
		ptot := slab[total+off[ci] : total+off[ci+1]]
		for r := 0; r < rows; r++ {
			for k, fi := range feats {
				vals[k] = cols[fi][r]
			}
			id := cc.CellOf(vals[:len(feats)])
			ptot[id]++
			ppos[id] += int32(bits[r])
		}
	}
	ws.ev.release()
	p.Ints = slab
	return nil
}

func (ws *WorkerState) computeScoreClasses(spec *PassSpec, c *frame.Chunk, p *Partial) error {
	k := spec.Classes
	cells, off := comboLayout(spec.Combos, k)
	total := off[len(spec.Combos)]
	cols := ws.ev.liveCols(c)
	rows := c.NumRows()
	cls := ws.labelCls(c.Label, k)
	slab := make([]int32, total)
	var vals [3]float64
	for ci := range spec.Combos {
		if off[ci+1] == off[ci] {
			continue
		}
		cc := cells[ci]
		feats := cc.Features()
		pcnt := slab[off[ci]:off[ci+1]]
		for r := 0; r < rows; r++ {
			for j, fi := range feats {
				vals[j] = cols[fi][r]
			}
			id := cc.CellOf(vals[:len(feats)])
			if cl := cls[r]; cl >= 0 {
				pcnt[id*k+int(cl)]++
			}
		}
	}
	ws.ev.release()
	p.Ints = slab
	return nil
}

func (ws *WorkerState) computeScoreMomentIDs(spec *PassSpec, c *frame.Chunk, p *Partial) error {
	cells, off := comboLayout(spec.Combos, 1)
	cols := ws.ev.liveCols(c)
	rows := c.NumRows()
	nActive := 0
	for ci := range spec.Combos {
		if off[ci+1] > off[ci] {
			nActive++
		}
	}
	slab := make([]int32, nActive*rows)
	var vals [3]float64
	pos := 0
	for ci := range spec.Combos {
		if off[ci+1] == off[ci] {
			continue
		}
		cc := cells[ci]
		feats := cc.Features()
		ids := slab[pos : pos+rows]
		pos += rows
		for r := 0; r < rows; r++ {
			for j, fi := range feats {
				vals[j] = cols[fi][r]
			}
			ids[r] = int32(cc.CellOf(vals[:len(feats)]))
		}
	}
	ws.ev.release()
	p.Ints = slab
	return nil
}

func (ws *WorkerState) computeSketchGen(spec *PassSpec, c *frame.Chunk, p *Partial) error {
	cols := ws.ev.liveCols(c)
	rows := c.NumRows()
	buf := ws.chunkBuf(rows)
	p.Blobs = make([][]byte, 2*len(spec.Gens))
	for i, g := range spec.Gens {
		if err := ws.genCol(g, cols, buf); err != nil {
			return err
		}
		sorted, nan := sketch.SortNonNaN(buf, &ws.srt)
		part := ws.arena.Quantile(ws.sketchSize)
		part.AddSortedScratch(sorted, nan, &ws.srt)
		p.Blobs[2*i] = sketch.AppendQuantile(nil, part)
		ws.arena.PutQuantile(part)
		var mom sketch.Moments
		mom.AddAll(buf)
		p.Blobs[2*i+1] = sketch.AppendMoments(nil, &mom)
	}
	ws.ev.release()
	return nil
}

func (ws *WorkerState) computeRefine(spec *PassSpec, c *frame.Chunk, p *Partial) error {
	rows := c.NumRows()
	var cols [][]float64
	var buf []float64
	p.Blobs = make([][]byte, len(spec.Refines))
	for i, rf := range spec.Refines {
		var vals []float64
		if rf.Col >= 0 {
			if rf.Col >= len(c.Cols) {
				return fmt.Errorf("shard: refine column %d outside schema of %d", rf.Col, len(c.Cols))
			}
			vals = c.Cols[rf.Col]
		} else {
			if cols == nil {
				cols = ws.ev.liveCols(c)
				buf = ws.chunkBuf(rows)
			}
			if err := ws.genCol(rf.Gen, cols, buf); err != nil {
				return err
			}
			vals = buf
		}
		sh := sketch.NewShadowRefiner(rf.Ranks, rf.Lo, rf.Hi, rf.Resolved)
		sh.AddChunk(vals)
		p.Blobs[i] = sketch.AppendRefinerGather(nil, sh)
	}
	if cols != nil {
		ws.ev.release()
	}
	return nil
}

// entryCol resolves one histogram/Gram entry's column for the chunk.
func (ws *WorkerState) entryCol(e *EntrySpec, cols [][]float64, buf []float64) ([]float64, error) {
	if e.Base >= 0 {
		if e.Base >= len(cols) {
			return nil, fmt.Errorf("shard: entry base %d outside live set of %d", e.Base, len(cols))
		}
		return cols[e.Base], nil
	}
	if err := ws.genCol(e.Gen, cols, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (ws *WorkerState) computeHistCounts(spec *PassSpec, c *frame.Chunk, p *Partial) error {
	cols := ws.ev.liveCols(c)
	rows := c.NumRows()
	buf := ws.chunkBuf(rows)
	multi := ws.task.Kind == core.TaskMulticlass
	var bits []uint8
	var cls []int32
	if multi {
		cls = ws.labelCls(c.Label, ws.task.Classes)
	} else {
		bits = ws.labelBits(c.Label)
	}
	p.Blobs = make([][]byte, len(spec.Entries))
	for i := range spec.Entries {
		col, err := ws.entryCol(&spec.Entries[i], cols, buf)
		if err != nil {
			return err
		}
		if multi {
			h := sketch.NewClassHist(spec.Entries[i].Cuts, ws.task.Classes)
			h.AddColCls(col, cls)
			p.Blobs[i] = sketch.AppendClassHist(nil, h)
		} else {
			h := sketch.NewLabelHist(spec.Entries[i].Cuts)
			h.AddColBits(col, bits)
			p.Blobs[i] = sketch.AppendLabelHist(nil, h)
		}
	}
	ws.ev.release()
	return nil
}

func (ws *WorkerState) computeHistIDs(spec *PassSpec, c *frame.Chunk, p *Partial) error {
	cols := ws.ev.liveCols(c)
	rows := c.NumRows()
	buf := ws.chunkBuf(rows)
	slab := make([]int32, len(spec.Entries)*rows)
	for i := range spec.Entries {
		col, err := ws.entryCol(&spec.Entries[i], cols, buf)
		if err != nil {
			return err
		}
		h := sketch.NewMomentHist(spec.Entries[i].Cuts)
		h.BinIDs(col, slab[i*rows:(i+1)*rows])
	}
	ws.ev.release()
	p.Ints = slab
	return nil
}

func (ws *WorkerState) computeGramCodes(spec *PassSpec, c *frame.Chunk, p *Partial) error {
	cols := ws.ev.liveCols(c)
	rows := c.NumRows()
	mat := make([][]float64, len(spec.Entries))
	p.Codes = make([][]uint8, len(spec.Entries))
	for i := range spec.Entries {
		e := &spec.Entries[i]
		var col []float64
		if e.Base >= 0 {
			if e.Base >= len(cols) {
				return fmt.Errorf("shard: entry base %d outside live set of %d", e.Base, len(cols))
			}
			col = cols[e.Base]
		} else {
			col = make([]float64, rows)
			if err := ws.genCol(e.Gen, cols, col); err != nil {
				return err
			}
		}
		mat[i] = col
		if e.NeedCodes {
			p.Codes[i] = make([]uint8, rows)
			fillCodes(p.Codes[i], col, e.Cuts, &ws.ix)
		}
	}
	g := sketch.NewGram(len(spec.Entries))
	g.AddRows(rows)
	g.AddPrepared(mat, sketch.PrepChunk(mat), 0, len(spec.Entries))
	ws.ev.release()
	p.Blobs = [][]byte{sketch.AppendGram(nil, g)}
	return nil
}
