// Package shard is the sharded, out-of-core fit engine: it runs the SAFE
// algorithm over a frame.ChunkSource whose partitions never coexist in
// memory, by replacing every full-column statistic of the in-memory path
// with a mergeable sketch (internal/sketch) accumulated per partition and
// merged by the coordinator.
//
// The engine makes a small number of streaming passes per iteration:
//
//  1. live stats    — per-feature quantile sketches + moments (first round)
//  2. live codes    — bin the live features into resident uint8 codes
//  3. combo scoring — per-combination label-count contingency tables
//  4. candidate sketches — quantile sketches + moments of generated columns
//  5. candidate counts   — binned label histograms → Information Values
//  6. redundancy    — pairwise co-moments (Gram) of IV survivors + codes
//
// Everything the XGBoost miner and ranker consume is the resident binned
// matrix (1 byte per value, ~8× smaller than raw float64 columns) plus the
// labels — histogram GBDT training never touches raw values, and
// gbdt.TrainBinned is bit-identical to gbdt.Train given equal bins. Combo
// gain ratios, IV and Pearson decisions are reproduced from merged counts
// and co-moments through the same exported core logic the in-memory path
// runs, so the only divergence from core.Fit is quantile-sketch cut
// placement, bounded by sketch.Quantile.ErrorBound. See docs/sharding.md
// for the error model and when to prefer each path.
package shard
