package shard

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/frame"
)

// taskWorkload generates the benchkit-shaped synthetic dataset with the
// given target kind, so the per-task equality pins cover the same planted
// signal the benchmark harness fits.
func taskWorkload(t *testing.T, rows, dim int, target datagen.TargetKind, classes int) *frame.Frame {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "shard-task-test", Train: rows, Test: 64, Dim: dim,
		Interactions: dim / 3, SignalScale: 2.5, Seed: 11,
		Target: target, Classes: classes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Train
}

// TestShardedFitMatchesInMemoryPerTask is the acceptance pin of the
// task-aware engine: for each task family, a sharded fit over 4 partitions
// selects exactly the same features, in the same order, as the in-memory
// path — for every worker count.
func TestShardedFitMatchesInMemoryPerTask(t *testing.T) {
	cases := []struct {
		name    string
		task    core.Task
		target  datagen.TargetKind
		classes int
	}{
		{"binary", core.BinaryTask(), datagen.TargetBinary, 0},
		{"multiclass3", core.MulticlassTask(3), datagen.TargetMulticlass, 3},
		{"regression", core.RegressionTask(), datagen.TargetRegression, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			train := taskWorkload(t, 6000, 10, tc.target, tc.classes)
			cfg := core.DefaultConfig()
			cfg.Task = tc.task
			cfg.Seed = 1
			want := fitInMemory(t, train, cfg)
			if want.Task != tc.task {
				t.Fatalf("in-memory pipeline task: got %v want %v", want.Task, tc.task)
			}

			for _, workers := range []int{1, 3} {
				wcfg := cfg
				wcfg.Workers = workers
				got, report, st, err := Fit(context.Background(), frame.NewFrameChunks(train, 1500), Config{Core: wcfg})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if st.Partitions != 4 {
					t.Fatalf("partitions: got %d want 4", st.Partitions)
				}
				if got.Task != tc.task {
					t.Fatalf("sharded pipeline task: got %v want %v", got.Task, tc.task)
				}
				assertSameSelection(t, want, got)
				if len(report.Iterations) != 1 || report.Iterations[0].Selected != len(got.Output) {
					t.Fatalf("report inconsistent with pipeline: %+v", report.Iterations)
				}
			}
		})
	}
}

// TestShardedFitClassAbsentFromPartition: a class that never occurs in some
// partitions must fold correctly through the merged class histograms and
// still match the in-memory selection — the merge just sees zero counts.
func TestShardedFitClassAbsentFromPartition(t *testing.T) {
	train := taskWorkload(t, 4000, 8, datagen.TargetMulticlass, 3)
	// Confine class 2 to the first quarter of the rows: with 4 partitions of
	// 1000 rows, partitions 2-4 never see it.
	for i, y := range train.Label {
		if i < 1000 {
			if i%3 == 0 {
				train.Label[i] = 2
			}
		} else if y == 2 {
			train.Label[i] = float64(i % 2)
		}
	}
	cfg := core.DefaultConfig()
	cfg.Task = core.MulticlassTask(3)
	cfg.Seed = 7
	want := fitInMemory(t, train, cfg)

	got, _, st, err := Fit(context.Background(), frame.NewFrameChunks(train, 1000), Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if st.Partitions != 4 {
		t.Fatalf("partitions: got %d want 4", st.Partitions)
	}
	assertSameSelection(t, want, got)
}

// TestShardedFitRejectsBadLabels: labels that do not fit the task must be
// rejected by the sharded entry point exactly as by the in-memory one.
func TestShardedFitRejectsBadLabels(t *testing.T) {
	train := taskWorkload(t, 400, 4, datagen.TargetMulticlass, 4) // classes in [0,4)
	cfg := core.DefaultConfig()
	cfg.Task = core.MulticlassTask(3) // class 3 is out of range
	if _, _, _, err := Fit(context.Background(), frame.NewFrameChunks(train, 100), Config{Core: cfg}); err == nil {
		t.Error("out-of-range class labels accepted")
	}

	cfg = core.DefaultConfig() // binary task, multiclass labels
	if _, _, _, err := Fit(context.Background(), frame.NewFrameChunks(train, 100), Config{Core: cfg}); err == nil {
		t.Error("non-binary labels accepted by the binary task")
	}
}
