package shard

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/frame"
)

// fingerprint reduces a fitted pipeline to the string the determinism matrix
// compares: the selected feature names in selection order. Any divergence in
// merge order, worker scheduling or partition folding shows up here.
func fingerprint(p *core.Pipeline) string { return strings.Join(p.Output, "|") }

// TestShardedFitDeterminismMatrix is the tentpole's determinism pin: for
// every task family, every worker count in {1,2,4,8} and every partitioning
// in {1,3,4} produces a fingerprint identical to the in-memory core.Fit on
// the same rows. The parallel coordinator folds partition deltas in index
// order regardless of completion order, so this must hold exactly — also
// under the race detector, where scheduling is deliberately perturbed.
func TestShardedFitDeterminismMatrix(t *testing.T) {
	const rows = 3000
	families := []struct {
		name    string
		task    core.Task
		target  datagen.TargetKind
		classes int
	}{
		{"binary", core.BinaryTask(), datagen.TargetBinary, 0},
		{"multiclass3", core.MulticlassTask(3), datagen.TargetMulticlass, 3},
		{"regression", core.RegressionTask(), datagen.TargetRegression, 0},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			train := taskWorkload(t, rows, 9, fam.target, fam.classes)
			cfg := core.DefaultConfig()
			cfg.Task = fam.task
			cfg.Seed = 1
			want := fingerprint(fitInMemory(t, train, cfg))

			for _, partitions := range []int{1, 3, 4} {
				chunkRows := (rows + partitions - 1) / partitions
				for _, workers := range []int{1, 2, 4, 8} {
					wcfg := cfg
					wcfg.Workers = workers
					got, _, st, err := Fit(context.Background(),
						frame.NewFrameChunks(train, chunkRows), Config{Core: wcfg})
					if err != nil {
						t.Fatalf("partitions=%d workers=%d: %v", partitions, workers, err)
					}
					if st.Partitions != partitions {
						t.Fatalf("partitions=%d workers=%d: source split into %d partitions",
							partitions, workers, st.Partitions)
					}
					if fp := fingerprint(got); fp != want {
						t.Fatalf("partitions=%d workers=%d diverged from core.Fit:\n got: %s\nwant: %s",
							partitions, workers, fp, want)
					}
				}
			}
		})
	}
}
