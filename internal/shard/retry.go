package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/frame"
)

// RetryPolicy bounds how the coordinator retries transient chunk-read
// errors (frame.IsTransient — flaky disks, brief stalls). A failed read is
// re-attempted in place with capped exponential backoff: the chunk has not
// been folded yet, so a successful re-read continues the pass exactly
// where it stopped and the fit stays bit-identical to a fault-free run.
// Permanent errors (checksum mismatches, format violations, unknown
// failures) are never retried — they abort the fit fast with a typed,
// position-aware PassError.
type RetryPolicy struct {
	// MaxAttempts is the total read attempts per chunk (first try
	// included); <= 1 disables retrying entirely.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry, doubling per
	// attempt (default 5ms when retrying is enabled).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 250ms).
	MaxDelay time.Duration
}

// DefaultRetryPolicy returns the standard transient-fault policy: 4 total
// attempts with 5ms → 250ms capped exponential backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
}

// enabled reports whether the policy retries at all; the zero value is
// off, so Config.Retry costs nothing unless asked for.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.enabled() }

// Delay returns the deterministic backoff before retry attempt n (1-based):
// BaseDelay doubled per prior retry, capped at MaxDelay. Exported for the
// distributed transport, which retries transient frame faults on the same
// schedule as chunk reads.
func (p RetryPolicy) Delay(n int) time.Duration { return p.delay(n) }

// delay returns the backoff before retry attempt n (1-based): BaseDelay
// doubled per prior retry, capped at MaxDelay. Deterministic — no jitter —
// so chaos replays time out identically.
func (p RetryPolicy) delay(n int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = 5 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	for i := 1; i < n; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// PassError positions a streaming-pass read failure: which pass over the
// source, which chunk ordinal within it, and how many read attempts were
// made before giving up. Unwrap reaches the source's own error, so
// errors.Is/As find the cause — e.g. colstore's *FormatError or
// *ChecksumError for corrupted column files. Context cancellation is
// never wrapped: a cancelled fit returns ctx.Err() bare.
type PassError struct {
	Pass     int // 1-based streaming pass ordinal
	Chunk    int // 0-based chunk ordinal within the pass
	Attempts int // read attempts made (> 1 means retries were exhausted)
	Err      error
}

// Error implements error.
func (e *PassError) Error() string {
	msg := fmt.Sprintf("shard: pass %d: chunk %d", e.Pass, e.Chunk)
	if e.Attempts > 1 {
		msg += fmt.Sprintf(" (after %d attempts)", e.Attempts)
	}
	return msg + ": " + e.Err.Error()
}

// Unwrap implements errors.Unwrap.
func (e *PassError) Unwrap() error { return e.Err }

// NewRetrySource wraps a chunk source with the policy's transient-read
// retry loop, counting absorbed retries into *retries (written atomically).
// A disabled policy returns src unchanged. Distributed workers wrap their
// partition streams with this, so a recovered read never surfaces to the
// coordinator's fold — only the reported retry count does.
func NewRetrySource(ctx context.Context, src frame.ChunkSource, pol RetryPolicy, retries *int64) frame.ChunkSource {
	if !pol.enabled() {
		return src
	}
	return &retrySource{src: src, ctx: ctx, pol: pol, retries: retries}
}

// retrySource wraps the raw chunk source with the retry policy. It sits
// BELOW the prefetcher: a transient error is absorbed and re-read inside
// the same Next call, so the prefetcher's in-order error delivery and the
// pass's partition-index-ordered folds never observe it — only
// Stats.Retries does. Final failures come back as *PassError (Chunk and
// Attempts filled; the runner adds Pass); io.EOF and context errors pass
// through bare.
type retrySource struct {
	src     frame.ChunkSource
	ctx     context.Context
	pol     RetryPolicy
	retries *int64 // &Stats.Retries; atomic — the prefetch reader goroutine writes it
	chunk   int    // delivered count within the current pass
}

// Names implements frame.ChunkSource.
func (r *retrySource) Names() []string { return r.src.Names() }

// NumCols implements frame.ChunkSource.
func (r *retrySource) NumCols() int { return r.src.NumCols() }

// Reset implements frame.ChunkSource; Reset errors are not retried (they
// are setup, not streaming, and the pass has folded nothing yet).
func (r *retrySource) Reset() error {
	if err := r.src.Reset(); err != nil {
		return err
	}
	r.chunk = 0
	return nil
}

// StableChunks implements frame.StableSource by forwarding the wrapped
// source's stability, so the prefetcher above keeps its zero-copy path.
func (r *retrySource) StableChunks() bool {
	if ss, ok := r.src.(frame.StableSource); ok {
		return ss.StableChunks()
	}
	return false
}

// Next implements frame.ChunkSource with the retry loop.
func (r *retrySource) Next() (*frame.Chunk, error) {
	for attempt := 1; ; attempt++ {
		c, err := r.src.Next()
		if err == nil {
			r.chunk++
			return c, nil
		}
		if errors.Is(err, io.EOF) {
			return nil, err
		}
		if ctxErr := r.ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		if !frame.IsTransient(err) || attempt >= r.pol.MaxAttempts {
			return nil, &PassError{Chunk: r.chunk, Attempts: attempt, Err: err}
		}
		if serr := r.sleep(r.pol.delay(attempt)); serr != nil {
			return nil, serr // cancelled mid-backoff: ctx.Err(), bare
		}
		atomic.AddInt64(r.retries, 1)
	}
}

// sleep waits d or until the fit's context is done, whichever comes first
// — a cancel during backoff aborts promptly, leaking no timer goroutine.
func (r *retrySource) sleep(d time.Duration) error {
	if d <= 0 {
		return r.ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-r.ctx.Done():
		return r.ctx.Err()
	}
}

// passReadError positions a chunk-read failure for the caller: context
// errors pass through bare (cancellation is the caller's signal, not a
// source fault), an existing *PassError from the retry layer gets the
// pass ordinal stamped onto a copy (never mutated in place — the
// prefetcher delivers one sticky error object to every worker), and
// anything else is wrapped fresh at the given chunk ordinal.
func (f *fitter) passReadError(err error, chunk int) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	var pe *PassError
	if errors.As(err, &pe) {
		if pe.Pass != 0 {
			return err
		}
		return &PassError{Pass: f.stats.Passes, Chunk: pe.Chunk, Attempts: pe.Attempts, Err: pe.Err}
	}
	return &PassError{Pass: f.stats.Passes, Chunk: chunk, Attempts: 1, Err: err}
}

var _ frame.ChunkSource = (*retrySource)(nil)
var _ frame.StableSource = (*retrySource)(nil)
