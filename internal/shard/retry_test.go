package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/frame"
)

// TestChaosRetryPolicyDelay pins the deterministic backoff schedule:
// doubling from BaseDelay, capped at MaxDelay, with sane defaults when the
// fields are unset.
func TestChaosRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 45 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		45 * time.Millisecond, // capped
		45 * time.Millisecond,
	}
	for i, w := range want {
		if d := p.delay(i + 1); d != w {
			t.Fatalf("delay(%d) = %v, want %v", i+1, d, w)
		}
	}
	var zero RetryPolicy
	if zero.enabled() {
		t.Fatal("zero policy must be disabled")
	}
	if d := zero.delay(1); d != 5*time.Millisecond {
		t.Fatalf("default base delay = %v, want 5ms", d)
	}
	if d := zero.delay(20); d != 250*time.Millisecond {
		t.Fatalf("default delay cap = %v, want 250ms", d)
	}
	if !DefaultRetryPolicy().enabled() {
		t.Fatal("DefaultRetryPolicy must be enabled")
	}
}

// TestChaosPassErrorPositioning pins passReadError's three contracts:
// context errors pass through bare, a retry-layer *PassError is stamped
// with the pass ordinal on a COPY (the prefetcher shares one sticky error
// object across workers, so mutating it would race), and foreign errors
// are wrapped fresh.
func TestChaosPassErrorPositioning(t *testing.T) {
	f := &fitter{}
	f.stats.Passes = 3

	if err := f.passReadError(context.Canceled, 7); err != context.Canceled {
		t.Fatalf("context error wrapped: %v", err)
	}

	cause := errors.New("flaky read")
	inner := &PassError{Chunk: 5, Attempts: 4, Err: cause}
	out := f.passReadError(inner, 9)
	var pe *PassError
	if !errors.As(out, &pe) {
		t.Fatalf("got %T, want *PassError", out)
	}
	if pe == inner {
		t.Fatal("passReadError stamped the shared error in place")
	}
	if inner.Pass != 0 {
		t.Fatal("the retry layer's error object was mutated")
	}
	if pe.Pass != 3 || pe.Chunk != 5 || pe.Attempts != 4 || !errors.Is(pe, cause) {
		t.Fatalf("stamped copy wrong: %+v", pe)
	}
	// Already-stamped errors pass through unchanged.
	if again := f.passReadError(out, 11); again != out {
		t.Fatalf("re-stamped an already-positioned error: %v", again)
	}

	wrapped := f.passReadError(cause, 2)
	if !errors.As(wrapped, &pe) || pe.Pass != 3 || pe.Chunk != 2 || pe.Attempts != 1 {
		t.Fatalf("foreign error wrapped wrong: %v", wrapped)
	}
}

// TestChaosRetryRecoversSameSelection pins in-package what the differential
// suite pins externally: transient faults under the retry policy change
// nothing about the selection, for sequential and parallel passes alike.
func TestChaosRetryRecoversSameSelection(t *testing.T) {
	train := workload(t, 4000, 8)
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Workers = 1
	want, _, _, err := Fit(context.Background(), frame.NewFrameChunks(train, 500), Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		src := chaos.Wrap(frame.NewFrameChunks(train, 500), chaos.TransientPlan(9, 3, 16))
		wcfg := cfg
		wcfg.Workers = workers
		got, _, st, err := Fit(context.Background(), src, Config{Core: wcfg, Retry: DefaultRetryPolicy()})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertSameSelection(t, want, got)
		if st.Retries < 3 {
			t.Fatalf("workers=%d: %d retries recorded, want >= 3", workers, st.Retries)
		}
	}
}

// TestChaosRetryExhaustion pins the give-up path: a fault outlasting
// MaxAttempts surfaces as a positioned *PassError that unwraps to the
// transient cause, with the attempt budget accounted.
func TestChaosRetryExhaustion(t *testing.T) {
	train := workload(t, 2000, 6)
	src := chaos.Wrap(frame.NewFrameChunks(train, 500),
		&chaos.Plan{Faults: []chaos.Fault{{Chunk: 1, Kind: chaos.Transient, Times: 10}}})
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Workers = 2
	_, _, _, err := Fit(context.Background(), src, Config{
		Core:  cfg,
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	var pe *PassError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PassError", err)
	}
	if pe.Attempts != 3 || pe.Chunk != 1 || pe.Pass != 1 {
		t.Fatalf("exhaustion positioned at pass %d chunk %d after %d attempts, want 1/1/3", pe.Pass, pe.Chunk, pe.Attempts)
	}
	var te *chaos.TransientError
	if !errors.As(err, &te) {
		t.Fatalf("transient cause lost: %v", err)
	}
	if !frame.IsTransient(pe.Err) {
		t.Fatal("exhausted error's cause no longer classified transient")
	}
}

// TestChaosRetryDisabledAbortsFast pins the zero-policy contract: without
// Config.Retry, the first transient error aborts the fit immediately (no
// hidden retries), still typed and positioned.
func TestChaosRetryDisabledAbortsFast(t *testing.T) {
	train := workload(t, 2000, 6)
	src := chaos.Wrap(frame.NewFrameChunks(train, 500),
		&chaos.Plan{Faults: []chaos.Fault{{Chunk: 2, Kind: chaos.Transient, Times: 1}}})
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Workers = 2
	_, _, _, err := Fit(context.Background(), src, Config{Core: cfg})
	var pe *PassError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PassError", err)
	}
	if pe.Attempts != 1 {
		t.Fatalf("disabled retry still attempted %d reads", pe.Attempts)
	}
	if src.Injected() != 1 {
		t.Fatalf("fault fired %d times, want 1", src.Injected())
	}
}

// TestChaosRetryCancelDuringBackoff pins prompt abort mid-backoff: with a
// fault that would back off for ~10s, cancelling the context must return
// ctx.Err() bare (never a PassError) well within a second, leaking
// nothing.
func TestChaosRetryCancelDuringBackoff(t *testing.T) {
	train := workload(t, 4000, 8)
	shardWarmup(t, train, 4)
	check := shardLeakCheck(t)

	src := chaos.Wrap(frame.NewFrameChunks(train, 500),
		&chaos.Plan{Faults: []chaos.Fault{{Chunk: 2, Kind: chaos.Transient, Times: 1000}}})
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, _, err := Fit(ctx, src, Config{
		Core:  cfg,
		Retry: RetryPolicy{MaxAttempts: 1000, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second},
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	var pe *PassError
	if errors.As(err, &pe) {
		t.Fatalf("cancellation wrapped in a PassError: %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancel during a 10s backoff took %v, want < 1s", elapsed)
	}
	cancel()
	check()
}
