package shard

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/frame"
)

// hookSource wraps a ChunkSource and runs a hook before every Next call —
// the lever for cancelling a fit mid-pass or injecting a read fault at an
// exact chunk ordinal, counted across the whole fit (all passes).
type hookSource struct {
	frame.ChunkSource
	calls int
	hook  func(call int) error
}

func (h *hookSource) Next() (*frame.Chunk, error) {
	call := h.calls
	h.calls++
	if err := h.hook(call); err != nil {
		return nil, err
	}
	return h.ChunkSource.Next()
}

// shardLeakCheck snapshots the goroutine count and asserts the process
// returns to it (pool workers are persistent by design, so callers take the
// baseline after a warmup fit has populated the pools).
func shardLeakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// shardWarmup runs one small parallel fit so the shared worker pool and the
// prefetch machinery exist before a leak baseline is taken.
func shardWarmup(t *testing.T, train *frame.Frame, workers int) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Workers = workers
	if _, _, _, err := Fit(context.Background(), frame.NewFrameChunks(train, 1000), Config{Core: cfg}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedFitCancelMidPass pins prompt multi-worker abort: the context is
// cancelled while a streaming pass is mid-flight (several chunks already
// handed to workers, the prefetcher reading ahead), and the fit must return
// ctx.Err() without leaking the reader or any pool goroutine.
func TestShardedFitCancelMidPass(t *testing.T) {
	train := workload(t, 4000, 8)
	shardWarmup(t, train, 4)
	check := shardLeakCheck(t)

	// Cancel at increasing depths into the fit: mid-first-pass (sketch
	// accumulation), and deep enough to land in a later refinement or
	// candidate pass (16 chunks/pass).
	for _, cancelAt := range []int{3, 20, 45} {
		ctx, cancel := context.WithCancel(context.Background())
		src := &hookSource{
			ChunkSource: frame.NewFrameChunks(train, 250), // 16 partitions
			hook: func(call int) error {
				if call == cancelAt {
					cancel()
				}
				return nil
			},
		}
		cfg := core.DefaultConfig()
		cfg.Seed = 1
		cfg.Workers = 4
		start := time.Now()
		_, _, _, err := Fit(ctx, src, Config{Core: cfg})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelAt=%d: got %v, want context.Canceled", cancelAt, err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("cancelAt=%d: abort took %v", cancelAt, d)
		}
		cancel()
		check()
	}
}

// TestShardedFitDeadlineExpires: an already-expired deadline aborts before
// any source chunk is consumed.
func TestShardedFitDeadlineExpires(t *testing.T) {
	train := workload(t, 2000, 6)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	src := &hookSource{ChunkSource: frame.NewFrameChunks(train, 500), hook: func(int) error { return nil }}
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Workers = 2
	if _, _, _, err := Fit(ctx, src, Config{Core: cfg}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if src.calls > 1 {
		t.Fatalf("expired fit still consumed %d chunks", src.calls)
	}
}

// TestShardedFitSourceErrorAborts pins fault propagation through the
// prefetcher and the parallel pass: a read error at any chunk ordinal
// surfaces as the fit error (not swallowed, not wrapped into a hang), with
// all goroutines reclaimed.
func TestShardedFitSourceErrorAborts(t *testing.T) {
	train := workload(t, 4000, 8)
	shardWarmup(t, train, 4)
	check := shardLeakCheck(t)

	boom := errors.New("chunk 7: simulated read failure")
	for _, failAt := range []int{0, 7, 40} {
		src := &hookSource{
			ChunkSource: frame.NewFrameChunks(train, 250), // 16 partitions
			hook: func(call int) error {
				if call == failAt {
					return boom
				}
				return nil
			},
		}
		cfg := core.DefaultConfig()
		cfg.Seed = 1
		cfg.Workers = 4
		_, _, _, err := Fit(context.Background(), src, Config{Core: cfg})
		if !errors.Is(err, boom) {
			t.Fatalf("failAt=%d: got %v, want the injected read error", failAt, err)
		}
		check()
	}
}

// TestShardedFitSequentialCancelAndError covers the same abort paths on the
// single-worker loop, which bypasses the prefetcher entirely.
func TestShardedFitSequentialCancelAndError(t *testing.T) {
	train := workload(t, 3000, 6)
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Workers = 1

	ctx, cancel := context.WithCancel(context.Background())
	src := &hookSource{
		ChunkSource: frame.NewFrameChunks(train, 500),
		hook: func(call int) error {
			if call == 4 {
				cancel()
			}
			return nil
		},
	}
	if _, _, _, err := Fit(ctx, src, Config{Core: cfg}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential cancel: got %v, want context.Canceled", err)
	}
	cancel()

	boom := errors.New("sequential read failure")
	src = &hookSource{
		ChunkSource: frame.NewFrameChunks(train, 500),
		hook: func(call int) error {
			if call == 4 {
				return boom
			}
			return nil
		},
	}
	if _, _, _, err := Fit(context.Background(), src, Config{Core: cfg}); !errors.Is(err, boom) {
		t.Fatalf("sequential read error: got %v, want the injected error", err)
	}
}
