package shard

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/frame"
)

// workload generates the same deterministic synthetic datasets the perf
// harness fits (internal/benchkit's shapes: Interactions = Dim/3, dataset
// seed 11), so equality tests pin the benchmarked distribution.
func workload(t *testing.T, rows, dim int) *frame.Frame {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "shard-test", Train: rows, Test: 64, Dim: dim,
		Interactions: dim / 3, SignalScale: 2.5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Train
}

func fitInMemory(t *testing.T, train *frame.Frame, cfg core.Config) *core.Pipeline {
	t.Helper()
	eng, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := eng.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func assertSameSelection(t *testing.T, want, got *core.Pipeline) {
	t.Helper()
	if len(want.Output) != len(got.Output) {
		t.Fatalf("selected %d features, want %d\n got: %v\nwant: %v",
			len(got.Output), len(want.Output), got.Output, want.Output)
	}
	for i := range want.Output {
		if want.Output[i] != got.Output[i] {
			t.Fatalf("selection diverges at position %d: got %q want %q\n got: %v\nwant: %v",
				i, got.Output[i], want.Output[i], got.Output, want.Output)
		}
	}
}

// TestShardedFitMatchesInMemory100k is the acceptance pin: a sharded fit
// over 4 partitions of the 100k×50 benchmark workload selects exactly the
// same features, in the same order, as the in-memory path.
func TestShardedFitMatchesInMemory100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k×50 equality runs only without -short (see the 20k variant)")
	}
	if raceEnabled {
		t.Skip("100k×50 equality is minutes-long under the race detector; the 20k variant covers the same code")
	}
	train := workload(t, 100000, 50)
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	want := fitInMemory(t, train, cfg)

	src := frame.NewFrameChunks(train, 25000) // 4 partitions
	got, report, st, err := Fit(context.Background(), src, Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if st.Partitions != 4 {
		t.Fatalf("partitions: got %d want 4", st.Partitions)
	}
	assertSameSelection(t, want, got)
	if len(report.Iterations) != 1 || report.Iterations[0].Selected != len(got.Output) {
		t.Fatalf("report inconsistent with pipeline: %+v", report.Iterations)
	}
}

// TestShardedFitMatchesInMemory20k is the fast always-on equality check
// over 5 partitions.
func TestShardedFitMatchesInMemory20k(t *testing.T) {
	train := workload(t, 20000, 20)
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	want := fitInMemory(t, train, cfg)

	src := frame.NewFrameChunks(train, 4000) // 5 partitions
	got, _, st, err := Fit(context.Background(), src, Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if st.Partitions != 5 {
		t.Fatalf("partitions: got %d want 5", st.Partitions)
	}
	assertSameSelection(t, want, got)
}

// TestShardedFitTwoIterations exercises the derived-feature evaluator: a
// second round generates from first-round features, which the sharded
// engine must replay per chunk.
func TestShardedFitTwoIterations(t *testing.T) {
	train := workload(t, 8000, 10)
	cfg := core.DefaultConfig()
	cfg.Seed = 3
	cfg.Iterations = 2
	want := fitInMemory(t, train, cfg)

	got, report, _, err := Fit(context.Background(), frame.NewFrameChunks(train, 2000), Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Iterations) != 2 {
		t.Fatalf("rounds: got %d want 2", len(report.Iterations))
	}
	assertSameSelection(t, want, got)
	// Second-round features compose first-round ones; the pipeline must
	// evaluate them on fresh data.
	tr, err := got.Transform(train)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumCols() != len(got.Output) {
		t.Fatalf("transform width %d, want %d", tr.NumCols(), len(got.Output))
	}
}

// TestShardedFitChunkedCSV pins the out-of-core path end to end: a CSV file
// far larger than the configured chunk budget fits via the streaming
// reader and selects the same features as the in-memory path on the same
// rows.
func TestShardedFitChunkedCSV(t *testing.T) {
	train := workload(t, 12000, 8)
	path := filepath.Join(t.TempDir(), "train.csv")
	if err := train.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 5

	// In-memory reference over the CSV round-trip (CSV is the common
	// serialisation, so float values survive exactly via 'g' formatting).
	ref, err := frame.ReadCSVFile(path, "label")
	if err != nil {
		t.Fatal(err)
	}
	want := fitInMemory(t, ref, cfg)

	src, err := frame.OpenCSVChunks(path, "label", 1024) // 12 partitions
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got, _, st, err := Fit(context.Background(), src, Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if st.Partitions != 12 {
		t.Fatalf("partitions: got %d want 12", st.Partitions)
	}
	if st.Rows != 12000 {
		t.Fatalf("rows: got %d want 12000", st.Rows)
	}
	assertSameSelection(t, want, got)
}

// TestShardedFitWithMissingValues: NaNs in original columns (the CSV
// reader's encoding of non-numeric cells) must fit cleanly and still match
// the in-memory selection — quantile ranks, IV bins and Pearson moments are
// all defined over each column's own non-NaN population.
func TestShardedFitWithMissingValues(t *testing.T) {
	train := workload(t, 10000, 10)
	// Poke NaNs into a few original columns at varying densities.
	for j, frac := range map[int]int{0: 50, 3: 7, 7: 3} {
		col := train.Columns[j].Values
		for i := j; i < len(col); i += frac {
			col[i] = nan()
		}
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 4
	want := fitInMemory(t, train, cfg)

	got, _, _, err := Fit(context.Background(), frame.NewFrameChunks(train, 2500), Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSelection(t, want, got)
}

func nan() float64 { return math.NaN() }

// TestShardedFitWorkerCountInvariance: identical selections for any worker
// count, as everywhere else in the repository.
func TestShardedFitWorkerCountInvariance(t *testing.T) {
	train := workload(t, 5000, 10)
	var outputs [][]string
	for _, workers := range []int{1, 3} {
		cfg := core.DefaultConfig()
		cfg.Seed = 2
		cfg.Workers = workers
		p, _, _, err := Fit(context.Background(), frame.NewFrameChunks(train, 1250), Config{Core: cfg})
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, p.Output)
	}
	if strings.Join(outputs[0], "|") != strings.Join(outputs[1], "|") {
		t.Fatalf("worker count changed the selection:\n 1: %v\n 3: %v", outputs[0], outputs[1])
	}
}

// TestShardedFitApproxCuts: approx mode trades the refinement passes for
// sketch-tolerance cuts and still produces a full-sized selection.
func TestShardedFitApproxCuts(t *testing.T) {
	train := workload(t, 20000, 10)
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	exactP, _, exactSt, err := Fit(context.Background(), frame.NewFrameChunks(train, 5000), Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	approxP, _, approxSt, err := Fit(context.Background(), frame.NewFrameChunks(train, 5000), Config{Core: cfg, ApproxCuts: true, SketchSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if approxSt.Passes >= exactSt.Passes {
		t.Fatalf("approx mode should use fewer passes: %d vs %d", approxSt.Passes, exactSt.Passes)
	}
	if approxSt.MaxQuantileRankError == 0 {
		t.Fatal("approx mode with a lossy sketch should report a nonzero rank-error bound")
	}
	if len(approxP.Output) != len(exactP.Output) {
		t.Fatalf("approx selected %d features, exact %d", len(approxP.Output), len(exactP.Output))
	}
}

func TestShardedFitRejectsUnsupportedConfigs(t *testing.T) {
	train := workload(t, 500, 4)
	src := frame.NewFrameChunks(train, 100)

	cfg := core.DefaultConfig()
	cfg.Operators = []string{"add", "minmax"} // minmax fits parameters from data
	if _, _, _, err := Fit(context.Background(), src, Config{Core: cfg}); err == nil || !strings.Contains(err.Error(), "minmax") {
		t.Errorf("stateful operator accepted: %v", err)
	}

	cfg = core.DefaultConfig()
	cfg.IVEqualWidth = true
	if _, _, _, err := Fit(context.Background(), src, Config{Core: cfg}); err == nil {
		t.Error("IVEqualWidth accepted")
	}
}

func TestShardedFitSourceValidation(t *testing.T) {
	// Unlabelled source.
	train := workload(t, 500, 4)
	unlabelled := &frame.Frame{Columns: train.Columns}
	if _, _, _, err := Fit(context.Background(), frame.NewFrameChunks(unlabelled, 100), DefaultConfig()); err == nil {
		t.Error("unlabelled source accepted")
	}
	// Empty source.
	empty := frame.NewWithShape(0, 3)
	if _, _, _, err := Fit(context.Background(), frame.NewFrameChunks(empty, 10), DefaultConfig()); err == nil {
		t.Error("empty source accepted")
	}
	// Duplicate column names.
	dup := frame.NewWithShape(50, 2)
	dup.Columns[1].Name = dup.Columns[0].Name
	if _, _, _, err := Fit(context.Background(), frame.NewFrameChunks(dup, 10), DefaultConfig()); err == nil {
		t.Error("duplicate column names accepted")
	}
}

// TestShardedFitDeterministic: two identical runs produce identical
// pipelines (no hidden randomisation in the sketches or passes).
func TestShardedFitDeterministic(t *testing.T) {
	train := workload(t, 5000, 8)
	cfg := core.DefaultConfig()
	cfg.Seed = 9
	var prev []string
	for run := 0; run < 2; run++ {
		p, _, _, err := Fit(context.Background(), frame.NewFrameChunks(train, 1000), Config{Core: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if run > 0 && strings.Join(prev, "|") != strings.Join(p.Output, "|") {
			t.Fatalf("runs diverged:\n 1: %v\n 2: %v", prev, p.Output)
		}
		prev = p.Output
	}
}
