package shard

import (
	"sort"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/operators"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// evaluator materialises the current live feature columns for one chunk:
// originals are zero-copy views of the chunk; derived features replay their
// pipeline nodes (in dependency order) with the same post-generation
// sanitisation the in-memory fit applies to candidate columns.
type evaluator struct {
	names []string
	nodes []core.FeatureNode
	live  []*liveFeat
}

// newEvaluator selects, from every node generated so far, the dependency-
// ordered subset the current live set needs.
func (f *fitter) newEvaluator() *evaluator {
	needed := make(map[string]bool, len(f.live))
	for _, lf := range f.live {
		if lf.node != nil {
			needed[lf.name] = true
		}
	}
	keep := make([]bool, len(f.nodes))
	for i := len(f.nodes) - 1; i >= 0; i-- {
		if needed[f.nodes[i].Name] {
			keep[i] = true
			for _, dep := range f.nodes[i].Inputs {
				needed[dep] = true
			}
		}
	}
	ev := &evaluator{names: f.names, live: f.live}
	for i := range f.nodes {
		if keep[i] {
			ev.nodes = append(ev.nodes, f.nodes[i])
		}
	}
	return ev
}

// liveCols returns the live columns for a chunk, in live order.
func (e *evaluator) liveCols(c *frame.Chunk) [][]float64 {
	vals := make(map[string][]float64, len(e.names)+len(e.nodes))
	for j, name := range e.names {
		vals[name] = c.Cols[j]
	}
	rows := c.NumRows()
	for i := range e.nodes {
		nd := &e.nodes[i]
		in := make([][]float64, len(nd.Inputs))
		for k, dep := range nd.Inputs {
			in[k] = vals[dep]
		}
		out := make([]float64, rows)
		operators.TransformColumn(nd.Applier, in, out)
		core.Sanitize(out)
		vals[nd.Name] = out
	}
	out := make([][]float64, len(e.live))
	for i, lf := range e.live {
		out[i] = vals[lf.name]
	}
	return out
}

// fillCodes bins one column slice into GBDT codes: 0 for NaN, 1+bin
// otherwise — the binner encoding gbdt.TrainBinned expects.
func fillCodes(dst []uint8, vals, cuts []float64, ix *stats.CutIndexer) {
	ix.Reset(cuts)
	for i, v := range vals {
		if v != v { // NaN
			dst[i] = 0
			continue
		}
		dst[i] = uint8(1 + ix.Find(v))
	}
}

// passLiveCodes streams one pass building the resident miner codes of the
// given live features from their miner cuts, column-parallel per chunk.
func (f *fitter) passLiveCodes(live []*liveFeat) error {
	ev := f.newEvaluator()
	return f.forEachChunk(func(c *frame.Chunk) error {
		cols := ev.liveCols(c)
		rows := c.NumRows()
		f.pool.ForChunks(len(live), 1, func(lo, hi int) {
			var ix stats.CutIndexer
			for i := lo; i < hi; i++ {
				fillCodes(live[i].codes[c.Start:c.Start+rows], cols[i], live[i].minerCuts, &ix)
			}
		})
		return nil
	})
}

// scoreCombos fills every combination's gain ratio from contingency
// statistics accumulated over one streaming pass, dispatching on the task:
// binary positive/total counts, K-class cell counts, or per-cell target
// moments. Each combination's accumulator is touched by exactly one worker
// per chunk and chunks stream in order, so the statistics accumulate in
// global row order — count-space (and moment-space) arithmetic identical to
// the in-memory scorer, so given the same mined combinations the scores
// match bit-for-bit.
func (f *fitter) scoreCombos(combos []core.Combo) error {
	if len(combos) == 0 {
		return nil
	}
	switch f.cfg.Task.Kind {
	case core.TaskMulticlass:
		return f.scoreCombosClasses(combos, f.cfg.Task.Classes)
	case core.TaskRegression:
		return f.scoreCombosMoments(combos)
	}
	cells := make([]*core.ComboCells, len(combos))
	pos := make([][]int, len(combos))
	tot := make([][]int, len(combos))
	for i := range combos {
		cells[i] = core.NewComboCells(&combos[i])
		if nc := cells[i].NumCells(); nc > 1 {
			pos[i] = make([]int, nc)
			tot[i] = make([]int, nc)
		}
	}
	ev := f.newEvaluator()
	err := f.forEachChunk(func(c *frame.Chunk) error {
		cols := ev.liveCols(c)
		rows := c.NumRows()
		labels := f.labels[c.Start : c.Start+rows]
		f.pool.ForChunks(len(combos), 1, func(lo, hi int) {
			var vals [3]float64
			for ci := lo; ci < hi; ci++ {
				if tot[ci] == nil {
					continue
				}
				cc := cells[ci]
				feats := cc.Features()
				for r := 0; r < rows; r++ {
					for k, fi := range feats {
						vals[k] = cols[fi][r]
					}
					id := cc.CellOf(vals[:len(feats)])
					tot[ci][id]++
					if labels[r] > 0.5 {
						pos[ci][id]++
					}
				}
			}
		})
		return nil
	})
	if err != nil {
		return err
	}
	for i := range combos {
		if tot[i] == nil {
			combos[i].GainRatio = 0
			continue
		}
		combos[i].GainRatio = stats.GainRatioFromCounts(pos[i], tot[i])
	}
	return nil
}

// scoreCombosClasses is scoreCombos for the multiclass task: per-cell
// K-class counts folded through stats.GainRatioFromClassCounts, exactly as
// the in-memory stats.GainRatioClasses accumulates them.
func (f *fitter) scoreCombosClasses(combos []core.Combo, k int) error {
	cells := make([]*core.ComboCells, len(combos))
	cnt := make([][]float64, len(combos))
	for i := range combos {
		cells[i] = core.NewComboCells(&combos[i])
		if nc := cells[i].NumCells(); nc > 1 {
			cnt[i] = make([]float64, nc*k)
		}
	}
	ev := f.newEvaluator()
	err := f.forEachChunk(func(c *frame.Chunk) error {
		cols := ev.liveCols(c)
		rows := c.NumRows()
		labels := f.labels[c.Start : c.Start+rows]
		f.pool.ForChunks(len(combos), 1, func(lo, hi int) {
			var vals [3]float64
			for ci := lo; ci < hi; ci++ {
				if cnt[ci] == nil {
					continue
				}
				cc := cells[ci]
				feats := cc.Features()
				for r := 0; r < rows; r++ {
					for j, fi := range feats {
						vals[j] = cols[fi][r]
					}
					id := cc.CellOf(vals[:len(feats)])
					cls := int(labels[r])
					if cls >= 0 && cls < k {
						cnt[ci][id*k+cls]++
					}
				}
			}
		})
		return nil
	})
	if err != nil {
		return err
	}
	for i := range combos {
		if cnt[i] == nil {
			combos[i].GainRatio = 0
			continue
		}
		combos[i].GainRatio = stats.GainRatioFromClassCounts(cnt[i], cells[i].NumCells(), k)
	}
	return nil
}

// scoreCombosMoments is scoreCombos for the regression task: per-cell
// target moments folded through stats.VarGainRatioFromMoments. The moments
// accumulate in global row order (one worker per combination, chunks in
// order), the same order the in-memory stats.VarGainRatio adds them in, so
// the float sums are bit-identical.
func (f *fitter) scoreCombosMoments(combos []core.Combo) error {
	cells := make([]*core.ComboCells, len(combos))
	cnt := make([][]float64, len(combos))
	sum := make([][]float64, len(combos))
	sumsq := make([][]float64, len(combos))
	for i := range combos {
		cells[i] = core.NewComboCells(&combos[i])
		if nc := cells[i].NumCells(); nc > 1 {
			cnt[i] = make([]float64, nc)
			sum[i] = make([]float64, nc)
			sumsq[i] = make([]float64, nc)
		}
	}
	ev := f.newEvaluator()
	err := f.forEachChunk(func(c *frame.Chunk) error {
		cols := ev.liveCols(c)
		rows := c.NumRows()
		labels := f.labels[c.Start : c.Start+rows]
		f.pool.ForChunks(len(combos), 1, func(lo, hi int) {
			var vals [3]float64
			for ci := lo; ci < hi; ci++ {
				if cnt[ci] == nil {
					continue
				}
				cc := cells[ci]
				feats := cc.Features()
				for r := 0; r < rows; r++ {
					for j, fi := range feats {
						vals[j] = cols[fi][r]
					}
					id := cc.CellOf(vals[:len(feats)])
					y := labels[r]
					cnt[ci][id]++
					sum[ci][id] += y
					sumsq[ci][id] += y * y
				}
			}
		})
		return nil
	})
	if err != nil {
		return err
	}
	for i := range combos {
		if cnt[i] == nil {
			combos[i].GainRatio = 0
			continue
		}
		combos[i].GainRatio = stats.VarGainRatioFromMoments(cnt[i], sum[i], sumsq[i])
	}
	return nil
}

// passCandidateSketches streams one pass sketching every generated
// candidate column (quantile summary + moments), candidate-parallel per
// chunk; per-partition sketches merge into each candidate's running sketch.
func (f *fitter) passCandidateSketches(entries []*candidate) error {
	var gen []*candidate
	for _, en := range entries {
		if !en.isBase {
			gen = append(gen, en)
		}
	}
	if len(gen) == 0 {
		return nil
	}
	ev := f.newEvaluator()
	return f.forEachChunk(func(c *frame.Chunk) error {
		cols := ev.liveCols(c)
		rows := c.NumRows()
		f.pool.ForChunks(len(gen), 1, func(lo, hi int) {
			buf := make([]float64, rows)
			var in [3][]float64
			for i := lo; i < hi; i++ {
				en := gen[i]
				iv := in[:len(en.feats)]
				for k, fi := range en.feats {
					iv[k] = cols[fi]
				}
				operators.TransformColumn(en.applier, iv, buf)
				core.Sanitize(buf)
				part := sketch.NewQuantile(f.sketchSize)
				part.AddAll(buf)
				en.sk.Merge(part)
				var pm sketch.Moments
				pm.AddAll(buf)
				en.mom.Merge(&pm)
			}
		})
		return nil
	})
}

// cutRankUnion merges the nearest-rank targets of every bin count the fit
// will cut a column at (miner bins, IV bins, ranker bins), so one refiner
// per column serves all cut consumers. n is the column's own non-NaN count
// — the population quantile ranks are defined over — which differs per
// column when values are missing.
func cutRankUnion(n int64, cfg *core.Config) []int64 {
	merged := sketch.CutRanks(n, cfg.Miner.MaxBins)
	for _, bins := range []int{cfg.IVBins, cfg.Ranker.MaxBins} {
		extra := sketch.CutRanks(n, bins)
		out := make([]int64, 0, len(merged)+len(extra))
		i, j := 0, 0
		for i < len(merged) || j < len(extra) {
			switch {
			case i == len(merged):
				out = append(out, extra[j])
				j++
			case j == len(extra):
				out = append(out, merged[i])
				i++
			case merged[i] < extra[j]:
				out = append(out, merged[i])
				i++
			case merged[i] > extra[j]:
				out = append(out, extra[j])
				j++
			default:
				out = append(out, merged[i])
				i++
				j++
			}
		}
		merged = out
	}
	return merged
}

// refineLive brackets the live sketches' cut targets and, when any bracket
// is still open, streams one gather pass to resolve them exactly. Approx
// mode skips refinement entirely (cuts then come straight off the
// sketches).
func (f *fitter) refineLive() error {
	if f.approxCuts {
		return nil
	}
	need := false
	for _, lf := range f.live {
		lf.ref = sketch.NewRefiner(lf.sk, cutRankUnion(lf.sk.Count(), &f.cfg))
		if lf.ref.NeedsPass() {
			need = true
		}
	}
	if !need {
		return nil
	}
	live := f.live
	return f.forEachChunk(func(c *frame.Chunk) error {
		f.pool.ForChunks(len(live), 1, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				if live[j].ref.NeedsPass() {
					live[j].ref.AddChunk(c.Cols[j])
				}
			}
		})
		return nil
	})
}

// refineCandidates is refineLive for the round's generated candidates,
// recomputing each candidate column per chunk to gather its open brackets.
func (f *fitter) refineCandidates(entries []*candidate) error {
	if f.approxCuts {
		return nil
	}
	var open []*candidate
	for _, en := range entries {
		if en.isBase {
			continue // base refiners carry over from the live set
		}
		en.ref = sketch.NewRefiner(en.sk, cutRankUnion(en.sk.Count(), &f.cfg))
		if en.ref.NeedsPass() {
			open = append(open, en)
		}
	}
	if len(open) == 0 {
		return nil
	}
	ev := f.newEvaluator()
	return f.forEachChunk(func(c *frame.Chunk) error {
		cols := ev.liveCols(c)
		rows := c.NumRows()
		f.pool.ForChunks(len(open), 1, func(lo, hi int) {
			buf := make([]float64, rows)
			var in [3][]float64
			for i := lo; i < hi; i++ {
				en := open[i]
				iv := in[:len(en.feats)]
				for k, fi := range en.feats {
					iv[k] = cols[fi]
				}
				operators.TransformColumn(en.applier, iv, buf)
				core.Sanitize(buf)
				en.ref.AddChunk(buf)
			}
		})
		return nil
	})
}

// newCriterionHist builds the task's mergeable relevance accumulator over
// the given cut points: binary label counts, K-class counts, or target
// moments.
func (f *fitter) newCriterionHist(cuts []float64) sketch.CriterionHist {
	switch f.cfg.Task.Kind {
	case core.TaskMulticlass:
		return sketch.NewClassHist(cuts, f.cfg.Task.Classes)
	case core.TaskRegression:
		return sketch.NewMomentHist(cuts)
	default:
		return sketch.NewLabelHist(cuts)
	}
}

// passCandidateCounts streams one pass accumulating every candidate's
// binned criterion histogram, from which the task's relevance criterion
// (IV, multiclass IV, or η²) follows. Each candidate's histogram is touched
// by exactly one worker per chunk and chunks stream in order, so the
// statistics accumulate in global row order — for the regression moment
// histogram that keeps the float sums bit-identical to the in-memory
// single-pass accumulation (counts merge exactly regardless of order).
func (f *fitter) passCandidateCounts(entries []*candidate) error {
	for _, en := range entries {
		en.hist = f.newCriterionHist(en.ivCuts)
	}
	ev := f.newEvaluator()
	return f.forEachChunk(func(c *frame.Chunk) error {
		cols := ev.liveCols(c)
		rows := c.NumRows()
		labels := f.labels[c.Start : c.Start+rows]
		f.pool.ForChunks(len(entries), 1, func(lo, hi int) {
			var buf []float64
			var in [3][]float64
			for i := lo; i < hi; i++ {
				en := entries[i]
				var col []float64
				if en.isBase {
					col = cols[en.baseIdx]
				} else {
					if buf == nil {
						buf = make([]float64, rows)
					}
					iv := in[:len(en.feats)]
					for k, fi := range en.feats {
						iv[k] = cols[fi]
					}
					operators.TransformColumn(en.applier, iv, buf)
					core.Sanitize(buf)
					col = buf
				}
				en.hist.AddCol(col, labels)
			}
		})
		return nil
	})
}

// passGramAndCodes streams one pass over the IV survivors, accumulating the
// pairwise co-moment Gram matrix (pair-parallel, merged by addition in
// chunk order) and materialising resident ranker codes for survivors that
// do not already alias live codes.
func (f *fitter) passGramAndCodes(entries []*candidate, keptA []int) error {
	needCodes := make([]bool, len(keptA))
	for gi, idx := range keptA {
		if entries[idx].codes == nil {
			entries[idx].codes = make([]uint8, f.n)
			needCodes[gi] = true
		}
	}
	f.gram = sketch.NewGram(len(keptA))
	ev := f.newEvaluator()
	return f.forEachChunk(func(c *frame.Chunk) error {
		cols := ev.liveCols(c)
		rows := c.NumRows()
		mat := make([][]float64, len(keptA))
		f.pool.ForChunks(len(keptA), 1, func(lo, hi int) {
			var ix stats.CutIndexer
			var in [3][]float64
			for gi := lo; gi < hi; gi++ {
				en := entries[keptA[gi]]
				var col []float64
				if en.isBase {
					col = cols[en.baseIdx]
				} else {
					col = make([]float64, rows)
					iv := in[:len(en.feats)]
					for k, fi := range en.feats {
						iv[k] = cols[fi]
					}
					operators.TransformColumn(en.applier, iv, col)
					core.Sanitize(col)
				}
				mat[gi] = col
				if needCodes[gi] {
					fillCodes(en.codes[c.Start:c.Start+rows], col, en.rgCuts, &ix)
				}
			}
		})
		g := f.gram
		g.AddRows(rows)
		prep := sketch.PrepChunk(mat)
		f.pool.ForChunks(len(keptA), 1, func(jlo, jhi int) {
			g.AddPrepared(mat, prep, jlo, jhi)
		})
		return nil
	})
}

// sortByIVDesc orders candidate indices by IV descending, ties by index
// ascending — the scan order of core's pearsonDedup.
func sortByIVDesc(order []int, ivs []float64) {
	sort.Slice(order, func(a, b int) bool {
		if ivs[order[a]] != ivs[order[b]] {
			return ivs[order[a]] > ivs[order[b]]
		}
		return order[a] < order[b]
	})
}

func sortInts(xs []int) { sort.Ints(xs) }
