package shard

import (
	"sort"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/operators"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// evaluator materialises the current live feature columns for one chunk:
// originals are zero-copy views of the chunk; derived features replay their
// pipeline nodes (in dependency order) with the same post-generation
// sanitisation the in-memory fit applies to candidate columns. Each pass
// worker owns one evaluator; its scratch (the name map, derived-column
// buffers) recycles across chunks through the fitter's arena.
type evaluator struct {
	names []string
	nodes []core.FeatureNode
	live  []string // live feature names, original or node
	arena *sketch.Arena

	vals  map[string][]float64
	out   [][]float64
	owned [][]float64 // arena buffers to return on release
}

// neededNodes selects, from every node generated so far, the dependency-
// ordered subset the current live set needs — the node program an evaluator
// (local or on a distributed worker) replays per chunk.
func (f *fitter) neededNodes() []core.FeatureNode {
	needed := make(map[string]bool, len(f.live))
	for _, lf := range f.live {
		if lf.node != nil {
			needed[lf.name] = true
		}
	}
	keep := make([]bool, len(f.nodes))
	for i := len(f.nodes) - 1; i >= 0; i-- {
		if needed[f.nodes[i].Name] {
			keep[i] = true
			for _, dep := range f.nodes[i].Inputs {
				needed[dep] = true
			}
		}
	}
	var out []core.FeatureNode
	for i := range f.nodes {
		if keep[i] {
			out = append(out, f.nodes[i])
		}
	}
	return out
}

// newEvaluator builds a pass worker's evaluator over the current live set.
func (f *fitter) newEvaluator() *evaluator {
	ev := &evaluator{names: f.names, nodes: f.neededNodes(), arena: f.arena}
	ev.live = make([]string, len(f.live))
	for i, lf := range f.live {
		ev.live[i] = lf.name
	}
	return ev
}

// liveCols returns the live columns for a chunk, in live order. The result
// (and any derived columns behind it) is valid until release.
func (e *evaluator) liveCols(c *frame.Chunk) [][]float64 {
	if e.vals == nil {
		e.vals = make(map[string][]float64, len(e.names)+len(e.nodes))
	}
	for j, name := range e.names {
		e.vals[name] = c.Cols[j]
	}
	rows := c.NumRows()
	for i := range e.nodes {
		nd := &e.nodes[i]
		in := make([][]float64, len(nd.Inputs))
		for k, dep := range nd.Inputs {
			in[k] = e.vals[dep]
		}
		out := e.arena.Floats(rows)
		e.owned = append(e.owned, out)
		operators.TransformColumn(nd.Applier, in, out)
		core.Sanitize(out)
		e.vals[nd.Name] = out
	}
	if cap(e.out) < len(e.live) {
		e.out = make([][]float64, len(e.live))
	}
	out := e.out[:len(e.live)]
	for i, name := range e.live {
		out[i] = e.vals[name]
	}
	return out
}

// release returns the evaluator's derived-column buffers to the arena and
// drops references into the chunk, which may be recycled right after.
func (e *evaluator) release() {
	for i, b := range e.owned {
		e.arena.PutFloats(b)
		e.owned[i] = nil
	}
	e.owned = e.owned[:0]
	for k := range e.vals {
		delete(e.vals, k)
	}
}

// fillCodes bins one column slice into GBDT codes: 0 for NaN, 1+bin
// otherwise — the binner encoding gbdt.TrainBinned expects.
func fillCodes(dst []uint8, vals, cuts []float64, ix *stats.CutIndexer) {
	ix.Reset(cuts)
	for i, v := range vals {
		if v != v { // NaN
			dst[i] = 0
			continue
		}
		dst[i] = uint8(1 + ix.Find(v))
	}
}

// passLiveCodes streams one pass building the resident miner codes of the
// given live features from their miner cuts. Codes land in disjoint global
// row ranges, so partitions proceed fully in parallel with nothing to fold.
func (f *fitter) passLiveCodes(live []*liveFeat) error {
	if f.exec != nil {
		return f.distPassLiveCodes(live)
	}
	return f.runPass(func(c *frame.Chunk, w *passWorker) (func() error, error) {
		cols := w.ev.liveCols(c)
		rows := c.NumRows()
		for i := range live {
			fillCodes(live[i].codes[c.Start:c.Start+rows], cols[i], live[i].minerCuts, &w.ix)
		}
		w.ev.release()
		return nil, nil
	})
}

// scoreCombos fills every combination's gain ratio from contingency
// statistics accumulated over one streaming pass, dispatching on the task:
// binary positive/total counts, K-class cell counts, or per-cell target
// moments. Partitions accumulate partial statistics concurrently and fold
// in partition order; for the count-valued families the fold is exact
// integer addition, so the scores match the in-memory scorer bit-for-bit
// given the same mined combinations.
func (f *fitter) scoreCombos(combos []core.Combo) error {
	if len(combos) == 0 {
		return nil
	}
	switch f.cfg.Task.Kind {
	case core.TaskMulticlass:
		return f.scoreCombosClasses(combos, f.cfg.Task.Classes)
	case core.TaskRegression:
		return f.scoreCombosMoments(combos)
	}
	cells := make([]*core.ComboCells, len(combos))
	// One flat accumulator block per statistic; combos whose cell grids
	// degenerate (a single cell) get zero width and score 0, as in-memory.
	off := make([]int, len(combos)+1)
	for i := range combos {
		cells[i] = core.NewComboCells(&combos[i])
		width := 0
		if nc := cells[i].NumCells(); nc > 1 {
			width = nc
		}
		off[i+1] = off[i] + width
	}
	total := off[len(combos)]
	pos := make([]int, total)
	tot := make([]int, total)
	var err error
	if f.exec != nil {
		err = f.distScoreBinary(combos, total, pos, tot)
		if err != nil {
			return err
		}
		for i := range combos {
			if off[i+1] == off[i] {
				combos[i].GainRatio = 0
				continue
			}
			combos[i].GainRatio = stats.GainRatioFromCounts(pos[off[i]:off[i+1]], tot[off[i]:off[i+1]])
		}
		return nil
	}
	err = f.runPass(func(c *frame.Chunk, w *passWorker) (func() error, error) {
		cols := w.ev.liveCols(c)
		rows := c.NumRows()
		bits := f.labelBits[c.Start : c.Start+rows]
		slab := f.arena.Int32sZeroed(2 * total)
		var vals [3]float64
		for ci := range combos {
			if off[ci+1] == off[ci] {
				continue
			}
			cc := cells[ci]
			feats := cc.Features()
			ppos := slab[off[ci]:off[ci+1]]
			ptot := slab[total+off[ci] : total+off[ci+1]]
			for r := 0; r < rows; r++ {
				for k, fi := range feats {
					vals[k] = cols[fi][r]
				}
				id := cc.CellOf(vals[:len(feats)])
				ptot[id]++
				ppos[id] += int32(bits[r]) // branchless: bit = label > 0.5
			}
		}
		w.ev.release()
		return func() error {
			for g := 0; g < total; g++ {
				pos[g] += int(slab[g])
				tot[g] += int(slab[total+g])
			}
			f.arena.PutInt32s(slab)
			return nil
		}, nil
	})
	if err != nil {
		return err
	}
	for i := range combos {
		if off[i+1] == off[i] {
			combos[i].GainRatio = 0
			continue
		}
		combos[i].GainRatio = stats.GainRatioFromCounts(pos[off[i]:off[i+1]], tot[off[i]:off[i+1]])
	}
	return nil
}

// scoreCombosClasses is scoreCombos for the multiclass task: per-cell
// K-class counts folded through stats.GainRatioFromClassCounts. Counts are
// integral, so the partition-ordered fold reproduces the in-memory
// stats.GainRatioClasses accumulation exactly.
func (f *fitter) scoreCombosClasses(combos []core.Combo, k int) error {
	cells := make([]*core.ComboCells, len(combos))
	off := make([]int, len(combos)+1)
	for i := range combos {
		cells[i] = core.NewComboCells(&combos[i])
		width := 0
		if nc := cells[i].NumCells(); nc > 1 {
			width = nc * k
		}
		off[i+1] = off[i] + width
	}
	total := off[len(combos)]
	cnt := make([]float64, total)
	var err error
	if f.exec != nil {
		err = f.distScoreClasses(combos, k, total, cnt)
		if err != nil {
			return err
		}
		for i := range combos {
			if off[i+1] == off[i] {
				combos[i].GainRatio = 0
				continue
			}
			combos[i].GainRatio = stats.GainRatioFromClassCounts(cnt[off[i]:off[i+1]], cells[i].NumCells(), k)
		}
		return nil
	}
	err = f.runPass(func(c *frame.Chunk, w *passWorker) (func() error, error) {
		cols := w.ev.liveCols(c)
		rows := c.NumRows()
		cls := f.labelCls[c.Start : c.Start+rows]
		slab := f.arena.Int32sZeroed(total)
		var vals [3]float64
		for ci := range combos {
			if off[ci+1] == off[ci] {
				continue
			}
			cc := cells[ci]
			feats := cc.Features()
			pcnt := slab[off[ci]:off[ci+1]]
			for r := 0; r < rows; r++ {
				for j, fi := range feats {
					vals[j] = cols[fi][r]
				}
				id := cc.CellOf(vals[:len(feats)])
				if cl := cls[r]; cl >= 0 {
					pcnt[id*k+int(cl)]++
				}
			}
		}
		w.ev.release()
		return func() error {
			for g := 0; g < total; g++ {
				cnt[g] += float64(slab[g])
			}
			f.arena.PutInt32s(slab)
			return nil
		}, nil
	})
	if err != nil {
		return err
	}
	for i := range combos {
		if off[i+1] == off[i] {
			combos[i].GainRatio = 0
			continue
		}
		combos[i].GainRatio = stats.GainRatioFromClassCounts(cnt[off[i]:off[i+1]], cells[i].NumCells(), k)
	}
	return nil
}

// scoreCombosMoments is scoreCombos for the regression task. Float moment
// sums are order-sensitive, so partitions compute only each row's cell id
// in parallel; the fold then accumulates targets into the per-cell moments
// in global row order — the exact float addition sequence of the in-memory
// stats.VarGainRatio, bit-identical for any worker count.
func (f *fitter) scoreCombosMoments(combos []core.Combo) error {
	cells := make([]*core.ComboCells, len(combos))
	cnt := make([][]float64, len(combos))
	sum := make([][]float64, len(combos))
	sumsq := make([][]float64, len(combos))
	active := 0
	for i := range combos {
		cells[i] = core.NewComboCells(&combos[i])
		if nc := cells[i].NumCells(); nc > 1 {
			cnt[i] = make([]float64, nc)
			sum[i] = make([]float64, nc)
			sumsq[i] = make([]float64, nc)
			active++
		}
	}
	nActive := active
	var err error
	if f.exec != nil {
		err = f.distScoreMoments(combos, nActive, cnt, sum, sumsq)
		if err != nil {
			return err
		}
		for i := range combos {
			if cnt[i] == nil {
				combos[i].GainRatio = 0
				continue
			}
			combos[i].GainRatio = stats.VarGainRatioFromMoments(cnt[i], sum[i], sumsq[i])
		}
		return nil
	}
	err = f.runPass(func(c *frame.Chunk, w *passWorker) (func() error, error) {
		cols := w.ev.liveCols(c)
		rows := c.NumRows()
		start := c.Start
		slab := f.arena.Int32s(nActive * rows)
		var vals [3]float64
		pos := 0
		for ci := range combos {
			if cnt[ci] == nil {
				continue
			}
			cc := cells[ci]
			feats := cc.Features()
			ids := slab[pos : pos+rows]
			pos += rows
			for r := 0; r < rows; r++ {
				for j, fi := range feats {
					vals[j] = cols[fi][r]
				}
				ids[r] = int32(cc.CellOf(vals[:len(feats)]))
			}
		}
		w.ev.release()
		return func() error {
			labels := f.labels[start : start+rows]
			pos := 0
			for ci := range combos {
				if cnt[ci] == nil {
					continue
				}
				ids := slab[pos : pos+rows]
				pos += rows
				ccnt, csum, csumsq := cnt[ci], sum[ci], sumsq[ci]
				for r := 0; r < rows; r++ {
					id := ids[r]
					y := labels[r]
					ccnt[id]++
					csum[id] += y
					csumsq[id] += y * y
				}
			}
			f.arena.PutInt32s(slab)
			return nil
		}, nil
	})
	if err != nil {
		return err
	}
	for i := range combos {
		if cnt[i] == nil {
			combos[i].GainRatio = 0
			continue
		}
		combos[i].GainRatio = stats.VarGainRatioFromMoments(cnt[i], sum[i], sumsq[i])
	}
	return nil
}

// passCandidateSketches streams one pass sketching every generated
// candidate column (quantile summary + moments): partitions summarise
// concurrently with arena-recycled partials, and the fold merges them into
// each candidate's running sketch in partition order — the same merge
// sequence the sequential pass performed.
func (f *fitter) passCandidateSketches(entries []*candidate) error {
	var gen []*candidate
	for _, en := range entries {
		if !en.isBase {
			gen = append(gen, en)
		}
	}
	if len(gen) == 0 {
		return nil
	}
	if f.exec != nil {
		return f.distPassCandidateSketches(gen)
	}
	return f.runPass(func(c *frame.Chunk, w *passWorker) (func() error, error) {
		cols := w.ev.liveCols(c)
		rows := c.NumRows()
		buf := f.arena.Floats(rows)
		parts := make([]*sketch.Quantile, len(gen))
		moms := make([]sketch.Moments, len(gen))
		var in [3][]float64
		for i, en := range gen {
			iv := in[:len(en.feats)]
			for k, fi := range en.feats {
				iv[k] = cols[fi]
			}
			operators.TransformColumn(en.applier, iv, buf)
			core.Sanitize(buf)
			sorted, nan := sketch.SortNonNaN(buf, &w.srt)
			part := f.arena.Quantile(f.sketchSize)
			part.AddSortedScratch(sorted, nan, &w.srt)
			parts[i] = part
			moms[i].AddAll(buf)
		}
		f.arena.PutFloats(buf)
		w.ev.release()
		return func() error {
			for i, en := range gen {
				en.sk.Merge(parts[i])
				f.arena.PutQuantile(parts[i])
				en.mom.Merge(&moms[i])
			}
			return nil
		}, nil
	})
}

// cutRankUnion merges the nearest-rank targets of every bin count the fit
// will cut a column at (miner bins, IV bins, ranker bins), so one refiner
// per column serves all cut consumers. n is the column's own non-NaN count
// — the population quantile ranks are defined over — which differs per
// column when values are missing.
func cutRankUnion(n int64, cfg *core.Config) []int64 {
	merged := sketch.CutRanks(n, cfg.Miner.MaxBins)
	for _, bins := range []int{cfg.IVBins, cfg.Ranker.MaxBins} {
		extra := sketch.CutRanks(n, bins)
		out := make([]int64, 0, len(merged)+len(extra))
		i, j := 0, 0
		for i < len(merged) || j < len(extra) {
			switch {
			case i == len(merged):
				out = append(out, extra[j])
				j++
			case j == len(extra):
				out = append(out, merged[i])
				i++
			case merged[i] < extra[j]:
				out = append(out, merged[i])
				i++
			case merged[i] > extra[j]:
				out = append(out, extra[j])
				j++
			default:
				out = append(out, merged[i])
				i++
				j++
			}
		}
		merged = out
	}
	return merged
}

// refineLive brackets the live sketches' cut targets and, when any bracket
// is still open, streams one gather pass to resolve them exactly: each
// partition gathers into shadow refiners, folded back in partition order
// (order-invariant counts; gathered values are sorted at finalize). Approx
// mode skips refinement entirely (cuts then come straight off the
// sketches). refineLive runs before any feature generation, so columns are
// read straight off the chunk.
func (f *fitter) refineLive() error {
	if f.approxCuts {
		return nil
	}
	var open []openRef
	for j, lf := range f.live {
		lf.ref = sketch.NewRefiner(lf.sk, cutRankUnion(lf.sk.Count(), &f.cfg))
		lf.sk.TrimScratch() // merge phase over; the refiner carries the pass
		if lf.ref.NeedsPass() {
			open = append(open, openRef{ref: lf.ref, col: j})
		}
	}
	if len(open) == 0 {
		return nil
	}
	if f.exec != nil {
		// Block-stat skip planning needs local source access; the distributed
		// gather always runs the full pass.
		return f.distRefineLive(open)
	}
	// The refinement pass reads original columns straight off the chunks, so
	// a source with per-block statistics can prove blocks irrelevant up
	// front: those chunks are never read, their exact contribution folded
	// from the stats instead.
	cleanup, done := f.planRefineSkip(open)
	if cleanup != nil {
		defer cleanup()
	}
	if done {
		return nil
	}
	return f.runPass(func(c *frame.Chunk, w *passWorker) (func() error, error) {
		shs := make([]*sketch.Refiner, len(open))
		for i, o := range open {
			// Per-value streaming beats sort+AddSorted here: the shared edge
			// index classifies each value in O(1), and finalize sorts the few
			// gathered in-bracket values, so the result is bit-identical.
			sh := o.ref.Shadow()
			sh.AddChunk(c.Cols[o.col])
			shs[i] = sh
		}
		return func() error {
			for i, o := range open {
				o.ref.Merge(shs[i])
			}
			return nil
		}, nil
	})
}

// refineCandidates is refineLive for the round's generated candidates,
// recomputing each candidate column per chunk to gather its open brackets.
func (f *fitter) refineCandidates(entries []*candidate) error {
	if f.approxCuts {
		return nil
	}
	var open []*candidate
	for _, en := range entries {
		if en.isBase {
			continue // base refiners carry over from the live set
		}
		en.ref = sketch.NewRefiner(en.sk, cutRankUnion(en.sk.Count(), &f.cfg))
		en.sk.TrimScratch() // merge phase over; the refiner carries the pass
		if en.ref.NeedsPass() {
			open = append(open, en)
		}
	}
	if len(open) == 0 {
		return nil
	}
	if f.exec != nil {
		return f.distRefineCandidates(open)
	}
	return f.runPass(func(c *frame.Chunk, w *passWorker) (func() error, error) {
		cols := w.ev.liveCols(c)
		rows := c.NumRows()
		buf := f.arena.Floats(rows)
		shs := make([]*sketch.Refiner, len(open))
		var in [3][]float64
		for i, en := range open {
			iv := in[:len(en.feats)]
			for k, fi := range en.feats {
				iv[k] = cols[fi]
			}
			operators.TransformColumn(en.applier, iv, buf)
			core.Sanitize(buf)
			sh := en.ref.Shadow()
			sh.AddChunk(buf)
			shs[i] = sh
		}
		f.arena.PutFloats(buf)
		w.ev.release()
		return func() error {
			for i, en := range open {
				en.ref.Merge(shs[i])
			}
			return nil
		}, nil
	})
}

// newCriterionHist builds the task's mergeable relevance accumulator over
// the given cut points: binary label counts, K-class counts, or target
// moments.
func (f *fitter) newCriterionHist(cuts []float64) sketch.CriterionHist {
	switch f.cfg.Task.Kind {
	case core.TaskMulticlass:
		return sketch.NewClassHist(cuts, f.cfg.Task.Classes)
	case core.TaskRegression:
		return sketch.NewMomentHist(cuts)
	default:
		return sketch.NewLabelHist(cuts)
	}
}

// passCandidateCounts streams one pass accumulating every candidate's
// binned criterion histogram, from which the task's relevance criterion
// (IV, multiclass IV, or η²) follows. The count-valued families (binary,
// multiclass) accumulate per-partition shadow histograms folded exactly in
// partition order; the regression moment histogram computes bin ids in
// parallel and replays the target sums in global row order, keeping the
// float arithmetic bit-identical to the in-memory single-pass accumulation.
func (f *fitter) passCandidateCounts(entries []*candidate) error {
	for _, en := range entries {
		en.hist = f.newCriterionHist(en.ivCuts)
	}
	if f.exec != nil {
		return f.distPassCandidateCounts(entries)
	}
	regression := f.cfg.Task.Kind == core.TaskRegression
	return f.runPass(func(c *frame.Chunk, w *passWorker) (func() error, error) {
		cols := w.ev.liveCols(c)
		rows := c.NumRows()
		start := c.Start
		labels := f.labels[start : start+rows]
		var buf []float64
		colFor := func(en *candidate) []float64 {
			if en.isBase {
				return cols[en.baseIdx]
			}
			if buf == nil {
				buf = f.arena.Floats(rows)
			}
			var in [3][]float64
			iv := in[:len(en.feats)]
			for k, fi := range en.feats {
				iv[k] = cols[fi]
			}
			operators.TransformColumn(en.applier, iv, buf)
			core.Sanitize(buf)
			return buf
		}
		if regression {
			slab := f.arena.Int32s(len(entries) * rows)
			for i, en := range entries {
				en.hist.(*sketch.MomentHist).BinIDs(colFor(en), slab[i*rows:(i+1)*rows])
			}
			if buf != nil {
				f.arena.PutFloats(buf)
			}
			w.ev.release()
			return func() error {
				targets := f.labels[start : start+rows]
				for i, en := range entries {
					en.hist.(*sketch.MomentHist).AddBinned(slab[i*rows:(i+1)*rows], targets)
				}
				f.arena.PutInt32s(slab)
				return nil
			}, nil
		}
		shadows := make([]sketch.CriterionHist, len(entries))
		for i, en := range entries {
			sh := shadowHist(en.hist)
			// The pre-encoded label paths fold the same integer counts as
			// AddCol without re-deriving the label per value per candidate.
			switch h := sh.(type) {
			case *sketch.LabelHist:
				h.AddColBits(colFor(en), f.labelBits[start:start+rows])
			case *sketch.ClassHist:
				h.AddColCls(colFor(en), f.labelCls[start:start+rows])
			default:
				sh.AddCol(colFor(en), labels)
			}
			shadows[i] = sh
		}
		if buf != nil {
			f.arena.PutFloats(buf)
		}
		w.ev.release()
		return func() error {
			for i, en := range entries {
				if err := en.hist.MergeHist(shadows[i]); err != nil {
					return err
				}
			}
			return nil
		}, nil
	})
}

// passGramAndCodes streams one pass over the IV survivors, accumulating the
// pairwise co-moment Gram matrix (per-partition partials merged by addition
// in partition order — the identical float sums of the sequential pass,
// since each chunk's dot products add once either way) and materialising
// resident ranker codes for survivors that do not already alias live codes.
func (f *fitter) passGramAndCodes(entries []*candidate, keptA []int) error {
	needCodes := make([]bool, len(keptA))
	for gi, idx := range keptA {
		if entries[idx].codes == nil {
			entries[idx].codes = make([]uint8, f.n)
			needCodes[gi] = true
		}
	}
	f.gram = sketch.NewGram(len(keptA))
	if f.exec != nil {
		return f.distPassGramAndCodes(entries, keptA, needCodes)
	}
	return f.runPass(func(c *frame.Chunk, w *passWorker) (func() error, error) {
		cols := w.ev.liveCols(c)
		rows := c.NumRows()
		mat := make([][]float64, len(keptA))
		var owned [][]float64
		var in [3][]float64
		for gi, idx := range keptA {
			en := entries[idx]
			var col []float64
			if en.isBase {
				col = cols[en.baseIdx]
			} else {
				col = f.arena.Floats(rows)
				owned = append(owned, col)
				iv := in[:len(en.feats)]
				for k, fi := range en.feats {
					iv[k] = cols[fi]
				}
				operators.TransformColumn(en.applier, iv, col)
				core.Sanitize(col)
			}
			mat[gi] = col
			if needCodes[gi] {
				fillCodes(en.codes[c.Start:c.Start+rows], col, en.rgCuts, &w.ix)
			}
		}
		pg := f.arena.Gram(len(keptA))
		pg.AddRows(rows)
		pg.AddPrepared(mat, sketch.PrepChunk(mat), 0, len(keptA))
		for _, b := range owned {
			f.arena.PutFloats(b)
		}
		w.ev.release()
		return func() error {
			f.gram.Merge(pg)
			f.arena.PutGram(pg)
			return nil
		}, nil
	})
}

// sortByIVDesc orders candidate indices by IV descending, ties by index
// ascending — the scan order of core's pearsonDedup.
func sortByIVDesc(order []int, ivs []float64) {
	sort.Slice(order, func(a, b int) bool {
		if ivs[order[a]] != ivs[order[b]] {
			return ivs[order[a]] > ivs[order[b]]
		}
		return order[a] < order[b]
	})
}

func sortInts(xs []int) { sort.Ints(xs) }
