//go:build !race

package shard

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
