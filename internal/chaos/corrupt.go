package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/colstore"
)

// Corruption is one deterministic mutilation of a colstore image: a
// truncation at a structural boundary, a bit flip inside a checksummed
// section, or a zeroed checksum field. Corruptions are plain data — the
// same Corruption applied to the same image always yields the same bytes.
type Corruption struct {
	// Name labels the corruption for test output, e.g.
	// "flip:block[g0,x]@+0" or "truncate:footer-end".
	Name string
	// TruncateTo >= 0 cuts the image to that many bytes; -1 mutates in
	// place via Off/XOR/ZeroLen instead.
	TruncateTo int
	// Off is the mutation's byte offset in the image.
	Off int
	// XOR is flipped into the byte at Off (when ZeroLen == 0).
	XOR byte
	// ZeroLen > 0 zeroes ZeroLen bytes starting at Off.
	ZeroLen int
}

// Corrupt applies c to a copy of raw and returns the mutated image; raw is
// never modified.
func Corrupt(raw []byte, c Corruption) []byte {
	if c.TruncateTo >= 0 {
		n := c.TruncateTo
		if n > len(raw) {
			n = len(raw)
		}
		return append([]byte(nil), raw[:n]...)
	}
	out := append([]byte(nil), raw...)
	if c.Off < 0 || c.Off >= len(out) {
		return out
	}
	if c.ZeroLen > 0 {
		for i := 0; i < c.ZeroLen && c.Off+i < len(out); i++ {
			out[c.Off+i] = 0
		}
		return out
	}
	out[c.Off] ^= c.XOR
	return out
}

// Corruptions enumerates every corruption the chaos writer produces for a
// valid colstore image: a truncation at each structural section boundary
// (plus the empty file), bit flips at the first, middle, and last byte of
// every checksummed section (header magic and version bytes, each data
// block, the footer, and the trailer's extent, checksum, and magic
// fields), and a zeroed footer CRC. By construction the set excludes bytes
// no reader validates — block alignment padding, the header's and
// trailer's reserved bytes — so applying any returned corruption MUST
// yield a typed error from both colstore readers; silence is a bug the
// corruption matrix test and the block-corruption fuzz target exist to
// catch.
func Corruptions(raw []byte) ([]Corruption, error) {
	secs, err := colstore.Layout(raw)
	if err != nil {
		return nil, err
	}
	size := len(raw)
	var out []Corruption
	truncated := map[int]bool{size: true} // a full-length "truncation" is not a corruption
	truncate := func(name string, n int) {
		if n < 0 || truncated[n] {
			return
		}
		truncated[n] = true
		out = append(out, Corruption{Name: "truncate:" + name, TruncateTo: n})
	}
	flip := func(name string, off int, mask byte) {
		out = append(out, Corruption{
			Name: fmt.Sprintf("flip:%s@%d", name, off), TruncateTo: -1, Off: off, XOR: mask,
		})
	}
	// Flips at a section's first, middle, and last byte — enough to cover
	// every distinct validation path (magic, lengths, payload CRCs) without
	// an O(bytes) matrix on big images.
	flipSpread := func(name string, off, length int) {
		if length <= 0 {
			return
		}
		offs := []int{off, off + length/2, off + length - 1}
		seen := map[int]bool{}
		for _, o := range offs {
			if !seen[o] {
				seen[o] = true
				flip(name, o, 0x01)
			}
		}
	}

	truncate("empty", 0)
	for _, sec := range secs {
		end := int(sec.Off + sec.Len)
		label := sec.Name
		if sec.Group >= 0 {
			label = fmt.Sprintf("%s[g%d,%s]", sec.Name, sec.Group, sec.Column)
		}
		truncate(label+"-end", end)
		switch sec.Name {
		case colstore.SectionHeader:
			// Bytes [0,6): magic + version. [6,8) is unvalidated reserve —
			// flipping it would be an undetectable (harmless) corruption,
			// exactly what this enumeration must not produce.
			flip(label+"-magic", int(sec.Off), 0x01)
			flip(label+"-version", int(sec.Off)+4, 0x01)
		case colstore.SectionBlock, colstore.SectionFooter:
			flipSpread(label, int(sec.Off), int(sec.Len))
		case colstore.SectionTrailer:
			// footerOff u64 | footerLen u64 | footerCRC u32 | reserved
			// [20,24) | tail magic [24,32). The reserve is unchecksummed.
			flip(label+"-footer-off", int(sec.Off), 0xFF)
			flip(label+"-footer-len", int(sec.Off)+8, 0xFF)
			flip(label+"-footer-crc", int(sec.Off)+16, 0x01)
			flip(label+"-magic", int(sec.Off)+24, 0x01)
			flip(label+"-magic-last", int(sec.Off)+31, 0x01)
			out = append(out, Corruption{
				Name: "zero:" + label + "-footer-crc", TruncateTo: -1,
				Off: int(sec.Off) + 16, ZeroLen: 4,
			})
		case colstore.SectionPad:
			// Padding is not covered by any checksum; corrupting it is
			// undetectable by design, so the writer never targets it.
		}
	}
	return out, nil
}

// SampleCorruptions picks n seeded corruptions from the full enumeration —
// the corruption-side analogue of TransientPlan. The same seed always
// selects the same subset, in enumeration order.
func SampleCorruptions(raw []byte, seed int64, n int) ([]Corruption, error) {
	all, err := Corruptions(raw)
	if err != nil {
		return nil, err
	}
	if n >= len(all) {
		return all, nil
	}
	rng := rand.New(rand.NewSource(seed))
	pick := rng.Perm(len(all))[:n]
	// Restore enumeration order so replays read naturally.
	for i := 0; i < len(pick); i++ {
		for j := i + 1; j < len(pick); j++ {
			if pick[j] < pick[i] {
				pick[i], pick[j] = pick[j], pick[i]
			}
		}
	}
	out := make([]Corruption, 0, n)
	for _, i := range pick {
		out = append(out, all[i])
	}
	return out, nil
}
