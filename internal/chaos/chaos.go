// Package chaos is the deterministic fault-injection layer of the
// out-of-core engine's test harness. It wraps frame.ChunkSource streams
// with seeded, exactly-replayable failures — transient and permanent read
// errors at chosen chunk ordinals, delayed delivery, early EOF — detects
// consumers that mutate chunk memory they no longer own (MutationGuard),
// and mutilates colstore images along their structural section boundaries
// (Corruptions/Corrupt) so every corruption is provably detectable by the
// format's checksums.
//
// Everything is driven by plain data (Plan, Corruption) with no hidden
// randomness: a seed builds the plan once, and replaying the same plan
// reproduces the same failures in the same order. The differential chaos
// suite fits identical workloads through clean and fault-injected sources
// and asserts the shard coordinator's retry path recovers bit-identically;
// see docs/testing.md.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/frame"
)

// Kind enumerates the failure modes an injected fault can take.
type Kind int

// Fault kinds.
const (
	// Transient fails the read at the fault's chunk ordinal for Times
	// consecutive attempts, then lets it succeed — the class a retry
	// policy must absorb without changing the fit.
	Transient Kind = iota
	// Permanent fails the read at the fault's ordinal on every attempt:
	// retrying must give up and surface the error typed.
	Permanent
	// Delay delivers the chunk after an extra Sleep, exercising ordering
	// and timeout behaviour without failing anything.
	Delay
	// EarlyEOF ends the stream at the fault's ordinal, one pass short — an
	// unstable source the coordinator must refuse, not mis-fit.
	EarlyEOF
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Delay:
		return "delay"
	case EarlyEOF:
		return "early-eof"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrInjected is the default cause of injected faults; custom causes (e.g.
// a colstore checksum error) go in Fault.Err.
var ErrInjected = errors.New("chaos: injected fault")

// Fault is one planned failure, keyed by the cumulative ordinal of
// successful chunk deliveries across the source's whole lifetime — passes
// included — so a fault placed at ordinal N fires exactly once no matter
// how many passes the consumer makes or how its Next calls interleave
// with retries.
type Fault struct {
	Chunk int           // 0-based cumulative delivery ordinal the fault fires at
	Kind  Kind          // failure mode
	Times int           // Transient: consecutive failed attempts before success (min 1)
	Sleep time.Duration // Delay: added latency
	Err   error         // cause to inject; nil uses ErrInjected
}

// Plan is a replayable fault schedule. Build one by hand or seeded through
// TransientPlan; the zero value injects nothing.
type Plan struct {
	Faults []Fault
}

// TransientPlan builds a seeded plan of n transient faults at distinct
// chunk ordinals within [0, chunks), each failing one or two consecutive
// attempts. The same seed always yields the same plan.
func TransientPlan(seed int64, n, chunks int) *Plan {
	if n > chunks {
		n = chunks
	}
	rng := rand.New(rand.NewSource(seed))
	ords := rng.Perm(chunks)[:n]
	sort.Ints(ords)
	p := &Plan{Faults: make([]Fault, 0, n)}
	for _, ord := range ords {
		p.Faults = append(p.Faults, Fault{Chunk: ord, Kind: Transient, Times: 1 + rng.Intn(2)})
	}
	return p
}

// TransientError is the retryable error class the injectors produce: it
// implements frame.Transienter, so the shard coordinator's retry policy
// re-reads instead of aborting. Chunk is the delivery ordinal the fault
// fired at, Attempt the 1-based failed attempt.
type TransientError struct {
	Chunk   int
	Attempt int
	Err     error
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("chaos: transient fault at chunk %d (attempt %d): %v", e.Chunk, e.Attempt, e.Err)
}

// Unwrap implements errors.Unwrap.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient implements frame.Transienter.
func (e *TransientError) Transient() bool { return true }

// faultState tracks one planned fault's consumption.
type faultState struct {
	Fault
	failed int  // Transient: attempts failed so far
	spent  bool // fired to completion; the fault is inert from here on
}

// Source wraps a frame.ChunkSource with a Plan's faults. It forwards the
// full source contract (including StableChunks for stable sources) and is
// safe wherever the wrapped source is — the injectors add no goroutines
// and no locking, so they compose under the prefetcher and the shard
// coordinator exactly like the real source would.
type Source struct {
	src       frame.ChunkSource
	byChunk   map[int]*faultState
	delivered int // successful deliveries across the whole lifetime
	injected  int // faults fired (each transient attempt counts)
}

// Wrap builds a fault-injecting view of src. A nil or empty plan injects
// nothing.
func Wrap(src frame.ChunkSource, p *Plan) *Source {
	s := &Source{src: src, byChunk: make(map[int]*faultState)}
	if p != nil {
		for _, f := range p.Faults {
			if f.Kind == Transient && f.Times < 1 {
				f.Times = 1
			}
			s.byChunk[f.Chunk] = &faultState{Fault: f}
		}
	}
	return s
}

// Names implements frame.ChunkSource.
func (s *Source) Names() []string { return s.src.Names() }

// NumCols implements frame.ChunkSource.
func (s *Source) NumCols() int { return s.src.NumCols() }

// Reset implements frame.ChunkSource. Fault ordinals count across Reset:
// a fault fires once per lifetime, not once per pass.
func (s *Source) Reset() error { return s.src.Reset() }

// StableChunks implements frame.StableSource by forwarding the wrapped
// source's stability (false when it declares none).
func (s *Source) StableChunks() bool {
	if ss, ok := s.src.(frame.StableSource); ok {
		return ss.StableChunks()
	}
	return false
}

// Next implements frame.ChunkSource, firing the plan's fault for the
// current delivery ordinal first.
func (s *Source) Next() (*frame.Chunk, error) {
	ord := s.delivered
	if st, ok := s.byChunk[ord]; ok && !st.spent {
		switch st.Kind {
		case Transient:
			if st.failed < st.Times {
				st.failed++
				s.injected++
				if st.failed == st.Times {
					st.spent = true // the next attempt reads through
				}
				return nil, &TransientError{Chunk: ord, Attempt: st.failed, Err: st.cause()}
			}
		case Permanent:
			s.injected++
			return nil, fmt.Errorf("chaos: permanent fault at chunk %d: %w", ord, st.cause())
		case Delay:
			st.spent = true
			s.injected++
			time.Sleep(st.Sleep)
		case EarlyEOF:
			st.spent = true
			s.injected++
			return nil, io.EOF
		}
	}
	c, err := s.src.Next()
	if err != nil {
		return nil, err
	}
	s.delivered++
	return c, nil
}

// Injected returns how many faults have fired so far (each failed
// transient attempt counts as one).
func (s *Source) Injected() int { return s.injected }

// Delivered returns the cumulative successful delivery count.
func (s *Source) Delivered() int { return s.delivered }

func (st *faultState) cause() error {
	if st.Err != nil {
		return st.Err
	}
	return ErrInjected
}

var _ frame.ChunkSource = (*Source)(nil)
var _ frame.StableSource = (*Source)(nil)
