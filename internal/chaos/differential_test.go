// Differential chaos suite: the same workload is fitted through a clean
// source and through fault-injected sources across worker counts, and the
// selected features must be bit-identical whenever the faults are
// recoverable — while unrecoverable faults must surface as typed,
// position-aware errors, never a silent wrong answer. This file is the
// acceptance pin for the chaos harness; run it under -race.
package chaos_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/frame"
	"repro/internal/shard"
)

// chaosWorkload generates the benchmark-shaped synthetic dataset (the same
// distribution the shard equality tests pin: Interactions = Dim/3, dataset
// seed 11).
func chaosWorkload(t *testing.T, rows, dim int) *frame.Frame {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "chaos-test", Train: rows, Test: 64, Dim: dim,
		Interactions: dim / 3, SignalScale: 2.5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Train
}

// fingerprint is the selection identity a recovered fit must reproduce.
func fingerprint(p *core.Pipeline) string { return strings.Join(p.Output, "|") }

// leakCheck snapshots the goroutine count after a warmup fit and asserts
// the process returns to it.
func leakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// warmup runs one small fit per worker count so every shared worker pool
// (they are persistent by design, one per size) exists before a leak
// baseline is taken.
func warmup(t *testing.T, train *frame.Frame, workers ...int) {
	t.Helper()
	for _, w := range workers {
		cfg := core.DefaultConfig()
		cfg.Seed = 1
		cfg.Workers = w
		if _, _, _, err := shard.Fit(context.Background(), frame.NewFrameChunks(train, 1000), shard.Config{Core: cfg}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosDifferentialShardedFit is the recovery pin: a seeded plan of
// transient read faults at distinct chunk ordinals is injected under the
// coordinator's retry policy, for every worker count, and each recovered
// fit must select exactly the features the clean fit selects — the faults
// are invisible to the result, visible only in Stats.Retries.
func TestChaosDifferentialShardedFit(t *testing.T) {
	train := chaosWorkload(t, 6000, 9)
	warmup(t, train, 1, 2, 4, 8)
	check := leakCheck(t)

	const chunkRows = 500 // 12 partitions per pass
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Workers = 1
	clean, _, _, err := shard.Fit(context.Background(), frame.NewFrameChunks(train, chunkRows), shard.Config{Core: cfg})
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(clean)
	if want == "" {
		t.Fatal("clean fit selected nothing; the differential pin would be vacuous")
	}

	// 4 transient faults inside the first two passes (ordinals < 24),
	// failing 1-2 attempts each — all inside the default 4-attempt budget.
	plan := chaos.TransientPlan(42, 4, 24)
	for _, workers := range []int{1, 2, 4, 8} {
		src := chaos.Wrap(frame.NewFrameChunks(train, chunkRows), plan)
		wcfg := cfg
		wcfg.Workers = workers
		got, _, st, err := shard.Fit(context.Background(), src, shard.Config{Core: wcfg, Retry: shard.DefaultRetryPolicy()})
		if err != nil {
			t.Fatalf("workers=%d: fit failed despite retry policy: %v", workers, err)
		}
		if g := fingerprint(got); g != want {
			t.Fatalf("workers=%d: recovered fit diverged\n got: %s\nwant: %s", workers, g, want)
		}
		if src.Injected() < 3 {
			t.Fatalf("workers=%d: only %d faults fired; the run barely exercised recovery", workers, src.Injected())
		}
		if st.Retries != int64(src.Injected()) {
			t.Fatalf("workers=%d: %d retries recorded for %d injected faults", workers, st.Retries, src.Injected())
		}
		check()
	}
}

// TestChaosPermanentFaultTypedError pins fast, typed failure: a permanent
// read fault must abort the fit without retries, as a *shard.PassError
// that positions the failure and unwraps to the planned cause.
func TestChaosPermanentFaultTypedError(t *testing.T) {
	train := chaosWorkload(t, 4000, 8)
	warmup(t, train, 1, 4)
	check := leakCheck(t)

	sentinel := errors.New("sector unreadable")
	for _, workers := range []int{1, 4} {
		src := chaos.Wrap(frame.NewFrameChunks(train, 500),
			&chaos.Plan{Faults: []chaos.Fault{{Chunk: 3, Kind: chaos.Permanent, Err: sentinel}}})
		cfg := core.DefaultConfig()
		cfg.Seed = 1
		cfg.Workers = workers
		start := time.Now()
		_, _, _, err := shard.Fit(context.Background(), src, shard.Config{Core: cfg, Retry: shard.DefaultRetryPolicy()})
		if err == nil {
			t.Fatalf("workers=%d: permanent fault produced a result", workers)
		}
		var pe *shard.PassError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %T (%v), want *shard.PassError", workers, err, err)
		}
		if pe.Attempts != 1 {
			t.Fatalf("workers=%d: permanent fault was retried (%d attempts)", workers, pe.Attempts)
		}
		if pe.Pass < 1 || pe.Chunk != 3 {
			t.Fatalf("workers=%d: error positioned at pass %d chunk %d, want pass >= 1 chunk 3", workers, pe.Pass, pe.Chunk)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: cause lost: %v", workers, err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("workers=%d: abort took %v, want fast failure", workers, d)
		}
		check()
	}
}

// TestChaosEarlyEOFRefused pins the unstable-source guard: a stream that
// ends a pass short must be refused with an explicit error — the
// coordinator never silently fits the partial pass.
func TestChaosEarlyEOFRefused(t *testing.T) {
	train := chaosWorkload(t, 4000, 8)
	// 8 chunks per pass; end the second pass two chunks short (lifetime
	// ordinal 14 = pass 2, chunk 6).
	src := chaos.Wrap(frame.NewFrameChunks(train, 500),
		&chaos.Plan{Faults: []chaos.Fault{{Chunk: 14, Kind: chaos.EarlyEOF}}})
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Workers = 2
	_, _, _, err := shard.Fit(context.Background(), src, shard.Config{Core: cfg, Retry: shard.DefaultRetryPolicy()})
	if err == nil {
		t.Fatal("early EOF mid-fit produced a result")
	}
	if !strings.Contains(err.Error(), "unstable source") {
		t.Fatalf("got %v, want the unstable-source refusal", err)
	}
}
