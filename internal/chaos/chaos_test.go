package chaos

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/colstore"
	"repro/internal/frame"
)

// testSource builds a small in-memory chunk source: rows rows of cols
// columns in chunks of chunkRows.
func testSource(rows, cols, chunkRows int) *frame.FrameChunks {
	f := frame.NewWithShape(rows, cols)
	for j := range f.Columns {
		for i := range f.Columns[j].Values {
			f.Columns[j].Values[i] = float64(i*cols + j)
		}
	}
	for i := range f.Label {
		f.Label[i] = float64(i % 2)
	}
	return frame.NewFrameChunks(f, chunkRows)
}

// drain reads src to EOF and returns the number of chunks delivered.
func drain(t *testing.T, src frame.ChunkSource) int {
	t.Helper()
	n := 0
	for {
		_, err := src.Next()
		if errors.Is(err, io.EOF) {
			return n
		}
		if err != nil {
			t.Fatalf("chunk %d: %v", n, err)
		}
		n++
	}
}

// TestChaosTransientPlanDeterminism pins that the seeded plan builder is a
// pure function of its arguments: same seed, same plan, distinct sorted
// ordinals inside the requested range.
func TestChaosTransientPlanDeterminism(t *testing.T) {
	a := TransientPlan(7, 4, 24)
	b := TransientPlan(7, 4, 24)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%+v\n%+v", a, b)
	}
	if len(a.Faults) != 4 {
		t.Fatalf("got %d faults, want 4", len(a.Faults))
	}
	seen := map[int]bool{}
	prev := -1
	for _, f := range a.Faults {
		if f.Kind != Transient {
			t.Fatalf("fault at %d has kind %v, want transient", f.Chunk, f.Kind)
		}
		if f.Chunk < 0 || f.Chunk >= 24 {
			t.Fatalf("fault ordinal %d outside [0,24)", f.Chunk)
		}
		if seen[f.Chunk] || f.Chunk <= prev {
			t.Fatalf("ordinals not distinct ascending: %+v", a.Faults)
		}
		seen[f.Chunk] = true
		prev = f.Chunk
		if f.Times < 1 || f.Times > 2 {
			t.Fatalf("fault at %d fails %d times, want 1 or 2", f.Chunk, f.Times)
		}
	}
	if c := TransientPlan(7, 10, 3); len(c.Faults) != 3 {
		t.Fatalf("plan wider than the stream: %d faults, want 3", len(c.Faults))
	}
}

// TestChaosTransientFault pins the retryable failure mode: the read at the
// fault's ordinal fails Times consecutive attempts with a
// frame.IsTransient error, then succeeds, and the stream continues exactly
// where it stopped.
func TestChaosTransientFault(t *testing.T) {
	src := Wrap(testSource(40, 2, 10), &Plan{Faults: []Fault{{Chunk: 1, Kind: Transient, Times: 2}}})
	if c, err := src.Next(); err != nil || c.Index != 0 {
		t.Fatalf("chunk 0: %v (index %v)", err, c)
	}
	for attempt := 1; attempt <= 2; attempt++ {
		_, err := src.Next()
		var te *TransientError
		if !errors.As(err, &te) {
			t.Fatalf("attempt %d: got %v, want TransientError", attempt, err)
		}
		if te.Chunk != 1 || te.Attempt != attempt {
			t.Fatalf("attempt %d: error positioned at chunk %d attempt %d", attempt, te.Chunk, te.Attempt)
		}
		if !frame.IsTransient(err) {
			t.Fatalf("attempt %d: transient fault not classified transient: %v", attempt, err)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: cause not ErrInjected: %v", attempt, err)
		}
	}
	c, err := src.Next()
	if err != nil {
		t.Fatalf("post-fault read: %v", err)
	}
	if c.Index != 1 {
		t.Fatalf("post-fault read resumed at chunk %d, want 1", c.Index)
	}
	if src.Injected() != 2 {
		t.Fatalf("injected %d faults, want 2", src.Injected())
	}
	for i := 0; i < 2; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatalf("tail chunk: %v", err)
		}
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("got %v, want io.EOF", err)
	}
	if src.Delivered() != 4 {
		t.Fatalf("delivered %d chunks, want 4", src.Delivered())
	}
}

// TestChaosOrdinalsSpanPasses pins the lifetime-ordinal contract: Reset
// does not rewind fault ordinals, so a fault planned past the first pass
// fires mid-second-pass and exactly once.
func TestChaosOrdinalsSpanPasses(t *testing.T) {
	// 4 chunks per pass; fault at lifetime ordinal 5 = second pass, chunk 1.
	src := Wrap(testSource(40, 2, 10), &Plan{Faults: []Fault{{Chunk: 5, Kind: Transient, Times: 1}}})
	if n := drain(t, src); n != 4 {
		t.Fatalf("pass 1 delivered %d chunks, want 4", n)
	}
	if src.Injected() != 0 {
		t.Fatalf("fault fired during pass 1")
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != nil {
		t.Fatalf("pass 2 chunk 0: %v", err)
	}
	if _, err := src.Next(); !frame.IsTransient(err) {
		t.Fatalf("pass 2 chunk 1: got %v, want transient fault", err)
	}
	c, err := src.Next()
	if err != nil || c.Index != 1 {
		t.Fatalf("pass 2 retry: %v (index %v)", err, c)
	}
	// A third pass sees nothing: the fault is spent.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatalf("pass 3 chunk %d: %v", i, err)
		}
	}
	if src.Injected() != 1 {
		t.Fatalf("injected %d faults, want 1", src.Injected())
	}
}

// TestChaosPermanentFault pins the non-retryable mode: the fault fires on
// every attempt with the planned cause and is never transient.
func TestChaosPermanentFault(t *testing.T) {
	sentinel := errors.New("disk on fire")
	src := Wrap(testSource(40, 2, 10), &Plan{Faults: []Fault{{Chunk: 2, Kind: Permanent, Err: sentinel}}})
	for n := 0; n < 2; n++ {
		if _, err := src.Next(); err != nil {
			t.Fatalf("chunk %d: %v", n, err)
		}
	}
	for attempt := 0; attempt < 3; attempt++ {
		_, err := src.Next()
		if err == nil {
			t.Fatalf("attempt %d: permanent fault let the read through", attempt)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("attempt %d: cause lost: %v", attempt, err)
		}
		if frame.IsTransient(err) {
			t.Fatalf("attempt %d: permanent fault classified transient", attempt)
		}
	}
	if src.Injected() != 3 {
		t.Fatalf("injected %d, want 3", src.Injected())
	}
}

// TestChaosDelayFault pins that a delay delivers the chunk late but intact,
// once.
func TestChaosDelayFault(t *testing.T) {
	src := Wrap(testSource(40, 2, 10), &Plan{Faults: []Fault{{Chunk: 1, Kind: Delay, Sleep: 20 * time.Millisecond}}})
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c, err := src.Next()
	if err != nil || c.Index != 1 {
		t.Fatalf("delayed chunk: %v (index %v)", err, c)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay fault slept %v, want >= 20ms", d)
	}
	if src.Injected() != 1 {
		t.Fatalf("injected %d, want 1", src.Injected())
	}
}

// TestChaosEarlyEOF pins the truncated-stream mode: the pass ends one
// chunk short, exactly once.
func TestChaosEarlyEOF(t *testing.T) {
	src := Wrap(testSource(40, 2, 10), &Plan{Faults: []Fault{{Chunk: 3, Kind: EarlyEOF}}})
	if n := drain(t, src); n != 3 {
		t.Fatalf("pass 1 delivered %d chunks, want 3 (early EOF)", n)
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	// Lifetime ordinals continue at 3; the fault is spent, so pass 2 is full.
	if n := drain(t, src); n != 4 {
		t.Fatalf("pass 2 delivered %d chunks, want 4", n)
	}
}

// TestChaosMutationGuard pins lease-violation detection: a clean drain
// records nothing; writing into a delivered chunk after requesting the next
// one is caught at the following Next.
func TestChaosMutationGuard(t *testing.T) {
	g := Guard(testSource(40, 3, 10))
	drain(t, g)
	if err := g.Err(); err != nil {
		t.Fatalf("clean drain flagged a violation: %v", err)
	}

	g = Guard(testSource(40, 3, 10))
	c, err := g.Next()
	if err != nil {
		t.Fatal(err)
	}
	c.Cols[1][2] = math.Pi // mutate the lease we are about to give up
	if _, err := g.Next(); err != nil {
		t.Fatal(err)
	}
	if g.Err() == nil {
		t.Fatal("mutation after lease expiry not detected")
	}

	// Reset audits the outstanding chunk too.
	g = Guard(testSource(40, 3, 10))
	c, err = g.Next()
	if err != nil {
		t.Fatal(err)
	}
	c.Label[0] = 42
	if err := g.Reset(); err != nil {
		t.Fatal(err)
	}
	if g.Err() == nil {
		t.Fatal("label mutation before Reset not detected")
	}
}

// corruptImage builds a small valid colstore image with float, string
// (dictionary + null bitmap), and label columns, so the corruption
// enumeration covers every block codec.
func corruptImage(t *testing.T) []byte {
	t.Helper()
	schema := colstore.Schema{
		{Name: "x", Type: colstore.Float64},
		{Name: "cat", Type: colstore.String},
		{Name: "label", Type: colstore.Float64, Label: true},
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	w, err := colstore.NewWriter(bw, schema, colstore.WriterOptions{GroupRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Append([]colstore.Col{
		{Floats: []float64{1, math.NaN(), 3, 4, 5, 6, 7, 8, 9}},
		{Strs: []string{"a", "b", "", "a", "c", "b", "a", "c", "b"},
			Nulls: []bool{false, false, true, false, false, false, false, false, false}},
		{Floats: []float64{0, 1, 0, 1, 0, 1, 0, 1, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosCorruptionsTargetOnlyValidatedBytes pins the enumeration's core
// guarantee: every produced corruption changes the image, stays in bounds,
// and never touches a byte no reader validates (block padding, the
// header's reserved bytes [6,8), the trailer's reserved bytes [20,24)) —
// so "corruption produced but no typed error" is always a real bug.
func TestChaosCorruptionsTargetOnlyValidatedBytes(t *testing.T) {
	raw := corruptImage(t)
	secs, err := colstore.Layout(raw)
	if err != nil {
		t.Fatal(err)
	}
	unvalidated := func(off int) bool {
		if off >= 6 && off < 8 { // header reserve
			return true
		}
		for _, s := range secs {
			switch s.Name {
			case colstore.SectionPad:
				if int64(off) >= s.Off && int64(off) < s.Off+s.Len {
					return true
				}
			case colstore.SectionTrailer:
				if int64(off) >= s.Off+20 && int64(off) < s.Off+24 { // trailer reserve
					return true
				}
			}
		}
		return false
	}

	all, err := Corruptions(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 20 {
		t.Fatalf("only %d corruptions enumerated; expected full structural coverage", len(all))
	}
	names := map[string]bool{}
	sawTruncate, sawFlip, sawZero := false, false, false
	for _, c := range all {
		if names[c.Name] {
			t.Fatalf("duplicate corruption name %q", c.Name)
		}
		names[c.Name] = true
		switch {
		case c.TruncateTo >= 0:
			sawTruncate = true
			if c.TruncateTo >= len(raw) {
				t.Fatalf("%s: truncation to %d does not shorten a %d-byte image", c.Name, c.TruncateTo, len(raw))
			}
		case c.ZeroLen > 0:
			sawZero = true
			for i := 0; i < c.ZeroLen; i++ {
				if unvalidated(c.Off + i) {
					t.Fatalf("%s: zeroes unvalidated byte %d", c.Name, c.Off+i)
				}
			}
		default:
			sawFlip = true
			if c.Off < 0 || c.Off >= len(raw) {
				t.Fatalf("%s: flip offset %d out of bounds", c.Name, c.Off)
			}
			if c.XOR == 0 {
				t.Fatalf("%s: flip with zero mask is a no-op", c.Name)
			}
			if unvalidated(c.Off) {
				t.Fatalf("%s: flips unvalidated byte %d", c.Name, c.Off)
			}
		}
		if got := Corrupt(raw, c); bytes.Equal(got, raw) && c.ZeroLen == 0 {
			t.Fatalf("%s: corruption left the image unchanged", c.Name)
		}
	}
	if !sawTruncate || !sawFlip || !sawZero {
		t.Fatalf("enumeration missing a mode: truncate=%v flip=%v zero=%v", sawTruncate, sawFlip, sawZero)
	}
}

// TestChaosCorruptIsPure pins that Corrupt never touches the input image.
func TestChaosCorruptIsPure(t *testing.T) {
	raw := corruptImage(t)
	orig := append([]byte(nil), raw...)
	for _, c := range []Corruption{
		{Name: "t", TruncateTo: 10},
		{Name: "f", TruncateTo: -1, Off: 5, XOR: 0xFF},
		{Name: "z", TruncateTo: -1, Off: 9, ZeroLen: 8},
		{Name: "oob", TruncateTo: -1, Off: len(raw) + 100, XOR: 0xFF},
	} {
		_ = Corrupt(raw, c)
		if !bytes.Equal(raw, orig) {
			t.Fatalf("%s: Corrupt mutated its input", c.Name)
		}
	}
	if got := Corrupt(raw, Corruption{TruncateTo: 10}); len(got) != 10 {
		t.Fatalf("truncate: got %d bytes, want 10", len(got))
	}
	if got := Corrupt(raw, Corruption{TruncateTo: -1, Off: 5, XOR: 0xFF}); got[5] != raw[5]^0xFF {
		t.Fatalf("flip: byte 5 is %#x, want %#x", got[5], raw[5]^0xFF)
	}
}

// TestChaosSampleCorruptionsDeterminism pins the seeded subset: replayable,
// in enumeration order, and a strict subset of the full set.
func TestChaosSampleCorruptionsDeterminism(t *testing.T) {
	raw := corruptImage(t)
	a, err := SampleCorruptions(raw, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleCorruptions(raw, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different samples:\n%+v\n%+v", a, b)
	}
	if len(a) != 5 {
		t.Fatalf("sampled %d, want 5", len(a))
	}
	all, err := Corruptions(raw)
	if err != nil {
		t.Fatal(err)
	}
	pos := -1
	for _, c := range a {
		found := -1
		for i, full := range all {
			if reflect.DeepEqual(c, full) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Fatalf("sample %q not in the full enumeration", c.Name)
		}
		if found <= pos {
			t.Fatalf("sample out of enumeration order at %q", c.Name)
		}
		pos = found
	}
	if big, err := SampleCorruptions(raw, 3, len(all)+10); err != nil || len(big) != len(all) {
		t.Fatalf("oversized sample: %d corruptions (err %v), want %d", len(big), err, len(all))
	}
}
