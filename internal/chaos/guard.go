package chaos

import (
	"fmt"
	"hash/maphash"
	"math"

	"repro/internal/frame"
)

// MutationGuard wraps a frame.ChunkSource and detects consumers that write
// into chunk memory after its lease expired: the chunk a source returns is
// the source's buffer (or, for stable sources, a view of resident data),
// and the contract lets the consumer read it only until the following Next
// or Reset. The guard fingerprints every chunk it hands out and re-checks
// the fingerprint just before the source would reuse or invalidate the
// memory — a mismatch means the consumer mutated a lease it did not own,
// which for stable sources silently corrupts every later pass.
//
// The first violation is recorded and kept (Err); delivery continues so a
// whole drain can be audited in one run.
type MutationGuard struct {
	src  frame.ChunkSource
	seed maphash.Seed

	last    *frame.Chunk
	lastOrd int
	lastSum uint64
	err     error
}

// Guard wraps src with mutation-after-lease detection.
func Guard(src frame.ChunkSource) *MutationGuard {
	return &MutationGuard{src: src, seed: maphash.MakeSeed(), lastOrd: -1}
}

// Names implements frame.ChunkSource.
func (g *MutationGuard) Names() []string { return g.src.Names() }

// NumCols implements frame.ChunkSource.
func (g *MutationGuard) NumCols() int { return g.src.NumCols() }

// Reset implements frame.ChunkSource, auditing the outstanding chunk first.
func (g *MutationGuard) Reset() error {
	g.check()
	return g.src.Reset()
}

// Next implements frame.ChunkSource, auditing the previous chunk before
// the source reuses its buffers.
func (g *MutationGuard) Next() (*frame.Chunk, error) {
	g.check()
	c, err := g.src.Next()
	if err != nil {
		return nil, err
	}
	g.last = c
	g.lastOrd++
	g.lastSum = g.fingerprint(c)
	return c, nil
}

// Err returns the first recorded mutation violation, or nil.
func (g *MutationGuard) Err() error { return g.err }

// check re-fingerprints the outstanding chunk and records a violation on
// mismatch.
func (g *MutationGuard) check() {
	if g.last == nil {
		return
	}
	if sum := g.fingerprint(g.last); sum != g.lastSum && g.err == nil {
		g.err = fmt.Errorf("chaos: chunk %d (delivery %d) was mutated after its lease expired",
			g.last.Index, g.lastOrd)
	}
	g.last = nil
}

// fingerprint hashes a chunk's value memory (float bit patterns, NaN
// payloads included) so any single-bit mutation is caught.
func (g *MutationGuard) fingerprint(c *frame.Chunk) uint64 {
	var h maphash.Hash
	h.SetSeed(g.seed)
	var buf [8]byte
	put := func(v float64) {
		bits := math.Float64bits(v)
		for i := range buf {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:]) //nolint:errcheck // maphash writes cannot fail
	}
	for _, col := range c.Cols {
		for _, v := range col {
			put(v)
		}
		put(math.NaN()) // column separator
	}
	for _, v := range c.Label {
		put(v)
	}
	return h.Sum64()
}

var _ frame.ChunkSource = (*MutationGuard)(nil)
