package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/frame"
)

// Source is what both colstore readers are: a re-iterable chunk source with
// per-block statistics and pass skipping, plus a Close releasing the file.
// The file's own row groups are the stream's chunks.
type Source interface {
	frame.SkippableSource
	io.Closer
	// NumRows returns the file's total row count.
	NumRows() int
	// Schema returns the file's column declaration.
	Schema() Schema
}

// Reader streams a colstore file as a frame.ChunkSource through buffered
// positioned reads: one row group per chunk, every block CRC-verified as it
// is read, decoded portably (any host endianness) into reused buffers — a
// chunk is only valid until the next Next or Reset, like frame.CSVChunks.
// String columns are served as their dictionary codes cast to float64, with
// null rows as NaN. The file handle stays open across Reset (multi-pass
// fits reuse it); Close releases it and Reset reopens.
type Reader struct {
	path string
	f    *os.File
	meta *fileMeta

	feat     []int // schema indices of feature columns, in Names order
	labelIdx int   // schema index of the label column, -1 for none
	names    []string

	g    int
	skip []bool

	raw   []byte
	cols  [][]float64
	label []float64
	chunk frame.Chunk
}

// Open opens a colstore file as a streaming Source, decoding and validating
// its footer eagerly so schema and block index errors surface here.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("colstore: %w", err)
	}
	meta, err := readMeta(path, f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r := &Reader{path: path, f: f, meta: meta}
	r.bind()
	return r, nil
}

// bind derives the reader's feature/label view of the schema.
func (r *Reader) bind() {
	r.labelIdx = r.meta.schema.LabelIndex()
	r.names = r.meta.schema.FeatureNames()
	r.feat = r.feat[:0]
	for j := range r.meta.schema {
		if j != r.labelIdx {
			r.feat = append(r.feat, j)
		}
	}
	r.cols = make([][]float64, len(r.feat))
	r.chunk = frame.Chunk{Cols: make([][]float64, len(r.feat))}
}

// Names implements frame.ChunkSource.
func (r *Reader) Names() []string { return r.names }

// NumCols implements frame.ChunkSource.
func (r *Reader) NumCols() int { return len(r.feat) }

// NumRows implements Source.
func (r *Reader) NumRows() int { return int(r.meta.rows) }

// Schema implements Source.
func (r *Reader) Schema() Schema { return append(Schema(nil), r.meta.schema...) }

// Dict returns the dictionary of the string column at schema index j (nil
// for float columns): the served float code c decodes to Dict(j)[int(c)].
func (r *Reader) Dict(j int) []string { return r.meta.dicts[j] }

// Reset implements frame.ChunkSource, reopening the file if it was closed.
func (r *Reader) Reset() error {
	if r.f == nil {
		f, err := os.Open(r.path)
		if err != nil {
			return fmt.Errorf("colstore: %w", err)
		}
		r.f = f
	}
	r.g = 0
	return nil
}

// Next implements frame.ChunkSource. Chunks are reused-buffer views, valid
// until the following Next or Reset.
func (r *Reader) Next() (*frame.Chunk, error) {
	for r.g < len(r.meta.groups) && r.g < len(r.skip) && r.skip[r.g] {
		r.g++
	}
	if r.g >= len(r.meta.groups) {
		return nil, io.EOF
	}
	if r.f == nil {
		return nil, &FormatError{Path: r.path, Section: "block", Block: r.g, Err: os.ErrClosed}
	}
	gi := r.g
	g := &r.meta.groups[gi]
	rows := int(g.rows)
	for i, j := range r.feat {
		if cap(r.cols[i]) < rows {
			r.cols[i] = make([]float64, rows)
		}
		r.cols[i] = r.cols[i][:rows]
		if err := r.decodeBlock(gi, j, r.cols[i]); err != nil {
			return nil, err
		}
	}
	if r.labelIdx >= 0 {
		if cap(r.label) < rows {
			r.label = make([]float64, rows)
		}
		r.label = r.label[:rows]
		if err := r.decodeBlock(gi, r.labelIdx, r.label); err != nil {
			return nil, err
		}
	}
	c := &r.chunk
	c.Index = gi
	c.Start = int(g.start)
	copy(c.Cols, r.cols)
	if r.labelIdx >= 0 {
		c.Label = r.label
	}
	r.g++
	return c, nil
}

// readBlock reads and CRC-verifies one block's payload into r.raw.
func (r *Reader) readBlock(gi, j int) ([]byte, error) {
	blk := &r.meta.groups[gi].blocks[j]
	n := int(blk.length)
	if cap(r.raw) < n {
		r.raw = make([]byte, n)
	}
	buf := r.raw[:n]
	if _, err := r.f.ReadAt(buf, int64(blk.off)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = ErrTruncated
		}
		return nil, &FormatError{
			Path: r.path, Section: "block", Block: gi,
			Column: r.meta.schema[j].Name, Err: err,
		}
	}
	if got := crc32.Checksum(buf, castagnoli); got != blk.crc {
		return nil, &ChecksumError{
			Path: r.path, Block: gi, Column: r.meta.schema[j].Name,
			Want: blk.crc, Got: got,
		}
	}
	return buf, nil
}

// decodeBlock decodes group gi's block of schema column j into dst.
func (r *Reader) decodeBlock(gi, j int, dst []float64) error {
	buf, err := r.readBlock(gi, j)
	if err != nil {
		return err
	}
	if r.meta.schema[j].Type == Float64 {
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		return nil
	}
	return decodeStringBlock(r.path, gi, j, &r.meta.schema[j], r.meta.dicts[j], buf, dst)
}

// decodeStringBlock decodes a string block (null bitmap + dictionary codes)
// into its served float representation: float64(code), NaN for nulls.
func decodeStringBlock(path string, gi, j int, spec *ColumnSpec, dict []string, buf []byte, dst []float64) error {
	bm := buf[:bitmapLen(len(dst))]
	codes := buf[len(bm):]
	for i := range dst {
		if bm[i/8]&(1<<(i%8)) != 0 {
			dst[i] = math.NaN()
			continue
		}
		code := binary.LittleEndian.Uint32(codes[i*4:])
		if int(code) >= len(dict) {
			return &FormatError{
				Path: path, Section: "block", Block: gi, Column: spec.Name,
				Err: fmt.Errorf("dictionary code %d out of range (%d entries)", code, len(dict)),
			}
		}
		dst[i] = float64(code)
	}
	return nil
}

// NumChunks implements frame.SkippableSource.
func (r *Reader) NumChunks() int { return len(r.meta.groups) }

// ChunkStats implements frame.SkippableSource, serving the footer's block
// statistics for the feature columns in Names order. Float columns carry
// trustworthy min/max bounds (Known); string columns expose only counts —
// their served codes are not value-ordered, so they are never skippable on
// range.
func (r *Reader) ChunkStats(i int) []frame.ColStats {
	return chunkStats(r.meta, r.feat, i)
}

// SetSkip implements frame.SkippableSource.
func (r *Reader) SetSkip(skip []bool) { r.skip = skip }

// Close implements io.Closer; Reset reopens the file.
func (r *Reader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// chunkStats is the block-stat view both readers share.
func chunkStats(m *fileMeta, feat []int, i int) []frame.ColStats {
	if i < 0 || i >= len(m.groups) {
		return nil
	}
	g := &m.groups[i]
	out := make([]frame.ColStats, len(feat))
	for k, j := range feat {
		blk := &g.blocks[j]
		out[k] = frame.ColStats{
			Rows: int(g.rows),
			NaNs: int(blk.nan),
			Min:  blk.min,
			Max:  blk.max,
			// Only float columns' ranges order like the served values.
			Known: m.schema[j].Type == Float64,
		}
	}
	return out
}

var _ Source = (*Reader)(nil)
