package colstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Format constants of colstore version 1. All multi-byte integers and float
// bit patterns in the file are little-endian; every data block is padded to
// an 8-byte boundary so float payloads stay alignable under mmap.
const (
	// FormatVersion is the on-disk format version this package writes.
	FormatVersion = 1

	// DefaultGroupRows is the row-group size used when none is given.
	DefaultGroupRows = 8192

	headerSize  = 8  // magic + version + flags
	trailerSize = 32 // footer offset/length/CRC + reserved + tail magic
	blockAlign  = 8
)

var (
	headerMagic = [4]byte{'S', 'C', 'O', 'L'}
	tailMagic   = [8]byte{'S', 'A', 'F', 'E', 'C', 'O', 'L', '1'}
)

// castagnoli is the CRC-32C table every checksum in the format uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Type is a column's physical type.
type Type uint8

// Column types of format version 1.
const (
	// Float64 blocks store rows raw little-endian IEEE-754 values — decoding
	// is bit-exact, NaN payloads included.
	Float64 Type = 0
	// String blocks store a null bitmap followed by uint32 codes into the
	// column's file-global dictionary (held in the footer).
	String Type = 1
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

const colFlagLabel = 1 // ColumnSpec.Label bit in the footer's column flags

// ColumnSpec declares one column of a colstore file.
type ColumnSpec struct {
	Name string
	Type Type
	// Label marks the file's label column (at most one, Float64 only);
	// readers serve it as the chunk label rather than a feature column.
	Label bool
}

// Schema is the ordered column declaration of a colstore file.
type Schema []ColumnSpec

// Validate checks the schema invariants the format requires: at least one
// column, non-empty unique names, known types, and at most one label column,
// which must be Float64.
func (s Schema) Validate() error {
	if len(s) == 0 {
		return errors.New("colstore: schema has no columns")
	}
	seen := make(map[string]bool, len(s))
	label := false
	for i, c := range s {
		if c.Name == "" {
			return fmt.Errorf("colstore: column %d has an empty name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("colstore: duplicate column name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Type != Float64 && c.Type != String {
			return fmt.Errorf("colstore: column %q has unknown type %d", c.Name, uint8(c.Type))
		}
		if c.Label {
			if label {
				return fmt.Errorf("colstore: second label column %q", c.Name)
			}
			if c.Type != Float64 {
				return fmt.Errorf("colstore: label column %q must be float64, is %s", c.Name, c.Type)
			}
			label = true
		}
	}
	return nil
}

// LabelIndex returns the schema index of the label column, or -1.
func (s Schema) LabelIndex() int {
	for i, c := range s {
		if c.Label {
			return i
		}
	}
	return -1
}

// FeatureNames returns the non-label column names in schema order.
func (s Schema) FeatureNames() []string {
	names := make([]string, 0, len(s))
	for _, c := range s {
		if !c.Label {
			names = append(names, c.Name)
		}
	}
	return names
}

// FrameSchema builds the all-float schema of a labelled frame: the feature
// names in order, plus a trailing label column when withLabel is set.
func FrameSchema(names []string, withLabel bool) Schema {
	s := make(Schema, 0, len(names)+1)
	for _, name := range names {
		s = append(s, ColumnSpec{Name: name, Type: Float64})
	}
	if withLabel {
		s = append(s, ColumnSpec{Name: "label", Type: Float64, Label: true})
	}
	return s
}

// Sentinel error conditions, wrapped inside FormatError with position
// context. Test with errors.Is.
var (
	// ErrTruncated marks a file that ends before the structure it declares
	// (short reads, missing trailer, out-of-range block extents).
	ErrTruncated = errors.New("file truncated")
	// ErrBadMagic marks a file that is not a colstore file at all.
	ErrBadMagic = errors.New("bad magic (not a colstore file)")
	// ErrVersion marks a colstore file of an unsupported format version.
	ErrVersion = errors.New("unsupported format version")
)

// FormatError is a structural decode failure positioned the way
// frame.CSVChunks positions CSV errors: the file path, the section that
// failed, and — when the failure is inside the block index or a data block —
// the row-group ordinal and column name. Block is -1 when no group applies.
type FormatError struct {
	Path    string
	Section string // "header", "trailer", "footer", "block"
	Block   int
	Column  string
	Err     error
}

// Error implements error.
func (e *FormatError) Error() string {
	msg := fmt.Sprintf("colstore: %s: %s", e.Path, e.Section)
	if e.Block >= 0 {
		msg += fmt.Sprintf(" (group %d", e.Block)
		if e.Column != "" {
			msg += fmt.Sprintf(", column %q", e.Column)
		}
		msg += ")"
	} else if e.Column != "" {
		msg += fmt.Sprintf(" (column %q)", e.Column)
	}
	return msg + ": " + e.Err.Error()
}

// Unwrap implements errors.Unwrap.
func (e *FormatError) Unwrap() error { return e.Err }

// ChecksumError reports a CRC-32C mismatch: a data block's (with its
// row-group ordinal and column name) or the footer's (Block -1).
type ChecksumError struct {
	Path      string
	Block     int
	Column    string
	Want, Got uint32
}

// Error implements error.
func (e *ChecksumError) Error() string {
	where := "footer"
	if e.Block >= 0 {
		where = fmt.Sprintf("group %d, column %q", e.Block, e.Column)
	}
	return fmt.Sprintf("colstore: %s: checksum mismatch at %s: want %08x, got %08x",
		e.Path, where, e.Want, e.Got)
}

// blockMeta is one data block's footer entry: its extent in the file plus
// the statistics pass planning reads (min/max over non-missing values,
// missing count) and the payload CRC.
type blockMeta struct {
	off, length uint64 // unpadded payload extent
	min, max    float64
	nan         uint32
	crc         uint32
}

// groupMeta is one row group's footer entry.
type groupMeta struct {
	start  uint64
	rows   uint32
	blocks []blockMeta // one per schema column
}

// fileMeta is the decoded footer: everything a reader needs to seek.
type fileMeta struct {
	schema    Schema
	dicts     [][]string // per schema column; nil for float columns
	groups    []groupMeta
	rows      uint64
	groupRows uint32
	dataEnd   uint64 // first byte past the block region (== footer offset)
}

// pad8 rounds n up to the block alignment.
func pad8(n uint64) uint64 { return (n + blockAlign - 1) &^ uint64(blockAlign-1) }

// bitmapLen is the byte length of a rows-bit null bitmap.
func bitmapLen(rows int) int { return (rows + 7) / 8 }

// floatBlockLen / stringBlockLen are the unpadded payload sizes.
func floatBlockLen(rows int) uint64  { return uint64(rows) * 8 }
func stringBlockLen(rows int) uint64 { return uint64(bitmapLen(rows)) + uint64(rows)*4 }

// cursor decodes the footer with bounds checking: every read past the end
// sets err instead of panicking, which is what makes the footer parser safe
// to fuzz against arbitrary bytes.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = ErrTruncated
	}
	c.off = len(c.b)
}

func (c *cursor) bytes(n int) []byte {
	if c.err != nil || n < 0 || c.off+n > len(c.b) || c.off+n < c.off {
		c.fail()
		return nil
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u8() uint8 {
	b := c.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u16() uint16 {
	b := c.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (c *cursor) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// remaining returns the undecoded byte count, for allocation sanity caps.
func (c *cursor) remaining() int { return len(c.b) - c.off }

// encodeFooter serialises the footer (schema, dictionaries, block index).
func encodeFooter(m *fileMeta) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.schema)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.groups)))
	b = binary.LittleEndian.AppendUint64(b, m.rows)
	b = binary.LittleEndian.AppendUint32(b, m.groupRows)
	b = binary.LittleEndian.AppendUint32(b, 0) // reserved
	for j, col := range m.schema {
		b = append(b, byte(col.Type))
		var flags byte
		if col.Label {
			flags |= colFlagLabel
		}
		b = append(b, flags)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(col.Name)))
		b = append(b, col.Name...)
		if col.Type == String {
			dict := m.dicts[j]
			b = binary.LittleEndian.AppendUint32(b, uint32(len(dict)))
			for _, s := range dict {
				b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
				b = append(b, s...)
			}
		}
	}
	for _, g := range m.groups {
		b = binary.LittleEndian.AppendUint64(b, g.start)
		b = binary.LittleEndian.AppendUint32(b, g.rows)
		b = binary.LittleEndian.AppendUint32(b, 0) // reserved
		for _, blk := range g.blocks {
			b = binary.LittleEndian.AppendUint64(b, blk.off)
			b = binary.LittleEndian.AppendUint64(b, blk.length)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(blk.min))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(blk.max))
			b = binary.LittleEndian.AppendUint32(b, blk.nan)
			b = binary.LittleEndian.AppendUint32(b, blk.crc)
		}
	}
	return b
}

// decodeFooter parses and validates footer bytes against the block region
// [headerSize, dataEnd). It never panics on malformed input — every
// structural violation comes back as a positioned FormatError.
func decodeFooter(path string, b []byte, dataEnd uint64) (*fileMeta, error) {
	ferr := func(block int, column string, err error) error {
		return &FormatError{Path: path, Section: "footer", Block: block, Column: column, Err: err}
	}
	c := &cursor{b: b}
	nCols := int(c.u32())
	nGroups := int(c.u32())
	rows := c.u64()
	groupRows := c.u32()
	c.u32() // reserved
	if c.err != nil {
		return nil, ferr(-1, "", c.err)
	}
	// Each column costs at least 4 bytes, each group at least 12: anything
	// declaring more than the remaining bytes could hold is corrupt, and the
	// caps keep allocations proportional to the actual footer size.
	if nCols <= 0 || nCols > c.remaining()/4 {
		return nil, ferr(-1, "", fmt.Errorf("implausible column count %d", nCols))
	}
	if nGroups < 0 || nGroups > (c.remaining()+11)/12 {
		return nil, ferr(-1, "", fmt.Errorf("implausible group count %d", nGroups))
	}
	m := &fileMeta{
		schema:    make(Schema, nCols),
		dicts:     make([][]string, nCols),
		rows:      rows,
		groupRows: groupRows,
		dataEnd:   dataEnd,
	}
	for j := 0; j < nCols; j++ {
		typ := Type(c.u8())
		flags := c.u8()
		nameLen := int(c.u16())
		name := string(c.bytes(nameLen))
		if c.err != nil {
			return nil, ferr(-1, "", c.err)
		}
		m.schema[j] = ColumnSpec{Name: name, Type: typ, Label: flags&colFlagLabel != 0}
		if typ == String {
			dictLen := int(c.u32())
			if dictLen < 0 || dictLen > c.remaining()/4 {
				return nil, ferr(-1, name, fmt.Errorf("implausible dictionary size %d", dictLen))
			}
			dict := make([]string, dictLen)
			for k := range dict {
				dict[k] = string(c.bytes(int(c.u32())))
			}
			if c.err != nil {
				return nil, ferr(-1, name, c.err)
			}
			m.dicts[j] = dict
		}
	}
	if err := m.schema.Validate(); err != nil {
		return nil, ferr(-1, "", err)
	}
	m.groups = make([]groupMeta, nGroups)
	var total uint64
	for gi := range m.groups {
		g := &m.groups[gi]
		g.start = c.u64()
		g.rows = c.u32()
		c.u32() // reserved
		if c.err != nil {
			return nil, ferr(gi, "", c.err)
		}
		if g.start != total {
			return nil, ferr(gi, "", fmt.Errorf("group starts at row %d, want %d", g.start, total))
		}
		total += uint64(g.rows)
		g.blocks = make([]blockMeta, nCols)
		for j := range g.blocks {
			blk := &g.blocks[j]
			blk.off = c.u64()
			blk.length = c.u64()
			blk.min = c.f64()
			blk.max = c.f64()
			blk.nan = c.u32()
			blk.crc = c.u32()
			if c.err != nil {
				return nil, ferr(gi, m.schema[j].Name, c.err)
			}
			if err := validateBlock(m, gi, j); err != nil {
				return nil, ferr(gi, m.schema[j].Name, err)
			}
		}
	}
	if c.err != nil {
		return nil, ferr(-1, "", c.err)
	}
	if c.remaining() != 0 {
		return nil, ferr(-1, "", fmt.Errorf("%d trailing footer bytes", c.remaining()))
	}
	if total != rows {
		return nil, ferr(-1, "", fmt.Errorf("groups cover %d rows, footer declares %d", total, rows))
	}
	return m, nil
}

// validateBlock checks one block-index entry: the payload length matches the
// type and row count, the extent lies inside the block region, and float
// payloads keep the format's 8-byte alignment (what makes mmap views sound).
func validateBlock(m *fileMeta, gi, j int) error {
	g := &m.groups[gi]
	blk := &g.blocks[j]
	rows := int(g.rows)
	var want uint64
	switch m.schema[j].Type {
	case Float64:
		want = floatBlockLen(rows)
		if blk.off%blockAlign != 0 {
			return fmt.Errorf("float block misaligned at offset %d", blk.off)
		}
	case String:
		want = stringBlockLen(rows)
	}
	if blk.length != want {
		return fmt.Errorf("block length %d, want %d for %d rows", blk.length, want, rows)
	}
	if blk.nan > g.rows {
		return fmt.Errorf("block declares %d missing of %d rows", blk.nan, g.rows)
	}
	end := blk.off + pad8(blk.length)
	if blk.off < headerSize || end < blk.off || end > m.dataEnd {
		return fmt.Errorf("block extent [%d, %d) outside data region [%d, %d): %w",
			blk.off, end, headerSize, m.dataEnd, ErrTruncated)
	}
	return nil
}

// readMeta opens a colstore image (file or mapped bytes) structurally:
// header, trailer, and the CRC-verified footer in between.
func readMeta(path string, r io.ReaderAt, size int64) (*fileMeta, error) {
	ferr := func(section string, err error) error {
		return &FormatError{Path: path, Section: section, Block: -1, Err: err}
	}
	if size < headerSize+trailerSize {
		return nil, ferr("header", ErrTruncated)
	}
	var head [headerSize]byte
	if _, err := r.ReadAt(head[:], 0); err != nil {
		return nil, ferr("header", err)
	}
	if [4]byte(head[:4]) != headerMagic {
		return nil, ferr("header", ErrBadMagic)
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != FormatVersion {
		return nil, ferr("header", fmt.Errorf("%w %d (reader supports %d)", ErrVersion, v, FormatVersion))
	}
	var tail [trailerSize]byte
	if _, err := r.ReadAt(tail[:], size-trailerSize); err != nil {
		return nil, ferr("trailer", err)
	}
	if [8]byte(tail[24:32]) != tailMagic {
		return nil, ferr("trailer", ErrTruncated)
	}
	footerOff := binary.LittleEndian.Uint64(tail[0:8])
	footerLen := binary.LittleEndian.Uint64(tail[8:16])
	footerCRC := binary.LittleEndian.Uint32(tail[16:20])
	if footerOff < headerSize || footerLen > uint64(size) || footerOff+footerLen != uint64(size-trailerSize) {
		return nil, ferr("trailer", fmt.Errorf("footer extent [%d, +%d) inconsistent with file size %d: %w",
			footerOff, footerLen, size, ErrTruncated))
	}
	footer := make([]byte, footerLen)
	if _, err := r.ReadAt(footer, int64(footerOff)); err != nil {
		return nil, ferr("footer", err)
	}
	if got := crc32.Checksum(footer, castagnoli); got != footerCRC {
		return nil, &ChecksumError{Path: path, Block: -1, Want: footerCRC, Got: got}
	}
	return decodeFooter(path, footer, footerOff)
}
