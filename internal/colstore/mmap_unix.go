//go:build unix

package colstore

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only; the mapping outlives the file
// descriptor, so callers may close f right after.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, errMmapUnavailable
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, errMmapUnavailable
	}
	return data, nil
}

func munmapFile(data []byte) error { return syscall.Munmap(data) }
