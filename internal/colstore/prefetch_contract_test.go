package colstore

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/frame"
)

// contractFile writes a colstore file of testFrame content and returns its
// path plus the backing frame for value checks.
func contractFile(t *testing.T, rows, cols, groupRows int) (string, *frame.Frame) {
	t.Helper()
	f := testFrame(rows, cols)
	path := filepath.Join(t.TempDir(), "contract.col")
	if err := WriteFrame(path, f, WriterOptions{GroupRows: groupRows}); err != nil {
		t.Fatal(err)
	}
	return path, f
}

// openReaders enumerates both chunk-source implementations. The streaming
// Reader reuses its buffers across Next (an unstable source, like
// CSVChunks); the mmap reader serves stable views.
func openReaders() map[string]func(path string) (Source, error) {
	return map[string]func(path string) (Source, error){
		"stream": func(path string) (Source, error) { return Open(path) },
		"mmap":   func(path string) (Source, error) { return OpenMmap(path) },
	}
}

// drainChecked reads to EOF asserting order and values, mirroring the frame
// package's prefetcher contract suite.
func drainChecked(t *testing.T, p *frame.Prefetch, f *frame.Frame, recycle bool) int {
	t.Helper()
	want := 0
	for {
		c, err := p.Next()
		if errors.Is(err, io.EOF) {
			return want
		}
		if err != nil {
			t.Fatalf("chunk %d: %v", want, err)
		}
		if c.Index != want {
			t.Fatalf("chunk out of order: got index %d want %d", c.Index, want)
		}
		for j, col := range c.Cols {
			for i, v := range col {
				if exp := f.Columns[j].Values[c.Start+i]; math.Float64bits(v) != math.Float64bits(exp) {
					t.Fatalf("chunk %d col %d row %d: got %v want %v", c.Index, j, i, v, exp)
				}
			}
		}
		for i, v := range c.Label {
			if exp := f.Label[c.Start+i]; v != exp {
				t.Fatalf("chunk %d label row %d: got %v want %v", c.Index, i, v, exp)
			}
		}
		if recycle {
			p.Recycle(c)
		}
		want++
	}
}

// leakCheck snapshots the goroutine count and asserts the process returns
// to it before the test ends.
func leakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestColstorePrefetchDeliveryOrder pins the ChunkSource contract under
// frame.Prefetch for both colstore readers: in-order delivery with exact
// values across read-ahead depths and repeated Reset passes, EOF sticky
// until Reset.
func TestColstorePrefetchDeliveryOrder(t *testing.T) {
	path, f := contractFile(t, 100, 3, 9) // 12 groups
	for _, depth := range []int{1, 2, 7, 100} {
		for name, open := range openReaders() {
			t.Run(fmt.Sprintf("depth=%d/%s", depth, name), func(t *testing.T) {
				src, err := open(path)
				if err != nil {
					t.Fatal(err)
				}
				defer src.Close()
				p := frame.NewPrefetch(src, depth, 2)
				defer p.Close()
				for pass := 0; pass < 3; pass++ {
					if pass > 0 {
						if err := p.Reset(); err != nil {
							t.Fatal(err)
						}
					}
					if got := drainChecked(t, p, f, pass%2 == 0); got != 12 {
						t.Fatalf("pass %d delivered %d chunks, want 12", pass, got)
					}
					if _, err := p.Next(); !errors.Is(err, io.EOF) {
						t.Fatalf("post-EOF Next: %v", err)
					}
				}
			})
		}
	}
}

// TestColstorePrefetchLeases pins the lease contract over the streaming
// Reader (which reuses decode buffers, the worst case): chunks held across
// later Next calls and a Reset stay intact until recycled.
func TestColstorePrefetchLeases(t *testing.T) {
	path, f := contractFile(t, 60, 2, 10) // 6 groups
	src, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	p := frame.NewPrefetch(src, 2, 6)
	defer p.Close()

	var held []*frame.Chunk
	for {
		c, err := p.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, c)
	}
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	for _, c := range held {
		for j, col := range c.Cols {
			for i, v := range col {
				if exp := f.Columns[j].Values[c.Start+i]; math.Float64bits(v) != math.Float64bits(exp) {
					t.Fatalf("lease %d col %d row %d corrupted after Reset", c.Index, j, i)
				}
			}
		}
		p.Recycle(c)
	}
	if got := drainChecked(t, p, f, true); got != 6 {
		t.Fatalf("post-Reset pass delivered %d chunks, want 6", got)
	}
}

// TestColstorePrefetchStickyError pins error flow through the prefetcher:
// a corrupt block surfaces as a positioned ChecksumError after the
// preceding good chunks, sticks across Next calls, and Reset re-arms the
// stream (the same fault then recurs in order — the file is still corrupt).
func TestColstorePrefetchStickyError(t *testing.T) {
	path, _ := contractFile(t, 50, 2, 10) // 5 groups
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	blk := r.meta.groups[3].blocks[0]
	r.Close()
	raw[blk.off+1] ^= 0x55
	badPath := filepath.Join(t.TempDir(), "sticky.col")
	if err := os.WriteFile(badPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	for name, open := range openReaders() {
		t.Run(name, func(t *testing.T) {
			src, err := open(badPath)
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			p := frame.NewPrefetch(src, 2, 2)
			defer p.Close()
			for pass := 0; pass < 2; pass++ {
				if pass > 0 {
					if err := p.Reset(); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 3; i++ {
					c, err := p.Next()
					if err != nil {
						t.Fatalf("pass %d chunk %d: %v", pass, i, err)
					}
					if c.Index != i {
						t.Fatalf("pass %d: chunk index %d, want %d", pass, c.Index, i)
					}
					p.Recycle(c)
				}
				var ce *ChecksumError
				_, err := p.Next()
				if !errors.As(err, &ce) {
					t.Fatalf("pass %d: got %v, want ChecksumError", pass, err)
				}
				if ce.Block != 3 {
					t.Fatalf("pass %d: error at block %d, want 3", pass, ce.Block)
				}
				// Sticky: retries keep returning the same failure.
				for i := 0; i < 3; i++ {
					if _, err := p.Next(); !errors.As(err, &ce) {
						t.Fatalf("pass %d: sticky error lost on retry %d: %v", pass, i, err)
					}
				}
			}
		})
	}
}

// TestColstorePrefetchCloseMidStream pins shutdown: abandoning a stream
// with chunks in flight must stop the reader goroutine, for both readers,
// and closing the source afterwards must release the file cleanly.
func TestColstorePrefetchCloseMidStream(t *testing.T) {
	path, _ := contractFile(t, 200, 2, 10) // 20 groups
	for name, open := range openReaders() {
		t.Run(name, func(t *testing.T) {
			check := leakCheck(t)
			src, err := open(path)
			if err != nil {
				t.Fatal(err)
			}
			p := frame.NewPrefetch(src, 3, 2)
			c, err := p.Next()
			if err != nil {
				t.Fatal(err)
			}
			p.Recycle(c)
			p.Close()
			if err := src.Close(); err != nil {
				t.Fatal(err)
			}
			check()
		})
	}
}

// TestChunkStatsAndSkip pins the SkippableSource surface: per-block min/max
// and NaN counts match the data, and SetSkip suppresses exactly the flagged
// groups while the survivors keep their true global Index and Start.
func TestChunkStatsAndSkip(t *testing.T) {
	path, f := contractFile(t, 40, 2, 10) // 4 groups
	for name, open := range openReaders() {
		t.Run(name, func(t *testing.T) {
			src, err := open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			if src.NumChunks() != 4 {
				t.Fatalf("NumChunks = %d", src.NumChunks())
			}
			for gi := 0; gi < 4; gi++ {
				st := src.ChunkStats(gi)
				if len(st) != 2 {
					t.Fatalf("group %d: %d column stats, want 2", gi, len(st))
				}
				for j, s := range st {
					if !s.Known {
						t.Fatalf("group %d col %d: stats not known for a float column", gi, j)
					}
					mn, mx, nan := math.Inf(1), math.Inf(-1), 0
					for i := gi * 10; i < (gi+1)*10; i++ {
						v := f.Columns[j].Values[i]
						if math.IsNaN(v) {
							nan++
							continue
						}
						mn, mx = math.Min(mn, v), math.Max(mx, v)
					}
					if s.Rows != 10 || s.NaNs != nan || s.Min != mn || s.Max != mx {
						t.Fatalf("group %d col %d: stats {rows %d nan %d min %v max %v}, want {10 %d %v %v}",
							gi, j, s.Rows, s.NaNs, s.Min, s.Max, nan, mn, mx)
					}
				}
			}

			src.SetSkip([]bool{false, true, false, true})
			var got []int
			if err := src.Reset(); err != nil {
				t.Fatal(err)
			}
			for {
				c, err := src.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, c.Index)
				if c.Start != c.Index*10 {
					t.Fatalf("chunk %d: Start %d, want %d", c.Index, c.Start, c.Index*10)
				}
			}
			if len(got) != 2 || got[0] != 0 || got[1] != 2 {
				t.Fatalf("skip pass delivered chunks %v, want [0 2]", got)
			}

			// nil restores full passes.
			src.SetSkip(nil)
			if err := src.Reset(); err != nil {
				t.Fatal(err)
			}
			n := 0
			for {
				_, err := src.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				n++
			}
			if n != 4 {
				t.Fatalf("full pass after SetSkip(nil) delivered %d chunks, want 4", n)
			}
		})
	}
}
