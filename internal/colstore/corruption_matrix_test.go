// Corruption matrix: every corruption the chaos writer can produce for a
// colstore image must surface a typed error (*FormatError or
// *ChecksumError) from both readers — never a panic, never a silent
// success. External test package: the chaos injectors import colstore, so
// the matrix cannot live in package colstore itself.
package colstore_test

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/colstore"
	"repro/internal/frame"
)

// matrixImage builds a three-group image with float, string (dictionary +
// null bitmap), and label columns.
func matrixImage(t *testing.T) []byte {
	t.Helper()
	schema := colstore.Schema{
		{Name: "x", Type: colstore.Float64},
		{Name: "cat", Type: colstore.String},
		{Name: "label", Type: colstore.Float64, Label: true},
	}
	var buf bytes.Buffer
	w, err := colstore.NewWriter(bufio.NewWriter(&buf), schema, colstore.WriterOptions{GroupRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Append([]colstore.Col{
		{Floats: []float64{1, math.NaN(), 3, 4, 5, 6, 7, 8, 9}},
		{Strs: []string{"a", "b", "", "a", "c", "b", "a", "c", "b"},
			Nulls: []bool{false, false, true, false, false, false, false, false, false}},
		{Floats: []float64{0, 1, 0, 1, 0, 1, 0, 1, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireTypedFailure opens and drains a corrupted image through both
// readers, requiring a typed error from each.
func requireTypedFailure(t *testing.T, dir, name string, bad []byte) {
	t.Helper()
	path := filepath.Join(dir, "bad.col")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	drain := func(label string, open func(string) (frame.ChunkSource, error)) {
		r, err := open(path)
		if err == nil {
			_, err = frame.ReadAll(r)
			if c, ok := r.(interface{ Close() error }); ok {
				c.Close() //nolint:errcheck // the drain error is what matters
			}
		}
		if err == nil {
			t.Fatalf("%s: %s read a corrupted image cleanly", name, label)
		}
		var fe *colstore.FormatError
		var ce *colstore.ChecksumError
		if !errors.As(err, &fe) && !errors.As(err, &ce) {
			t.Fatalf("%s: %s surfaced an untyped error: %v", name, label, err)
		}
	}
	drain("stream", func(p string) (frame.ChunkSource, error) { return colstore.Open(p) })
	drain("mmap", func(p string) (frame.ChunkSource, error) { return colstore.OpenMmap(p) })
}

// corruptionMatrix runs the full enumeration for one valid image.
func corruptionMatrix(t *testing.T, raw []byte) {
	t.Helper()
	all, err := chaos.Corruptions(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 20 {
		t.Fatalf("only %d corruptions enumerated", len(all))
	}
	for _, c := range all {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			requireTypedFailure(t, t.TempDir(), c.Name, chaos.Corrupt(raw, c))
		})
	}
}

// TestChaosColstoreCorruptionMatrix runs the matrix over a freshly written
// mixed-schema image.
func TestChaosColstoreCorruptionMatrix(t *testing.T) {
	corruptionMatrix(t, matrixImage(t))
}

// TestChaosColstoreCorruptionMatrixGolden is the acceptance pin on the
// checked-in golden file: the on-disk v1 format stays corruptible only
// into typed errors, for every corruption the chaos writer produces.
func TestChaosColstoreCorruptionMatrixGolden(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_v1.col"))
	if err != nil {
		t.Fatal(err)
	}
	corruptionMatrix(t, raw)
}
