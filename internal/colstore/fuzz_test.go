package colstore

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/frame"
)

// fuzzSeedBytes builds a small valid file entirely in memory for the seed
// corpus. Errors are impossible for this fixed input; panic keeps the
// helper usable from Fuzz (which has no *testing.T).
func fuzzSeedBytes() []byte {
	schema := Schema{
		{Name: "x", Type: Float64},
		{Name: "cat", Type: String},
		{Name: "label", Type: Float64, Label: true},
	}
	var buf bytes.Buffer
	w, err := NewWriter(bufio.NewWriter(&buf), schema, WriterOptions{GroupRows: 3})
	if err != nil {
		panic(err)
	}
	err = w.Append([]Col{
		{Floats: []float64{1, math.NaN(), 3, 4, 5, 6, 7}},
		{Strs: []string{"a", "b", "", "a", "c", "b", "a"}, Nulls: []bool{false, false, true, false, false, false, false}},
		{Floats: []float64{0, 1, 0, 1, 0, 1, 0}},
	})
	if err != nil {
		panic(err)
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzColstoreFooter feeds arbitrary bytes through the full open path
// (header, trailer, footer decode, block validation) and, when the metadata
// parses, drains every chunk. The property under test: no input may panic
// or allocate unboundedly — corrupt files must fail with typed errors.
func FuzzColstoreFooter(f *testing.F) {
	seed := fuzzSeedBytes()
	f.Add(seed)
	f.Add(seed[:len(seed)-trailerSize]) // trailer gone
	f.Add(seed[:headerSize])            // header only
	f.Add([]byte("SCOL"))
	f.Add([]byte{})
	// A flipped footer byte and a flipped block byte.
	for _, off := range []int{len(seed) - trailerSize - 4, headerSize + 2} {
		mut := append([]byte(nil), seed...)
		mut[off] ^= 0xFF
		f.Add(mut)
	}

	requireTyped := func(t *testing.T, stage string, err error) {
		t.Helper()
		var fe *FormatError
		var ce *ChecksumError
		if !errors.As(err, &fe) && !errors.As(err, &ce) {
			t.Fatalf("untyped %s error: %v", stage, err)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Metadata parse runs in memory — this is the hot path and the
		// main attack surface (attacker-controlled lengths and offsets).
		_, err := readMeta("fuzz", bytesAt(data), int64(len(data)))
		if err != nil {
			requireTyped(t, "meta", err)
			return
		}
		// Metadata parsed: exercise the full reader over the actual file
		// API, draining every block. Rare under fuzzing, so disk IO here
		// does not throttle throughput.
		path := filepath.Join(t.TempDir(), "fuzz.col")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := Open(path)
		if err != nil {
			requireTyped(t, "open", err)
			return
		}
		defer r.Close()
		if _, err := frame.ReadAll(r); err != nil && !errors.Is(err, io.EOF) {
			requireTyped(t, "read", err)
		}
	})
}
