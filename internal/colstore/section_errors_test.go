package colstore

import (
	"bufio"
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeMixedSample writes a file exercising every on-disk structure: float
// blocks, string blocks (null bitmap + dictionary codes), a per-column
// dictionary in the footer, and a multi-group block index.
func writeMixedSample(t *testing.T) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mixed.col")
	schema := Schema{
		{Name: "x", Type: Float64},
		{Name: "cat", Type: String},
		{Name: "label", Type: Float64, Label: true},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(bufio.NewWriter(f), schema, WriterOptions{GroupRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Append([]Col{
		{Floats: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}},
		{Strs: []string{"catval-a", "catval-b", "", "catval-a", "catval-c", "catval-b", "catval-a", "catval-c", "catval-b"},
			Nulls: []bool{false, false, true, false, false, false, false, false, false}},
		{Floats: []float64{0, 1, 0, 1, 0, 1, 0, 1, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

// TestSectionErrors is the per-section error-path table: one corruption in
// every structural region of the format, each required to surface the
// documented typed error from both readers — ChecksumError where a CRC
// covers the bytes, FormatError (with its sentinel) where structure is
// validated directly.
func TestSectionErrors(t *testing.T) {
	path, raw := writeMixedSample(t)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	floatBlk := r.meta.groups[0].blocks[0] // column "x", group 0
	strBlk := r.meta.groups[0].blocks[1]   // column "cat", group 0
	rows := int(r.meta.groups[0].rows)
	dataEnd := int(r.meta.dataEnd)
	r.Close()

	footerEnd := len(raw) - trailerSize
	// The dictionary strings live in the footer; locate one directly.
	dictOff := bytes.Index(raw[dataEnd:], []byte("catval-a"))
	if dictOff < 0 {
		t.Fatal("dictionary string not found in footer")
	}
	dictOff += dataEnd

	type wantErr int
	const (
		wantChecksum       wantErr = iota // *ChecksumError at Block/Column
		wantFooterChecksum                // *ChecksumError with Block -1
		wantTruncated                     // *FormatError wrapping ErrTruncated
		wantBadMagic                      // ErrBadMagic
	)
	cases := []struct {
		section string
		off     int
		cut     int // >= 0 truncates instead of flipping
		want    wantErr
		column  string
	}{
		{section: "header", off: 1, want: wantBadMagic},
		{section: "float-block", off: int(floatBlk.off) + 8, want: wantChecksum, column: "x"},
		{section: "null-bitmap", off: int(strBlk.off), want: wantChecksum, column: "cat"},
		{section: "dict-codes", off: int(strBlk.off) + bitmapLen(rows) + 4, want: wantChecksum, column: "cat"},
		{section: "footer-dictionary", off: dictOff, want: wantFooterChecksum},
		{section: "footer-block-index", off: footerEnd - 5, want: wantFooterChecksum},
		{section: "footer-truncated", cut: dataEnd + 3, want: wantTruncated},
		{section: "trailer-magic", off: len(raw) - 1, want: wantTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.section, func(t *testing.T) {
			bad := append([]byte(nil), raw...)
			if tc.cut > 0 {
				bad = bad[:tc.cut]
			} else {
				bad[tc.off] ^= 0x01
			}
			badPath := filepath.Join(t.TempDir(), "bad.col")
			if err := os.WriteFile(badPath, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			for i, err := range openBoth(badPath) {
				if err == nil {
					t.Fatalf("reader %d: corrupted %s read cleanly", i, tc.section)
				}
				switch tc.want {
				case wantChecksum:
					var ce *ChecksumError
					if !errors.As(err, &ce) {
						t.Fatalf("reader %d: got %v, want ChecksumError", i, err)
					}
					if ce.Column != tc.column {
						t.Fatalf("reader %d: checksum error names column %q, want %q", i, ce.Column, tc.column)
					}
					if ce.Block != 0 {
						t.Fatalf("reader %d: checksum error at group %d, want 0", i, ce.Block)
					}
				case wantFooterChecksum:
					var ce *ChecksumError
					if !errors.As(err, &ce) {
						t.Fatalf("reader %d: got %v, want ChecksumError", i, err)
					}
					if ce.Block != -1 {
						t.Fatalf("reader %d: footer checksum error reports block %d", i, ce.Block)
					}
				case wantTruncated:
					var fe *FormatError
					if !errors.As(err, &fe) {
						t.Fatalf("reader %d: got %v, want FormatError", i, err)
					}
					if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) {
						t.Fatalf("reader %d: untyped cause: %v", i, err)
					}
				case wantBadMagic:
					if !errors.Is(err, ErrBadMagic) {
						t.Fatalf("reader %d: got %v, want ErrBadMagic", i, err)
					}
				}
			}
		})
	}
}

// TestSectionErrorsStreamReaderMidDrain pins the streaming reader's
// per-read CRC check: a block corruption in a LATER group is only reached
// mid-drain — the reader must stop at that exact chunk with a positioned
// error, after having returned earlier chunks intact.
func TestSectionErrorsStreamReaderMidDrain(t *testing.T) {
	path, raw := writeMixedSample(t)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	lastGroup := len(r.meta.groups) - 1
	blk := r.meta.groups[lastGroup].blocks[0]
	r.Close()
	if lastGroup == 0 {
		t.Fatal("sample needs at least two groups")
	}

	bad := append([]byte(nil), raw...)
	bad[int(blk.off)+2] ^= 0x01
	badPath := filepath.Join(t.TempDir(), "late.col")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(badPath)
	if err != nil {
		t.Fatalf("open must succeed (corruption is in a later block): %v", err)
	}
	defer r2.Close()
	if err := r2.Reset(); err != nil {
		t.Fatal(err)
	}
	good := 0
	for {
		c, err := r2.Next()
		if err != nil {
			var ce *ChecksumError
			if !errors.As(err, &ce) {
				t.Fatalf("got %v, want ChecksumError", err)
			}
			if ce.Block != lastGroup {
				t.Fatalf("failed at group %d, want %d", ce.Block, lastGroup)
			}
			break
		}
		if c.NumRows() == 0 {
			t.Fatal("empty chunk before the fault")
		}
		good++
	}
	if good != lastGroup {
		t.Fatalf("delivered %d clean chunks before failing, want %d", good, lastGroup)
	}
}

// TestLayoutCoversImage pins the Layout view the chaos corruption writer
// builds on: sections tile the entire image (no gaps, no overlaps), in
// file order, with every block attributed to its group and column.
func TestLayoutCoversImage(t *testing.T) {
	_, raw := writeMixedSample(t)
	secs, err := Layout(raw)
	if err != nil {
		t.Fatal(err)
	}
	var pos int64
	for _, s := range secs {
		if s.Off != pos {
			t.Fatalf("section %s[g%d,%s] starts at %d, want %d (gap or overlap)", s.Name, s.Group, s.Column, s.Off, pos)
		}
		if s.Len <= 0 {
			t.Fatalf("section %s has length %d", s.Name, s.Len)
		}
		pos += s.Len
	}
	if pos != int64(len(raw)) {
		t.Fatalf("sections cover %d of %d bytes", pos, len(raw))
	}
	if secs[0].Name != SectionHeader || secs[len(secs)-1].Name != SectionTrailer {
		t.Fatalf("layout order wrong: %s ... %s", secs[0].Name, secs[len(secs)-1].Name)
	}
	blocks := 0
	for _, s := range secs {
		if s.Name == SectionBlock {
			blocks++
			if s.Group < 0 || s.Column == "" {
				t.Fatalf("block section unattributed: %+v", s)
			}
		}
	}
	// 9 rows in groups of 4 → 3 groups × 3 columns.
	if blocks != 9 {
		t.Fatalf("layout found %d blocks, want 9", blocks)
	}

	// Layout validates like the readers: a corrupt image is refused typed.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0x01
	if _, err := Layout(bad); err == nil {
		t.Fatal("Layout accepted a corrupt trailer")
	}
	var fe *FormatError
	var ce *ChecksumError
	if err := func() error { _, e := Layout(bad); return e }(); !errors.As(err, &fe) && !errors.As(err, &ce) {
		t.Fatalf("Layout error untyped: %v", err)
	}
}
