package colstore

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/frame"
)

// testFrame builds a labelled frame with distinct per-cell values plus a
// seeded scattering of NaNs, so roundtrip bugs surface as value mismatches.
func testFrame(rows, cols int) *frame.Frame {
	f := frame.NewWithShape(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			v := float64(j*rows+i) + 0.25
			if (i*7+j*3)%11 == 0 {
				v = math.NaN()
			}
			f.Columns[j].Values[i] = v
		}
	}
	for i := 0; i < rows; i++ {
		f.Label[i] = float64(i % 2)
	}
	return f
}

// bitsEqual compares floats by IEEE-754 bits (NaN == NaN, -0 != +0).
func bitsEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func checkFrameEqual(t *testing.T, got, want *frame.Frame) {
	t.Helper()
	if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
		t.Fatalf("shape: got %dx%d, want %dx%d", got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for j := range want.Columns {
		if got.Columns[j].Name != want.Columns[j].Name {
			t.Fatalf("column %d name %q, want %q", j, got.Columns[j].Name, want.Columns[j].Name)
		}
		for i, w := range want.Columns[j].Values {
			if !bitsEqual(got.Columns[j].Values[i], w) {
				t.Fatalf("column %d row %d: got %x want %x", j, i,
					math.Float64bits(got.Columns[j].Values[i]), math.Float64bits(w))
			}
		}
	}
	if (got.Label == nil) != (want.Label == nil) {
		t.Fatalf("label presence: got %v want %v", got.Label != nil, want.Label != nil)
	}
	for i, w := range want.Label {
		if !bitsEqual(got.Label[i], w) {
			t.Fatalf("label row %d: got %v want %v", i, got.Label[i], w)
		}
	}
}

// TestRoundtripFrameBothReaders pins write→read float equality, bit-exact
// including NaNs, through the streaming and the mmap reader, with row groups
// that do not divide the row count evenly.
func TestRoundtripFrameBothReaders(t *testing.T) {
	f := testFrame(103, 4)
	path := filepath.Join(t.TempDir(), "t.col")
	if err := WriteFrame(path, f, WriterOptions{GroupRows: 16}); err != nil {
		t.Fatal(err)
	}
	open := map[string]func() (Source, error){
		"stream": func() (Source, error) { return Open(path) },
		"mmap":   func() (Source, error) { src, err := OpenMmap(path); return src, err },
	}
	for name, fn := range open {
		t.Run(name, func(t *testing.T) {
			src, err := fn()
			if err != nil {
				t.Fatal(err)
			}
			defer src.Close()
			if src.NumRows() != 103 || src.NumCols() != 4 {
				t.Fatalf("shape %dx%d", src.NumRows(), src.NumCols())
			}
			if src.NumChunks() != 7 { // ceil(103/16)
				t.Fatalf("NumChunks = %d, want 7", src.NumChunks())
			}
			// Two full passes: the reader must be re-iterable for multi-pass
			// fits, with identical data each time.
			for pass := 0; pass < 2; pass++ {
				got, err := frame.ReadAll(src)
				if err != nil {
					t.Fatalf("pass %d: %v", pass, err)
				}
				checkFrameEqual(t, got, f)
			}
		})
	}
}

// TestRoundtripTyped pins the typed roundtrip: string columns with nulls and
// an empty string value, float columns with NaN and negative zero, restored
// bit- and value-exactly through ReadTable.
func TestRoundtripTyped(t *testing.T) {
	schema := Schema{
		{Name: "f", Type: Float64},
		{Name: "cat", Type: String},
		{Name: "label", Type: Float64, Label: true},
	}
	fl := []float64{1.5, math.NaN(), math.Copysign(0, -1), math.Inf(1), -2.25}
	st := []string{"red", "", "blue", "red", "green"}
	nu := []bool{false, true, false, false, false}
	lb := []float64{0, 1, 0, 1, 1}
	path := filepath.Join(t.TempDir(), "typed.col")
	w, err := Create(path, schema, WriterOptions{GroupRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]Col{{Floats: fl}, {Strs: st, Nulls: nu}, {Floats: lb}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	tab, err := ReadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows != 5 {
		t.Fatalf("rows = %d", tab.Rows)
	}
	for i, v := range fl {
		if !bitsEqual(tab.Floats[0][i], v) {
			t.Fatalf("float row %d: got %x want %x", i, math.Float64bits(tab.Floats[0][i]), math.Float64bits(v))
		}
	}
	for i := range st {
		if tab.Nulls[1][i] != nu[i] {
			t.Fatalf("null row %d: got %v want %v", i, tab.Nulls[1][i], nu[i])
		}
		if !nu[i] && tab.Strs[1][i] != st[i] {
			t.Fatalf("string row %d: got %q want %q", i, tab.Strs[1][i], st[i])
		}
	}

	// The chunk readers serve the string column as dictionary codes with
	// nulls as NaN; the dictionary decodes them back.
	src, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got, err := frame.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	dict := src.Dict(1)
	for i := range st {
		code := got.Columns[1].Values[i]
		if nu[i] {
			if !math.IsNaN(code) {
				t.Fatalf("row %d: null served as %v, want NaN", i, code)
			}
			continue
		}
		if dict[int(code)] != st[i] {
			t.Fatalf("row %d: code %v decodes to %q, want %q", i, code, dict[int(code)], st[i])
		}
	}
}

// TestRoundtripEmpty pins the degenerate shapes: a zero-row file and a file
// whose row count is smaller than one group.
func TestRoundtripEmpty(t *testing.T) {
	dir := t.TempDir()
	for _, rows := range []int{0, 3} {
		f := frame.NewWithShape(rows, 2)
		for i := 0; i < rows; i++ {
			f.Columns[0].Values[i] = float64(i)
			f.Columns[1].Values[i] = -float64(i)
			f.Label[i] = 1
		}
		path := filepath.Join(dir, "e.col")
		if err := WriteFrame(path, f, WriterOptions{}); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != rows || got.NumCols() != 2 {
			t.Fatalf("rows=%d: read shape %dx%d", rows, got.NumRows(), got.NumCols())
		}
		if rows > 0 {
			checkFrameEqual(t, got, f)
		}
	}
}

// TestConvertCSVRoundtrip pins the conversion path end to end: a CSV with
// float, string, and missing cells sniffs to the right schema, converts to
// colstore, reads back typed, converts back to CSV, and re-converts to an
// identical table — floats bit-exactly (shortest round-trip formatting),
// strings and nulls verbatim.
func TestConvertCSVRoundtrip(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "in.csv")
	f := testFrame(57, 3)
	if err := f.WriteCSVFile(csvPath); err != nil {
		t.Fatal(err)
	}
	// Splice a string column in by rewriting: simpler to build the csv by
	// hand for full type coverage.
	csvPath = filepath.Join(dir, "mixed.csv")
	content := "x,cat,label\n1.5,red,0\n-0.125,,1\n,blue,0\n2e-308,red,1\n0.1,green,0\n"
	if err := writeFileForTest(csvPath, content); err != nil {
		t.Fatal(err)
	}
	schema, err := SniffCSV(csvPath, "label")
	if err != nil {
		t.Fatal(err)
	}
	if schema[0].Type != Float64 || schema[1].Type != String || !schema[2].Label {
		t.Fatalf("sniffed schema %+v", schema)
	}
	colPath := filepath.Join(dir, "mixed.col")
	rows, err := ConvertCSV(csvPath, colPath, schema, WriterOptions{GroupRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 5 {
		t.Fatalf("converted %d rows, want 5", rows)
	}
	tab, err := ReadTable(colPath)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(tab.Floats[0][2]) {
		t.Fatalf("missing float cell read as %v, want NaN", tab.Floats[0][2])
	}
	if !tab.Nulls[1][1] {
		t.Fatal("empty string cell not null")
	}
	if tab.Floats[0][3] != 2e-308 {
		t.Fatalf("subnormal-adjacent float: got %v", tab.Floats[0][3])
	}

	// colstore -> CSV -> colstore must be a fixed point.
	csv2 := filepath.Join(dir, "back.csv")
	if err := tab.WriteCSVFile(csv2); err != nil {
		t.Fatal(err)
	}
	col2 := filepath.Join(dir, "back.col")
	if _, err := ConvertCSV(csv2, col2, schema, WriterOptions{GroupRows: 3}); err != nil {
		t.Fatal(err)
	}
	tab2, err := ReadTable(col2)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Equal(tab2) {
		t.Fatal("csv roundtrip changed the table")
	}
}
