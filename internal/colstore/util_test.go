package colstore

import "os"

func writeFileForTest(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
