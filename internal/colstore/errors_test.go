package colstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/frame"
)

// writeSample writes a small two-group file and returns its path and bytes.
func writeSample(t *testing.T) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.col")
	f := testFrame(20, 3)
	if err := WriteFrame(path, f, WriterOptions{GroupRows: 10}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

// openBoth tries both readers and returns their errors (mmap first). A full
// drain follows a successful open, so block-level faults surface too.
func openBoth(path string) []error {
	var errs []error
	if r, err := OpenMmap(path); err != nil {
		errs = append(errs, err)
	} else {
		_, err := frame.ReadAll(r)
		r.Close()
		errs = append(errs, err)
	}
	if r, err := Open(path); err != nil {
		errs = append(errs, err)
	} else {
		_, err := frame.ReadAll(r)
		r.Close()
		errs = append(errs, err)
	}
	return errs
}

// TestTruncatedFile pins that truncation at every prefix length yields a
// typed error — FormatError wrapping ErrTruncated (or ErrBadMagic for
// sub-header prefixes), never a panic and never silent success.
func TestTruncatedFile(t *testing.T) {
	_, raw := writeSample(t)
	dir := t.TempDir()
	for cut := 0; cut < len(raw); cut += 7 {
		path := filepath.Join(dir, "trunc.col")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		for _, err := range openBoth(path) {
			if err == nil {
				t.Fatalf("cut=%d: truncated file opened and drained cleanly", cut)
			}
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("cut=%d: error not a FormatError: %v", cut, err)
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) {
				t.Fatalf("cut=%d: untyped cause: %v", cut, err)
			}
		}
	}
}

// TestCorruptBlockChecksum pins block corruption: flipping one payload byte
// surfaces a ChecksumError naming the row-group ordinal and column, from
// both readers.
func TestCorruptBlockChecksum(t *testing.T) {
	path, raw := writeSample(t)
	// Locate group 1 / column "f1"'s block via the reader's own index.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	blk := r.meta.groups[1].blocks[1]
	colName := r.meta.schema[1].Name
	r.Close()

	bad := append([]byte(nil), raw...)
	bad[blk.off+3] ^= 0xFF
	badPath := filepath.Join(t.TempDir(), "bad.col")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	for i, err := range openBoth(badPath) {
		var ce *ChecksumError
		if !errors.As(err, &ce) {
			t.Fatalf("reader %d: got %v, want ChecksumError", i, err)
		}
		if ce.Block != 1 || ce.Column != colName {
			t.Fatalf("reader %d: checksum error at group %d column %q, want group 1 column %q",
				i, ce.Block, ce.Column, colName)
		}
		if !strings.Contains(err.Error(), badPath) || !strings.Contains(err.Error(), colName) {
			t.Fatalf("reader %d: error not positioned: %v", i, err)
		}
	}
}

// TestCorruptFooterChecksum pins footer corruption: a flipped footer byte is
// a ChecksumError with Block -1 (the footer), not a misparse.
func TestCorruptFooterChecksum(t *testing.T) {
	path, raw := writeSample(t)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	footerOff := r.meta.dataEnd
	r.Close()

	bad := append([]byte(nil), raw...)
	bad[footerOff+2] ^= 0x01
	badPath := filepath.Join(t.TempDir(), "badfooter.col")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	for i, err := range openBoth(badPath) {
		var ce *ChecksumError
		if !errors.As(err, &ce) {
			t.Fatalf("reader %d: got %v, want ChecksumError", i, err)
		}
		if ce.Block != -1 {
			t.Fatalf("reader %d: footer checksum error reports block %d", i, ce.Block)
		}
	}
	_ = path
}

// TestNotAColstoreFile pins the magic check on arbitrary non-colstore bytes.
func TestNotAColstoreFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.col")
	if err := writeFileForTest(path, strings.Repeat("definitely,a,csv\n1,2,3\n", 20)); err != nil {
		t.Fatal(err)
	}
	for i, err := range openBoth(path) {
		if !errors.Is(err, ErrBadMagic) {
			t.Fatalf("reader %d: got %v, want ErrBadMagic", i, err)
		}
	}
}

// TestUnsupportedVersion pins forward compatibility: a bumped version field
// is refused with ErrVersion (the header CRC-free fields re-checksum via the
// trailer-independent header, so only the version changes).
func TestUnsupportedVersion(t *testing.T) {
	_, raw := writeSample(t)
	bad := append([]byte(nil), raw...)
	bad[4] = 2 // version u16 little-endian low byte
	path := filepath.Join(t.TempDir(), "v2.col")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	for i, err := range openBoth(path) {
		if !errors.Is(err, ErrVersion) {
			t.Fatalf("reader %d: got %v, want ErrVersion", i, err)
		}
	}
}

// TestShortReadMidBlock pins a file cut inside the data region but with a
// rebuilt valid footer: impossible through the writer, so simulate by
// truncating mid-block — the footer is gone too, which TestTruncatedFile
// covers; here instead corrupt the trailer's footer offset to point past
// EOF and require a positioned trailer error.
func TestShortReadMidBlock(t *testing.T) {
	_, raw := writeSample(t)
	bad := append([]byte(nil), raw...)
	off := len(bad) - trailerSize
	// footerOff u64: point it beyond EOF.
	for i := 0; i < 8; i++ {
		bad[off+i] = 0xFF
	}
	bad[off+7] = 0x00
	path := filepath.Join(t.TempDir(), "badtrailer.col")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	for i, err := range openBoth(path) {
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("reader %d: got %v, want FormatError", i, err)
		}
		if fe.Section != "trailer" {
			t.Fatalf("reader %d: error in section %q, want trailer", i, fe.Section)
		}
	}
}
