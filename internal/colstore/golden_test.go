package colstore

import (
	"bytes"
	"encoding/binary"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden fixtures")

// goldenFile builds the canonical fixture content: every column type, a
// NaN, a null, a negative zero, an interned duplicate string, and a row
// count (5) that does not divide the group size (2) evenly.
func goldenFile(t *testing.T, path string) {
	t.Helper()
	schema := Schema{
		{Name: "x", Type: Float64},
		{Name: "cat", Type: String},
		{Name: "label", Type: Float64, Label: true},
	}
	w, err := Create(path, schema, WriterOptions{GroupRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Append([]Col{
		{Floats: []float64{1.5, math.NaN(), math.Copysign(0, -1), 3.25, -7}},
		{Strs: []string{"red", "blue", "", "red", ""}, Nulls: []bool{false, false, true, false, false}},
		{Floats: []float64{0, 1, 1, 0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenV1 pins the version-1 byte layout against a checked-in fixture.
// If this test fails after an intentional format change, bump FormatVersion
// and add a new fixture — do not regenerate this one silently.
// Regenerate (only alongside a version bump) with:
//
//	go test ./internal/colstore/ -run TestGoldenV1 -update
func TestGoldenV1(t *testing.T) {
	golden := filepath.Join("testdata", "golden_v1.col")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		goldenFile(t, golden)
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}

	// The writer must still produce byte-identical output for this content.
	fresh := filepath.Join(t.TempDir(), "fresh.col")
	goldenFile(t, fresh)
	got, err := os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("writer output diverged from golden v1 fixture (len %d vs %d)", len(got), len(want))
	}

	// Fixed-offset assertions: the structural anchors of the v1 layout.
	le := binary.LittleEndian
	if string(want[0:4]) != "SCOL" {
		t.Fatalf("header magic = %q", want[0:4])
	}
	if v := le.Uint16(want[4:6]); v != 1 {
		t.Fatalf("version = %d", v)
	}
	if string(want[len(want)-8:]) != "SAFECOL1" {
		t.Fatalf("tail magic = %q", want[len(want)-8:])
	}
	trailer := want[len(want)-trailerSize:]
	footerOff := le.Uint64(trailer[0:8])
	footerLen := le.Uint64(trailer[8:16])
	if footerOff+footerLen != uint64(len(want)-trailerSize) {
		t.Fatalf("footer extent [%d,+%d) does not abut trailer at %d",
			footerOff, footerLen, len(want)-trailerSize)
	}
	// First data block starts right after the 8-byte header, 8-aligned, and
	// holds group 0 of column "x": floats 1.5 and NaN, little-endian.
	if bits := le.Uint64(want[8:16]); bits != math.Float64bits(1.5) {
		t.Fatalf("first float bits = %#x, want %#x", bits, math.Float64bits(1.5))
	}
	if bits := le.Uint64(want[16:24]); !math.IsNaN(math.Float64frombits(bits)) {
		t.Fatalf("second float bits = %#x, want a NaN", bits)
	}
	// Footer leads with colCount=3, groupCount=3 (ceil(5/2)), rowCount=5,
	// groupRows=2.
	foot := want[footerOff : footerOff+footerLen]
	if n := le.Uint32(foot[0:4]); n != 3 {
		t.Fatalf("footer colCount = %d", n)
	}
	if n := le.Uint32(foot[4:8]); n != 3 {
		t.Fatalf("footer groupCount = %d", n)
	}
	if n := le.Uint64(foot[8:16]); n != 5 {
		t.Fatalf("footer rowCount = %d", n)
	}
	if n := le.Uint32(foot[16:20]); n != 2 {
		t.Fatalf("footer groupRows = %d", n)
	}

	// Both readers must decode the fixture to the expected typed values —
	// this is what actually freezes v1: files written by this commit stay
	// readable forever.
	tab, err := ReadTable(golden)
	if err != nil {
		t.Fatal(err)
	}
	wantF := []float64{1.5, math.NaN(), math.Copysign(0, -1), 3.25, -7}
	for i, v := range wantF {
		if math.Float64bits(tab.Floats[0][i]) != math.Float64bits(v) {
			t.Fatalf("fixture float row %d: %x want %x", i,
				math.Float64bits(tab.Floats[0][i]), math.Float64bits(v))
		}
	}
	wantS := []string{"red", "blue", "", "red", ""}
	wantN := []bool{false, false, true, false, false}
	for i := range wantS {
		if tab.Nulls[1][i] != wantN[i] || (!wantN[i] && tab.Strs[1][i] != wantS[i]) {
			t.Fatalf("fixture string row %d: %q null=%v", i, tab.Strs[1][i], tab.Nulls[1][i])
		}
	}
	wantL := []float64{0, 1, 1, 0, 1}
	for i, v := range wantL {
		if tab.Floats[2][i] != v {
			t.Fatalf("fixture label row %d: %v want %v", i, tab.Floats[2][i], v)
		}
	}
}
