package colstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"repro/internal/frame"
)

// Col is one column's slice of an appended row run, in the representation
// its schema type requires: Floats for Float64 columns, Strs (with Nulls
// marking missing rows, nil for none) for String columns.
type Col struct {
	Floats []float64
	Strs   []string
	Nulls  []bool
}

func (c *Col) rows(t Type) int {
	if t == Float64 {
		return len(c.Floats)
	}
	return len(c.Strs)
}

// WriterOptions tunes a Writer.
type WriterOptions struct {
	// GroupRows is the row-group size (DefaultGroupRows when <= 0). Smaller
	// groups mean finer-grained block statistics — more skippable blocks —
	// at more footer entries per file.
	GroupRows int
}

// Writer streams rows into a colstore file: appended rows buffer per column
// and flush as a row group every GroupRows rows, each block checksummed and
// its statistics recorded for the footer's block index. Close writes the
// final partial group, the footer and the trailer. The Writer owns no file
// handle — it writes to the given io.Writer sequentially (see Create for
// the file-backed convenience).
type Writer struct {
	w      *bufio.Writer
	schema Schema
	opt    WriterOptions

	off  uint64
	meta fileMeta

	pending  []Col // per-column group accumulation, Writer-owned
	buffered int
	dictIdx  []map[string]uint32 // per string column: value -> code
	scratch  []byte
	closed   bool
	err      error
}

// NewWriter starts a colstore stream on w (the header is written
// immediately). The schema must satisfy Schema.Validate.
func NewWriter(w *bufio.Writer, schema Schema, opt WriterOptions) (*Writer, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if opt.GroupRows <= 0 {
		opt.GroupRows = DefaultGroupRows
	}
	cw := &Writer{
		w:       w,
		schema:  append(Schema(nil), schema...),
		opt:     opt,
		pending: make([]Col, len(schema)),
		dictIdx: make([]map[string]uint32, len(schema)),
	}
	cw.meta.schema = cw.schema
	cw.meta.groupRows = uint32(opt.GroupRows)
	cw.meta.dicts = make([][]string, len(schema))
	for j, c := range schema {
		if c.Type == String {
			cw.dictIdx[j] = make(map[string]uint32)
			cw.meta.dicts[j] = []string{}
		}
	}
	var head [headerSize]byte
	copy(head[:4], headerMagic[:])
	binary.LittleEndian.PutUint16(head[4:6], FormatVersion)
	if _, err := w.Write(head[:]); err != nil {
		cw.err = err
		return nil, fmt.Errorf("colstore: write header: %w", err)
	}
	cw.off = headerSize
	return cw, nil
}

// Append buffers one run of rows, given as one Col per schema column (all
// the same length), flushing full row groups as they fill. The slices are
// copied; the caller keeps ownership.
func (w *Writer) Append(cols []Col) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("colstore: append after Close")
	}
	if len(cols) != len(w.schema) {
		return fmt.Errorf("colstore: append with %d columns, schema has %d", len(cols), len(w.schema))
	}
	rows := -1
	for j := range cols {
		c := &cols[j]
		r := c.rows(w.schema[j].Type)
		if w.schema[j].Type == Float64 && c.Strs != nil {
			return fmt.Errorf("colstore: column %q is float64 but got strings", w.schema[j].Name)
		}
		if w.schema[j].Type == String && c.Floats != nil {
			return fmt.Errorf("colstore: column %q is string but got floats", w.schema[j].Name)
		}
		if c.Nulls != nil && len(c.Nulls) != r {
			return fmt.Errorf("colstore: column %q has %d null flags for %d rows", w.schema[j].Name, len(c.Nulls), r)
		}
		if rows == -1 {
			rows = r
		} else if r != rows {
			return fmt.Errorf("colstore: ragged append: column %q has %d rows, column %q has %d",
				w.schema[j].Name, r, w.schema[0].Name, rows)
		}
	}
	for start := 0; start < rows; {
		take := w.opt.GroupRows - w.buffered
		if take > rows-start {
			take = rows - start
		}
		for j := range cols {
			p := &w.pending[j]
			if w.schema[j].Type == Float64 {
				p.Floats = append(p.Floats, cols[j].Floats[start:start+take]...)
				continue
			}
			p.Strs = append(p.Strs, cols[j].Strs[start:start+take]...)
			if p.Nulls == nil {
				p.Nulls = make([]bool, 0, w.opt.GroupRows)
			}
			if cols[j].Nulls != nil {
				p.Nulls = append(p.Nulls, cols[j].Nulls[start:start+take]...)
			} else {
				p.Nulls = append(p.Nulls, make([]bool, take)...)
			}
		}
		w.buffered += take
		start += take
		if w.buffered == w.opt.GroupRows {
			if err := w.flushGroup(); err != nil {
				return err
			}
		}
	}
	return nil
}

// AppendChunk appends one frame chunk: all-float feature columns plus, when
// the schema carries a label column, the chunk's label.
func (w *Writer) AppendChunk(c *frame.Chunk) error {
	cols := make([]Col, len(w.schema))
	li := w.schema.LabelIndex()
	fi := 0
	for j := range w.schema {
		if j == li {
			if c.Label == nil {
				return errors.New("colstore: schema has a label column but the chunk has no label")
			}
			cols[j] = Col{Floats: c.Label}
			continue
		}
		if fi >= len(c.Cols) {
			return fmt.Errorf("colstore: chunk has %d feature columns, schema needs %d", len(c.Cols), len(w.schema)-1)
		}
		cols[j] = Col{Floats: c.Cols[fi]}
		fi++
	}
	if fi != len(c.Cols) {
		return fmt.Errorf("colstore: chunk has %d feature columns, schema needs %d", len(c.Cols), fi)
	}
	return w.Append(cols)
}

// flushGroup writes the buffered rows as one row group, in schema order.
func (w *Writer) flushGroup() error {
	rows := w.buffered
	if rows == 0 {
		return nil
	}
	g := groupMeta{start: w.meta.rows, rows: uint32(rows), blocks: make([]blockMeta, len(w.schema))}
	for j := range w.schema {
		var err error
		if w.schema[j].Type == Float64 {
			g.blocks[j], err = w.writeFloatBlock(w.pending[j].Floats)
		} else {
			g.blocks[j], err = w.writeStringBlock(j, w.pending[j].Strs, w.pending[j].Nulls)
		}
		if err != nil {
			w.err = fmt.Errorf("colstore: write group %d column %q: %w", len(w.meta.groups), w.schema[j].Name, err)
			return w.err
		}
		w.pending[j] = Col{
			Floats: w.pending[j].Floats[:0],
			Strs:   w.pending[j].Strs[:0],
			Nulls:  w.pending[j].Nulls[:0],
		}
	}
	w.meta.groups = append(w.meta.groups, g)
	w.meta.rows += uint64(rows)
	w.buffered = 0
	return nil
}

// writeBlock writes one padded, checksummed payload and returns its meta.
func (w *Writer) writeBlock(payload []byte) (blockMeta, error) {
	blk := blockMeta{off: w.off, length: uint64(len(payload)), crc: crc32.Checksum(payload, castagnoli)}
	if _, err := w.w.Write(payload); err != nil {
		return blk, err
	}
	var zero [blockAlign]byte
	if pad := int(pad8(blk.length) - blk.length); pad > 0 {
		if _, err := w.w.Write(zero[:pad]); err != nil {
			return blk, err
		}
	}
	w.off += pad8(blk.length)
	return blk, nil
}

func (w *Writer) writeFloatBlock(vals []float64) (blockMeta, error) {
	buf := w.scratch[:0]
	min, max := math.NaN(), math.NaN()
	nan := 0
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		if math.IsNaN(v) {
			nan++
			continue
		}
		if math.IsNaN(min) || v < min {
			min = v
		}
		if math.IsNaN(max) || v > max {
			max = v
		}
	}
	w.scratch = buf
	blk, err := w.writeBlock(buf)
	blk.min, blk.max, blk.nan = min, max, uint32(nan)
	return blk, err
}

func (w *Writer) writeStringBlock(j int, vals []string, nulls []bool) (blockMeta, error) {
	buf := w.scratch[:0]
	bm := bitmapLen(len(vals))
	buf = append(buf, make([]byte, bm)...)
	nullCount := 0
	for i, s := range vals {
		var code uint32
		if nulls[i] {
			buf[i/8] |= 1 << (i % 8)
			nullCount++
		} else {
			idx, ok := w.dictIdx[j][s]
			if !ok {
				idx = uint32(len(w.meta.dicts[j]))
				w.dictIdx[j][s] = idx
				w.meta.dicts[j] = append(w.meta.dicts[j], s)
			}
			code = idx
		}
		buf = binary.LittleEndian.AppendUint32(buf, code)
	}
	w.scratch = buf
	blk, err := w.writeBlock(buf)
	// String blocks carry no value range: their served float representation
	// is the dictionary code, which is not an order statistic of the data.
	blk.min, blk.max, blk.nan = math.NaN(), math.NaN(), uint32(nullCount)
	return blk, err
}

// Close flushes the final partial row group and writes the footer and
// trailer. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.flushGroup(); err != nil {
		return err
	}
	footer := encodeFooter(&w.meta)
	footerOff := w.off
	if _, err := w.w.Write(footer); err != nil {
		w.err = fmt.Errorf("colstore: write footer: %w", err)
		return w.err
	}
	var tail [trailerSize]byte
	binary.LittleEndian.PutUint64(tail[0:8], footerOff)
	binary.LittleEndian.PutUint64(tail[8:16], uint64(len(footer)))
	binary.LittleEndian.PutUint32(tail[16:20], crc32.Checksum(footer, castagnoli))
	copy(tail[24:32], tailMagic[:])
	if _, err := w.w.Write(tail[:]); err != nil {
		w.err = fmt.Errorf("colstore: write trailer: %w", err)
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("colstore: flush: %w", err)
		return w.err
	}
	return nil
}

// Rows returns the row count written so far (buffered rows included).
func (w *Writer) Rows() int { return int(w.meta.rows) + w.buffered }

// FileWriter is a Writer bound to a file it owns; Close finishes the format
// and closes the file.
type FileWriter struct {
	*Writer
	f *os.File
}

// Create creates (truncating) a colstore file and starts a Writer on it.
func Create(path string, schema Schema, opt WriterOptions) (*FileWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	w, err := NewWriter(bufio.NewWriterSize(f, 1<<20), schema, opt)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileWriter{Writer: w, f: f}, nil
}

// Close finishes the format and closes the file.
func (fw *FileWriter) Close() error {
	werr := fw.Writer.Close()
	var serr error
	if werr == nil {
		serr = fw.f.Sync()
	}
	cerr := fw.f.Close()
	if werr != nil {
		return werr
	}
	if serr != nil {
		return fmt.Errorf("colstore: sync: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("colstore: close: %w", cerr)
	}
	return nil
}

// WriteFrame writes an in-memory frame (all-float features, plus its label
// when present) as a colstore file.
func WriteFrame(path string, f *frame.Frame, opt WriterOptions) error {
	fw, err := Create(path, FrameSchema(f.Names(), f.Label != nil), opt)
	if err != nil {
		return err
	}
	cols := make([]Col, 0, len(f.Columns)+1)
	for i := range f.Columns {
		cols = append(cols, Col{Floats: f.Columns[i].Values})
	}
	if f.Label != nil {
		cols = append(cols, Col{Floats: f.Label})
	}
	if err := fw.Append(cols); err != nil {
		fw.Close()
		return err
	}
	return fw.Close()
}
