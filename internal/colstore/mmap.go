package colstore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"unsafe"

	"repro/internal/frame"
)

// errMmapUnavailable marks hosts where the mmap reader cannot serve
// zero-copy views (no mmap shim, or a big-endian host where raw
// little-endian payloads are not the in-memory representation). OpenSource
// falls back to the streaming Reader on it.
var errMmapUnavailable = errors.New("colstore: mmap reader unavailable on this platform")

// hostLittleEndian reports whether float views over little-endian payloads
// are the host representation.
func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// MmapReader serves a colstore file as a frame.ChunkSource over one shared
// read-only mapping: float blocks become zero-copy []float64 views (the
// format 8-aligns float payloads, so views are always aligned), making every
// pass of a multi-pass fit a pointer walk instead of a decode. Chunks are
// stable — views stay valid across Next and Reset, like FrameChunks.
//
// String columns have no zero-copy float representation; they materialise
// once at open into resident code columns (NaN for nulls). Block CRCs are
// verified lazily, once per row group on first delivery.
type MmapReader struct {
	path string
	data []byte
	meta *fileMeta

	feat     []int
	labelIdx int
	names    []string

	g        int
	skip     []bool
	verified []bool
	resident [][]float64 // per schema column: materialised codes (string cols)
	chunk    frame.Chunk
}

// OpenMmap maps a colstore file. It returns an error wrapping
// errMmapUnavailable where the platform cannot serve views (use OpenSource
// to fall back to the streaming Reader transparently).
func OpenMmap(path string) (*MmapReader, error) {
	if !hostLittleEndian() {
		return nil, errMmapUnavailable
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	if st.Size() < headerSize+trailerSize {
		return nil, &FormatError{Path: path, Section: "trailer", Block: -1, Err: ErrTruncated}
	}
	data, err := mmapFile(f, st.Size())
	if err != nil {
		return nil, err
	}
	meta, err := readMeta(path, bytesAt(data), int64(len(data)))
	if err != nil {
		munmapFile(data)
		return nil, err
	}
	r := &MmapReader{path: path, data: data, meta: meta}
	r.bind()
	if err := r.materializeStrings(); err != nil {
		munmapFile(data)
		return nil, err
	}
	return r, nil
}

func (r *MmapReader) bind() {
	r.labelIdx = r.meta.schema.LabelIndex()
	r.names = r.meta.schema.FeatureNames()
	r.feat = r.feat[:0]
	for j := range r.meta.schema {
		if j != r.labelIdx {
			r.feat = append(r.feat, j)
		}
	}
	r.verified = make([]bool, len(r.meta.groups))
	r.chunk = frame.Chunk{Cols: make([][]float64, len(r.feat))}
}

// materializeStrings decodes every string column once into resident float
// code columns (verifying their block CRCs eagerly — they are read now).
func (r *MmapReader) materializeStrings() error {
	for j, spec := range r.meta.schema {
		if spec.Type != String {
			continue
		}
		if r.resident == nil {
			r.resident = make([][]float64, len(r.meta.schema))
		}
		col := make([]float64, r.meta.rows)
		for gi := range r.meta.groups {
			g := &r.meta.groups[gi]
			buf, err := r.block(gi, j, true)
			if err != nil {
				return err
			}
			dst := col[g.start : g.start+uint64(g.rows)]
			if err := decodeStringBlock(r.path, gi, j, &r.meta.schema[j], r.meta.dicts[j], buf, dst); err != nil {
				return err
			}
		}
		r.resident[j] = col
	}
	return nil
}

// block returns group gi / column j's payload view, CRC-checking it when
// asked (the per-group lazy verification checks all blocks at once instead).
func (r *MmapReader) block(gi, j int, check bool) ([]byte, error) {
	blk := &r.meta.groups[gi].blocks[j]
	buf := r.data[blk.off : blk.off+blk.length]
	if check {
		if got := crc32.Checksum(buf, castagnoli); got != blk.crc {
			return nil, &ChecksumError{
				Path: r.path, Block: gi, Column: r.meta.schema[j].Name,
				Want: blk.crc, Got: got,
			}
		}
	}
	return buf, nil
}

// verifyGroup CRC-checks every block of a group once per mapping lifetime.
func (r *MmapReader) verifyGroup(gi int) error {
	if r.verified[gi] {
		return nil
	}
	for j := range r.meta.schema {
		if _, err := r.block(gi, j, true); err != nil {
			return err
		}
	}
	r.verified[gi] = true
	return nil
}

// floatView reinterprets a float block payload as []float64 without copying.
func floatView(b []byte) []float64 {
	if len(b) < 8 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// Names implements frame.ChunkSource.
func (r *MmapReader) Names() []string { return r.names }

// NumCols implements frame.ChunkSource.
func (r *MmapReader) NumCols() int { return len(r.feat) }

// NumRows implements Source.
func (r *MmapReader) NumRows() int { return int(r.meta.rows) }

// Schema implements Source.
func (r *MmapReader) Schema() Schema { return append(Schema(nil), r.meta.schema...) }

// Dict returns the dictionary of the string column at schema index j; see
// Reader.Dict.
func (r *MmapReader) Dict(j int) []string { return r.meta.dicts[j] }

// Reset implements frame.ChunkSource, remapping the file if it was closed.
func (r *MmapReader) Reset() error {
	if r.data == nil {
		nr, err := OpenMmap(r.path)
		if err != nil {
			return err
		}
		*r = *nr
		return nil
	}
	r.g = 0
	return nil
}

// Next implements frame.ChunkSource, serving zero-copy views.
func (r *MmapReader) Next() (*frame.Chunk, error) {
	for r.g < len(r.meta.groups) && r.g < len(r.skip) && r.skip[r.g] {
		r.g++
	}
	if r.g >= len(r.meta.groups) {
		return nil, io.EOF
	}
	if r.data == nil {
		return nil, &FormatError{Path: r.path, Section: "block", Block: r.g, Err: os.ErrClosed}
	}
	gi := r.g
	if err := r.verifyGroup(gi); err != nil {
		return nil, err
	}
	g := &r.meta.groups[gi]
	c := &r.chunk
	c.Index = gi
	c.Start = int(g.start)
	for i, j := range r.feat {
		if r.meta.schema[j].Type == Float64 {
			buf, _ := r.block(gi, j, false)
			c.Cols[i] = floatView(buf)[:g.rows:g.rows]
		} else {
			c.Cols[i] = r.resident[j][g.start : g.start+uint64(g.rows)]
		}
	}
	if r.labelIdx >= 0 {
		buf, _ := r.block(gi, r.labelIdx, false)
		c.Label = floatView(buf)[:g.rows:g.rows]
	} else {
		c.Label = nil
	}
	r.g++
	return c, nil
}

// StableChunks implements frame.StableSource: every served slice is a view
// of the mapping or a resident column, valid until Close.
func (r *MmapReader) StableChunks() bool { return true }

// NumChunks implements frame.SkippableSource.
func (r *MmapReader) NumChunks() int { return len(r.meta.groups) }

// ChunkStats implements frame.SkippableSource; see Reader.ChunkStats.
func (r *MmapReader) ChunkStats(i int) []frame.ColStats {
	return chunkStats(r.meta, r.feat, i)
}

// SetSkip implements frame.SkippableSource.
func (r *MmapReader) SetSkip(skip []bool) { r.skip = skip }

// Close unmaps the file. Views served earlier become invalid; Reset remaps.
func (r *MmapReader) Close() error {
	if r.data == nil {
		return nil
	}
	err := munmapFile(r.data)
	r.data = nil
	return err
}

// bytesAt adapts a byte slice to io.ReaderAt for the shared footer parser.
type bytesAt []byte

func (b bytesAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

var _ Source = (*MmapReader)(nil)
var _ frame.StableSource = (*MmapReader)(nil)

// OpenSource opens a colstore file with the fastest reader the host
// supports: the zero-copy MmapReader where available, the portable
// streaming Reader otherwise. File and format errors are reported either
// way; only mmap unavailability falls back.
func OpenSource(path string) (Source, error) {
	r, err := OpenMmap(path)
	if err == nil {
		return r, nil
	}
	if errors.Is(err, errMmapUnavailable) {
		return Open(path)
	}
	return nil, err
}
