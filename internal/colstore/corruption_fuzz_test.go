package colstore_test

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/colstore"
	"repro/internal/frame"
)

// fuzzImage builds the small mixed-schema image the block-corruption seeds
// derive from. Errors are impossible for this fixed input; panic keeps the
// helper usable from Fuzz (no *testing.T).
func fuzzImage() []byte {
	schema := colstore.Schema{
		{Name: "x", Type: colstore.Float64},
		{Name: "cat", Type: colstore.String},
		{Name: "label", Type: colstore.Float64, Label: true},
	}
	var buf bytes.Buffer
	w, err := colstore.NewWriter(bufio.NewWriter(&buf), schema, colstore.WriterOptions{GroupRows: 3})
	if err != nil {
		panic(err)
	}
	err = w.Append([]colstore.Col{
		{Floats: []float64{1, math.NaN(), 3, 4, 5, 6, 7}},
		{Strs: []string{"a", "b", "", "a", "c", "b", "a"}, Nulls: []bool{false, false, true, false, false, false, false}},
		{Floats: []float64{0, 1, 0, 1, 0, 1, 0}},
	})
	if err != nil {
		panic(err)
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// fuzzCorruptionSeeds is the seed set: the valid image plus every chaos
// corruption of it (truncations at section boundaries, block and footer
// bit flips, a zeroed CRC) — the checked-in corpus under
// testdata/fuzz/FuzzColstoreBlockCorruption mirrors these.
func fuzzCorruptionSeeds() [][]byte {
	raw := fuzzImage()
	seeds := [][]byte{raw}
	all, err := chaos.Corruptions(raw)
	if err != nil {
		panic(err)
	}
	for _, c := range all {
		seeds = append(seeds, chaos.Corrupt(raw, c))
	}
	return seeds
}

// FuzzColstoreBlockCorruption drives arbitrary images — seeded with every
// structural corruption the chaos writer produces — through both readers'
// full open-and-drain path. The safety property the format guarantees:
// no input panics, and any failure is a typed *FormatError or
// *ChecksumError; a corrupted image must never read cleanly when it was
// derived from a chaos corruption (that stronger half is pinned by
// TestChaosColstoreCorruptionMatrix — the fuzzer's random mutations may
// legitimately cancel out).
func FuzzColstoreBlockCorruption(f *testing.F) {
	for _, seed := range fuzzCorruptionSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.col")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Skip("cannot stage input")
		}
		check := func(label string, err error) {
			t.Helper()
			if err == nil {
				return
			}
			var fe *colstore.FormatError
			var ce *colstore.ChecksumError
			if !errors.As(err, &fe) && !errors.As(err, &ce) {
				t.Fatalf("%s: untyped error: %v", label, err)
			}
		}
		if r, err := colstore.Open(path); err != nil {
			check("stream-open", err)
		} else {
			_, err := frame.ReadAll(r)
			r.Close()
			check("stream-drain", err)
		}
		if r, err := colstore.OpenMmap(path); err != nil {
			check("mmap-open", err)
		} else {
			_, err := frame.ReadAll(r)
			r.Close()
			check("mmap-drain", err)
		}
	})
}

// TestRegenBlockCorruptionCorpus rewrites the checked-in seed corpus from
// the current enumeration. Run with COLSTORE_REGEN_CORPUS=1 after changing
// the chaos corruption writer or the sample schema.
func TestRegenBlockCorruptionCorpus(t *testing.T) {
	if os.Getenv("COLSTORE_REGEN_CORPUS") == "" {
		t.Skip("set COLSTORE_REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzColstoreBlockCorruption")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzColstoreBlockCorruption")
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzCorruptionSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%03d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
