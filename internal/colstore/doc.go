// Package colstore is the binary columnar chunk format behind the sharded
// out-of-core fit: a versioned on-disk layout of per-column typed blocks
// (raw little-endian float64, dictionary-encoded strings with null bitmaps)
// grouped into row groups, each block carrying row/NaN counts, min/max
// statistics and a CRC, with a footer holding the schema and a block index
// so readers seek straight to any block without scanning.
//
// A buffered Writer produces files; two readers consume them as
// frame.ChunkSource streams: Open decodes blocks through buffered reads
// (portable, unstable chunks), OpenMmap maps the file and serves float
// columns zero-copy as []float64 views (stable chunks, little-endian hosts).
// Both implement frame.SkippableSource — the footer's block statistics let
// the multi-pass fit engine skip row groups a pass provably does not need.
// See docs/storage.md for the byte-level layout and compatibility policy.
package colstore
