package colstore

import "sort"

// Section names returned by Layout.
const (
	SectionHeader  = "header"
	SectionBlock   = "block"
	SectionPad     = "pad"
	SectionFooter  = "footer"
	SectionTrailer = "trailer"
)

// Section is one contiguous structural region of a colstore image, as
// declared by its own footer: the fixed header, each row group's data
// blocks (with their alignment padding as separate pad sections), the
// footer, and the trailer. Layout exposes the geometry so tooling and the
// chaos corruption writer can target exact on-disk structures — a bit flip
// inside a block section must trip that block's CRC, one inside the footer
// the footer CRC, and a truncation at any boundary the trailer checks.
type Section struct {
	// Name is one of the Section* constants.
	Name string
	// Group and Column identify block and pad sections (the row-group
	// ordinal and schema column name); Group is -1 otherwise.
	Group  int
	Column string
	// Off and Len are the section's byte extent in the image. Pad bytes
	// (block alignment, and the trailer's reserved bytes) are not covered
	// by any checksum; every non-pad byte is.
	Off, Len int64
}

// Layout decodes the structural section list of a colstore image, in file
// order. The image must be a valid file — Layout validates it exactly as
// the readers do and returns their typed errors otherwise.
func Layout(raw []byte) ([]Section, error) {
	m, err := readMeta("(image)", bytesAt(raw), int64(len(raw)))
	if err != nil {
		return nil, err
	}
	size := int64(len(raw))
	secs := []Section{{Name: SectionHeader, Group: -1, Off: 0, Len: headerSize}}
	for gi := range m.groups {
		g := &m.groups[gi]
		for j := range g.blocks {
			blk := &g.blocks[j]
			secs = append(secs, Section{
				Name: SectionBlock, Group: gi, Column: m.schema[j].Name,
				Off: int64(blk.off), Len: int64(blk.length),
			})
			if pad := int64(pad8(blk.length) - blk.length); pad > 0 {
				secs = append(secs, Section{
					Name: SectionPad, Group: gi, Column: m.schema[j].Name,
					Off: int64(blk.off + blk.length), Len: pad,
				})
			}
		}
	}
	footerOff := int64(m.dataEnd)
	secs = append(secs,
		Section{Name: SectionFooter, Group: -1, Off: footerOff, Len: size - trailerSize - footerOff},
		Section{Name: SectionTrailer, Group: -1, Off: size - trailerSize, Len: trailerSize},
	)
	sort.SliceStable(secs, func(i, k int) bool { return secs[i].Off < secs[k].Off })
	return secs, nil
}
