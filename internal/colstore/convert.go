package colstore

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"repro/internal/frame"
)

// Table is a colstore file fully decoded in its typed, columnar form — the
// representation conversions and roundtrip tests work on. Slices are indexed
// by schema position: Floats[j] for Float64 columns, Strs[j]/Nulls[j] for
// String columns (the other representation is nil).
type Table struct {
	Schema Schema
	Rows   int
	Floats [][]float64
	Strs   [][]string
	Nulls  [][]bool
}

// ReadTable decodes a whole colstore file typed: float columns bit-exactly,
// string columns back to their dictionary values with nulls preserved.
func ReadTable(path string) (*Table, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	t := &Table{
		Schema: r.Schema(),
		Rows:   r.NumRows(),
		Floats: make([][]float64, len(r.meta.schema)),
		Strs:   make([][]string, len(r.meta.schema)),
		Nulls:  make([][]bool, len(r.meta.schema)),
	}
	buf := make([]float64, 0)
	for j, spec := range t.Schema {
		if spec.Type == Float64 {
			t.Floats[j] = make([]float64, 0, t.Rows)
		} else {
			t.Strs[j] = make([]string, 0, t.Rows)
			t.Nulls[j] = make([]bool, 0, t.Rows)
		}
		dict := r.Dict(j)
		for gi := range r.meta.groups {
			rows := int(r.meta.groups[gi].rows)
			if cap(buf) < rows {
				buf = make([]float64, rows)
			}
			buf = buf[:rows]
			if err := r.decodeBlock(gi, j, buf); err != nil {
				return nil, err
			}
			if spec.Type == Float64 {
				t.Floats[j] = append(t.Floats[j], buf...)
				continue
			}
			for _, code := range buf {
				if math.IsNaN(code) {
					t.Strs[j] = append(t.Strs[j], "")
					t.Nulls[j] = append(t.Nulls[j], true)
				} else {
					t.Strs[j] = append(t.Strs[j], dict[int(code)])
					t.Nulls[j] = append(t.Nulls[j], false)
				}
			}
		}
	}
	return t, nil
}

// ReadFrame drains a colstore file into an in-memory frame, string columns
// served as their dictionary codes (the same float representation the chunk
// readers stream).
func ReadFrame(path string) (*frame.Frame, error) {
	src, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	return frame.ReadAll(src)
}

// WriteCSV writes a decoded table as CSV with a header row: floats in Go's
// shortest round-trip form (NaN cells empty), strings verbatim (null cells
// empty) — the inverse of ConvertCSV's parse.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Schema))
	for j, c := range t.Schema {
		header[j] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("colstore: write csv header: %w", err)
	}
	rec := make([]string, len(t.Schema))
	for i := 0; i < t.Rows; i++ {
		for j, c := range t.Schema {
			if c.Type == Float64 {
				v := t.Floats[j][i]
				if math.IsNaN(v) {
					rec[j] = ""
				} else {
					rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
				}
				continue
			}
			if t.Nulls[j][i] {
				rec[j] = ""
			} else {
				rec[j] = t.Strs[j][i]
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("colstore: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to a CSV file; see WriteCSV.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("colstore: %w", err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Sync()
}

// SniffCSV scans a CSV file and infers the colstore schema ConvertCSV will
// write: columns where every non-empty cell parses as a float64 become
// Float64 (empty cells are NaN), anything else becomes a dictionary-encoded
// String column (empty cells are nulls). labelCol, which must be numeric,
// is marked as the label ("" for an unlabelled file).
func SniffCSV(path, labelCol string) (Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("colstore: read csv header: %w", err)
	}
	schema := make(Schema, len(header))
	labelIdx := -1
	for j, name := range header {
		schema[j] = ColumnSpec{Name: name, Type: Float64}
		if labelCol != "" && name == labelCol {
			schema[j].Label = true
			labelIdx = j
		}
	}
	if labelCol != "" && labelIdx < 0 {
		return nil, fmt.Errorf("colstore: label column %q not in csv header", labelCol)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("colstore: scan csv: %w", err)
		}
		for j, cell := range rec {
			if j >= len(schema) || cell == "" || schema[j].Type == String {
				continue
			}
			if _, perr := strconv.ParseFloat(cell, 64); perr != nil {
				if j == labelIdx {
					return nil, fmt.Errorf("colstore: label column %q has non-numeric cell %q", labelCol, cell)
				}
				schema[j].Type = String
			}
		}
	}
	return schema, schema.Validate()
}

// ConvertCSV converts a CSV file to colstore under the given (usually
// sniffed) schema, streaming groupRows rows at a time: float cells decode
// with strconv.ParseFloat (bit-exact for the shortest round-trip form CSV
// writers here emit, empty/unparsable cells NaN), string cells intern into
// the column dictionary (empty cells null).
func ConvertCSV(csvPath, colPath string, schema Schema, opt WriterOptions) (rows int, err error) {
	f, err := os.Open(csvPath)
	if err != nil {
		return 0, fmt.Errorf("colstore: %w", err)
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("colstore: read csv header: %w", err)
	}
	if len(header) != len(schema) {
		return 0, fmt.Errorf("colstore: csv has %d columns, schema has %d", len(header), len(schema))
	}
	for j, name := range header {
		if schema[j].Name != name {
			return 0, fmt.Errorf("colstore: csv column %d is %q, schema says %q", j, name, schema[j].Name)
		}
	}
	w, err := Create(colPath, schema, opt)
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := w.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}()
	batchRows := w.opt.GroupRows
	cols := make([]Col, len(schema))
	reset := func() {
		for j := range cols {
			if schema[j].Type == Float64 {
				if cols[j].Floats == nil {
					cols[j].Floats = make([]float64, 0, batchRows)
				}
				cols[j].Floats = cols[j].Floats[:0]
			} else {
				if cols[j].Strs == nil {
					cols[j].Strs = make([]string, 0, batchRows)
					cols[j].Nulls = make([]bool, 0, batchRows)
				}
				cols[j].Strs = cols[j].Strs[:0]
				cols[j].Nulls = cols[j].Nulls[:0]
			}
		}
	}
	reset()
	buffered := 0
	for {
		rec, rerr := cr.Read()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return rows, fmt.Errorf("colstore: scan csv: %w", rerr)
		}
		if len(rec) != len(schema) {
			return rows, fmt.Errorf("colstore: csv row %d has %d fields, want %d", rows+1, len(rec), len(schema))
		}
		for j, cell := range rec {
			if schema[j].Type == Float64 {
				v, perr := strconv.ParseFloat(cell, 64)
				if perr != nil {
					v = math.NaN()
				}
				cols[j].Floats = append(cols[j].Floats, v)
				continue
			}
			cols[j].Strs = append(cols[j].Strs, cell)
			cols[j].Nulls = append(cols[j].Nulls, cell == "")
		}
		rows++
		buffered++
		if buffered == batchRows {
			if err := w.Append(cols); err != nil {
				return rows, err
			}
			reset()
			buffered = 0
		}
	}
	if buffered > 0 {
		if err := w.Append(cols); err != nil {
			return rows, err
		}
	}
	return rows, nil
}

// Describe summarises a colstore file for tooling: schema, sizes, and the
// per-group block statistics behind pass skipping.
func Describe(path string, w io.Writer) error {
	r, err := Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	m := r.meta
	fmt.Fprintf(w, "colstore v%d: %s\n", FormatVersion, path)
	fmt.Fprintf(w, "rows: %d  row groups: %d (target %d rows/group)\n",
		m.rows, len(m.groups), m.groupRows)
	fmt.Fprintf(w, "columns (%d):\n", len(m.schema))
	for j, c := range m.schema {
		extra := ""
		if c.Type == String {
			extra = fmt.Sprintf("  dict=%d", len(m.dicts[j]))
		}
		if c.Label {
			extra += "  label"
		}
		fmt.Fprintf(w, "  %-3d %-24s %s%s\n", j, c.Name, c.Type, extra)
	}
	for gi := range m.groups {
		g := &m.groups[gi]
		var bytes uint64
		for j := range g.blocks {
			bytes += pad8(g.blocks[j].length)
		}
		fmt.Fprintf(w, "group %d: rows [%d, %d)  %d bytes\n",
			gi, g.start, g.start+uint64(g.rows), bytes)
	}
	return nil
}

// Equal reports whether two tables hold the same schema and bit-identical
// data (float columns compared by IEEE-754 bits, so NaNs compare equal).
func (t *Table) Equal(o *Table) bool {
	if t.Rows != o.Rows || len(t.Schema) != len(o.Schema) {
		return false
	}
	for j := range t.Schema {
		if t.Schema[j] != o.Schema[j] {
			return false
		}
		if t.Schema[j].Type == Float64 {
			for i := range t.Floats[j] {
				if math.Float64bits(t.Floats[j][i]) != math.Float64bits(o.Floats[j][i]) {
					return false
				}
			}
			continue
		}
		for i := range t.Strs[j] {
			if t.Nulls[j][i] != o.Nulls[j][i] {
				return false
			}
			if !t.Nulls[j][i] && t.Strs[j][i] != o.Strs[j][i] {
				return false
			}
		}
	}
	return true
}
