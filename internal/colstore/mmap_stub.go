//go:build !unix

package colstore

import "os"

// mmapFile reports mmap as unavailable on platforms without a shim; callers
// (OpenSource) fall back to the streaming Reader.
func mmapFile(*os.File, int64) ([]byte, error) { return nil, errMmapUnavailable }

func munmapFile([]byte) error { return nil }
