// Package operators implements the feature-generation operator framework of
// Section III: unary operators (mathematical transforms, normalisation,
// discretisation), binary operators (arithmetic, logical, GroupByThen*,
// ridge regression) and ternary operators (the conditional a?b:c). New
// operators register through the same interfaces, satisfying the paper's
// requirement that "new operators should be easily added".
//
// Operators are split into a stateless compute step and an optional Fit
// step that learns parameters from training data (bin edges, normalisation
// statistics, group aggregates):
//
//   - Operator is the unfitted form: a name, an arity, and Fit. Fitting
//     binds it to training columns and yields an Applier.
//
//   - Applier is the fitted form: it evaluates whole columns (Transform)
//     or a single row (TransformRow) using only the parameters captured at
//     fit time, so it is safe to apply to unseen data.
//
//   - Registry maps operator names to constructors. core.Engineer consults
//     it when expanding candidate features, and custom operators added to a
//     registry participate in generation like the built-ins.
//
//   - persist.go round-trips fitted Appliers through JSON (EncodeApplier /
//     DecodeApplier) so a saved core.Pipeline carries every learned
//     parameter. Custom appliers opt in via PersistableApplier.
//
// A fitted operator application is a Generated feature: it carries an
// interpretable formula string and can be evaluated row-by-row for
// real-time inference.
package operators
