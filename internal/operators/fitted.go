package operators

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/linear"
	"repro/internal/stats"
)

// ---------- fitted unary operators: normalisation ----------

// MinMax returns the Min-Max normalisation operator: (x-min)/(max-min)
// with parameters learned at Fit time.
func MinMax() Operator { return &minMaxOp{} }

type minMaxOp struct{}

func (*minMaxOp) Name() string { return "minmax" }
func (*minMaxOp) Arity() Arity { return Unary }
func (*minMaxOp) Fit(cols [][]float64) (Applier, error) {
	if len(cols) != 1 {
		return nil, errors.New("operators: minmax wants 1 input")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range cols[0] {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	return &minMaxApplier{lo: lo, span: hi - lo}, nil
}

type minMaxApplier struct{ lo, span float64 }

func (a *minMaxApplier) TransformRow(vals []float64) float64 {
	return (vals[0] - a.lo) / a.span
}
func (a *minMaxApplier) Transform(cols [][]float64) []float64 {
	return mapCol(cols[0], func(v float64) float64 { return (v - a.lo) / a.span })
}
func (a *minMaxApplier) Formula(names []string) string {
	return fmt.Sprintf("minmax(%s; lo=%.4g, span=%.4g)", names[0], a.lo, a.span)
}

// ZScore returns the Z-score standardisation operator with mean/std learned
// at Fit time.
func ZScore() Operator { return &zScoreOp{} }

type zScoreOp struct{}

func (*zScoreOp) Name() string { return "zscore" }
func (*zScoreOp) Arity() Arity { return Unary }
func (*zScoreOp) Fit(cols [][]float64) (Applier, error) {
	if len(cols) != 1 {
		return nil, errors.New("operators: zscore wants 1 input")
	}
	clean := make([]float64, 0, len(cols[0]))
	for _, v := range cols[0] {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	mean := stats.Mean(clean)
	std := stats.Std(clean)
	if std < 1e-12 {
		std = 1
	}
	return &zScoreApplier{mean: mean, std: std}, nil
}

type zScoreApplier struct{ mean, std float64 }

func (a *zScoreApplier) TransformRow(vals []float64) float64 { return (vals[0] - a.mean) / a.std }
func (a *zScoreApplier) Transform(cols [][]float64) []float64 {
	return mapCol(cols[0], func(v float64) float64 { return (v - a.mean) / a.std })
}
func (a *zScoreApplier) Formula(names []string) string {
	return fmt.Sprintf("zscore(%s; mean=%.4g, std=%.4g)", names[0], a.mean, a.std)
}

// ---------- fitted unary operators: discretisation ----------

// BinningKind selects a discretisation strategy.
type BinningKind int

// Discretisation strategies from Section III (ChiMerge, equidistant and
// equal-frequency binning).
const (
	EqualFrequency BinningKind = iota
	EqualWidth
	ChiMergeBins
)

// Discretize returns a discretisation operator with the given strategy and
// bin count. ChiMergeBins requires labels, supplied via SetLabels before
// Fit (the core engine wires this up); without labels it falls back to
// equal-frequency.
func Discretize(kind BinningKind, bins int) *DiscretizeOp {
	if bins < 2 {
		bins = 10
	}
	return &DiscretizeOp{kind: kind, bins: bins}
}

// DiscretizeOp is the fitted discretisation operator.
type DiscretizeOp struct {
	kind   BinningKind
	bins   int
	labels []float64
}

// SetLabels provides training labels for supervised (ChiMerge)
// discretisation.
func (o *DiscretizeOp) SetLabels(labels []float64) { o.labels = labels }

// Name implements Operator.
func (o *DiscretizeOp) Name() string {
	switch o.kind {
	case EqualWidth:
		return "bin_width"
	case ChiMergeBins:
		return "bin_chimerge"
	default:
		return "bin_freq"
	}
}

// Arity implements Operator.
func (o *DiscretizeOp) Arity() Arity { return Unary }

// Fit learns bin edges from the training column.
func (o *DiscretizeOp) Fit(cols [][]float64) (Applier, error) {
	if len(cols) != 1 {
		return nil, errors.New("operators: discretize wants 1 input")
	}
	var cuts []float64
	switch o.kind {
	case EqualWidth:
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range cols[0] {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > lo {
			w := (hi - lo) / float64(o.bins)
			for b := 1; b < o.bins; b++ {
				cuts = append(cuts, lo+float64(b)*w)
			}
		}
	case ChiMergeBins:
		if o.labels != nil && len(o.labels) == len(cols[0]) {
			cuts = stats.ChiMerge(cols[0], o.labels, o.bins, 3.84) // chi² 95%, 1 dof
			break
		}
		fallthrough
	default:
		cuts = stats.Quantiles(cols[0], o.bins)
	}
	sortFloats(cuts)
	return &binApplier{cuts: cuts, name: o.Name()}, nil
}

type binApplier struct {
	cuts []float64
	name string
}

func (a *binApplier) TransformRow(vals []float64) float64 {
	v := vals[0]
	if math.IsNaN(v) {
		return -1
	}
	return float64(sort.SearchFloat64s(a.cuts, v))
}
func (a *binApplier) Transform(cols [][]float64) []float64 {
	out := make([]float64, len(cols[0]))
	for i, v := range cols[0] {
		if math.IsNaN(v) {
			out[i] = -1
			continue
		}
		out[i] = float64(sort.SearchFloat64s(a.cuts, v))
	}
	return out
}
func (a *binApplier) Formula(names []string) string {
	return fmt.Sprintf("%s(%s; %d cuts)", a.name, names[0], len(a.cuts))
}

// ---------- fitted binary operators: GroupByThen* ----------

// GroupAgg selects the aggregate for GroupByThen operators.
type GroupAgg int

// Aggregates of the paper's GroupByThenMax/Min/Avg/Stdev/Count operators.
const (
	GroupMax GroupAgg = iota
	GroupMin
	GroupAvg
	GroupStdev
	GroupCount
)

var groupAggNames = map[GroupAgg]string{
	GroupMax:   "groupby_max",
	GroupMin:   "groupby_min",
	GroupAvg:   "groupby_avg",
	GroupStdev: "groupby_std",
	GroupCount: "groupby_count",
}

// GroupBy returns the GroupByThen<agg> operator: the first input is the key
// (quantised to at most maxGroups groups), the second the value; the output
// for a row is the aggregate of the value over all training rows sharing the
// row's key group. Unknown keys at inference map to the global aggregate.
func GroupBy(agg GroupAgg, maxGroups int) Operator {
	if maxGroups < 2 {
		maxGroups = 32
	}
	return &groupByOp{agg: agg, maxGroups: maxGroups}
}

type groupByOp struct {
	agg       GroupAgg
	maxGroups int
}

func (o *groupByOp) Name() string { return groupAggNames[o.agg] }
func (o *groupByOp) Arity() Arity { return Binary }

func (o *groupByOp) Fit(cols [][]float64) (Applier, error) {
	if len(cols) != 2 {
		return nil, errors.New("operators: groupby wants 2 inputs")
	}
	key, val := cols[0], cols[1]
	cuts := groupCuts(key, o.maxGroups)
	ng := len(cuts) + 1

	type acc struct {
		n          float64
		sum, sumSq float64
		min, max   float64
	}
	accs := make([]acc, ng)
	for g := range accs {
		accs[g].min = math.Inf(1)
		accs[g].max = math.Inf(-1)
	}
	var global acc
	global.min = math.Inf(1)
	global.max = math.Inf(-1)

	for i, k := range key {
		v := val[i]
		if math.IsNaN(k) || math.IsNaN(v) {
			continue
		}
		g := sort.SearchFloat64s(cuts, k)
		a := &accs[g]
		a.n++
		a.sum += v
		a.sumSq += v * v
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
		global.n++
		global.sum += v
		global.sumSq += v * v
		if v < global.min {
			global.min = v
		}
		if v > global.max {
			global.max = v
		}
	}

	finish := func(a acc) float64 {
		if a.n == 0 {
			return math.NaN()
		}
		switch o.agg {
		case GroupMax:
			return a.max
		case GroupMin:
			return a.min
		case GroupAvg:
			return a.sum / a.n
		case GroupStdev:
			mean := a.sum / a.n
			v := a.sumSq/a.n - mean*mean
			if v < 0 {
				v = 0
			}
			return math.Sqrt(v)
		default:
			return a.n
		}
	}
	table := make([]float64, ng)
	for g := range accs {
		table[g] = finish(accs[g])
	}
	fallback := finish(global)
	for g := range table {
		if math.IsNaN(table[g]) {
			table[g] = fallback
		}
	}
	return &groupByApplier{cuts: cuts, table: table, fallback: fallback, name: o.Name()}, nil
}

type groupByApplier struct {
	cuts     []float64
	table    []float64
	fallback float64
	name     string
}

func (a *groupByApplier) TransformRow(vals []float64) float64 {
	k := vals[0]
	if math.IsNaN(k) {
		return a.fallback
	}
	return a.table[sort.SearchFloat64s(a.cuts, k)]
}
func (a *groupByApplier) Transform(cols [][]float64) []float64 {
	out := make([]float64, len(cols[0]))
	for i, k := range cols[0] {
		if math.IsNaN(k) {
			out[i] = a.fallback
			continue
		}
		out[i] = a.table[sort.SearchFloat64s(a.cuts, k)]
	}
	return out
}
func (a *groupByApplier) Formula(names []string) string {
	return fmt.Sprintf("%s(key=%s, val=%s)", a.name, names[0], names[1])
}

// ---------- fitted binary operator: ridge regression ----------

// RidgeOp returns the ridge-regression binary operator of Section III
// (after AutoLearn): the generated feature is the residual of regressing
// the second input on the first, capturing the part of b not linearly
// explained by a.
func RidgeOp(alpha float64) Operator { return &ridgeOp{alpha: alpha} }

type ridgeOp struct{ alpha float64 }

func (*ridgeOp) Name() string { return "ridge" }
func (*ridgeOp) Arity() Arity { return Binary }
func (o *ridgeOp) Fit(cols [][]float64) (Applier, error) {
	if len(cols) != 2 {
		return nil, errors.New("operators: ridge wants 2 inputs")
	}
	model, err := linear.TrainRidge(cols[:1], cols[1], o.alpha)
	if err != nil {
		return nil, fmt.Errorf("operators: ridge fit: %w", err)
	}
	return &ridgeApplier{model: model}, nil
}

type ridgeApplier struct{ model *linear.Ridge }

// newRidgeApplier reconstructs a ridge applier from serialised weights.
func newRidgeApplier(w []float64, b float64) Applier {
	return &ridgeApplier{model: &linear.Ridge{W: w, B: b}}
}

func (a *ridgeApplier) TransformRow(vals []float64) float64 {
	return vals[1] - a.model.PredictRow(vals[:1])
}
func (a *ridgeApplier) Transform(cols [][]float64) []float64 {
	out := make([]float64, len(cols[0]))
	row := make([]float64, 1)
	for i := range out {
		row[0] = cols[0][i]
		out[i] = cols[1][i] - a.model.PredictRow(row)
	}
	return out
}
func (a *ridgeApplier) Formula(names []string) string {
	return fmt.Sprintf("ridge_resid(%s ~ %s; w=%.4g, b=%.4g)",
		names[1], names[0], a.model.W[0], a.model.B)
}

// groupCuts quantises a grouping key into at most maxGroups groups using
// midpoints between adjacent quantile values, so that a cut never lands on
// an actual key value (which would merge distinct groups under the (..,cut]
// convention).
func groupCuts(key []float64, maxGroups int) []float64 {
	clean := make([]float64, 0, len(key))
	for _, v := range key {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) < 2 {
		return nil
	}
	sort.Float64s(clean)
	cuts := make([]float64, 0, maxGroups-1)
	for k := 1; k < maxGroups; k++ {
		idx := k * len(clean) / maxGroups
		if idx <= 0 || idx >= len(clean) {
			continue
		}
		lo, hi := clean[idx-1], clean[idx]
		if hi <= lo {
			continue
		}
		c := (lo + hi) / 2
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	return cuts
}

func mapCol(col []float64, f func(float64) float64) []float64 {
	out := make([]float64, len(col))
	for i, v := range col {
		if math.IsNaN(v) {
			out[i] = math.NaN()
			continue
		}
		out[i] = f(v)
	}
	return out
}
