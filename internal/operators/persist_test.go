package operators

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// roundTrip encodes and decodes an applier, failing the test on error.
func roundTrip(t *testing.T, a Applier) Applier {
	t.Helper()
	kind, data, err := EncodeApplier(a)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeApplier(kind, data)
	if err != nil {
		t.Fatalf("decode %s: %v", kind, err)
	}
	return out
}

func TestStatelessRoundTripAllBuiltins(t *testing.T) {
	cols2 := [][]float64{{1, 2, 3}, {4, 5, 6}}
	cols1 := [][]float64{{1, 2, 3}}
	cols3 := [][]float64{{1, 0, 1}, {4, 5, 6}, {7, 8, 9}}
	reg := NewRegistry()
	for _, name := range reg.Names() {
		op, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		var cols [][]float64
		switch op.Arity() {
		case Unary:
			cols = cols1
		case Binary:
			cols = cols2
		case Ternary:
			cols = cols3
		default:
			continue
		}
		if d, ok := op.(*DiscretizeOp); ok {
			d.SetLabels([]float64{0, 1, 0})
		}
		a, err := op.Fit(cols)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b := roundTrip(t, a)
		row := make([]float64, int(op.Arity()))
		for i := range row {
			row[i] = cols[i][1]
		}
		got, want := b.TransformRow(row), a.TransformRow(row)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("%s: round-trip changed output %v -> %v", name, want, got)
		}
	}
}

func TestFittedRoundTripPreservesParametersProperty(t *testing.T) {
	// Property: for random training data, minmax/zscore/bin/groupby/ridge
	// appliers produce identical outputs after a serialisation round-trip,
	// on inputs outside the training range too.
	ops := []func() Operator{
		MinMax, ZScore,
		func() Operator { return Discretize(EqualFrequency, 6) },
		func() Operator { return GroupBy(GroupAvg, 8) },
		func() Operator { return RidgeOp(0.5) },
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
			b[i] = rng.NormFloat64() * 10
		}
		for _, ctor := range ops {
			op := ctor()
			var cols [][]float64
			if op.Arity() == Unary {
				cols = [][]float64{a}
			} else {
				cols = [][]float64{a, b}
			}
			ap, err := op.Fit(cols)
			if err != nil {
				return false
			}
			kind, data, err := EncodeApplier(ap)
			if err != nil {
				return false
			}
			ap2, err := DecodeApplier(kind, data)
			if err != nil {
				return false
			}
			for trial := 0; trial < 10; trial++ {
				row := []float64{rng.NormFloat64() * 30, rng.NormFloat64() * 30}
				row = row[:int(op.Arity())]
				x, y := ap.TransformRow(row), ap2.TransformRow(row)
				if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDecodeApplierUnknownKind(t *testing.T) {
	if _, err := DecodeApplier("martian", json.RawMessage(`{}`)); err == nil {
		t.Error("unknown kind decoded")
	}
	if _, err := DecodeApplier("stateless", json.RawMessage(`{"op":"martian"}`)); err == nil {
		t.Error("unknown stateless op decoded")
	}
	if _, err := DecodeApplier("minmax", json.RawMessage(`garbage`)); err == nil {
		t.Error("garbage payload decoded")
	}
}

// customApplier exercises the PersistableApplier extension point.
type customApplier struct{ Scale float64 }

func (c customApplier) TransformRow(v []float64) float64 { return v[0] * c.Scale }
func (c customApplier) Transform(cols [][]float64) []float64 {
	out := make([]float64, len(cols[0]))
	for i, v := range cols[0] {
		out[i] = v * c.Scale
	}
	return out
}
func (c customApplier) Formula(names []string) string {
	return fmt.Sprintf("%g*%s", c.Scale, names[0])
}
func (c customApplier) PersistKind() string { return "test_scale" }
func (c customApplier) PersistData() (json.RawMessage, error) {
	return json.Marshal(map[string]float64{"scale": c.Scale})
}

func TestCustomApplierCodec(t *testing.T) {
	RegisterApplierCodec("test_scale", func(data json.RawMessage) (Applier, error) {
		var p map[string]float64
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, err
		}
		return customApplier{Scale: p["scale"]}, nil
	})
	a := customApplier{Scale: 2.5}
	b := roundTrip(t, a)
	if got := b.TransformRow([]float64{4}); got != 10 {
		t.Errorf("custom round-trip = %v, want 10", got)
	}
	// Duplicate registration panics.
	defer func() {
		if recover() == nil {
			t.Error("duplicate codec registration did not panic")
		}
	}()
	RegisterApplierCodec("test_scale", nil)
}

func TestEncodeApplierRejectsUnknownType(t *testing.T) {
	type anonApplier struct{ Applier }
	if _, _, err := EncodeApplier(anonApplier{}); err == nil {
		t.Error("encoded a non-persistable applier")
	}
}
