package operators

import (
	"encoding/json"
	"fmt"
)

// Serialisation of fitted appliers, so a learned pipeline Ψ can be saved at
// training time and loaded in a serving process (the deployment story of
// Section IV-E3). Built-in appliers are covered by EncodeApplier /
// DecodeApplier; custom operators participate by implementing
// PersistableApplier and registering a decoder with RegisterApplierCodec.

// PersistableApplier is the optional interface custom appliers implement to
// support serialisation.
type PersistableApplier interface {
	Applier
	// PersistKind is the codec key registered via RegisterApplierCodec.
	PersistKind() string
	// PersistData encodes the applier's learned parameters.
	PersistData() (json.RawMessage, error)
}

// applierDecoder reconstructs an applier from its encoded parameters.
type applierDecoder func(data json.RawMessage) (Applier, error)

var applierCodecs = map[string]applierDecoder{}

// RegisterApplierCodec installs a decoder for a custom applier kind. It
// panics on duplicate registration (a programming error).
func RegisterApplierCodec(kind string, dec func(data json.RawMessage) (Applier, error)) {
	if _, dup := applierCodecs[kind]; dup {
		panic(fmt.Sprintf("operators: duplicate applier codec %q", kind))
	}
	applierCodecs[kind] = dec
}

// builtin payload types

type statelessPayload struct {
	Op string `json:"op"`
}

type minMaxPayload struct {
	Lo   float64 `json:"lo"`
	Span float64 `json:"span"`
}

type zScorePayload struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

type binPayload struct {
	Cuts []float64 `json:"cuts"`
	Name string    `json:"name"`
}

type groupByPayload struct {
	Cuts     []float64 `json:"cuts"`
	Table    []float64 `json:"table"`
	Fallback float64   `json:"fallback"`
	Name     string    `json:"name"`
}

type ridgePayload struct {
	W []float64 `json:"w"`
	B float64   `json:"b"`
}

// EncodeApplier serialises a fitted applier to (kind, data). All built-in
// appliers are supported; custom appliers must implement
// PersistableApplier.
func EncodeApplier(a Applier) (kind string, data json.RawMessage, err error) {
	switch ap := a.(type) {
	case *funcApplier:
		data, err = json.Marshal(statelessPayload{Op: ap.op.name})
		return "stateless", data, err
	case *minMaxApplier:
		data, err = json.Marshal(minMaxPayload{Lo: ap.lo, Span: ap.span})
		return "minmax", data, err
	case *zScoreApplier:
		data, err = json.Marshal(zScorePayload{Mean: ap.mean, Std: ap.std})
		return "zscore", data, err
	case *binApplier:
		data, err = json.Marshal(binPayload{Cuts: ap.cuts, Name: ap.name})
		return "bin", data, err
	case *groupByApplier:
		data, err = json.Marshal(groupByPayload{
			Cuts: ap.cuts, Table: ap.table, Fallback: ap.fallback, Name: ap.name,
		})
		return "groupby", data, err
	case *ridgeApplier:
		data, err = json.Marshal(ridgePayload{W: ap.model.W, B: ap.model.B})
		return "ridge", data, err
	case PersistableApplier:
		data, err = ap.PersistData()
		return ap.PersistKind(), data, err
	default:
		return "", nil, fmt.Errorf("operators: applier %T is not serialisable "+
			"(implement PersistableApplier)", a)
	}
}

// DecodeApplier reconstructs an applier from its serialised form.
func DecodeApplier(kind string, data json.RawMessage) (Applier, error) {
	switch kind {
	case "stateless":
		var p statelessPayload
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("operators: decode stateless: %w", err)
		}
		ctor, ok := builtins()[p.Op]
		if !ok {
			return nil, fmt.Errorf("operators: decode: unknown builtin op %q", p.Op)
		}
		op, ok := ctor().(*funcOp)
		if !ok {
			return nil, fmt.Errorf("operators: decode: op %q is not stateless", p.Op)
		}
		return &funcApplier{op: op}, nil
	case "minmax":
		var p minMaxPayload
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("operators: decode minmax: %w", err)
		}
		if p.Span == 0 {
			p.Span = 1
		}
		return &minMaxApplier{lo: p.Lo, span: p.Span}, nil
	case "zscore":
		var p zScorePayload
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("operators: decode zscore: %w", err)
		}
		if p.Std == 0 {
			p.Std = 1
		}
		return &zScoreApplier{mean: p.Mean, std: p.Std}, nil
	case "bin":
		var p binPayload
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("operators: decode bin: %w", err)
		}
		return &binApplier{cuts: p.Cuts, name: p.Name}, nil
	case "groupby":
		var p groupByPayload
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("operators: decode groupby: %w", err)
		}
		return &groupByApplier{cuts: p.Cuts, table: p.Table, fallback: p.Fallback, name: p.Name}, nil
	case "ridge":
		var p ridgePayload
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("operators: decode ridge: %w", err)
		}
		return newRidgeApplier(p.W, p.B), nil
	default:
		dec, ok := applierCodecs[kind]
		if !ok {
			return nil, fmt.Errorf("operators: decode: unknown applier kind %q", kind)
		}
		return dec(data)
	}
}
