package operators

// Arena is a free list of equal-length float64 column buffers. The SAFE
// generation loop evaluates thousands of candidate features per round and
// immediately discards most of them at the IV filter; recycling their
// columns through an arena turns that churn into O(live features) steady
// allocations instead of O(candidates).
//
// An Arena is not safe for concurrent use: the fit hot path owns one per
// engineer and gets/puts only from the coordinating goroutine.
type Arena struct {
	rows int
	free [][]float64
}

// NewArena creates an arena handing out buffers of the given row count.
func NewArena(rows int) *Arena {
	return &Arena{rows: rows}
}

// Rows returns the buffer length this arena serves.
func (a *Arena) Rows() int { return a.rows }

// Get returns a buffer of length Rows. Contents are unspecified — every
// element is about to be overwritten by a TransformColumn call.
func (a *Arena) Get() []float64 {
	if n := len(a.free); n > 0 {
		buf := a.free[n-1]
		a.free = a.free[:n-1]
		return buf
	}
	return make([]float64, a.rows)
}

// Put returns a buffer to the arena. Buffers of the wrong length (or nil)
// are dropped, so callers can Put unconditionally.
func (a *Arena) Put(buf []float64) {
	if len(buf) != a.rows {
		return
	}
	a.free = append(a.free, buf)
}
