package operators

import (
	"fmt"
	"math"
	"sort"
)

// Arity is the number of input features an operator consumes.
type Arity int

// Operator arities.
const (
	Unary   Arity = 1
	Binary  Arity = 2
	Ternary Arity = 3
)

// Operator generates one output column from Arity() input columns. Fit
// learns any parameters from training columns and returns an Applier bound
// to those parameters; the Applier is then usable on any data (train, test,
// or a single row at inference time).
type Operator interface {
	// Name is the operator's registry key, e.g. "add", "log", "groupby_avg".
	Name() string
	// Arity is the number of input columns.
	Arity() Arity
	// Fit binds the operator to training columns (len(cols) == Arity()) and
	// returns an Applier. Fit must not retain cols.
	Fit(cols [][]float64) (Applier, error)
}

// Applier is a fitted operator application.
type Applier interface {
	// Transform computes the output column for the given input columns
	// (len(cols) == arity, equal lengths).
	Transform(cols [][]float64) []float64
	// TransformRow computes the output for a single row of inputs.
	TransformRow(vals []float64) float64
	// Formula renders an interpretable expression given input names.
	Formula(names []string) string
}

// ColumnApplier is the optional allocation-free fast path of an Applier:
// TransformInto writes the output column into dst (len(dst) == rows)
// instead of allocating. The built-in arithmetic operators additionally
// dispatch to tight column loops here, skipping the per-row closure of the
// generic path.
type ColumnApplier interface {
	TransformInto(cols [][]float64, dst []float64)
}

// DataIndependent reports whether the operator's Fit ignores its input
// column values (it only validates arity), so an Applier fitted on any —
// even empty — columns behaves identically to one fitted on the training
// data. All stateless operators (arithmetic, logical, transforms) qualify;
// fitted operators (min-max, z-score, discretise, group-by, ridge) do not.
// The sharded out-of-core fit engine requires data-independent operators,
// since it fits appliers before any data has streamed.
func DataIndependent(op Operator) bool {
	_, ok := op.(*funcOp)
	return ok
}

// ApplierOp returns the registry name of the stateless operator behind a
// data-independent applier, or ok=false when the applier carries fitted
// state. A true result means the applier can be reconstructed anywhere by
// resolving the name in a registry and fitting on empty columns — which is
// how the distributed fit ships feature definitions to workers by name
// instead of serialising closures.
func ApplierOp(ap Applier) (name string, ok bool) {
	if fa, isFunc := ap.(*funcApplier); isFunc {
		return fa.op.name, true
	}
	return "", false
}

// TransformColumn applies ap into dst, using the ColumnApplier fast path
// when available and falling back to Transform+copy otherwise. It returns
// dst.
func TransformColumn(ap Applier, cols [][]float64, dst []float64) []float64 {
	if ca, ok := ap.(ColumnApplier); ok {
		ca.TransformInto(cols, dst)
		return dst
	}
	copy(dst, ap.Transform(cols))
	return dst
}

// ---------- stateless helpers ----------

// funcOp is a stateless operator defined by a row function, an optional
// vectorised column function (the hot-path variant generation uses), and a
// formula template.
type funcOp struct {
	name    string
	arity   Arity
	f       func(vals []float64) float64
	vec     func(cols [][]float64, dst []float64)
	formula func(names []string) string
}

func (o *funcOp) Name() string { return o.name }
func (o *funcOp) Arity() Arity { return o.arity }
func (o *funcOp) Fit(cols [][]float64) (Applier, error) {
	if len(cols) != int(o.arity) {
		return nil, fmt.Errorf("operators: %s wants %d inputs, got %d", o.name, o.arity, len(cols))
	}
	return &funcApplier{op: o}, nil
}

type funcApplier struct{ op *funcOp }

func (a *funcApplier) TransformRow(vals []float64) float64 { return a.op.f(vals) }
func (a *funcApplier) Formula(names []string) string       { return a.op.formula(names) }
func (a *funcApplier) Transform(cols [][]float64) []float64 {
	out := make([]float64, len(cols[0]))
	a.TransformInto(cols, out)
	return out
}

// TransformInto implements ColumnApplier: the vectorised column function
// when the operator has one, otherwise a generic row loop that still avoids
// allocating the output.
func (a *funcApplier) TransformInto(cols [][]float64, dst []float64) {
	if a.op.vec != nil {
		a.op.vec(cols, dst)
		return
	}
	k := len(cols)
	var stack [4]float64
	vals := stack[:]
	if k > len(stack) {
		vals = make([]float64, k)
	}
	for i := range dst {
		for j := 0; j < k; j++ {
			vals[j] = cols[j][i]
		}
		dst[i] = a.op.f(vals[:k])
	}
}

func unary(name string, f func(float64) float64, tmpl string) Operator {
	return &funcOp{
		name:  name,
		arity: Unary,
		f:     func(v []float64) float64 { return f(v[0]) },
		vec: func(cols [][]float64, dst []float64) {
			x := cols[0][:len(dst)]
			for i := range dst {
				dst[i] = f(x[i])
			}
		},
		formula: func(names []string) string {
			return fmt.Sprintf(tmpl, names[0])
		},
	}
}

func binary(name string, f func(a, b float64) float64, tmpl string) Operator {
	return &funcOp{
		name:  name,
		arity: Binary,
		f:     func(v []float64) float64 { return f(v[0], v[1]) },
		vec: func(cols [][]float64, dst []float64) {
			x := cols[0][:len(dst)]
			y := cols[1][:len(dst)]
			for i := range dst {
				dst[i] = f(x[i], y[i])
			}
		},
		formula: func(names []string) string {
			return fmt.Sprintf(tmpl, names[0], names[1])
		},
	}
}

// binaryVec is binary with a hand-specialised column loop: the arithmetic
// operators of the paper's experimental set run hot enough that even the
// two-argument closure call per row shows up in profiles.
func binaryVec(name string, f func(a, b float64) float64, vec func(x, y, dst []float64), tmpl string) Operator {
	op := binary(name, f, tmpl).(*funcOp)
	op.vec = func(cols [][]float64, dst []float64) {
		vec(cols[0][:len(dst)], cols[1][:len(dst)], dst)
	}
	return op
}

// ---------- arithmetic binary operators (the paper's experimental set) ----------

// Add returns the + operator.
func Add() Operator {
	return binaryVec("add", func(a, b float64) float64 { return a + b },
		func(x, y, dst []float64) {
			for i := range dst {
				dst[i] = x[i] + y[i]
			}
		}, "(%s + %s)")
}

// Sub returns the - operator. Subtraction is not commutative; the paper
// treats such operators as distinct per argument order, which feature
// generation honours by trying both orders.
func Sub() Operator {
	return binaryVec("sub", func(a, b float64) float64 { return a - b },
		func(x, y, dst []float64) {
			for i := range dst {
				dst[i] = x[i] - y[i]
			}
		}, "(%s - %s)")
}

// Mul returns the × operator.
func Mul() Operator {
	return binaryVec("mul", func(a, b float64) float64 { return a * b },
		func(x, y, dst []float64) {
			for i := range dst {
				dst[i] = x[i] * y[i]
			}
		}, "(%s * %s)")
}

// Div returns the ÷ operator; division by zero yields NaN (missing).
func Div() Operator {
	return binaryVec("div", func(a, b float64) float64 {
		if b == 0 {
			return math.NaN()
		}
		return a / b
	}, func(x, y, dst []float64) {
		for i := range dst {
			if y[i] == 0 {
				dst[i] = math.NaN()
			} else {
				dst[i] = x[i] / y[i]
			}
		}
	}, "(%s / %s)")
}

// ---------- unary mathematical transforms ----------

// Log returns log(1+|x|) with sign preserved: a robust variant of the
// paper's log transform that is defined on all reals.
func Log() Operator {
	return unary("log", func(x float64) float64 {
		if math.IsNaN(x) {
			return math.NaN()
		}
		return math.Copysign(math.Log1p(math.Abs(x)), x)
	}, "log(%s)")
}

// Sqrt returns sqrt(|x|) with sign preserved.
func Sqrt() Operator {
	return unary("sqrt", func(x float64) float64 {
		return math.Copysign(math.Sqrt(math.Abs(x)), x)
	}, "sqrt(%s)")
}

// Square returns x².
func Square() Operator {
	return unary("square", func(x float64) float64 { return x * x }, "(%s)^2")
}

// Sigmoid returns 1/(1+e^-x).
func Sigmoid() Operator {
	return unary("sigmoid", func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }, "sigmoid(%s)")
}

// Tanh returns tanh(x).
func Tanh() Operator { return unary("tanh", math.Tanh, "tanh(%s)") }

// Round returns x rounded to the nearest integer.
func Round() Operator { return unary("round", math.Round, "round(%s)") }

// Abs returns |x|.
func Abs() Operator { return unary("abs", math.Abs, "abs(%s)") }

// Reciprocal returns 1/x (NaN at 0).
func Reciprocal() Operator {
	return unary("reciprocal", func(x float64) float64 {
		if x == 0 {
			return math.NaN()
		}
		return 1 / x
	}, "(1 / %s)")
}

// ---------- logical binary operators ----------

// Boolean inputs follow the >0.5 convention used for labels.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
func f2b(x float64) bool { return x > 0.5 }

// And returns the conjunction operator.
func And() Operator {
	return binary("and", func(a, b float64) float64 { return b2f(f2b(a) && f2b(b)) }, "(%s AND %s)")
}

// Or returns the disjunction operator.
func Or() Operator {
	return binary("or", func(a, b float64) float64 { return b2f(f2b(a) || f2b(b)) }, "(%s OR %s)")
}

// Xor returns the exclusive-or operator.
func Xor() Operator {
	return binary("xor", func(a, b float64) float64 { return b2f(f2b(a) != f2b(b)) }, "(%s XOR %s)")
}

// Nand returns the alternative-denial operator.
func Nand() Operator {
	return binary("nand", func(a, b float64) float64 { return b2f(!(f2b(a) && f2b(b))) }, "(%s NAND %s)")
}

// Nor returns the joint-denial operator.
func Nor() Operator {
	return binary("nor", func(a, b float64) float64 { return b2f(!(f2b(a) || f2b(b))) }, "(%s NOR %s)")
}

// Implies returns the material-conditional operator a→b.
func Implies() Operator {
	return binary("implies", func(a, b float64) float64 { return b2f(!f2b(a) || f2b(b)) }, "(%s -> %s)")
}

// Iff returns the biconditional operator a↔b.
func Iff() Operator {
	return binary("iff", func(a, b float64) float64 { return b2f(f2b(a) == f2b(b)) }, "(%s <-> %s)")
}

// ---------- ternary conditional ----------

// Conditional returns the a?b:c operator of Section III.
func Conditional() Operator {
	return &funcOp{
		name:  "cond",
		arity: Ternary,
		f: func(v []float64) float64 {
			if f2b(v[0]) {
				return v[1]
			}
			return v[2]
		},
		formula: func(names []string) string {
			return fmt.Sprintf("(%s ? %s : %s)", names[0], names[1], names[2])
		},
	}
}

// ---------- n-ary row aggregates ----------

// RowMax returns the MAX operator over k inputs.
func RowMax(k int) Operator { return rowAgg("max", k, math.Inf(-1), math.Max) }

// RowMin returns the MIN operator over k inputs.
func RowMin(k int) Operator { return rowAgg("min", k, math.Inf(1), math.Min) }

// RowMean returns the MEAN operator over k inputs.
func RowMean(k int) Operator {
	return &funcOp{
		name:  fmt.Sprintf("mean%d", k),
		arity: Arity(k),
		f: func(v []float64) float64 {
			s := 0.0
			for _, x := range v {
				s += x
			}
			return s / float64(len(v))
		},
		formula: func(names []string) string { return "mean(" + join(names) + ")" },
	}
}

func rowAgg(name string, k int, init float64, f func(a, b float64) float64) Operator {
	return &funcOp{
		name:  fmt.Sprintf("%s%d", name, k),
		arity: Arity(k),
		f: func(v []float64) float64 {
			acc := init
			for _, x := range v {
				acc = f(acc, x)
			}
			return acc
		},
		formula: func(names []string) string { return name + "(" + join(names) + ")" },
	}
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// sortFloats is a tiny local alias so fitted operators can normalise learned
// parameters deterministically.
func sortFloats(xs []float64) { sort.Float64s(xs) }
