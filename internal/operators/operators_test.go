package operators

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func fitAndRow(t *testing.T, op Operator, cols [][]float64, row []float64) float64 {
	t.Helper()
	a, err := op.Fit(cols)
	if err != nil {
		t.Fatalf("%s.Fit: %v", op.Name(), err)
	}
	return a.TransformRow(row)
}

func TestArithmetic(t *testing.T) {
	cols := [][]float64{{1, 2}, {3, 4}}
	cases := []struct {
		op   Operator
		want float64
	}{
		{Add(), 4},
		{Sub(), -2},
		{Mul(), 3},
		{Div(), 1.0 / 3},
	}
	for _, c := range cases {
		if got := fitAndRow(t, c.op, cols, []float64{1, 3}); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(1,3) = %v, want %v", c.op.Name(), got, c.want)
		}
	}
}

func TestDivByZeroIsNaN(t *testing.T) {
	if got := fitAndRow(t, Div(), [][]float64{{1}, {0}}, []float64{1, 0}); !math.IsNaN(got) {
		t.Errorf("1/0 = %v, want NaN", got)
	}
}

func TestUnaryTransforms(t *testing.T) {
	col := [][]float64{{-4, 0, 4}}
	cases := []struct {
		op   Operator
		in   float64
		want float64
	}{
		{Log(), math.E - 1, 1},
		{Log(), -(math.E - 1), -1}, // sign-preserving
		{Sqrt(), 4, 2},
		{Sqrt(), -4, -2},
		{Square(), -3, 9},
		{Sigmoid(), 0, 0.5},
		{Tanh(), 0, 0},
		{Round(), 2.6, 3},
		{Abs(), -5, 5},
		{Reciprocal(), 4, 0.25},
	}
	for _, c := range cases {
		if got := fitAndRow(t, c.op, col, []float64{c.in}); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(%v) = %v, want %v", c.op.Name(), c.in, got, c.want)
		}
	}
	if got := fitAndRow(t, Reciprocal(), col, []float64{0}); !math.IsNaN(got) {
		t.Errorf("1/0 = %v, want NaN", got)
	}
}

func TestLogicalOperators(t *testing.T) {
	cols := [][]float64{{0, 1}, {0, 1}}
	type row struct{ a, b, want float64 }
	cases := map[string][]row{
		"and":     {{1, 1, 1}, {1, 0, 0}, {0, 0, 0}},
		"or":      {{1, 0, 1}, {0, 0, 0}},
		"xor":     {{1, 0, 1}, {1, 1, 0}},
		"nand":    {{1, 1, 0}, {0, 0, 1}},
		"nor":     {{0, 0, 1}, {1, 0, 0}},
		"implies": {{1, 0, 0}, {0, 0, 1}, {1, 1, 1}},
		"iff":     {{1, 1, 1}, {1, 0, 0}, {0, 0, 1}},
	}
	reg := NewRegistry()
	for name, rows := range cases {
		op, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if got := fitAndRow(t, op, cols, []float64{r.a, r.b}); got != r.want {
				t.Errorf("%s(%v,%v) = %v, want %v", name, r.a, r.b, got, r.want)
			}
		}
	}
}

func TestConditional(t *testing.T) {
	cols := [][]float64{{0, 1}, {10, 10}, {20, 20}}
	op := Conditional()
	if got := fitAndRow(t, op, cols, []float64{1, 10, 20}); got != 10 {
		t.Errorf("cond(1,10,20) = %v, want 10", got)
	}
	if got := fitAndRow(t, op, cols, []float64{0, 10, 20}); got != 20 {
		t.Errorf("cond(0,10,20) = %v, want 20", got)
	}
}

func TestRowAggregates(t *testing.T) {
	cols := [][]float64{{1}, {5}, {3}}
	if got := fitAndRow(t, RowMax(3), cols, []float64{1, 5, 3}); got != 5 {
		t.Errorf("max = %v, want 5", got)
	}
	if got := fitAndRow(t, RowMin(3), cols, []float64{1, 5, 3}); got != 1 {
		t.Errorf("min = %v, want 1", got)
	}
	if got := fitAndRow(t, RowMean(3), cols, []float64{1, 5, 3}); got != 3 {
		t.Errorf("mean = %v, want 3", got)
	}
}

func TestMinMaxNormalisation(t *testing.T) {
	train := [][]float64{{0, 5, 10}}
	op := MinMax()
	a, err := op.Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.TransformRow([]float64{5}); got != 0.5 {
		t.Errorf("minmax(5) = %v, want 0.5", got)
	}
	// Out-of-range values extrapolate using *training* parameters.
	if got := a.TransformRow([]float64{20}); got != 2 {
		t.Errorf("minmax(20) = %v, want 2", got)
	}
	// Constant column does not divide by zero.
	konst, err := MinMax().Fit([][]float64{{3, 3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := konst.TransformRow([]float64{3}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("minmax on constant column = %v", got)
	}
}

func TestZScore(t *testing.T) {
	train := [][]float64{{2, 4, 6}}
	a, err := ZScore().Fit(train)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.TransformRow([]float64{4}); math.Abs(got) > 1e-12 {
		t.Errorf("zscore(mean) = %v, want 0", got)
	}
}

func TestDiscretizeEqualFrequency(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	op := Discretize(EqualFrequency, 4)
	a, err := op.Fit([][]float64{vals})
	if err != nil {
		t.Fatal(err)
	}
	out := a.Transform([][]float64{vals})
	counts := map[float64]int{}
	for _, b := range out {
		counts[b]++
	}
	if len(counts) != 4 {
		t.Fatalf("got %d bins, want 4: %v", len(counts), counts)
	}
	if got := a.TransformRow([]float64{math.NaN()}); got != -1 {
		t.Errorf("NaN bin = %v, want -1", got)
	}
}

func TestDiscretizeChiMergeUsesLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 1000
	vals := make([]float64, n)
	labels := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()*2 - 1
		if vals[i] > 0 {
			labels[i] = 1
		}
	}
	op := Discretize(ChiMergeBins, 4)
	op.SetLabels(labels)
	a, err := op.Fit([][]float64{vals})
	if err != nil {
		t.Fatal(err)
	}
	// Bin of -0.5 must differ from bin of +0.5.
	lo := a.TransformRow([]float64{-0.5})
	hi := a.TransformRow([]float64{0.5})
	if lo == hi {
		t.Errorf("ChiMerge failed to separate the label boundary (bins %v and %v)", lo, hi)
	}
}

func TestGroupByAggregates(t *testing.T) {
	// Key has two clear groups (0s and 10s); value differs per group.
	key := []float64{0, 0, 0, 10, 10, 10}
	val := []float64{1, 2, 3, 7, 8, 9}
	cases := []struct {
		agg  GroupAgg
		want float64 // aggregate of the high group
	}{
		{GroupMax, 9},
		{GroupMin, 7},
		{GroupAvg, 8},
		{GroupCount, 3},
	}
	for _, c := range cases {
		op := GroupBy(c.agg, 2)
		a, err := op.Fit([][]float64{key, val})
		if err != nil {
			t.Fatal(err)
		}
		if got := a.TransformRow([]float64{10, 0}); got != c.want {
			t.Errorf("%v(group 10) = %v, want %v", groupAggNames[c.agg], got, c.want)
		}
	}
	// Stdev of {7,8,9} is sqrt(2/3).
	a, err := GroupBy(GroupStdev, 2).Fit([][]float64{key, val})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.TransformRow([]float64{10, 0}); math.Abs(got-math.Sqrt(2.0/3)) > 1e-9 {
		t.Errorf("groupby_std = %v, want sqrt(2/3)", got)
	}
}

func TestGroupByNaNKeyFallsBack(t *testing.T) {
	key := []float64{0, 0, 10, 10}
	val := []float64{1, 3, 5, 7}
	a, err := GroupBy(GroupAvg, 2).Fit([][]float64{key, val})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.TransformRow([]float64{math.NaN(), 0}); got != 4 {
		t.Errorf("NaN-key fallback = %v, want global mean 4", got)
	}
}

func TestRidgeOperatorResidual(t *testing.T) {
	// b = 2a exactly: residual must be ~0 everywhere.
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = 2 * a[i]
	}
	op := RidgeOp(1e-9)
	ap, err := op.Fit([][]float64{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := ap.TransformRow([]float64{10, 20}); math.Abs(got) > 1e-3 {
		t.Errorf("residual of exact linear relation = %v, want ~0", got)
	}
	if got := ap.TransformRow([]float64{10, 25}); math.Abs(got-5) > 1e-3 {
		t.Errorf("residual of off-line point = %v, want ~5", got)
	}
}

func TestFormulaInterpretability(t *testing.T) {
	a, err := Mul().Fit([][]float64{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	f := a.Formula([]string{"income", "risk"})
	if !strings.Contains(f, "income") || !strings.Contains(f, "risk") || !strings.Contains(f, "*") {
		t.Errorf("formula %q not interpretable", f)
	}
}

func TestTransformMatchesTransformRowProperty(t *testing.T) {
	ops := []Operator{Add(), Sub(), Mul(), Div()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		for _, op := range ops {
			ap, err := op.Fit([][]float64{a, b})
			if err != nil {
				return false
			}
			batch := ap.Transform([][]float64{a, b})
			for i := range a {
				got := ap.TransformRow([]float64{a[i], b[i]})
				if math.IsNaN(got) && math.IsNaN(batch[i]) {
					continue
				}
				if got != batch[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitArityChecks(t *testing.T) {
	if _, err := Add().Fit([][]float64{{1}}); err == nil {
		t.Error("binary op accepted 1 input")
	}
	if _, err := Log().Fit([][]float64{{1}, {2}}); err == nil {
		t.Error("unary op accepted 2 inputs")
	}
	if _, err := MinMax().Fit([][]float64{{1}, {2}}); err == nil {
		t.Error("minmax accepted 2 inputs")
	}
	if _, err := GroupBy(GroupAvg, 4).Fit([][]float64{{1}}); err == nil {
		t.Error("groupby accepted 1 input")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Get("add"); err != nil {
		t.Errorf("builtin add missing: %v", err)
	}
	if _, err := reg.Get("nope"); err == nil {
		t.Error("unknown operator resolved")
	}
	names := reg.Names()
	if len(names) < 20 {
		t.Errorf("registry has %d operators, want the full catalogue (>= 20)", len(names))
	}
	// Custom registration (the "domain-specific operator" extension point).
	reg.Register("double", func() Operator {
		return &funcOp{
			name:  "double",
			arity: Unary,
			f:     func(v []float64) float64 { return 2 * v[0] },
			formula: func(ns []string) string {
				return "2*" + ns[0]
			},
		}
	})
	op, err := reg.Get("double")
	if err != nil {
		t.Fatal(err)
	}
	if got := fitAndRow(t, op, [][]float64{{1}}, []float64{21}); got != 42 {
		t.Errorf("custom op = %v, want 42", got)
	}
	ops, err := reg.GetAll([]string{"add", "double"})
	if err != nil || len(ops) != 2 {
		t.Errorf("GetAll = %v, %v", ops, err)
	}
	if _, err := reg.GetAll([]string{"add", "zzz"}); err == nil {
		t.Error("GetAll resolved an unknown operator")
	}
}

func TestCommutativity(t *testing.T) {
	if !Commutative("add") || !Commutative("mul") {
		t.Error("add/mul should be commutative")
	}
	if Commutative("sub") || Commutative("div") || Commutative("implies") {
		t.Error("sub/div/implies should not be commutative")
	}
}

func TestDefaultExperimentOperators(t *testing.T) {
	ops := DefaultExperimentOperators()
	want := []string{"add", "sub", "mul", "div"}
	if len(ops) != 4 {
		t.Fatalf("got %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("ops[%d] = %q, want %q", i, ops[i], want[i])
		}
	}
}
