package operators

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps operator names to constructors, so configurations can name
// operators ("add,sub,mul,div") and applications can plug in domain-specific
// operators (Section III: lag operators, genetic operators, ...).
type Registry struct {
	mu  sync.RWMutex
	ops map[string]func() Operator
}

// NewRegistry returns a registry pre-populated with the paper's full
// operator catalogue.
func NewRegistry() *Registry {
	r := &Registry{ops: make(map[string]func() Operator)}
	for name, ctor := range builtins() {
		r.ops[name] = ctor
	}
	return r
}

func builtins() map[string]func() Operator {
	return map[string]func() Operator{
		// Binary arithmetic (the experimental set of Section V).
		"add": Add, "sub": Sub, "mul": Mul, "div": Div,
		// Unary transforms.
		"log": Log, "sqrt": Sqrt, "square": Square, "sigmoid": Sigmoid,
		"tanh": Tanh, "round": Round, "abs": Abs, "reciprocal": Reciprocal,
		// Normalisation.
		"minmax": MinMax, "zscore": ZScore,
		// Discretisation.
		"bin_freq":     func() Operator { return Discretize(EqualFrequency, 10) },
		"bin_width":    func() Operator { return Discretize(EqualWidth, 10) },
		"bin_chimerge": func() Operator { return Discretize(ChiMergeBins, 10) },
		// Logical.
		"and": And, "or": Or, "xor": Xor, "nand": Nand, "nor": Nor,
		"implies": Implies, "iff": Iff,
		// GroupByThen*.
		"groupby_max":   func() Operator { return GroupBy(GroupMax, 32) },
		"groupby_min":   func() Operator { return GroupBy(GroupMin, 32) },
		"groupby_avg":   func() Operator { return GroupBy(GroupAvg, 32) },
		"groupby_std":   func() Operator { return GroupBy(GroupStdev, 32) },
		"groupby_count": func() Operator { return GroupBy(GroupCount, 32) },
		// Regression operator.
		"ridge": func() Operator { return RidgeOp(1.0) },
		// Ternary.
		"cond": Conditional,
		// n-ary row aggregates (Section III: MAX, MIN, MEAN "divided into
		// different categories when they accept a different number of
		// inputs").
		"max2":  func() Operator { return RowMax(2) },
		"min2":  func() Operator { return RowMin(2) },
		"mean2": func() Operator { return RowMean(2) },
		"max3":  func() Operator { return RowMax(3) },
		"min3":  func() Operator { return RowMin(3) },
		"mean3": func() Operator { return RowMean(3) },
	}
}

// Register adds (or replaces) a named operator constructor.
func (r *Registry) Register(name string, ctor func() Operator) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops[name] = ctor
}

// Get instantiates the named operator.
func (r *Registry) Get(name string) (Operator, error) {
	r.mu.RLock()
	ctor, ok := r.ops[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("operators: unknown operator %q", name)
	}
	return ctor(), nil
}

// GetAll instantiates a list of named operators.
func (r *Registry) GetAll(names []string) ([]Operator, error) {
	out := make([]Operator, 0, len(names))
	for _, name := range names {
		op, err := r.Get(name)
		if err != nil {
			return nil, err
		}
		out = append(out, op)
	}
	return out, nil
}

// Names lists the registered operator names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.ops))
	for name := range r.ops {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Commutative reports whether a binary operator's output is independent of
// argument order. Non-commutative operators (e.g. "÷") are tried in both
// orders during generation, which the paper models as distinct operators.
func Commutative(name string) bool {
	switch name {
	case "add", "mul", "and", "or", "xor", "nand", "nor", "iff":
		return true
	default:
		return false
	}
}

// DefaultExperimentOperators is the operator set used throughout Section V:
// "for simplicity and versatility, we only select four basic binary
// operators +, −, × and ÷".
func DefaultExperimentOperators() []string { return []string{"add", "sub", "mul", "div"} }
