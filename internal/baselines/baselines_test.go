package baselines

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/frame"
)

func testDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Spec{
		Name: "bl-test", Train: 2500, Test: 800, Dim: 10,
		Informative: 2, Interactions: 3, SignalScale: 2.5, Seed: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func checkPipeline(t *testing.T, p *core.Pipeline, train, test *frame.Frame) {
	t.Helper()
	if p.NumFeatures() == 0 {
		t.Fatal("pipeline emits no features")
	}
	out, err := p.Transform(test)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != test.NumRows() {
		t.Fatalf("transform rows = %d, want %d", out.NumRows(), test.NumRows())
	}
	if out.NumCols() != p.NumFeatures() {
		t.Fatalf("transform cols = %d, want %d", out.NumCols(), p.NumFeatures())
	}
	// Row-wise evaluation agrees with batch.
	row := make([]float64, test.NumCols())
	test.Row(0, row)
	vals, err := p.TransformRow(row)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range vals {
		want := out.Columns[j].Values[0]
		if v != want && !(v != v && want != want) {
			t.Fatalf("feature %q: row %v != batch %v", out.Columns[j].Name, v, want)
		}
	}
}

func TestRand(t *testing.T) {
	ds := testDataset(t)
	p, err := Rand(ds.Train, RandConfig{Selection: core.DefaultSelectionConfig(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkPipeline(t, p, ds.Train, ds.Test)
	if p.NumFeatures() > 2*ds.Train.NumCols() {
		t.Errorf("RAND emits %d features, budget %d", p.NumFeatures(), 2*ds.Train.NumCols())
	}
}

func TestRandBudget(t *testing.T) {
	ds := testDataset(t)
	sel := core.DefaultSelectionConfig()
	sel.MaxFeatures = 6
	p, err := Rand(ds.Train, RandConfig{Selection: sel, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumFeatures() > 6 {
		t.Errorf("RAND emits %d features, budget 6", p.NumFeatures())
	}
}

func TestRandNeedsTwoFeatures(t *testing.T) {
	one := frame.NewWithShape(10, 1)
	if _, err := Rand(one, RandConfig{}); err == nil {
		t.Error("accepted single-feature frame")
	}
}

func TestImp(t *testing.T) {
	ds := testDataset(t)
	p, err := Imp(ds.Train, ImpConfig{Selection: core.DefaultSelectionConfig(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkPipeline(t, p, ds.Train, ds.Test)
}

func TestImpDeterminism(t *testing.T) {
	ds := testDataset(t)
	run := func() []string {
		p, err := Imp(ds.Train, ImpConfig{Selection: core.DefaultSelectionConfig(), Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return p.Output
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("widths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestTFC(t *testing.T) {
	ds := testDataset(t)
	p, err := TFC(ds.Train, TFCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	checkPipeline(t, p, ds.Train, ds.Test)
	if p.NumFeatures() > 2*ds.Train.NumCols() {
		t.Errorf("TFC emits %d features, budget %d", p.NumFeatures(), 2*ds.Train.NumCols())
	}
	// TFC must actually construct features, not just pass originals.
	constructed := 0
	for _, name := range p.Output {
		if strings.ContainsAny(name, "+-*/") {
			constructed++
		}
	}
	if constructed == 0 {
		t.Error("TFC selected no constructed features")
	}
}

func TestTFCMaxPairsGuard(t *testing.T) {
	ds := testDataset(t)
	p, err := TFC(ds.Train, TFCConfig{MaxPairs: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkPipeline(t, p, ds.Train, ds.Test)
}

func TestFCTree(t *testing.T) {
	ds := testDataset(t)
	p, err := FCTree(ds.Train, FCTreeConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkPipeline(t, p, ds.Train, ds.Test)
	if p.NumFeatures() > 2*ds.Train.NumCols() {
		t.Errorf("FCTree emits %d features, budget %d", p.NumFeatures(), 2*ds.Train.NumCols())
	}
}

func TestFCTreeConstructsFeatures(t *testing.T) {
	ds := testDataset(t)
	p, err := FCTree(ds.Train, FCTreeConfig{Ne: 20, MaxDepth: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) == 0 {
		t.Error("FCTree constructed no features")
	}
}

func TestBaselinesShareSelectionSemantics(t *testing.T) {
	// RAND and IMP with a MaxFeatures budget must respect it, because they
	// delegate to core.Select.
	ds := testDataset(t)
	sel := core.DefaultSelectionConfig()
	sel.MaxFeatures = 4
	pr, err := Rand(ds.Train, RandConfig{Selection: sel, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := Imp(ds.Train, ImpConfig{Selection: sel, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if pr.NumFeatures() > 4 || pi.NumFeatures() > 4 {
		t.Errorf("budgets violated: rand=%d imp=%d", pr.NumFeatures(), pi.NumFeatures())
	}
}

func TestRandomPairsDistinct(t *testing.T) {
	ds := testDataset(t)
	_ = ds
	// Direct unit check of the pair sampler.
	rngSeed := int64(11)
	pairs := randomPairs(6, 10, newTestRng(rngSeed), func(int) bool { return true })
	seen := map[combo]bool{}
	for _, p := range pairs {
		if p.a >= p.b {
			t.Fatalf("pair %v not ordered", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
	// 6 features -> at most 15 distinct pairs; asking for 100 returns <= 15.
	many := randomPairs(6, 100, newTestRng(rngSeed), func(int) bool { return true })
	if len(many) > 15 {
		t.Errorf("returned %d pairs from a 15-pair pool", len(many))
	}
}

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
