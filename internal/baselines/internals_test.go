package baselines

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/operators"
)

func TestIGHeapKeepsBestK(t *testing.T) {
	h := make(igHeap, 0, 4)
	push := func(s scored) {
		if len(h) < 3 {
			heap.Push(&h, s)
			return
		}
		if s.ig > h[0].ig {
			h[0] = s
			heap.Fix(&h, 0)
		}
	}
	for _, ig := range []float64{0.5, 0.1, 0.9, 0.3, 0.7, 0.2} {
		push(scored{ig: ig})
	}
	if len(h) != 3 {
		t.Fatalf("heap size %d, want 3", len(h))
	}
	got := map[float64]bool{}
	for _, s := range h {
		got[s.ig] = true
	}
	for _, want := range []float64{0.9, 0.7, 0.5} {
		if !got[want] {
			t.Errorf("top-3 missing %v: %v", want, got)
		}
	}
}

func TestEvalPairSanitises(t *testing.T) {
	div, err := operators.NewRegistry().Get("div")
	if err != nil {
		t.Fatal(err)
	}
	a := []float64{1, 2, 3}
	b := []float64{0, 1, 0} // divisions by zero
	buf := make([]float64, 3)
	evalPair(div, a, b, buf)
	for i, v := range buf {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("buf[%d] = %v, want finite", i, v)
		}
	}
	if buf[1] != 2 {
		t.Errorf("2/1 = %v, want 2", buf[1])
	}
}

func TestBestSplitIG(t *testing.T) {
	// Labels flip at value 5.
	col := []float64{1, 2, 3, 4, 6, 7, 8, 9}
	labels := []float64{0, 0, 0, 0, 1, 1, 1, 1}
	rows := []int{0, 1, 2, 3, 4, 5, 6, 7}
	gain, thr, ok := bestSplitIG(col, labels, rows)
	if !ok {
		t.Fatal("no split found")
	}
	if thr != 4 {
		t.Errorf("threshold = %v, want 4", thr)
	}
	if math.Abs(gain-math.Ln2) > 1e-9 {
		t.Errorf("gain = %v, want ln 2", gain)
	}
}

func TestBestSplitIGDegenerate(t *testing.T) {
	// Pure labels: no split.
	if _, _, ok := bestSplitIG([]float64{1, 2, 3}, []float64{1, 1, 1}, []int{0, 1, 2}); ok {
		t.Error("found a split on pure labels")
	}
	// Constant feature: no split.
	if _, _, ok := bestSplitIG([]float64{5, 5, 5, 5}, []float64{0, 1, 0, 1}, []int{0, 1, 2, 3}); ok {
		t.Error("found a split on a constant feature")
	}
	// All NaN: no split.
	nan := math.NaN()
	if _, _, ok := bestSplitIG([]float64{nan, nan}, []float64{0, 1}, []int{0, 1}); ok {
		t.Error("found a split on all-NaN feature")
	}
}

func TestPure(t *testing.T) {
	if !pure([]float64{1, 1, 1}, []int{0, 1, 2}) {
		t.Error("pure labels reported impure")
	}
	if pure([]float64{1, 0, 1}, []int{0, 1, 2}) {
		t.Error("mixed labels reported pure")
	}
	if !pure(nil, nil) {
		t.Error("empty rows should be pure")
	}
}

func TestRandomPairsEligibilityFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	// Only even-indexed features eligible.
	pairs := randomPairs(10, 8, rng, func(j int) bool { return j%2 == 0 })
	for _, p := range pairs {
		if p.a%2 != 0 || p.b%2 != 0 {
			t.Fatalf("ineligible feature in pair %v", p)
		}
	}
	// Fewer than 2 eligible features: no pairs.
	if got := randomPairs(10, 5, rng, func(j int) bool { return j == 3 }); got != nil {
		t.Errorf("pairs from a single-feature pool: %v", got)
	}
}

func TestSanitizeCol(t *testing.T) {
	col := []float64{1, math.NaN(), math.Inf(1), -math.Inf(1), 1e301, 2}
	sanitizeCol(col)
	for i, v := range col {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300 {
			t.Errorf("col[%d] = %v after sanitise", i, v)
		}
	}
	if col[0] != 1 || col[5] != 2 {
		t.Error("sanitise damaged finite values")
	}
}

func TestPrunePipelineKeepsDependencies(t *testing.T) {
	ds := testDataset(t)
	p, err := Rand(ds.Train, RandConfig{Selection: coreSelection(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// After pruning (already applied), every node output must be reachable
	// from Output or feed another kept node.
	needed := map[string]bool{}
	for _, o := range p.Output {
		needed[o] = true
	}
	for i := len(p.Nodes) - 1; i >= 0; i-- {
		if !needed[p.Nodes[i].Name] {
			t.Errorf("node %q survives pruning but is unused", p.Nodes[i].Name)
		}
		for _, dep := range p.Nodes[i].Inputs {
			needed[dep] = true
		}
	}
}

func coreSelection() core.SelectionConfig { return core.DefaultSelectionConfig() }
