package baselines

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/operators"
	"repro/internal/stats"
)

// TFCConfig configures the TFC baseline (Piramuthu & Sikora 2009).
type TFCConfig struct {
	Operators []string
	Registry  *operators.Registry
	// MaxFeatures is the size of the new feature pool kept after selection
	// (the experiments use 2M). <=0 resolves to 2 × #originals.
	MaxFeatures int
	// Bins is the equal-width bin count for the information-gain score.
	Bins int
	// MaxPairs caps the exhaustive pair enumeration as a memory/time guard
	// for very wide datasets; <=0 means no cap (the paper's true exhaustive
	// behaviour, and the reason Table V shows TFC's runtime exploding).
	MaxPairs int
	Seed     int64
}

// scored is a candidate in the top-K selection heap.
type scored struct {
	ig   float64
	orig int // original column index, or -1
	a, b int // pair indices for generated candidates
	op   int // operator index within ops
	rev  bool
}

// igHeap is a min-heap on information gain, keeping the best K candidates.
type igHeap []scored

func (h igHeap) Len() int            { return len(h) }
func (h igHeap) Less(i, j int) bool  { return h[i].ig < h[j].ig }
func (h igHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *igHeap) Push(x interface{}) { *h = append(*h, x.(scored)) }
func (h *igHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// TFC generates every legal binary-operator feature over the feature pool
// (one iteration of the paper's iterative framework), scores all candidates
// — originals included — by information gain, and keeps the best
// MaxFeatures as the new pool. Candidate columns are scored streaming (one
// column materialised at a time) so memory stays O(N) despite the O(M²)
// candidate count; time is the quantity that explodes, which is exactly the
// behaviour Table V documents.
func TFC(train *frame.Frame, cfg TFCConfig) (*core.Pipeline, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = operators.NewRegistry()
	}
	opNames := cfg.Operators
	if len(opNames) == 0 {
		opNames = operators.DefaultExperimentOperators()
	}
	ops, err := reg.GetAll(opNames)
	if err != nil {
		return nil, err
	}
	m := train.NumCols()
	if m < 2 {
		return nil, fmt.Errorf("baselines: tfc: need >= 2 features, got %d", m)
	}
	budget := cfg.MaxFeatures
	if budget <= 0 {
		budget = 2 * m
	}
	bins := cfg.Bins
	if bins <= 1 {
		bins = 10
	}
	labels := train.Label
	n := train.NumRows()

	cols := make([][]float64, m)
	for j := range cols {
		cols[j] = train.Columns[j].Values
	}

	h := make(igHeap, 0, budget+1)
	push := func(s scored) {
		if len(h) < budget {
			heap.Push(&h, s)
			return
		}
		if s.ig > h[0].ig {
			h[0] = s
			heap.Fix(&h, 0)
		}
	}

	ig := func(col []float64) float64 {
		assign, nb := stats.EqualWidthBins(col, bins)
		return stats.InformationGain(labels, assign, nb)
	}

	// Originals compete too.
	for j := 0; j < m; j++ {
		push(scored{ig: ig(cols[j]), orig: j, a: -1, b: -1})
	}

	// Exhaustive pair sweep, one candidate column at a time.
	buf := make([]float64, n)
	pairCount := 0
	for a := 0; a < m; a++ {
	pairLoop:
		for b := a + 1; b < m; b++ {
			if cfg.MaxPairs > 0 && pairCount >= cfg.MaxPairs {
				break pairLoop
			}
			pairCount++
			for oi, op := range ops {
				if op.Arity() != operators.Binary {
					continue
				}
				evalPair(op, cols[a], cols[b], buf)
				push(scored{ig: ig(buf), orig: -1, a: a, b: b, op: oi})
				if !operators.Commutative(op.Name()) {
					evalPair(op, cols[b], cols[a], buf)
					push(scored{ig: ig(buf), orig: -1, a: b, b: a, op: oi, rev: true})
				}
			}
		}
		if cfg.MaxPairs > 0 && pairCount >= cfg.MaxPairs {
			break
		}
	}

	// Materialise the winners, best first for deterministic output order.
	winners := make([]scored, len(h))
	copy(winners, h)
	sort.Slice(winners, func(i, j int) bool { return winners[i].ig > winners[j].ig })

	p := &core.Pipeline{OriginalNames: train.Names()}
	seen := make(map[string]bool)
	names := train.Names()
	for _, w := range winners {
		if w.orig >= 0 {
			name := names[w.orig]
			if !seen[name] {
				seen[name] = true
				p.Output = append(p.Output, name)
			}
			continue
		}
		op := ops[w.op]
		in := [][]float64{cols[w.a], cols[w.b]}
		nm := []string{names[w.a], names[w.b]}
		applier, ferr := op.Fit(in)
		if ferr != nil {
			return nil, fmt.Errorf("baselines: tfc fit %s: %w", op.Name(), ferr)
		}
		formula := applier.Formula(nm)
		if seen[formula] {
			continue
		}
		seen[formula] = true
		p.Nodes = append(p.Nodes, core.FeatureNode{Name: formula, Inputs: nm, Applier: applier})
		p.Output = append(p.Output, formula)
	}
	return p, nil
}

// evalPair computes op(a,b) into buf without allocating (stateless binary
// operators only — TFC's experimental set is {+,−,×,÷}).
func evalPair(op operators.Operator, a, b []float64, buf []float64) {
	applier, err := op.Fit([][]float64{a, b})
	if err != nil {
		for i := range buf {
			buf[i] = 0
		}
		return
	}
	vals := make([]float64, 2)
	for i := range buf {
		vals[0], vals[1] = a[i], b[i]
		v := applier.TransformRow(vals)
		if v != v || v > 1e300 || v < -1e300 {
			v = 0
		}
		buf[i] = v
	}
}
