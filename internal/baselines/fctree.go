package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/operators"
	"repro/internal/stats"
)

// FCTreeConfig configures the FCTree baseline (Fan et al. 2010).
type FCTreeConfig struct {
	Operators []string
	Registry  *operators.Registry
	// Ne is the number of constructed candidate features injected at every
	// tree node (the n_e of the paper's complexity analysis).
	Ne int
	// MaxDepth bounds the guiding decision tree.
	MaxDepth int
	// MinNode is the minimum rows to attempt a split.
	MinNode int
	// MaxFeatures caps the final output width (<=0: 2 × #originals).
	MaxFeatures int
	Seed        int64
}

// fcCandidate is a constructed feature competing at tree nodes.
type fcCandidate struct {
	name    string
	inputs  []string
	applier operators.Applier
	values  []float64
}

// FCTree trains a decision tree in which, at every internal node, Ne
// randomly constructed features (binary operators over random original
// pairs) compete with the original features for the split by information
// gain; constructed features chosen at internal nodes are retained. The
// final representation is the originals plus the chosen constructions,
// reduced to MaxFeatures by information gain — matching the paper's account
// of FCTree ("features chosen at internal decision nodes are used to obtain
// the constructed features", reduced to 2M in Section V-A1).
func FCTree(train *frame.Frame, cfg FCTreeConfig) (*core.Pipeline, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = operators.NewRegistry()
	}
	opNames := cfg.Operators
	if len(opNames) == 0 {
		opNames = operators.DefaultExperimentOperators()
	}
	ops, err := reg.GetAll(opNames)
	if err != nil {
		return nil, err
	}
	binOps := ops[:0:0]
	for _, op := range ops {
		if op.Arity() == operators.Binary {
			binOps = append(binOps, op)
		}
	}
	if len(binOps) == 0 {
		return nil, fmt.Errorf("baselines: fctree: no binary operators in %v", opNames)
	}
	m := train.NumCols()
	if m < 2 {
		return nil, fmt.Errorf("baselines: fctree: need >= 2 features, got %d", m)
	}
	if cfg.Ne <= 0 {
		cfg.Ne = 10
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MinNode <= 0 {
		cfg.MinNode = 20
	}
	budget := cfg.MaxFeatures
	if budget <= 0 {
		budget = 2 * m
	}

	labels := train.Label
	n := train.NumRows()
	names := train.Names()
	cols := make([][]float64, m)
	for j := range cols {
		cols[j] = train.Columns[j].Values
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	chosen := make(map[string]*fcCandidate)

	// Recursive tree build; we only need the side effect (chosen features).
	var build func(rows []int, depth int)
	build = func(rows []int, depth int) {
		if depth >= cfg.MaxDepth || len(rows) < cfg.MinNode || pure(labels, rows) {
			return
		}
		// Candidates: all originals plus Ne fresh constructions.
		type cand struct {
			col []float64
			gen *fcCandidate
		}
		cands := make([]cand, 0, m+cfg.Ne)
		for j := 0; j < m; j++ {
			cands = append(cands, cand{col: cols[j]})
		}
		for k := 0; k < cfg.Ne; k++ {
			a := rng.Intn(m)
			b := rng.Intn(m)
			for b == a {
				b = rng.Intn(m)
			}
			op := binOps[rng.Intn(len(binOps))]
			in := [][]float64{cols[a], cols[b]}
			nm := []string{names[a], names[b]}
			applier, ferr := op.Fit(in)
			if ferr != nil {
				continue
			}
			formula := applier.Formula(nm)
			if g, ok := chosen[formula]; ok {
				cands = append(cands, cand{col: g.values, gen: g})
				continue
			}
			vals := applier.Transform(in)
			sanitizeCol(vals)
			cands = append(cands, cand{col: vals, gen: &fcCandidate{
				name: formula, inputs: nm, applier: applier, values: vals,
			}})
		}

		bestGain := 1e-12
		bestIdx := -1
		bestThr := 0.0
		for ci := range cands {
			gain, thr, ok := bestSplitIG(cands[ci].col, labels, rows)
			if ok && gain > bestGain {
				bestGain = gain
				bestIdx = ci
				bestThr = thr
			}
		}
		if bestIdx < 0 {
			return
		}
		if g := cands[bestIdx].gen; g != nil {
			chosen[g.name] = g
		}
		col := cands[bestIdx].col
		var left, right []int
		for _, r := range rows {
			v := col[r]
			if math.IsNaN(v) || v <= bestThr {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			return
		}
		build(left, depth+1)
		build(right, depth+1)
	}

	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	build(rows, 0)

	// Final reduction: originals + chosen constructions ranked by IG.
	type rankedFeature struct {
		name string
		ig   float64
		gen  *fcCandidate
	}
	var ranked []rankedFeature
	igOf := func(col []float64) float64 {
		assign, nb := stats.EqualWidthBins(col, 10)
		return stats.InformationGain(labels, assign, nb)
	}
	for j := 0; j < m; j++ {
		ranked = append(ranked, rankedFeature{name: names[j], ig: igOf(cols[j])})
	}
	for _, g := range chosen {
		ranked = append(ranked, rankedFeature{name: g.name, ig: igOf(g.values), gen: g})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].ig != ranked[j].ig {
			return ranked[i].ig > ranked[j].ig
		}
		return ranked[i].name < ranked[j].name
	})
	if len(ranked) > budget {
		ranked = ranked[:budget]
	}

	p := &core.Pipeline{OriginalNames: names}
	for _, rf := range ranked {
		if rf.gen != nil {
			p.Nodes = append(p.Nodes, core.FeatureNode{
				Name: rf.gen.name, Inputs: rf.gen.inputs, Applier: rf.gen.applier,
			})
		}
		p.Output = append(p.Output, rf.name)
	}
	return p, nil
}

// pure reports whether all labels in rows agree.
func pure(labels []float64, rows []int) bool {
	if len(rows) == 0 {
		return true
	}
	first := labels[rows[0]] > 0.5
	for _, r := range rows[1:] {
		if (labels[r] > 0.5) != first {
			return false
		}
	}
	return true
}

// bestSplitIG finds the binary split of col over rows maximising information
// gain, via an exact sorted scan.
func bestSplitIG(col []float64, labels []float64, rows []int) (gain, threshold float64, ok bool) {
	type pair struct{ v, y float64 }
	buf := make([]pair, 0, len(rows))
	pos := 0
	for _, r := range rows {
		v := col[r]
		if math.IsNaN(v) {
			continue
		}
		buf = append(buf, pair{v, labels[r]})
		if labels[r] > 0.5 {
			pos++
		}
	}
	k := len(buf)
	if k < 2 || pos == 0 || pos == k {
		return 0, 0, false
	}
	sort.Slice(buf, func(a, b int) bool { return buf[a].v < buf[b].v })

	hTot := entropy2(pos, k-pos)
	bestGain := 0.0
	bestThr := 0.0
	found := false
	lp := 0
	for i := 0; i+1 < k; i++ {
		if buf[i].y > 0.5 {
			lp++
		}
		if buf[i].v == buf[i+1].v {
			continue
		}
		lt := i + 1
		rp := pos - lp
		rt := k - lt
		g := hTot - float64(lt)/float64(k)*entropy2(lp, lt-lp) - float64(rt)/float64(k)*entropy2(rp, rt-rp)
		if g > bestGain {
			bestGain = g
			bestThr = buf[i].v
			found = true
		}
	}
	return bestGain, bestThr, found
}

func entropy2(pos, neg int) float64 {
	n := pos + neg
	if n == 0 || pos == 0 || neg == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	q := 1 - p
	return -p*math.Log(p) - q*math.Log(q)
}
