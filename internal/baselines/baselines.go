// Package baselines implements the comparison algorithms of Section V-A1:
//
//   - RAND: random feature combinations over all original features,
//     followed by SAFE's selection pipeline.
//   - IMP (SAFE-Important): random combinations restricted to the split
//     features of an XGBoost model, followed by SAFE's selection pipeline.
//   - TFC: exhaustive generation of all legal binary-operator features and
//     selection of the best by information gain (Piramuthu & Sikora 2009),
//     one iteration.
//   - FCTree: decision-tree-guided feature construction (Fan et al. 2010) —
//     candidate constructed features compete with original features at each
//     tree node; features chosen at internal nodes are kept.
//
// Every baseline returns a core.Pipeline so the experiment harness evaluates
// all methods identically.
package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/gbdt"
	"repro/internal/operators"
)

// combo is an (a, b) feature index pair.
type combo struct{ a, b int }

// generated is one fitted candidate feature.
type generated struct {
	name    string
	inputs  []string
	applier operators.Applier
	values  []float64
}

// generatePairs applies every operator to every pair, fitting on train
// columns; non-commutative operators are applied in both orders. Duplicate
// formulas are skipped.
func generatePairs(pairs []combo, cols [][]float64, names []string, ops []operators.Operator) ([]*generated, error) {
	seen := make(map[string]bool)
	var out []*generated
	apply := func(op operators.Operator, a, b int) error {
		in := [][]float64{cols[a], cols[b]}
		nm := []string{names[a], names[b]}
		applier, err := op.Fit(in)
		if err != nil {
			return fmt.Errorf("baselines: %s: %w", op.Name(), err)
		}
		formula := applier.Formula(nm)
		if seen[formula] {
			return nil
		}
		seen[formula] = true
		vals := applier.Transform(in)
		sanitizeCol(vals)
		out = append(out, &generated{name: formula, inputs: nm, applier: applier, values: vals})
		return nil
	}
	for _, p := range pairs {
		for _, op := range ops {
			if op.Arity() != operators.Binary {
				continue
			}
			if err := apply(op, p.a, p.b); err != nil {
				return nil, err
			}
			if !operators.Commutative(op.Name()) {
				if err := apply(op, p.b, p.a); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// assemblePipeline builds a core.Pipeline from original columns plus
// selected candidates. candidates[i] corresponds to candidate column index
// m+i (originals first).
func assemblePipeline(train *frame.Frame, gens []*generated, selected []int) *core.Pipeline {
	m := train.NumCols()
	p := &core.Pipeline{OriginalNames: train.Names()}
	for _, g := range gens {
		p.Nodes = append(p.Nodes, core.FeatureNode{Name: g.name, Inputs: g.inputs, Applier: g.applier})
	}
	for _, idx := range selected {
		if idx < m {
			p.Output = append(p.Output, train.Columns[idx].Name)
		} else {
			p.Output = append(p.Output, gens[idx-m].name)
		}
	}
	return p
}

// selectAndAssemble runs SAFE's selection over originals+generated and
// assembles the pipeline.
func selectAndAssemble(train *frame.Frame, gens []*generated, sel core.SelectionConfig) (*core.Pipeline, error) {
	m := train.NumCols()
	cand := make([][]float64, 0, m+len(gens))
	for j := 0; j < m; j++ {
		cand = append(cand, train.Columns[j].Values)
	}
	for _, g := range gens {
		cand = append(cand, g.values)
	}
	selected, err := core.Select(cand, train.Label, sel)
	if err != nil {
		return nil, err
	}
	pl := assemblePipeline(train, gens, selected)
	prunePipeline(pl)
	return pl, nil
}

// RandConfig configures the RAND baseline.
type RandConfig struct {
	// NumCombos is γ: how many random pairs to draw.
	NumCombos int
	// Operators and Registry mirror core.Config.
	Operators []string
	Registry  *operators.Registry
	// Selection is SAFE's selection pipeline configuration.
	Selection core.SelectionConfig
	Seed      int64
}

// Rand generates features from NumCombos random pairs of original features
// and runs SAFE's selection.
func Rand(train *frame.Frame, cfg RandConfig) (*core.Pipeline, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = operators.NewRegistry()
	}
	opNames := cfg.Operators
	if len(opNames) == 0 {
		opNames = operators.DefaultExperimentOperators()
	}
	ops, err := reg.GetAll(opNames)
	if err != nil {
		return nil, err
	}
	m := train.NumCols()
	if m < 2 {
		return nil, fmt.Errorf("baselines: rand: need >= 2 features, got %d", m)
	}
	gamma := cfg.NumCombos
	if gamma <= 0 {
		gamma = 2 * m
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pairs := randomPairs(m, gamma, rng, func(int) bool { return true })

	cols := make([][]float64, m)
	for j := range cols {
		cols[j] = train.Columns[j].Values
	}
	gens, err := generatePairs(pairs, cols, train.Names(), ops)
	if err != nil {
		return nil, err
	}
	return selectAndAssemble(train, gens, cfg.Selection)
}

// ImpConfig configures the IMP (SAFE-Important) baseline.
type ImpConfig struct {
	NumCombos int
	Operators []string
	Registry  *operators.Registry
	Selection core.SelectionConfig
	// Miner configures the XGBoost whose split features restrict the
	// sampling pool.
	Miner gbdt.Config
	Seed  int64
}

// Imp generates features from random pairs drawn only among the split
// features of an XGBoost model trained on the originals, then runs SAFE's
// selection. The IMP-vs-RAND gap isolates the value of the "split features
// matter" half of SAFE's assumptions; SAFE-vs-IMP isolates the value of
// same-path mining and gain-ratio sorting.
func Imp(train *frame.Frame, cfg ImpConfig) (*core.Pipeline, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = operators.NewRegistry()
	}
	opNames := cfg.Operators
	if len(opNames) == 0 {
		opNames = operators.DefaultExperimentOperators()
	}
	ops, err := reg.GetAll(opNames)
	if err != nil {
		return nil, err
	}
	m := train.NumCols()
	if m < 2 {
		return nil, fmt.Errorf("baselines: imp: need >= 2 features, got %d", m)
	}
	gamma := cfg.NumCombos
	if gamma <= 0 {
		gamma = 2 * m
	}
	miner := cfg.Miner
	if miner.NumTrees == 0 {
		miner = gbdt.DefaultConfig()
		miner.NumTrees = 20
		miner.MaxDepth = 4
	}
	miner.Seed = cfg.Seed

	cols := make([][]float64, m)
	for j := range cols {
		cols[j] = train.Columns[j].Values
	}
	model, err := gbdt.Train(cols, train.Label, train.Names(), miner)
	if err != nil {
		return nil, fmt.Errorf("baselines: imp miner: %w", err)
	}
	split := model.SplitFeatures()
	inSplit := make(map[int]bool, len(split))
	for _, f := range split {
		inSplit[f] = true
	}
	if len(split) < 2 {
		// Degenerate model: fall back to all features.
		for j := 0; j < m; j++ {
			inSplit[j] = true
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	pairs := randomPairs(m, gamma, rng, func(j int) bool { return inSplit[j] })

	gens, err := generatePairs(pairs, cols, train.Names(), ops)
	if err != nil {
		return nil, err
	}
	return selectAndAssemble(train, gens, cfg.Selection)
}

// randomPairs draws count distinct unordered pairs among features passing
// the filter. It gives up (returns fewer) when the eligible pool cannot
// supply enough distinct pairs.
func randomPairs(m, count int, rng *rand.Rand, eligible func(int) bool) []combo {
	pool := make([]int, 0, m)
	for j := 0; j < m; j++ {
		if eligible(j) {
			pool = append(pool, j)
		}
	}
	if len(pool) < 2 {
		return nil
	}
	maxPairs := len(pool) * (len(pool) - 1) / 2
	if count > maxPairs {
		count = maxPairs
	}
	seen := make(map[combo]bool, count)
	out := make([]combo, 0, count)
	for attempts := 0; len(out) < count && attempts < 50*count+100; attempts++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		c := combo{a, b}
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}

func sanitizeCol(col []float64) {
	for i, v := range col {
		if v != v || v > 1e300 || v < -1e300 {
			col[i] = 0
		}
	}
}

// prunePipeline drops unused nodes (mirrors core.Pipeline pruning, which is
// unexported; duplicated here to keep the baseline pipelines lean).
func prunePipeline(p *core.Pipeline) {
	needed := make(map[string]bool, len(p.Output))
	for _, n := range p.Output {
		needed[n] = true
	}
	keep := make([]core.FeatureNode, 0, len(p.Nodes))
	for i := len(p.Nodes) - 1; i >= 0; i-- {
		if needed[p.Nodes[i].Name] {
			keep = append(keep, p.Nodes[i])
			for _, dep := range p.Nodes[i].Inputs {
				needed[dep] = true
			}
		}
	}
	// Reverse back to evaluation order.
	for i, j := 0, len(keep)-1; i < j; i, j = i+1, j-1 {
		keep[i], keep[j] = keep[j], keep[i]
	}
	p.Nodes = keep
}
