package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			seen := make([]int32, n)
			p.For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForChunksDisjointCover(t *testing.T) {
	p := New(4)
	const n = 1003
	seen := make([]int32, n)
	p.ForChunks(n, 10, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

// TestDeterministicAcrossWorkerCounts verifies the pool's core contract:
// index-addressed outputs are identical for any worker count.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 517
	want := make([]float64, n)
	New(1).For(n, func(i int) { want[i] = float64(i) * 1.5 })
	for _, workers := range []int{2, 3, 7} {
		got := make([]float64, n)
		New(workers).For(n, func(i int) { got[i] = float64(i) * 1.5 })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%v want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestNestedForDoesNotDeadlock exercises a For issued from inside a worker:
// the pool must fall back to caller execution rather than waiting on itself.
func TestNestedForDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	p.For(8, func(i int) {
		p.For(8, func(j int) { total.Add(1) })
	})
	if got := total.Load(); got != 64 {
		t.Fatalf("nested For ran %d inner iterations, want 64", got)
	}
}

func TestForPanicPropagates(t *testing.T) {
	p := New(4)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	p.For(1000, func(i int) {
		if i == 517 {
			panic("boom")
		}
	})
}

func TestGetCachesPools(t *testing.T) {
	if Get(3) != Get(3) {
		t.Fatal("Get(3) returned distinct pools")
	}
	if Get(0).Workers() != Default().Workers() {
		t.Fatal("Get(0) and Default disagree")
	}
	if Get(5).Workers() != 5 {
		t.Fatalf("Workers() = %d, want 5", Get(5).Workers())
	}
}

func TestForChunksReusablePool(t *testing.T) {
	p := New(3)
	for round := 0; round < 50; round++ {
		var count atomic.Int64
		p.ForChunks(200, 7, func(lo, hi int) { count.Add(int64(hi - lo)) })
		if count.Load() != 200 {
			t.Fatalf("round %d covered %d indices, want 200", round, count.Load())
		}
	}
}

func TestForChunksCtxCancellation(t *testing.T) {
	p := New(4)
	// A completed run returns nil.
	if err := p.ForChunksCtx(context.Background(), 100, 10, func(lo, hi int) {}); err != nil {
		t.Fatalf("uncancelled run returned %v", err)
	}
	// Cancelling from inside a chunk stops further chunks being claimed and
	// returns ctx.Err(); the pool stays reusable afterwards.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := p.ForChunksCtx(ctx, 100000, 1, func(lo, hi int) {
		if ran.Add(int64(hi-lo)) > 100 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if ran.Load() >= 100000 {
		t.Fatal("cancellation did not stop chunk claims")
	}
	var count atomic.Int64
	p.ForChunks(500, 7, func(lo, hi int) { count.Add(int64(hi - lo)) })
	if count.Load() != 500 {
		t.Fatalf("pool unusable after cancellation: covered %d of 500", count.Load())
	}
	// An already-cancelled context runs nothing, including the single-chunk
	// fast path.
	ran.Store(0)
	if err := p.ForChunksCtx(ctx, 50, 100, func(lo, hi int) { ran.Add(1) }); err != context.Canceled {
		t.Fatalf("pre-cancelled run returned %v", err)
	}
	if ran.Load() != 0 {
		t.Fatal("pre-cancelled context still executed chunks")
	}
}
