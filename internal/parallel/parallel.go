package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded set of reusable worker goroutines. The zero value is not
// usable; obtain pools with Get or New.
type Pool struct {
	workers int
	tasks   chan func()
}

var (
	poolsMu sync.Mutex
	pools   = map[int]*Pool{}
)

// Get returns the shared pool with the given worker count, creating it on
// first use. workers <= 0 selects GOMAXPROCS. Pools are never torn down:
// idle workers cost only a blocked goroutine each.
func Get(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	poolsMu.Lock()
	defer poolsMu.Unlock()
	if p, ok := pools[workers]; ok {
		return p
	}
	p := New(workers)
	pools[workers] = p
	return p
}

// Default returns the shared GOMAXPROCS-sized pool.
func Default() *Pool { return Get(0) }

// New creates a pool with its own worker goroutines. Most callers want Get.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The task channel is deliberately unbuffered: a send succeeds only when
	// an idle worker is actively receiving, so queued work can never wait on
	// a worker that is itself blocked in a nested ForChunks.
	p := &Pool{workers: workers, tasks: make(chan func())}
	// The caller of For/ForChunks always participates, so workers-1 helpers
	// saturate the target concurrency.
	for i := 0; i < workers-1; i++ {
		go func() {
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Grain returns a chunk size that gives each worker a few chunks of an
// n-element loop — the default second argument to ForChunks when the caller
// has no per-chunk setup cost to amortise further.
func (p *Pool) Grain(n int) int {
	g := n / (4 * p.workers)
	if g < 1 {
		g = 1
	}
	return g
}

// minChunk is the smallest index range worth shipping to another goroutine.
const minChunk = 64

// ForChunks splits [0,n) into contiguous chunks of at least grain indices
// and runs fn on each. The calling goroutine always executes chunks itself;
// idle pool workers join in. fn must write results to per-index or per-chunk
// locations — chunk boundaries are a pure function of n and grain, so any
// such use is deterministic regardless of worker count or scheduling.
// ForChunks returns once every chunk has completed; a panic in fn is
// re-raised on the calling goroutine.
func (p *Pool) ForChunks(n, grain int, fn func(lo, hi int)) {
	p.forChunks(nil, n, grain, fn)
}

// ForChunksCtx is ForChunks with cooperative cancellation: once ctx is
// cancelled no further chunks are claimed and ctx.Err() is returned (nil on
// a complete run). Chunks already executing finish, and the call returns
// only after every participating worker has drained — pool workers outlive
// the call by design, so cancellation never leaks goroutines mid-task.
// On cancellation the per-index outputs are only partially written; callers
// must discard them and propagate the error.
func (p *Pool) ForChunksCtx(ctx context.Context, n, grain int, fn func(lo, hi int)) error {
	p.forChunks(ctx, n, grain, fn)
	return ctx.Err()
}

func (p *Pool) forChunks(ctx context.Context, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = minChunk
	}
	chunks := (n + grain - 1) / grain
	if chunks <= 1 || p.workers == 1 {
		if ctx != nil && ctx.Err() != nil {
			return
		}
		fn(0, n)
		return
	}

	var (
		next     atomic.Int64
		panicked atomic.Pointer[panicValue]
		wg       sync.WaitGroup
	)
	run := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &panicValue{r})
				// Drain remaining chunks so other participants finish fast.
				next.Store(int64(chunks))
			}
		}()
		for {
			if ctx != nil && ctx.Err() != nil {
				next.Store(int64(chunks))
				return
			}
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}

	helpers := p.workers - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	wg.Add(1 + helpers)
	submitted := 0
submit:
	for submitted < helpers {
		select {
		case p.tasks <- run:
			submitted++
		default:
			// Pool saturated (e.g. a nested call): the caller picks up the
			// slack, which keeps nesting deadlock-free.
			break submit
		}
	}
	for i := submitted; i < helpers; i++ {
		wg.Done()
	}
	run()
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.v)
	}
}

type panicValue struct{ v any }

// For runs fn for every i in [0,n), sharded over the pool in chunks sized
// so each worker sees a few chunks. The same determinism contract as
// ForChunks applies: fn must write to per-index locations.
func (p *Pool) For(n int, fn func(i int)) {
	grain := n / (4 * p.workers)
	if grain < 1 {
		grain = 1
	}
	p.ForChunks(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
