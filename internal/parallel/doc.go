// Package parallel provides the one bounded, reusable worker pool every hot
// path of this repository shares. It replaces the ad-hoc
// runtime.NumCPU()-goroutine spawns that used to live in candidate scoring,
// IV/Pearson selection and GBDT split finding with a single chunked
// parallel-for primitive.
//
// Design constraints, in order:
//
//  1. Determinism: results must be identical for any worker count. Both For
//     and ForChunks therefore hand callers disjoint index ranges and expect
//     outputs to be written to per-index (or per-chunk) slots; chunk
//     boundaries depend only on n, never on the worker count or on
//     scheduling.
//  2. Bounded concurrency: a pool owns a fixed set of long-lived worker
//     goroutines. Submitting work never spawns; a saturated pool simply
//     leaves the caller to chew through the chunks itself, which also makes
//     nested For calls deadlock-free.
//  3. Reuse: pools are cached per size (Get), so repeated Fit calls do not
//     churn goroutines.
//
// The canonical usage — score one slot per index, any worker count:
//
//	pool := parallel.Get(0) // GOMAXPROCS workers, cached
//	out := make([]float64, len(cols))
//	pool.ForChunks(len(cols), pool.Grain(len(cols)), func(lo, hi int) {
//		for j := lo; j < hi; j++ {
//			out[j] = score(cols[j]) // j touched by exactly one chunk
//		}
//	})
//
// Accumulators that are NOT per-index (e.g. the sharded engine's combo
// counters) follow the one-worker-per-accumulator pattern instead: chunk
// the accumulator axis with grain 1 so each accumulator is only ever
// touched by one worker, keeping accumulation order deterministic.
package parallel
