package clf

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func blobData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		labels[i] = float64(rng.Intn(2))
		cols[0][i] = rng.NormFloat64() + labels[i]*2
		cols[1][i] = rng.NormFloat64()
	}
	return cols, labels
}

func TestNamesMatchTableIII(t *testing.T) {
	want := []string{"AB", "DT", "ET", "kNN", "LR", "MLP", "RF", "SVM", "XGB"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFastNamesSubset(t *testing.T) {
	all := map[string]bool{}
	for _, n := range Names() {
		all[n] = true
	}
	for _, n := range FastNames() {
		if !all[n] {
			t.Errorf("FastNames includes unknown %q", n)
		}
	}
}

func TestEveryClassifierLearnsBlobs(t *testing.T) {
	cols, labels := blobData(1200, 1)
	testCols, testLabels := blobData(400, 2)
	for _, name := range Names() {
		model, err := Train(name, cols, labels, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		auc := metrics.AUC(model.Predict(testCols), testLabels)
		// A single deep tree overfits the overlapping blobs and scores
		// lower than the ensembles; everything else should clear 0.8.
		floor := 0.8
		if name == "DT" {
			floor = 0.72
		}
		if auc < floor {
			t.Errorf("%s: AUC = %v, want >= %v on separable blobs", name, auc, floor)
		}
	}
}

func TestTrainUnknownName(t *testing.T) {
	cols, labels := blobData(50, 3)
	if _, err := Train("nope", cols, labels, 1); err == nil {
		t.Error("unknown classifier accepted")
	}
}

func TestSeedDeterminism(t *testing.T) {
	cols, labels := blobData(500, 4)
	for _, name := range []string{"RF", "XGB", "MLP", "AB"} {
		m1, err := Train(name, cols, labels, 7)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := Train(name, cols, labels, 7)
		if err != nil {
			t.Fatal(err)
		}
		p1 := m1.Predict(cols)
		p2 := m2.Predict(cols)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("%s: same seed diverged at row %d", name, i)
			}
		}
	}
}
