// Package clf aggregates the nine evaluation classifiers of Table III —
// AdaBoost (AB), Decision Tree (DT), Extremely randomized Trees (ET),
// k-nearest neighbours (kNN), Logistic Regression (LR), Multi-Layered
// Perceptron (MLP), Random Forest (RF), linear SVM (SVM) and XGBoost (XGB) —
// behind one name-indexed constructor, all with fixed default parameters
// (the paper uses scikit-learn/XGBoost defaults; these are the equivalent
// defaults of this repository's from-scratch implementations).
package clf

import (
	"fmt"

	"repro/internal/ensemble"
	"repro/internal/gbdt"
	"repro/internal/knn"
	"repro/internal/linear"
	"repro/internal/mlp"
	"repro/internal/tree"
)

// Model scores column-major data with positive-class probabilities.
type Model interface {
	Predict(cols [][]float64) []float64
}

// Names lists the classifier keys in the order Table III reports them.
func Names() []string {
	return []string{"AB", "DT", "ET", "kNN", "LR", "MLP", "RF", "SVM", "XGB"}
}

// FastNames lists the classifiers used for the business-scale Table VIII
// (LR, RF, XGB — the only ones the paper runs at that scale).
func FastNames() []string { return []string{"LR", "RF", "XGB"} }

// Train fits the named classifier on column-major data with binary labels.
func Train(name string, cols [][]float64, labels []float64, seed int64) (Model, error) {
	switch name {
	case "AB":
		cfg := ensemble.DefaultAdaBoostConfig()
		cfg.Seed = seed
		return ensemble.TrainAdaBoost(cols, labels, cfg)
	case "DT":
		tc := tree.Config{MaxDepth: 12, Criterion: tree.Gini, Seed: seed}
		return treeModel{inner: nil}.train(cols, labels, tc)
	case "ET":
		cfg := ensemble.DefaultForestConfig()
		cfg.ExtraTrees = true
		cfg.Bootstrap = false
		cfg.Seed = seed
		return ensemble.TrainForest(cols, labels, cfg)
	case "kNN":
		cfg := knn.DefaultConfig()
		cfg.Seed = seed
		return knn.Train(cols, labels, cfg)
	case "LR":
		cfg := linear.DefaultLogisticConfig()
		cfg.Seed = seed
		return linear.TrainLogistic(cols, labels, cfg)
	case "MLP":
		cfg := mlp.DefaultConfig()
		cfg.Seed = seed
		return mlp.Train(cols, labels, cfg)
	case "RF":
		cfg := ensemble.DefaultForestConfig()
		cfg.Seed = seed
		return ensemble.TrainForest(cols, labels, cfg)
	case "SVM":
		cfg := linear.DefaultSVMConfig()
		cfg.Seed = seed
		return linear.TrainSVM(cols, labels, cfg)
	case "XGB":
		cfg := gbdt.DefaultConfig()
		cfg.Seed = seed
		return gbdt.Train(cols, labels, nil, cfg)
	default:
		return nil, fmt.Errorf("clf: unknown classifier %q (want one of %v)", name, Names())
	}
}

// treeModel adapts tree.Tree to the Model interface via its train helper.
type treeModel struct{ inner *tree.Tree }

func (tm treeModel) train(cols [][]float64, labels []float64, cfg tree.Config) (Model, error) {
	tr, err := tree.Train(cols, labels, nil, cfg)
	if err != nil {
		return nil, err
	}
	return treeModel{inner: tr}, nil
}

// Predict implements Model.
func (tm treeModel) Predict(cols [][]float64) []float64 { return tm.inner.Predict(cols) }
