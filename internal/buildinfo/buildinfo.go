// Package buildinfo identifies the build behind every command-line tool, so
// benchmark records (BENCH_*.json) and logged runs are self-describing: a
// recorded number can always be traced to the code and toolchain that
// produced it.
package buildinfo

import (
	"runtime"
	"runtime/debug"
)

// Version is the repository's release string, bumped per PR milestone.
const Version = "0.3.0"

// String returns the full human-readable build identity, e.g.
// "safe v0.3.0 go1.22.1 (2f5cde1a9b0c)".
func String() string {
	s := "safe v" + Version + " " + runtime.Version()
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
				s += " (" + kv.Value[:12] + ")"
			}
		}
	}
	return s
}
