package benchkit

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dist"
	"repro/internal/frame"
	"repro/internal/shard"
)

// distPath is the temp file a distributed cell's workers open by path.
func distPath(w FitWorkload) string {
	ext := "col"
	if w.Source == "csv" {
		ext = "csv"
	}
	return filepath.Join(os.TempDir(), fmt.Sprintf("benchkit-%s.%s", w.Name, ext))
}

// distFit builds the fit closure for a distributed cell. The dataset is
// written to a file-backed source once, outside the timed region; each
// measurement then spawns the cell's worker fleet (in-process pipe workers
// or a loopback TCP server), runs the sharded fit loop with a
// dist.Coordinator as its pass executor, and tears the fleet down — fleet
// lifecycle is part of what the cell prices.
func distFit(w FitWorkload, ds *datagen.Dataset, cfg core.Config) (func() (*core.Report, error), error) {
	if w.Shards <= 0 {
		return nil, fmt.Errorf("benchkit: %s: DistWorkers requires Shards > 0", w.Name)
	}
	chunkRows := (w.Rows + w.Shards - 1) / w.Shards
	path := distPath(w)
	var spec dist.SourceSpec
	switch w.Source {
	case "", "colstore":
		if err := colstore.WriteFrame(path, ds.Train, colstore.WriterOptions{GroupRows: chunkRows}); err != nil {
			return nil, err
		}
		spec = dist.SourceSpec{Kind: dist.SourceColstore, Path: path}
	case "csv":
		if err := ds.Train.WriteCSVFile(path); err != nil {
			return nil, err
		}
		spec = dist.SourceSpec{Kind: dist.SourceCSV, Path: path, Label: "label", ChunkRows: chunkRows}
	default:
		return nil, fmt.Errorf("benchkit: %s: unknown dist source %q (want csv or colstore)", w.Name, w.Source)
	}
	return func() (*core.Report, error) {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		defer wg.Wait() // after cancel: the fleet unwinds before the next measurement
		defer cancel()
		var conns []dist.Conn
		switch w.Transport {
		case "", "pipe":
			for i := 0; i < w.DistWorkers; i++ {
				coordEnd, workerEnd := dist.Pipe()
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = dist.ServeConn(ctx, workerEnd)
				}()
				conns = append(conns, coordEnd)
			}
		case "tcp":
			srv, err := dist.NewServer("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = srv.Serve(ctx)
			}()
			for i := 0; i < w.DistWorkers; i++ {
				nc, err := net.Dial("tcp", srv.Addr())
				if err != nil {
					return nil, err
				}
				conns = append(conns, dist.NewConn(nc))
			}
		default:
			return nil, fmt.Errorf("benchkit: %s: unknown transport %q (want pipe or tcp)", w.Name, w.Transport)
		}
		coord := dist.NewCoordinator(spec, conns...)
		defer coord.Close()
		src, closeSrc, err := openDistLocal(spec, chunkRows)
		if err != nil {
			return nil, err
		}
		defer closeSrc() //nolint:errcheck // read-only source teardown
		_, report, _, err := shard.Fit(ctx, src, shard.Config{Core: cfg, Exec: coord})
		return report, err
	}, nil
}

// openDistLocal opens the coordinator's own handle on the cell's source
// file (it only reads the schema; the workers stream the rows).
func openDistLocal(spec dist.SourceSpec, chunkRows int) (frame.ChunkSource, func() error, error) {
	if spec.Kind == dist.SourceColstore {
		src, err := colstore.OpenSource(spec.Path)
		if err != nil {
			return nil, nil, err
		}
		return src, src.Close, nil
	}
	src, err := frame.OpenCSVChunks(spec.Path, spec.Label, chunkRows)
	if err != nil {
		return nil, nil, err
	}
	return src, src.Close, nil
}
