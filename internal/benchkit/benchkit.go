// Package benchkit is the reproducible performance harness of this
// repository. It runs fixed synthetic fit workloads (rows × base features ×
// iterations), measures throughput and allocation behaviour, and maintains an
// append-only JSON trajectory file (BENCH_fit.json at the repository root) so
// every PR records how the hot path moved. CI runs the quick subset of the
// matrix and fails when throughput regresses beyond a tolerance against the
// latest committed run; see docs/performance.md.
package benchkit

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/frame"
	"repro/internal/shard"
)

// FitWorkload is one cell of the synthetic fit workload matrix. The dataset
// is fully determined by (Rows, Dim, Seed), so two runs of the same workload
// on different builds fit identical data.
type FitWorkload struct {
	Name       string `json:"name"`
	Rows       int    `json:"rows"`
	Dim        int    `json:"dim"`
	Iterations int    `json:"iterations"`
	Quick      bool   `json:"quick"` // part of the CI smoke subset
	// Shards > 0 runs the cell through the sharded out-of-core engine
	// (internal/shard) over that many partitions instead of the in-memory
	// fit. The selected-feature fingerprint matches the equivalent
	// in-memory cell by construction.
	Shards int `json:"shards,omitempty"`
	// Task selects the prediction task of the cell ("", "binary",
	// "multiclass:K", or "regression"); empty means binary. The dataset's
	// label type follows the task while the planted signal stays fixed.
	Task string `json:"task,omitempty"`
	// Source selects the chunk source container for sharded cells: ""
	// streams in-memory frame chunks, "csv" parses a CSV file, "colstore"
	// reads a colstore binary columnar file (mmap where available). The
	// file is written once per measurement outside the timed region; only
	// the fit itself is measured.
	Source string `json:"source,omitempty"`
	// DistWorkers > 0 delegates the cell's pass compute to that many
	// internal/dist workers; Shards must be > 0 and the source file-backed
	// ("" defaults to colstore so workers can open it by path). The timed
	// region includes worker spawn and the wire round trips — the point of
	// the cell is the protocol overhead relative to shardfit.
	DistWorkers int `json:"dist_workers,omitempty"`
	// Transport picks the distributed transport: "pipe" (in-process
	// net.Pipe workers, serialization cost without a network) or "tcp"
	// (loopback TCP to a worker server). Empty means pipe.
	Transport string `json:"transport,omitempty"`
}

// FitMatrix is the fixed workload matrix. The quick subset is small enough
// for a CI smoke job; the full matrix includes the 100k×50 headline workload
// the README quotes. Do not edit cells in place — add new ones — or the
// trajectory in BENCH_fit.json stops being comparable.
func FitMatrix() []FitWorkload {
	return []FitWorkload{
		{Name: "fit-5k-20", Rows: 5000, Dim: 20, Iterations: 1, Quick: true},
		{Name: "fit-20k-20", Rows: 20000, Dim: 20, Iterations: 1, Quick: true},
		{Name: "fit-50k-50", Rows: 50000, Dim: 50, Iterations: 1},
		{Name: "fit-100k-50", Rows: 100000, Dim: 50, Iterations: 1},
		{Name: "fit-20k-20-mc3", Rows: 20000, Dim: 20, Iterations: 1, Quick: true, Task: "multiclass:3"},
		{Name: "fit-20k-20-reg", Rows: 20000, Dim: 20, Iterations: 1, Quick: true, Task: "regression"},
	}
}

// QuickFitMatrix returns the CI smoke subset of FitMatrix.
func QuickFitMatrix() []FitWorkload {
	return quickSubset(FitMatrix())
}

// ShardFitMatrix is the sharded-engine workload matrix: the same synthetic
// datasets as FitMatrix, fitted out-of-core over 4 partitions. Cells are
// distinct from the in-memory ones (don't edit in place; add new cells) so
// the BENCH_fit.json trajectory tracks both engines independently.
func ShardFitMatrix() []FitWorkload {
	return []FitWorkload{
		{Name: "shardfit-20k-20", Rows: 20000, Dim: 20, Iterations: 1, Quick: true, Shards: 4},
		{Name: "shardfit-100k-50", Rows: 100000, Dim: 50, Iterations: 1, Shards: 4},
		{Name: "shardfit-20k-20-mc3", Rows: 20000, Dim: 20, Iterations: 1, Quick: true, Shards: 4, Task: "multiclass:3"},
		{Name: "shardfit-20k-20-reg", Rows: 20000, Dim: 20, Iterations: 1, Quick: true, Shards: 4, Task: "regression"},
		{Name: "shardfit-20k-20-csv", Rows: 20000, Dim: 20, Iterations: 1, Quick: true, Shards: 4, Source: "csv"},
		{Name: "shardfit-20k-20-colstore", Rows: 20000, Dim: 20, Iterations: 1, Quick: true, Shards: 4, Source: "colstore"},
		{Name: "shardfit-100k-50-csv", Rows: 100000, Dim: 50, Iterations: 1, Shards: 4, Source: "csv"},
		{Name: "shardfit-100k-50-colstore", Rows: 100000, Dim: 50, Iterations: 1, Shards: 4, Source: "colstore"},
		{Name: "shardfit-20k-20-mc3-colstore", Rows: 20000, Dim: 20, Iterations: 1, Shards: 4, Task: "multiclass:3", Source: "colstore"},
		{Name: "shardfit-20k-20-reg-colstore", Rows: 20000, Dim: 20, Iterations: 1, Shards: 4, Task: "regression", Source: "colstore"},
	}
}

// QuickShardFitMatrix returns the CI smoke subset of ShardFitMatrix.
func QuickShardFitMatrix() []FitWorkload {
	return quickSubset(ShardFitMatrix())
}

// DistFitMatrix is the distributed-fit workload matrix: the headline
// 100k×50 shape with pass compute delegated over the wire protocol, across
// both transports and worker counts {1, 2, 4} — the 1-worker cells price
// the protocol itself against shardfit-100k-50-colstore, the others its
// scaling. Quick 20k cells keep the CI smoke gate on the wire path. Cells
// are append-only, like the other matrices.
func DistFitMatrix() []FitWorkload {
	return []FitWorkload{
		{Name: "distfit-20k-20-pipe-2", Rows: 20000, Dim: 20, Iterations: 1, Quick: true, Shards: 4, DistWorkers: 2, Transport: "pipe"},
		{Name: "distfit-20k-20-tcp-2", Rows: 20000, Dim: 20, Iterations: 1, Quick: true, Shards: 4, DistWorkers: 2, Transport: "tcp"},
		{Name: "distfit-100k-50-pipe-1", Rows: 100000, Dim: 50, Iterations: 1, Shards: 4, DistWorkers: 1, Transport: "pipe"},
		{Name: "distfit-100k-50-pipe-2", Rows: 100000, Dim: 50, Iterations: 1, Shards: 4, DistWorkers: 2, Transport: "pipe"},
		{Name: "distfit-100k-50-pipe-4", Rows: 100000, Dim: 50, Iterations: 1, Shards: 4, DistWorkers: 4, Transport: "pipe"},
		{Name: "distfit-100k-50-tcp-1", Rows: 100000, Dim: 50, Iterations: 1, Shards: 4, DistWorkers: 1, Transport: "tcp"},
		{Name: "distfit-100k-50-tcp-2", Rows: 100000, Dim: 50, Iterations: 1, Shards: 4, DistWorkers: 2, Transport: "tcp"},
		{Name: "distfit-100k-50-tcp-4", Rows: 100000, Dim: 50, Iterations: 1, Shards: 4, DistWorkers: 4, Transport: "tcp"},
	}
}

// QuickDistFitMatrix returns the CI smoke subset of DistFitMatrix.
func QuickDistFitMatrix() []FitWorkload {
	return quickSubset(DistFitMatrix())
}

func quickSubset(all []FitWorkload) []FitWorkload {
	var out []FitWorkload
	for _, w := range all {
		if w.Quick {
			out = append(out, w)
		}
	}
	return out
}

// Result is one measured workload cell.
type Result struct {
	Workload   string  `json:"workload"`
	Rows       int     `json:"rows"`
	Dim        int     `json:"dim"`
	Iterations int     `json:"iterations"`
	Seconds    float64 `json:"seconds"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// AllocMB is the total heap allocated during the fit (MB): the GC
	// pressure the run generated.
	AllocMB float64 `json:"alloc_mb"`
	// PeakHeapMB is the live heap right after the fit (MB), an upper-bound
	// proxy for the working set.
	PeakHeapMB float64 `json:"peak_heap_mb"`
	// Allocs is the number of heap allocations during the fit.
	Allocs uint64 `json:"allocs"`
	// Selected is the number of features the fit selected — a cheap
	// fingerprint that two builds did equivalent work.
	Selected int `json:"selected"`
}

// Run is one benchmark session: every workload measured on one build. Seed
// and Version make recorded runs self-describing: the harness seed that
// drove the session and the exact build that produced the numbers.
type Run struct {
	Label      string   `json:"label"`
	Timestamp  string   `json:"timestamp"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Seed       int64    `json:"seed"`
	Version    string   `json:"version,omitempty"`
	Results    []Result `json:"results"`
}

// File is the on-disk trajectory: runs in chronological order, oldest first.
type File struct {
	Schema string `json:"schema"`
	Runs   []Run  `json:"runs"`
}

// FileSchema identifies the BENCH_fit.json layout.
const FileSchema = "safe-bench-fit/v1"

// Load reads a trajectory file; a missing file yields an empty trajectory.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &File{Schema: FileSchema}, nil
	}
	if err != nil {
		return nil, err
	}
	f := &File{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("benchkit: parse %s: %w", path, err)
	}
	return f, nil
}

// Write persists the trajectory with stable formatting.
func (f *File) Write(path string) error {
	f.Schema = FileSchema
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Latest returns the most recent run, or nil for an empty trajectory.
func (f *File) Latest() *Run {
	if len(f.Runs) == 0 {
		return nil
	}
	return &f.Runs[len(f.Runs)-1]
}

// Baseline returns the oldest run: the pre-optimisation reference the
// trajectory is measured against.
func (f *File) Baseline() *Run {
	if len(f.Runs) == 0 {
		return nil
	}
	return &f.Runs[0]
}

// Find returns the result for a workload within a run, or nil.
func (r *Run) Find(workload string) *Result {
	if r == nil {
		return nil
	}
	for i := range r.Results {
		if r.Results[i].Workload == workload {
			return &r.Results[i]
		}
	}
	return nil
}

// NewRun stamps an empty run for the current build with the harness seed
// that drives the session.
func NewRun(label string, seed int64) Run {
	return Run{
		Label:      label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Version:    buildinfo.String(),
	}
}

// FitConfig returns the engineer configuration every benchmark run uses: the
// paper defaults with a fixed seed and the requested iteration count, so runs
// are comparable across builds.
func FitConfig(iterations int, seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Iterations = iterations
	cfg.Seed = seed
	return cfg
}

// workloadTask resolves a workload's task spec (empty means binary).
func workloadTask(w FitWorkload) (core.Task, error) {
	task, err := core.ParseTask(w.Task)
	if err != nil {
		return core.Task{}, fmt.Errorf("benchkit: %s: %w", w.Name, err)
	}
	return task, nil
}

// workloadSeed fixes the dataset seed per workload shape so every build fits
// identical data.
const workloadSeed = 11

// Dataset generates the synthetic dataset for a workload — the same planted
// signal per shape, with the label type following the workload's task.
// Shared with tests so determinism checks exercise exactly the benchmarked
// distribution.
func Dataset(w FitWorkload) (*datagen.Dataset, error) {
	task, err := workloadTask(w)
	if err != nil {
		return nil, err
	}
	target, classes := safe.TargetForTask(task)
	return datagen.Generate(datagen.Spec{
		Name:         w.Name,
		Train:        w.Rows,
		Test:         256,
		Dim:          w.Dim,
		Interactions: w.Dim / 3,
		SignalScale:  2.5,
		Seed:         workloadSeed,
		Target:       target,
		Classes:      classes,
	})
}

// RunFit measures one workload cell once: dataset generation is excluded
// from the timed region; the fit itself runs with the paper-default
// configuration.
func RunFit(w FitWorkload) (Result, error) {
	return RunFitBest(w, 1)
}

// RunFitBest measures a workload cell repeats times on one shared dataset
// and keeps the fastest measurement. Throughput noise on a busy machine is
// one-sided — interference only ever makes a run slower — so best-of-N
// estimates the build's true capability and keeps the CI regression gate
// from flapping on scheduler jitter.
func RunFitBest(w FitWorkload, repeats int) (Result, error) {
	ds, err := Dataset(w)
	if err != nil {
		return Result{}, err
	}
	var best Result
	for r := 0; r < repeats || r == 0; r++ {
		res, err := runFitOnce(w, ds)
		if err != nil {
			return Result{}, err
		}
		if r == 0 || res.RowsPerSec > best.RowsPerSec {
			best = res
		}
	}
	return best, nil
}

func runFitOnce(w FitWorkload, ds *datagen.Dataset) (Result, error) {
	task, err := workloadTask(w)
	if err != nil {
		return Result{}, err
	}
	cfg := FitConfig(w.Iterations, 1)
	cfg.Task = task
	fit := func() (*core.Report, error) {
		eng, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		_, report, err := eng.Fit(ds.Train)
		return report, err
	}
	if w.DistWorkers > 0 {
		fit, err = distFit(w, ds, cfg)
		if err != nil {
			return Result{}, err
		}
		defer os.Remove(distPath(w))
	} else if w.Shards > 0 {
		chunkRows := (w.Rows + w.Shards - 1) / w.Shards
		switch w.Source {
		case "":
			fit = func() (*core.Report, error) {
				src := frame.NewFrameChunks(ds.Train, chunkRows)
				_, report, _, err := shard.Fit(context.Background(), src, shard.Config{Core: cfg})
				return report, err
			}
		case "csv":
			path := filepath.Join(os.TempDir(), fmt.Sprintf("benchkit-%s.csv", w.Name))
			if err := ds.Train.WriteCSVFile(path); err != nil {
				return Result{}, err
			}
			defer os.Remove(path)
			fit = func() (*core.Report, error) {
				src, err := frame.OpenCSVChunks(path, "label", chunkRows)
				if err != nil {
					return nil, err
				}
				defer src.Close()
				_, report, _, err := shard.Fit(context.Background(), src, shard.Config{Core: cfg})
				return report, err
			}
		case "colstore":
			path := filepath.Join(os.TempDir(), fmt.Sprintf("benchkit-%s.col", w.Name))
			if err := colstore.WriteFrame(path, ds.Train, colstore.WriterOptions{GroupRows: chunkRows}); err != nil {
				return Result{}, err
			}
			defer os.Remove(path)
			fit = func() (*core.Report, error) {
				src, err := colstore.OpenSource(path)
				if err != nil {
					return nil, err
				}
				defer src.Close()
				_, report, _, err := shard.Fit(context.Background(), src, shard.Config{Core: cfg})
				return report, err
			}
		default:
			return Result{}, fmt.Errorf("benchkit: %s: unknown source %q (want csv or colstore)", w.Name, w.Source)
		}
	} else if w.Source != "" {
		return Result{}, fmt.Errorf("benchkit: %s: Source requires Shards > 0", w.Name)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	report, err := fit()
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, fmt.Errorf("benchkit: %s: %w", w.Name, err)
	}
	runtime.ReadMemStats(&after)

	selected := 0
	if n := len(report.Iterations); n > 0 {
		selected = report.Iterations[n-1].Selected
	}
	return Result{
		Workload:   w.Name,
		Rows:       w.Rows,
		Dim:        w.Dim,
		Iterations: w.Iterations,
		Seconds:    elapsed.Seconds(),
		RowsPerSec: float64(w.Rows*w.Iterations) / elapsed.Seconds(),
		AllocMB:    float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
		PeakHeapMB: float64(after.HeapAlloc) / (1 << 20),
		Allocs:     after.Mallocs - before.Mallocs,
		Selected:   selected,
	}, nil
}

// Regression is one workload whose throughput fell beyond tolerance.
type Regression struct {
	Workload  string
	Reference float64 // rows/sec in the reference run
	Current   float64 // rows/sec now
	Ratio     float64 // Current / Reference
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f rows/sec vs reference %.0f (%.2fx)",
		r.Workload, r.Current, r.Reference, r.Ratio)
}

// Compare checks current against a reference run: every workload present in
// both must keep Current/Reference >= 1 - tolerance. Workloads missing from
// either side are skipped (the matrix may grow over time).
func Compare(reference, current *Run, tolerance float64) []Regression {
	var out []Regression
	if reference == nil || current == nil {
		return out
	}
	for i := range current.Results {
		cur := &current.Results[i]
		ref := reference.Find(cur.Workload)
		if ref == nil || ref.RowsPerSec <= 0 {
			continue
		}
		ratio := cur.RowsPerSec / ref.RowsPerSec
		if ratio < 1-tolerance {
			out = append(out, Regression{
				Workload:  cur.Workload,
				Reference: ref.RowsPerSec,
				Current:   cur.RowsPerSec,
				Ratio:     ratio,
			})
		}
	}
	return out
}
