package knn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func clusters(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		labels[i] = float64(rng.Intn(2))
		shift := labels[i]*4 - 2
		cols[0][i] = rng.NormFloat64() + shift
		cols[1][i] = rng.NormFloat64()
	}
	return cols, labels
}

func TestValidation(t *testing.T) {
	if _, err := Train(nil, []float64{1}, DefaultConfig()); err == nil {
		t.Error("accepted no features")
	}
	if _, err := Train([][]float64{{1}}, nil, DefaultConfig()); err == nil {
		t.Error("accepted no labels")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []float64{0, 1}, DefaultConfig()); err == nil {
		t.Error("accepted ragged columns")
	}
}

func TestLearnsClusters(t *testing.T) {
	cols, labels := clusters(1000, 1)
	m, err := Train(cols, labels, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	testCols, testLabels := clusters(300, 42)
	if auc := metrics.AUC(m.Predict(testCols), testLabels); auc < 0.95 {
		t.Errorf("kNN AUC = %v, want >= 0.95", auc)
	}
}

func TestExactNeighbourVote(t *testing.T) {
	// 3 points of class 1 at x=1, 2 of class 0 at x=-1; query at x=0.9 with
	// k=3 must see all three positives.
	cols := [][]float64{{1, 1.01, 0.99, -1, -1.01}}
	labels := []float64{1, 1, 1, 0, 0}
	m, err := Train(cols, labels, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.PredictRow([]float64{0.9}); p != 1 {
		t.Errorf("vote = %v, want 1", p)
	}
	if p := m.PredictRow([]float64{-0.9}); p > 0.5 {
		t.Errorf("vote near negatives = %v, want <= 0.5", p)
	}
}

func TestSubsampleCap(t *testing.T) {
	cols, labels := clusters(5000, 2)
	m, err := Train(cols, labels, Config{K: 5, MaxTrain: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.x) != 500 {
		t.Errorf("memorised %d rows, want 500", len(m.x))
	}
	// Should still classify well.
	testCols, testLabels := clusters(300, 43)
	if auc := metrics.AUC(m.Predict(testCols), testLabels); auc < 0.9 {
		t.Errorf("capped kNN AUC = %v, want >= 0.9", auc)
	}
}

func TestProbabilityGranularity(t *testing.T) {
	cols, labels := clusters(200, 3)
	m, err := Train(cols, labels, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Predict(cols) {
		// With k=5 probabilities are multiples of 0.2.
		scaled := p * 5
		if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
			t.Fatalf("probability %v is not a multiple of 1/5", p)
		}
	}
}

func TestNaNHandling(t *testing.T) {
	cols, labels := clusters(200, 4)
	cols[0][0] = math.NaN()
	m, err := Train(cols, labels, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p := m.PredictRow([]float64{math.NaN(), 0}); math.IsNaN(p) {
		t.Error("NaN query produced NaN")
	}
}
