// Package knn implements the k-nearest-neighbours evaluator of Table III
// with standardised Euclidean distance and probability output (fraction of
// positive neighbours). For the dataset sizes in this repository a brute
// force scan with a bounded max-heap is fast enough and has no tuning
// surface; training-set subsampling keeps the largest benchmarks tractable.
package knn

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config holds kNN parameters.
type Config struct {
	K        int
	MaxTrain int // subsample the training set to at most this many rows (<=0: no cap)
	Seed     int64
}

// DefaultConfig mirrors sklearn's KNeighborsClassifier default (k=5) with a
// training-set cap for the biggest benchmarks.
func DefaultConfig() Config { return Config{K: 5, MaxTrain: 20000} }

// Model is a fitted kNN classifier (it memorises standardised training
// rows).
type Model struct {
	k    int
	x    [][]float64
	y    []float64
	mean []float64
	std  []float64
}

// Train memorises (a subsample of) the training data in standardised form.
func Train(cols [][]float64, labels []float64, cfg Config) (*Model, error) {
	m := len(cols)
	if m == 0 {
		return nil, errors.New("knn: no features")
	}
	n := len(labels)
	if n == 0 {
		return nil, errors.New("knn: no rows")
	}
	for j := range cols {
		if len(cols[j]) != n {
			return nil, fmt.Errorf("knn: column %d has %d rows, want %d", j, len(cols[j]), n)
		}
	}
	if cfg.K <= 0 {
		cfg.K = 5
	}

	mod := &Model{k: cfg.K, mean: make([]float64, m), std: make([]float64, m)}
	for j := 0; j < m; j++ {
		var sum float64
		cnt := 0
		for _, v := range cols[j] {
			if !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		if cnt == 0 {
			mod.std[j] = 1
			continue
		}
		mean := sum / float64(cnt)
		var ss float64
		for _, v := range cols[j] {
			if !math.IsNaN(v) {
				d := v - mean
				ss += d * d
			}
		}
		std := math.Sqrt(ss / float64(cnt))
		if std < 1e-12 {
			std = 1
		}
		mod.mean[j], mod.std[j] = mean, std
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if cfg.MaxTrain > 0 && n > cfg.MaxTrain {
		rng := rand.New(rand.NewSource(cfg.Seed))
		rng.Shuffle(n, func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		idx = idx[:cfg.MaxTrain]
	}

	mod.x = make([][]float64, len(idx))
	mod.y = make([]float64, len(idx))
	for out, i := range idx {
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			v := cols[j][i]
			if math.IsNaN(v) {
				row[j] = 0
			} else {
				row[j] = (v - mod.mean[j]) / mod.std[j]
			}
		}
		mod.x[out] = row
		mod.y[out] = labels[i]
	}
	return mod, nil
}

// distHeap is a bounded max-heap of (distance, label) pairs.
type distHeap []struct{ d, y float64 }

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d > h[j].d } // max-heap
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(struct{ d, y float64 })) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// PredictRow returns the fraction of positive labels among the k nearest
// training rows of a raw input row.
func (mod *Model) PredictRow(row []float64) float64 {
	q := make([]float64, len(row))
	for j, v := range row {
		if math.IsNaN(v) {
			q[j] = 0
		} else {
			q[j] = (v - mod.mean[j]) / mod.std[j]
		}
	}
	h := make(distHeap, 0, mod.k+1)
	for i, x := range mod.x {
		d := 0.0
		for j, v := range q {
			diff := v - x[j]
			d += diff * diff
			if len(h) == mod.k && d > h[0].d {
				break // early abandon: already worse than the k-th best
			}
		}
		if len(h) < mod.k {
			heap.Push(&h, struct{ d, y float64 }{d, mod.y[i]})
		} else if d < h[0].d {
			h[0] = struct{ d, y float64 }{d, mod.y[i]}
			heap.Fix(&h, 0)
		}
	}
	if len(h) == 0 {
		return 0.5
	}
	pos := 0.0
	for _, it := range h {
		if it.y > 0.5 {
			pos++
		}
	}
	return pos / float64(len(h))
}

// Predict scores column-major data.
func (mod *Model) Predict(cols [][]float64) []float64 {
	if len(cols) == 0 {
		return nil
	}
	n := len(cols[0])
	out := make([]float64, n)
	row := make([]float64, len(cols))
	for i := 0; i < n; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		out[i] = mod.PredictRow(row)
	}
	return out
}
