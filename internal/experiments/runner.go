// Package experiments contains the harness that regenerates every table and
// figure of the paper's evaluation (Section V): Table III (classification
// performance), Table V (execution time), Table VI (feature stability),
// Table VIII (business datasets), Fig. 3 (feature importance), Fig. 4
// (performance across iterations), plus the search-space reduction and
// path-assumption analyses of Section IV. The cmd/safe-bench binary and the
// root bench_test.go both drive this package.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/clf"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/frame"
	"repro/internal/metrics"
)

// Method identifies a feature engineering method under comparison.
type Method string

// The six methods of Table III.
const (
	ORIG Method = "ORIG" // original features, no engineering
	FCT  Method = "FCT"  // FCTree
	TFC  Method = "TFC"
	RAND Method = "RAND"
	IMP  Method = "IMP"
	SAFE Method = "SAFE"
)

// AllMethods returns the Table III method order.
func AllMethods() []Method { return []Method{ORIG, FCT, TFC, RAND, IMP, SAFE} }

// FastMethods returns the methods compared on business data (Table VIII):
// TFC and FCTree are excluded there because "the execution time is too long".
func FastMethods() []Method { return []Method{ORIG, RAND, IMP, SAFE} }

// Options tunes the harness globally.
type Options struct {
	// Scale shrinks dataset row counts ((0,1]; 1 = the paper's sizes).
	Scale float64
	// BusinessScale shrinks the Table VII business datasets (default 0.01).
	BusinessScale float64
	// Repeats is how many seeds each (dataset, method, classifier) cell is
	// averaged over (the paper uses 100/10; default 3 keeps runs tractable).
	Repeats int
	// Datasets restricts benchmark datasets by name (nil = all 12).
	Datasets []string
	// Classifiers restricts the evaluator set (nil = all 9).
	Classifiers []string
	// Methods restricts the methods (nil = all 6).
	Methods []Method
	// Seed offsets all RNG seeds.
	Seed int64
}

// DefaultOptions returns a configuration that regenerates all tables at
// reduced scale in minutes rather than hours.
func DefaultOptions() Options {
	return Options{Scale: 0.1, BusinessScale: 0.005, Repeats: 3}
}

func (o Options) normalise() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 0.1
	}
	if o.BusinessScale <= 0 || o.BusinessScale > 1 {
		o.BusinessScale = 0.005
	}
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	if len(o.Classifiers) == 0 {
		o.Classifiers = clf.Names()
	}
	if len(o.Methods) == 0 {
		o.Methods = AllMethods()
	}
	return o
}

func (o Options) benchmarkSpecs() []datagen.Spec {
	specs := datagen.BenchmarkSpecs(o.Scale)
	if len(o.Datasets) == 0 {
		return specs
	}
	want := make(map[string]bool, len(o.Datasets))
	for _, d := range o.Datasets {
		want[d] = true
	}
	out := specs[:0]
	for _, s := range specs {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// BuildPipeline runs one feature engineering method on the training frame
// and returns its pipeline and wall-clock fit time. ORIG returns an identity
// pipeline in ~zero time.
func BuildPipeline(method Method, train *frame.Frame, seed int64) (*core.Pipeline, time.Duration, error) {
	start := time.Now()
	var (
		p   *core.Pipeline
		err error
	)
	switch method {
	case ORIG:
		p = identityPipeline(train)
	case FCT:
		p, err = baselines.FCTree(train, baselines.FCTreeConfig{Seed: seed})
	case TFC:
		p, err = baselines.TFC(train, baselines.TFCConfig{Seed: seed})
	case RAND:
		p, err = baselines.Rand(train, baselines.RandConfig{
			Selection: core.DefaultSelectionConfig(), Seed: seed,
		})
	case IMP:
		p, err = baselines.Imp(train, baselines.ImpConfig{
			Selection: core.DefaultSelectionConfig(), Seed: seed,
		})
	case SAFE:
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		var eng *core.Engineer
		eng, err = core.New(cfg)
		if err == nil {
			p, _, err = eng.Fit(train)
		}
	default:
		err = fmt.Errorf("experiments: unknown method %q", method)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: %s: %w", method, err)
	}
	return p, time.Since(start), nil
}

func identityPipeline(train *frame.Frame) *core.Pipeline {
	names := train.Names()
	return &core.Pipeline{OriginalNames: names, Output: names}
}

// EvaluateAUC transforms train/test through the pipeline, fits the named
// classifier and returns test AUC.
func EvaluateAUC(p *core.Pipeline, classifier string, train, test *frame.Frame, seed int64) (float64, error) {
	trNew, err := p.Transform(train)
	if err != nil {
		return 0, err
	}
	teNew, err := p.Transform(test)
	if err != nil {
		return 0, err
	}
	return evaluateTransformed(trNew, teNew, classifier, seed)
}

// evaluateTransformed fits a classifier on already-transformed frames; the
// table runners transform once per method and reuse across classifiers.
func evaluateTransformed(train, test *frame.Frame, classifier string, seed int64) (float64, error) {
	model, err := clf.Train(classifier, colsOf(train), train.Label, seed)
	if err != nil {
		return 0, err
	}
	return metrics.AUC(model.Predict(colsOf(test)), test.Label), nil
}

func intersect(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, x := range b {
		inB[x] = true
	}
	var out []string
	for _, x := range a {
		if inB[x] {
			out = append(out, x)
		}
	}
	return out
}

func colsOf(f *frame.Frame) [][]float64 {
	cols := make([][]float64, f.NumCols())
	for j := range cols {
		cols[j] = f.Columns[j].Values
	}
	return cols
}
