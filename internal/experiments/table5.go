package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/datagen"
)

// Table5Row is the execution time of every method's feature engineering step
// on one dataset.
type Table5Row struct {
	Dataset string
	Seconds map[Method]float64
}

// Table5Result holds the execution-time comparison.
type Table5Result struct {
	Rows []Table5Row
	// SafeOverFCT and SafeOverTFC are the mean ratios of SAFE's time to the
	// baselines' (the paper reports 0.13x and 0.08x).
	SafeOverFCT float64
	SafeOverTFC float64
}

// RunTable5 reproduces Table V: wall-clock execution time of the feature
// engineering step (pipeline fit only; classifier training excluded) per
// method per dataset.
func RunTable5(opts Options, w io.Writer) (*Table5Result, error) {
	opts = opts.normalise()
	// ORIG is excluded in the paper's Table V (it has no FE step).
	methods := make([]Method, 0, len(opts.Methods))
	for _, m := range opts.Methods {
		if m != ORIG {
			methods = append(methods, m)
		}
	}

	res := &Table5Result{}
	var ratioFCT, ratioTFC float64
	var nFCT, nTFC int

	tb := newTable(append([]string{"Dataset"}, methodsAsStrings(methods)...)...)
	for _, spec := range opts.benchmarkSpecs() {
		spec.Seed += opts.Seed
		ds, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		row := Table5Row{Dataset: spec.Name, Seconds: make(map[Method]float64)}
		for _, method := range methods {
			var total time.Duration
			for rep := 0; rep < opts.Repeats; rep++ {
				_, elapsed, err := BuildPipeline(method, ds.Train, opts.Seed+int64(rep)*7907)
				if err != nil {
					return nil, err
				}
				total += elapsed
			}
			row.Seconds[method] = total.Seconds() / float64(opts.Repeats)
		}
		res.Rows = append(res.Rows, row)

		cells := []string{spec.Name}
		for _, m := range methods {
			cells = append(cells, fmt.Sprintf("%.2f", row.Seconds[m]))
		}
		tb.addRow(cells...)

		if s, ok := row.Seconds[SAFE]; ok {
			if f, ok2 := row.Seconds[FCT]; ok2 && f > 0 {
				ratioFCT += s / f
				nFCT++
			}
			if tf, ok2 := row.Seconds[TFC]; ok2 && tf > 0 {
				ratioTFC += s / tf
				nTFC++
			}
		}
	}
	if nFCT > 0 {
		res.SafeOverFCT = ratioFCT / float64(nFCT)
	}
	if nTFC > 0 {
		res.SafeOverTFC = ratioTFC / float64(nTFC)
	}
	if w != nil {
		tb.render(w, "Table V (execution time of the FE step, seconds):")
		fmt.Fprintf(w, "SAFE time as a fraction of FCTree: %.2fx (paper: 0.13x); of TFC: %.2fx (paper: 0.08x)\n\n",
			res.SafeOverFCT, res.SafeOverTFC)
	}
	return res, nil
}
