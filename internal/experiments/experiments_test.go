package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datagen"
)

// tinyOptions keeps harness tests fast: one small dataset, two classifiers,
// one repeat.
func tinyOptions() Options {
	return Options{
		Scale:         0.03,
		BusinessScale: 0.002,
		Repeats:       1,
		Datasets:      []string{"banknote"},
		Classifiers:   []string{"LR", "XGB"},
		Seed:          1,
	}
}

func TestBuildPipelineAllMethods(t *testing.T) {
	ds, err := datagen.Generate(datagen.Spec{
		Name: "tiny", Train: 800, Test: 300, Dim: 8,
		Interactions: 3, SignalScale: 2.5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range AllMethods() {
		p, elapsed, err := BuildPipeline(m, ds.Train, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if p.NumFeatures() == 0 {
			t.Errorf("%s: empty pipeline", m)
		}
		if m == ORIG && elapsed.Seconds() > 1 {
			t.Errorf("ORIG took %v", elapsed)
		}
		auc, err := EvaluateAUC(p, "XGB", ds.Train, ds.Test, 1)
		if err != nil {
			t.Fatalf("%s eval: %v", m, err)
		}
		if auc < 0.5 {
			t.Errorf("%s: XGB AUC = %v, want >= 0.5", m, auc)
		}
	}
}

func TestBuildPipelineUnknownMethod(t *testing.T) {
	ds, _ := datagen.Generate(datagen.Spec{Name: "t", Train: 200, Test: 100, Dim: 4, Seed: 1})
	if _, _, err := BuildPipeline(Method("nope"), ds.Train, 1); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestRunTable3Smoke(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunTable3(tinyOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 { // 1 dataset x 2 classifiers
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		for m, auc := range c.AUC {
			if auc < 0 || auc > 1 {
				t.Errorf("%s/%s/%s AUC = %v", c.Dataset, c.Classifier, m, auc)
			}
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Table III") || !strings.Contains(out, "SAFE") {
		t.Errorf("output missing headers:\n%s", out)
	}
}

func TestRunTable5Smoke(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunTable5(tinyOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	for m, s := range res.Rows[0].Seconds {
		if s < 0 {
			t.Errorf("%s negative time %v", m, s)
		}
	}
	if _, ok := res.Rows[0].Seconds[ORIG]; ok {
		t.Error("ORIG should be excluded from Table V")
	}
}

func TestRunTable6Smoke(t *testing.T) {
	opts := tinyOptions()
	opts.Methods = []Method{RAND, IMP, SAFE} // skip FCT for speed
	var buf bytes.Buffer
	res, err := RunTable6(opts, 3, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 3 {
		t.Errorf("trials = %d, want 3", res.Trials)
	}
	for _, row := range res.Rows {
		for m, jsd := range row.JSD {
			if jsd < 0 {
				t.Errorf("%s JSD = %v, want >= 0", m, jsd)
			}
		}
	}
}

func TestRunTable8Smoke(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunTable8(tinyOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 { // 3 datasets x {LR, XGB}
		t.Fatalf("got %d cells, want 6", len(res.Cells))
	}
	if !strings.Contains(buf.String(), "Data1") {
		t.Error("output missing Data1")
	}
}

func TestRunFig3Smoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunFig3(tinyOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	total := r.OriginalShare + r.GeneratedShare
	if total < 0.9 || total > 1.1 {
		t.Errorf("importance shares sum to %v, want ~1", total)
	}
}

func TestRunFig4Smoke(t *testing.T) {
	var buf bytes.Buffer
	series, err := RunFig4(tinyOptions(), 2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].AUC) != 2 {
		t.Fatalf("series shape wrong: %+v", series)
	}
}

func TestRunSearchSpaceSmoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunSearchSpace(tinyOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PathBound > r.Exhaust {
			t.Errorf("%s: T* (%d) exceeds T (%d)", r.Dataset, r.PathBound, r.Exhaust)
		}
	}
}

func TestRunAssumptionsSmoke(t *testing.T) {
	opts := tinyOptions()
	opts.Datasets = []string{"wind"} // needs enough features for 3 buckets
	var buf bytes.Buffer
	rows, err := RunAssumptions(opts, 5, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.SamePathAUC < 0.5 && r.SamePathAUC != 0 {
		t.Errorf("same-path folded AUC = %v, want >= 0.5", r.SamePathAUC)
	}
}

func TestRunAblationSmoke(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunAblation(tinyOptions(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // 1 dataset x 7 variants
		t.Fatalf("got %d ablation rows, want 7", len(rows))
	}
	variants := map[string]bool{}
	for _, r := range rows {
		variants[r.Variant] = true
		if r.AUC < 0 || r.AUC > 1 {
			t.Errorf("%s AUC = %v", r.Variant, r.AUC)
		}
		if r.Width == 0 {
			t.Errorf("%s produced no features", r.Variant)
		}
	}
	if !variants["default"] || !variants["gamma-double"] {
		t.Errorf("missing variants: %v", variants)
	}
}
