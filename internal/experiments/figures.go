package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ensemble"
	"repro/internal/frame"
)

// Fig3Row reports random-forest importance mass of generated vs original
// features on one dataset (the paper's Fig. 3 bar charts, reduced to their
// headline statistic: generated features dominate the importance ranking).
type Fig3Row struct {
	Dataset string
	// OriginalShare and GeneratedShare are the summed RF importances of
	// each group (they sum to ~1).
	OriginalShare  float64
	GeneratedShare float64
	// TopK lists the names of the top-10 most important features, for
	// qualitative inspection.
	TopK []string
}

// RunFig3 reproduces Fig. 3: combine the M original features with the
// top-ranked SAFE-generated features (up to M) and score importance with a
// random forest. The paper's observation — generated features (orange) are
// relatively more important than originals (blue) — corresponds here to
// GeneratedShare exceeding its feature-count share.
func RunFig3(opts Options, w io.Writer) ([]Fig3Row, error) {
	opts = opts.normalise()
	var out []Fig3Row
	tb := newTable("Dataset", "#orig", "#gen", "orig share", "gen share", "top feature")
	for _, spec := range opts.benchmarkSpecs() {
		spec.Seed += opts.Seed
		ds, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		p, _, err := BuildPipeline(SAFE, ds.Train, opts.Seed+3)
		if err != nil {
			return nil, err
		}
		row, err := fig3ForDataset(spec.Name, ds.Train, p, opts.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, *row)
		top := ""
		if len(row.TopK) > 0 {
			top = row.TopK[0]
		}
		nGen := p.NumDerived()
		if nGen > ds.Train.NumCols() {
			nGen = ds.Train.NumCols()
		}
		tb.addRow(spec.Name,
			fmt.Sprintf("%d", ds.Train.NumCols()),
			fmt.Sprintf("%d", nGen),
			fmt.Sprintf("%.3f", row.OriginalShare),
			fmt.Sprintf("%.3f", row.GeneratedShare),
			top)
	}
	if w != nil {
		tb.render(w, "Fig. 3 (random-forest importance share: original vs SAFE-generated features):")
	}
	return out, nil
}

func fig3ForDataset(name string, train *frame.Frame, p *core.Pipeline, seed int64) (*Fig3Row, error) {
	orig := make(map[string]bool, len(p.OriginalNames))
	for _, n := range p.OriginalNames {
		orig[n] = true
	}
	// Combined frame: all originals + generated outputs (up to M of them).
	transformed, err := p.Transform(train)
	if err != nil {
		return nil, err
	}
	combined := &frame.Frame{Label: train.Label}
	for _, c := range train.Columns {
		combined.AddColumn(c.Name, c.Values)
	}
	m := train.NumCols()
	added := 0
	for _, c := range transformed.Columns {
		if orig[c.Name] || added >= m {
			continue
		}
		combined.AddColumn(c.Name, c.Values)
		added++
	}

	cfg := ensemble.DefaultForestConfig()
	cfg.Seed = seed
	f, err := ensemble.TrainForest(colsOf(combined), combined.Label, cfg)
	if err != nil {
		return nil, err
	}
	imp := f.FeatureImportance()

	row := &Fig3Row{Dataset: name}
	type ni struct {
		name string
		imp  float64
	}
	var all []ni
	for j, c := range combined.Columns {
		all = append(all, ni{c.Name, imp[j]})
		if orig[c.Name] {
			row.OriginalShare += imp[j]
		} else {
			row.GeneratedShare += imp[j]
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].imp > all[j].imp })
	for i := 0; i < 10 && i < len(all); i++ {
		row.TopK = append(row.TopK, all[i].name)
	}
	return row, nil
}

// Fig4Series is test AUC per iteration round for one dataset.
type Fig4Series struct {
	Dataset string
	AUC     []float64 // index = round-1
}

// RunFig4 reproduces Fig. 4: SAFE run with nIter = rounds; after each round
// the selected representation is evaluated with XGBoost on the test set.
// The paper's observation: AUC improves over the first rounds, then goes
// stable.
func RunFig4(opts Options, rounds int, w io.Writer) ([]Fig4Series, error) {
	opts = opts.normalise()
	if rounds <= 0 {
		rounds = 5
	}
	var out []Fig4Series
	tb := newTable(append([]string{"Dataset"}, roundHeaders(rounds)...)...)
	for _, spec := range opts.benchmarkSpecs() {
		spec.Seed += opts.Seed
		ds, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		series := Fig4Series{Dataset: spec.Name}
		for r := 1; r <= rounds; r++ {
			cfg := core.DefaultConfig()
			cfg.Iterations = r
			cfg.Seed = opts.Seed + 17
			eng, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			p, _, err := eng.Fit(ds.Train)
			if err != nil {
				return nil, err
			}
			auc, err := EvaluateAUC(p, "XGB", ds.Train, ds.Test, opts.Seed+17)
			if err != nil {
				return nil, err
			}
			series.AUC = append(series.AUC, auc)
		}
		out = append(out, series)
		cells := []string{spec.Name}
		for _, a := range series.AUC {
			cells = append(cells, fmt.Sprintf("%.2f", 100*a))
		}
		tb.addRow(cells...)
	}
	if w != nil {
		tb.render(w, fmt.Sprintf("Fig. 4 (XGB test 100xAUC after k SAFE iterations, k=1..%d):", rounds))
	}
	return out, nil
}

func roundHeaders(rounds int) []string {
	out := make([]string, rounds)
	for i := range out {
		out[i] = fmt.Sprintf("iter%d", i+1)
	}
	return out
}
