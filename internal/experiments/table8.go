package experiments

import (
	"fmt"
	"io"

	"repro/internal/clf"
	"repro/internal/datagen"
)

// Table8Cell is one (dataset, classifier, method) AUC on business data.
type Table8Cell struct {
	Dataset    string
	Classifier string
	AUC        map[Method]float64
}

// Table8Result holds the business-dataset evaluation.
type Table8Result struct {
	Cells []Table8Cell
}

// RunTable8 reproduces Table VIII: the three fraud-detection business
// datasets (Table VII shapes, scaled; see DESIGN.md §3) evaluated with LR,
// RF and XGB over {ORIG, RAND, IMP, SAFE}. TFC and FCTree are excluded as
// in the paper (execution time too long at this scale).
func RunTable8(opts Options, w io.Writer) (*Table8Result, error) {
	opts = opts.normalise()
	methods := FastMethods()
	// The paper evaluates LR/RF/XGB at business scale; honour an explicit
	// classifier subset but never run the slow evaluators here.
	classifiers := intersect(opts.Classifiers, clf.FastNames())
	if len(classifiers) == 0 {
		classifiers = clf.FastNames()
	}

	res := &Table8Result{}
	for _, spec := range datagen.BusinessSpecs(opts.BusinessScale) {
		spec.Seed += opts.Seed
		ds, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		tb := newTable(append([]string{"CLF"}, methodsAsStrings(methods)...)...)
		cellsByCLF := make(map[string]*Table8Cell)
		for _, c := range classifiers {
			cell := &Table8Cell{Dataset: spec.Name, Classifier: c, AUC: make(map[Method]float64)}
			cellsByCLF[c] = cell
		}
		for _, method := range methods {
			p, _, err := BuildPipeline(method, ds.Train, opts.Seed+11)
			if err != nil {
				return nil, err
			}
			trNew, err := p.Transform(ds.Train)
			if err != nil {
				return nil, err
			}
			teNew, err := p.Transform(ds.Test)
			if err != nil {
				return nil, err
			}
			for _, c := range classifiers {
				auc, err := evaluateTransformed(trNew, teNew, c, opts.Seed+11)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", spec.Name, method, c, err)
				}
				cellsByCLF[c].AUC[method] = auc
			}
		}
		for _, c := range classifiers {
			cell := cellsByCLF[c]
			res.Cells = append(res.Cells, *cell)
			row := []string{c}
			for _, m := range methods {
				row = append(row, fmt.Sprintf("%.2f", 100*cell.AUC[m]))
			}
			tb.addRow(row...)
		}
		if w != nil {
			tb.render(w, fmt.Sprintf(
				"Table VIII (business dataset %s: %d train rows, %d features, %.1f%% positives, 100xAUC):",
				spec.Name, ds.Train.NumRows(), ds.Train.NumCols(), 100*ds.Train.PositiveRate()))
		}
	}
	return res, nil
}
