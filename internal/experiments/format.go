package experiments

import (
	"fmt"
	"io"
	"strings"
)

// table accumulates rows and renders a column-aligned ASCII table, matching
// the look of the paper's tables well enough for side-by-side comparison.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addRowf(format string, args ...interface{}) {
	t.addRow(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) render(w io.Writer, title string) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	fmt.Fprintln(w, line(t.header))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
	fmt.Fprintln(w)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
