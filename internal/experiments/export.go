package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ExportJSON writes an experiment's structured result as indented JSON under
// dir/name.json, creating dir as needed. The cmd/safe-bench -json flag uses
// this so downstream analysis (plotting Fig. 3/4, regression-tracking table
// values) does not have to parse ASCII tables.
func ExportJSON(dir, name string, v interface{}) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: export: %w", err)
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: export %s: %w", name, err)
	}
	path := filepath.Join(dir, name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("experiments: export: %w", err)
	}
	return nil
}
