package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/datagen"
	"repro/internal/gbdt"
	"repro/internal/metrics"
	"repro/internal/operators"
)

// SearchSpaceRow compares the exhaustive candidate count T (Eq. 3, binary
// operators) with SAFE's path-restricted count T* (Eq. 5) on one dataset.
type SearchSpaceRow struct {
	Dataset   string
	Features  int
	Exhaust   int // T: pairs x operators over all features
	PathBound int // T*: combinations actually mined from XGBoost paths
	Reduction float64
}

// RunSearchSpace quantifies the T* << T claim of Section IV-B: it trains
// the default miner and counts unique same-path pair combinations against
// the exhaustive pair count, both multiplied by the 6 effective binary
// operators (+, −, ×, ÷ with both orders for the non-commutative two).
func RunSearchSpace(opts Options, w io.Writer) ([]SearchSpaceRow, error) {
	opts = opts.normalise()
	const effectiveOps = 6
	var out []SearchSpaceRow
	tb := newTable("Dataset", "M", "T (exhaustive)", "T* (paths)", "reduction")
	for _, spec := range opts.benchmarkSpecs() {
		spec.Seed += opts.Seed
		ds, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		cfg := gbdt.DefaultConfig()
		cfg.NumTrees = 20
		cfg.MaxDepth = 4
		cfg.Seed = opts.Seed
		model, err := gbdt.Train(colsOf(ds.Train), ds.Train.Label, nil, cfg)
		if err != nil {
			return nil, err
		}
		pairs := make(map[[2]int]bool)
		for _, p := range model.Paths() {
			for i := 0; i < len(p.Features); i++ {
				for j := i + 1; j < len(p.Features); j++ {
					a, b := p.Features[i], p.Features[j]
					if a > b {
						a, b = b, a
					}
					pairs[[2]int{a, b}] = true
				}
			}
		}
		m := ds.Train.NumCols()
		row := SearchSpaceRow{
			Dataset:   spec.Name,
			Features:  m,
			Exhaust:   m * (m - 1) / 2 * effectiveOps,
			PathBound: len(pairs) * effectiveOps,
		}
		if row.PathBound > 0 {
			row.Reduction = float64(row.Exhaust) / float64(row.PathBound)
		}
		out = append(out, row)
		tb.addRow(spec.Name,
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", row.Exhaust),
			fmt.Sprintf("%d", row.PathBound),
			fmt.Sprintf("%.1fx", row.Reduction))
	}
	if w != nil {
		tb.render(w, "Search-space reduction (Section IV-B, Eq. 3 vs Eq. 5, binary operators):")
	}
	return out, nil
}

// AssumptionResult quantifies Section IV-B's two assumptions on one dataset:
// candidate pairs are bucketed by provenance and the mean test AUC
// (folded around 0.5) of the features each bucket generates is compared.
type AssumptionResult struct {
	Dataset       string
	SamePathAUC   float64 // pairs co-occurring on an XGBoost path
	CrossPathAUC  float64 // both split features, never on the same path
	NonSplitAUC   float64 // at least one non-split feature
	PairsPerClass int
}

// RunAssumptions empirically verifies the path assumptions: features
// generated from same-path pairs should be more predictive than features
// from cross-path split pairs, which in turn beat pairs touching non-split
// features. This is the mechanism behind the SAFE > IMP > RAND ordering of
// Table III.
func RunAssumptions(opts Options, pairsPerClass int, w io.Writer) ([]AssumptionResult, error) {
	opts = opts.normalise()
	if pairsPerClass <= 0 {
		pairsPerClass = 20
	}
	ops, err := operators.NewRegistry().GetAll(operators.DefaultExperimentOperators())
	if err != nil {
		return nil, err
	}

	var out []AssumptionResult
	tb := newTable("Dataset", "same-path", "cross-path", "non-split")
	for _, spec := range opts.benchmarkSpecs() {
		spec.Seed += opts.Seed
		ds, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		cols := colsOf(ds.Train)
		testCols := colsOf(ds.Test)
		cfg := gbdt.DefaultConfig()
		cfg.NumTrees = 20
		cfg.MaxDepth = 4
		cfg.Seed = opts.Seed
		model, err := gbdt.Train(cols, ds.Train.Label, nil, cfg)
		if err != nil {
			return nil, err
		}

		samePath := make(map[[2]int]bool)
		for _, p := range model.Paths() {
			for i := 0; i < len(p.Features); i++ {
				for j := i + 1; j < len(p.Features); j++ {
					a, b := ordered(p.Features[i], p.Features[j])
					samePath[[2]int{a, b}] = true
				}
			}
		}
		split := model.SplitFeatures()
		isSplit := make(map[int]bool, len(split))
		for _, f := range split {
			isSplit[f] = true
		}
		m := ds.Train.NumCols()
		var same, cross, non [][2]int
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				key := [2]int{a, b}
				switch {
				case samePath[key]:
					same = append(same, key)
				case isSplit[a] && isSplit[b]:
					cross = append(cross, key)
				default:
					non = append(non, key)
				}
			}
		}
		rng := rand.New(rand.NewSource(opts.Seed + 23))
		res := AssumptionResult{Dataset: spec.Name, PairsPerClass: pairsPerClass}
		res.SamePathAUC = meanGeneratedAUC(sample(same, pairsPerClass, rng), ops, cols, testCols, ds)
		res.CrossPathAUC = meanGeneratedAUC(sample(cross, pairsPerClass, rng), ops, cols, testCols, ds)
		res.NonSplitAUC = meanGeneratedAUC(sample(non, pairsPerClass, rng), ops, cols, testCols, ds)
		out = append(out, res)
		tb.addRow(spec.Name,
			fmt.Sprintf("%.4f", res.SamePathAUC),
			fmt.Sprintf("%.4f", res.CrossPathAUC),
			fmt.Sprintf("%.4f", res.NonSplitAUC))
	}
	if w != nil {
		tb.render(w, "Path assumptions (mean |AUC-0.5|+0.5 of generated features by pair provenance; Section IV-B):")
	}
	return out, nil
}

func ordered(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}

func sample(pairs [][2]int, k int, rng *rand.Rand) [][2]int {
	if len(pairs) <= k {
		return pairs
	}
	idx := rng.Perm(len(pairs))[:k]
	sort.Ints(idx)
	out := make([][2]int, 0, k)
	for _, i := range idx {
		out = append(out, pairs[i])
	}
	return out
}

// meanGeneratedAUC generates op(a,b) features for each pair and returns the
// mean folded test AUC (0.5 + |AUC - 0.5|, direction-agnostic single-feature
// predictiveness).
func meanGeneratedAUC(pairs [][2]int, ops []operators.Operator, trainCols, testCols [][]float64, ds *datagen.Dataset) float64 {
	if len(pairs) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, pr := range pairs {
		for _, op := range ops {
			if op.Arity() != operators.Binary {
				continue
			}
			applier, err := op.Fit([][]float64{trainCols[pr[0]], trainCols[pr[1]]})
			if err != nil {
				continue
			}
			vals := applier.Transform([][]float64{testCols[pr[0]], testCols[pr[1]]})
			for i, v := range vals {
				if v != v {
					vals[i] = 0
				}
			}
			auc := metrics.AUC(vals, ds.Test.Label)
			if auc < 0.5 {
				auc = 1 - auc
			}
			sum += auc
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
