package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datagen"
)

func TestTableRendering(t *testing.T) {
	tb := newTable("Name", "Value")
	tb.addRow("short", "1.00")
	tb.addRow("a-much-longer-name", "2.50")
	var buf bytes.Buffer
	tb.render(&buf, "Title:")
	out := buf.String()
	if !strings.HasPrefix(out, "Title:\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: "1.00" and "2.50" start at the same offset.
	i1 := strings.Index(lines[3], "1.00")
	i2 := strings.Index(lines[4], "2.50")
	if i1 != i2 {
		t.Errorf("columns misaligned: %d vs %d\n%s", i1, i2, out)
	}
}

func TestIntersect(t *testing.T) {
	got := intersect([]string{"a", "b", "c"}, []string{"b", "c", "d"})
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("intersect = %v", got)
	}
	if got := intersect(nil, []string{"a"}); got != nil {
		t.Errorf("intersect(nil, ...) = %v", got)
	}
}

func TestIdentityPipeline(t *testing.T) {
	ds, err := datagen.Generate(datagen.Spec{Name: "id", Train: 100, Test: 50, Dim: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := identityPipeline(ds.Train)
	out, err := p.Transform(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCols() != ds.Test.NumCols() {
		t.Errorf("identity changed width: %d vs %d", out.NumCols(), ds.Test.NumCols())
	}
	for j := range out.Columns {
		if out.Columns[j].Values[0] != ds.Test.Columns[j].Values[0] {
			t.Errorf("identity changed values in column %d", j)
		}
	}
}

func TestStabilityJSDBounds(t *testing.T) {
	// Perfectly stable: every feature appears in all trials -> JSD 0.
	counts := map[string]int{"a": 5, "b": 5, "c": 5}
	if got := stabilityJSD(counts, 3, 5); got > 1e-9 {
		t.Errorf("stable JSD = %v, want ~0", got)
	}
	// Fully unstable: every feature appears once.
	unstable := map[string]int{}
	for i := 0; i < 15; i++ {
		unstable[string(rune('a'+i))] = 1
	}
	ju := stabilityJSD(unstable, 3, 5)
	if ju <= 0 {
		t.Errorf("unstable JSD = %v, want > 0", ju)
	}
	// Degenerate inputs.
	if got := stabilityJSD(nil, 3, 5); got != 0 {
		t.Errorf("empty counts JSD = %v", got)
	}
	if got := stabilityJSD(counts, 0, 5); got != 0 {
		t.Errorf("zero budget JSD = %v", got)
	}
}

func TestOptionsNormalise(t *testing.T) {
	o := Options{}.normalise()
	if o.Scale <= 0 || o.Repeats <= 0 || len(o.Classifiers) != 9 || len(o.Methods) != 6 {
		t.Errorf("normalise defaults wrong: %+v", o)
	}
	// Dataset filter.
	o2 := Options{Datasets: []string{"magic", "nope"}}.normalise()
	specs := o2.benchmarkSpecs()
	if len(specs) != 1 || specs[0].Name != "magic" {
		t.Errorf("dataset filter = %v", specs)
	}
}

func TestSampleHelper(t *testing.T) {
	pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}
	got := sample(pairs, 3, newRand(1))
	if len(got) != 3 {
		t.Fatalf("sampled %d, want 3", len(got))
	}
	// Asking for more than available returns all.
	all := sample(pairs, 10, newRand(2))
	if len(all) != 5 {
		t.Errorf("oversample = %d, want 5", len(all))
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
