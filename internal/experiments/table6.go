package experiments

import (
	"fmt"
	"io"

	"repro/internal/datagen"
	"repro/internal/stats"
)

// Table6Row is the feature-stability JSD of each method on one dataset.
type Table6Row struct {
	Dataset string
	JSD     map[Method]float64
}

// Table6Result holds the stability comparison.
type Table6Result struct {
	Rows []Table6Row
	// Trials is the number of repeated FE runs (the paper's T = 100).
	Trials int
}

// RunTable6 reproduces Table VI: each method's feature engineering step is
// repeated T times with different seeds; the distribution of generated
// feature identities across runs is compared against the ideal distribution
// (every run generating the same 2M features) by Jensen-Shannon divergence
// (Eqs. 14-15). Lower is more stable. TFC is excluded, as in the paper
// ("the execution time of TFC is too long").
func RunTable6(opts Options, trials int, w io.Writer) (*Table6Result, error) {
	opts = opts.normalise()
	if trials <= 0 {
		trials = 20
	}
	methods := make([]Method, 0, len(opts.Methods))
	for _, m := range opts.Methods {
		if m == ORIG || m == TFC {
			continue
		}
		methods = append(methods, m)
	}

	res := &Table6Result{Trials: trials}
	tb := newTable(append([]string{"Dataset"}, methodsAsStrings(methods)...)...)

	for _, spec := range opts.benchmarkSpecs() {
		spec.Seed += opts.Seed
		ds, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		row := Table6Row{Dataset: spec.Name, JSD: make(map[Method]float64)}
		for _, method := range methods {
			counts := make(map[string]int)
			budget := 0
			for t := 0; t < trials; t++ {
				p, _, err := BuildPipeline(method, ds.Train, opts.Seed+int64(t)*7907+1)
				if err != nil {
					return nil, err
				}
				if len(p.Output) > budget {
					budget = len(p.Output)
				}
				for _, name := range p.Output {
					counts[name]++
				}
			}
			row.JSD[method] = stabilityJSD(counts, budget, trials)
		}
		res.Rows = append(res.Rows, row)
		cells := []string{spec.Name}
		for _, m := range methods {
			cells = append(cells, fmt.Sprintf("%.4f", row.JSD[m]))
		}
		tb.addRow(cells...)
	}
	if w != nil {
		tb.render(w, fmt.Sprintf("Table VI (feature stability, JSD vs ideal; T=%d runs, lower is better):", trials))
	}
	return res, nil
}

// stabilityJSD computes the paper's stability statistic: the JSD between the
// observed distribution of generated-feature occurrences and the ideal
// distribution in which the same `budget` features appear in every one of
// the T runs.
func stabilityJSD(counts map[string]int, budget, trials int) float64 {
	if budget == 0 || len(counts) == 0 {
		return 0
	}
	actual := make([]float64, 0, len(counts))
	for _, c := range counts {
		actual = append(actual, float64(c))
	}
	// Ideal: budget features each occurring `trials` times. Pad the shorter
	// distribution with zeros via JSD's internal padding, but keep the
	// support comparable by listing ideal first.
	ideal := make([]float64, budget)
	for i := range ideal {
		ideal[i] = float64(trials)
	}
	// Sort actual descending so the most frequent features align with the
	// ideal support (the paper's Dis is sorted by occurrence count).
	sortDesc(actual)
	return stats.JSD(stats.Normalize(ideal), stats.Normalize(actual))
}

func sortDesc(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
