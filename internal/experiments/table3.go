package experiments

import (
	"fmt"
	"io"

	"repro/internal/datagen"
)

// Table3Cell is one (dataset, classifier, method) AUC measurement averaged
// over repeats.
type Table3Cell struct {
	Dataset    string
	Classifier string
	AUC        map[Method]float64
}

// Table3Result holds the full Table III reproduction.
type Table3Result struct {
	Cells []Table3Cell
	// MeanImprovement is the average (SAFE - ORIG) AUC gap in percentage
	// points across all cells — the paper reports +6.50% average relative
	// improvement on its data.
	MeanImprovement float64
}

// RunTable3 reproduces Table III: test AUC of every classifier over every
// method on every benchmark dataset, averaged over opts.Repeats seeds.
func RunTable3(opts Options, w io.Writer) (*Table3Result, error) {
	opts = opts.normalise()
	res := &Table3Result{}
	var improveSum float64
	var improveN int

	for _, spec := range opts.benchmarkSpecs() {
		spec.Seed += opts.Seed
		ds, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		// AUC sums per classifier x method.
		sums := make(map[string]map[Method]float64)
		for _, c := range opts.Classifiers {
			sums[c] = make(map[Method]float64)
		}

		for rep := 0; rep < opts.Repeats; rep++ {
			seed := opts.Seed + int64(rep)*7907
			for _, method := range opts.Methods {
				p, _, err := BuildPipeline(method, ds.Train, seed)
				if err != nil {
					return nil, err
				}
				trNew, err := p.Transform(ds.Train)
				if err != nil {
					return nil, err
				}
				teNew, err := p.Transform(ds.Test)
				if err != nil {
					return nil, err
				}
				for _, c := range opts.Classifiers {
					auc, err := evaluateTransformed(trNew, teNew, c, seed)
					if err != nil {
						return nil, fmt.Errorf("%s/%s/%s: %w", spec.Name, method, c, err)
					}
					sums[c][method] += auc
				}
			}
		}

		tb := newTable(append([]string{"CLF"}, methodsAsStrings(opts.Methods)...)...)
		for _, c := range opts.Classifiers {
			cell := Table3Cell{Dataset: spec.Name, Classifier: c, AUC: make(map[Method]float64)}
			row := []string{c}
			for _, method := range opts.Methods {
				mean := sums[c][method] / float64(opts.Repeats)
				cell.AUC[method] = mean
				row = append(row, fmt.Sprintf("%.2f", 100*mean))
			}
			res.Cells = append(res.Cells, cell)
			tb.addRow(row...)
			if safeAUC, ok := cell.AUC[SAFE]; ok {
				if origAUC, ok2 := cell.AUC[ORIG]; ok2 {
					improveSum += 100 * (safeAUC - origAUC)
					improveN++
				}
			}
		}
		if w != nil {
			tb.render(w, fmt.Sprintf("Table III (dataset %s, %d train rows, %d features, 100xAUC):",
				spec.Name, ds.Train.NumRows(), ds.Train.NumCols()))
		}
	}
	if improveN > 0 {
		res.MeanImprovement = improveSum / float64(improveN)
	}
	if w != nil {
		fmt.Fprintf(w, "Mean SAFE-vs-ORIG improvement: %+.2f AUC points (paper: +6.50%% avg)\n\n",
			res.MeanImprovement)
	}
	return res, nil
}

func methodsAsStrings(ms []Method) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = string(m)
	}
	return out
}
