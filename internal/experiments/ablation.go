package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datagen"
)

// AblationResult records test AUC (XGB evaluator) for one configuration
// variant on one dataset.
type AblationResult struct {
	Dataset string
	Variant string
	AUC     float64
	Width   int // output feature count
}

// RunAblation exercises the design choices DESIGN.md §5 calls out, on each
// selected dataset:
//
//   - selection stages: full pipeline vs no-IV vs no-Pearson vs rank-only
//   - IV binning: equal-frequency (paper) vs equal-width
//   - γ sensitivity: 0.5x, 1x (default 2M), 2x
//
// Each variant's output representation is evaluated with XGBoost on the
// test set.
func RunAblation(opts Options, w io.Writer) ([]AblationResult, error) {
	opts = opts.normalise()
	var out []AblationResult
	tb := newTable("Dataset", "Variant", "width", "100xAUC")

	for _, spec := range opts.benchmarkSpecs() {
		spec.Seed += opts.Seed
		ds, err := datagen.Generate(spec)
		if err != nil {
			return nil, err
		}
		m := ds.Train.NumCols()

		variants := []struct {
			name string
			cfg  func() core.Config
		}{
			{"default", func() core.Config { return core.DefaultConfig() }},
			{"no-iv-filter", func() core.Config {
				c := core.DefaultConfig()
				c.IVThreshold = 0 // keep everything with any signal
				return c
			}},
			{"pearson-off", func() core.Config {
				c := core.DefaultConfig()
				c.PearsonThreshold = 1.0 // nothing correlates above 1
				return c
			}},
			{"iv-equal-width", func() core.Config {
				c := core.DefaultConfig()
				c.IVEqualWidth = true
				return c
			}},
			{"gamma-half", func() core.Config {
				c := core.DefaultConfig()
				c.Gamma = m // default is 2M
				return c
			}},
			{"gamma-double", func() core.Config {
				c := core.DefaultConfig()
				c.Gamma = 4 * m
				return c
			}},
			{"deep-miner", func() core.Config {
				c := core.DefaultConfig()
				c.Miner.MaxDepth = 6
				return c
			}},
		}

		for _, v := range variants {
			cfg := v.cfg()
			cfg.Seed = opts.Seed + 5
			eng, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			p, _, err := eng.Fit(ds.Train)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", spec.Name, v.name, err)
			}
			auc, err := EvaluateAUC(p, "XGB", ds.Train, ds.Test, opts.Seed+5)
			if err != nil {
				return nil, err
			}
			out = append(out, AblationResult{
				Dataset: spec.Name, Variant: v.name, AUC: auc, Width: p.NumFeatures(),
			})
			tb.addRow(spec.Name, v.name, fmt.Sprintf("%d", p.NumFeatures()),
				fmt.Sprintf("%.2f", 100*auc))
		}
	}
	if w != nil {
		tb.render(w, "Ablation (DESIGN.md §5 design choices, XGB test AUC):")
	}
	return out, nil
}
