package gbdt

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// threeClassData generates a separable 3-class problem: class = argmax of
// three noisy linear scores of two features.
func threeClassData(n int, seed int64) (cols [][]float64, labels []float64) {
	rng := rand.New(rand.NewSource(seed))
	cols = [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	labels = make([]float64, n)
	for i := 0; i < n; i++ {
		x, y := rng.NormFloat64(), rng.NormFloat64()
		cols[0][i], cols[1][i] = x, y
		cols[2][i] = rng.NormFloat64() // noise
		scores := []float64{x + 0.1*rng.NormFloat64(), y + 0.1*rng.NormFloat64(), -(x + y) / 2}
		best := 0
		for c := 1; c < 3; c++ {
			if scores[c] > scores[best] {
				best = c
			}
		}
		labels[i] = float64(best)
	}
	return cols, labels
}

func TestSoftmaxTrainLearnsClasses(t *testing.T) {
	cols, labels := threeClassData(2000, 1)
	cfg := DefaultConfig()
	cfg.Objective = Softmax
	cfg.NumClass = 3
	cfg.NumTrees = 30
	model, err := Train(cols, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := model.NumGroups(); got != 3 {
		t.Fatalf("NumGroups: got %d want 3", got)
	}
	if len(model.Trees) != cfg.NumTrees*3 {
		t.Fatalf("trees: got %d want %d", len(model.Trees), cfg.NumTrees*3)
	}
	ok := 0
	row := make([]float64, 3)
	for i := range labels {
		for j := range cols {
			row[j] = cols[j][i]
		}
		probs := model.PredictRowVector(row)
		if len(probs) != 3 {
			t.Fatalf("prob vector length %d", len(probs))
		}
		var sum float64
		for _, p := range probs {
			if p < 0 || p > 1 {
				t.Fatalf("probability %g out of range", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %g", sum)
		}
		if model.PredictRow(row) == labels[i] {
			ok++
		}
	}
	if acc := float64(ok) / float64(len(labels)); acc < 0.85 {
		t.Fatalf("training accuracy %.3f, want >= 0.85", acc)
	}
}

// TestSoftmaxTrainBinnedEquivalence: TrainBinned on the internal binner's
// own codes must reproduce Train bit-for-bit for Softmax, exactly as for
// the other objectives — the property the sharded engine relies on.
func TestSoftmaxTrainBinnedEquivalence(t *testing.T) {
	cols, labels := threeClassData(800, 3)
	cfg := DefaultConfig()
	cfg.Objective = Softmax
	cfg.NumClass = 3
	cfg.NumTrees = 10

	want, err := Train(cols, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := newBinner(cols, cfg.MaxBins, cfg.pool())
	got, err := TrainBinned(&Prebinned{Codes: b.codes, Cuts: b.cuts}, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trees) != len(want.Trees) {
		t.Fatalf("tree count: got %d want %d", len(got.Trees), len(want.Trees))
	}
	for ti := range want.Trees {
		a, bnodes := want.Trees[ti].Nodes, got.Trees[ti].Nodes
		if len(a) != len(bnodes) {
			t.Fatalf("tree %d: node count %d vs %d", ti, len(a), len(bnodes))
		}
		for ni := range a {
			if a[ni] != bnodes[ni] {
				t.Fatalf("tree %d node %d differs: %+v vs %+v", ti, ni, a[ni], bnodes[ni])
			}
		}
	}
}

func TestSoftmaxPersistRoundTrip(t *testing.T) {
	cols, labels := threeClassData(500, 5)
	cfg := DefaultConfig()
	cfg.Objective = Softmax
	cfg.NumClass = 3
	cfg.NumTrees = 5
	model, err := Train(cols, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumGroups() != 3 {
		t.Fatalf("loaded NumGroups %d", loaded.NumGroups())
	}
	row := []float64{0.3, -1.2, 0.5}
	a, b := model.PredictRowVector(row), loaded.PredictRowVector(row)
	for c := range a {
		if a[c] != b[c] {
			t.Fatalf("class %d: %g vs %g after round trip", c, a[c], b[c])
		}
	}
}

func TestSoftmaxValidation(t *testing.T) {
	cols, labels := threeClassData(200, 7)
	cfg := DefaultConfig()
	cfg.Objective = Softmax
	cfg.NumClass = 3
	cfg.NumTrees = 3
	// Early stopping is unsupported for Softmax and must error cleanly.
	if _, err := TrainWithValidation(cols, labels, cols, labels, nil, cfg, 2); err == nil {
		t.Error("softmax early stopping accepted")
	}
	// Bad class labels must be rejected.
	bad := append([]float64(nil), labels...)
	bad[10] = 7
	if _, err := Train(cols, bad, nil, cfg); err == nil {
		t.Error("out-of-range class label accepted")
	}
	// NumClass < 2 must be rejected.
	cfg.NumClass = 1
	if _, err := Train(cols, labels, nil, cfg); err == nil {
		t.Error("NumClass=1 accepted")
	}
}
