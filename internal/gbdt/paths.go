package gbdt

import "sort"

// Path describes one root-to-leaf path of one tree: the distinct split
// features encountered on the way down, with the split values used for each
// (a feature may be split on several times along a path, so each feature
// carries a set of values). This is the p_j of Section IV-B of the paper.
type Path struct {
	Features []int             // distinct split features, in first-seen order
	Values   map[int][]float64 // feature -> sorted distinct split values V_i
}

// Paths enumerates every root-to-leaf path of every tree in the model. Paths
// consisting of a bare leaf (trees that never split) are omitted.
func (m *Model) Paths() []Path {
	var out []Path
	for _, t := range m.Trees {
		if len(t.Nodes) <= 1 {
			continue
		}
		var walk func(idx int, feats []int, vals map[int][]float64)
		walk = func(idx int, feats []int, vals map[int][]float64) {
			n := &t.Nodes[idx]
			if n.IsLeaf() {
				if len(feats) == 0 {
					return
				}
				p := Path{
					Features: append([]int(nil), feats...),
					Values:   make(map[int][]float64, len(vals)),
				}
				for f, vs := range vals {
					cp := append([]float64(nil), vs...)
					sort.Float64s(cp)
					cp = dedupFloats(cp)
					p.Values[f] = cp
				}
				out = append(out, p)
				return
			}
			seen := false
			for _, f := range feats {
				if f == n.Feature {
					seen = true
					break
				}
			}
			nextFeats := feats
			if !seen {
				nextFeats = append(feats, n.Feature)
			}
			vals[n.Feature] = append(vals[n.Feature], n.Threshold)
			walk(n.Left, nextFeats, vals)
			walk(n.Right, nextFeats, vals)
			vals[n.Feature] = vals[n.Feature][:len(vals[n.Feature])-1]
			if !seen && len(vals[n.Feature]) == 0 {
				delete(vals, n.Feature)
			}
		}
		walk(0, nil, make(map[int][]float64))
	}
	return out
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != xs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// SplitFeatures returns the sorted set of features that act as a split
// feature anywhere in the model. Features absent from the result are the
// paper's "non-split features".
func (m *Model) SplitFeatures() []int {
	set := make(map[int]bool)
	for _, t := range m.Trees {
		for i := range t.Nodes {
			if !t.Nodes[i].IsLeaf() {
				set[t.Nodes[i].Feature] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// GainImportance returns, per feature, the average gain across all splits in
// which the feature is used (the XGBoost "gain" importance the paper uses to
// rank candidate features). Features never used score 0.
func (m *Model) GainImportance() []float64 {
	total := make([]float64, m.NumFeat)
	count := make([]float64, m.NumFeat)
	for _, t := range m.Trees {
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if n.IsLeaf() {
				continue
			}
			total[n.Feature] += n.Gain
			count[n.Feature]++
		}
	}
	out := make([]float64, m.NumFeat)
	for j := range out {
		if count[j] > 0 {
			out[j] = total[j] / count[j]
		}
	}
	return out
}

// TotalGainImportance returns summed (not averaged) split gain per feature.
func (m *Model) TotalGainImportance() []float64 {
	total := make([]float64, m.NumFeat)
	for _, t := range m.Trees {
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if !n.IsLeaf() {
				total[n.Feature] += n.Gain
			}
		}
	}
	return total
}

// NumNodes returns the total node count across all trees (used by tests and
// complexity reporting).
func (m *Model) NumNodes() int {
	n := 0
	for _, t := range m.Trees {
		n += len(t.Nodes)
	}
	return n
}
