package gbdt

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

func TestTrainWithValidationStopsEarly(t *testing.T) {
	// Tiny noisy data: a 200-tree budget must overfit quickly, so early
	// stopping should truncate well before 200.
	rng := rand.New(rand.NewSource(31))
	n := 300
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		cols[0][i] = rng.NormFloat64()
		cols[1][i] = rng.NormFloat64()
		// Mostly noise with a weak signal.
		if cols[0][i]+2*rng.NormFloat64() > 0 {
			labels[i] = 1
		}
	}
	vcols, vlabels := linearData(200, 0, 32)

	cfg := DefaultConfig()
	cfg.NumTrees = 200
	model, err := TrainWithValidation(cols, labels, vcols, vlabels, nil, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Trees) >= 200 {
		t.Errorf("early stopping kept all %d trees", len(model.Trees))
	}
	if len(model.Trees) == 0 {
		t.Error("early stopping removed every tree")
	}
}

func TestTrainWithValidationDisabled(t *testing.T) {
	cols, labels := linearData(400, 1, 33)
	vcols, vlabels := linearData(150, 1, 34)
	cfg := DefaultConfig()
	cfg.NumTrees = 25
	model, err := TrainWithValidation(cols, labels, vcols, vlabels, nil, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Trees) != 25 {
		t.Errorf("patience 0 should train all trees, got %d", len(model.Trees))
	}
}

func TestTrainWithValidationStillAccurate(t *testing.T) {
	cols, labels := linearData(2000, 2, 35)
	vcols, vlabels := linearData(500, 2, 36)
	model, err := TrainWithValidation(cols, labels, vcols, vlabels, nil, DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	testCols, testLabels := linearData(500, 2, 37)
	if auc := metrics.AUC(model.Predict(testCols), testLabels); auc < 0.92 {
		t.Errorf("early-stopped model AUC = %v, want >= 0.92", auc)
	}
}

func TestTrainWithValidationValidatesInput(t *testing.T) {
	cols, labels := linearData(100, 0, 38)
	if _, err := TrainWithValidation(cols, labels, cols[:1], labels, nil, DefaultConfig(), 5); err == nil {
		t.Error("accepted column-count mismatch")
	}
	if _, err := TrainWithValidation(cols, labels, cols, nil, nil, DefaultConfig(), 5); err == nil {
		t.Error("accepted empty validation labels")
	}
}

func TestTrainWithValidationRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	mk := func(n int) ([][]float64, []float64) {
		c := [][]float64{make([]float64, n)}
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			c[0][i] = rng.Float64() * 5
			y[i] = 2*c[0][i] + rng.NormFloat64()*0.1
		}
		return c, y
	}
	cols, y := mk(1000)
	vcols, vy := mk(300)
	cfg := DefaultConfig()
	cfg.Objective = Squared
	cfg.NumTrees = 150
	model, err := TrainWithValidation(cols, y, vcols, vy, nil, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	preds := model.Predict(vcols)
	mse := 0.0
	for i := range preds {
		d := preds[i] - vy[i]
		mse += d * d
	}
	mse /= float64(len(preds))
	if mse > 0.5 {
		t.Errorf("validation MSE = %v, want <= 0.5", mse)
	}
}
