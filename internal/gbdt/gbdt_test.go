package gbdt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// linearData builds a dataset where y = 1[x0 + x1 > 0] with noise features.
func linearData(n, noise int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, 2+noise)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = rng.NormFloat64()
		}
	}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		if cols[0][i]+cols[1][i] > 0 {
			labels[i] = 1
		}
	}
	return cols, labels
}

// xorData builds a dataset where y = 1[x0*x1 > 0]: a pure pairwise
// interaction with no single-feature signal.
func xorData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		cols[0][i] = rng.NormFloat64()
		cols[1][i] = rng.NormFloat64()
		if cols[0][i]*cols[1][i] > 0 {
			labels[i] = 1
		}
	}
	return cols, labels
}

func TestTrainValidatesConfig(t *testing.T) {
	cols, labels := linearData(50, 0, 1)
	bad := []Config{
		{},
		{NumTrees: -1, MaxDepth: 3, LearningRate: 0.1, MaxBins: 32, Subsample: 1, ColSample: 1},
		{NumTrees: 5, MaxDepth: 0, LearningRate: 0.1, MaxBins: 32, Subsample: 1, ColSample: 1},
		{NumTrees: 5, MaxDepth: 3, LearningRate: 0, MaxBins: 32, Subsample: 1, ColSample: 1},
		{NumTrees: 5, MaxDepth: 3, LearningRate: 0.1, MaxBins: 1, Subsample: 1, ColSample: 1},
		{NumTrees: 5, MaxDepth: 3, LearningRate: 0.1, MaxBins: 32, Subsample: 0, ColSample: 1},
		{NumTrees: 5, MaxDepth: 3, LearningRate: 0.1, MaxBins: 32, Subsample: 1, ColSample: 2},
	}
	for i, cfg := range bad {
		if _, err := Train(cols, labels, nil, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := Train(nil, labels, nil, DefaultConfig()); err == nil {
		t.Error("accepted empty columns")
	}
	if _, err := Train(cols, nil, nil, DefaultConfig()); err == nil {
		t.Error("accepted empty labels")
	}
	ragged := [][]float64{{1, 2}, {1}}
	if _, err := Train(ragged, []float64{0, 1}, nil, DefaultConfig()); err == nil {
		t.Error("accepted ragged columns")
	}
}

func TestLearnsLinearBoundary(t *testing.T) {
	cols, labels := linearData(2000, 3, 2)
	model, err := Train(cols, labels, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	testCols, testLabels := linearData(500, 3, 99)
	auc := metrics.AUC(model.Predict(testCols), testLabels)
	if auc < 0.93 {
		t.Errorf("AUC on linear boundary = %v, want >= 0.93", auc)
	}
}

func TestLearnsXOR(t *testing.T) {
	cols, labels := xorData(3000, 3)
	cfg := DefaultConfig()
	cfg.MaxDepth = 4
	cfg.NumTrees = 80
	model, err := Train(cols, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testCols, testLabels := xorData(800, 77)
	auc := metrics.AUC(model.Predict(testCols), testLabels)
	if auc < 0.9 {
		t.Errorf("AUC on XOR interaction = %v, want >= 0.9 (depth-2 interactions must be learnable)", auc)
	}
}

func TestXORPathsPairBothFeatures(t *testing.T) {
	// The key property SAFE depends on: features interacting in the label
	// co-occur on tree paths.
	cols, labels := xorData(3000, 4)
	// Add noise features.
	rng := rand.New(rand.NewSource(5))
	for j := 0; j < 4; j++ {
		c := make([]float64, len(labels))
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		cols = append(cols, c)
	}
	cfg := DefaultConfig()
	cfg.NumTrees = 30
	model, err := Train(cols, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	paths := model.Paths()
	if len(paths) == 0 {
		t.Fatal("no paths extracted")
	}
	together := 0
	for _, p := range paths {
		has0, has1 := false, false
		for _, f := range p.Features {
			if f == 0 {
				has0 = true
			}
			if f == 1 {
				has1 = true
			}
		}
		if has0 && has1 {
			together++
		}
	}
	if together == 0 {
		t.Error("features 0 and 1 never co-occur on any path despite their interaction")
	}
}

func TestPathsStructure(t *testing.T) {
	cols, labels := linearData(500, 2, 6)
	cfg := DefaultConfig()
	cfg.NumTrees = 10
	model, err := Train(cols, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range model.Paths() {
		if len(p.Features) == 0 {
			t.Fatal("empty path")
		}
		seen := map[int]bool{}
		for _, f := range p.Features {
			if seen[f] {
				t.Fatalf("path lists feature %d twice", f)
			}
			seen[f] = true
			vs := p.Values[f]
			if len(vs) == 0 {
				t.Fatalf("feature %d has no split values", f)
			}
			for i := 1; i < len(vs); i++ {
				if vs[i] <= vs[i-1] {
					t.Fatalf("split values not strictly ascending: %v", vs)
				}
			}
		}
	}
}

func TestGainImportanceConcentrates(t *testing.T) {
	cols, labels := linearData(2000, 6, 7)
	model, err := Train(cols, labels, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	imp := model.GainImportance()
	if len(imp) != 8 {
		t.Fatalf("importance length = %d, want 8", len(imp))
	}
	signal := math.Max(imp[0], imp[1])
	for j := 2; j < len(imp); j++ {
		if imp[j] > signal {
			t.Errorf("noise feature %d importance %v exceeds signal features (%v)", j, imp[j], signal)
		}
	}
	total := model.TotalGainImportance()
	if total[0] <= 0 || total[1] <= 0 {
		t.Error("signal features have zero total gain")
	}
}

func TestSplitFeaturesSubset(t *testing.T) {
	cols, labels := linearData(1000, 5, 8)
	model, err := Train(cols, labels, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range model.SplitFeatures() {
		if f < 0 || f >= len(cols) {
			t.Fatalf("split feature %d out of range", f)
		}
	}
}

func TestPredictRowMatchesBatch(t *testing.T) {
	cols, labels := linearData(800, 2, 9)
	model, err := Train(cols, labels, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	batch := model.Predict(cols)
	row := make([]float64, len(cols))
	for i := 0; i < 20; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		if got := model.PredictRow(row); math.Abs(got-batch[i]) > 1e-12 {
			t.Fatalf("row %d: PredictRow %v != batch %v", i, got, batch[i])
		}
	}
}

func TestLogisticOutputsProbabilities(t *testing.T) {
	cols, labels := linearData(500, 1, 10)
	model, err := Train(cols, labels, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range model.Predict(cols) {
		if p <= 0 || p >= 1 || math.IsNaN(p) {
			t.Fatalf("prediction %v outside (0,1)", p)
		}
	}
}

func TestSquaredObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 1500
	cols := [][]float64{make([]float64, n)}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		cols[0][i] = rng.Float64() * 10
		y[i] = 3*cols[0][i] + rng.NormFloat64()*0.1
	}
	cfg := DefaultConfig()
	cfg.Objective = Squared
	cfg.NumTrees = 100
	cfg.LearningRate = 0.2
	model, err := Train(cols, y, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	preds := model.Predict(cols)
	mse := 0.0
	for i := range preds {
		d := preds[i] - y[i]
		mse += d * d
	}
	mse /= float64(n)
	if mse > 1.0 {
		t.Errorf("regression MSE = %v, want <= 1.0 (target range [0,30])", mse)
	}
}

func TestSubsamplingStillLearns(t *testing.T) {
	cols, labels := linearData(2000, 2, 12)
	cfg := DefaultConfig()
	cfg.Subsample = 0.7
	cfg.ColSample = 0.8
	cfg.Seed = 5
	model, err := Train(cols, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	auc := metrics.AUC(model.Predict(cols), labels)
	if auc < 0.9 {
		t.Errorf("AUC with subsampling = %v, want >= 0.9", auc)
	}
}

func TestDeterminism(t *testing.T) {
	cols, labels := linearData(500, 2, 13)
	cfg := DefaultConfig()
	cfg.NumTrees = 10
	cfg.Parallel = true
	m1, err := Train(cols, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(cols, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1 := m1.Predict(cols)
	p2 := m2.Predict(cols)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("row %d differs across identical runs: %v vs %v", i, p1[i], p2[i])
		}
	}
}

func TestNaNGoesLeft(t *testing.T) {
	cols, labels := linearData(500, 0, 14)
	model, err := Train(cols, labels, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{math.NaN(), math.NaN()}
	p := model.PredictRow(row)
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Errorf("NaN row prediction = %v, want a probability", p)
	}
}

func TestConstantColumnsHandled(t *testing.T) {
	n := 200
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	labels := make([]float64, n)
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < n; i++ {
		cols[0][i] = 5 // constant
		cols[1][i] = rng.NormFloat64()
		if cols[1][i] > 0 {
			labels[i] = 1
		}
	}
	model, err := Train(cols, labels, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if auc := metrics.AUC(model.Predict(cols), labels); auc < 0.95 {
		t.Errorf("AUC with a constant column = %v, want >= 0.95", auc)
	}
}

func TestSparsityAwareDefaultDirection(t *testing.T) {
	// Feature 0 is missing whenever the label is 1 and present (negative
	// values) otherwise: the learned default direction must route NaNs to
	// the positive side, which the old always-left rule cannot do when the
	// present values sort below the threshold.
	rng := rand.New(rand.NewSource(41))
	n := 2000
	cols := [][]float64{make([]float64, n)}
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			labels[i] = 1
			cols[0][i] = math.NaN()
		} else {
			cols[0][i] = rng.Float64() // present, label 0
		}
	}
	cfg := DefaultConfig()
	cfg.NumTrees = 10
	model, err := Train(cols, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pNaN := model.PredictRow([]float64{math.NaN()})
	pVal := model.PredictRow([]float64{0.5})
	if pNaN <= pVal {
		t.Errorf("missing-value prediction %v not above present-value %v; default direction not learned", pNaN, pVal)
	}
	if pNaN < 0.9 || pVal > 0.1 {
		t.Errorf("separation too weak: NaN=%v present=%v", pNaN, pVal)
	}
	// At least one node must have learned a non-default direction.
	foundRight := false
	for _, tr := range model.Trees {
		for i := range tr.Nodes {
			if tr.Nodes[i].DefaultRight {
				foundRight = true
			}
		}
	}
	if !foundRight {
		t.Error("no node learned DefaultRight despite informative missingness")
	}
}

func TestSparsityAwareNoMissingUnchanged(t *testing.T) {
	// Without missing values the two scan directions are identical, so no
	// node should carry DefaultRight.
	cols, labels := linearData(800, 2, 42)
	model, err := Train(cols, labels, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range model.Trees {
		for i := range tr.Nodes {
			if tr.Nodes[i].DefaultRight {
				t.Fatal("DefaultRight set on a dataset without missing values")
			}
		}
	}
}
