package gbdt

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestModelRoundTrip(t *testing.T) {
	cols, labels := linearData(1000, 2, 21)
	model, err := Train(cols, labels, []string{"a", "b", "c", "d"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := model.Predict(cols)
	rt := loaded.Predict(cols)
	for i := range orig {
		if orig[i] != rt[i] {
			t.Fatalf("row %d: %v vs %v", i, orig[i], rt[i])
		}
	}
	if loaded.NumFeat != model.NumFeat {
		t.Errorf("NumFeat = %d, want %d", loaded.NumFeat, model.NumFeat)
	}
	if len(loaded.Names) != 4 || loaded.Names[0] != "a" {
		t.Errorf("names = %v", loaded.Names)
	}
}

func TestModelRoundTripPathsAndImportance(t *testing.T) {
	cols, labels := linearData(1000, 2, 22)
	model, err := Train(cols, labels, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Paths()) != len(model.Paths()) {
		t.Errorf("paths differ: %d vs %d", len(loaded.Paths()), len(model.Paths()))
	}
	impA := model.GainImportance()
	impB := loaded.GainImportance()
	for j := range impA {
		if impA[j] != impB[j] {
			t.Fatalf("importance %d: %v vs %v", j, impA[j], impB[j])
		}
	}
}

func TestModelRoundTripRegression(t *testing.T) {
	cols, labels := linearData(500, 0, 23)
	cfg := DefaultConfig()
	cfg.Objective = Squared
	model, err := Train(cols, labels, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Config.Objective != Squared {
		t.Error("objective not preserved")
	}
	if a, b := model.PredictRow([]float64{0.5, -0.5}), loaded.PredictRow([]float64{0.5, -0.5}); a != b {
		t.Errorf("prediction %v vs %v", a, b)
	}
}

func TestModelSaveFile(t *testing.T) {
	cols, labels := linearData(300, 0, 24)
	model, err := Train(cols, labels, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	cases := []string{
		"not json",
		`{"version":99,"num_feat":2,"trees":[]}`,
		`{"version":1,"num_feat":0,"trees":[]}`,
		// Node splits on out-of-range feature.
		`{"version":1,"num_feat":2,"trees":[[{"Feature":5,"Left":1,"Right":2},{"Feature":-1},{"Feature":-1}]]}`,
		// Child index points backwards (cycle).
		`{"version":1,"num_feat":2,"trees":[[{"Feature":0,"Left":0,"Right":0}]]}`,
		// Empty tree.
		`{"version":1,"num_feat":2,"trees":[[]]}`,
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestDump(t *testing.T) {
	cols, labels := linearData(400, 0, 25)
	model, err := Train(cols, labels, []string{"alpha", "beta"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Dump(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tree 0:") || !strings.Contains(out, "alpha") {
		t.Errorf("dump missing content:\n%s", out)
	}
	if strings.Count(out, "tree ") != 2 {
		t.Errorf("maxTrees ignored: %d trees dumped", strings.Count(out, "tree "))
	}
	if !strings.Contains(out, "leaf=") {
		t.Error("dump missing leaves")
	}
}
