package gbdt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// modelJSON is the on-disk representation of a trained booster.
type modelJSON struct {
	Version    int       `json:"version"`
	Objective  Objective `json:"objective"`
	BaseScore  float64   `json:"base_score"`
	NumFeat    int       `json:"num_feat"`
	Names      []string  `json:"names,omitempty"`
	NumClass   int       `json:"num_class,omitempty"`
	BaseScores []float64 `json:"base_scores,omitempty"`
	Trees      [][]Node  `json:"trees"`
}

const modelVersion = 1

// MarshalJSON serialises the model (trees, base score, objective) so a
// booster trained offline can be loaded for serving.
func (m *Model) MarshalJSON() ([]byte, error) {
	out := modelJSON{
		Version:    modelVersion,
		Objective:  m.Config.Objective,
		BaseScore:  m.BaseScore,
		NumFeat:    m.NumFeat,
		Names:      m.Names,
		NumClass:   m.Config.NumClass,
		BaseScores: m.BaseScores,
	}
	for _, t := range m.Trees {
		out.Trees = append(out.Trees, t.Nodes)
	}
	return json.Marshal(out)
}

// UnmarshalJSON reconstructs a model saved with MarshalJSON. Only the fields
// needed for prediction, paths and importances are restored; training
// hyper-parameters are not round-tripped.
func (m *Model) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("gbdt: unmarshal model: %w", err)
	}
	if in.Version != modelVersion {
		return fmt.Errorf("gbdt: unsupported model version %d (want %d)", in.Version, modelVersion)
	}
	if in.NumFeat <= 0 {
		return fmt.Errorf("gbdt: model has invalid feature count %d", in.NumFeat)
	}
	if in.Objective == Softmax {
		if in.NumClass < 2 {
			return fmt.Errorf("gbdt: softmax model has invalid class count %d", in.NumClass)
		}
		if len(in.BaseScores) != in.NumClass {
			return fmt.Errorf("gbdt: softmax model has %d base scores for %d classes", len(in.BaseScores), in.NumClass)
		}
		if len(in.Trees)%in.NumClass != 0 {
			return fmt.Errorf("gbdt: softmax model has %d trees, not a multiple of %d classes", len(in.Trees), in.NumClass)
		}
	}
	m.Config = Config{Objective: in.Objective, NumClass: in.NumClass}
	m.BaseScore = in.BaseScore
	m.NumFeat = in.NumFeat
	m.Names = in.Names
	m.BaseScores = in.BaseScores
	m.Trees = m.Trees[:0]
	for ti, nodes := range in.Trees {
		if err := validateTree(nodes, in.NumFeat); err != nil {
			return fmt.Errorf("gbdt: tree %d: %w", ti, err)
		}
		m.Trees = append(m.Trees, &Tree{Nodes: nodes})
	}
	return nil
}

// validateTree checks node indices and feature references so a corrupted
// file cannot cause out-of-range traversal.
func validateTree(nodes []Node, numFeat int) error {
	if len(nodes) == 0 {
		return fmt.Errorf("empty tree")
	}
	for i := range nodes {
		n := &nodes[i]
		if n.IsLeaf() {
			continue
		}
		if n.Feature >= numFeat {
			return fmt.Errorf("node %d splits on feature %d of %d", i, n.Feature, numFeat)
		}
		if n.Left <= i || n.Left >= len(nodes) || n.Right <= i || n.Right >= len(nodes) {
			return fmt.Errorf("node %d has invalid children (%d, %d)", i, n.Left, n.Right)
		}
	}
	return nil
}

// Save writes the model as JSON to w.
func (m *Model) Save(w io.Writer) error {
	data, err := m.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// SaveFile writes the model to a JSON file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("gbdt: %w", err)
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// Load reads a model saved with Save.
func Load(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("gbdt: load model: %w", err)
	}
	m := &Model{}
	if err := m.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadFile reads a model from a JSON file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gbdt: %w", err)
	}
	defer f.Close()
	return Load(f)
}
