package gbdt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
)

// trainSoftmaxWithBinner is the multiclass boosting loop: per round it
// computes the softmax probabilities once, then grows one tree per class on
// that class's one-vs-rest gradients, all on the shared binner/trainer
// machinery of the binary loop — so Train and TrainBinned stay bit-identical
// for Softmax exactly as they are for Logistic and Squared. The row and
// column subsamples are drawn once per round and shared by every class tree
// (XGBoost's behaviour), keeping the per-round trees comparable.
func trainSoftmaxWithBinner(ctx context.Context, b *binner, labels []float64, names []string, cfg Config, val *validation) (*Model, error) {
	if val != nil {
		return nil, errors.New("gbdt: validation-based early stopping is not supported for the Softmax objective")
	}
	k := cfg.NumClass
	m := len(b.codes)
	n := len(labels)
	pool := cfg.pool()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Smoothed log class priors as per-class base scores.
	classCnt := make([]float64, k)
	for i, y := range labels {
		c := int(y)
		if c < 0 || c >= k || float64(c) != y {
			return nil, fmt.Errorf("gbdt: row %d: label %g is not a class index in [0,%d)", i, y, k)
		}
		classCnt[c]++
	}
	bases := make([]float64, k)
	for c := range bases {
		bases[c] = math.Log((classCnt[c] + 1) / (float64(n) + float64(k)))
	}

	model := &Model{Config: cfg, NumFeat: m, Names: names, BaseScores: bases}
	raw := make([][]float64, k) // raw[c][i]: class-c raw score of row i
	prob := make([][]float64, k)
	for c := 0; c < k; c++ {
		raw[c] = make([]float64, n)
		for i := range raw[c] {
			raw[c][i] = bases[c]
		}
		prob[c] = make([]float64, n)
	}
	grad := make([]float64, n)
	hess := make([]float64, n)

	tr := newTrainer(b, cfg, pool, n, m)
	sample := make([]int, 0, n)

	for t := 0; t < cfg.NumTrees; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		softmaxProbs(raw, prob, pool)

		sample = sample[:0]
		if cfg.Subsample < 1 {
			sample = sampleRowsInto(sample, n, cfg.Subsample, rng)
		} else {
			for i := 0; i < n; i++ {
				sample = append(sample, i)
			}
		}
		feats := allRows(m)
		if cfg.ColSample < 1 {
			feats = sampleRowsInto(nil, m, cfg.ColSample, rng)
			if len(feats) == 0 {
				feats = []int{rng.Intn(m)}
			}
		}

		for c := 0; c < k; c++ {
			pc := prob[c]
			for i := range grad {
				y := 0.0
				if int(labels[i]) == c {
					y = 1
				}
				p := pc[i]
				grad[i] = p - y
				h := p * (1 - p)
				if h < 1e-16 {
					h = 1e-16
				}
				hess[i] = h
			}
			// Each class tree partitions its own copy of the round's sample
			// (buildTree reorders rows in place).
			rows := append(tr.rowBuf[:0], sample...)
			tr.rowBuf = rows[:0]
			tree := tr.buildTree(rows, feats, grad, hess)
			model.Trees = append(model.Trees, tree)
			updatePredictions(tree, b, raw[c], pool)
		}
	}
	return model, nil
}

// softmaxProbs fills prob with the row-wise softmax of the per-class raw
// scores, row-parallel (each row's slots written by exactly one chunk).
func softmaxProbs(raw, prob [][]float64, pool *parallel.Pool) {
	k := len(raw)
	n := len(raw[0])
	pool.ForChunks(n, 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mx := raw[0][i]
			for c := 1; c < k; c++ {
				if raw[c][i] > mx {
					mx = raw[c][i]
				}
			}
			var sum float64
			for c := 0; c < k; c++ {
				e := math.Exp(raw[c][i] - mx)
				prob[c][i] = e
				sum += e
			}
			for c := 0; c < k; c++ {
				prob[c][i] /= sum
			}
		}
	})
}
