package gbdt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// Objective selects the training loss.
type Objective int

const (
	// Logistic trains with binary cross-entropy; predictions are
	// probabilities in (0,1).
	Logistic Objective = iota
	// Squared trains with squared error; predictions are raw values.
	Squared
	// Softmax trains with multiclass cross-entropy over Config.NumClass
	// classes: labels are class indices in [0, NumClass), each boosting
	// round grows one tree per class, and PredictRowVector returns the
	// class-probability vector (PredictRow the argmax class index).
	Softmax
)

// Config holds the booster's hyper-parameters. The zero value is not usable;
// call DefaultConfig and override fields as needed.
type Config struct {
	NumTrees       int       // K: number of boosting rounds
	MaxDepth       int       // D: maximum tree depth (root = depth 0)
	LearningRate   float64   // eta shrinkage
	Lambda         float64   // L2 regularisation on leaf weights
	Gamma          float64   // minimum gain to split
	MinChildWeight float64   // minimum sum of hessians per child
	MinChildCount  int       // minimum rows per child
	Subsample      float64   // row subsampling per tree, (0,1]
	ColSample      float64   // column subsampling per tree, (0,1]
	MaxBins        int       // histogram bins per feature (<= 255)
	Objective      Objective // training loss
	NumClass       int       // number of classes (Softmax only; >= 2)
	Seed           int64     // RNG seed for subsampling
	Parallel       bool      // parallelise histogram building across features
	// Workers bounds the worker-pool size when Parallel is set; <= 0 selects
	// GOMAXPROCS. Results are identical for any worker count.
	Workers int
}

// pool returns the shared worker pool the configuration selects.
func (c *Config) pool() *parallel.Pool {
	if !c.Parallel {
		return parallel.Get(1)
	}
	return parallel.Get(c.Workers)
}

// DefaultConfig returns settings close to XGBoost's defaults, scaled to the
// benchmark sizes used in this repository.
func DefaultConfig() Config {
	return Config{
		NumTrees:       50,
		MaxDepth:       4,
		LearningRate:   0.3,
		Lambda:         1.0,
		Gamma:          0.0,
		MinChildWeight: 1.0,
		MinChildCount:  1,
		Subsample:      1.0,
		ColSample:      1.0,
		MaxBins:        64,
		Objective:      Logistic,
		Parallel:       true,
	}
}

func (c *Config) validate() error {
	if c.NumTrees <= 0 {
		return errors.New("gbdt: NumTrees must be positive")
	}
	if c.MaxDepth <= 0 {
		return errors.New("gbdt: MaxDepth must be positive")
	}
	if c.LearningRate <= 0 {
		return errors.New("gbdt: LearningRate must be positive")
	}
	if c.MaxBins < 2 || c.MaxBins > 255 {
		return fmt.Errorf("gbdt: MaxBins must be in [2,255], got %d", c.MaxBins)
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		return fmt.Errorf("gbdt: Subsample must be in (0,1], got %g", c.Subsample)
	}
	if c.ColSample <= 0 || c.ColSample > 1 {
		return fmt.Errorf("gbdt: ColSample must be in (0,1], got %g", c.ColSample)
	}
	if c.Objective == Softmax && c.NumClass < 2 {
		return fmt.Errorf("gbdt: Softmax needs NumClass >= 2, got %d", c.NumClass)
	}
	return nil
}

// Node is a tree node. Leaves have Feature == -1.
type Node struct {
	Feature   int     // split feature index, -1 for leaves
	Threshold float64 // go left when value <= Threshold
	Left      int     // index of left child in Tree.Nodes
	Right     int     // index of right child
	Value     float64 // leaf weight (already shrunk by eta)
	Gain      float64 // split gain (internal nodes)
	Count     int     // training rows reaching the node
	// DefaultRight sends missing (NaN) values to the right child. The
	// direction is learned per split (XGBoost's sparsity-aware algorithm);
	// the zero value preserves the historical missing-goes-left behaviour.
	DefaultRight bool
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Feature < 0 }

// Tree is a single regression tree stored as a flat node array with the root
// at index 0.
type Tree struct {
	Nodes []Node
}

// PredictRow traverses the tree for one row of raw feature values.
func (t *Tree) PredictRow(row []float64) float64 {
	i := 0
	for {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			return n.Value
		}
		v := row[n.Feature]
		switch {
		case math.IsNaN(v):
			if n.DefaultRight {
				i = n.Right
			} else {
				i = n.Left
			}
		case v <= n.Threshold:
			i = n.Left
		default:
			i = n.Right
		}
	}
}

// Model is a trained booster. For the Softmax objective (NumClass classes
// in Config) the trees are round-major: tree t*NumClass+k is round t's tree
// for class k, and BaseScores holds the per-class initial raw scores; other
// objectives use BaseScore and one tree per round.
type Model struct {
	Trees     []*Tree
	Config    Config
	BaseScore float64 // initial raw score (log-odds for Logistic)
	NumFeat   int
	Names     []string // optional column names for reporting

	// BaseScores is set for Softmax models only (len Config.NumClass).
	BaseScores []float64
}

// NumGroups returns how many values PredictRowVector emits per row:
// Config.NumClass for Softmax models, 1 otherwise.
func (m *Model) NumGroups() int {
	if m.Config.Objective == Softmax {
		return m.Config.NumClass
	}
	return 1
}

// TrainWithValidation fits a boosted model with early stopping: after each
// round the model is scored on the validation set (AUC for Logistic,
// negative MSE for Squared) and training stops once earlyStopRounds
// consecutive rounds bring no improvement, truncating the model to its best
// round. This mirrors Algorithm 1 line 3, which hands XGBoost both D_train
// and D_valid. earlyStopRounds <= 0 disables early stopping.
func TrainWithValidation(cols [][]float64, labels []float64, vcols [][]float64, vlabels []float64, names []string, cfg Config, earlyStopRounds int) (*Model, error) {
	if len(vcols) != len(cols) {
		return nil, fmt.Errorf("gbdt: validation has %d columns, want %d", len(vcols), len(cols))
	}
	if len(vlabels) == 0 {
		return nil, errors.New("gbdt: empty validation labels")
	}
	model, err := trainInternal(context.Background(), cols, labels, names, cfg, &validation{
		cols: vcols, labels: vlabels, patience: earlyStopRounds,
	})
	if err != nil {
		return nil, err
	}
	return model, nil
}

// validation tracks early-stopping state during training.
type validation struct {
	cols     [][]float64
	labels   []float64
	patience int

	raw      []float64 // running raw validation scores
	bestEval float64
	bestSize int
	badRuns  int
	rounds   int
}

// Train fits a boosted model on column-major data: cols[j][i] is feature j of
// row i. labels are {0,1} for Logistic, arbitrary for Squared. names may be
// nil. Train does not retain cols or labels.
func Train(cols [][]float64, labels []float64, names []string, cfg Config) (*Model, error) {
	return trainInternal(context.Background(), cols, labels, names, cfg, nil)
}

// TrainCtx is Train with cooperative cancellation: the boosting loop checks
// ctx between rounds and returns ctx.Err() once it is cancelled or past its
// deadline, abandoning the partial model. A completed training run is never
// failed retroactively.
func TrainCtx(ctx context.Context, cols [][]float64, labels []float64, names []string, cfg Config) (*Model, error) {
	return trainInternal(ctx, cols, labels, names, cfg, nil)
}

// Prebinned is a feature matrix already quantised to per-feature bin codes:
// Codes[j][i] is 0 for a missing value and 1+b for a value in bin b, where
// bin b spans (Cuts[j][b-1], Cuts[j][b]] — exactly the encoding the internal
// binner produces. Cuts must be strictly ascending per feature.
type Prebinned struct {
	Codes [][]uint8
	Cuts  [][]float64
}

// TrainBinned fits a boosted model directly on a prebinned matrix, skipping
// the internal quantile binning. Histogram training only ever consumes bin
// codes, so given codes and cuts equal to what the internal binner would
// produce from the raw columns, TrainBinned returns a bit-identical model to
// Train — this is the entry point of the sharded fit engine, whose binned
// matrices are built out-of-core from merged quantile sketches and are ~8×
// smaller than the raw float64 columns. The model's split thresholds are
// real cut values, so Predict works on raw rows as usual.
func TrainBinned(pb *Prebinned, labels []float64, names []string, cfg Config) (*Model, error) {
	return TrainBinnedCtx(context.Background(), pb, labels, names, cfg)
}

// TrainBinnedCtx is TrainBinned with the per-round cancellation contract of
// TrainCtx.
func TrainBinnedCtx(ctx context.Context, pb *Prebinned, labels []float64, names []string, cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := len(pb.Codes)
	if m == 0 {
		return nil, errors.New("gbdt: no features")
	}
	if len(pb.Cuts) != m {
		return nil, fmt.Errorf("gbdt: %d code columns but %d cut arrays", m, len(pb.Cuts))
	}
	n := len(labels)
	if n == 0 {
		return nil, errors.New("gbdt: no rows")
	}
	b := &binner{
		codes:   pb.Codes,
		cuts:    pb.Cuts,
		numBins: make([]int, m),
	}
	for j := range pb.Codes {
		if len(pb.Codes[j]) != n {
			return nil, fmt.Errorf("gbdt: code column %d has %d rows, want %d", j, len(pb.Codes[j]), n)
		}
		nb := len(pb.Cuts[j]) + 1
		if nb+1 > 256 {
			return nil, fmt.Errorf("gbdt: feature %d has %d bins, max 255", j, nb)
		}
		b.numBins[j] = nb
	}
	return trainWithBinner(ctx, b, labels, names, cfg, nil)
}

func trainInternal(ctx context.Context, cols [][]float64, labels []float64, names []string, cfg Config, val *validation) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := len(cols)
	if m == 0 {
		return nil, errors.New("gbdt: no features")
	}
	n := len(labels)
	if n == 0 {
		return nil, errors.New("gbdt: no rows")
	}
	for j := range cols {
		if len(cols[j]) != n {
			return nil, fmt.Errorf("gbdt: column %d has %d rows, want %d", j, len(cols[j]), n)
		}
	}
	b := newBinner(cols, cfg.MaxBins, cfg.pool())
	return trainWithBinner(ctx, b, labels, names, cfg, val)
}

// trainWithBinner is the boosting loop proper, shared by the raw-column and
// prebinned entry points. ctx is checked once per boosting round — the
// granularity at which abandoning work stays cheap relative to the work
// itself.
func trainWithBinner(ctx context.Context, b *binner, labels []float64, names []string, cfg Config, val *validation) (*Model, error) {
	if cfg.Objective == Softmax {
		return trainSoftmaxWithBinner(ctx, b, labels, names, cfg, val)
	}
	m := len(b.codes)
	n := len(labels)
	pool := cfg.pool()
	rng := rand.New(rand.NewSource(cfg.Seed))

	base := 0.0
	if cfg.Objective == Logistic {
		pos := 0.0
		for _, y := range labels {
			if y > 0.5 {
				pos++
			}
		}
		p := (pos + 1) / (float64(n) + 2) // smoothed prior
		base = math.Log(p / (1 - p))
	} else {
		for _, y := range labels {
			base += y
		}
		base /= float64(n)
	}

	model := &Model{Config: cfg, BaseScore: base, NumFeat: m, Names: names}
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)

	tr := newTrainer(b, cfg, pool, n, m)

	if val != nil {
		val.raw = make([]float64, len(val.labels))
		for i := range val.raw {
			val.raw[i] = base
		}
		val.bestEval = math.Inf(-1)
	}

	for t := 0; t < cfg.NumTrees; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		computeGradients(cfg.Objective, raw, labels, grad, hess)

		// The row set is partitioned in place while the tree grows, so it
		// lives in a per-trainer buffer refilled each round instead of a
		// fresh allocation.
		rows := tr.rowBuf[:0]
		if cfg.Subsample < 1 {
			rows = sampleRowsInto(rows, n, cfg.Subsample, rng)
		} else {
			for i := 0; i < n; i++ {
				rows = append(rows, i)
			}
		}
		tr.rowBuf = rows[:0]
		feats := allRows(m)
		if cfg.ColSample < 1 {
			feats = sampleRowsInto(nil, m, cfg.ColSample, rng)
			if len(feats) == 0 {
				feats = []int{rng.Intn(m)}
			}
		}

		tree := tr.buildTree(rows, feats, grad, hess)
		model.Trees = append(model.Trees, tree)

		// Update raw scores on all rows (not only the subsample).
		updatePredictions(tree, b, raw, pool)

		if val != nil && val.patience > 0 {
			if stop := val.update(tree, cfg.Objective); stop {
				model.Trees = model.Trees[:val.bestSize]
				break
			}
		}
	}
	return model, nil
}

// update adds the new tree's contribution to the validation scores,
// evaluates, and reports whether training should stop.
func (val *validation) update(tree *Tree, obj Objective) bool {
	val.rounds++
	row := make([]float64, len(val.cols))
	for i := range val.raw {
		for j := range val.cols {
			row[j] = val.cols[j][i]
		}
		val.raw[i] += tree.PredictRow(row)
	}
	eval := val.evaluate(obj)
	if eval > val.bestEval+1e-12 {
		val.bestEval = eval
		val.bestSize = val.rounds
		val.badRuns = 0
		return false
	}
	val.badRuns++
	return val.badRuns >= val.patience
}

// evaluate scores the running validation predictions: AUC for Logistic,
// negated MSE for Squared (higher is better for both).
func (val *validation) evaluate(obj Objective) float64 {
	if obj == Logistic {
		return rankAUC(val.raw, val.labels)
	}
	mse := 0.0
	for i, r := range val.raw {
		d := r - val.labels[i]
		mse += d * d
	}
	return -mse / float64(len(val.raw))
}

// rankAUC is a local AUC on raw scores (monotone-invariant, so raw scores
// work as well as probabilities). Kept here to avoid a dependency cycle
// with the metrics package's consumers.
func rankAUC(scores, labels []float64) float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		i = j
	}
	var pos, neg, sumPos float64
	for i := 0; i < n; i++ {
		if labels[i] > 0.5 {
			pos++
			sumPos += ranks[i]
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return (sumPos - pos*(pos+1)/2) / (pos * neg)
}

func computeGradients(obj Objective, raw, labels, grad, hess []float64) {
	switch obj {
	case Logistic:
		for i := range raw {
			p := sigmoid(raw[i])
			grad[i] = p - labels[i]
			h := p * (1 - p)
			if h < 1e-16 {
				h = 1e-16
			}
			hess[i] = h
		}
	default:
		for i := range raw {
			grad[i] = raw[i] - labels[i]
			hess[i] = 1
		}
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func allRows(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// sampleRowsInto appends a Bernoulli sample of [0,n) to dst (never empty).
func sampleRowsInto(dst []int, n int, frac float64, rng *rand.Rand) []int {
	base := len(dst)
	for i := 0; i < n; i++ {
		if rng.Float64() < frac {
			dst = append(dst, i)
		}
	}
	if len(dst) == base {
		dst = append(dst, rng.Intn(n))
	}
	return dst
}

// binner quantises features to uint8 codes. Code 0 is reserved for missing
// values (NaN); real bins are 1..numBins[j]. cuts[j][b] is the inclusive
// upper bound of bin b+1.
type binner struct {
	codes   [][]uint8
	cuts    [][]float64
	numBins []int
	cols    [][]float64 // retained for prediction updates during training
}

func newBinner(cols [][]float64, maxBins int, pool *parallel.Pool) *binner {
	m := len(cols)
	b := &binner{
		codes:   make([][]uint8, m),
		cuts:    make([][]float64, m),
		numBins: make([]int, m),
		cols:    cols,
	}
	// Columns bin independently; chunks amortise one quantile scratch each.
	pool.ForChunks(m, pool.Grain(m), func(lo, hi int) {
		var qs stats.QuantileScratch
		var ix stats.CutIndexer
		for j := lo; j < hi; j++ {
			cuts := quantileCuts(cols[j], maxBins, &qs)
			b.cuts[j] = cuts
			b.numBins[j] = len(cuts) + 1
			ix.Reset(cuts)
			codes := make([]uint8, len(cols[j]))
			for i, v := range cols[j] {
				if math.IsNaN(v) {
					codes[i] = 0
					continue
				}
				codes[i] = uint8(1 + ix.Find(v))
			}
			b.codes[j] = codes
		}
	})
	return b
}

// quantileCuts returns at most maxBins-1 interior cut points from the
// empirical quantiles of xs, deduplicated, dropping a trailing cut equal to
// the maximum (it would create an empty bin). Cut values come from
// multi-rank selection (stats.QuantileScratch) rather than a full sort.
func quantileCuts(xs []float64, maxBins int, qs *stats.QuantileScratch) []float64 {
	cuts := qs.Quantiles(xs, maxBins)
	if len(cuts) == 0 {
		return nil
	}
	mx := math.Inf(-1)
	for _, v := range xs {
		if !math.IsNaN(v) && v > mx {
			mx = v
		}
	}
	if cuts[len(cuts)-1] >= mx {
		cuts = cuts[:len(cuts)-1]
	}
	// The scratch owns the returned slice; keep a stable copy.
	return append([]float64(nil), cuts...)
}

// threshold returns the raw-value threshold for "code <= c".
func (b *binner) threshold(feat int, code uint8) float64 {
	cuts := b.cuts[feat]
	if code == 0 || len(cuts) == 0 {
		return math.Inf(-1)
	}
	idx := int(code) - 1
	if idx >= len(cuts) {
		idx = len(cuts) - 1
	}
	return cuts[idx]
}

type trainer struct {
	binner *binner
	cfg    Config
	pool   *parallel.Pool
	n, m   int
	// stride is the per-feature slot width in a histSet: the largest
	// numBins[j]+1 (real bins plus the missing bin 0) across features.
	stride int
	// free is the hist-set free list. Depth-first growth holds at most two
	// sets per level, so the list stays O(MaxDepth) long and every tree
	// after the first builds histograms without allocating.
	free []*histSet
	// rowBuf backs the per-tree row set (partitioned in place as the tree
	// grows); partScratch is the right-side spill buffer that keeps the
	// partition stable.
	rowBuf      []int
	partScratch []int
}

func newTrainer(b *binner, cfg Config, pool *parallel.Pool, n, m int) *trainer {
	stride := 1
	for _, nb := range b.numBins {
		if nb+1 > stride {
			stride = nb + 1
		}
	}
	return &trainer{
		binner:      b,
		cfg:         cfg,
		pool:        pool,
		n:           n,
		m:           m,
		stride:      stride,
		rowBuf:      make([]int, 0, n),
		partScratch: make([]int, 0, n),
	}
}

// histSet holds the gradient histograms of every candidate feature for one
// node, flattened with a fixed stride so one allocation serves all features.
type histSet struct {
	grad  []float64
	hess  []float64
	count []int
}

func (tr *trainer) getHistSet() *histSet {
	if n := len(tr.free); n > 0 {
		h := tr.free[n-1]
		tr.free = tr.free[:n-1]
		return h
	}
	size := tr.m * tr.stride
	return &histSet{
		grad:  make([]float64, size),
		hess:  make([]float64, size),
		count: make([]int, size),
	}
}

func (tr *trainer) putHistSet(h *histSet) {
	if h != nil {
		tr.free = append(tr.free, h)
	}
}

type splitResult struct {
	feature      int
	binCode      uint8 // go left when 1 <= code <= binCode
	gain         float64
	threshold    float64
	defaultRight bool // learned direction for the missing bin (code 0)
}

// buildTree grows one tree depth-first over the given row and feature
// subsets. rows is partitioned in place as the tree grows.
func (tr *trainer) buildTree(rows, feats []int, grad, hess []float64) *Tree {
	t := &Tree{}
	var sumG, sumH float64
	for _, r := range rows {
		sumG += grad[r]
		sumH += hess[r]
	}
	t.Nodes = append(t.Nodes, Node{Feature: -1, Count: len(rows)})
	var h *histSet
	if tr.needsSplitEval(len(rows), sumH, 0) {
		h = tr.getHistSet()
		tr.computeHists(rows, feats, grad, hess, h)
	}
	tr.grow(t, 0, rows, feats, grad, hess, sumG, sumH, 0, h)
	return t
}

// needsSplitEval reports whether a node with the given population can be
// split at all — the pre-histogram leaf checks.
func (tr *trainer) needsSplitEval(nRows int, sumH float64, depth int) bool {
	cfg := tr.cfg
	return depth < cfg.MaxDepth && nRows >= 2*cfg.MinChildCount && sumH >= 2*cfg.MinChildWeight
}

// grow turns node nodeIdx into a split or a leaf. h is the node's histogram
// set (nil when the leaf checks already failed); grow owns h and returns it
// to the free list. Children histograms are built for the smaller side only
// and derived for the larger by subtraction from the parent — the classic
// histogram trick that nearly halves split-finding work.
func (tr *trainer) grow(t *Tree, nodeIdx int, rows, feats []int, grad, hess []float64, sumG, sumH float64, depth int, h *histSet) {
	cfg := tr.cfg
	leafValue := -cfg.LearningRate * sumG / (sumH + cfg.Lambda)

	if h == nil {
		t.Nodes[nodeIdx].Value = leafValue
		return
	}

	best := tr.bestSplit(h, feats, len(rows), sumG, sumH)
	if best.feature < 0 || best.gain <= cfg.Gamma {
		t.Nodes[nodeIdx].Value = leafValue
		tr.putHistSet(h)
		return
	}

	// Stable in-place partition: left rows compact forward, right rows
	// spill to scratch and copy back behind them, preserving relative order
	// on both sides (so directly-built child histograms accumulate in the
	// same order an append-based partition produced).
	codes := tr.binner.codes[best.feature]
	scratch := tr.partScratch[:0]
	nl := 0
	var lG, lH float64
	for _, r := range rows {
		c := codes[r]
		var goLeft bool
		if c == 0 {
			goLeft = !best.defaultRight
		} else {
			goLeft = c <= best.binCode
		}
		if goLeft {
			rows[nl] = r
			nl++
			lG += grad[r]
			lH += hess[r]
		} else {
			scratch = append(scratch, r)
		}
	}
	copy(rows[nl:], scratch)
	tr.partScratch = scratch[:0]
	left, right := rows[:nl], rows[nl:]
	if len(left) == 0 || len(right) == 0 {
		t.Nodes[nodeIdx].Value = leafValue
		tr.putHistSet(h)
		return
	}
	rG, rH := sumG-lG, sumH-lH

	li := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{Feature: -1, Count: len(left)})
	ri := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{Feature: -1, Count: len(right)})

	nd := &t.Nodes[nodeIdx]
	nd.Feature = best.feature
	nd.Threshold = best.threshold
	nd.Gain = best.gain
	nd.Left = li
	nd.Right = ri
	nd.DefaultRight = best.defaultRight

	needL := tr.needsSplitEval(len(left), lH, depth+1)
	needR := tr.needsSplitEval(len(right), rH, depth+1)
	var hL, hR *histSet
	switch {
	case needL && needR:
		if len(left) <= len(right) {
			hL = tr.getHistSet()
			tr.computeHists(left, feats, grad, hess, hL)
			hR = tr.getHistSet()
			tr.subtractHists(hR, h, hL, feats)
		} else {
			hR = tr.getHistSet()
			tr.computeHists(right, feats, grad, hess, hR)
			hL = tr.getHistSet()
			tr.subtractHists(hL, h, hR, feats)
		}
	case needL:
		hL = tr.childHist(h, left, right, feats, grad, hess)
	case needR:
		hR = tr.childHist(h, right, left, feats, grad, hess)
	}
	tr.putHistSet(h)

	tr.grow(t, li, left, feats, grad, hess, lG, lH, depth+1, hL)
	tr.grow(t, ri, right, feats, grad, hess, rG, rH, depth+1, hR)
}

// childHist builds the histogram set of child (sibling being the other
// side) by whichever route is cheaper: direct accumulation over child's
// rows, or accumulating the sibling and subtracting from the parent.
func (tr *trainer) childHist(parent *histSet, child, sibling, feats []int, grad, hess []float64) *histSet {
	if len(child) <= len(sibling) {
		h := tr.getHistSet()
		tr.computeHists(child, feats, grad, hess, h)
		return h
	}
	hs := tr.getHistSet()
	tr.computeHists(sibling, feats, grad, hess, hs)
	h := tr.getHistSet()
	tr.subtractHists(h, parent, hs, feats)
	tr.putHistSet(hs)
	return h
}

// computeHists accumulates per-feature gradient histograms over rows,
// feature-parallel on the shared pool. Each feature slot is written by
// exactly one chunk, so results are deterministic for any worker count.
func (tr *trainer) computeHists(rows, feats []int, grad, hess []float64, h *histSet) {
	tr.pool.ForChunks(len(feats), tr.pool.Grain(len(feats)), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			j := feats[k]
			nb := tr.binner.numBins[j] + 1 // +1 for the missing bin 0
			base := k * tr.stride
			g := h.grad[base : base+nb]
			hh := h.hess[base : base+nb]
			cnt := h.count[base : base+nb]
			for b := range g {
				g[b] = 0
				hh[b] = 0
				cnt[b] = 0
			}
			codes := tr.binner.codes[j]
			for _, r := range rows {
				c := codes[r]
				g[c] += grad[r]
				hh[c] += hess[r]
				cnt[c]++
			}
		}
	})
}

// subtractHists derives dst = parent - child per feature slot.
func (tr *trainer) subtractHists(dst, parent, child *histSet, feats []int) {
	for k := range feats {
		nb := tr.binner.numBins[feats[k]] + 1
		base := k * tr.stride
		for b := base; b < base+nb; b++ {
			dst.grad[b] = parent.grad[b] - child.grad[b]
			dst.hess[b] = parent.hess[b] - child.hess[b]
			dst.count[b] = parent.count[b] - child.count[b]
		}
	}
}

// bestSplit scans the prebuilt histograms of every candidate feature. The
// scan is serial in feats order (it is cheap relative to histogram
// accumulation), which fixes the tie-break deterministically: on equal gain
// the earliest feature in feats wins, for any worker count.
func (tr *trainer) bestSplit(h *histSet, feats []int, nRows int, sumG, sumH float64) splitResult {
	cfg := tr.cfg
	parentScore := sumG * sumG / (sumH + cfg.Lambda)
	best := splitResult{feature: -1, gain: 0}

	for k, j := range feats {
		nb := tr.binner.numBins[j] + 1
		base := k * tr.stride
		g := h.grad[base : base+nb]
		hh := h.hess[base : base+nb]
		cnt := h.count[base : base+nb]
		mG, mH := g[0], hh[0]
		mC := cnt[0]

		// Sparsity-aware split (XGBoost Alg. 3): scan real-bin boundaries
		// with the missing bin assigned first to the left child, then to
		// the right, and keep the best direction.
		for _, missLeft := range [2]bool{true, false} {
			var lG, lH float64
			lC := 0
			if missLeft {
				lG, lH, lC = mG, mH, mC
			}
			for b := 1; b < nb-1; b++ { // split after real bin b
				lG += g[b]
				lH += hh[b]
				lC += cnt[b]
				rG := sumG - lG
				rH := sumH - lH
				rC := nRows - lC
				if lC < cfg.MinChildCount || rC < cfg.MinChildCount {
					continue
				}
				if lH < cfg.MinChildWeight || rH < cfg.MinChildWeight {
					continue
				}
				gain := 0.5 * (lG*lG/(lH+cfg.Lambda) + rG*rG/(rH+cfg.Lambda) - parentScore)
				if gain > best.gain {
					best = splitResult{
						feature:      j,
						binCode:      uint8(b),
						gain:         gain,
						threshold:    tr.binner.threshold(j, uint8(b)),
						defaultRight: !missLeft,
					}
				}
			}
			if mC == 0 {
				break // no missing values: both directions are identical
			}
		}
	}
	return best
}

// updatePredictions adds the new tree's outputs to the raw scores of all
// rows, row-parallel on the shared pool (each index written exactly once).
// Binners without retained raw columns (prebinned training) traverse by bin
// code, which is exactly equivalent: a value in bin c satisfies
// v <= Threshold == cuts[bc-1] iff c <= bc.
func updatePredictions(t *Tree, b *binner, raw []float64, pool *parallel.Pool) {
	if b.cols == nil {
		lc := leftCodes(t, b)
		pool.ForChunks(len(raw), 2048, func(lo, hi int) {
			updatePredictionsBinnedRange(t, b, lc, raw, lo, hi)
		})
		return
	}
	pool.ForChunks(len(raw), 2048, func(lo, hi int) {
		updatePredictionsRange(t, b, raw, lo, hi)
	})
}

// leftCodes maps every internal node's threshold back to its bin code: go
// left when 1 <= code <= leftCodes[node]. Thresholds are cut values, so the
// lookup is an exact inverse of binner.threshold.
func leftCodes(t *Tree, b *binner) []uint8 {
	out := make([]uint8, len(t.Nodes))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			continue
		}
		out[i] = uint8(1 + stats.SearchCuts(b.cuts[n.Feature], n.Threshold))
	}
	return out
}

func updatePredictionsBinnedRange(t *Tree, b *binner, lc []uint8, raw []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		idx := 0
		for {
			n := &t.Nodes[idx]
			if n.IsLeaf() {
				raw[i] += n.Value
				break
			}
			c := b.codes[n.Feature][i]
			switch {
			case c == 0:
				if n.DefaultRight {
					idx = n.Right
				} else {
					idx = n.Left
				}
			case c <= lc[idx]:
				idx = n.Left
			default:
				idx = n.Right
			}
		}
	}
}

func updatePredictionsRange(t *Tree, b *binner, raw []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		idx := 0
		for {
			n := &t.Nodes[idx]
			if n.IsLeaf() {
				raw[i] += n.Value
				break
			}
			v := b.cols[n.Feature][i]
			switch {
			case math.IsNaN(v):
				if n.DefaultRight {
					idx = n.Right
				} else {
					idx = n.Left
				}
			case v <= n.Threshold:
				idx = n.Left
			default:
				idx = n.Right
			}
		}
	}
}

// PredictRow returns the model output for one row of raw feature values:
// a probability for Logistic, a raw value for Squared, and the argmax class
// index (as a float64) for Softmax.
func (m *Model) PredictRow(row []float64) float64 {
	if m.Config.Objective == Softmax {
		return float64(argmax(m.rawScores(row)))
	}
	s := m.BaseScore
	for _, t := range m.Trees {
		s += t.PredictRow(row)
	}
	if m.Config.Objective == Logistic {
		return sigmoid(s)
	}
	return s
}

// rawScores sums the per-class raw scores of a Softmax model for one row.
func (m *Model) rawScores(row []float64) []float64 {
	s := append([]float64(nil), m.BaseScores...)
	for ti, t := range m.Trees {
		s[ti%m.Config.NumClass] += t.PredictRow(row)
	}
	return s
}

// PredictRowVector returns the model output as a vector: the length-NumClass
// class-probability vector for Softmax, and a single-element vector (the
// PredictRow value) for Logistic and Squared — so serving code can treat
// every objective uniformly.
func (m *Model) PredictRowVector(row []float64) []float64 {
	if m.Config.Objective != Softmax {
		return []float64{m.PredictRow(row)}
	}
	s := m.rawScores(row)
	softmaxInPlace(s)
	return s
}

// PredictVector scores column-major data, returning one PredictRowVector
// per row.
func (m *Model) PredictVector(cols [][]float64) [][]float64 {
	if len(cols) == 0 {
		return nil
	}
	n := len(cols[0])
	out := make([][]float64, n)
	row := make([]float64, len(cols))
	for i := 0; i < n; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		out[i] = m.PredictRowVector(row)
	}
	return out
}

// Argmax returns the index of the largest value (first on ties) — the rule
// PredictRow uses to reduce a Softmax probability vector to a class, shared
// so serving code derives the identical scalar from PredictRowVector.
func Argmax(xs []float64) int { return argmax(xs) }

// argmax returns the index of the largest value (first on ties).
func argmax(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// softmaxInPlace turns raw scores into probabilities, max-shifted for
// numerical stability.
func softmaxInPlace(s []float64) {
	mx := s[0]
	for _, v := range s[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range s {
		e := math.Exp(v - mx)
		s[i] = e
		sum += e
	}
	for i := range s {
		s[i] /= sum
	}
}

// Predict scores column-major data and returns one prediction per row.
func (m *Model) Predict(cols [][]float64) []float64 {
	if len(cols) == 0 {
		return nil
	}
	n := len(cols[0])
	out := make([]float64, n)
	row := make([]float64, len(cols))
	for i := 0; i < n; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		out[i] = m.PredictRow(row)
	}
	return out
}
