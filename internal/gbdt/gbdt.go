// Package gbdt implements the XGBoost substrate of the SAFE reproduction: a
// second-order gradient-boosted tree learner with histogram-based exact
// greedy split finding, shrinkage, L2 regularisation and row/column
// subsampling. Beyond prediction it exposes the two artefacts SAFE consumes:
//
//   - Paths: the distinct split features (and their split values) on every
//     root-to-leaf path of every tree (Section IV-B of the paper), and
//   - GainImportance: the average gain across all splits per feature
//     (Section IV-C3).
//
// The implementation is single-node but feature-parallel, mirroring the
// paper's "distributed computing" requirement at laptop scale.
package gbdt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// Objective selects the training loss.
type Objective int

const (
	// Logistic trains with binary cross-entropy; predictions are
	// probabilities in (0,1).
	Logistic Objective = iota
	// Squared trains with squared error; predictions are raw values.
	Squared
)

// Config holds the booster's hyper-parameters. The zero value is not usable;
// call DefaultConfig and override fields as needed.
type Config struct {
	NumTrees       int       // K: number of boosting rounds
	MaxDepth       int       // D: maximum tree depth (root = depth 0)
	LearningRate   float64   // eta shrinkage
	Lambda         float64   // L2 regularisation on leaf weights
	Gamma          float64   // minimum gain to split
	MinChildWeight float64   // minimum sum of hessians per child
	MinChildCount  int       // minimum rows per child
	Subsample      float64   // row subsampling per tree, (0,1]
	ColSample      float64   // column subsampling per tree, (0,1]
	MaxBins        int       // histogram bins per feature (<= 255)
	Objective      Objective // training loss
	Seed           int64     // RNG seed for subsampling
	Parallel       bool      // parallelise split finding across features
}

// DefaultConfig returns settings close to XGBoost's defaults, scaled to the
// benchmark sizes used in this repository.
func DefaultConfig() Config {
	return Config{
		NumTrees:       50,
		MaxDepth:       4,
		LearningRate:   0.3,
		Lambda:         1.0,
		Gamma:          0.0,
		MinChildWeight: 1.0,
		MinChildCount:  1,
		Subsample:      1.0,
		ColSample:      1.0,
		MaxBins:        64,
		Objective:      Logistic,
		Parallel:       true,
	}
}

func (c *Config) validate() error {
	if c.NumTrees <= 0 {
		return errors.New("gbdt: NumTrees must be positive")
	}
	if c.MaxDepth <= 0 {
		return errors.New("gbdt: MaxDepth must be positive")
	}
	if c.LearningRate <= 0 {
		return errors.New("gbdt: LearningRate must be positive")
	}
	if c.MaxBins < 2 || c.MaxBins > 255 {
		return fmt.Errorf("gbdt: MaxBins must be in [2,255], got %d", c.MaxBins)
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		return fmt.Errorf("gbdt: Subsample must be in (0,1], got %g", c.Subsample)
	}
	if c.ColSample <= 0 || c.ColSample > 1 {
		return fmt.Errorf("gbdt: ColSample must be in (0,1], got %g", c.ColSample)
	}
	return nil
}

// Node is a tree node. Leaves have Feature == -1.
type Node struct {
	Feature   int     // split feature index, -1 for leaves
	Threshold float64 // go left when value <= Threshold
	Left      int     // index of left child in Tree.Nodes
	Right     int     // index of right child
	Value     float64 // leaf weight (already shrunk by eta)
	Gain      float64 // split gain (internal nodes)
	Count     int     // training rows reaching the node
	// DefaultRight sends missing (NaN) values to the right child. The
	// direction is learned per split (XGBoost's sparsity-aware algorithm);
	// the zero value preserves the historical missing-goes-left behaviour.
	DefaultRight bool
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Feature < 0 }

// Tree is a single regression tree stored as a flat node array with the root
// at index 0.
type Tree struct {
	Nodes []Node
}

// PredictRow traverses the tree for one row of raw feature values.
func (t *Tree) PredictRow(row []float64) float64 {
	i := 0
	for {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			return n.Value
		}
		v := row[n.Feature]
		switch {
		case math.IsNaN(v):
			if n.DefaultRight {
				i = n.Right
			} else {
				i = n.Left
			}
		case v <= n.Threshold:
			i = n.Left
		default:
			i = n.Right
		}
	}
}

// Model is a trained booster.
type Model struct {
	Trees     []*Tree
	Config    Config
	BaseScore float64 // initial raw score (log-odds for Logistic)
	NumFeat   int
	Names     []string // optional column names for reporting
}

// TrainWithValidation fits a boosted model with early stopping: after each
// round the model is scored on the validation set (AUC for Logistic,
// negative MSE for Squared) and training stops once earlyStopRounds
// consecutive rounds bring no improvement, truncating the model to its best
// round. This mirrors Algorithm 1 line 3, which hands XGBoost both D_train
// and D_valid. earlyStopRounds <= 0 disables early stopping.
func TrainWithValidation(cols [][]float64, labels []float64, vcols [][]float64, vlabels []float64, names []string, cfg Config, earlyStopRounds int) (*Model, error) {
	if len(vcols) != len(cols) {
		return nil, fmt.Errorf("gbdt: validation has %d columns, want %d", len(vcols), len(cols))
	}
	if len(vlabels) == 0 {
		return nil, errors.New("gbdt: empty validation labels")
	}
	model, err := trainInternal(cols, labels, names, cfg, &validation{
		cols: vcols, labels: vlabels, patience: earlyStopRounds,
	})
	if err != nil {
		return nil, err
	}
	return model, nil
}

// validation tracks early-stopping state during training.
type validation struct {
	cols     [][]float64
	labels   []float64
	patience int

	raw      []float64 // running raw validation scores
	bestEval float64
	bestSize int
	badRuns  int
	rounds   int
}

// Train fits a boosted model on column-major data: cols[j][i] is feature j of
// row i. labels are {0,1} for Logistic, arbitrary for Squared. names may be
// nil. Train does not retain cols or labels.
func Train(cols [][]float64, labels []float64, names []string, cfg Config) (*Model, error) {
	return trainInternal(cols, labels, names, cfg, nil)
}

func trainInternal(cols [][]float64, labels []float64, names []string, cfg Config, val *validation) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := len(cols)
	if m == 0 {
		return nil, errors.New("gbdt: no features")
	}
	n := len(labels)
	if n == 0 {
		return nil, errors.New("gbdt: no rows")
	}
	for j := range cols {
		if len(cols[j]) != n {
			return nil, fmt.Errorf("gbdt: column %d has %d rows, want %d", j, len(cols[j]), n)
		}
	}

	b := newBinner(cols, cfg.MaxBins)
	rng := rand.New(rand.NewSource(cfg.Seed))

	base := 0.0
	if cfg.Objective == Logistic {
		pos := 0.0
		for _, y := range labels {
			if y > 0.5 {
				pos++
			}
		}
		p := (pos + 1) / (float64(n) + 2) // smoothed prior
		base = math.Log(p / (1 - p))
	} else {
		for _, y := range labels {
			base += y
		}
		base /= float64(n)
	}

	model := &Model{Config: cfg, BaseScore: base, NumFeat: m, Names: names}
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = base
	}
	grad := make([]float64, n)
	hess := make([]float64, n)

	tr := &trainer{
		binner: b,
		cfg:    cfg,
		n:      n,
		m:      m,
	}

	if val != nil {
		val.raw = make([]float64, len(val.labels))
		for i := range val.raw {
			val.raw[i] = base
		}
		val.bestEval = math.Inf(-1)
	}

	for t := 0; t < cfg.NumTrees; t++ {
		computeGradients(cfg.Objective, raw, labels, grad, hess)

		rows := allRows(n)
		if cfg.Subsample < 1 {
			rows = sampleRows(n, cfg.Subsample, rng)
		}
		feats := allRows(m)
		if cfg.ColSample < 1 {
			feats = sampleRows(m, cfg.ColSample, rng)
			if len(feats) == 0 {
				feats = []int{rng.Intn(m)}
			}
		}

		tree := tr.buildTree(rows, feats, grad, hess)
		model.Trees = append(model.Trees, tree)

		// Update raw scores on all rows (not only the subsample).
		updatePredictions(tree, b, raw)

		if val != nil && val.patience > 0 {
			if stop := val.update(tree, cfg.Objective); stop {
				model.Trees = model.Trees[:val.bestSize]
				break
			}
		}
	}
	return model, nil
}

// update adds the new tree's contribution to the validation scores,
// evaluates, and reports whether training should stop.
func (val *validation) update(tree *Tree, obj Objective) bool {
	val.rounds++
	row := make([]float64, len(val.cols))
	for i := range val.raw {
		for j := range val.cols {
			row[j] = val.cols[j][i]
		}
		val.raw[i] += tree.PredictRow(row)
	}
	eval := val.evaluate(obj)
	if eval > val.bestEval+1e-12 {
		val.bestEval = eval
		val.bestSize = val.rounds
		val.badRuns = 0
		return false
	}
	val.badRuns++
	return val.badRuns >= val.patience
}

// evaluate scores the running validation predictions: AUC for Logistic,
// negated MSE for Squared (higher is better for both).
func (val *validation) evaluate(obj Objective) float64 {
	if obj == Logistic {
		return rankAUC(val.raw, val.labels)
	}
	mse := 0.0
	for i, r := range val.raw {
		d := r - val.labels[i]
		mse += d * d
	}
	return -mse / float64(len(val.raw))
}

// rankAUC is a local AUC on raw scores (monotone-invariant, so raw scores
// work as well as probabilities). Kept here to avoid a dependency cycle
// with the metrics package's consumers.
func rankAUC(scores, labels []float64) float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		i = j
	}
	var pos, neg, sumPos float64
	for i := 0; i < n; i++ {
		if labels[i] > 0.5 {
			pos++
			sumPos += ranks[i]
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return (sumPos - pos*(pos+1)/2) / (pos * neg)
}

func computeGradients(obj Objective, raw, labels, grad, hess []float64) {
	switch obj {
	case Logistic:
		for i := range raw {
			p := sigmoid(raw[i])
			grad[i] = p - labels[i]
			h := p * (1 - p)
			if h < 1e-16 {
				h = 1e-16
			}
			hess[i] = h
		}
	default:
		for i := range raw {
			grad[i] = raw[i] - labels[i]
			hess[i] = 1
		}
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func allRows(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sampleRows(n int, frac float64, rng *rand.Rand) []int {
	out := make([]int, 0, int(frac*float64(n))+1)
	for i := 0; i < n; i++ {
		if rng.Float64() < frac {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		out = append(out, rng.Intn(n))
	}
	return out
}

// binner quantises features to uint8 codes. Code 0 is reserved for missing
// values (NaN); real bins are 1..numBins[j]. cuts[j][b] is the inclusive
// upper bound of bin b+1.
type binner struct {
	codes   [][]uint8
	cuts    [][]float64
	numBins []int
	cols    [][]float64 // retained for prediction updates during training
}

func newBinner(cols [][]float64, maxBins int) *binner {
	m := len(cols)
	b := &binner{
		codes:   make([][]uint8, m),
		cuts:    make([][]float64, m),
		numBins: make([]int, m),
		cols:    cols,
	}
	for j := range cols {
		cuts := quantileCuts(cols[j], maxBins)
		b.cuts[j] = cuts
		b.numBins[j] = len(cuts) + 1
		codes := make([]uint8, len(cols[j]))
		for i, v := range cols[j] {
			if math.IsNaN(v) {
				codes[i] = 0
				continue
			}
			codes[i] = uint8(1 + sort.SearchFloat64s(cuts, v))
		}
		b.codes[j] = codes
	}
	return b
}

// quantileCuts returns at most maxBins-1 interior cut points from the
// empirical quantiles of xs, deduplicated.
func quantileCuts(xs []float64, maxBins int) []float64 {
	clean := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return nil
	}
	sort.Float64s(clean)
	cuts := make([]float64, 0, maxBins-1)
	for k := 1; k < maxBins; k++ {
		idx := k * len(clean) / maxBins
		if idx >= len(clean) {
			idx = len(clean) - 1
		}
		c := clean[idx]
		if len(cuts) == 0 || c != cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	// Drop a trailing cut equal to the max: it would create an empty bin.
	if len(cuts) > 0 && cuts[len(cuts)-1] >= clean[len(clean)-1] {
		cuts = cuts[:len(cuts)-1]
	}
	return cuts
}

// threshold returns the raw-value threshold for "code <= c".
func (b *binner) threshold(feat int, code uint8) float64 {
	cuts := b.cuts[feat]
	if code == 0 || len(cuts) == 0 {
		return math.Inf(-1)
	}
	idx := int(code) - 1
	if idx >= len(cuts) {
		idx = len(cuts) - 1
	}
	return cuts[idx]
}

type trainer struct {
	binner *binner
	cfg    Config
	n, m   int
}

// hist is a per-feature gradient histogram.
type hist struct {
	grad  []float64
	hess  []float64
	count []int
}

type splitResult struct {
	feature      int
	binCode      uint8 // go left when 1 <= code <= binCode
	gain         float64
	threshold    float64
	leftRows     int
	rightRows    int
	defaultRight bool // learned direction for the missing bin (code 0)
}

// buildTree grows one tree depth-first over the given row and feature
// subsets.
func (tr *trainer) buildTree(rows, feats []int, grad, hess []float64) *Tree {
	t := &Tree{}
	var sumG, sumH float64
	for _, r := range rows {
		sumG += grad[r]
		sumH += hess[r]
	}
	t.Nodes = append(t.Nodes, Node{Feature: -1, Count: len(rows)})
	tr.grow(t, 0, rows, feats, grad, hess, sumG, sumH, 0)
	return t
}

func (tr *trainer) grow(t *Tree, nodeIdx int, rows, feats []int, grad, hess []float64, sumG, sumH float64, depth int) {
	cfg := tr.cfg
	leafValue := -cfg.LearningRate * sumG / (sumH + cfg.Lambda)

	if depth >= cfg.MaxDepth || len(rows) < 2*cfg.MinChildCount || sumH < 2*cfg.MinChildWeight {
		t.Nodes[nodeIdx].Value = leafValue
		return
	}

	best := tr.findBestSplit(rows, feats, grad, hess, sumG, sumH)
	if best.feature < 0 || best.gain <= cfg.Gamma {
		t.Nodes[nodeIdx].Value = leafValue
		return
	}

	codes := tr.binner.codes[best.feature]
	left := make([]int, 0, best.leftRows)
	right := make([]int, 0, best.rightRows)
	var lG, lH float64
	for _, r := range rows {
		c := codes[r]
		goLeft := false
		if c == 0 {
			goLeft = !best.defaultRight
		} else {
			goLeft = c <= best.binCode
		}
		if goLeft {
			left = append(left, r)
			lG += grad[r]
			lH += hess[r]
		} else {
			right = append(right, r)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		t.Nodes[nodeIdx].Value = leafValue
		return
	}

	li := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{Feature: -1, Count: len(left)})
	ri := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{Feature: -1, Count: len(right)})

	nd := &t.Nodes[nodeIdx]
	nd.Feature = best.feature
	nd.Threshold = best.threshold
	nd.Gain = best.gain
	nd.Left = li
	nd.Right = ri
	nd.DefaultRight = best.defaultRight

	tr.grow(t, li, left, feats, grad, hess, lG, lH, depth+1)
	tr.grow(t, ri, right, feats, grad, hess, sumG-lG, sumH-lH, depth+1)
}

// findBestSplit scans histogram bins of every candidate feature. With
// cfg.Parallel it shards features across workers.
func (tr *trainer) findBestSplit(rows, feats []int, grad, hess []float64, sumG, sumH float64) splitResult {
	cfg := tr.cfg
	parentScore := sumG * sumG / (sumH + cfg.Lambda)

	evalFeature := func(j int, h *hist) splitResult {
		nb := tr.binner.numBins[j] + 1 // +1 for the missing bin 0
		for b := 0; b < nb; b++ {
			h.grad[b] = 0
			h.hess[b] = 0
			h.count[b] = 0
		}
		codes := tr.binner.codes[j]
		for _, r := range rows {
			c := codes[r]
			h.grad[c] += grad[r]
			h.hess[c] += hess[r]
			h.count[c]++
		}
		best := splitResult{feature: -1, gain: 0}
		mG, mH := h.grad[0], h.hess[0]
		mC := h.count[0]

		// Sparsity-aware split (XGBoost Alg. 3): scan real-bin boundaries
		// with the missing bin assigned first to the left child, then to
		// the right, and keep the best direction.
		for _, missLeft := range [2]bool{true, false} {
			var lG, lH float64
			lC := 0
			if missLeft {
				lG, lH, lC = mG, mH, mC
			}
			for b := 1; b < nb-1; b++ { // split after real bin b
				lG += h.grad[b]
				lH += h.hess[b]
				lC += h.count[b]
				rG := sumG - lG
				rH := sumH - lH
				rC := len(rows) - lC
				if lC < cfg.MinChildCount || rC < cfg.MinChildCount {
					continue
				}
				if lH < cfg.MinChildWeight || rH < cfg.MinChildWeight {
					continue
				}
				gain := 0.5 * (lG*lG/(lH+cfg.Lambda) + rG*rG/(rH+cfg.Lambda) - parentScore)
				if gain > best.gain {
					best = splitResult{
						feature:      j,
						binCode:      uint8(b),
						gain:         gain,
						threshold:    tr.binner.threshold(j, uint8(b)),
						leftRows:     lC,
						rightRows:    rC,
						defaultRight: !missLeft,
					}
				}
			}
			if mC == 0 {
				break // no missing values: both directions are identical
			}
		}
		return best
	}

	if !cfg.Parallel || len(feats) < 4 {
		h := newHist(257)
		best := splitResult{feature: -1}
		for _, j := range feats {
			if s := evalFeature(j, h); s.feature >= 0 && (best.feature < 0 || s.gain > best.gain) {
				best = s
			}
		}
		return best
	}

	workers := runtime.NumCPU()
	if workers > len(feats) {
		workers = len(feats)
	}
	results := make([]splitResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := newHist(257)
			best := splitResult{feature: -1}
			for k := w; k < len(feats); k += workers {
				if s := evalFeature(feats[k], h); s.feature >= 0 && (best.feature < 0 || s.gain > best.gain) {
					best = s
				}
			}
			results[w] = best
		}(w)
	}
	wg.Wait()
	best := splitResult{feature: -1}
	for _, s := range results {
		if s.feature >= 0 && (best.feature < 0 || s.gain > best.gain) {
			best = s
		}
	}
	return best
}

func newHist(size int) *hist {
	return &hist{
		grad:  make([]float64, size),
		hess:  make([]float64, size),
		count: make([]int, size),
	}
}

// updatePredictions adds the new tree's outputs to the raw scores of all
// rows.
func updatePredictions(t *Tree, b *binner, raw []float64) {
	for i := range raw {
		idx := 0
		for {
			n := &t.Nodes[idx]
			if n.IsLeaf() {
				raw[i] += n.Value
				break
			}
			v := b.cols[n.Feature][i]
			switch {
			case math.IsNaN(v):
				if n.DefaultRight {
					idx = n.Right
				} else {
					idx = n.Left
				}
			case v <= n.Threshold:
				idx = n.Left
			default:
				idx = n.Right
			}
		}
	}
}

// PredictRow returns the model output for one row of raw feature values:
// a probability for Logistic, a raw value for Squared.
func (m *Model) PredictRow(row []float64) float64 {
	s := m.BaseScore
	for _, t := range m.Trees {
		s += t.PredictRow(row)
	}
	if m.Config.Objective == Logistic {
		return sigmoid(s)
	}
	return s
}

// Predict scores column-major data and returns one prediction per row.
func (m *Model) Predict(cols [][]float64) []float64 {
	if len(cols) == 0 {
		return nil
	}
	n := len(cols[0])
	out := make([]float64, n)
	row := make([]float64, len(cols))
	for i := 0; i < n; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		out[i] = m.PredictRow(row)
	}
	return out
}
