package gbdt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// TestTrainBinnedMatchesTrain pins the contract the sharded fit engine
// relies on: given the codes and cuts the internal binner would produce,
// TrainBinned returns a bit-identical model to Train on the raw columns.
func TestTrainBinnedMatchesTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, m := 3000, 8
	cols := make([][]float64, m)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			if j == 2 && rng.Float64() < 0.05 {
				cols[j][i] = math.NaN() // exercise the missing bin
				continue
			}
			cols[j][i] = rng.NormFloat64()
		}
	}
	labels := make([]float64, n)
	for i := range labels {
		s := cols[0][i] + 2*cols[1][i]*cols[3][i]
		if 1/(1+math.Exp(-s)) > rng.Float64() {
			labels[i] = 1
		}
	}

	for _, sub := range []float64{1.0, 0.8} {
		cfg := DefaultConfig()
		cfg.NumTrees = 12
		cfg.MaxDepth = 4
		cfg.Subsample = sub
		cfg.Seed = 7

		want, err := Train(cols, labels, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}

		b := newBinner(cols, cfg.MaxBins, parallel.Get(1))
		got, err := TrainBinned(&Prebinned{Codes: b.codes, Cuts: b.cuts}, labels, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}

		if len(got.Trees) != len(want.Trees) {
			t.Fatalf("subsample=%v: %d trees vs %d", sub, len(got.Trees), len(want.Trees))
		}
		if got.BaseScore != want.BaseScore {
			t.Fatalf("subsample=%v: base score %v vs %v", sub, got.BaseScore, want.BaseScore)
		}
		for ti := range want.Trees {
			wn, gn := want.Trees[ti].Nodes, got.Trees[ti].Nodes
			if len(wn) != len(gn) {
				t.Fatalf("subsample=%v tree %d: %d nodes vs %d", sub, ti, len(gn), len(wn))
			}
			for ni := range wn {
				if wn[ni] != gn[ni] {
					t.Fatalf("subsample=%v tree %d node %d: %+v vs %+v", sub, ti, ni, gn[ni], wn[ni])
				}
			}
		}
		// Gain importances (the ranker artefact) must agree too.
		wg, gg := want.GainImportance(), got.GainImportance()
		for j := range wg {
			if wg[j] != gg[j] {
				t.Fatalf("subsample=%v: gain importance %d: %v vs %v", sub, j, gg[j], wg[j])
			}
		}
	}
}

func TestTrainBinnedValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := TrainBinned(&Prebinned{}, []float64{1}, nil, cfg); err == nil {
		t.Error("accepted empty prebinned matrix")
	}
	pb := &Prebinned{Codes: [][]uint8{{1, 2}}, Cuts: [][]float64{{0.5}}}
	if _, err := TrainBinned(pb, []float64{1}, nil, cfg); err == nil {
		t.Error("accepted row-count mismatch")
	}
	if _, err := TrainBinned(&Prebinned{Codes: [][]uint8{{1}}, Cuts: nil}, []float64{1}, nil, cfg); err == nil {
		t.Error("accepted cuts/codes width mismatch")
	}
}
