// Package gbdt implements the XGBoost substrate of the SAFE reproduction: a
// second-order gradient-boosted tree learner with histogram-based exact
// greedy split finding, shrinkage, L2 regularisation and row/column
// subsampling. Beyond prediction it exposes the two artefacts SAFE consumes:
//
//   - Paths: the distinct split features (and their split values) on every
//     root-to-leaf path of every tree (Section IV-B of the paper), and
//   - GainImportance: the average gain across all splits per feature
//     (Section IV-C3).
//
// Three training losses cover the task families of the fit engine
// (core.Task):
//
//   - Logistic — binary cross-entropy on {0,1} labels; predictions are
//     probabilities in (0,1).
//   - Softmax — multiclass cross-entropy on class-index labels in
//     [0, Config.NumClass); each boosting round grows one tree per class,
//     and PredictRowVector returns the class-probability vector.
//   - Squared — squared error on arbitrary real labels; predictions are raw
//     values.
//
// Training accepts either raw float64 columns (Train, which quantises them
// internally) or a prebinned uint8 matrix (TrainBinned, the entry point of
// the sharded out-of-core engine). Both paths share the same boosting loop,
// so given equal bins they produce bit-identical models for every objective.
//
// A typical round trip:
//
//	cfg := gbdt.DefaultConfig()
//	cfg.Objective = gbdt.Softmax
//	cfg.NumClass = 3
//	model, err := gbdt.Train(cols, labels, names, cfg) // labels in {0,1,2}
//	probs := model.PredictRowVector(row)               // length-3 probabilities
//	class := model.PredictRow(row)                     // argmax class index
//
// The implementation is single-node but feature-parallel, mirroring the
// paper's "distributed computing" requirement at laptop scale; results are
// identical for any worker count.
package gbdt
