package gbdt

import (
	"fmt"
	"io"
	"strings"
)

// Dump writes a human-readable rendering of the model's trees — feature
// names (when available), thresholds, gains and leaf weights — matching the
// interpretability requirement of Section II: the structures SAFE mines are
// inspectable, not a black box. maxTrees <= 0 dumps every tree.
func (m *Model) Dump(w io.Writer, maxTrees int) error {
	n := len(m.Trees)
	if maxTrees > 0 && maxTrees < n {
		n = maxTrees
	}
	if _, err := fmt.Fprintf(w, "gbdt model: %d trees, base score %.6g, %d features\n",
		len(m.Trees), m.BaseScore, m.NumFeat); err != nil {
		return err
	}
	for t := 0; t < n; t++ {
		if _, err := fmt.Fprintf(w, "tree %d:\n", t); err != nil {
			return err
		}
		if err := m.dumpNode(w, m.Trees[t], 0, 1); err != nil {
			return err
		}
	}
	return nil
}

func (m *Model) dumpNode(w io.Writer, t *Tree, idx, depth int) error {
	n := &t.Nodes[idx]
	indent := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		_, err := fmt.Fprintf(w, "%sleaf=%.6g (n=%d)\n", indent, n.Value, n.Count)
		return err
	}
	miss := "left"
	if n.DefaultRight {
		miss = "right"
	}
	if _, err := fmt.Fprintf(w, "%s%s <= %.6g (gain=%.4g, n=%d, missing->%s)\n",
		indent, m.featureName(n.Feature), n.Threshold, n.Gain, n.Count, miss); err != nil {
		return err
	}
	if err := m.dumpNode(w, t, n.Left, depth+1); err != nil {
		return err
	}
	return m.dumpNode(w, t, n.Right, depth+1)
}

func (m *Model) featureName(j int) string {
	if j >= 0 && j < len(m.Names) && m.Names[j] != "" {
		return m.Names[j]
	}
	return fmt.Sprintf("f%d", j)
}
