package gbdt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
)

func TestBinnerCodesConsistentWithThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	col := make([]float64, 1000)
	for i := range col {
		col[i] = rng.NormFloat64()
	}
	b := newBinner([][]float64{col}, 32, parallel.Get(1))
	// For every row, code c means: value <= threshold(c) and (c == 1 or
	// value > threshold(c-1)).
	for i, v := range col {
		c := b.codes[0][i]
		if c == 0 {
			t.Fatalf("non-NaN value got missing code at row %d", i)
		}
		if v > b.threshold(0, c) && int(c) <= len(b.cuts[0]) {
			t.Fatalf("row %d: value %v exceeds its bin's threshold %v (code %d)",
				i, v, b.threshold(0, c), c)
		}
		if c > 1 {
			if v <= b.threshold(0, c-1) {
				t.Fatalf("row %d: value %v not above previous threshold %v (code %d)",
					i, v, b.threshold(0, c-1), c)
			}
		}
	}
}

func TestBinnerNaNGetsCodeZero(t *testing.T) {
	col := []float64{1, math.NaN(), 3}
	b := newBinner([][]float64{col}, 8, parallel.Get(1))
	if b.codes[0][1] != 0 {
		t.Errorf("NaN code = %d, want 0", b.codes[0][1])
	}
	if b.codes[0][0] == 0 || b.codes[0][2] == 0 {
		t.Error("real values mapped to the missing code")
	}
}

func TestBinnerConstantColumn(t *testing.T) {
	col := []float64{5, 5, 5, 5}
	b := newBinner([][]float64{col}, 8, parallel.Get(1))
	if len(b.cuts[0]) != 0 {
		t.Errorf("constant column produced cuts %v", b.cuts[0])
	}
	if b.numBins[0] != 1 {
		t.Errorf("constant column bins = %d, want 1", b.numBins[0])
	}
}

func TestBinnerCutsSortedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(500)
		col := make([]float64, n)
		for i := range col {
			col[i] = math.Round(rng.NormFloat64() * 3) // ties likely
		}
		b := newBinner([][]float64{col}, 16, parallel.Get(1))
		cuts := b.cuts[0]
		for i := 1; i < len(cuts); i++ {
			if cuts[i] <= cuts[i-1] {
				return false
			}
		}
		// No empty top bin: last cut strictly below the max.
		if len(cuts) > 0 {
			maxv := math.Inf(-1)
			for _, v := range col {
				if v > maxv {
					maxv = v
				}
			}
			if cuts[len(cuts)-1] >= maxv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPredictionsInUnitIntervalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(300)
		cols := [][]float64{make([]float64, n), make([]float64, n)}
		labels := make([]float64, n)
		for i := 0; i < n; i++ {
			cols[0][i] = rng.NormFloat64()
			cols[1][i] = rng.NormFloat64()
			labels[i] = float64(rng.Intn(2))
		}
		cfg := DefaultConfig()
		cfg.NumTrees = 5
		model, err := Train(cols, labels, nil, cfg)
		if err != nil {
			return false
		}
		for _, p := range model.Predict(cols) {
			if p <= 0 || p >= 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
